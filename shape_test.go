package heteromem_test

import (
	"sync"
	"testing"

	"heteromem/internal/harness"
	"heteromem/internal/sim"
)

// These integration tests assert the paper's headline shapes over the
// full Table III kernel set (Section V). They share one sweep; `go test
// -short` restricts the sweep to the fast kernels.

var shapeCells = sync.OnceValues(func() ([]harness.Cell, error) {
	return harness.RunCaseStudies(shapeKernels())
})

var shapeShort bool

func shapeKernels() []string {
	if shapeShort {
		return harness.QuickKernels()
	}
	return harness.DefaultKernels()
}

func shapeSweep(t *testing.T) map[string]map[string]sim.Result {
	t.Helper()
	shapeShort = testing.Short()
	cells, err := shapeCells()
	if err != nil {
		t.Fatal(err)
	}
	out := map[string]map[string]sim.Result{}
	for _, c := range cells {
		if out[c.Kernel] == nil {
			out[c.Kernel] = map[string]sim.Result{}
		}
		out[c.Kernel][c.System] = c.Result
	}
	return out
}

func TestShapeParallelDominatesEverywhere(t *testing.T) {
	// "The majority of execution time is spent on parallel computation."
	for kernel, systems := range shapeSweep(t) {
		for system, res := range systems {
			if res.Parallel <= res.Sequential || res.Parallel <= res.Communication {
				t.Errorf("%s/%s: parallel %v does not dominate (seq %v, comm %v)",
					kernel, system, res.Parallel, res.Sequential, res.Communication)
			}
		}
	}
}

func TestShapeSystemOrdering(t *testing.T) {
	// "CPU+GPU, LRB and GMAC have a longer execution time than those of
	// IDEAL-HETERO and Fusion." Per kernel the slow systems must beat
	// IDEAL strictly and Fusion up to a 0.5% tie (on compute giants like
	// matrix-mul, GMAC's hidden copies and Fusion's cheap DMA land within
	// a hair of each other); in geometric mean over all kernels the
	// ordering is strict.
	sweep := shapeSweep(t)
	geomean := map[string]float64{}
	n := 0
	for kernel, systems := range sweep {
		n++
		ideal := systems["IDEAL-HETERO"].Total()
		fusion := systems["Fusion"].Total()
		for _, slow := range []string{"CPU+GPU", "LRB", "GMAC"} {
			tot := systems[slow].Total()
			if tot <= ideal {
				t.Errorf("%s: %s (%v) not slower than IDEAL-HETERO (%v)", kernel, slow, tot, ideal)
			}
			if float64(tot) < float64(fusion)*0.995 {
				t.Errorf("%s: %s (%v) clearly faster than Fusion (%v)", kernel, slow, tot, fusion)
			}
		}
		if fusion <= ideal {
			t.Errorf("%s: Fusion (%v) not slower than IDEAL-HETERO (%v)", kernel, fusion, ideal)
		}
		for system, res := range systems {
			geomean[system] += float64(res.Total()) / float64(ideal)
		}
	}
	// Arithmetic mean of normalised totals (monotone proxy for geomean
	// at these small spreads): strict ordering in aggregate.
	fusionMean := geomean["Fusion"] / float64(n)
	for _, slow := range []string{"CPU+GPU", "LRB", "GMAC"} {
		if geomean[slow]/float64(n) <= fusionMean {
			t.Errorf("aggregate: %s (%.4f) not slower than Fusion (%.4f)",
				slow, geomean[slow]/float64(n), fusionMean)
		}
	}
}

func TestShapeCommunicationOrdering(t *testing.T) {
	// Figure 6: the explicit PCI-E copy system pays the most; IDEAL pays
	// nothing; Fusion pays a fraction of CPU+GPU.
	for kernel, systems := range shapeSweep(t) {
		cuda := systems["CPU+GPU"].Communication
		fusion := systems["Fusion"].Communication
		ideal := systems["IDEAL-HETERO"].Communication
		if ideal != 0 {
			t.Errorf("%s: IDEAL-HETERO communication %v != 0", kernel, ideal)
		}
		if fusion == 0 || cuda == 0 {
			t.Errorf("%s: zero communication on a copying system", kernel)
			continue
		}
		if cuda <= fusion {
			t.Errorf("%s: CPU+GPU comm (%v) not above Fusion (%v)", kernel, cuda, fusion)
		}
		for _, sys := range []string{"LRB", "GMAC"} {
			if c := systems[sys].Communication; c >= cuda {
				t.Errorf("%s: %s comm (%v) not below CPU+GPU (%v) — copy-back avoidance missing",
					kernel, sys, c, cuda)
			}
		}
	}
}

func TestShapeComputeIdenticalAcrossSystems(t *testing.T) {
	// The paper isolates memory-system effects: every system runs the
	// same cores on the same traces, so instruction counts must agree
	// exactly (modulo the injected communication instructions).
	for kernel, systems := range shapeSweep(t) {
		base := systems["IDEAL-HETERO"]
		for system, res := range systems {
			cpuCompute := res.CPU.Instructions - res.CPU.CommOps
			baseCompute := base.CPU.Instructions - base.CPU.CommOps
			if cpuCompute != baseCompute {
				t.Errorf("%s/%s: CPU compute instructions %d != %d", kernel, system, cpuCompute, baseCompute)
			}
			gpuCompute := res.GPU.Instructions - res.GPU.CommOps
			baseGPU := base.GPU.Instructions - base.GPU.CommOps
			if gpuCompute != baseGPU {
				t.Errorf("%s/%s: GPU compute instructions %d != %d", kernel, system, gpuCompute, baseGPU)
			}
		}
	}
}

func TestShapeTransferHeavyKernelsHighestCommShare(t *testing.T) {
	if testing.Short() {
		t.Skip("needs the full kernel set")
	}
	// The transfer-heavy kernels (reduction, merge-sort) carry the
	// largest communication shares on the CPU+GPU system; the
	// compute-giants (matrix-mul, dct) the smallest.
	sweep := shapeSweep(t)
	share := func(kernel string) float64 { return sweep[kernel]["CPU+GPU"].CommFraction() }
	for _, heavy := range []string{"reduction", "merge-sort"} {
		for _, light := range []string{"matrix-mul", "dct"} {
			if share(heavy) <= share(light) {
				t.Errorf("comm share of %s (%.3f) not above %s (%.3f)",
					heavy, share(heavy), light, share(light))
			}
		}
	}
}

func TestShapeLRBOnlySystemWithFaultsAndOwnership(t *testing.T) {
	for kernel, systems := range shapeSweep(t) {
		for system, res := range systems {
			isLRB := system == "LRB"
			if isLRB && (res.PageFaults == 0 || res.OwnershipOps == 0) {
				t.Errorf("%s/LRB: faults=%d ownership=%d, want both nonzero", kernel, res.PageFaults, res.OwnershipOps)
			}
			if !isLRB && (res.PageFaults != 0 || res.OwnershipOps != 0) {
				t.Errorf("%s/%s: unexpected LRB events (faults=%d ownership=%d)",
					kernel, system, res.PageFaults, res.OwnershipOps)
			}
		}
	}
}
