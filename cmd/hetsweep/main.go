// Command hetsweep regenerates the paper's tables and figures.
//
// Usage:
//
//	hetsweep -table 1          # Table I survey
//	hetsweep -figure 5         # Figure 5 case studies (full kernels)
//	hetsweep -figure 5 -quick  # small kernels only
//	hetsweep -all              # everything
//	hetsweep -grid g.json      # sweep a declarative design-space grid
//	hetsweep -figure 5 -memtech hbm   # case studies on an HBM backend
//	hetsweep -figure 5 -xlat 2m       # … with address translation priced
//
// A sweep can be observed while it runs: -serve starts the live
// introspection server (/progress, /metrics, pprof) and -out writes a
// run-artifact directory (manifest.json, run ledger, aggregate metrics,
// per-cell interval CSVs, Perfetto worker trace).
//
// A sweep can be memoized across runs: -cache <dir> keeps a persistent
// content-addressed result cache — any cell simulated by this or any
// earlier run is served from the cache without touching a simulator,
// and -cache-verify re-simulates a sampled fraction of hits to prove
// the cache exact (see DESIGN.md §15).
//
//	hetsweep -grid g.json -cache .hetcache            # cold: fills
//	hetsweep -grid g.json -cache .hetcache            # warm: all hits
//	hetsweep -grid g.json -cache .hetcache -cache-verify 0.1
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"heteromem/internal/guideline"
	"heteromem/internal/harness"
	"heteromem/internal/memtech"
	"heteromem/internal/prof"
	"heteromem/internal/report"
	"heteromem/internal/rescache"
	"heteromem/internal/systems"
	"heteromem/internal/xlat"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("hetsweep: ")
	var (
		table       = flag.Int("table", 0, "regenerate table N (1-5)")
		figure      = flag.Int("figure", 0, "regenerate figure N (5-7)")
		all         = flag.Bool("all", false, "regenerate every table and figure")
		quick       = flag.Bool("quick", false, "use the small kernels only (faster)")
		kernelsFlag = flag.String("kernels", "", "comma-separated kernel list, overriding -quick and the grid's kernels")
		sensitivity = flag.String("sensitivity", "", "transfer-volume sensitivity sweep for the named kernel")
		guide       = flag.Bool("guideline", false, "score the address-space models and recommend one (Section VII future work)")
		gridPath    = flag.String("grid", "", "sweep the design-space grid described by this JSON file (see examples/systems/grid.json)")
		csvPath     = flag.String("csv", "", "also write the case-study sweep as CSV to this file")
		energyOut   = flag.Bool("energy", false, "print the energy breakdown for the case-study sweep")
		jsonOut     = flag.Bool("json", false, "emit the case-study sweep (full results) as JSON to stdout")
		memtechName = flag.String("memtech", "dram", "terminal memory technology for the case-study sweep (dram, hbm, nvm, dram-cache)")
		xlatName    = flag.String("xlat", "off", "address-translation preset for the case-study sweep ("+strings.Join(xlat.Presets(), ", ")+")")
		par         = flag.Int("par", 0, "sweep worker count (0 = GOMAXPROCS)")

		cacheDir    = flag.String("cache", "", "content-addressed result cache directory: probe every cell before simulating, serve hits without a simulator, fill misses (see DESIGN.md §15)")
		cacheVerify = flag.Float64("cache-verify", 0, "re-simulate this fraction of cache hits (deterministically sampled) and fail loudly on any mismatch — the determinism tripwire; 0 disables")

		serveAddr      = flag.String("serve", "", "serve live sweep introspection (/progress, /metrics, pprof) on this address while running")
		outDir         = flag.String("out", "", "write the run-artifact directory (manifest.json, ledger.jsonl, metrics.json, trace.json, results.csv, intervals/)")
		intervalCycles = flag.Uint64("interval-cycles", 100_000, "per-cell interval-CSV epoch length in CPU cycles under -out (0 = no interval CSVs)")
		hostprofEvery  = flag.Int("hostprof", 32, "host-time self-profiling: time one in every N memory-pipeline runs when observed (0 = off)")
	)
	flag.Parse()
	defer prof.Start()()

	var cache *rescache.Store
	if *cacheVerify < 0 || *cacheVerify > 1 {
		log.Fatalf("-cache-verify %v: fraction must be in [0, 1]", *cacheVerify)
	}
	if *cacheDir != "" {
		var err error
		if cache, err = rescache.Open(*cacheDir); err != nil {
			log.Fatal(err)
		}
		defer func() {
			st := cache.Stats()
			log.Printf("cache %s: %d hits, %d misses (%.1f%% hit rate), %d B read, %d B written",
				*cacheDir, st.Hits, st.Misses, 100*st.HitRate(), st.BytesRead, st.BytesWritten)
			if err := cache.Err(); err != nil {
				log.Printf("warning: cache writes degraded to memory-only: %v", err)
			}
		}()
	} else if *cacheVerify > 0 {
		log.Fatal("-cache-verify needs -cache")
	}

	obsRun, err := setupObservability(observeConfig{
		OutDir: *outDir, ServeAddr: *serveAddr,
		IntervalCycles: *intervalCycles, HostProfEvery: *hostprofEvery,
		Par: *par, Cache: cache,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer obsRun.close()
	exec := harness.Executor{Par: *par, Obs: obsRun.observer(), Cache: cache, CacheVerify: *cacheVerify}

	kernels := harness.DefaultKernels()
	if *quick {
		kernels = harness.QuickKernels()
	}
	if *kernelsFlag != "" {
		kernels = splitKernels(*kernelsFlag)
	}

	if *sensitivity != "" {
		points, err := harness.RunTransferSensitivity(*sensitivity, []float64{0.25, 0.5, 1, 2, 4, 8, 16})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(harness.RenderSensitivity(*sensitivity, points))
		return
	}
	if *guide {
		printGuideline(kernels)
		return
	}
	if *gridPath != "" {
		var override []string
		if *kernelsFlag != "" {
			override = kernels
		}
		runGrid(exec, obsRun, *gridPath, override, *csvPath, *jsonOut)
		return
	}
	if !*all && *table == 0 && *figure == 0 && !*energyOut && *csvPath == "" && !*jsonOut {
		flag.Usage()
		return
	}

	tables := map[int]func() string{
		1: harness.RenderTable1,
		2: harness.RenderTable2,
		3: harness.RenderTable3,
		4: harness.RenderTable4,
		5: harness.RenderTable5,
	}

	emitTable := func(n int) {
		f, ok := tables[n]
		if !ok {
			log.Fatalf("no table %d (have 1-5)", n)
		}
		fmt.Println(f())
	}

	tech, err := memtech.Parse(*memtechName)
	if err != nil {
		log.Fatal(err)
	}
	xspec, err := xlat.ParsePreset(*xlatName)
	if err != nil {
		log.Fatal(err)
	}
	var caseCells []harness.Cell
	caseStudies := func() []harness.Cell {
		if caseCells == nil {
			sysList := systems.CaseStudiesWithTech(tech)
			if !xspec.IsZero() {
				for i := range sysList {
					sysList[i].Translation = xspec
				}
			}
			var err error
			caseCells, err = exec.RunSystems(sysList, kernels)
			if err != nil {
				log.Fatal(err)
			}
			obsRun.setSweep(sweepInfo{
				systems: sysList, kernels: kernels, cells: caseCells,
			})
		}
		return caseCells
	}

	emitFigure := func(n int) {
		switch n {
		case 5:
			fmt.Println(harness.RenderFigure5(caseStudies()))
		case 6:
			fmt.Println(harness.RenderFigure6(caseStudies()))
		case 7:
			cells, err := exec.RunAddressSpaces(kernels)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Println(harness.RenderFigure7(cells))
		default:
			log.Fatalf("no figure %d (have 5-7)", n)
		}
	}

	if *all {
		for n := 1; n <= 5; n++ {
			emitTable(n)
		}
		for n := 5; n <= 7; n++ {
			emitFigure(n)
		}
		fmt.Println(harness.RenderLocalityOptions())
		fmt.Println(harness.RenderEnergy(caseStudies()))
		printGuideline(kernels)
		if *csvPath != "" {
			writeCSV(*csvPath, caseStudies())
		}
		if *jsonOut {
			writeJSON(caseStudies())
		}
		return
	}
	if *table != 0 {
		emitTable(*table)
	}
	if *figure != 0 {
		emitFigure(*figure)
	}
	if *energyOut {
		fmt.Println(harness.RenderEnergy(caseStudies()))
	}
	if *csvPath != "" {
		writeCSV(*csvPath, caseStudies())
	}
	if *jsonOut {
		writeJSON(caseStudies())
	}
}

// runGrid sweeps every coherent point of a declarative design-space grid
// (systems.LoadGridFile) and prints the Figure 5 breakdown per point.
// kernelsOverride, when non-nil, replaces the grid's own kernel list.
func runGrid(exec harness.Executor, obsRun *observedRun, path string, kernelsOverride []string, csvPath string, jsonOut bool) {
	gridBytes, err := os.ReadFile(path)
	if err != nil {
		log.Fatal(err)
	}
	grid, err := systems.LoadGridFile(path)
	if err != nil {
		log.Fatal(err)
	}
	points, skipped := grid.Enumerate()
	if len(points) == 0 {
		log.Fatalf("%s: grid spans no coherent design points (%d skipped)", path, skipped)
	}
	kernels := grid.Kernels
	if len(kernels) == 0 {
		kernels = []string{"reduction"}
	}
	if kernelsOverride != nil {
		kernels = kernelsOverride
	}
	cells, err := exec.RunSystems(points, kernels)
	if err != nil {
		log.Fatal(err)
	}
	obsRun.setSweep(sweepInfo{
		systems: points, kernels: kernels, cells: cells,
		gridPath: path, gridSHA: fmt.Sprintf("sha256:%x", sha256.Sum256(gridBytes)),
		gridName: grid.Name,
	})
	title := grid.Name
	if title == "" {
		title = path
	}
	fmt.Printf("grid %s: %d design points (%d incoherent combinations skipped)\n\n",
		title, len(points), skipped)
	for _, kernel := range kernels {
		tbl := report.Table{
			Title:   kernel,
			Headers: []string{"design point", "sequential", "parallel", "communication", "total", "comm share"},
		}
		for _, c := range cells {
			if c.Kernel != kernel {
				continue
			}
			res := c.Result
			tbl.AddRow(c.System,
				report.Dur(res.Sequential), report.Dur(res.Parallel),
				report.Dur(res.Communication), report.Dur(res.Total()),
				report.Pct(res.CommFraction()))
		}
		fmt.Println(tbl.String())
	}
	if csvPath != "" {
		writeCSV(csvPath, cells)
	}
	if jsonOut {
		writeJSON(cells)
	}
}

// splitKernels parses the -kernels flag: comma-separated names, blanks
// ignored.
func splitKernels(s string) []string {
	var out []string
	for _, k := range strings.Split(s, ",") {
		if k = strings.TrimSpace(k); k != "" {
			out = append(out, k)
		}
	}
	if len(out) == 0 {
		log.Fatalf("-kernels %q names no kernels", s)
	}
	return out
}

func writeJSON(cells []harness.Cell) {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(cells); err != nil {
		log.Fatal(err)
	}
}

func writeCSV(path string, cells []harness.Cell) {
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	if err := harness.WriteCSV(f, cells); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %d rows to %s\n", len(cells), path)
}

func printGuideline(kernels []string) {
	scores, err := guideline.Evaluate(kernels, guideline.DefaultWeights())
	if err != nil {
		log.Fatal(err)
	}
	tbl := report.Table{
		Title: "Design-option efficiency (Section VII future work; equal weights)",
		Headers: []string{"model", "perf overhead vs ideal", "comm source lines",
			"locality options", "coherence cost", "composite"},
	}
	for _, s := range scores {
		tbl.AddRow(s.Model, report.Pct(s.PerfOverhead), s.CommLines,
			s.LocalityOptions, s.HardwareCost, report.F3(s.Composite))
	}
	fmt.Println(tbl.String())
	best, why, err := guideline.Recommend(kernels, guideline.DefaultWeights())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recommendation: %v (%s)\n", best, why)
}
