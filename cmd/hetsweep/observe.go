package main

import (
	"encoding/json"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"heteromem/internal/config"
	"heteromem/internal/harness"
	"heteromem/internal/obs"
	"heteromem/internal/rescache"
	"heteromem/internal/systems"
)

// observeConfig is the observability slice of hetsweep's flags.
type observeConfig struct {
	OutDir         string
	ServeAddr      string
	IntervalCycles uint64
	HostProfEvery  int
	Par            int
	// Cache is the sweep's result cache, reported in the manifest.
	Cache *rescache.Store
}

// observedRun owns a sweep's observability lifetime: the harness
// Observer the Executor reports into, the artifact sinks under -out, and
// the live introspection server under -serve. The zero value (no -out,
// no -serve) is inert.
type observedRun struct {
	cfg    observeConfig
	obs    *harness.Observer
	ledger *obs.Ledger
	tracer *obs.Tracer
	srv    *obs.Server
	start  time.Time
	sweep  *sweepInfo
}

// sweepInfo captures what the primary sweep actually ran, for the
// manifest and results.csv.
type sweepInfo struct {
	systems  []systems.System
	kernels  []string
	cells    []harness.Cell
	gridPath string
	gridSHA  string
	gridName string
}

// setupObservability builds the run's observability from flags: with
// neither -out nor -serve it returns an inert run whose observer is nil,
// leaving the sweep fully uninstrumented.
func setupObservability(cfg observeConfig) (*observedRun, error) {
	r := &observedRun{cfg: cfg, start: time.Now()}
	if cfg.OutDir == "" && cfg.ServeAddr == "" {
		return r, nil
	}
	r.obs = &harness.Observer{Name: "hetsweep", HostProfEvery: cfg.HostProfEvery}
	if cfg.OutDir != "" {
		if err := os.MkdirAll(cfg.OutDir, 0o755); err != nil {
			return nil, err
		}
		led, err := obs.CreateLedger(filepath.Join(cfg.OutDir, "ledger.jsonl"))
		if err != nil {
			return nil, err
		}
		r.ledger = led
		r.tracer = obs.NewTracer()
		r.obs.Ledger = led
		r.obs.Trace = r.tracer
		if cfg.IntervalCycles > 0 {
			cyclePS := uint64(config.BaselineCPU().Domain().PeriodPS())
			r.obs.IntervalPS = cfg.IntervalCycles * cyclePS
			r.obs.IntervalDir = filepath.Join(cfg.OutDir, "intervals")
		}
	}
	if cfg.ServeAddr != "" {
		srv, err := obs.Serve(cfg.ServeAddr, obs.ServerConfig{
			Metrics:  r.obs.Metrics,
			Progress: func() any { return r.obs.Progress() },
		})
		if err != nil {
			return nil, err
		}
		r.srv = srv
		log.Printf("serving sweep introspection on http://%s (/progress, /metrics, /debug/pprof/)", srv.Addr())
	}
	return r, nil
}

// observer returns the harness Observer to attach to the Executor; nil
// when observability is off.
func (r *observedRun) observer() *harness.Observer { return r.obs }

// setSweep records the primary sweep's shape and cells for the artifact
// directory. Called by the grid and case-study paths once their cells
// exist.
func (r *observedRun) setSweep(info sweepInfo) {
	if r.obs == nil {
		return
	}
	r.sweep = &info
}

// close flushes the artifact directory (manifest, metrics, trace,
// results) and stops the server. Failures are reported but never mask
// the sweep's own output.
func (r *observedRun) close() {
	if r.srv != nil {
		if err := r.srv.Close(); err != nil {
			log.Printf("warning: closing introspection server: %v", err)
		}
	}
	if r.obs == nil {
		return
	}
	if r.cfg.OutDir != "" {
		if err := r.writeArtifacts(); err != nil {
			log.Printf("warning: writing %s: %v", r.cfg.OutDir, err)
		}
	}
	if r.ledger != nil {
		if err := r.ledger.Close(); err != nil {
			log.Printf("warning: closing ledger: %v", err)
		}
	}
	if err := r.obs.Err(); err != nil {
		log.Printf("warning: sweep observability: %v", err)
	}
}

func (r *observedRun) writeArtifacts() error {
	dir := r.cfg.OutDir
	if err := writeFileWith(filepath.Join(dir, "metrics.json"), func(f *os.File) error {
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		return enc.Encode(r.obs.Metrics())
	}); err != nil {
		return err
	}
	if r.tracer != nil && r.tracer.Len() > 0 {
		if err := writeFileWith(filepath.Join(dir, "trace.json"), func(f *os.File) error {
			return r.tracer.WriteJSON(f)
		}); err != nil {
			return err
		}
	}
	if r.sweep != nil && len(r.sweep.cells) > 0 {
		if err := writeFileWith(filepath.Join(dir, "results.csv"), func(f *os.File) error {
			return harness.WriteCSV(f, r.sweep.cells)
		}); err != nil {
			return err
		}
	}
	return writeFileWith(filepath.Join(dir, "manifest.json"), func(f *os.File) error {
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		return enc.Encode(r.manifest())
	})
}

func writeFileWith(path string, write func(*os.File) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return fmt.Errorf("%s: %w", path, err)
	}
	return f.Close()
}

// manifestSystem names one design point with its canonical spec hash.
type manifestSystem struct {
	Name string `json:"name"`
	Spec string `json:"spec"`
}

// runManifest is the manifest.json document identifying a run artifact.
type runManifest struct {
	Tool        string           `json:"tool"`
	GoVersion   string           `json:"go_version"`
	Args        []string         `json:"args"`
	StartUTC    string           `json:"start_utc"`
	DurationSec float64          `json:"duration_s"`
	Workers     int              `json:"workers"`
	Grid        string           `json:"grid,omitempty"`
	GridSHA256  string           `json:"grid_sha256,omitempty"`
	GridName    string           `json:"grid_name,omitempty"`
	Kernels     []string         `json:"kernels,omitempty"`
	Systems     []manifestSystem `json:"systems,omitempty"`
	Cells       int              `json:"cells"`
	Failed      int              `json:"failed"`
	Cache       *manifestCache   `json:"cache,omitempty"`
}

// manifestCache summarizes the run's result-cache traffic: how much of
// the sweep was served from the cache rather than simulated, and how
// many hits the -cache-verify tripwire re-simulated.
type manifestCache struct {
	Dir           string  `json:"dir,omitempty"`
	Hits          uint64  `json:"hits"`
	Misses        uint64  `json:"misses"`
	HitRate       float64 `json:"hit_rate"`
	CachedCells   int     `json:"cached_cells"`
	VerifiedCells int     `json:"verified_cells,omitempty"`
	BytesRead     uint64  `json:"bytes_read,omitempty"`
	BytesWritten  uint64  `json:"bytes_written,omitempty"`
}

func (r *observedRun) manifest() runManifest {
	prog := r.obs.Progress()
	// The observer reports the worker pool the sweep actually ran with
	// (the -par flag after clamping); fall back to the flag's default
	// resolution if no sweep ran.
	workers := len(prog.Workers)
	if workers == 0 {
		if workers = r.cfg.Par; workers <= 0 {
			workers = runtime.GOMAXPROCS(0)
		}
	}
	m := runManifest{
		Tool:        "hetsweep",
		GoVersion:   runtime.Version(),
		Args:        os.Args[1:],
		StartUTC:    r.start.UTC().Format(time.RFC3339),
		DurationSec: time.Since(r.start).Seconds(),
		Workers:     workers,
	}
	m.Cells, m.Failed = prog.Done, prog.Failed
	if r.sweep != nil {
		m.Grid = r.sweep.gridPath
		m.GridSHA256 = r.sweep.gridSHA
		m.GridName = r.sweep.gridName
		m.Kernels = r.sweep.kernels
		for _, s := range r.sweep.systems {
			m.Systems = append(m.Systems, manifestSystem{Name: s.Name, Spec: systems.Hash(s)})
		}
	}
	if r.cfg.Cache != nil {
		st := r.cfg.Cache.Stats()
		m.Cache = &manifestCache{
			Dir:           r.cfg.Cache.Dir(),
			Hits:          st.Hits,
			Misses:        st.Misses,
			HitRate:       st.HitRate(),
			CachedCells:   prog.CachedCells,
			VerifiedCells: prog.VerifiedCells,
			BytesRead:     st.BytesRead,
			BytesWritten:  st.BytesWritten,
		}
	}
	return m
}
