// Command hettrace generates, inspects and converts the synthetic kernel
// traces.
//
// Usage:
//
//	hettrace -kernel reduction -info            # per-phase summary
//	hettrace -kernel dct -phase 2 -pu gpu -out dct.trc
//	hettrace -in dct.trc -dump 20               # decode a trace file
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"heteromem/internal/trace"
	"heteromem/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("hettrace: ")
	var (
		kernel   = flag.String("kernel", "reduction", "kernel: "+strings.Join(workload.Names(), ", "))
		info     = flag.Bool("info", false, "print per-phase trace summaries")
		phase    = flag.Int("phase", -1, "phase index to export")
		pu       = flag.String("pu", "cpu", "which PU's stream to export: cpu or gpu")
		out      = flag.String("out", "", "write the selected stream to this file (binary trace format)")
		in       = flag.String("in", "", "read and summarise a binary trace file instead")
		dump     = flag.Int("dump", 0, "print the first N records")
		saveProg = flag.String("saveprog", "", "write the whole kernel as a program file")
		loadProg = flag.String("loadprog", "", "read and summarise a program file instead")
	)
	flag.Parse()

	if *loadProg != "" {
		f, err := os.Open(*loadProg)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		p, err := workload.LoadProgram(f)
		if err != nil {
			log.Fatal(err)
		}
		c := p.Characteristics()
		fmt.Printf("%s (%s): %d CPU + %d GPU + %d serial instructions, %d transfers, %d phases\n",
			c.Name, c.Pattern, c.CPUInsts, c.GPUInsts, c.SerialInsts, c.Comms, len(p.Phases))
		return
	}

	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		s, err := trace.Read(f)
		if err != nil {
			log.Fatal(err)
		}
		printSummary(fmt.Sprintf("%s", *in), trace.NewCursor(s))
		dumpHead(trace.NewCursor(s), *dump)
		return
	}

	// Open (not Generate): phases stay in generator form and every
	// summary, dump and export below streams instructions on demand, so
	// the tool's memory use is O(1) in the trace length.
	p, err := workload.Open(*kernel)
	if err != nil {
		log.Fatal(err)
	}

	if *saveProg != "" {
		f, err := os.Create(*saveProg)
		if err != nil {
			log.Fatal(err)
		}
		if err := workload.SaveProgram(f, p); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote program %s (%d instructions) to %s\n", p.Name, p.TotalInstructions(), *saveProg)
		return
	}

	if *info {
		for i := range p.Phases {
			ph := &p.Phases[i]
			fmt.Printf("phase %d: %s", i, ph.Kind)
			if ph.Kind == workload.Transfer {
				fmt.Printf(" %s %d bytes\n", ph.Dir, ph.Bytes)
				continue
			}
			fmt.Println()
			if ph.CPULen() > 0 {
				printSummary("  cpu", ph.CPUSource())
			}
			if ph.GPULen() > 0 {
				printSummary("  gpu", ph.GPUSource())
			}
		}
		return
	}

	if *phase < 0 || *phase >= len(p.Phases) {
		log.Fatalf("phase %d out of range (0-%d); use -info to list phases", *phase, len(p.Phases)-1)
	}
	ph := &p.Phases[*phase]
	var src func() trace.Source
	var total int
	switch *pu {
	case "cpu":
		src, total = ph.CPUSource, ph.CPULen()
	case "gpu":
		src, total = ph.GPUSource, ph.GPULen()
	default:
		log.Fatalf("unknown PU %q (cpu or gpu)", *pu)
	}
	if total == 0 {
		log.Fatalf("phase %d has no %s stream", *phase, *pu)
	}
	dumpHead(src(), *dump)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		if err := trace.WriteSource(f, src()); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %d records to %s\n", total, *out)
	}
}

func printSummary(label string, src trace.Source) {
	st := trace.SummarizeSource(src)
	fmt.Printf("%s: %d insts, %d mem ops (%d bytes), %d branches (%.0f%% taken), %d SIMD, %d comm, %d push\n",
		label, st.Total, st.MemOps, st.MemBytes, st.Branches, st.TakenRate*100, st.SIMDOps, st.CommOps, st.PushOps)
}

func dumpHead(src trace.Source, n int) {
	for i := 0; i < n; i++ {
		in, ok := src.Next()
		if !ok {
			return
		}
		fmt.Printf("%6d  pc=%#08x %-10s addr=%#x size=%d deps=%d,%d taken=%v lanes=%d\n",
			i, in.PC, in.Kind, in.Addr, in.Size, in.Dep1, in.Dep2, in.Taken, in.ActiveLanes())
	}
}
