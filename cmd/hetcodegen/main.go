// Command hetcodegen emits the per-memory-model pseudo-source for the
// evaluation kernels (the Section V-C programmability study) and prints
// Table V.
//
// Usage:
//
//	hetcodegen -table                      # Table V
//	hetcodegen -kernel reduction -model pas  # show generated source
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	"heteromem/internal/addrspace"
	"heteromem/internal/codegen"
	"heteromem/internal/harness"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("hetcodegen: ")
	var (
		kernel    = flag.String("kernel", "", "kernel to emit source for")
		model     = flag.String("model", "unified", "memory model: uni, dis, pas, adsm")
		table     = flag.Bool("table", false, "print Table V")
		commOnly  = flag.Bool("comm", false, "print only communication-handling lines")
		annotated = flag.Bool("annotate", false, "prefix each line with its class")
	)
	flag.Parse()

	if *table || *kernel == "" {
		fmt.Println(harness.RenderTable5())
		if *kernel == "" {
			return
		}
	}

	m, err := addrspace.ParseModel(strings.ToLower(*model))
	if err != nil {
		log.Fatal(err)
	}
	var k codegen.Kernel
	found := false
	for _, c := range codegen.Kernels() {
		if c.Name == *kernel {
			k, found = c, true
		}
	}
	if !found {
		var names []string
		for _, c := range codegen.Kernels() {
			names = append(names, c.Name)
		}
		log.Fatalf("unknown kernel %q (have %s)", *kernel, strings.Join(names, ", "))
	}

	fmt.Printf("// %s under the %v memory model\n", k.Name, m)
	for _, l := range codegen.Emit(k, m) {
		if *commOnly && l.Class != codegen.Comm {
			continue
		}
		if *annotated {
			fmt.Printf("%-8s %s\n", "["+l.Class.String()+"]", l.Text)
		} else {
			fmt.Println(l.Text)
		}
	}
	comp, comm := codegen.Count(k, m)
	fmt.Printf("// %d compute lines, %d communication lines\n", comp, comm)
}
