// Command hetsim runs one kernel on one heterogeneous system
// configuration and prints the execution-time breakdown and memory-system
// statistics.
//
// Usage:
//
//	hetsim -system LRB -kernel reduction
//	hetsim -all -kernel merge-sort
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"heteromem/internal/energy"
	"heteromem/internal/locality"
	"heteromem/internal/report"
	"heteromem/internal/sim"
	"heteromem/internal/systems"
	"heteromem/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("hetsim: ")
	var (
		system   = flag.String("system", "CPU+GPU", "system configuration: CPU+GPU, LRB, GMAC, Fusion, IDEAL-HETERO")
		kernel   = flag.String("kernel", "reduction", "kernel: "+strings.Join(workload.Names(), ", "))
		program  = flag.String("program", "", "run a saved program file (from hettrace -saveprog) instead of a named kernel")
		all      = flag.Bool("all", false, "run every system on the kernel")
		verbose  = flag.Bool("v", false, "print per-component statistics")
		loc      = flag.String("locality", "", "apply a locality scheme: expl-shared, expl-private, or hybrid")
		energyOn = flag.Bool("energy", false, "print the estimated energy breakdown")
	)
	flag.Parse()

	opts := sim.Options{}
	if *loc != "" {
		scheme, err := schemeByName(*loc)
		if err != nil {
			log.Fatal(err)
		}
		opts.Locality = &scheme
	}

	var p *workload.Program
	var err error
	if *program != "" {
		f, err := os.Open(*program)
		if err != nil {
			log.Fatal(err)
		}
		p, err = workload.LoadProgram(f)
		closeErr := f.Close()
		if err != nil {
			log.Fatal(err)
		}
		if closeErr != nil {
			log.Fatal(closeErr)
		}
	} else {
		p, err = workload.Generate(*kernel)
		if err != nil {
			log.Fatal(err)
		}
	}

	var sysList []systems.System
	if *all {
		sysList = systems.CaseStudies()
	} else {
		s, err := findSystem(*system)
		if err != nil {
			log.Fatal(err)
		}
		sysList = []systems.System{s}
	}

	tbl := report.Table{
		Title:   fmt.Sprintf("%s (%s pattern, %d instructions)", p.Name, p.Pattern, p.TotalInstructions()),
		Headers: []string{"system", "sequential", "parallel", "communication", "total", "comm share"},
	}
	var results []sim.Result
	for _, sys := range sysList {
		s, err := sim.NewWithOptions(sys, opts)
		if err != nil {
			log.Fatal(err)
		}
		res, err := s.Run(p)
		if err != nil {
			log.Fatal(err)
		}
		results = append(results, res)
		tbl.AddRow(sys.Name,
			report.Dur(res.Sequential), report.Dur(res.Parallel),
			report.Dur(res.Communication), report.Dur(res.Total()),
			report.Pct(res.CommFraction()))
	}
	fmt.Print(tbl.String())

	if *verbose {
		for _, res := range results {
			printDetail(res)
		}
	}
	if *energyOn {
		etbl := report.Table{
			Title:   "estimated energy (nJ)",
			Headers: []string{"system", "cores", "caches", "dram", "noc", "comm", "total"},
		}
		for _, res := range results {
			e := energy.EstimateDefault(res)
			etbl.AddRow(res.System,
				fmt.Sprintf("%.0f", e.Cores), fmt.Sprintf("%.0f", e.Caches),
				fmt.Sprintf("%.0f", e.DRAM), fmt.Sprintf("%.0f", e.Interconnect),
				fmt.Sprintf("%.0f", e.Communication), fmt.Sprintf("%.0f", e.Total()))
		}
		fmt.Println()
		fmt.Print(etbl.String())
	}
	_ = os.Stdout.Sync()
}

func schemeByName(name string) (locality.Scheme, error) {
	switch name {
	case "expl-shared":
		return locality.ImplPrivExplShared, nil
	case "expl-private":
		return locality.ExplPrivImplShared, nil
	case "hybrid":
		return locality.HybridShared, nil
	}
	return locality.Scheme{}, fmt.Errorf("unknown locality scheme %q (expl-shared, expl-private, hybrid)", name)
}

func findSystem(name string) (systems.System, error) {
	for _, s := range systems.CaseStudies() {
		if strings.EqualFold(s.Name, name) {
			return s, nil
		}
	}
	var names []string
	for _, s := range systems.CaseStudies() {
		names = append(names, s.Name)
	}
	return systems.System{}, fmt.Errorf("unknown system %q (have %s)", name, strings.Join(names, ", "))
}

func printDetail(res sim.Result) {
	tbl := report.Table{
		Title:   fmt.Sprintf("%s details", res.System),
		Headers: []string{"metric", "value"},
	}
	tbl.AddRow("cpu instructions", res.CPU.Instructions)
	tbl.AddRow("cpu mispredicts", res.CPU.Mispredicts)
	tbl.AddRow("gpu instructions", res.GPU.Instructions)
	tbl.AddRow("gpu line requests", res.GPU.LineRequests)
	tbl.AddRow("page faults (lib-pf)", res.PageFaults)
	tbl.AddRow("ownership ops", res.OwnershipOps)
	tbl.AddRow("fabric", res.Fabric.String())
	tbl.AddRow("dram fills cpu/gpu", fmt.Sprintf("%d/%d", res.Mem.DRAMFills[0], res.Mem.DRAMFills[1]))
	tbl.AddRow("L3 hits cpu/gpu", fmt.Sprintf("%d/%d", res.Mem.L3Hits[0], res.Mem.L3Hits[1]))
	tbl.AddRow("page-table map updates", fmt.Sprintf("cpu %d, gpu %d", res.Space.MapUpdates[0], res.Space.MapUpdates[1]))
	fmt.Println()
	fmt.Print(tbl.String())
}
