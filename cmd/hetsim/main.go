// Command hetsim runs one kernel on one heterogeneous system
// configuration and prints the execution-time breakdown and memory-system
// statistics.
//
// Usage:
//
//	hetsim -system LRB -kernel reduction
//	hetsim -all -kernel merge-sort
//	hetsim -all -kernel fft -cache .hetcache   # reuse/fill the result cache
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"sync"
	"time"

	"heteromem/internal/clock"
	"heteromem/internal/config"
	"heteromem/internal/energy"
	"heteromem/internal/harness"
	"heteromem/internal/locality"
	"heteromem/internal/obs"
	"heteromem/internal/prof"
	"heteromem/internal/report"
	"heteromem/internal/rescache"
	"heteromem/internal/sim"
	"heteromem/internal/systems"
	"heteromem/internal/workload"
	"heteromem/internal/xlat"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("hetsim: ")
	var (
		system   = flag.String("system", "CPU+GPU", "system configuration: a built-in name (CPU+GPU, LRB, GMAC, Fusion, IDEAL-HETERO, grace-hopper) or a path to a declarative JSON file (see examples/systems)")
		kernel   = flag.String("kernel", "reduction", "kernel: "+strings.Join(workload.Names(), ", "))
		program  = flag.String("program", "", "run a saved program file (from hettrace -saveprog) instead of a named kernel")
		all      = flag.Bool("all", false, "run every system on the kernel")
		verbose  = flag.Bool("v", false, "print per-component statistics")
		loc      = flag.String("locality", "", "apply a locality scheme: expl-shared, expl-private, or hybrid")
		energyOn = flag.Bool("energy", false, "print the estimated energy breakdown")
		xlatName = flag.String("xlat", "", "override the system's address-translation front-end with a preset ("+strings.Join(xlat.Presets(), ", ")+")")
		cacheDir = flag.String("cache", "", "persistent result-cache directory shared with hetsweep: serve previously simulated points from the cache and store new results into it")

		jsonOut        = flag.Bool("json", false, "emit the full results as JSON to stdout instead of tables")
		traceOut       = flag.String("trace", "", "write a Chrome/Perfetto trace-event JSON file (single system only)")
		intervalOut    = flag.String("interval-stats", "", "write the per-epoch interval statistics CSV (single system only)")
		intervalCycles = flag.Uint64("interval-cycles", 100_000, "sampling epoch length in CPU cycles for -interval-stats")
		metricsOut     = flag.String("metrics-json", "", "write the final metrics registry as JSON; \"-\" for stdout (single system only)")
		serveAddr      = flag.String("serve", "", "serve live introspection (/metrics from phase-boundary snapshots, /progress, pprof) on this address while running")
		hostprofEvery  = flag.Int("hostprof", 0, "host-time self-profiling: time one in every N memory-pipeline runs, reported as host.* metrics (0 = off)")
	)
	flag.Parse()
	defer prof.Start()()

	observing := *traceOut != "" || *intervalOut != "" || *metricsOut != "" ||
		*serveAddr != "" || *hostprofEvery > 0
	if (*traceOut != "" || *intervalOut != "" || *metricsOut != "") && *all {
		log.Fatal("-trace, -interval-stats and -metrics-json apply to a single system; drop -all")
	}

	var cache *rescache.Store
	if *cacheDir != "" {
		var err error
		if cache, err = rescache.Open(*cacheDir); err != nil {
			log.Fatal(err)
		}
		if observing {
			// Instrumented runs exist for their side channels (traces,
			// interval CSVs, live metrics), which a cache hit would leave
			// empty — simulate everything, but still fill the cache.
			log.Print("observability sinks requested: cache hits disabled for this run; results are still stored")
		}
	}

	opts := sim.Options{}
	if *loc != "" {
		scheme, err := schemeByName(*loc)
		if err != nil {
			log.Fatal(err)
		}
		opts.Locality = &scheme
	}

	var p *workload.Program
	var err error
	if *program != "" {
		f, err := os.Open(*program)
		if err != nil {
			log.Fatal(err)
		}
		p, err = workload.LoadProgram(f)
		closeErr := f.Close()
		if err != nil {
			log.Fatal(err)
		}
		if closeErr != nil {
			log.Fatal(closeErr)
		}
	} else {
		p, err = workload.Open(*kernel)
		if err != nil {
			log.Fatal(err)
		}
	}

	var sysList []systems.System
	if *all {
		sysList = systems.CaseStudies()
	} else {
		s, err := findSystem(*system)
		if err != nil {
			log.Fatal(err)
		}
		sysList = []systems.System{s}
	}
	if *xlatName != "" {
		xspec, err := xlat.ParsePreset(*xlatName)
		if err != nil {
			log.Fatal(err)
		}
		for i := range sysList {
			sysList[i].Translation = xspec
		}
	}

	var reg *obs.Registry
	var sampler *obs.Sampler
	var tracer *obs.Tracer
	var progress runProgress
	if observing {
		reg = obs.NewRegistry()
		opts.Metrics = reg
		if *intervalOut != "" {
			cyclePS := uint64(config.BaselineCPU().Domain().PeriodPS())
			if *intervalCycles == 0 {
				log.Fatal("-interval-cycles must be positive")
			}
			sampler = obs.NewSampler(reg, *intervalCycles*cyclePS)
			opts.Sampler = sampler
		}
		if *traceOut != "" {
			tracer = obs.NewTracer()
			opts.Tracer = tracer
		}
		if *hostprofEvery > 0 {
			opts.HostProf = obs.NewHostProf(*hostprofEvery)
		}
		if *serveAddr != "" {
			pub := &obs.Publisher{}
			opts.Publish = pub
			srv, err := obs.Serve(*serveAddr, obs.ServerConfig{
				Metrics:  pub.Latest,
				Progress: func() any { return progress.snapshot() },
			})
			if err != nil {
				log.Fatal(err)
			}
			defer srv.Close()
			log.Printf("serving introspection on http://%s (/progress, /metrics, /debug/pprof/)", srv.Addr())
		}
	}

	tbl := report.Table{
		Title:   fmt.Sprintf("%s (%s pattern, %d instructions)", p.Name, p.Pattern, p.TotalInstructions()),
		Headers: []string{"system", "sequential", "parallel", "communication", "total", "comm share"},
	}
	var results []sim.Result
	progress.setTotal(len(sysList))
	for _, sys := range sysList {
		progress.setCurrent(sys.Name, p.Name)
		var key rescache.Key
		if cache != nil {
			key = harness.PointKey(sys, p, opts)
		}
		var res sim.Result
		if hit, ok := lookup(cache, key, observing); ok {
			// The spec hash is name-invariant; restamp the cached result
			// with this run's labels.
			hit.System, hit.Kernel = sys.Name, p.Name
			res = hit
		} else {
			s, err := sim.NewWithOptions(sys, opts)
			if err != nil {
				log.Fatal(err)
			}
			if res, err = s.Run(p); err != nil {
				log.Fatal(err)
			}
			if err := cache.Put(key, res); err != nil {
				log.Printf("warning: %v", err)
			}
		}
		progress.finishCurrent()
		results = append(results, res)
		tbl.AddRow(sys.Name,
			report.Dur(res.Sequential), report.Dur(res.Parallel),
			report.Dur(res.Communication), report.Dur(res.Total()),
			report.Pct(res.CommFraction()))
	}
	if cache != nil {
		st := cache.Stats()
		log.Printf("cache %s: %d hits, %d misses", cache.Dir(), st.Hits, st.Misses)
		if err := cache.Err(); err != nil {
			log.Printf("warning: cache degraded to memory-only: %v", err)
		}
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(results); err != nil {
			log.Fatal(err)
		}
	} else {
		fmt.Print(tbl.String())
	}
	writeObservability(*traceOut, tracer, *intervalOut, sampler, *metricsOut, reg)

	if *verbose && !*jsonOut {
		for _, res := range results {
			printDetail(res)
		}
	}
	if *energyOn && !*jsonOut {
		etbl := report.Table{
			Title:   "estimated energy (nJ)",
			Headers: []string{"system", "cores", "caches", "dram", "noc", "comm", "total"},
		}
		for _, res := range results {
			e := energy.EstimateDefault(res)
			etbl.AddRow(res.System,
				fmt.Sprintf("%.0f", e.Cores), fmt.Sprintf("%.0f", e.Caches),
				fmt.Sprintf("%.0f", e.DRAM), fmt.Sprintf("%.0f", e.Interconnect),
				fmt.Sprintf("%.0f", e.Communication), fmt.Sprintf("%.0f", e.Total()))
		}
		fmt.Println()
		fmt.Print(etbl.String())
	}
	_ = os.Stdout.Sync()
}

// lookup probes the result cache unless caching is off or the run is
// instrumented (a hit would skip the simulation the sinks exist to
// observe).
func lookup(cache *rescache.Store, key rescache.Key, observing bool) (sim.Result, bool) {
	if cache == nil || observing {
		return sim.Result{}, false
	}
	return cache.Get(key)
}

// runProgress is the /progress document for a hetsim run: which system
// is simulating now and how many runs are done. Synchronised because the
// introspection server reads it from HTTP goroutines.
type runProgress struct {
	mu      sync.Mutex
	system  string
	kernel  string
	total   int
	done    int
	started time.Time
}

func (p *runProgress) setTotal(n int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.total = n
	p.started = time.Now()
}

func (p *runProgress) setCurrent(system, kernel string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.system, p.kernel = system, kernel
}

func (p *runProgress) finishCurrent() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.system, p.kernel = "", ""
	p.done++
}

func (p *runProgress) snapshot() any {
	p.mu.Lock()
	defer p.mu.Unlock()
	doc := map[string]any{
		"total": p.total,
		"done":  p.done,
	}
	if !p.started.IsZero() {
		doc["elapsed_s"] = time.Since(p.started).Seconds()
	}
	if p.system != "" {
		doc["current"] = p.system + "/" + p.kernel
	}
	return doc
}

// writeObservability flushes the attached sinks to their output files.
func writeObservability(tracePath string, tracer *obs.Tracer, intervalPath string, sampler *obs.Sampler, metricsPath string, reg *obs.Registry) {
	writeTo := func(path string, write func(*os.File) error) {
		f := os.Stdout
		if path != "-" {
			var err error
			if f, err = os.Create(path); err != nil {
				log.Fatal(err)
			}
		}
		err := write(f)
		if path != "-" {
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			log.Fatal(err)
		}
	}
	if tracePath != "" {
		writeTo(tracePath, func(f *os.File) error { return tracer.WriteJSON(f) })
	}
	if intervalPath != "" {
		writeTo(intervalPath, func(f *os.File) error { return sampler.WriteCSV(f) })
	}
	if metricsPath != "" {
		writeTo(metricsPath, func(f *os.File) error { return reg.WriteJSON(f) })
	}
}

func schemeByName(name string) (locality.Scheme, error) {
	switch name {
	case "expl-shared":
		return locality.ImplPrivExplShared, nil
	case "expl-private":
		return locality.ExplPrivImplShared, nil
	case "hybrid":
		return locality.HybridShared, nil
	}
	return locality.Scheme{}, fmt.Errorf("unknown locality scheme %q (expl-shared, expl-private, hybrid)", name)
}

// findSystem resolves -system: a built-in name, or a path to a
// declarative JSON description (systems.Load).
func findSystem(name string) (systems.System, error) {
	builtins := append(systems.CaseStudies(), systems.GraceHopper())
	for _, s := range builtins {
		if strings.EqualFold(s.Name, name) {
			return s, nil
		}
	}
	if st, err := os.Stat(name); err == nil && !st.IsDir() {
		return systems.LoadFile(name)
	}
	var names []string
	for _, s := range builtins {
		names = append(names, s.Name)
	}
	return systems.System{}, fmt.Errorf("unknown system %q (have %s, or a JSON file path)", name, strings.Join(names, ", "))
}

func printDetail(res sim.Result) {
	tbl := report.Table{
		Title:   fmt.Sprintf("%s details", res.System),
		Headers: []string{"metric", "value"},
	}
	tbl.AddRow("cpu instructions", res.CPU.Instructions)
	tbl.AddRow("cpu mispredicts", res.CPU.Mispredicts)
	tbl.AddRow("gpu instructions", res.GPU.Instructions)
	tbl.AddRow("gpu line requests", res.GPU.LineRequests)
	tbl.AddRow("page faults (lib-pf)", res.PageFaults)
	tbl.AddRow("ownership ops", res.OwnershipOps)
	tbl.AddRow("fabric", res.Fabric.String())
	tbl.AddRow("memory technology", res.MemTech)
	tbl.AddRow("translation", res.Translation)
	if res.Translation != "off" {
		tbl.AddRow("tlb misses cpu/gpu", fmt.Sprintf("%d/%d (of %d/%d)",
			res.Mem.XlatMisses[0], res.Mem.XlatMisses[1],
			res.Mem.XlatLookups[0], res.Mem.XlatLookups[1]))
		tbl.AddRow("page-walk stall cpu/gpu", fmt.Sprintf("%v/%v",
			report.Dur(clock.Duration(res.Mem.XlatWalkPS[0])),
			report.Dur(clock.Duration(res.Mem.XlatWalkPS[1]))))
		tbl.AddRow("tlb shootdowns cpu/gpu", fmt.Sprintf("%d/%d",
			res.Mem.XlatShootdowns[0], res.Mem.XlatShootdowns[1]))
	}
	tbl.AddRow("dram fills cpu/gpu", fmt.Sprintf("%d/%d", res.Mem.DRAMFills[0], res.Mem.DRAMFills[1]))
	tbl.AddRow("L3 hits cpu/gpu", fmt.Sprintf("%d/%d", res.Mem.L3Hits[0], res.Mem.L3Hits[1]))
	tbl.AddRow("page-table map updates", fmt.Sprintf("cpu %d, gpu %d", res.Space.MapUpdates[0], res.Space.MapUpdates[1]))
	fmt.Println()
	fmt.Print(tbl.String())
}
