// Command benchcmp compares two benchmark headline reports
// (BENCH_<date>.json, written by the repository benchmarks with
// HETSIM_BENCH_JSON set) and fails when performance regressed.
//
// Usage:
//
//	benchcmp -old prev/BENCH_2026-07-01.json -new BENCH_2026-08-05.json
//	benchcmp -old ... -new ... -md "$GITHUB_STEP_SUMMARY"
//
// Entries are matched by name. For cost-like units (ns/op, B/op,
// allocs/op — lower is better) the comparison fails if the new value
// exceeds the old by more than the threshold (default 10%); movement
// below the old value by more than the threshold is reported as an
// improvement. When a report carries multiple samples per entry (a
// -count=N run), the comparison uses the best (minimum) sample on both
// sides: the minimum of repeated runs is the least noise-contaminated
// cost estimate, so one slow outlier sample no longer produces a false
// regression. The median is shown alongside for context but never
// gates. Entries present in only one report are listed but never fail
// the run, so adding or renaming benchmarks does not break CI. A
// missing baseline (-old unset or naming a file that does not exist)
// prints a note and exits 0 — the first run of a branch has nothing to
// compare against.
// With -md, a markdown summary table is appended to the given file
// (pass $GITHUB_STEP_SUMMARY to surface it on the workflow run page).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"strings"

	"heteromem/internal/obs"
)

func load(path string) (map[string]obs.BenchEntry, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r obs.BenchReport
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	m := make(map[string]obs.BenchEntry, len(r.Entries))
	for _, e := range r.Entries {
		m[e.Name] = e
	}
	return m, nil
}

// row is one comparison line, kept for both the text and markdown
// renderings.
type row struct {
	status  string // "ok", "improved", "REGRESSED", "new", "gone"
	name    string
	oldV    float64
	newV    float64 // gating value: best-of-N for cost units
	newMed  float64 // median of the new samples, context only
	samples int     // sample count behind newV
	unit    string
	delta   float64 // relative change, valid for matched entries
	match   bool    // both sides present
}

// gate returns the value an entry is compared on: the best (minimum)
// sample for cost units, the headline value otherwise.
func gate(e obs.BenchEntry) float64 {
	if obs.CostUnit(e.Unit) {
		return e.Min()
	}
	return e.Value
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchcmp: ")
	var (
		oldPath   = flag.String("old", "", "baseline BENCH_<date>.json")
		newPath   = flag.String("new", "", "candidate BENCH_<date>.json")
		threshold = flag.Float64("threshold", 0.10, "relative change on cost units counted as a regression or improvement")
		mdPath    = flag.String("md", "", "append a markdown summary table to this file (e.g. $GITHUB_STEP_SUMMARY)")
	)
	flag.Parse()
	if *newPath == "" {
		log.Fatal("-new is required")
	}
	// A missing baseline is the normal first run of a fresh branch or a
	// new CI cache: there is nothing to compare against, which is not a
	// failure.
	if *oldPath == "" {
		fmt.Println("benchcmp: no previous artifact to compare against (-old not set); skipping comparison")
		return
	}
	if _, err := os.Stat(*oldPath); os.IsNotExist(err) {
		fmt.Printf("benchcmp: no previous artifact to compare against (%s does not exist); skipping comparison\n", *oldPath)
		return
	}

	oldE, err := load(*oldPath)
	if err != nil {
		log.Fatal(err)
	}
	newE, err := load(*newPath)
	if err != nil {
		log.Fatal(err)
	}

	names := make([]string, 0, len(newE))
	for name := range newE {
		names = append(names, name)
	}
	sort.Strings(names)

	var rows []row
	regressions, improvements := 0, 0
	for _, name := range names {
		ne := newE[name]
		nv, nmed, nsamp := gate(ne), ne.Median(), len(ne.Samples)
		oe, ok := oldE[name]
		if !ok {
			rows = append(rows, row{status: "new", name: name, newV: nv, newMed: nmed, samples: nsamp, unit: ne.Unit})
			continue
		}
		ov := gate(oe)
		delta := 0.0
		if ov != 0 {
			delta = (nv - ov) / ov
		}
		status := "ok"
		if obs.CostUnit(ne.Unit) && ov > 0 {
			switch {
			case nv > ov*(1+*threshold):
				status = "REGRESSED"
				regressions++
			case nv < ov*(1-*threshold):
				status = "improved"
				improvements++
			}
		}
		rows = append(rows, row{status: status, name: name, oldV: ov, newV: nv, newMed: nmed, samples: nsamp, unit: ne.Unit, delta: delta, match: true})
	}
	goneNames := make([]string, 0, len(oldE))
	for name := range oldE {
		if _, ok := newE[name]; !ok {
			goneNames = append(goneNames, name)
		}
	}
	sort.Strings(goneNames)
	for _, name := range goneNames {
		oe := oldE[name]
		rows = append(rows, row{status: "gone", name: name, oldV: gate(oe), unit: oe.Unit})
	}

	for _, r := range rows {
		switch r.status {
		case "new":
			fmt.Printf("NEW    %-60s %14.1f %s\n", r.name, r.newV, r.unit)
		case "gone":
			fmt.Printf("GONE   %-60s %14.1f %s\n", r.name, r.oldV, r.unit)
		default:
			tag := map[string]string{"ok": "ok    ", "improved": "IMPROV", "REGRESSED": "REGRES"}[r.status]
			extra := ""
			if r.samples > 1 {
				extra = fmt.Sprintf(" [best of %d, median %.1f]", r.samples, r.newMed)
			}
			fmt.Printf("%s %-60s %14.1f -> %14.1f %s (%+.1f%%)%s\n",
				tag, r.name, r.oldV, r.newV, r.unit, r.delta*100, extra)
		}
	}
	if improvements > 0 {
		fmt.Printf("benchcmp: %d entr%s improved more than %.0f%%\n",
			improvements, plural(improvements), *threshold*100)
	}

	if *mdPath != "" {
		if err := appendMarkdown(*mdPath, rows, regressions, improvements, *threshold); err != nil {
			log.Fatal(err)
		}
	}

	if regressions > 0 {
		log.Fatalf("%d entr%s regressed more than %.0f%%",
			regressions, plural(regressions), *threshold*100)
	}
	fmt.Println("benchcmp: no regressions beyond threshold")
}

// appendMarkdown appends the comparison as a markdown table, the format
// GitHub renders from $GITHUB_STEP_SUMMARY (which is append-only: other
// steps may have written their own sections). The "new (min)" column is
// the value the gate ran on; "median" shows the central tendency of the
// same samples so a lucky minimum is visible as such.
func appendMarkdown(path string, rows []row, regressions, improvements int, threshold float64) error {
	var b strings.Builder
	verdict := "✅ no regressions beyond threshold"
	if regressions > 0 {
		verdict = fmt.Sprintf("❌ %d entr%s regressed more than %.0f%%", regressions, plural(regressions), threshold*100)
	}
	fmt.Fprintf(&b, "### Benchmark comparison\n\n%s", verdict)
	if improvements > 0 {
		fmt.Fprintf(&b, "; %d improved more than %.0f%%", improvements, threshold*100)
	}
	b.WriteString("\n\n| benchmark | old | new (min) | median | unit | change | status |\n|---|--:|--:|--:|---|--:|---|\n")
	for _, r := range rows {
		icon := map[string]string{
			"ok": "", "improved": "🟢 improved", "REGRESSED": "🔴 regressed",
			"new": "new", "gone": "gone",
		}[r.status]
		med := "—"
		if r.samples > 1 {
			med = fmt.Sprintf("%.1f (n=%d)", r.newMed, r.samples)
		}
		switch r.status {
		case "new":
			fmt.Fprintf(&b, "| %s | — | %.1f | %s | %s | — | %s |\n", r.name, r.newV, med, r.unit, icon)
		case "gone":
			fmt.Fprintf(&b, "| %s | %.1f | — | — | %s | — | %s |\n", r.name, r.oldV, r.unit, icon)
		default:
			fmt.Fprintf(&b, "| %s | %.1f | %.1f | %s | %s | %+.1f%% | %s |\n",
				r.name, r.oldV, r.newV, med, r.unit, r.delta*100, icon)
		}
	}
	b.WriteString("\n")
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.WriteString(b.String()); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func plural(n int) string {
	if n == 1 {
		return "y"
	}
	return "ies"
}
