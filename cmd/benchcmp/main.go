// Command benchcmp compares two benchmark headline reports
// (BENCH_<date>.json, written by the repository benchmarks with
// HETSIM_BENCH_JSON set) and fails when performance regressed.
//
// Usage:
//
//	benchcmp -old prev/BENCH_2026-07-01.json -new BENCH_2026-08-05.json
//
// Entries are matched by name. For cost-like units (ns/op, B/op,
// allocs/op — lower is better) the comparison fails if the new value
// exceeds the old by more than the threshold (default 10%). Entries
// present in only one report are listed but never fail the run, so
// adding or renaming benchmarks does not break CI.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"sort"

	"heteromem/internal/obs"
)

// costUnits are units where a larger value means worse performance.
var costUnits = map[string]bool{
	"ns/op":     true,
	"B/op":      true,
	"allocs/op": true,
}

func load(path string) (map[string]obs.BenchEntry, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r obs.BenchReport
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	m := make(map[string]obs.BenchEntry, len(r.Entries))
	for _, e := range r.Entries {
		m[e.Name] = e
	}
	return m, nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchcmp: ")
	var (
		oldPath   = flag.String("old", "", "baseline BENCH_<date>.json")
		newPath   = flag.String("new", "", "candidate BENCH_<date>.json")
		threshold = flag.Float64("threshold", 0.10, "allowed relative regression on cost units")
	)
	flag.Parse()
	if *oldPath == "" || *newPath == "" {
		log.Fatal("both -old and -new are required")
	}

	oldE, err := load(*oldPath)
	if err != nil {
		log.Fatal(err)
	}
	newE, err := load(*newPath)
	if err != nil {
		log.Fatal(err)
	}

	names := make([]string, 0, len(newE))
	for name := range newE {
		names = append(names, name)
	}
	sort.Strings(names)

	regressions := 0
	for _, name := range names {
		ne := newE[name]
		oe, ok := oldE[name]
		if !ok {
			fmt.Printf("NEW    %-60s %14.1f %s\n", name, ne.Value, ne.Unit)
			continue
		}
		delta := 0.0
		if oe.Value != 0 {
			delta = (ne.Value - oe.Value) / oe.Value
		}
		status := "ok    "
		if costUnits[ne.Unit] && oe.Value > 0 && ne.Value > oe.Value*(1+*threshold) {
			status = "REGRES"
			regressions++
		}
		fmt.Printf("%s %-60s %14.1f -> %14.1f %s (%+.1f%%)\n",
			status, name, oe.Value, ne.Value, ne.Unit, delta*100)
	}
	for name, oe := range oldE {
		if _, ok := newE[name]; !ok {
			fmt.Printf("GONE   %-60s %14.1f %s\n", name, oe.Value, oe.Unit)
		}
	}

	if regressions > 0 {
		log.Fatalf("%d entr%s regressed more than %.0f%%",
			regressions, plural(regressions), *threshold*100)
	}
	fmt.Println("benchcmp: no regressions beyond threshold")
}

func plural(n int) string {
	if n == 1 {
		return "y"
	}
	return "ies"
}
