// Command benchcmp compares two benchmark headline reports
// (BENCH_<date>.json, written by the repository benchmarks with
// HETSIM_BENCH_JSON set) and fails when performance regressed.
//
// Usage:
//
//	benchcmp -old prev/BENCH_2026-07-01.json -new BENCH_2026-08-05.json
//	benchcmp -old ... -new ... -md "$GITHUB_STEP_SUMMARY"
//
// Entries are matched by name. For cost-like units (ns/op, B/op,
// allocs/op — lower is better) the comparison fails if the new value
// exceeds the old by more than the threshold (default 10%); movement
// below the old value by more than the threshold is reported as an
// improvement. Entries present in only one report are listed but never
// fail the run, so adding or renaming benchmarks does not break CI. A
// missing baseline (-old unset or naming a file that does not exist)
// prints a note and exits 0 — the first run of a branch has nothing to
// compare against.
// With -md, a markdown summary table is appended to the given file
// (pass $GITHUB_STEP_SUMMARY to surface it on the workflow run page).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"strings"

	"heteromem/internal/obs"
)

// costUnits are units where a larger value means worse performance.
var costUnits = map[string]bool{
	"ns/op":     true,
	"B/op":      true,
	"allocs/op": true,
}

func load(path string) (map[string]obs.BenchEntry, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r obs.BenchReport
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	m := make(map[string]obs.BenchEntry, len(r.Entries))
	for _, e := range r.Entries {
		m[e.Name] = e
	}
	return m, nil
}

// row is one comparison line, kept for both the text and markdown
// renderings.
type row struct {
	status string // "ok", "improved", "REGRESSED", "new", "gone"
	name   string
	oldV   float64
	newV   float64
	unit   string
	delta  float64 // relative change, valid for matched entries
	match  bool    // both sides present
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchcmp: ")
	var (
		oldPath   = flag.String("old", "", "baseline BENCH_<date>.json")
		newPath   = flag.String("new", "", "candidate BENCH_<date>.json")
		threshold = flag.Float64("threshold", 0.10, "relative change on cost units counted as a regression or improvement")
		mdPath    = flag.String("md", "", "append a markdown summary table to this file (e.g. $GITHUB_STEP_SUMMARY)")
	)
	flag.Parse()
	if *newPath == "" {
		log.Fatal("-new is required")
	}
	// A missing baseline is the normal first run of a fresh branch or a
	// new CI cache: there is nothing to compare against, which is not a
	// failure.
	if *oldPath == "" {
		fmt.Println("benchcmp: no previous artifact to compare against (-old not set); skipping comparison")
		return
	}
	if _, err := os.Stat(*oldPath); os.IsNotExist(err) {
		fmt.Printf("benchcmp: no previous artifact to compare against (%s does not exist); skipping comparison\n", *oldPath)
		return
	}

	oldE, err := load(*oldPath)
	if err != nil {
		log.Fatal(err)
	}
	newE, err := load(*newPath)
	if err != nil {
		log.Fatal(err)
	}

	names := make([]string, 0, len(newE))
	for name := range newE {
		names = append(names, name)
	}
	sort.Strings(names)

	var rows []row
	regressions, improvements := 0, 0
	for _, name := range names {
		ne := newE[name]
		oe, ok := oldE[name]
		if !ok {
			rows = append(rows, row{status: "new", name: name, newV: ne.Value, unit: ne.Unit})
			continue
		}
		delta := 0.0
		if oe.Value != 0 {
			delta = (ne.Value - oe.Value) / oe.Value
		}
		status := "ok"
		if costUnits[ne.Unit] && oe.Value > 0 {
			switch {
			case ne.Value > oe.Value*(1+*threshold):
				status = "REGRESSED"
				regressions++
			case ne.Value < oe.Value*(1-*threshold):
				status = "improved"
				improvements++
			}
		}
		rows = append(rows, row{status: status, name: name, oldV: oe.Value, newV: ne.Value, unit: ne.Unit, delta: delta, match: true})
	}
	goneNames := make([]string, 0, len(oldE))
	for name := range oldE {
		if _, ok := newE[name]; !ok {
			goneNames = append(goneNames, name)
		}
	}
	sort.Strings(goneNames)
	for _, name := range goneNames {
		oe := oldE[name]
		rows = append(rows, row{status: "gone", name: name, oldV: oe.Value, unit: oe.Unit})
	}

	for _, r := range rows {
		switch r.status {
		case "new":
			fmt.Printf("NEW    %-60s %14.1f %s\n", r.name, r.newV, r.unit)
		case "gone":
			fmt.Printf("GONE   %-60s %14.1f %s\n", r.name, r.oldV, r.unit)
		default:
			tag := map[string]string{"ok": "ok    ", "improved": "IMPROV", "REGRESSED": "REGRES"}[r.status]
			fmt.Printf("%s %-60s %14.1f -> %14.1f %s (%+.1f%%)\n",
				tag, r.name, r.oldV, r.newV, r.unit, r.delta*100)
		}
	}
	if improvements > 0 {
		fmt.Printf("benchcmp: %d entr%s improved more than %.0f%%\n",
			improvements, plural(improvements), *threshold*100)
	}

	if *mdPath != "" {
		if err := appendMarkdown(*mdPath, rows, regressions, improvements, *threshold); err != nil {
			log.Fatal(err)
		}
	}

	if regressions > 0 {
		log.Fatalf("%d entr%s regressed more than %.0f%%",
			regressions, plural(regressions), *threshold*100)
	}
	fmt.Println("benchcmp: no regressions beyond threshold")
}

// appendMarkdown appends the comparison as a markdown table, the format
// GitHub renders from $GITHUB_STEP_SUMMARY (which is append-only: other
// steps may have written their own sections).
func appendMarkdown(path string, rows []row, regressions, improvements int, threshold float64) error {
	var b strings.Builder
	verdict := "✅ no regressions beyond threshold"
	if regressions > 0 {
		verdict = fmt.Sprintf("❌ %d entr%s regressed more than %.0f%%", regressions, plural(regressions), threshold*100)
	}
	fmt.Fprintf(&b, "### Benchmark comparison\n\n%s", verdict)
	if improvements > 0 {
		fmt.Fprintf(&b, "; %d improved more than %.0f%%", improvements, threshold*100)
	}
	b.WriteString("\n\n| benchmark | old | new | unit | change | status |\n|---|--:|--:|---|--:|---|\n")
	for _, r := range rows {
		icon := map[string]string{
			"ok": "", "improved": "🟢 improved", "REGRESSED": "🔴 regressed",
			"new": "new", "gone": "gone",
		}[r.status]
		switch r.status {
		case "new":
			fmt.Fprintf(&b, "| %s | — | %.1f | %s | — | %s |\n", r.name, r.newV, r.unit, icon)
		case "gone":
			fmt.Fprintf(&b, "| %s | %.1f | — | %s | — | %s |\n", r.name, r.oldV, r.unit, icon)
		default:
			fmt.Fprintf(&b, "| %s | %.1f | %.1f | %s | %+.1f%% | %s |\n",
				r.name, r.oldV, r.newV, r.unit, r.delta*100, icon)
		}
	}
	b.WriteString("\n")
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.WriteString(b.String()); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func plural(n int) string {
	if n == 1 {
		return "y"
	}
	return "ies"
}
