// Benchmark harness regenerating every table and figure of the paper's
// evaluation (see DESIGN.md's experiment index), plus ablation benches
// for the design decisions the implementation makes. Run with:
//
//	go test -bench=. -benchmem
//
// Table and figure benches print their artifact once (first iteration)
// so a bench run leaves the regenerated evaluation in its log.
package heteromem_test

import (
	"fmt"
	"os"
	"runtime"
	"sync"
	"testing"
	"time"

	"heteromem"
	"heteromem/internal/cache"
	"heteromem/internal/clock"
	"heteromem/internal/config"
	"heteromem/internal/cpu"
	"heteromem/internal/dram"
	"heteromem/internal/harness"
	"heteromem/internal/mem"
	"heteromem/internal/memtech"
	"heteromem/internal/obs"
	"heteromem/internal/rescache"
	"heteromem/internal/sim"
	"heteromem/internal/systems"
	"heteromem/internal/workload"
	"heteromem/internal/xlat"
)

var printOnce sync.Map

func printArtifact(b *testing.B, key, artifact string) {
	b.Helper()
	if _, done := printOnce.LoadOrStore(key, true); !done {
		b.Log("\n" + artifact)
	}
}

// benchJSON collects headline numbers for a BENCH_<date>.json dump when
// HETSIM_BENCH_JSON is set (see TestMain). Nil when disabled; every
// method on a nil report is a no-op.
var benchJSON *obs.BenchReport

// TestMain writes the collected benchmark headline numbers to
// BENCH_<date>.json in the repository root after a run with
// HETSIM_BENCH_JSON set (to a YYYY-MM-DD date, or to 1 for today).
func TestMain(m *testing.M) {
	if date := os.Getenv("HETSIM_BENCH_JSON"); date != "" {
		if date == "1" || date == "true" {
			date = time.Now().Format("2006-01-02")
		}
		benchJSON = obs.NewBenchReport(date)
		benchJSON.GoOS, benchJSON.GoArch = runtime.GOOS, runtime.GOARCH
		// Record the runtime knobs so two reports are known to be
		// comparable (CI pins both; see .github/workflows/ci.yml).
		benchJSON.GoGC = os.Getenv("GOGC")
		if benchJSON.GoGC == "" {
			benchJSON.GoGC = "default"
		}
		benchJSON.GoMaxProcs = runtime.GOMAXPROCS(0)
	}
	code := m.Run()
	if benchJSON != nil && len(benchJSON.Entries) > 0 {
		path, err := benchJSON.WriteFile(".")
		if err != nil {
			fmt.Fprintln(os.Stderr, "writing bench json:", err)
			os.Exit(1)
		}
		fmt.Fprintln(os.Stderr, "wrote", path)
	}
	os.Exit(code)
}

// reportMetric reports a custom metric to the benchmark framework and
// records it in the JSON report under the benchmark's full name.
func reportMetric(b *testing.B, value float64, unit string) {
	b.ReportMetric(value, unit)
	benchJSON.Add(b.Name()+"/"+unit, value, unit)
}

// --- Tables ---

func BenchmarkTable1SystemsSurvey(b *testing.B) {
	var out string
	for i := 0; i < b.N; i++ {
		out = harness.RenderTable1()
	}
	printArtifact(b, "t1", out)
}

func BenchmarkTable2BaselineConfig(b *testing.B) {
	var out string
	for i := 0; i < b.N; i++ {
		out = harness.RenderTable2()
	}
	printArtifact(b, "t2", out)
}

func BenchmarkTable3BenchmarkCharacteristics(b *testing.B) {
	var out string
	for i := 0; i < b.N; i++ {
		out = harness.RenderTable3()
	}
	printArtifact(b, "t3", out)
}

func BenchmarkTable4CommParameters(b *testing.B) {
	var out string
	for i := 0; i < b.N; i++ {
		out = harness.RenderTable4()
	}
	printArtifact(b, "t4", out)
}

func BenchmarkTable5SourceLines(b *testing.B) {
	var out string
	for i := 0; i < b.N; i++ {
		out = harness.RenderTable5()
	}
	printArtifact(b, "t5", out)
}

// --- Figures ---

// figureKernels is the full Table III set: the paper's Figures 5-7 sweep
// all six kernels.
var figureKernels = harness.DefaultKernels()

// caseStudyCells memoizes the Figure 5/6 sweep for the benches that only
// render it. BenchmarkFigure5CaseStudies deliberately does NOT use it:
// the headline bench re-runs the sweep every iteration so a -count=N
// smoke yields N honest samples (a memoized second run would measure
// rendering only and poison the best-of-N comparison in cmd/benchcmp).
var caseStudyCells = sync.OnceValues(func() ([]harness.Cell, error) {
	return harness.RunCaseStudies(figureKernels)
})

func BenchmarkFigure5CaseStudies(b *testing.B) {
	var out string
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cells, err := harness.RunCaseStudies(figureKernels)
		if err != nil {
			b.Fatal(err)
		}
		out = harness.RenderFigure5(cells)
	}
	b.StopTimer()
	runtime.ReadMemStats(&after)
	// Headline numbers for the CI regression gate (cmd/benchcmp): wall
	// clock and allocated bytes per op. TotalAlloc is cumulative, so the
	// delta is this benchmark's own allocation.
	benchJSON.Add(b.Name()+"/ns_op",
		float64(b.Elapsed().Nanoseconds())/float64(b.N), "ns/op")
	benchJSON.Add(b.Name()+"/alloc_bytes",
		float64(after.TotalAlloc-before.TotalAlloc)/float64(b.N), "B/op")
	printArtifact(b, "f5", out)
}

func BenchmarkFigure6CommOverhead(b *testing.B) {
	var out string
	for i := 0; i < b.N; i++ {
		cells, err := caseStudyCells()
		if err != nil {
			b.Fatal(err)
		}
		out = harness.RenderFigure6(cells)
	}
	printArtifact(b, "f6", out)
}

func BenchmarkFigure7AddressSpaces(b *testing.B) {
	var out string
	for i := 0; i < b.N; i++ {
		cells, err := harness.RunAddressSpaces(figureKernels)
		if err != nil {
			b.Fatal(err)
		}
		out = harness.RenderFigure7(cells)
	}
	printArtifact(b, "f7", out)
}

// --- Simulator throughput on each kernel ---

func BenchmarkSimulateKernel(b *testing.B) {
	for _, kernel := range workload.Names() {
		b.Run(kernel, func(b *testing.B) {
			p := workload.MustGenerate(kernel)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s, err := heteromem.NewSimulator(heteromem.CPUGPU())
				if err != nil {
					b.Fatal(err)
				}
				if _, err := s.Run(p); err != nil {
					b.Fatal(err)
				}
			}
			reportMetric(b, float64(p.TotalInstructions()), "insts/run")
			benchJSON.Add(b.Name()+"/ns_op",
				float64(b.Elapsed().Nanoseconds())/float64(b.N), "ns/op")
		})
	}
}

// --- Memory technologies (DESIGN.md section 12) ---

// BenchmarkMemTech runs the latency-bound reduction kernel on the ideal
// heterogeneous system under each terminal memory backend. The sim_us
// rows land in the BENCH_<date>.json dump so cmd/benchcmp gates both
// the simulated results and the simulator's own throughput per backend.
func BenchmarkMemTech(b *testing.B) {
	p := workload.MustGenerate("reduction")
	for _, k := range memtech.AllKinds() {
		b.Run(k.String(), func(b *testing.B) {
			sys := systems.IdealHetero()
			sys.MemTech = memtech.Spec{Kind: k}
			var total clock.Duration
			for i := 0; i < b.N; i++ {
				s, err := sim.New(sys)
				if err != nil {
					b.Fatal(err)
				}
				res, err := s.Run(p)
				if err != nil {
					b.Fatal(err)
				}
				if res.MemTech != k.String() {
					b.Fatalf("result reports mem_tech %q, want %q", res.MemTech, k)
				}
				total = res.Total()
			}
			reportMetric(b, total.Microseconds(), "sim_us")
			benchJSON.Add(b.Name()+"/ns_op",
				float64(b.Elapsed().Nanoseconds())/float64(b.N), "ns/op")
		})
	}
}

// --- Address translation (DESIGN.md section 14) ---

// BenchmarkTranslation runs the latency-bound reduction kernel on the
// ideal heterogeneous system under each translation preset. The sim_us
// rows price what the TLB + page-walk front-end adds to the simulated
// time; the ns_op rows gate the simulator's own per-preset throughput.
func BenchmarkTranslation(b *testing.B) {
	p := workload.MustGenerate("reduction")
	for _, preset := range xlat.Presets() {
		spec := xlat.MustParsePreset(preset)
		b.Run(preset, func(b *testing.B) {
			sys := systems.IdealHetero()
			sys.Translation = spec
			var total clock.Duration
			for i := 0; i < b.N; i++ {
				s, err := sim.New(sys)
				if err != nil {
					b.Fatal(err)
				}
				res, err := s.Run(p)
				if err != nil {
					b.Fatal(err)
				}
				if res.Translation != spec.Label() {
					b.Fatalf("result reports translation %q, want %q", res.Translation, spec.Label())
				}
				total = res.Total()
			}
			reportMetric(b, total.Microseconds(), "sim_us")
			benchJSON.Add(b.Name()+"/ns_op",
				float64(b.Elapsed().Nanoseconds())/float64(b.N), "ns/op")
		})
	}
}

// --- Result cache (DESIGN.md section 15) ---

// BenchmarkSweepWarmCache prices a fully warm sweep: the case-study
// grid is simulated once into a disk cache, then every iteration
// re-runs the sweep through a fresh store on the same directory — a
// cold memory tier, so each cell is a disk probe, decode and promote,
// never a simulation. Compare against BenchmarkFigure5CaseStudies for
// the cold cost of the same cells.
func BenchmarkSweepWarmCache(b *testing.B) {
	dir := b.TempDir()
	sysList := systems.CaseStudies()
	seed, err := rescache.Open(dir)
	if err != nil {
		b.Fatal(err)
	}
	cold, err := harness.Executor{Cache: seed}.RunSystems(sysList, figureKernels)
	if err != nil {
		b.Fatal(err)
	}
	n := len(cold)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		store, err := rescache.Open(dir)
		if err != nil {
			b.Fatal(err)
		}
		cells, err := harness.Executor{Cache: store}.RunSystems(sysList, figureKernels)
		if err != nil {
			b.Fatal(err)
		}
		if st := store.Stats(); st.Hits != uint64(n) || st.Misses != 0 {
			b.Fatalf("warm sweep stats = %+v, want %d pure hits", st, n)
		}
		if len(cells) != n {
			b.Fatalf("got %d cells, want %d", len(cells), n)
		}
	}
	b.StopTimer()
	reportMetric(b, float64(n), "cells/op")
	benchJSON.Add(b.Name()+"/ns_op",
		float64(b.Elapsed().Nanoseconds())/float64(b.N), "ns/op")
}

// BenchmarkPointKey prices the cache key derivation itself — the cost a
// cache probe adds to every cell even on a miss, dominated by
// systems.Hash and the workload fingerprint. Uses a streaming program
// as the sweep does (generator-backed phases are fingerprinted by their
// counts); materialized -saveprog programs additionally hash their full
// instruction streams.
func BenchmarkPointKey(b *testing.B) {
	sys := systems.LRB()
	p, err := workload.Open("reduction")
	if err != nil {
		b.Fatal(err)
	}
	var d string
	for i := 0; i < b.N; i++ {
		d = harness.PointKey(sys, p, sim.Options{}).Digest()
	}
	if len(d) != 64 {
		b.Fatalf("digest %q", d)
	}
	benchJSON.Add(b.Name()+"/ns_op",
		float64(b.Elapsed().Nanoseconds())/float64(b.N), "ns/op")
}

// --- Ablations (DESIGN.md section 5) ---

// BenchmarkAblationDRAMScheduling compares FR-FCFS against FCFS on a
// row-ping-pong batch, the access pattern the scheduler exists for.
func BenchmarkAblationDRAMScheduling(b *testing.B) {
	mkBatch := func(cfg dram.Config) []dram.Request {
		// Alternate between two rows of channel 0, bank 0: with plain
		// interleaving (no bank partitioning) a same-bank line recurs
		// every channels*banks lines, and the row turns over every
		// RowBytes/LineBytes of those.
		bankStride := uint64(cfg.Channels * cfg.BanksPerChannel * cfg.LineBytes)
		rowStride := bankStride * uint64(cfg.RowBytes/cfg.LineBytes)
		reqs := make([]dram.Request, 64)
		for i := range reqs {
			addr := uint64(i/2) * bankStride
			if i%2 == 1 {
				addr += rowStride
			}
			reqs[i] = dram.Request{Addr: addr, Arrival: clock.Time(i)}
		}
		return reqs
	}
	for _, policy := range []dram.Policy{dram.FRFCFS, dram.FCFS} {
		b.Run(policy.String(), func(b *testing.B) {
			cfg := dram.DDR3_1333()
			cfg.Scheduling = policy
			cfg.PartitionRegionBit = 0
			var last clock.Time
			for i := 0; i < b.N; i++ {
				c := dram.MustNew(cfg)
				for _, t := range c.SubmitBatch(mkBatch(cfg)) {
					last = clock.Max(last, t)
				}
			}
			reportMetric(b, float64(last)/1000, "finish_ns")
		})
	}
}

// BenchmarkAblationLocalityBit measures critical-block survival under an
// implicit-traffic flood with and without the locality bit (II-B5).
func BenchmarkAblationLocalityBit(b *testing.B) {
	run := func(policy cache.Policy) (survived int) {
		cfg := cache.Config{
			Name: "l2", SizeBytes: 64 << 10, LineBytes: 64, Ways: 8, Policy: policy,
		}
		if policy == cache.LocalityAware {
			cfg.MaxExplicitWays = 4
		}
		c := cache.MustNew(cfg)
		var critical []uint64
		for set := 0; set < c.Sets(); set += 4 {
			addr := uint64(set * 64)
			c.Fill(addr, true, false)
			critical = append(critical, addr)
		}
		for i := 0; i < 4*64<<10/64; i++ {
			c.Fill(uint64(0x1000000+i*64), false, false)
		}
		for _, a := range critical {
			if c.Probe(a) {
				survived++
			}
		}
		return survived
	}
	for _, policy := range []cache.Policy{cache.LocalityAware, cache.LRU} {
		b.Run(policy.String(), func(b *testing.B) {
			var survived int
			for i := 0; i < b.N; i++ {
				survived = run(policy)
			}
			reportMetric(b, float64(survived), "critical_survived")
		})
	}
}

// BenchmarkAblationAsyncCopy compares GMAC's asynchronous copies against
// a synchronous variant of the same system.
func BenchmarkAblationAsyncCopy(b *testing.B) {
	syncGMAC := systems.GMAC()
	syncGMAC.Name = "GMAC-sync"
	syncGMAC.Fabric = systems.FabricPCIe
	p := workload.MustGenerate("reduction")
	for _, sys := range []systems.System{systems.GMAC(), syncGMAC} {
		b.Run(sys.Name, func(b *testing.B) {
			var total clock.Duration
			for i := 0; i < b.N; i++ {
				s, err := sim.New(sys)
				if err != nil {
					b.Fatal(err)
				}
				res, err := s.Run(p)
				if err != nil {
					b.Fatal(err)
				}
				total = res.Total()
			}
			reportMetric(b, total.Microseconds(), "sim_us")
		})
	}
}

// BenchmarkAblationCoherence measures what "free" hardware coherence
// actually costs: a write ping-pong between the PUs with and without the
// directory protocol. This quantifies the paper's motivation for
// exploring alternatives to a unified fully-coherent space.
func BenchmarkAblationCoherence(b *testing.B) {
	run := func(mode mem.CoherenceMode) clock.Duration {
		cfg := mem.TableII()
		cfg.Coherence = mode
		h := mem.MustNew(cfg)
		var now clock.Time
		for i := 0; i < 2000; i++ {
			// Alternate the PUs over the same 32 lines so every write
			// ping-pongs ownership.
			pu := mem.PU(i % 2)
			now = h.Access(pu, uint64(i/2%32)*64, true, now)
		}
		return now.Sub(0)
	}
	for _, mode := range []mem.CoherenceMode{mem.CoherenceNone, mem.CoherenceDirectory} {
		b.Run(mode.String(), func(b *testing.B) {
			var d clock.Duration
			for i := 0; i < b.N; i++ {
				d = run(mode)
			}
			reportMetric(b, d.Microseconds(), "pingpong_us")
		})
	}
}

// BenchmarkAblationConsistency measures the strongly-consistent half of
// the paper's "ideal" memory system: sequential consistency serialises
// every store, weak consistency absorbs them in the store buffer.
func BenchmarkAblationConsistency(b *testing.B) {
	p := workload.MustGenerate("merge-sort") // store-heavy
	for _, strong := range []bool{false, true} {
		name := "weak"
		if strong {
			name = "strong"
		}
		b.Run(name, func(b *testing.B) {
			var total clock.Duration
			for i := 0; i < b.N; i++ {
				cfg := config.BaselineCPU()
				cfg.StrongConsistency = strong
				h := mem.MustNew(mem.TableII())
				core := cpu.New(cfg, h, systems.IdealHetero().Params.Latency)
				var end clock.Time
				for _, ph := range p.Phases {
					if len(ph.CPU) > 0 {
						end, _ = core.RunStream(ph.CPU, end)
					}
				}
				total = end.Sub(0)
			}
			reportMetric(b, total.Microseconds(), "cpu_us")
		})
	}
}

// BenchmarkAblationFaultGranularity compares LRB with large (per-object)
// pages against host-sized 4 KB pages behind its first-touch faults —
// the Section II-A1 page-size option quantified.
func BenchmarkAblationFaultGranularity(b *testing.B) {
	p := workload.MustGenerate("reduction")
	for _, granule := range []uint64{0, 4096} {
		name := "large-pages"
		if granule != 0 {
			name = "4KB-pages"
		}
		b.Run(name, func(b *testing.B) {
			var comm clock.Duration
			for i := 0; i < b.N; i++ {
				sys := systems.LRB()
				sys.FaultGranularityBytes = granule
				s, err := sim.New(sys)
				if err != nil {
					b.Fatal(err)
				}
				res, err := s.Run(p)
				if err != nil {
					b.Fatal(err)
				}
				comm = res.Communication
			}
			reportMetric(b, comm.Microseconds(), "comm_us")
		})
	}
}

// BenchmarkSensitivityTransferVolume sweeps reduction's communication
// volume, showing how the system orderings shift with transfer size.
func BenchmarkSensitivityTransferVolume(b *testing.B) {
	var out string
	for i := 0; i < b.N; i++ {
		points, err := harness.RunTransferSensitivity("reduction", []float64{0.5, 1, 4, 16})
		if err != nil {
			b.Fatal(err)
		}
		out = harness.RenderSensitivity("reduction", points)
	}
	printArtifact(b, "sens", out)
}

// BenchmarkAblationCoalescing compares the GPU front-end with and without
// memory-request coalescing.
func BenchmarkAblationCoalescing(b *testing.B) {
	p := workload.MustGenerate("convolution")
	for _, disable := range []bool{false, true} {
		name := "coalesced"
		if disable {
			name = "per-lane"
		}
		b.Run(name, func(b *testing.B) {
			var total clock.Duration
			for i := 0; i < b.N; i++ {
				s, err := heteromem.NewSimulatorWithOptions(heteromem.IdealHetero(),
					heteromem.Options{DisableCoalescing: disable})
				if err != nil {
					b.Fatal(err)
				}
				res, err := s.Run(p)
				if err != nil {
					b.Fatal(err)
				}
				total = res.Total()
			}
			reportMetric(b, total.Microseconds(), "sim_us")
		})
	}
}
