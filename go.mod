module heteromem

go 1.22
