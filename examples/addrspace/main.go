// Address spaces: exercise the semantic differences of the four memory
// address-space models directly (allocation rules, accessibility,
// ownership, page-table cost), then reproduce the Figure 7 result that
// the address space alone does not change performance.
//
//	go run ./examples/addrspace
package main

import (
	"errors"
	"fmt"
	"log"

	"heteromem"
	"heteromem/internal/addrspace"
	"heteromem/internal/mem"
)

func main() {
	log.SetFlags(0)

	fmt.Println("== Semantics per model ==")
	for _, m := range []heteromem.Model{heteromem.Unified, heteromem.Disjoint, heteromem.PartiallyShared, heteromem.ADSM} {
		demo(m)
	}

	fmt.Println("== Figure 7: performance under ideal communication ==")
	cells, err := heteromem.RunAddressSpaces([]string{"reduction"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(heteromem.RenderFigure7(cells))
	fmt.Println("\nThe address space design itself does not affect performance;")
	fmt.Println("it is about programmability (Section V-B).")
}

func demo(m heteromem.Model) {
	sp, err := heteromem.NewSpace(m)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%v:\n", m)

	// Can we allocate in the shared region at all?
	shared, err := sp.Alloc(8192, addrspace.Shared)
	if errors.Is(err, addrspace.ErrRegionUnsupported) {
		fmt.Println("  no shared region: all sharing is by explicit copies")
	} else if err != nil {
		log.Fatal(err)
	} else {
		fmt.Printf("  shared object at %#x, mapped in CPU and GPU page tables\n", shared.Base)
	}

	// Who can touch a CPU-private allocation?
	cpuObj, err := sp.Alloc(4096, addrspace.CPUPrivate)
	if err != nil {
		log.Fatal(err)
	}
	gpuErr := sp.CheckAccess(mem.GPU, cpuObj.Base)
	switch {
	case gpuErr == nil:
		fmt.Println("  GPU can address CPU-private data directly")
	case errors.Is(gpuErr, addrspace.ErrInaccessible):
		fmt.Println("  GPU cannot address CPU-private data")
	default:
		fmt.Printf("  GPU access: %v\n", gpuErr)
	}

	// Ownership protocol (partially shared only).
	if sp.HasOwnership() {
		if err := sp.Release(mem.CPU, shared); err != nil {
			log.Fatal(err)
		}
		if err := sp.Acquire(mem.GPU, shared); err != nil {
			log.Fatal(err)
		}
		fmt.Println("  ownership handed CPU -> GPU; CPU access now rejected:",
			errors.Is(sp.CheckAccess(mem.CPU, shared.Base), addrspace.ErrNotOwner))
	}

	st := sp.Stats()
	fmt.Printf("  page-table updates: CPU %d, GPU %d\n", st.MapUpdates[mem.CPU], st.MapUpdates[mem.GPU])
}
