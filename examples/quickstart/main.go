// Quickstart: run one kernel on two memory-system designs and compare
// the execution-time breakdown.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"heteromem"
)

func main() {
	log.SetFlags(0)

	// The reduction kernel from the paper's Table III: the input starts
	// on the CPU, both PUs compute half each, the CPU merges.
	p, err := heteromem.GenerateKernel("reduction")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("kernel %s: %s, %d instructions\n\n", p.Name, p.Pattern, p.TotalInstructions())

	// Compare a CUDA-style disjoint memory space against the ideal
	// unified, fully coherent design.
	for _, sys := range []heteromem.System{heteromem.CPUGPU(), heteromem.IdealHetero()} {
		res, err := heteromem.RunKernel(sys, "reduction")
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-14s total %v\n", sys.Name, res.Total())
		fmt.Printf("    sequential    %v\n", res.Sequential)
		fmt.Printf("    parallel      %v\n", res.Parallel)
		fmt.Printf("    communication %v (%.1f%%)\n\n", res.Communication, res.CommFraction()*100)
	}

	fmt.Println("The disjoint space pays explicit PCI-E copies in both directions;")
	fmt.Println("the unified coherent design communicates for free. The compute")
	fmt.Println("phases are identical — the memory model only changes communication.")
}
