// Advisor: the paper's future work (Section VII) made runnable — score
// the four address-space models on performance, programmability,
// locality flexibility and hardware cost, and recommend one. Also
// demonstrates the per-PU page-size trade-off of Section II-A1 by
// driving the simulator's real translation front-end
// (memsys.TranslationStage) — the same TLB + page-walk model the
// translation design axis puts on the timed access path.
//
//	go run ./examples/advisor
package main

import (
	"fmt"
	"log"

	"heteromem/internal/clock"
	"heteromem/internal/guideline"
	"heteromem/internal/memsys"
	"heteromem/internal/report"
	"heteromem/internal/xlat"
)

func main() {
	log.SetFlags(0)

	fmt.Println("== Design-option efficiency scorecard ==")
	scores, err := guideline.Evaluate([]string{"reduction", "merge-sort"}, guideline.DefaultWeights())
	if err != nil {
		log.Fatal(err)
	}
	tbl := report.Table{
		Headers: []string{"model", "perf overhead", "comm lines", "locality options", "hw cost", "composite"},
	}
	for _, s := range scores {
		tbl.AddRow(s.Model, report.Pct(s.PerfOverhead), s.CommLines, s.LocalityOptions, s.HardwareCost, report.F3(s.Composite))
	}
	fmt.Print(tbl.String())

	best, why, err := guideline.Recommend([]string{"reduction", "merge-sort"}, guideline.DefaultWeights())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nrecommendation: %v\n  %s\n", best, why)

	// Different designers, different weights, different answers.
	fmt.Println("\n== Weighting scenarios ==")
	scenarios := []struct {
		name string
		w    guideline.Weights
	}{
		{"software-first (programmability only)", guideline.Weights{Programmability: 1}},
		{"silicon-first (hardware cost only)", guideline.Weights{HardwareCost: 1}},
		{"architecture-first (flexibility only)", guideline.Weights{Flexibility: 1}},
	}
	for _, sc := range scenarios {
		m, _, err := guideline.Recommend([]string{"reduction"}, sc.w)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-42s -> %v\n", sc.name, m)
	}

	// Section II-A1: a virtually unified space lets each PU pick its own
	// page size; the GPU's streaming working sets want large pages. The
	// stage below is the exact translation front-end the simulator runs
	// when a system selects the translation axis, so the demo's numbers
	// and the sweep's numbers come from one model.
	fmt.Println("\n== Per-PU page sizes (Section II-A1) ==")
	const stream = 32 << 20 // a 32 MB streaming working set
	for _, cfg := range []struct {
		label  string
		pu     memsys.PU
		preset string
	}{
		{"CPU, 4KB pages", memsys.CPU, "4k"},
		{"GPU, 4KB pages", memsys.GPU, "4k"},
		{"GPU, 2MB pages", memsys.GPU, "2m"},
	} {
		stage, err := memsys.NewTranslationStage(xlat.MustParsePreset(cfg.preset))
		if err != nil {
			log.Fatal(err)
		}
		var now clock.Time
		for pass := 0; pass < 2; pass++ {
			for a := uint64(0); a < stream; a += 256 {
				now = stage.Translate(cfg.pu, a, now)
			}
		}
		missRate := float64(stage.Misses(cfg.pu)) / float64(stage.Lookups(cfg.pu))
		fmt.Printf("%-16s %v: miss rate %.4f, %v walking page tables, over a %dMB stream\n",
			cfg.label, stage.TLB[cfg.pu], missRate,
			report.Dur(clock.Duration(stage.WalkPS(cfg.pu))), stream>>20)
	}
	fmt.Println("\nLarge GPU pages collapse the TLB miss rate — and the page-walk time")
	fmt.Println("behind it — on streams: one of the hardware options a per-PU memory")
	fmt.Println("model keeps open. `hetsweep -figure 5 -xlat 2m` prices the same")
	fmt.Println("trade-off inside the full five-system comparison.")
}
