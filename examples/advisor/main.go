// Advisor: the paper's future work (Section VII) made runnable — score
// the four address-space models on performance, programmability,
// locality flexibility and hardware cost, and recommend one. Also
// demonstrates the per-PU page-size trade-off of Section II-A1 with the
// TLB model.
//
//	go run ./examples/advisor
package main

import (
	"fmt"
	"log"

	"heteromem/internal/addrspace"
	"heteromem/internal/guideline"
	"heteromem/internal/mem"
	"heteromem/internal/report"
)

func main() {
	log.SetFlags(0)

	fmt.Println("== Design-option efficiency scorecard ==")
	scores, err := guideline.Evaluate([]string{"reduction", "merge-sort"}, guideline.DefaultWeights())
	if err != nil {
		log.Fatal(err)
	}
	tbl := report.Table{
		Headers: []string{"model", "perf overhead", "comm lines", "locality options", "hw cost", "composite"},
	}
	for _, s := range scores {
		tbl.AddRow(s.Model, report.Pct(s.PerfOverhead), s.CommLines, s.LocalityOptions, s.HardwareCost, report.F3(s.Composite))
	}
	fmt.Print(tbl.String())

	best, why, err := guideline.Recommend([]string{"reduction", "merge-sort"}, guideline.DefaultWeights())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nrecommendation: %v\n  %s\n", best, why)

	// Different designers, different weights, different answers.
	fmt.Println("\n== Weighting scenarios ==")
	scenarios := []struct {
		name string
		w    guideline.Weights
	}{
		{"software-first (programmability only)", guideline.Weights{Programmability: 1}},
		{"silicon-first (hardware cost only)", guideline.Weights{HardwareCost: 1}},
		{"architecture-first (flexibility only)", guideline.Weights{Flexibility: 1}},
	}
	for _, sc := range scenarios {
		m, _, err := guideline.Recommend([]string{"reduction"}, sc.w)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-42s -> %v\n", sc.name, m)
	}

	// Section II-A1: a virtually unified space lets each PU pick its own
	// page size; the GPU's streaming working sets want large pages.
	fmt.Println("\n== Per-PU page sizes (Section II-A1) ==")
	const stream = 32 << 20 // a 32 MB streaming working set
	for _, cfg := range []struct {
		label string
		pu    mem.PU
		page  uint64
	}{
		{"CPU, 4KB pages", mem.CPU, 4 << 10},
		{"GPU, 4KB pages", mem.GPU, 4 << 10},
		{"GPU, 2MB pages", mem.GPU, 2 << 20},
	} {
		tlb := addrspace.MustNewTLB(cfg.pu, 64, 4, cfg.page)
		for pass := 0; pass < 2; pass++ {
			for a := uint64(0); a < stream; a += 256 {
				tlb.Lookup(a)
			}
		}
		fmt.Printf("%-16s %v: miss rate %.4f over a %dMB stream\n",
			cfg.label, tlb, tlb.MissRate(), stream>>20)
	}
	fmt.Println("\nLarge GPU pages collapse the TLB miss rate on streams — one of the")
	fmt.Println("hardware options a per-PU memory model keeps open.")
}
