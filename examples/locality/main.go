// Locality: demonstrate the Section II-B locality-management design
// space — enumerate the options per address-space model (conclusion 3)
// and drive the hybrid locality-bit cache of Section II-B5 directly:
// explicitly placed blocks survive a flood of implicit traffic.
//
//	go run ./examples/locality
package main

import (
	"fmt"
	"log"

	"heteromem"
	"heteromem/internal/cache"
	"heteromem/internal/locality"
)

func main() {
	log.SetFlags(0)

	fmt.Println("== Locality-management options per address space ==")
	for _, m := range []heteromem.Model{heteromem.Unified, heteromem.Disjoint, heteromem.PartiallyShared, heteromem.ADSM} {
		opts := heteromem.LocalityOptions(m)
		fmt.Printf("%-17v %2d desirable schemes", m, len(opts))
		if m == heteromem.PartiallyShared {
			fmt.Print("   <- the most (paper conclusion 3)")
		}
		fmt.Println()
	}

	fmt.Println("\n== Hybrid second-level cache (Section II-B5) ==")
	// A small locality-aware cache: explicit blocks carry the locality
	// bit; implicit fills may not evict them, and the explicit footprint
	// per set is capped below the associativity.
	c, err := cache.New(cache.Config{
		Name: "shared-l2", SizeBytes: 4096, LineBytes: 64, Ways: 4,
		Policy: cache.LocalityAware, MaxExplicitWays: 2,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Push two critical lines per set (the program's explicitly managed
	// working set).
	var critical []uint64
	for set := 0; set < c.Sets(); set++ {
		for w := 0; w < 2; w++ {
			addr := uint64(set*64 + w*c.Sets()*64)
			c.Fill(addr, true, false)
			critical = append(critical, addr)
		}
	}

	// Flood the cache with 10x its capacity of implicit streaming data.
	for i := 0; i < 10*4096/64; i++ {
		c.Fill(uint64(0x100000+i*64), false, false)
	}

	survived := 0
	for _, addr := range critical {
		if c.Probe(addr) {
			survived++
		}
	}
	fmt.Printf("explicit blocks surviving a 10x implicit flood: %d/%d\n", survived, len(critical))
	fmt.Printf("cache stats: %+v\n", c.Stats())

	// The same flood on plain LRU destroys the critical set.
	lru := cache.MustNew(cache.Config{
		Name: "plain-l2", SizeBytes: 4096, LineBytes: 64, Ways: 4, Policy: cache.LRU,
	})
	for _, addr := range critical {
		lru.Fill(addr, true, false)
	}
	for i := 0; i < 10*4096/64; i++ {
		lru.Fill(uint64(0x100000+i*64), false, false)
	}
	survivedLRU := 0
	for _, addr := range critical {
		if lru.Probe(addr) {
			survivedLRU++
		}
	}
	fmt.Printf("under plain LRU the same blocks survive: %d/%d\n", survivedLRU, len(critical))

	fmt.Println("\n== Push planning ==")
	// What explicit placements does each named scheme require for a
	// typical object set?
	objs := []locality.Object{
		{Addr: 0x1000, Size: 4096, Region: 0 /* cpu-private */, User: 0, Critical: false},
		{Addr: 0x2000, Size: 4096, Region: 1 /* gpu-private */, User: 1, Critical: false},
		{Addr: 0x3000, Size: 4096, Region: 2 /* shared */, User: 1, Critical: true},
	}
	for _, s := range []locality.Scheme{locality.ImplPrivExplShared, locality.ExplPrivImplShared, locality.HybridShared} {
		fmt.Printf("%-35s adds %d push instructions\n", s.Name(), locality.ExtraInstructions(s, objs))
	}
}
