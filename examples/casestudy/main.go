// Case study: reproduce the Figure 5/6 comparison of the five
// heterogeneous systems on the small kernels.
//
//	go run ./examples/casestudy
package main

import (
	"fmt"
	"log"

	"heteromem"
)

func main() {
	log.SetFlags(0)

	// Sweep the five systems of Section V-A — CPU+GPU(CUDA), LRB, GMAC,
	// Fusion and IDEAL-HETERO — over the fast kernels. (The hetsweep tool
	// runs the full Table III set.)
	kernels := []string{"reduction", "merge-sort"}
	cells, err := heteromem.RunCaseStudies(kernels)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Print(heteromem.RenderFigure5(cells))
	fmt.Print(heteromem.RenderFigure6(cells))

	// The paper's qualitative conclusions, recomputed from this run.
	byKey := map[string]heteromem.Cell{}
	for _, c := range cells {
		byKey[c.System+"/"+c.Kernel] = c
	}
	for _, k := range kernels {
		ideal := byKey["IDEAL-HETERO/"+k].Result
		fusion := byKey["Fusion/"+k].Result
		cuda := byKey["CPU+GPU/"+k].Result
		fmt.Printf("%s: CPU+GPU is %.1f%% slower than IDEAL-HETERO; Fusion only %.1f%% slower\n",
			k,
			(float64(cuda.Total())/float64(ideal.Total())-1)*100,
			(float64(fusion.Total())/float64(ideal.Total())-1)*100)
	}
}
