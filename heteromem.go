// Package heteromem is a design-space exploration library for
// heterogeneous (CPU+GPU) memory systems, reproducing Lim & Kim,
// "Design Space Exploration of Memory Model for Heterogeneous Computing"
// (MSPC/PLDI 2012).
//
// The package is a facade over the implementation packages: it exposes
// the address-space models (unified, disjoint, partially shared, ADSM),
// the locality-management design space, the five case-study system
// configurations, the six Table III kernels, and the cycle-level
// trace-driven simulator that evaluates them.
//
// Quick start:
//
//	res, err := heteromem.RunKernel(heteromem.LRB(), "reduction")
//	fmt.Println(res.Sequential, res.Parallel, res.Communication)
//
// The cmd/ tools regenerate every table and figure of the paper; see
// DESIGN.md for the experiment index and EXPERIMENTS.md for measured
// results.
package heteromem

import (
	"heteromem/internal/addrspace"
	"heteromem/internal/energy"
	"heteromem/internal/guideline"
	"heteromem/internal/harness"
	"heteromem/internal/locality"
	"heteromem/internal/memtech"
	"heteromem/internal/model"
	"heteromem/internal/rescache"
	"heteromem/internal/sim"
	"heteromem/internal/systems"
	"heteromem/internal/workload"
	"heteromem/internal/xlat"
)

// Re-exported core types. The facade uses type aliases so values flow
// freely between the facade and the implementation packages.
type (
	// System is one heterogeneous system configuration: an address-space
	// model plus a communication fabric and programming-model behaviours.
	System = systems.System
	// Result is a simulation outcome with the sequential / parallel /
	// communication breakdown of Figure 5.
	Result = sim.Result
	// Program is a kernel as a phase program.
	Program = workload.Program
	// Model is a memory address-space design option.
	Model = addrspace.Model
	// Space is an address-space instance: allocation, page tables,
	// ownership, first-touch tracking.
	Space = addrspace.Space
	// Scheme is a locality-management configuration.
	Scheme = locality.Scheme
	// Cell is one (system, kernel) measurement from a sweep.
	Cell = harness.Cell
	// Simulator runs kernels on one system configuration.
	Simulator = sim.Simulator
	// Options tweak a simulator away from the baseline, for ablations.
	Options = sim.Options
	// Protocol is a programming-model protocol: the runtime behaviours a
	// memory model imposes at phase boundaries.
	Protocol = model.Protocol
	// ProtocolKind names a built-in programming-model protocol.
	ProtocolKind = model.Kind
	// Grid declaratively spans a region of the design space, one list per
	// axis; Grid.Enumerate takes the cross-product of coherent points.
	Grid = systems.Grid
	// MemTech selects the terminal memory technology behind the shared
	// L3 and its parameters (the mem_tech design axis).
	MemTech = memtech.Spec
	// MemTechKind names a terminal memory technology.
	MemTechKind = memtech.Kind
	// Translation configures the per-PU address-translation front-end
	// (TLBs, page walks, MMU sharing — the translation design axis). The
	// zero value keeps translation off the timed path.
	Translation = xlat.Spec
	// TranslationMMU names an MMU arrangement (off, private, shared).
	TranslationMMU = xlat.MMUKind
	// ResultCache is the persistent content-addressed cache of simulation
	// results; attach one to a sweep Executor or probe it directly with a
	// PointKey. Exact because the simulator is deterministic.
	ResultCache = rescache.Store
	// ResultCacheKey identifies one simulation exactly (design point,
	// kernel, workload shape, result-affecting options).
	ResultCacheKey = rescache.Key
)

// The four address-space models (Section II-A, Figure 1).
const (
	Unified         = addrspace.Unified
	Disjoint        = addrspace.Disjoint
	PartiallyShared = addrspace.PartiallyShared
	ADSM            = addrspace.ADSM
)

// The built-in programming-model protocols (one per surveyed runtime
// discipline).
const (
	// ExplicitCopy is the CUDA/Fusion discipline: every exchange is an
	// explicit bulk copy.
	ExplicitCopy = model.ExplicitCopy
	// Ownership is acquire/release ownership control without first-touch
	// faults (the Figure 7 partially-shared semantics).
	Ownership = model.Ownership
	// OwnershipFirstTouch is the full LRB model: ownership plus lib-pf
	// faults on first touch.
	OwnershipFirstTouch = model.OwnershipFirstTouch
	// ADSMLazy is GMAC's asymmetric distributed shared memory.
	ADSMLazy = model.ADSMLazy
	// IdealProtocol is the no-op protocol of a unified coherent machine.
	IdealProtocol = model.Ideal
)

// The terminal memory technologies (the mem_tech axis).
const (
	// MemDRAM is the paper's DDR3-1333 baseline (the default).
	MemDRAM = memtech.DRAM
	// MemHBM is a high-bandwidth stacked DRAM.
	MemHBM = memtech.HBM
	// MemNVM is a non-volatile tier with asymmetric read/write latency.
	MemNVM = memtech.NVM
	// MemDRAMCache is a DRAM cache fronting slow far memory.
	MemDRAMCache = memtech.DRAMCache
)

// The MMU arrangements of the translation axis.
const (
	// TranslationOff leaves translation off the timed path (the default).
	TranslationOff = xlat.Off
	// PrivateMMU gives each PU its own MMU and page walker.
	PrivateMMU = xlat.Private
	// SharedMMU makes both PUs contend for one MMU's page walker.
	SharedMMU = xlat.Shared
)

// ParseTranslationPreset resolves a named translation preset ("off",
// "4k", "2m", "4k-shared", "2m-shared") into a Translation spec.
func ParseTranslationPreset(name string) (Translation, error) { return xlat.ParsePreset(name) }

// Declarative system and grid serialisation (JSON).
var (
	// LoadSystem parses a declarative system description.
	LoadSystem = systems.Load
	// LoadSystemFile reads and parses a system description file.
	LoadSystemFile = systems.LoadFile
	// SaveSystem serialises a system so LoadSystem round-trips it.
	SaveSystem = systems.Save
	// HashSystem returns the canonical "sha256:..." content hash of a
	// design point (name-invariant); the run ledger's spec key.
	HashSystem = systems.Hash
	// LoadGridFile reads and parses a design-space grid description.
	LoadGridFile = systems.LoadGridFile
)

// Case-study system constructors (Section V-A).
var (
	// CPUGPU is the CUDA-style disjoint-space system over PCI-E.
	CPUGPU = systems.CPUGPU
	// LRB is the partially shared space over the PCI aperture with
	// ownership control and first-touch page faults.
	LRB = systems.LRB
	// GMAC is the ADSM system with asynchronous PCI-E copies.
	GMAC = systems.GMAC
	// Fusion is the disjoint-space system communicating through the
	// shared memory controllers.
	Fusion = systems.Fusion
	// IdealHetero is the unified, fully coherent system with free
	// communication.
	IdealHetero = systems.IdealHetero
	// CaseStudies returns all five in the paper's order.
	CaseStudies = systems.CaseStudies
	// CaseStudiesWithTech returns the five case studies re-terminated on
	// the given memory technology.
	CaseStudiesWithTech = systems.CaseStudiesWithTech
	// CaseStudiesWithTranslation returns the five case studies with the
	// given address-translation spec applied to each.
	CaseStudiesWithTranslation = systems.CaseStudiesWithTranslation
	// GraceHopper is the Grace-Hopper-style preset: coherent unified
	// memory through shared controllers, terminated on HBM.
	GraceHopper = systems.GraceHopper
	// SystemForModel returns the Figure 7 configuration for a model:
	// ideal communication, shared cache.
	SystemForModel = systems.ForModel
)

// Kernels returns the six Table III kernel names.
func Kernels() []string { return workload.Names() }

// GenerateKernel builds the named kernel's phase program with
// materialized trace streams (for serialization and inspection).
func GenerateKernel(name string) (*Program, error) { return workload.Generate(name) }

// OpenKernel builds the named kernel's phase program in streaming form:
// compute phases synthesize their instructions on demand during replay,
// so opening is O(1) in the kernel's instruction count. Prefer this for
// simulation; the delivered instructions are identical to GenerateKernel's.
func OpenKernel(name string) (*Program, error) { return workload.Open(name) }

// NewSimulator returns a simulator for the system with the Table II
// baseline configuration. A simulator is stateful; use a fresh one per
// measurement.
func NewSimulator(sys System) (*Simulator, error) { return sim.New(sys) }

// NewSimulatorWithOptions returns a simulator with ablation options.
func NewSimulatorWithOptions(sys System, opts Options) (*Simulator, error) {
	return sim.NewWithOptions(sys, opts)
}

// RunKernel simulates the named kernel on the system with the baseline
// configuration and returns its timing breakdown.
func RunKernel(sys System, kernel string) (Result, error) {
	p, err := workload.Open(kernel)
	if err != nil {
		return Result{}, err
	}
	s, err := sim.New(sys)
	if err != nil {
		return Result{}, err
	}
	return s.Run(p)
}

// NewSpace returns an address space under the given model with 4 KB
// pages.
func NewSpace(model Model) (*Space, error) { return addrspace.New(model, 4096) }

// LocalityOptions returns the desirable locality-management schemes under
// a model (Section II-B); comparing counts across models reproduces the
// paper's conclusion 3.
func LocalityOptions(model Model) []Scheme { return locality.DesirableOptions(model) }

// EnergyBreakdown is a run's estimated energy by component (nJ).
type EnergyBreakdown = energy.Breakdown

// EstimateEnergy returns the run's energy breakdown under the default
// event-energy constants.
func EstimateEnergy(res Result) EnergyBreakdown { return energy.EstimateDefault(res) }

// DesignScore is one address-space model's efficiency measurements
// (Section VII future work).
type DesignScore = guideline.Score

// ScoreDesigns evaluates the four address-space models over the named
// kernels with equal weights and returns them best-first.
func ScoreDesigns(kernels []string) ([]DesignScore, error) {
	return guideline.Evaluate(kernels, guideline.DefaultWeights())
}

// Sweep helpers used by the examples and tools.
var (
	// RunCaseStudies sweeps the five systems over the named kernels.
	RunCaseStudies = harness.RunCaseStudies
	// RunAddressSpaces sweeps the four Figure 7 configurations.
	RunAddressSpaces = harness.RunAddressSpaces
	// RenderFigure5 formats a case-study sweep as the Figure 5 breakdown.
	RenderFigure5 = harness.RenderFigure5
	// RenderFigure6 formats a case-study sweep as Figure 6.
	RenderFigure6 = harness.RenderFigure6
	// RenderFigure7 formats an address-space sweep as Figure 7.
	RenderFigure7 = harness.RenderFigure7
	// OpenResultCache opens (or creates) a persistent result cache at a
	// directory; "" opens a memory-only store.
	OpenResultCache = rescache.Open
	// PointKey derives the exact cache key for (system, program, options).
	PointKey = harness.PointKey
)
