package heteromem_test

import (
	"errors"
	"strings"
	"testing"

	"heteromem"
	"heteromem/internal/addrspace"
	"heteromem/internal/workload"
)

// These tests exercise the public facade exactly as the README and
// examples present it.

func TestFacadeKernels(t *testing.T) {
	kernels := heteromem.Kernels()
	if len(kernels) != 6 {
		t.Fatalf("kernels = %v", kernels)
	}
	for _, k := range kernels {
		p, err := heteromem.GenerateKernel(k)
		if err != nil {
			t.Fatalf("GenerateKernel(%q): %v", k, err)
		}
		if p.Name != k {
			t.Errorf("program name %q for kernel %q", p.Name, k)
		}
	}
	if _, err := heteromem.GenerateKernel("bogus"); err == nil {
		t.Error("bogus kernel accepted")
	}
}

func TestFacadeRunKernel(t *testing.T) {
	res, err := heteromem.RunKernel(heteromem.CPUGPU(), "reduction")
	if err != nil {
		t.Fatal(err)
	}
	if res.System != "CPU+GPU" || res.Kernel != "reduction" {
		t.Fatalf("result identity: %s/%s", res.System, res.Kernel)
	}
	if res.Total() == 0 || res.Communication == 0 {
		t.Fatalf("implausible result: %+v", res)
	}
}

func TestFacadeCaseStudies(t *testing.T) {
	cs := heteromem.CaseStudies()
	if len(cs) != 5 {
		t.Fatalf("case studies = %d", len(cs))
	}
	names := []string{}
	for _, s := range cs {
		names = append(names, s.Name)
	}
	joined := strings.Join(names, ",")
	for _, want := range []string{"CPU+GPU", "LRB", "GMAC", "Fusion", "IDEAL-HETERO"} {
		if !strings.Contains(joined, want) {
			t.Errorf("missing system %q in %v", want, names)
		}
	}
}

func TestFacadeSpace(t *testing.T) {
	sp, err := heteromem.NewSpace(heteromem.PartiallyShared)
	if err != nil {
		t.Fatal(err)
	}
	if !sp.HasOwnership() {
		t.Error("partially shared space lacks ownership")
	}
	if _, err := heteromem.NewSpace(heteromem.Model(99)); err == nil {
		t.Error("invalid model accepted")
	}
	dis, _ := heteromem.NewSpace(heteromem.Disjoint)
	if _, err := dis.Alloc(4096, addrspace.Shared); !errors.Is(err, addrspace.ErrRegionUnsupported) {
		t.Errorf("disjoint shared alloc: %v", err)
	}
}

func TestFacadeLocalityOptions(t *testing.T) {
	pas := len(heteromem.LocalityOptions(heteromem.PartiallyShared))
	uni := len(heteromem.LocalityOptions(heteromem.Unified))
	if pas <= uni {
		t.Fatalf("PAS options (%d) not more than unified (%d)", pas, uni)
	}
}

func TestFacadeSweepAndRender(t *testing.T) {
	cells, err := heteromem.RunCaseStudies([]string{"reduction"})
	if err != nil {
		t.Fatal(err)
	}
	if out := heteremFigure5(cells); !strings.Contains(out, "reduction") {
		t.Error("Figure 5 render missing kernel")
	}
}

func heteremFigure5(cells []heteromem.Cell) string {
	return heteromem.RenderFigure5(cells)
}

func TestFacadeSimulatorOptions(t *testing.T) {
	s, err := heteromem.NewSimulatorWithOptions(heteromem.IdealHetero(), heteromem.Options{DisableCoalescing: true})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(workload.MustGenerate("reduction"))
	if err != nil {
		t.Fatal(err)
	}
	if res.GPU.LineRequests == 0 {
		t.Fatal("no GPU requests recorded")
	}
}

func TestFacadeEnergyAndScores(t *testing.T) {
	res, err := heteromem.RunKernel(heteromem.Fusion(), "reduction")
	if err != nil {
		t.Fatal(err)
	}
	e := heteromem.EstimateEnergy(res)
	if e.Total() <= 0 {
		t.Fatalf("energy %v", e)
	}
	scores, err := heteromem.ScoreDesigns([]string{"reduction"})
	if err != nil {
		t.Fatal(err)
	}
	if len(scores) != 4 || scores[0].Model != heteromem.PartiallyShared {
		t.Fatalf("scores: %+v", scores)
	}
}

func TestFacadeSystemForModel(t *testing.T) {
	for _, m := range []heteromem.Model{heteromem.Unified, heteromem.Disjoint, heteromem.PartiallyShared, heteromem.ADSM} {
		sys := heteromem.SystemForModel(m)
		if sys.Model != m {
			t.Errorf("SystemForModel(%v).Model = %v", m, sys.Model)
		}
	}
}
