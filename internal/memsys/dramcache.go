package memsys

import (
	"heteromem/internal/cache"
	"heteromem/internal/clock"
	"heteromem/internal/obs"
)

// DRAMCacheStage is the two-level Backend: a set-associative DRAM cache
// (fast, small "near" memory — typically on-package stacked DRAM)
// fronting a slow, large "far" memory (NVM or a remote pool). Every
// access pays the near-memory tag-and-data probe; a hit ends there,
// while a miss continues to far memory and fills the near cache,
// possibly writing a dirty victim back to far memory. The interesting
// regime is the working set that fits near memory after warmup: it
// runs at near-DRAM speed against a far memory several times slower.
//
// The stage owns its near-cache directory and channel resources, so
// Reset restores them here.
type DRAMCacheStage struct {
	// Dir tracks which lines currently reside in near memory; its
	// hit/miss/eviction stats are the cache's tag-array view.
	Dir *cache.Cache
	// NearChans/FarChans are the per-channel occupancy resources of the
	// two memories; lines interleave across each set.
	NearChans []*clock.Resource
	FarChans  []*clock.Resource
	NearLat   clock.Duration
	NearBus   clock.Duration
	FarRead   clock.Duration
	FarWrite  clock.Duration
	FarBus    clock.Duration
	Net       Interconnect
	Topo      Topology
	L3        *L3Stage
	Env       *Env

	hits       backendCounter
	misses     backendCounter
	fills      backendCounter
	writebacks backendCounter
}

// ID implements Stage; the terminal slot keeps the StageDRAM stamp so
// request breakdowns stay comparable across backends.
func (s *DRAMCacheStage) ID() StageID { return StageDRAM }

// Process serves the L3 miss from near memory when the line is cached
// there, and otherwise from far memory, installing the line near on the
// way back.
func (s *DRAMCacheStage) Process(r *Request) Verdict {
	if r.Flags&FlagL3Hit != 0 {
		return Next
	}
	r.Flags |= FlagDRAM
	tile := s.Topo.TileFor(r.Addr)
	ts := s.Topo.TileStop(tile)
	r.Now = s.Net.Send(ts, s.Topo.MCStop, s.Topo.ReqBytes, r.Now)
	r.Now = s.access(r.Addr, false, r.Now)
	s.Env.DRAMFills[r.PU]++
	r.Now = s.Net.Send(s.Topo.MCStop, ts, s.Topo.LineBytes+s.Topo.ReqBytes, r.Now)
	s.L3.Fill(tile, r.Addr, false, r.Write, r.Now)
	return Next
}

// access performs one near-probe-then-maybe-far access and returns the
// completion time. The near probe (tag check + data access) is always
// paid; a miss adds the far read and the near fill.
func (s *DRAMCacheStage) access(addr uint64, write bool, now clock.Time) clock.Time {
	start, _ := s.NearChans[chanFor(addr, s.Topo.LineBytes, len(s.NearChans))].Acquire(now, s.NearBus)
	now = start.Add(s.NearLat)
	if s.Dir.Lookup(addr, write) {
		s.hits.n++
		return now
	}
	s.misses.n++
	start, _ = s.FarChans[chanFor(addr, s.Topo.LineBytes, len(s.FarChans))].Acquire(now, s.FarBus)
	now = start.Add(s.FarRead)
	s.fill(addr, write, now)
	return now
}

// fill installs the line into near memory: the data write occupies the
// near channel off the critical path, and a dirty victim goes back to
// far memory.
func (s *DRAMCacheStage) fill(addr uint64, dirty bool, now clock.Time) {
	s.fills.n++
	s.NearChans[chanFor(addr, s.Topo.LineBytes, len(s.NearChans))].Acquire(now, s.NearBus)
	ev := s.Dir.Fill(addr, false, dirty)
	if ev.Valid && ev.Dirty {
		s.writebacks.n++
		start, _ := s.FarChans[chanFor(ev.Addr, s.Topo.LineBytes, len(s.FarChans))].Acquire(now, s.FarBus)
		_ = start.Add(s.FarWrite)
	}
}

// Writeback implements Backend: a dirty L3 victim lands in near memory,
// write-allocating on a near miss so the line's eventual re-read hits.
func (s *DRAMCacheStage) Writeback(addr uint64, now clock.Time) {
	start, _ := s.NearChans[chanFor(addr, s.Topo.LineBytes, len(s.NearChans))].Acquire(now, s.NearBus)
	if s.Dir.Lookup(addr, true) {
		s.hits.n++
		return
	}
	s.misses.n++
	s.fill(addr, true, start.Add(s.NearLat))
}

// Reset implements Backend.
func (s *DRAMCacheStage) Reset() {
	s.Dir.Reset()
	for _, c := range s.NearChans {
		c.Reset()
	}
	for _, c := range s.FarChans {
		c.Reset()
	}
	s.hits.reset()
	s.misses.reset()
	s.fills.reset()
	s.writebacks.reset()
}

// Instrument implements Backend, registering memtech.dram_cache.*: the
// stage's access counters plus the near-cache directory's stats under
// memtech.dram_cache.cache.*.
func (s *DRAMCacheStage) Instrument(reg *obs.Registry) {
	s.hits.instrument(reg, "memtech.dram_cache.hits")
	s.misses.instrument(reg, "memtech.dram_cache.misses")
	s.fills.instrument(reg, "memtech.dram_cache.fills")
	s.writebacks.instrument(reg, "memtech.dram_cache.writebacks")
	s.Dir.Instrument(reg, "memtech.dram_cache.cache")
}

// FlushObs implements Backend.
func (s *DRAMCacheStage) FlushObs() {
	s.hits.flush()
	s.misses.flush()
	s.fills.flush()
	s.writebacks.flush()
	s.Dir.FlushObs()
}
