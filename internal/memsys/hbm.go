package memsys

import (
	"heteromem/internal/clock"
	"heteromem/internal/dram"
	"heteromem/internal/obs"
)

// HBMStage is the HBM-class Backend: a stacked DRAM with many narrow
// pseudo-channels. It reuses the banked FR-FCFS controller model with
// HBM geometry (small rows, fast burst, many channels), so bank and bus
// contention behave exactly as in the baseline — only the numbers
// change — and adds a fixed ExtraLat every request pays for the stacked
// access path. The net effect is the HBM trade: roughly an order of
// magnitude more bandwidth at somewhat higher access latency.
//
// The stage owns its controller (the hierarchy's DDR3 controller keeps
// serving memory-controller-fabric DMA), so Reset restores it here.
type HBMStage struct {
	Ctrl     *dram.Controller
	ExtraLat clock.Duration
	Net      Interconnect
	Topo     Topology
	L3       *L3Stage
	Env      *Env

	accesses backendCounter
}

// ID implements Stage; the terminal slot keeps the StageDRAM stamp so
// request breakdowns and host-profiling sections stay comparable across
// backends.
func (s *HBMStage) ID() StageID { return StageDRAM }

// Process fetches the line from the HBM stack unless the L3 already
// served it: hop to the memory-controller stop, the fixed stacked-path
// latency, the banked access, and the line's return and install.
func (s *HBMStage) Process(r *Request) Verdict {
	if r.Flags&FlagL3Hit != 0 {
		return Next
	}
	r.Flags |= FlagDRAM
	tile := s.Topo.TileFor(r.Addr)
	ts := s.Topo.TileStop(tile)
	r.Now = s.Net.Send(ts, s.Topo.MCStop, s.Topo.ReqBytes, r.Now)
	r.Now = s.Ctrl.Submit(r.Addr, r.Now.Add(s.ExtraLat))
	s.Env.DRAMFills[r.PU]++
	s.accesses.n++
	r.Now = s.Net.Send(s.Topo.MCStop, ts, s.Topo.LineBytes+s.Topo.ReqBytes, r.Now)
	s.L3.Fill(tile, r.Addr, false, r.Write, r.Now)
	return Next
}

// Writeback implements Backend: a dirty L3 victim occupies the stack's
// bank and bus off the critical path.
func (s *HBMStage) Writeback(addr uint64, now clock.Time) {
	s.Ctrl.Submit(addr, now)
}

// Reset implements Backend.
func (s *HBMStage) Reset() {
	s.Ctrl.Reset()
	s.accesses.reset()
}

// Instrument implements Backend, registering memtech.hbm.*: the
// stage's own access counter plus the controller's request/row/bytes
// counters under the same prefix.
func (s *HBMStage) Instrument(reg *obs.Registry) {
	s.accesses.instrument(reg, "memtech.hbm.accesses")
	s.Ctrl.InstrumentPrefix(reg, "memtech.hbm")
}

// FlushObs implements Backend. The controller's own counters bump
// per-event (as dram.* always has), so only the batched stage counter
// flushes here.
func (s *HBMStage) FlushObs() { s.accesses.flush() }
