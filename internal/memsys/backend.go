package memsys

import (
	"heteromem/internal/clock"
	"heteromem/internal/obs"
)

// Writebacker absorbs dirty victim lines evicted from the shared L3:
// the line moves to the terminal memory off the requesting access's
// critical path, occupying backend resources but delaying nobody.
type Writebacker interface {
	Writeback(addr uint64, now clock.Time)
}

// Backend is the terminal stage of the memory pipeline — the memory
// technology that serves L3 misses. The built-in DRAMStage is the
// paper's DDR3 baseline; HBMStage, NVMStage and DRAMCacheStage model
// the 2020s alternatives (the mem_tech design axis). A backend is
// shared by every PU's Chain, so cross-PU contention on the device is
// modelled exactly as with the single DRAM controller.
//
// Beyond the Stage contract (Process advances r.Now past the device
// access and installs the line into the home L3 tile; an L3 hit passes
// through untouched), a backend absorbs L3 victim writebacks, resets
// its device state between runs, and mirrors its batched memtech.*
// counters into an observability registry on the hierarchy's FlushObs
// cadence. Reset covers only backend-private state: substrates owned by
// the hierarchy (the DDR3 controller behind DRAMStage) are reset by
// their owner.
type Backend interface {
	Stage
	Writebacker
	// Reset returns backend-private device state and counters to
	// just-constructed; registered instruments stay wired.
	Reset()
	// Instrument registers the backend's memtech.* instruments with reg
	// (nil detaches them) and aligns the flush baseline so a freshly
	// attached registry observes only subsequent events.
	Instrument(reg *obs.Registry)
	// FlushObs pushes counter growth since the previous flush into the
	// registered instruments.
	FlushObs()
}

// chanFor interleaves line addresses across n channels.
func chanFor(addr uint64, lineBytes int, n int) int {
	return int((addr / uint64(lineBytes)) % uint64(n))
}

// backendCounter is one batched memtech.* counter: a plain hot-path
// field plus the flush baseline and instrument behind it.
type backendCounter struct {
	n       uint64
	flushed uint64
	obs     *obs.Counter
}

func (c *backendCounter) instrument(reg *obs.Registry, name string) {
	c.obs = reg.Counter(name)
	c.flushed = c.n
}

func (c *backendCounter) flush() {
	c.obs.Add(c.n - c.flushed)
	c.flushed = c.n
}

func (c *backendCounter) reset() {
	c.n = 0
	c.flushed = 0
}
