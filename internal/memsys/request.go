// Package memsys models a memory access as an explicit transaction — a
// Request — flowing through an ordered pipeline of stages (private
// caches, MSHR, ring hops, L3 tile, coherence, DRAM, commit). Each stage
// charges its latency onto the request and stamps its completion time,
// so every picosecond of an access is attributable to one stage, each
// stage is unit-testable in isolation, and alternatives (a mesh instead
// of the ring, flush-based instead of directory coherence) slot in by
// swapping one stage. Package mem composes these stages into the
// Table II hierarchy.
package memsys

import (
	"fmt"

	"heteromem/internal/clock"
)

// PU identifies a processing unit issuing requests. The values mirror
// mem.PU (the two packages share the numbering so conversions are
// direct casts).
type PU uint8

const (
	// CPU is the out-of-order general-purpose core.
	CPU PU = iota
	// GPU is the in-order SIMD accelerator core.
	GPU
	// NumPUs is the number of processing units.
	NumPUs
)

func (p PU) String() string {
	switch p {
	case CPU:
		return "cpu"
	case GPU:
		return "gpu"
	default:
		return fmt.Sprintf("pu(%d)", uint8(p))
	}
}

// StageID names a pipeline stage. Stamps are indexed by StageID, so the
// set is fixed here; the order of the constants matches the baseline
// pipeline order (coherence is a sub-stage invoked from private and L3
// lookups rather than a slot of its own).
type StageID uint8

const (
	// StageXlat is the address-translation front-end: the TLB probe and,
	// on a miss, the page walk. Present only when the translation axis
	// is on; with translation off no stage carries this id.
	StageXlat StageID = iota
	// StagePrivate is the PU's private level(s): L1, plus L2 on the CPU.
	StagePrivate
	// StageMSHR is the miss-status holding register check: a miss to a
	// line already in flight merges with the outstanding request.
	StageMSHR
	// StageRingReq is the request hop from the PU's ring stop to the
	// home L3 tile's stop.
	StageRingReq
	// StageCoherence is the directory consultation and any remote
	// invalidation round trip it requires.
	StageCoherence
	// StageL3 is the home L3 tile lookup.
	StageL3
	// StageDRAM is the ring hop to the memory controller, the DRAM
	// access, and the hop back to the home tile (skipped on an L3 hit).
	StageDRAM
	// StageRingResp is the data response hop from the home tile back to
	// the requesting PU's stop.
	StageRingResp
	// StageCommit fills the private levels and registers the miss in the
	// MSHR file.
	StageCommit
	// NumStages is the number of stage identifiers.
	NumStages
)

func (s StageID) String() string {
	switch s {
	case StageXlat:
		return "xlat"
	case StagePrivate:
		return "private"
	case StageMSHR:
		return "mshr"
	case StageRingReq:
		return "ring-req"
	case StageCoherence:
		return "coherence"
	case StageL3:
		return "l3"
	case StageDRAM:
		return "dram"
	case StageRingResp:
		return "ring-resp"
	case StageCommit:
		return "commit"
	default:
		return fmt.Sprintf("stage(%d)", uint8(s))
	}
}

// Flags records which events a request experienced on its way through
// the pipeline.
type Flags uint8

const (
	// FlagL1Hit: the access hit in the PU's first-level cache.
	FlagL1Hit Flags = 1 << iota
	// FlagL2Hit: the access hit in the CPU's private L2.
	FlagL2Hit
	// FlagMerged: the access merged with an outstanding miss in the MSHR.
	FlagMerged
	// FlagL3Hit: the access hit in the shared L3.
	FlagL3Hit
	// FlagDRAM: the access went all the way to DRAM.
	FlagDRAM
)

// Request is one memory transaction in flight. A request is issued at
// Issue and carries its running completion time in Now; each stage
// advances Now by the latency it charges and the pipeline stamps the
// post-stage time into Stamp, so Stamp[s]-Stamp[previous] is the latency
// attributable to stage s.
type Request struct {
	PU    PU
	Addr  uint64
	Line  uint64 // Addr rounded down to the cache-line base
	Write bool
	Issue clock.Time
	Now   clock.Time
	Flags Flags
	// L1Way reports which way of the PU's L1 holds the line after the
	// pipeline filled it (-1 when the request completed without an L1
	// fill, e.g. an MSHR merge or a bypassed install). Callers use it to
	// seed way memoizations without a post-fill set scan; it carries no
	// timing information.
	L1Way int8
	// Stamp holds each stage's completion time; zero for stages the
	// request never reached.
	Stamp [NumStages]clock.Time
}

// Start (re)initialises the request for a new access. Requests are
// reused across accesses, so every field is rewritten here.
func (r *Request) Start(pu PU, addr, line uint64, write bool, now clock.Time) {
	r.PU = pu
	r.Addr = addr
	r.Line = line
	r.Write = write
	r.Issue = now
	r.Now = now
	r.Flags = 0
	r.L1Way = -1
	r.Stamp = [NumStages]clock.Time{}
}

// Latency returns the request's total latency so far.
func (r *Request) Latency() clock.Duration { return r.Now.Sub(r.Issue) }
