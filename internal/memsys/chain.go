package memsys

import (
	"time"

	"heteromem/internal/clock"
	"heteromem/internal/obs"
)

// Chain is the devirtualized form of the built-in pipeline: the same
// stages in the same order as mem.Hierarchy's Pipeline composition, but
// held as concrete types and invoked directly, so the per-access
// interface dispatch of Pipeline.Run disappears from the hot path. The
// Stage interface and Pipeline remain the extension surface for tests
// and alternative hierarchies; Chain is the monomorphic production
// path.
//
// Stamping matches Pipeline.Run exactly: every executed stage records
// its completion time, and a Done verdict skips the rest.
type Chain struct {
	// Xlat, when non-nil, is the address-translation front-end (the
	// translation axis): every access is translated before it touches
	// the private caches. Nil means translation off — no probe, no
	// branch cost beyond one pointer check.
	Xlat    *TranslationStage
	Private *PrivateStage
	MSHR    *MSHRStage
	ReqHop  *RingHopStage
	L3      *L3Stage
	// Backend is the terminal memory stage (the mem_tech axis): the
	// DDR3 DRAMStage by default, or an HBM/NVM/DRAM-cache stage. This
	// is the chain's one interface slot — it sits on the L3-miss path
	// only, so the dispatch never touches the L1-hit fast path.
	Backend Backend
	RespHop *RingHopStage
	Commit  *CommitStage

	// Prof, when non-nil, attributes sampled HOST wall-clock time to the
	// chain's stages: one in every Prof.Every() runs takes the timed path
	// below, so a sweep can see which simulation stage burns real time
	// without paying two clock reads per stage on every access. ProfBase
	// is the profiler section id of the private stage; the remaining
	// stages follow contiguously in chain order (see ProfSections).
	Prof     *obs.HostProf
	ProfBase int
}

// ProfSections lists the chain's host-profiling section names in stage
// order. Hierarchies register them contiguously so ProfBase+offset
// addresses each stage.
func ProfSections() []string {
	return []string{
		"memsys.xlat", "memsys.private", "memsys.mshr", "memsys.ring_req",
		"memsys.l3", "memsys.dram", "memsys.ring_resp", "memsys.commit",
	}
}

// Offsets of each stage's profiler section from ProfBase, matching
// ProfSections order.
const (
	profXlat = iota
	profPrivate
	profMSHR
	profRingReq
	profL3
	profDRAM
	profRingResp
	profCommit
)

// Run processes r through the full chain; it is equivalent to
// Pipeline.Run over the same stages.
func (c *Chain) Run(r *Request) clock.Time {
	if c.Prof.Sample() {
		return c.runProfiled(r, false)
	}
	if c.Xlat != nil {
		c.Xlat.Process(r)
		r.Stamp[StageXlat] = r.Now
	}
	v := c.Private.Process(r)
	r.Stamp[StagePrivate] = r.Now
	if v == Done {
		return r.Now
	}
	return c.runShared(r)
}

// RunMissedL1 continues a request whose first-level lookup was already
// performed (and missed) by the caller — the hierarchy's L1-hit fast
// path. r.Now must already include the L1 latency, and when the
// translation axis is on the caller has already translated the address
// (the hierarchy charges Xlat before its L1 probe).
func (c *Chain) RunMissedL1(r *Request) clock.Time {
	if c.Prof.Sample() {
		return c.runProfiled(r, true)
	}
	v := c.Private.ProcessMissedL1(r)
	r.Stamp[StagePrivate] = r.Now
	if v == Done {
		return r.Now
	}
	return c.runShared(r)
}

// runShared is the shared-path tail: MSHR merge, ring hop out, L3 (with
// coherence), the terminal backend, ring hop back, commit.
func (c *Chain) runShared(r *Request) clock.Time {
	v := c.MSHR.Process(r)
	r.Stamp[StageMSHR] = r.Now
	if v == Done {
		return r.Now
	}
	c.ReqHop.Process(r)
	r.Stamp[StageRingReq] = r.Now
	c.L3.Process(r)
	r.Stamp[StageL3] = r.Now
	c.Backend.Process(r)
	r.Stamp[StageDRAM] = r.Now
	c.RespHop.Process(r)
	r.Stamp[StageRingResp] = r.Now
	c.Commit.Process(r)
	r.Stamp[StageCommit] = r.Now
	return r.Now
}

// runProfiled is Run/RunMissedL1 with host-time stamps around every
// stage. Simulated timing and cache mutations are identical to the
// unprofiled path — only real time is measured, so a profiled run stays
// bit-identical to an unprofiled one.
func (c *Chain) runProfiled(r *Request, missedL1 bool) clock.Time {
	if !missedL1 && c.Xlat != nil {
		t := time.Now()
		c.Xlat.Process(r)
		r.Stamp[StageXlat] = r.Now
		c.Prof.Add(c.ProfBase+profXlat, time.Since(t))
	}
	t := time.Now()
	var v Verdict
	if missedL1 {
		v = c.Private.ProcessMissedL1(r)
	} else {
		v = c.Private.Process(r)
	}
	r.Stamp[StagePrivate] = r.Now
	c.Prof.Add(c.ProfBase+profPrivate, time.Since(t))
	if v == Done {
		return r.Now
	}

	t = time.Now()
	v = c.MSHR.Process(r)
	r.Stamp[StageMSHR] = r.Now
	c.Prof.Add(c.ProfBase+profMSHR, time.Since(t))
	if v == Done {
		return r.Now
	}
	t = time.Now()
	c.ReqHop.Process(r)
	r.Stamp[StageRingReq] = r.Now
	c.Prof.Add(c.ProfBase+profRingReq, time.Since(t))
	t = time.Now()
	c.L3.Process(r)
	r.Stamp[StageL3] = r.Now
	c.Prof.Add(c.ProfBase+profL3, time.Since(t))
	t = time.Now()
	c.Backend.Process(r)
	r.Stamp[StageDRAM] = r.Now
	c.Prof.Add(c.ProfBase+profDRAM, time.Since(t))
	t = time.Now()
	c.RespHop.Process(r)
	r.Stamp[StageRingResp] = r.Now
	c.Prof.Add(c.ProfBase+profRingResp, time.Since(t))
	t = time.Now()
	c.Commit.Process(r)
	r.Stamp[StageCommit] = r.Now
	c.Prof.Add(c.ProfBase+profCommit, time.Since(t))
	return r.Now
}
