package memsys

import (
	"heteromem/internal/clock"
)

// Chain is the devirtualized form of the built-in pipeline: the same
// stages in the same order as mem.Hierarchy's Pipeline composition, but
// held as concrete types and invoked directly, so the per-access
// interface dispatch of Pipeline.Run disappears from the hot path. The
// Stage interface and Pipeline remain the extension surface for tests
// and alternative hierarchies; Chain is the monomorphic production
// path.
//
// Stamping matches Pipeline.Run exactly: every executed stage records
// its completion time, and a Done verdict skips the rest.
type Chain struct {
	Private *PrivateStage
	MSHR    *MSHRStage
	ReqHop  *RingHopStage
	L3      *L3Stage
	DRAM    *DRAMStage
	RespHop *RingHopStage
	Commit  *CommitStage
}

// Run processes r through the full chain; it is equivalent to
// Pipeline.Run over the same stages.
func (c *Chain) Run(r *Request) clock.Time {
	v := c.Private.Process(r)
	r.Stamp[StagePrivate] = r.Now
	if v == Done {
		return r.Now
	}
	return c.runShared(r)
}

// RunMissedL1 continues a request whose first-level lookup was already
// performed (and missed) by the caller — the hierarchy's L1-hit fast
// path. r.Now must already include the L1 latency.
func (c *Chain) RunMissedL1(r *Request) clock.Time {
	v := c.Private.ProcessMissedL1(r)
	r.Stamp[StagePrivate] = r.Now
	if v == Done {
		return r.Now
	}
	return c.runShared(r)
}

// runShared is the shared-path tail: MSHR merge, ring hop out, L3 (with
// coherence), DRAM, ring hop back, commit.
func (c *Chain) runShared(r *Request) clock.Time {
	v := c.MSHR.Process(r)
	r.Stamp[StageMSHR] = r.Now
	if v == Done {
		return r.Now
	}
	c.ReqHop.Process(r)
	r.Stamp[StageRingReq] = r.Now
	c.L3.Process(r)
	r.Stamp[StageL3] = r.Now
	c.DRAM.Process(r)
	r.Stamp[StageDRAM] = r.Now
	c.RespHop.Process(r)
	r.Stamp[StageRingResp] = r.Now
	c.Commit.Process(r)
	r.Stamp[StageCommit] = r.Now
	return r.Now
}
