package memsys

import (
	"heteromem/internal/cache"
	"heteromem/internal/clock"
	"heteromem/internal/coherence"
	"heteromem/internal/dram"
	"heteromem/internal/obs"
)

// Counts are the per-hierarchy event counters the stages bump on the
// hot path: plain fields with no instrument indirection, mirrored into
// the obs registry in batches (Env.FlushObs).
type Counts struct {
	L1Hits       [NumPUs]uint64
	L2Hits       uint64 // CPU only
	L3Hits       [NumPUs]uint64
	DRAMFills    [NumPUs]uint64
	Writebacks   uint64
	CoherenceOps uint64
}

// Env is the state shared by every stage of one hierarchy: the event
// counters the stages bump and the observability instruments behind
// them. Stages hold a pointer to their hierarchy's Env, so re-wiring
// the instruments (mem.Hierarchy.Instrument) reaches every stage.
type Env struct {
	Counts

	Obs EnvObs
	// flushed is the counter snapshot at the last FlushObs; instruments
	// advance by the delta.
	flushed Counts
}

// EnvObs bundles the optional observability instruments. Nil counters
// are no-ops (obs instruments are nil-safe); the MSHR gauges are
// nil-checked explicitly because updating them walks the MSHR file.
type EnvObs struct {
	L1Hits       [NumPUs]*obs.Counter
	L2Hits       *obs.Counter
	L3Hits       [NumPUs]*obs.Counter
	DRAMFills    [NumPUs]*obs.Counter
	Writebacks   *obs.Counter
	CoherenceOps *obs.Counter
	MSHROut      [NumPUs]*obs.Gauge
}

// Reset zeroes the event counters and the flush baseline (the
// instruments are left wired).
func (e *Env) Reset() {
	obsSaved := e.Obs
	*e = Env{Obs: obsSaved}
}

// MarkFlushed aligns the flush baseline with the current counters so a
// freshly attached registry observes only subsequent events, matching
// per-event bumping semantics.
func (e *Env) MarkFlushed() { e.flushed = e.Counts }

// FlushObs pushes counter growth since the previous flush into the
// registered instruments. The hierarchy calls it at phase boundaries,
// so registry totals and interval samples match per-event bumping
// exactly while the access hot path stays instrument-free.
func (e *Env) FlushObs() {
	for p := PU(0); p < NumPUs; p++ {
		e.Obs.L1Hits[p].Add(e.L1Hits[p] - e.flushed.L1Hits[p])
		e.Obs.L3Hits[p].Add(e.L3Hits[p] - e.flushed.L3Hits[p])
		e.Obs.DRAMFills[p].Add(e.DRAMFills[p] - e.flushed.DRAMFills[p])
	}
	e.Obs.L2Hits.Add(e.L2Hits - e.flushed.L2Hits)
	e.Obs.Writebacks.Add(e.Writebacks - e.flushed.Writebacks)
	e.Obs.CoherenceOps.Add(e.CoherenceOps - e.flushed.CoherenceOps)
	e.flushed = e.Counts
}

// writeback counts one dirty-line writeback.
func (e *Env) writeback() {
	e.Writebacks++
}

// PrivateStage is a PU's private cache level(s): the first-level data
// cache and, on the CPU, the private L2. A hit completes the request;
// a write hit additionally pays the coherence fee for upgrading the
// line. The stage also installs lines on behalf of CommitStage (Fill).
type PrivateStage struct {
	PU        PU
	L1        *cache.Cache
	L1Lat     clock.Duration
	L2        *cache.Cache // nil when the PU has no private second level
	L2Lat     clock.Duration
	Coherence *CoherenceStage
	Env       *Env
}

// ID implements Stage.
func (s *PrivateStage) ID() StageID { return StagePrivate }

// Process looks the address up in the private levels, charging each
// level's latency on the way down.
func (s *PrivateStage) Process(r *Request) Verdict {
	r.Now = r.Now.Add(s.L1Lat)
	if s.L1.Lookup(r.Addr, r.Write) {
		r.Flags |= FlagL1Hit
		s.Env.L1Hits[s.PU]++
		if r.Write {
			s.Coherence.Process(r)
		}
		return Done
	}
	return s.ProcessMissedL1(r)
}

// ProcessMissedL1 continues a request whose first-level lookup already
// missed (the hierarchy's fast path performs that lookup itself): the
// CPU consults its private L2; PUs without a second level pass the
// request on. r.Now must already include the L1 latency.
func (s *PrivateStage) ProcessMissedL1(r *Request) Verdict {
	if s.L2 == nil {
		return Next
	}
	r.Now = r.Now.Add(s.L2Lat)
	if s.L2.Lookup(r.Addr, r.Write) {
		r.Flags |= FlagL2Hit
		s.Env.L2Hits++
		r.L1Way = int8(s.fillInto(s.L1, r.Addr, r.Write))
		return Done
	}
	return Next
}

// Fill installs the line into the PU's private levels after a shared
// fill, notifying the directory when a line leaves the PU's domain
// entirely. It returns the L1 way the line landed in (-1 on bypass) so
// the caller can seed way memoizations.
func (s *PrivateStage) Fill(addr uint64, write bool) int {
	if s.L2 != nil {
		ev := s.L2.Fill(addr, false, false)
		s.noteEviction(ev, s.L1)
		return s.fillInto(s.L1, addr, write)
	}
	ev, way := s.L1.FillWay(addr, false, write)
	s.noteEviction(ev, nil)
	return way
}

// fillInto fills a private cache, absorbing the eviction (private-level
// writebacks land in the level below, whose traffic the shared path
// already dominates; we count them only). Returns the way filled.
func (s *PrivateStage) fillInto(c *cache.Cache, addr uint64, dirty bool) int {
	ev, way := c.FillWay(addr, false, dirty)
	if ev.Valid && ev.Dirty {
		s.Env.writeback()
	}
	return way
}

// noteEviction counts a private eviction and drops the line from the
// directory if no other cache of the same PU still holds it.
func (s *PrivateStage) noteEviction(ev cache.Eviction, alsoHolds *cache.Cache) {
	if !ev.Valid {
		return
	}
	if ev.Dirty {
		s.Env.writeback()
	}
	dir := s.Coherence.Directory()
	if dir == nil {
		return
	}
	if alsoHolds != nil && alsoHolds.Probe(ev.Addr) {
		return
	}
	dir.Evict(int(s.PU), ev.Addr)
}

// MSHRStage merges a miss with an already-outstanding miss to the same
// line: the access completes with the in-flight fill (which also
// populates the private levels), so the rest of the pipeline is
// skipped.
type MSHRStage struct {
	File *cache.MSHR
}

// ID implements Stage.
func (s *MSHRStage) ID() StageID { return StageMSHR }

// Process checks the MSHR file; a merged request completes when the
// outstanding fill returns (or immediately, if it already has).
func (s *MSHRStage) Process(r *Request) Verdict {
	if ready, ok := s.File.Outstanding(r.Line, r.Now); ok {
		r.Flags |= FlagMerged
		r.Now = clock.Max(ready, r.Now)
		return Done
	}
	return Next
}

// RingHopStage moves the request over the interconnect: the request
// message from the PU's stop to the home L3 tile (StageRingReq), or the
// data response back (StageRingResp).
type RingHopStage struct {
	Stage StageID // StageRingReq or StageRingResp
	Net   Interconnect
	Topo  Topology
}

// ID implements Stage.
func (s *RingHopStage) ID() StageID { return s.Stage }

// Process sends the hop's message and advances the request to the
// arrival time.
func (s *RingHopStage) Process(r *Request) Verdict {
	src := s.Topo.PUStop[r.PU]
	ts := s.Topo.TileStop(s.Topo.TileFor(r.Addr))
	if s.Stage == StageRingReq {
		r.Now = s.Net.Send(src, ts, s.Topo.ReqBytes, r.Now)
	} else {
		r.Now = s.Net.Send(ts, src, s.Topo.LineBytes+s.Topo.ReqBytes, r.Now)
	}
	return Next
}

// L3Stage is the shared L3: the home tile charges its access latency,
// consults the coherence directory, and looks the line up. The lookup
// outcome is recorded in FlagL3Hit for the downstream DRAM stage.
type L3Stage struct {
	Tiles []*cache.Cache
	Lat   clock.Duration
	// Mem absorbs dirty victim writebacks; in production it is the
	// hierarchy's terminal Backend.
	Mem       Writebacker
	Topo      Topology
	Coherence *CoherenceStage
	Env       *Env
}

// ID implements Stage.
func (s *L3Stage) ID() StageID { return StageL3 }

// Process performs the home-tile lookup.
func (s *L3Stage) Process(r *Request) Verdict {
	r.Now = r.Now.Add(s.Lat)
	s.Coherence.Process(r)
	if s.Tiles[s.Topo.TileFor(r.Addr)].Lookup(r.Addr, r.Write) {
		r.Flags |= FlagL3Hit
		s.Env.L3Hits[r.PU]++
	}
	return Next
}

// Fill installs a line into its L3 tile; a dirty victim is written back
// to the terminal memory, occupying the backend but off the critical
// path.
func (s *L3Stage) Fill(tile int, addr uint64, explicit, dirty bool, now clock.Time) {
	ev := s.Tiles[tile].Fill(addr, explicit, dirty)
	if ev.Valid && ev.Dirty {
		s.Env.writeback()
		if s.Mem != nil {
			s.Mem.Writeback(ev.Addr, now)
		}
	}
}

// DRAMStage serves L3 misses: the request hops from the home tile to
// the memory-controller stop, accesses DRAM, and the line returns to
// the home tile, where it is installed. L3 hits pass through untouched.
// It is the baseline Backend (mem_tech: dram) — the refactor's
// bit-identical correctness anchor.
type DRAMStage struct {
	Ctrl *dram.Controller
	Net  Interconnect
	Topo Topology
	L3   *L3Stage
	Env  *Env

	accesses backendCounter
}

// ID implements Stage.
func (s *DRAMStage) ID() StageID { return StageDRAM }

// Process fetches the line from DRAM unless the L3 already served it.
func (s *DRAMStage) Process(r *Request) Verdict {
	if r.Flags&FlagL3Hit != 0 {
		return Next
	}
	r.Flags |= FlagDRAM
	tile := s.Topo.TileFor(r.Addr)
	ts := s.Topo.TileStop(tile)
	r.Now = s.Net.Send(ts, s.Topo.MCStop, s.Topo.ReqBytes, r.Now)
	r.Now = s.Ctrl.Submit(r.Addr, r.Now)
	s.Env.DRAMFills[r.PU]++
	s.accesses.n++
	r.Now = s.Net.Send(s.Topo.MCStop, ts, s.Topo.LineBytes+s.Topo.ReqBytes, r.Now)
	s.L3.Fill(tile, r.Addr, false, r.Write, r.Now)
	return Next
}

// Writeback implements Backend: a dirty L3 victim occupies the
// controller at now, off the critical path.
func (s *DRAMStage) Writeback(addr uint64, now clock.Time) {
	s.Ctrl.Submit(addr, now)
}

// Reset implements Backend. The DDR3 controller is a hierarchy-owned
// substrate (the memory-controller fabric DMAs through it too), so the
// hierarchy resets it; only the stage's own counters clear here.
func (s *DRAMStage) Reset() { s.accesses.reset() }

// Instrument implements Backend, registering memtech.dram.*.
func (s *DRAMStage) Instrument(reg *obs.Registry) {
	s.accesses.instrument(reg, "memtech.dram.accesses")
}

// FlushObs implements Backend.
func (s *DRAMStage) FlushObs() { s.accesses.flush() }

// CommitStage finishes a shared-path request: the line is installed
// into the PU's private levels and the miss is registered in the MSHR
// file, which may push completion out further when the file is full.
type CommitStage struct {
	Private *PrivateStage
	File    *cache.MSHR
	Env     *Env
}

// ID implements Stage.
func (s *CommitStage) ID() StageID { return StageCommit }

// Process fills the private levels and allocates the MSHR entry. The
// allocation is keyed to the time the request entered the shared path
// (the MSHR stamp), not its completion time, so merges observe the
// full in-flight window. The InFlight walk only runs with a live
// gauge, so the uninstrumented path pays a single nil check.
func (s *CommitStage) Process(r *Request) Verdict {
	r.L1Way = int8(s.Private.Fill(r.Addr, r.Write))
	issued := r.Stamp[StageMSHR]
	r.Now = s.File.Allocate(r.Line, issued, r.Now)
	if g := s.Env.Obs.MSHROut[s.Private.PU]; g != nil {
		g.Set(uint64(s.File.InFlight(issued)))
	}
	return Done
}

// CoherenceStage prices the directory work an access requires: remote
// copies are invalidated (and dirty ones written back) over the
// interconnect before the access may complete. It is invoked as a
// sub-stage by PrivateStage (write hits) and L3Stage (every shared
// access), and is free when the directory is off or the access needs
// no remote work.
type CoherenceStage struct {
	Dir  *coherence.Directory // nil = coherence off
	Net  Interconnect
	Topo Topology
	// Caches lists, per PU, the private caches to invalidate when the
	// directory recalls that PU's copy.
	Caches [NumPUs][]*cache.Cache
	Env    *Env
	// Gen, when non-nil, points at the per-PU generations backing line
	// memoizations (mem.Hierarchy's fast-path filter). When the stage
	// invalidates a remote copy, it bumps the victim PU's generation so
	// that PU's memo slots observe the mutation; the requester's own
	// memo is untouched by a remote recall.
	Gen *[NumPUs]uint64
}

// ID implements Stage.
func (s *CoherenceStage) ID() StageID { return StageCoherence }

// Directory returns the directory, or nil when coherence is off (or
// the stage itself is absent).
func (s *CoherenceStage) Directory() *coherence.Directory {
	if s == nil {
		return nil
	}
	return s.Dir
}

// Process consults the directory and, when remote work is needed,
// invalidates the other PU's copies and charges one interconnect round
// trip from the home tile to the remote PU.
func (s *CoherenceStage) Process(r *Request) Verdict {
	if s == nil || s.Dir == nil {
		return Next
	}
	if now, did := s.apply(r.PU, r.Addr, r.Line, r.Write, r.Now); did {
		r.Now = now
		r.Stamp[StageCoherence] = now
	}
	return Next
}

// Apply is the request-free core of the stage, invoked directly by the
// hierarchy's L1-hit fast path: it consults the directory for an
// access by pu and prices any remote invalidation, returning the
// (possibly advanced) completion time. Free when coherence is off.
func (s *CoherenceStage) Apply(pu PU, addr, line uint64, write bool, now clock.Time) clock.Time {
	if s == nil || s.Dir == nil {
		return now
	}
	t, _ := s.apply(pu, addr, line, write, now)
	return t
}

func (s *CoherenceStage) apply(pu PU, addr, line uint64, write bool, now clock.Time) (clock.Time, bool) {
	act := s.Dir.Access(int(pu), addr, write)
	if act.Messages == 0 {
		return now, false
	}
	s.Env.CoherenceOps++
	other := CPU
	if pu == CPU {
		other = GPU
	}
	if s.Gen != nil {
		s.Gen[other]++
	}
	for _, c := range s.Caches[other] {
		c.Invalidate(line)
	}
	// One round trip from the home tile to the remote PU: the
	// invalidate/forward out, the ack (plus data for a writeback) back.
	ts := s.Topo.TileStop(s.Topo.TileFor(addr))
	t := s.Net.Send(ts, s.Topo.PUStop[other], s.Topo.ReqBytes, now)
	resp := s.Topo.ReqBytes
	if act.Writeback {
		resp += s.Topo.LineBytes
	}
	return s.Net.Send(s.Topo.PUStop[other], ts, resp, t), true
}
