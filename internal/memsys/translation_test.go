package memsys

import (
	"testing"

	"heteromem/internal/clock"
	"heteromem/internal/obs"
	"heteromem/internal/xlat"
)

// noWalkCache returns a private-MMU spec with the walk cache disabled,
// so every miss pays the full multi-level walk — the simplest timing to
// assert against.
func noWalkCache(mmu xlat.MMUKind) xlat.Spec {
	return xlat.Spec{MMU: mmu, Walk: &xlat.WalkParams{CacheEntries: -1}}
}

func mustStage(t *testing.T, spec xlat.Spec) *TranslationStage {
	t.Helper()
	s, err := NewTranslationStage(spec)
	if err != nil {
		t.Fatal(err)
	}
	if s == nil {
		t.Fatal("nil stage for non-zero spec")
	}
	return s
}

func TestTranslationOffIsNil(t *testing.T) {
	s, err := NewTranslationStage(xlat.Spec{})
	if err != nil {
		t.Fatal(err)
	}
	if s != nil {
		t.Fatal("zero spec built a stage")
	}
	// Every accessor and mutator must be nil-safe — the hierarchy calls
	// them unconditionally.
	s.Flush(CPU)
	s.Reset()
	s.FlushObs()
	s.Instrument(obs.NewRegistry())
	if s.Lookups(GPU) != 0 || s.Misses(GPU) != 0 || s.WalkPS(GPU) != 0 || s.Shootdowns(GPU) != 0 {
		t.Fatal("nil stage reported nonzero counters")
	}
}

func TestTranslationInvalidSpecRejected(t *testing.T) {
	if _, err := NewTranslationStage(xlat.Spec{MMU: xlat.NumMMUKinds}); err == nil {
		t.Fatal("invalid spec accepted")
	}
}

func TestTranslationHitIsFree(t *testing.T) {
	s := mustStage(t, noWalkCache(xlat.Private))
	start := clock.Time(1000)
	afterMiss := s.Translate(CPU, 0x1000, start)
	if !afterMiss.After(start) {
		t.Fatal("miss charged nothing")
	}
	again := s.Translate(CPU, 0x1234, afterMiss)
	if again != afterMiss {
		t.Fatalf("TLB hit advanced time: %v -> %v", afterMiss, again)
	}
	if s.Lookups(CPU) != 2 || s.Misses(CPU) != 1 {
		t.Fatalf("lookups=%d misses=%d", s.Lookups(CPU), s.Misses(CPU))
	}
}

func TestTranslationMissChargesFullWalk(t *testing.T) {
	s := mustStage(t, noWalkCache(xlat.Private))
	want := clock.Duration(s.Levels) * s.LevelLat
	start := clock.Time(0)
	end := s.Translate(GPU, 0x4000, start)
	if got := end.Sub(start); got != want {
		t.Fatalf("walk charged %v, want %v", got, want)
	}
	if s.WalkPS(GPU) != uint64(want) {
		t.Fatalf("WalkPS = %d, want %d", s.WalkPS(GPU), want)
	}
}

func TestWalkCacheShortensRepeatWalks(t *testing.T) {
	s := mustStage(t, xlat.Spec{MMU: xlat.Private})
	if s.WalkCache[CPU] == nil {
		t.Fatal("default spec has no walk cache")
	}
	full := clock.Duration(s.Levels) * s.LevelLat
	start := clock.Time(0)
	// First miss: cold walk cache, full walk.
	end := s.Translate(CPU, 0x0000, start)
	if end.Sub(start) != full {
		t.Fatalf("cold walk charged %v, want %v", end.Sub(start), full)
	}
	// Next page in the same 2 MB region: the walk cache holds the
	// last-level table, so only one level is charged.
	end2 := s.Translate(CPU, 0x1000, end)
	if got := end2.Sub(end); got != s.LevelLat {
		t.Fatalf("cached walk charged %v, want %v", got, s.LevelLat)
	}
	if s.WalkCacheHits(CPU) != 1 {
		t.Fatalf("walk-cache hits = %d", s.WalkCacheHits(CPU))
	}
}

func TestSharedMMUSerialisesWalks(t *testing.T) {
	shared := mustStage(t, noWalkCache(xlat.Shared))
	private := mustStage(t, noWalkCache(xlat.Private))
	if !shared.SharedMMU() || private.SharedMMU() {
		t.Fatal("SharedMMU mislabeled")
	}
	walk := clock.Duration(shared.Levels) * shared.LevelLat
	start := clock.Time(0)
	// Both PUs miss at the same instant. Private walkers overlap; the
	// shared walker queues the second walk behind the first.
	pc := private.Translate(CPU, 0x10000, start)
	pg := private.Translate(GPU, 0x20000, start)
	if pc.Sub(start) != walk || pg.Sub(start) != walk {
		t.Fatalf("private walks: cpu %v gpu %v, want %v", pc.Sub(start), pg.Sub(start), walk)
	}
	sc := shared.Translate(CPU, 0x10000, start)
	sg := shared.Translate(GPU, 0x20000, start)
	if sc.Sub(start) != walk {
		t.Fatalf("first shared walk %v, want %v", sc.Sub(start), walk)
	}
	if sg.Sub(start) != 2*walk {
		t.Fatalf("second shared walk %v, want %v (queued)", sg.Sub(start), 2*walk)
	}
}

func TestIOMMUExtraCharged(t *testing.T) {
	spec := noWalkCache(xlat.Private)
	spec.IOMMU = xlat.IOMMUOn
	s := mustStage(t, spec)
	walk := clock.Duration(s.Levels) * s.LevelLat
	start := clock.Time(0)
	// The GPU walks through the IOMMU: full walk + interconnect extra.
	gpu := s.Translate(GPU, 0x1000, start)
	if got := gpu.Sub(start); got != walk+s.IOMMUExtra {
		t.Fatalf("IOMMU walk %v, want %v", got, walk+s.IOMMUExtra)
	}
	// The CPU keeps its core MMU.
	cpu := s.Translate(CPU, 0x1000, start)
	if got := cpu.Sub(start); got != walk {
		t.Fatalf("CPU walk %v, want %v", got, walk)
	}
	// The IOMMU path never builds a device walk cache.
	if s.WalkCache[GPU] != nil {
		t.Fatal("IOMMU path has a walk cache")
	}
}

func TestFlushShootsDownAndCounts(t *testing.T) {
	s := mustStage(t, xlat.Spec{MMU: xlat.Private})
	end := s.Translate(CPU, 0x1000, clock.Time(0))
	if got := s.Translate(CPU, 0x1000, end); got != end {
		t.Fatal("warm entry missed")
	}
	s.Flush(CPU)
	if s.Shootdowns(CPU) != 1 {
		t.Fatalf("shootdowns = %d", s.Shootdowns(CPU))
	}
	if got := s.Translate(CPU, 0x1000, end); got == end {
		t.Fatal("hit after shootdown")
	}
	// Only the flushed PU's TLB is affected.
	gEnd := s.Translate(GPU, 0x2000, clock.Time(0))
	s.Flush(CPU)
	if got := s.Translate(GPU, 0x2000, gEnd); got != gEnd {
		t.Fatal("CPU shootdown emptied the GPU TLB")
	}
}

func TestTranslationResetRestoresColdState(t *testing.T) {
	s := mustStage(t, noWalkCache(xlat.Shared))
	start := clock.Time(0)
	first := s.Translate(CPU, 0x1000, start)
	s.Translate(GPU, 0x2000, start)
	s.Reset()
	if s.Lookups(CPU) != 0 || s.Misses(GPU) != 0 || s.WalkPS(CPU) != 0 {
		t.Fatal("reset kept counters")
	}
	// The walker must be idle again: a post-reset walk from t=0 takes
	// exactly one cold walk, with no queueing behind pre-reset walks.
	again := s.Translate(CPU, 0x1000, start)
	if again != first {
		t.Fatalf("post-reset walk ended %v, want %v", again, first)
	}
}

func TestTranslationProcessStampsRequest(t *testing.T) {
	s := mustStage(t, noWalkCache(xlat.Private))
	var r Request
	r.Start(GPU, 0x123456, 0x123440, false, clock.Time(0))
	if v := s.Process(&r); v != Next {
		t.Fatalf("verdict = %v", v)
	}
	if r.Now.Sub(r.Issue) != clock.Duration(s.Levels)*s.LevelLat {
		t.Fatalf("Process charged %v", r.Now.Sub(r.Issue))
	}
	if s.ID() != StageXlat {
		t.Fatalf("ID = %v", s.ID())
	}
}

func TestTranslationObservability(t *testing.T) {
	s := mustStage(t, xlat.Spec{MMU: xlat.Private})
	reg := obs.NewRegistry()
	s.Instrument(reg)
	s.Translate(CPU, 0x1000, clock.Time(0))
	s.Translate(CPU, 0x1000, clock.Time(0))
	s.Flush(CPU)
	s.FlushObs()
	snap := reg.Snapshot()
	if got := snap.Counters["xlat.lookups.cpu"]; got != 2 {
		t.Fatalf("xlat.lookups.cpu = %d", got)
	}
	if got := snap.Counters["xlat.misses.cpu"]; got != 1 {
		t.Fatalf("xlat.misses.cpu = %d", got)
	}
	if got := snap.Counters["xlat.shootdowns.cpu"]; got != 1 {
		t.Fatalf("xlat.shootdowns.cpu = %d", got)
	}
	if snap.Counters["xlat.walk_ps.cpu"] == 0 {
		t.Fatal("xlat.walk_ps.cpu = 0")
	}
	// Instrumenting mid-run must only expose subsequent growth.
	reg2 := obs.NewRegistry()
	s.Instrument(reg2)
	s.FlushObs()
	if got := reg2.Snapshot().Counters["xlat.lookups.cpu"]; got != 0 {
		t.Fatalf("re-instrumented baseline leaked %d lookups", got)
	}
}
