package memsys

import (
	"fmt"

	"heteromem/internal/clock"
	"heteromem/internal/obs"
	"heteromem/internal/xlat"
)

// TranslationStage is the per-PU address-translation front-end — the
// timed realisation of an xlat.Spec. Every core-issued access probes
// the issuing PU's TLB; a hit is free (the probe overlaps the L1
// lookup), a miss charges a multi-level page walk through the PU's
// walker resource, so concurrent walks on a shared MMU serialise
// exactly like banked DRAM or the shared ring. An optional walk cache
// short-circuits all but the last level; the IOMMU path (devices behind
// PCIe or the PCI aperture) pays a fixed interconnect round-trip extra
// and walks without the core walk caches.
//
// The stage sits in front of the chain (StageXlat) but the production
// hierarchy calls Translate directly before its L1 fast path, so the
// translation-off configuration stays byte-identical: a nil
// *TranslationStage is a valid "axis off" value and every method is
// nil-receiver safe.
type TranslationStage struct {
	TLB [NumPUs]*xlat.TLB
	// WalkCache holds upper-level page-table entries; nil disables it
	// for that PU (always nil on the IOMMU path).
	WalkCache [NumPUs]*xlat.TLB
	// Walker serialises page walks. A shared MMU aliases both slots to
	// one clock.Resource so cross-PU walks contend.
	Walker [NumPUs]*clock.Resource
	// Levels and LevelLat price a full walk; a walk-cache hit pays a
	// single level.
	Levels   int
	LevelLat clock.Duration
	// IOMMU marks PUs whose walks run through the IOMMU path; IOMMUExtra
	// is that path's fixed additional latency.
	IOMMU      [NumPUs]bool
	IOMMUExtra clock.Duration

	shared bool

	lookups    [NumPUs]backendCounter
	misses     [NumPUs]backendCounter
	walkPS     [NumPUs]backendCounter
	wcHits     [NumPUs]backendCounter
	shootdowns [NumPUs]backendCounter
}

// NewTranslationStage builds the stage an xlat.Spec describes, or nil
// when the spec is the translation-off baseline. The spec's IOMMU mode
// must already be resolved (auto is treated as off; sim resolves it
// from the system's fabric before the hierarchy is built).
func NewTranslationStage(spec xlat.Spec) (*TranslationStage, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if spec.IsZero() {
		return nil, nil
	}
	walk := spec.ResolvedWalk()
	s := &TranslationStage{
		Levels:     walk.Levels,
		LevelLat:   clock.Duration(walk.LevelPS),
		IOMMUExtra: clock.Duration(walk.IOMMUExtraPS),
		shared:     spec.MMU == xlat.Shared,
	}
	s.IOMMU[GPU] = spec.IOMMU == xlat.IOMMUOn
	if s.shared {
		w := clock.NewResource("xlat.mmu")
		s.Walker[CPU], s.Walker[GPU] = w, w
	} else {
		s.Walker[CPU] = clock.NewResource("xlat.mmu.cpu")
		s.Walker[GPU] = clock.NewResource("xlat.mmu.gpu")
	}
	for pu, params := range [NumPUs]xlat.TLBParams{CPU: spec.ResolvedCPU(), GPU: spec.ResolvedGPU()} {
		tlb, err := xlat.NewTLB(params.Entries, params.Ways, params.PageBytes)
		if err != nil {
			return nil, fmt.Errorf("translation.%v: %w", PU(pu), err)
		}
		s.TLB[pu] = tlb
		if walk.CacheEntries > 0 && !s.IOMMU[pu] {
			// One walk-cache entry covers a last-level table page — 512
			// translations — so the cache is a fully associative TLB at
			// pageBits+9 granularity.
			s.WalkCache[pu] = xlat.MustNewTLB(walk.CacheEntries, walk.CacheEntries, params.PageBytes<<9)
		}
	}
	return s, nil
}

// Translate charges addr's translation for pu at time now and returns
// the time the physical address is available. A TLB hit returns now
// unchanged: the probe runs in parallel with the L1 tag check.
func (s *TranslationStage) Translate(pu PU, addr uint64, now clock.Time) clock.Time {
	s.lookups[pu].n++
	if s.TLB[pu].Lookup(addr) {
		return now
	}
	s.misses[pu].n++
	levels := s.Levels
	if wc := s.WalkCache[pu]; wc != nil && wc.Lookup(addr) {
		s.wcHits[pu].n++
		levels = 1
	}
	lat := clock.Duration(levels) * s.LevelLat
	if s.IOMMU[pu] {
		lat += s.IOMMUExtra
	}
	_, end := s.Walker[pu].Acquire(now, lat)
	s.walkPS[pu].n += uint64(end.Sub(now))
	return end
}

// Flush shoots down pu's translations — TLB and walk cache — as a page
// table update demands (ownership handovers and lib-pf faults remap
// pages, so the hierarchy's FlushPrivate calls through here). Nil-safe
// so callers need no axis check.
func (s *TranslationStage) Flush(pu PU) {
	if s == nil {
		return
	}
	s.shootdowns[pu].n++
	s.TLB[pu].Flush()
	if wc := s.WalkCache[pu]; wc != nil {
		wc.Flush()
	}
}

// ID implements Stage.
func (s *TranslationStage) ID() StageID { return StageXlat }

// Process implements Stage for pipeline composition: it translates the
// request's address and advances r.Now past any walk.
func (s *TranslationStage) Process(r *Request) Verdict {
	r.Now = s.Translate(r.PU, r.Addr, r.Now)
	return Next
}

// Reset returns the stage to just-constructed: TLBs, walk caches,
// walkers and counters all cleared. Registered instruments stay wired.
func (s *TranslationStage) Reset() {
	if s == nil {
		return
	}
	for pu := range s.TLB {
		s.TLB[pu].Reset()
		if wc := s.WalkCache[pu]; wc != nil {
			wc.Reset()
		}
		s.Walker[pu].Reset()
		s.lookups[pu].reset()
		s.misses[pu].reset()
		s.walkPS[pu].reset()
		s.wcHits[pu].reset()
		s.shootdowns[pu].reset()
	}
}

// Instrument registers the stage's xlat.* instruments with reg (nil
// detaches them) and aligns the flush baseline so a freshly attached
// registry observes only subsequent events.
func (s *TranslationStage) Instrument(reg *obs.Registry) {
	if s == nil {
		return
	}
	for pu := PU(0); pu < NumPUs; pu++ {
		s.lookups[pu].instrument(reg, "xlat.lookups."+pu.String())
		s.misses[pu].instrument(reg, "xlat.misses."+pu.String())
		s.walkPS[pu].instrument(reg, "xlat.walk_ps."+pu.String())
		s.wcHits[pu].instrument(reg, "xlat.walk_cache_hits."+pu.String())
		s.shootdowns[pu].instrument(reg, "xlat.shootdowns."+pu.String())
	}
}

// FlushObs pushes counter growth since the previous flush into the
// registered instruments.
func (s *TranslationStage) FlushObs() {
	if s == nil {
		return
	}
	for pu := range s.lookups {
		s.lookups[pu].flush()
		s.misses[pu].flush()
		s.walkPS[pu].flush()
		s.wcHits[pu].flush()
		s.shootdowns[pu].flush()
	}
}

// SharedMMU reports whether both PUs walk through one shared walker.
func (s *TranslationStage) SharedMMU() bool { return s != nil && s.shared }

// Lookups returns pu's TLB probe count (nil-safe, like all accessors).
func (s *TranslationStage) Lookups(pu PU) uint64 {
	if s == nil {
		return 0
	}
	return s.lookups[pu].n
}

// Misses returns pu's TLB miss count.
func (s *TranslationStage) Misses(pu PU) uint64 {
	if s == nil {
		return 0
	}
	return s.misses[pu].n
}

// WalkPS returns the total picoseconds pu's accesses spent stalled on
// page walks (including walker queueing).
func (s *TranslationStage) WalkPS(pu PU) uint64 {
	if s == nil {
		return 0
	}
	return s.walkPS[pu].n
}

// WalkCacheHits returns pu's walk-cache hit count.
func (s *TranslationStage) WalkCacheHits(pu PU) uint64 {
	if s == nil {
		return 0
	}
	return s.wcHits[pu].n
}

// Shootdowns returns the number of TLB shootdowns pu suffered.
func (s *TranslationStage) Shootdowns(pu PU) uint64 {
	if s == nil {
		return 0
	}
	return s.shootdowns[pu].n
}
