package memsys

import (
	"math/bits"

	"heteromem/internal/clock"
)

// Verdict is a stage's decision about what happens to the request next.
type Verdict uint8

const (
	// Next passes the request to the following stage.
	Next Verdict = iota
	// Done completes the request at its current Now; later stages are
	// skipped.
	Done
)

// Stage is one step of the request pipeline. Process advances r.Now by
// whatever latency the stage charges, updates the stage's own state
// (cache contents, MSHR entries, statistics) and decides whether the
// request continues.
type Stage interface {
	// ID names the stage; the pipeline stamps r.Stamp[ID()] after
	// Process returns.
	ID() StageID
	// Process applies the stage to the request.
	Process(r *Request) Verdict
}

// Interconnect carries pipeline messages between stops. noc.Ring
// satisfies it; a mesh (or any other topology) can be swapped in by
// implementing the same contract.
type Interconnect interface {
	// Send moves bytes from stop `from` to stop `to` starting at now and
	// returns the arrival time.
	Send(from, to, bytes int, now clock.Time) clock.Time
}

// Topology maps PUs, L3 tiles and the memory controller onto
// interconnect stops and fixes the message geometry (line and request
// message sizes). It is a value type: stages copy it at construction.
type Topology struct {
	// PUStop is each PU's interconnect stop.
	PUStop [NumPUs]int
	// L3Base is the stop of L3 tile 0; tile t sits at L3Base+t.
	L3Base int
	// MCStop is the memory-controller stop.
	MCStop int
	// Tiles is the number of L3 tiles; lines interleave across them.
	Tiles int
	// LineBytes is the cache-line size, which is also the data-message
	// payload.
	LineBytes int
	// ReqBytes is the size of a request/control message.
	ReqBytes int

	// Derived strength-reduction state (Derive). Zero values mean "not
	// derived" and every method falls back to plain division, so a
	// Topology built as a bare literal stays correct — just slower on
	// the TileFor hot path.
	lineShift uint8  // log2(LineBytes) when LineBytes is a power of two
	tileMask  uint64 // Tiles-1 when Tiles is a power of two
}

// Derive returns t with its strength-reduction fields populated:
// TileFor on the returned value replaces the divide/modulo pair with a
// shift and mask when the geometry allows (power-of-two line size and
// tile count — true for every configuration this package ships).
// Stages copy the Topology at construction, so derive before wiring.
func (t Topology) Derive() Topology {
	if t.LineBytes > 0 && t.LineBytes&(t.LineBytes-1) == 0 {
		t.lineShift = uint8(bits.TrailingZeros(uint(t.LineBytes)))
	}
	if t.Tiles > 0 && t.Tiles&(t.Tiles-1) == 0 {
		t.tileMask = uint64(t.Tiles - 1)
	}
	return t
}

// TileFor returns the L3 tile serving addr (line-interleaved).
func (t Topology) TileFor(addr uint64) int {
	if t.lineShift != 0 {
		line := addr >> t.lineShift
		if t.tileMask != 0 {
			return int(line & t.tileMask)
		}
		return int(line % uint64(t.Tiles))
	}
	return int(addr/uint64(t.LineBytes)) % t.Tiles
}

// TileStop returns the interconnect stop of L3 tile `tile`.
func (t Topology) TileStop(tile int) int { return t.L3Base + tile }

// Line returns addr rounded down to its cache-line base.
func (t Topology) Line(addr uint64) uint64 {
	return addr &^ uint64(t.LineBytes-1)
}

// Pipeline runs a request through an ordered stage list, stamping each
// stage's completion time, until a stage reports Done or the stages are
// exhausted.
type Pipeline struct {
	stages []Stage
}

// NewPipeline builds a pipeline over the given stages, in order.
func NewPipeline(stages ...Stage) *Pipeline {
	return &Pipeline{stages: stages}
}

// Run processes r through the pipeline and returns its completion time.
func (p *Pipeline) Run(r *Request) clock.Time {
	for _, s := range p.stages {
		v := s.Process(r)
		r.Stamp[s.ID()] = r.Now
		if v == Done {
			break
		}
	}
	return r.Now
}
