package memsys

import (
	"heteromem/internal/clock"
	"heteromem/internal/obs"
)

// NVMStage is the non-volatile-memory Backend: byte-addressable
// persistent memory on the memory bus (Optane-class). The defining
// asymmetry is latency: reads are several times slower than DRAM, and
// writes are slower still, so the device hides them behind a bounded
// write queue that drains serially. Reads proceed past queued writes —
// until the queue fills, at which point an arriving read stalls while
// the drain catches up. That read/write interference is the effect the
// model exists to capture: write-heavy kernels see their *read* latency
// collapse, which fixed-latency models miss entirely.
type NVMStage struct {
	// Chans are the per-channel bus resources; lines interleave across
	// them and each transfer occupies its channel for Bus.
	Chans    []*clock.Resource
	ReadLat  clock.Duration
	WriteLat clock.Duration
	Bus      clock.Duration
	// QueueDepth bounds the write queue: a read arriving when more than
	// QueueDepth writes' worth of drain is pending stalls until the
	// backlog shrinks below the bound.
	QueueDepth int
	Net        Interconnect
	Topo       Topology
	L3         *L3Stage
	Env        *Env

	// horizon is the time the serial write drain finishes everything
	// queued so far; each write extends it by WriteLat.
	horizon clock.Time

	reads       backendCounter
	writes      backendCounter
	writeStalls backendCounter
}

// ID implements Stage; the terminal slot keeps the StageDRAM stamp so
// request breakdowns stay comparable across backends.
func (s *NVMStage) ID() StageID { return StageDRAM }

// Process fetches the line from the device unless the L3 already served
// it: hop to the memory-controller stop, admission past the write
// queue, the channel transfer plus the media read, and the line's
// return and install.
func (s *NVMStage) Process(r *Request) Verdict {
	if r.Flags&FlagL3Hit != 0 {
		return Next
	}
	r.Flags |= FlagDRAM
	tile := s.Topo.TileFor(r.Addr)
	ts := s.Topo.TileStop(tile)
	r.Now = s.Net.Send(ts, s.Topo.MCStop, s.Topo.ReqBytes, r.Now)
	at := s.admit(r.Now)
	ch := chanFor(r.Addr, s.Topo.LineBytes, len(s.Chans))
	start, _ := s.Chans[ch].Acquire(at, s.Bus)
	r.Now = start.Add(s.ReadLat)
	s.Env.DRAMFills[r.PU]++
	s.reads.n++
	r.Now = s.Net.Send(s.Topo.MCStop, ts, s.Topo.LineBytes+s.Topo.ReqBytes, r.Now)
	s.L3.Fill(tile, r.Addr, false, r.Write, r.Now)
	return Next
}

// admit lets a read bypass queued writes unless the drain backlog
// exceeds the queue bound, in which case the read waits until exactly
// QueueDepth writes remain pending.
func (s *NVMStage) admit(at clock.Time) clock.Time {
	bound := uint64(s.QueueDepth) * uint64(s.WriteLat)
	if uint64(s.horizon) > uint64(at)+bound {
		s.writeStalls.n++
		return clock.Time(uint64(s.horizon) - bound)
	}
	return at
}

// Writeback implements Backend: a dirty L3 victim transfers over its
// channel and joins the serial write drain. The eviction is off the
// requester's critical path; its cost surfaces as drain backlog that
// later reads may stall on.
func (s *NVMStage) Writeback(addr uint64, now clock.Time) {
	ch := chanFor(addr, s.Topo.LineBytes, len(s.Chans))
	start, _ := s.Chans[ch].Acquire(now, s.Bus)
	s.horizon = clock.Max(s.horizon, start).Add(s.WriteLat)
	s.writes.n++
}

// Reset implements Backend.
func (s *NVMStage) Reset() {
	for _, c := range s.Chans {
		c.Reset()
	}
	s.horizon = 0
	s.reads.reset()
	s.writes.reset()
	s.writeStalls.reset()
}

// Instrument implements Backend, registering memtech.nvm.*.
func (s *NVMStage) Instrument(reg *obs.Registry) {
	s.reads.instrument(reg, "memtech.nvm.reads")
	s.writes.instrument(reg, "memtech.nvm.writes")
	s.writeStalls.instrument(reg, "memtech.nvm.write_stalls")
}

// FlushObs implements Backend.
func (s *NVMStage) FlushObs() {
	s.reads.flush()
	s.writes.flush()
	s.writeStalls.flush()
}
