package memsys

import (
	"testing"

	"heteromem/internal/cache"
	"heteromem/internal/clock"
	"heteromem/internal/dram"
	"heteromem/internal/obs"
)

// newTestL3 returns an L3Stage over four small tiles with no victim
// sink (the backend under test is attached by the caller if needed).
func newTestL3(t *testing.T, env *Env) *L3Stage {
	t.Helper()
	return &L3Stage{
		Tiles: []*cache.Cache{
			mustCache(t, "t0", 4096), mustCache(t, "t1", 4096),
			mustCache(t, "t2", 4096), mustCache(t, "t3", 4096),
		},
		Lat: 20, Topo: testTopo(), Env: env,
	}
}

func TestHBMStageServesMiss(t *testing.T) {
	env := &Env{}
	net := &fakeNet{lat: 3}
	topo := testTopo()
	ctrl, err := dram.New(dram.Config{
		Channels: 2, BanksPerChannel: 2, LineBytes: 64, RowBytes: 2048,
		TCAS: 10, TRCD: 10, TRP: 10, TBurst: 4, TCCD: 2,
		Scheduling: dram.FRFCFS,
	})
	if err != nil {
		t.Fatal(err)
	}
	l3 := newTestL3(t, env)
	s := &HBMStage{Ctrl: ctrl, ExtraLat: 100, Net: net, Topo: topo, L3: l3, Env: env}
	l3.Mem = s

	var r Request
	r.Start(CPU, 0x40, 0x40, false, 0)
	r.Flags |= FlagL3Hit
	if s.Process(&r); r.Now != 0 || len(net.sends) != 0 {
		t.Fatal("HBM stage must be free on an L3 hit")
	}

	r.Start(CPU, 0x40, 0x40, false, 0)
	s.Process(&r)
	if r.Flags&FlagDRAM == 0 || env.DRAMFills[CPU] != 1 || s.accesses.n != 1 {
		t.Errorf("miss must reach the stack: flags=%v fills=%v accesses=%d",
			r.Flags, env.DRAMFills, s.accesses.n)
	}
	// Hop (3) + ExtraLat (100) + first access tRCD+tCAS+tBurst (24) + hop (3).
	if want := clock.Time(130); r.Now != want {
		t.Errorf("completion = %d, want %d", r.Now, want)
	}
	if !l3.Tiles[1].Probe(0x40) {
		t.Error("fill must install the line into its home L3 tile")
	}

	s.Reset()
	if s.accesses.n != 0 || ctrl.Stats().Requests != 0 {
		t.Error("Reset must clear the stage counter and its private controller")
	}
}

func TestNVMReadWriteAsymmetry(t *testing.T) {
	env := &Env{}
	topo := testTopo()
	s := &NVMStage{
		Chans:    []*clock.Resource{clock.NewResource("ch0")},
		ReadLat:  100, WriteLat: 1000, Bus: 10, QueueDepth: 2,
		Net: &fakeNet{lat: 0}, Topo: topo, L3: newTestL3(t, env), Env: env,
	}
	s.L3.Mem = s

	var r Request
	r.Start(CPU, 0x40, 0x40, false, 0)
	s.Process(&r)
	if r.Now != 100 || s.reads.n != 1 {
		t.Errorf("read completion = %d (reads=%d), want 100", r.Now, s.reads.n)
	}

	// Writebacks drain serially: each extends the horizon by WriteLat.
	s.Writeback(0x1000, 200)
	s.Writeback(0x1040, 200)
	if s.writes.n != 2 || s.horizon != 200+2*1000 {
		t.Errorf("horizon = %d after two writes, want 2200", s.horizon)
	}
}

func TestNVMWriteQueueStallsReads(t *testing.T) {
	env := &Env{}
	topo := testTopo()
	s := &NVMStage{
		Chans:    []*clock.Resource{clock.NewResource("ch0")},
		ReadLat:  100, WriteLat: 1000, Bus: 0, QueueDepth: 2,
		Net: &fakeNet{lat: 0}, Topo: topo, L3: newTestL3(t, env), Env: env,
	}
	s.L3.Mem = s

	// Queue three writes at t=0: horizon 3000, two writes' worth beyond
	// the depth-2 bound for any read arriving before t=1000.
	for i := uint64(0); i < 3; i++ {
		s.Writeback(0x1000+i*64, 0)
	}
	var r Request
	r.Start(CPU, 0x40, 0x40, false, 0)
	s.Process(&r)
	// The read waits until the backlog drops to QueueDepth (t=1000),
	// then pays its own latency.
	if want := clock.Time(1100); r.Now != want {
		t.Errorf("stalled read completes at %d, want %d", r.Now, want)
	}
	if s.writeStalls.n != 1 {
		t.Errorf("writeStalls = %d, want 1", s.writeStalls.n)
	}

	// After the drain horizon passes, reads are admitted immediately.
	r.Start(CPU, 0x80, 0x80, false, 5000)
	s.Process(&r)
	if want := clock.Time(5100); r.Now != want {
		t.Errorf("unstalled read completes at %d, want %d", r.Now, want)
	}
	if s.writeStalls.n != 1 {
		t.Errorf("unstalled read must not count a stall, got %d", s.writeStalls.n)
	}
}

func TestDRAMCacheHitMissFill(t *testing.T) {
	env := &Env{}
	topo := testTopo()
	dir, err := cache.New(cache.Config{
		Name: "dram_cache", SizeBytes: 8192, LineBytes: 64, Ways: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	s := &DRAMCacheStage{
		Dir:       dir,
		NearChans: []*clock.Resource{clock.NewResource("near0")},
		FarChans:  []*clock.Resource{clock.NewResource("far0")},
		NearLat:   50, NearBus: 0, FarRead: 500, FarWrite: 800, FarBus: 0,
		Net: &fakeNet{lat: 0}, Topo: topo, L3: newTestL3(t, env), Env: env,
	}
	s.L3.Mem = s

	// Cold miss: near probe + far read, and the line fills near memory.
	var r Request
	r.Start(CPU, 0x40, 0x40, false, 0)
	s.Process(&r)
	if want := clock.Time(550); r.Now != want {
		t.Errorf("cold miss completes at %d, want %d", r.Now, want)
	}
	if s.misses.n != 1 || s.fills.n != 1 || s.hits.n != 0 {
		t.Errorf("cold miss counters: hits=%d misses=%d fills=%d",
			s.hits.n, s.misses.n, s.fills.n)
	}

	// Re-access: the home L3 tile now holds the line, so force the
	// backend path by invalidating it there first.
	s.L3.Tiles[1].Invalidate(0x40)
	r.Start(CPU, 0x40, 0x40, false, 1000)
	s.Process(&r)
	if want := clock.Time(1050); r.Now != want {
		t.Errorf("near hit completes at %d, want %d", r.Now, want)
	}
	if s.hits.n != 1 {
		t.Errorf("hits = %d, want 1", s.hits.n)
	}

	// A dirty L3 victim write-allocates into near memory.
	s.Writeback(0x2000, 2000)
	if s.fills.n != 2 {
		t.Errorf("writeback must fill near memory, fills = %d", s.fills.n)
	}
	r.Start(CPU, 0x2000, 0x2000, false, 3000)
	s.Process(&r)
	if s.hits.n != 2 {
		t.Errorf("written-back line must hit near memory, hits = %d", s.hits.n)
	}

	s.Reset()
	if s.hits.n != 0 || dir.Probe(0x40) {
		t.Error("Reset must clear counters and the near-cache directory")
	}
}

func TestDRAMCacheDirtyVictimGoesFar(t *testing.T) {
	env := &Env{}
	topo := testTopo()
	// Direct-mapped 2-line cache: two same-set dirty fills force a dirty
	// eviction to far memory.
	dir, err := cache.New(cache.Config{
		Name: "dram_cache", SizeBytes: 128, LineBytes: 64, Ways: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	far := clock.NewResource("far0")
	s := &DRAMCacheStage{
		Dir:       dir,
		NearChans: []*clock.Resource{clock.NewResource("near0")},
		FarChans:  []*clock.Resource{far},
		NearLat:   50, NearBus: 0, FarRead: 500, FarWrite: 800, FarBus: 10,
		Net: &fakeNet{lat: 0}, Topo: topo, L3: newTestL3(t, env), Env: env,
	}
	s.L3.Mem = s

	s.Writeback(0x0000, 0)   // dirty line in set 0
	s.Writeback(0x0080, 100) // same set: evicts the first, dirty
	if s.writebacks.n != 1 {
		t.Errorf("far writebacks = %d, want 1", s.writebacks.n)
	}
	// Far channel served the eviction's transfer (plus nothing else).
	if far.Requests() != 1 {
		t.Errorf("far channel requests = %d, want 1", far.Requests())
	}
}

// Backend FlushObs must push exactly the delta since the last flush,
// matching the hierarchy's batched-counter contract.
func TestBackendCounterFlush(t *testing.T) {
	env := &Env{}
	topo := testTopo()
	l3 := newTestL3(t, env)
	ctrl, err := dram.New(dram.DDR3_1333())
	if err != nil {
		t.Fatal(err)
	}
	s := &DRAMStage{Ctrl: ctrl, Net: &fakeNet{lat: 0}, Topo: topo, L3: l3, Env: env}
	l3.Mem = s

	reg := obs.NewRegistry()
	s.Instrument(reg)
	var r Request
	for i := uint64(0); i < 3; i++ {
		r.Start(CPU, i*64, i*64, false, 0)
		s.Process(&r)
	}
	s.FlushObs()
	if got := reg.Snapshot().Counters["memtech.dram.accesses"]; got != 3 {
		t.Errorf("flushed accesses = %d, want 3", got)
	}
	s.FlushObs() // idempotent with no new events
	if got := reg.Snapshot().Counters["memtech.dram.accesses"]; got != 3 {
		t.Errorf("double flush = %d, want 3", got)
	}
}
