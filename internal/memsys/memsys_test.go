package memsys

import (
	"testing"

	"heteromem/internal/cache"
	"heteromem/internal/clock"
	"heteromem/internal/dram"
)

// fakeNet records every Send and charges a fixed latency per hop.
type fakeNet struct {
	lat   clock.Duration
	sends []fakeSend
}

type fakeSend struct {
	from, to, bytes int
}

func (f *fakeNet) Send(from, to, bytes int, now clock.Time) clock.Time {
	f.sends = append(f.sends, fakeSend{from, to, bytes})
	return now.Add(f.lat)
}

func testTopo() Topology {
	return Topology{
		PUStop:    [NumPUs]int{0, 1},
		L3Base:    2,
		MCStop:    6,
		Tiles:     4,
		LineBytes: 64,
		ReqBytes:  16,
	}
}

func mustCache(t *testing.T, name string, size int) *cache.Cache {
	t.Helper()
	c, err := cache.New(cache.Config{Name: name, SizeBytes: size, LineBytes: 64, Ways: 8})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestTopologyMapping(t *testing.T) {
	topo := testTopo()
	if got := topo.Line(0x1234); got != 0x1200 {
		t.Errorf("Line(0x1234) = %#x, want 0x1200", got)
	}
	if got := topo.TileFor(64 * 5); got != 1 {
		t.Errorf("TileFor(line 5) = %d, want 1", got)
	}
	if got := topo.TileStop(3); got != 5 {
		t.Errorf("TileStop(3) = %d, want 5", got)
	}
}

// stubStage charges a fixed latency and returns a fixed verdict.
type stubStage struct {
	id  StageID
	lat clock.Duration
	v   Verdict
}

func (s stubStage) ID() StageID { return s.id }
func (s stubStage) Process(r *Request) Verdict {
	r.Now = r.Now.Add(s.lat)
	return s.v
}

func TestPipelineStampsAndShortCircuits(t *testing.T) {
	p := NewPipeline(
		stubStage{id: StagePrivate, lat: 10, v: Next},
		stubStage{id: StageL3, lat: 20, v: Done},
		stubStage{id: StageDRAM, lat: 1000, v: Next},
	)
	var r Request
	r.Start(CPU, 0x40, 0x40, false, 5)
	done := p.Run(&r)
	if done != 35 {
		t.Fatalf("completion = %d, want 35 (Done must skip later stages)", done)
	}
	if r.Stamp[StagePrivate] != 15 || r.Stamp[StageL3] != 35 {
		t.Errorf("stamps = %v, want private=15 l3=35", r.Stamp)
	}
	if r.Stamp[StageDRAM] != 0 {
		t.Errorf("skipped stage stamped %d, want 0", r.Stamp[StageDRAM])
	}
	if r.Latency() != 30 {
		t.Errorf("latency = %v, want 30", r.Latency())
	}
}

func TestRequestStartClearsState(t *testing.T) {
	var r Request
	r.Flags = FlagDRAM
	r.Stamp[StageL3] = 99
	r.Start(GPU, 0x80, 0x80, true, 7)
	if r.Flags != 0 || r.Stamp[StageL3] != 0 {
		t.Errorf("Start left stale state: flags=%v stamp=%v", r.Flags, r.Stamp)
	}
	if r.PU != GPU || !r.Write || r.Issue != 7 || r.Now != 7 {
		t.Errorf("Start fields wrong: %+v", r)
	}
}

func TestMSHRStageMergesOutstanding(t *testing.T) {
	file := cache.NewMSHR(4)
	s := &MSHRStage{File: file}
	var r Request
	r.Start(CPU, 0x40, 0x40, false, 10)
	if v := s.Process(&r); v != Next {
		t.Fatal("empty MSHR file must not merge")
	}
	file.Allocate(0x40, 10, 500)
	r.Start(CPU, 0x40, 0x40, false, 20)
	if v := s.Process(&r); v != Done {
		t.Fatal("in-flight line must merge")
	}
	if r.Now != 500 || r.Flags&FlagMerged == 0 {
		t.Errorf("merged request: now=%d flags=%v, want now=500 merged", r.Now, r.Flags)
	}
}

func TestRingHopStageDirectionsAndSizes(t *testing.T) {
	net := &fakeNet{lat: 3}
	topo := testTopo()
	req := &RingHopStage{Stage: StageRingReq, Net: net, Topo: topo}
	resp := &RingHopStage{Stage: StageRingResp, Net: net, Topo: topo}

	var r Request
	addr := uint64(64 * 2) // tile 2, stop 4
	r.Start(GPU, addr, addr, false, 0)
	req.Process(&r)
	resp.Process(&r)
	if r.Now != 6 {
		t.Errorf("two hops at 3 each ended at %d", r.Now)
	}
	want := []fakeSend{
		{from: 1, to: 4, bytes: 16},      // gpu -> tile: request message
		{from: 4, to: 1, bytes: 64 + 16}, // tile -> gpu: line + header
	}
	for i, w := range want {
		if net.sends[i] != w {
			t.Errorf("send %d = %+v, want %+v", i, net.sends[i], w)
		}
	}
}

func TestDRAMStageSkipsOnL3Hit(t *testing.T) {
	ctrl, err := dram.New(dram.DDR3_1333())
	if err != nil {
		t.Fatal(err)
	}
	env := &Env{}
	net := &fakeNet{lat: 3}
	topo := testTopo()
	l3 := &L3Stage{
		Tiles: []*cache.Cache{
			mustCache(t, "t0", 4096), mustCache(t, "t1", 4096),
			mustCache(t, "t2", 4096), mustCache(t, "t3", 4096),
		},
		Lat: 20, Topo: topo, Env: env,
	}
	s := &DRAMStage{Ctrl: ctrl, Net: net, Topo: topo, L3: l3, Env: env}
	l3.Mem = s

	var r Request
	r.Start(CPU, 0x40, 0x40, false, 0)
	r.Flags |= FlagL3Hit
	if s.Process(&r); r.Now != 0 || len(net.sends) != 0 {
		t.Fatal("DRAM stage must be free on an L3 hit")
	}

	r.Start(CPU, 0x40, 0x40, false, 0)
	s.Process(&r)
	if r.Flags&FlagDRAM == 0 || env.DRAMFills[CPU] != 1 {
		t.Errorf("miss must reach DRAM: flags=%v fills=%v", r.Flags, env.DRAMFills)
	}
	if len(net.sends) != 2 || net.sends[0].to != topo.MCStop {
		t.Errorf("miss must hop tile->mc->tile, got %+v", net.sends)
	}
	if !l3.Tiles[1].Probe(0x40) {
		t.Error("DRAM fill must install the line into its home L3 tile")
	}
}

func TestCoherenceStageNilSafe(t *testing.T) {
	var nilStage *CoherenceStage
	var r Request
	r.Start(CPU, 0x40, 0x40, true, 10)
	if v := nilStage.Process(&r); v != Next || r.Now != 10 {
		t.Error("nil coherence stage must be a free pass-through")
	}
	if nilStage.Directory() != nil {
		t.Error("nil stage has no directory")
	}
	off := &CoherenceStage{} // directory off
	if v := off.Process(&r); v != Next || r.Now != 10 {
		t.Error("directory-off stage must be a free pass-through")
	}
}

func TestPrivateStageHitLevels(t *testing.T) {
	env := &Env{}
	l1 := mustCache(t, "l1", 4096)
	l2 := mustCache(t, "l2", 8192)
	s := &PrivateStage{PU: CPU, L1: l1, L1Lat: 2, L2: l2, L2Lat: 8, Env: env}

	// Cold: both levels miss, both latencies charged.
	var r Request
	r.Start(CPU, 0x40, 0x40, false, 0)
	if v := s.Process(&r); v != Next || r.Now != 10 {
		t.Fatalf("cold access: verdict=%v now=%d, want Next at 10", v, r.Now)
	}
	// Fill as the commit stage would, then re-access: L1 hit at L1 latency.
	s.Fill(0x40, false)
	r.Start(CPU, 0x40, 0x40, false, 0)
	if v := s.Process(&r); v != Done || r.Now != 2 {
		t.Fatalf("L1 hit: verdict=%v now=%d, want Done at 2", v, r.Now)
	}
	if env.L1Hits[CPU] != 1 || r.Flags&FlagL1Hit == 0 {
		t.Error("L1 hit not recorded")
	}
	// Evict from L1 only: next access is an L2 hit at L1+L2 latency.
	l1.Invalidate(0x40)
	r.Start(CPU, 0x40, 0x40, false, 0)
	if v := s.Process(&r); v != Done || r.Now != 10 {
		t.Fatalf("L2 hit: verdict=%v now=%d, want Done at 10", v, r.Now)
	}
	if env.L2Hits != 1 || r.Flags&FlagL2Hit == 0 {
		t.Error("L2 hit not recorded")
	}
}

func TestCommitStageAllocatesAtIssueTime(t *testing.T) {
	env := &Env{}
	file := cache.NewMSHR(4)
	s := &CommitStage{
		Private: &PrivateStage{PU: GPU, L1: mustCache(t, "l1", 4096), L1Lat: 2, Env: env},
		File:    file,
		Env:     env,
	}
	var r Request
	r.Start(GPU, 0x40, 0x40, false, 0)
	r.Stamp[StageMSHR] = 10 // time the request entered the shared path
	r.Now = 400             // completion after ring/L3/DRAM
	if v := s.Process(&r); v != Done || r.Now != 400 {
		t.Fatalf("commit: verdict=%v now=%d, want Done at 400", v, r.Now)
	}
	// The entry must span [10, 400]: a later request merges with it.
	if ready, ok := file.Outstanding(0x40, 200); !ok || ready != 400 {
		t.Errorf("MSHR entry missing or wrong window: ready=%d ok=%v", ready, ok)
	}
	if !s.Private.L1.Probe(0x40) {
		t.Error("commit must fill the private level")
	}
}
