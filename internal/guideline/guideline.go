// Package guideline implements the paper's stated future work
// (Section VII): metrics that measure the efficiency of memory-model
// design options and produce guidelines for choosing one.
//
// Each address-space model is scored on the three axes the paper's
// conclusions identify:
//
//   - Performance: simulated execution time of a representative workload
//     on the model's flagship system configuration, normalised to the
//     ideal system (lower is better).
//   - Programmability: communication-handling source lines from the
//     Table V study (lower is better).
//   - Flexibility: the number of desirable locality-management options
//     the model admits (higher is better) — the paper's proxy for how
//     much room the architecture leaves for hardware optimisation.
//   - Hardware cost: the coherence/consistency machinery the model
//     obliges (lower is better). The paper's Section I/II discussion
//     ranks this: a unified fully-coherent space needs global coherence
//     across heterogeneous PUs; ADSM needs one-sided (CPU-maintained)
//     coherence; the partially shared space avoids coherence entirely
//     via ownership; disjoint spaces need nothing.
//
// The composite score reproduces the paper's overall conclusion: the
// partially shared space is the most promising option, combining many
// hardware design options with moderate programmability cost.
package guideline

import (
	"fmt"
	"sort"

	"heteromem/internal/addrspace"
	"heteromem/internal/codegen"
	"heteromem/internal/locality"
	"heteromem/internal/sim"
	"heteromem/internal/systems"
	"heteromem/internal/workload"
)

// Score is one model's measurements on the three axes.
type Score struct {
	Model addrspace.Model
	// PerfOverhead is (time/ideal - 1): the execution-time overhead of
	// the model's flagship system over IDEAL-HETERO, averaged across the
	// scored kernels.
	PerfOverhead float64
	// CommLines is the total communication-handling source lines across
	// the Table V kernels.
	CommLines int
	// LocalityOptions is the number of desirable locality-management
	// schemes.
	LocalityOptions int
	// HardwareCost ranks the coherence machinery the model requires
	// (0 = none ... 3 = full cross-PU coherence).
	HardwareCost int
	// Composite is the weighted overall efficiency in [0,1], higher
	// better.
	Composite float64
}

// Weights balances the three axes in the composite score. Each weight
// must be non-negative and they must not all be zero.
type Weights struct {
	Performance     float64
	Programmability float64
	Flexibility     float64
	HardwareCost    float64
}

// DefaultWeights weighs the axes equally.
func DefaultWeights() Weights {
	return Weights{Performance: 1, Programmability: 1, Flexibility: 1, HardwareCost: 1}
}

func (w Weights) sum() float64 {
	return w.Performance + w.Programmability + w.Flexibility + w.HardwareCost
}

func (w Weights) validate() error {
	if w.Performance < 0 || w.Programmability < 0 || w.Flexibility < 0 || w.HardwareCost < 0 {
		return fmt.Errorf("guideline: negative weight %+v", w)
	}
	if w.sum() == 0 {
		return fmt.Errorf("guideline: all weights zero")
	}
	return nil
}

// coherenceCost ranks the coherence/consistency hardware each model
// obliges, per the paper's qualitative discussion.
func coherenceCost(m addrspace.Model) int {
	switch m {
	case addrspace.Unified:
		return 3 // full coherence and consistency across both PUs
	case addrspace.ADSM:
		return 2 // the CPU maintains coherence over the whole space
	case addrspace.PartiallyShared:
		return 1 // ownership removes coherence from the shared space
	default:
		return 0 // disjoint: nothing shared, nothing to keep coherent
	}
}

// flagship returns the evaluated system configuration that embodies each
// address-space model (the Section V-A case studies).
func flagship(m addrspace.Model) systems.System {
	switch m {
	case addrspace.Disjoint:
		return systems.CPUGPU()
	case addrspace.PartiallyShared:
		return systems.LRB()
	case addrspace.ADSM:
		return systems.GMAC()
	default:
		// The unified space's flagship is the ideal coherent system the
		// paper uses as its reference point.
		return systems.IdealHetero()
	}
}

// Evaluate scores every address-space model over the named kernels with
// the given weights. Kernels defaults to the fast subset when empty.
func Evaluate(kernels []string, w Weights) ([]Score, error) {
	if err := w.validate(); err != nil {
		return nil, err
	}
	if len(kernels) == 0 {
		kernels = []string{"reduction", "merge-sort", "convolution"}
	}

	// Performance axis: average overhead over the ideal system.
	idealTotals := make(map[string]float64)
	for _, k := range kernels {
		res, err := runOne(systems.IdealHetero(), k)
		if err != nil {
			return nil, err
		}
		idealTotals[k] = float64(res.Total())
	}

	var scores []Score
	for _, m := range addrspace.AllModels() {
		var overhead float64
		for _, k := range kernels {
			res, err := runOne(flagship(m), k)
			if err != nil {
				return nil, err
			}
			overhead += float64(res.Total())/idealTotals[k] - 1
		}
		overhead /= float64(len(kernels))

		scores = append(scores, Score{
			Model:           m,
			PerfOverhead:    overhead,
			CommLines:       totalCommLines(m),
			LocalityOptions: len(locality.DesirableOptions(m)),
			HardwareCost:    coherenceCost(m),
		})
	}
	composite(scores, w)
	sort.Slice(scores, func(i, j int) bool { return scores[i].Composite > scores[j].Composite })
	return scores, nil
}

func runOne(sys systems.System, kernel string) (sim.Result, error) {
	p, err := workload.Open(kernel)
	if err != nil {
		return sim.Result{}, err
	}
	s, err := sim.New(sys)
	if err != nil {
		return sim.Result{}, err
	}
	return s.Run(p)
}

func totalCommLines(m addrspace.Model) int {
	total := 0
	for _, k := range codegen.Kernels() {
		_, comm := codegen.Count(k, m)
		total += comm
	}
	return total
}

// composite fills the Composite field: each axis is min-max normalised
// across the models to [0,1] with 1 best, then combined by weight.
func composite(scores []Score, w Weights) {
	perf := normalise(scores, func(s Score) float64 { return s.PerfOverhead }, false)
	prog := normalise(scores, func(s Score) float64 { return float64(s.CommLines) }, false)
	flex := normalise(scores, func(s Score) float64 { return float64(s.LocalityOptions) }, true)
	hw := normalise(scores, func(s Score) float64 { return float64(s.HardwareCost) }, false)
	sum := w.sum()
	for i := range scores {
		scores[i].Composite = (w.Performance*perf[i] + w.Programmability*prog[i] +
			w.Flexibility*flex[i] + w.HardwareCost*hw[i]) / sum
	}
}

// normalise maps values onto [0,1]; higherBetter selects the direction.
// Identical values across the board normalise to 1 (no differentiation,
// no penalty).
func normalise(scores []Score, get func(Score) float64, higherBetter bool) []float64 {
	lo, hi := get(scores[0]), get(scores[0])
	for _, s := range scores {
		v := get(s)
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	out := make([]float64, len(scores))
	for i, s := range scores {
		if hi == lo {
			out[i] = 1
			continue
		}
		f := (get(s) - lo) / (hi - lo)
		if higherBetter {
			out[i] = f
		} else {
			out[i] = 1 - f
		}
	}
	return out
}

// Recommend returns the highest-scoring model and a one-line rationale.
func Recommend(kernels []string, w Weights) (addrspace.Model, string, error) {
	scores, err := Evaluate(kernels, w)
	if err != nil {
		return 0, "", err
	}
	best := scores[0]
	why := fmt.Sprintf(
		"%v scores %.2f: %.1f%% overhead vs ideal, %d comm lines, %d locality options",
		best.Model, best.Composite, best.PerfOverhead*100, best.CommLines, best.LocalityOptions)
	return best.Model, why, nil
}
