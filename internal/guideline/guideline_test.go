package guideline

import (
	"strings"
	"testing"

	"heteromem/internal/addrspace"
)

func TestEvaluateScoresAllModels(t *testing.T) {
	scores, err := Evaluate([]string{"reduction"}, DefaultWeights())
	if err != nil {
		t.Fatal(err)
	}
	if len(scores) != int(addrspace.NumModels) {
		t.Fatalf("scores = %d, want %d", len(scores), addrspace.NumModels)
	}
	seen := map[addrspace.Model]bool{}
	for _, s := range scores {
		seen[s.Model] = true
		if s.Composite < 0 || s.Composite > 1 {
			t.Errorf("%v composite %v out of [0,1]", s.Model, s.Composite)
		}
		if s.PerfOverhead < 0 {
			t.Errorf("%v overhead %v negative (slower systems only)", s.Model, s.PerfOverhead)
		}
	}
	if len(seen) != int(addrspace.NumModels) {
		t.Fatal("duplicate or missing models")
	}
	// Sorted best-first.
	for i := 1; i < len(scores); i++ {
		if scores[i].Composite > scores[i-1].Composite {
			t.Fatal("scores not sorted descending")
		}
	}
}

func TestPaperConclusionPartiallySharedWins(t *testing.T) {
	// With the paper's four axes weighted equally, the partially shared
	// space comes out on top — the paper's overall conclusion.
	best, why, err := Recommend([]string{"reduction", "merge-sort"}, DefaultWeights())
	if err != nil {
		t.Fatal(err)
	}
	if best != addrspace.PartiallyShared {
		t.Fatalf("recommended %v, want partially-shared (got rationale: %s)", best, why)
	}
	if !strings.Contains(why, "partially-shared") {
		t.Errorf("rationale %q does not name the model", why)
	}
}

func TestWeightsSteerTheRecommendation(t *testing.T) {
	// A pure-programmability designer is pointed at the unified space.
	best, _, err := Recommend([]string{"reduction"}, Weights{Programmability: 1})
	if err != nil {
		t.Fatal(err)
	}
	if best != addrspace.Unified {
		t.Fatalf("programmability-only recommendation = %v, want unified", best)
	}
	// A pure-hardware-cost designer is pointed at disjoint.
	best, _, err = Recommend([]string{"reduction"}, Weights{HardwareCost: 1})
	if err != nil {
		t.Fatal(err)
	}
	if best != addrspace.Disjoint {
		t.Fatalf("hardware-cost-only recommendation = %v, want disjoint", best)
	}
	// A pure-flexibility designer gets partially shared.
	best, _, err = Recommend([]string{"reduction"}, Weights{Flexibility: 1})
	if err != nil {
		t.Fatal(err)
	}
	if best != addrspace.PartiallyShared {
		t.Fatalf("flexibility-only recommendation = %v, want partially-shared", best)
	}
}

func TestAxisValues(t *testing.T) {
	scores, err := Evaluate([]string{"reduction"}, DefaultWeights())
	if err != nil {
		t.Fatal(err)
	}
	get := func(m addrspace.Model) Score {
		for _, s := range scores {
			if s.Model == m {
				return s
			}
		}
		t.Fatalf("model %v missing", m)
		return Score{}
	}
	uni, dis := get(addrspace.Unified), get(addrspace.Disjoint)
	pas, adsm := get(addrspace.PartiallyShared), get(addrspace.ADSM)

	if uni.CommLines != 0 {
		t.Errorf("unified comm lines = %d, want 0", uni.CommLines)
	}
	if !(uni.CommLines < pas.CommLines && pas.CommLines <= adsm.CommLines && adsm.CommLines < dis.CommLines) {
		t.Errorf("Table V ordering broken: %d %d %d %d", uni.CommLines, pas.CommLines, adsm.CommLines, dis.CommLines)
	}
	if !(pas.LocalityOptions > adsm.LocalityOptions && adsm.LocalityOptions > uni.LocalityOptions) {
		t.Errorf("locality ordering broken: %d %d %d", pas.LocalityOptions, adsm.LocalityOptions, uni.LocalityOptions)
	}
	if !(uni.HardwareCost > adsm.HardwareCost && adsm.HardwareCost > pas.HardwareCost && pas.HardwareCost > dis.HardwareCost) {
		t.Errorf("hardware cost ordering broken")
	}
	// Unified (the ideal flagship) has zero performance overhead.
	if uni.PerfOverhead != 0 {
		t.Errorf("unified overhead = %v, want 0", uni.PerfOverhead)
	}
}

func TestValidation(t *testing.T) {
	if _, err := Evaluate(nil, Weights{}); err == nil {
		t.Error("zero weights accepted")
	}
	if _, err := Evaluate(nil, Weights{Performance: -1, Flexibility: 2}); err == nil {
		t.Error("negative weight accepted")
	}
	if _, err := Evaluate([]string{"nope"}, DefaultWeights()); err == nil {
		t.Error("unknown kernel accepted")
	}
}

func TestDefaultKernelsUsedWhenEmpty(t *testing.T) {
	scores, err := Evaluate(nil, DefaultWeights())
	if err != nil {
		t.Fatal(err)
	}
	if len(scores) == 0 {
		t.Fatal("no scores")
	}
}
