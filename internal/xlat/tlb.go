package xlat

import (
	"fmt"
	"math/bits"
)

// TLB models one translation lookaside buffer: set-associative, LRU,
// with a configurable page size. Section II-A1 notes that a virtually
// unified address space lets each PU pick its own page size — GPUs use
// large pages to cover streaming working sets with few entries — but
// that differing page-table formats complicate TLB and
// memory-management design. Reach is entries × page size, so the same
// working set costs different miss counts per PU. The same structure
// also serves as the walk cache (a "TLB" over last-level page-table
// pages).
//
// The TLB is untimed: Lookup reports hit/miss and installs on miss; the
// page-walk cost of a miss is priced by the caller
// (memsys.TranslationStage charges it through the clock).
type TLB struct {
	pageBits  uint
	sets      [][]tlbEntry
	setMask   uint64
	hits      uint64
	misses    uint64
	evictions uint64
	tick      uint64
}

type tlbEntry struct {
	vpn     uint64
	valid   bool
	lastUse uint64
}

// NewTLB returns a TLB with the given number of entries (power of two),
// associativity, and page size (power of two).
func NewTLB(entries, ways int, pageSize uint64) (*TLB, error) {
	switch {
	case entries <= 0 || bits.OnesCount(uint(entries)) != 1:
		return nil, fmt.Errorf("xlat: TLB entries %d not a positive power of two", entries)
	case ways <= 0 || entries%ways != 0:
		return nil, fmt.Errorf("xlat: TLB ways %d does not divide entries %d", ways, entries)
	case pageSize == 0 || pageSize&(pageSize-1) != 0:
		return nil, fmt.Errorf("xlat: TLB page size %d not a power of two", pageSize)
	}
	numSets := entries / ways
	t := &TLB{
		pageBits: uint(bits.TrailingZeros64(pageSize)),
		sets:     make([][]tlbEntry, numSets),
		setMask:  uint64(numSets - 1),
	}
	backing := make([]tlbEntry, entries)
	for i := range t.sets {
		t.sets[i], backing = backing[:ways], backing[ways:]
	}
	return t, nil
}

// MustNewTLB is NewTLB but panics on configuration error.
func MustNewTLB(entries, ways int, pageSize uint64) *TLB {
	t, err := NewTLB(entries, ways, pageSize)
	if err != nil {
		panic(err)
	}
	return t
}

// PageSize returns the TLB's page size in bytes.
func (t *TLB) PageSize() uint64 { return 1 << t.pageBits }

// Reach returns the address range one full TLB covers.
func (t *TLB) Reach() uint64 {
	return uint64(len(t.sets)*len(t.sets[0])) << t.pageBits
}

// Lookup translates addr's page, reporting whether it hit. A miss
// installs the entry (the page walk itself is priced by the caller).
func (t *TLB) Lookup(addr uint64) bool {
	t.tick++
	vpn := addr >> t.pageBits
	set := t.sets[vpn&t.setMask]
	for i := range set {
		if set[i].valid && set[i].vpn == vpn {
			set[i].lastUse = t.tick
			t.hits++
			return true
		}
	}
	t.misses++
	victim := 0
	for i := range set {
		if !set[i].valid {
			victim = i
			break
		}
		if set[i].lastUse < set[victim].lastUse {
			victim = i
		}
	}
	if set[victim].valid {
		t.evictions++
	}
	set[victim] = tlbEntry{vpn: vpn, valid: true, lastUse: t.tick}
	return false
}

// Invalidate drops the entry for addr's page if present (a page-table
// update on the other PU must shoot down stale translations).
func (t *TLB) Invalidate(addr uint64) bool {
	vpn := addr >> t.pageBits
	set := t.sets[vpn&t.setMask]
	for i := range set {
		if set[i].valid && set[i].vpn == vpn {
			set[i] = tlbEntry{}
			return true
		}
	}
	return false
}

// Flush invalidates every entry (a shootdown); counters are kept so a
// run's totals survive ownership handovers.
func (t *TLB) Flush() {
	for s := range t.sets {
		for i := range t.sets[s] {
			t.sets[s][i] = tlbEntry{}
		}
	}
}

// Reset returns the TLB to its just-constructed state: entries and
// counters both cleared (the simulator Reset() lifecycle).
func (t *TLB) Reset() {
	t.Flush()
	t.hits, t.misses, t.evictions, t.tick = 0, 0, 0, 0
}

// Hits returns the hit count.
func (t *TLB) Hits() uint64 { return t.hits }

// Misses returns the miss count.
func (t *TLB) Misses() uint64 { return t.misses }

// Evictions returns the eviction count.
func (t *TLB) Evictions() uint64 { return t.evictions }

// MissRate returns misses over lookups, or 0 before any lookup.
func (t *TLB) MissRate() float64 {
	n := t.hits + t.misses
	if n == 0 {
		return 0
	}
	return float64(t.misses) / float64(n)
}

func (t *TLB) String() string {
	return fmt.Sprintf("tlb(%d entries, %dB pages, reach %dKB)",
		len(t.sets)*len(t.sets[0]), t.PageSize(), t.Reach()>>10)
}
