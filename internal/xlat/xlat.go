// Package xlat names and parameterises the address-translation
// front-end — the translation design axis. The paper's evaluation (like
// most 2012-era DSE work) treats virtual-to-physical translation as
// free; Kim et al.'s "Address Translation Design Tradeoffs for
// Heterogeneous Systems" shows translation, not transfer, can dominate
// exactly the shared-address-space designs the paper favours. This
// package opens that assumption: per-PU TLB geometry (entries, ways,
// page size — Section II-A1's per-PU page-size option), a multi-level
// page-walk cost model with an optional walk cache, shared-vs-private
// MMU walkers, and an IOMMU-style walk path for devices behind an I/O
// interconnect.
//
// The package is purely declarative plus the reusable TLB substrate
// (tlb.go): a Spec selects the MMU arrangement and optional parameter
// overrides, serialises inside systems JSON files under the
// "translation" key (or as a preset string — "4k", "2m-shared"), and
// validates with JSON-path error messages ("translation.gpu.page_bytes:
// not a power of two"). internal/memsys implements the timed
// TranslationStage; internal/mem places it at the front of the access
// path when a hierarchy's Config.Xlat selects it.
package xlat

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/bits"
)

// MMUKind selects the MMU arrangement behind the per-PU TLBs.
type MMUKind uint8

const (
	// Off disables translation entirely — the paper's baseline, where
	// every access is physically addressed for free. The zero value, so
	// the default everywhere a Spec is omitted.
	Off MMUKind = iota
	// Private gives each PU its own page walker: walks never contend
	// across PUs, but each PU pays for its own MMU.
	Private
	// Shared runs both PUs' page walks through one walker — the
	// single-MMU design of tightly integrated APUs, where concurrent
	// CPU and GPU walks serialise.
	Shared
	// NumMMUKinds is the number of MMU arrangements.
	NumMMUKinds
)

var mmuNames = [NumMMUKinds]string{"off", "private", "shared"}

func (k MMUKind) String() string {
	if int(k) < len(mmuNames) {
		return mmuNames[k]
	}
	return fmt.Sprintf("mmu(%d)", uint8(k))
}

// ParseMMU returns the MMU kind named s (as produced by String).
func ParseMMU(s string) (MMUKind, error) {
	for k, name := range mmuNames {
		if s == name {
			return MMUKind(k), nil
		}
	}
	return 0, fmt.Errorf("xlat: unknown mmu arrangement %q", s)
}

// MarshalText implements encoding.TextMarshaler so MMU kinds serialise
// as their names in declarative configs.
func (k MMUKind) MarshalText() ([]byte, error) {
	if k >= NumMMUKinds {
		return nil, fmt.Errorf("xlat: invalid mmu kind %d", uint8(k))
	}
	return []byte(k.String()), nil
}

// UnmarshalText implements encoding.TextUnmarshaler.
func (k *MMUKind) UnmarshalText(b []byte) error {
	parsed, err := ParseMMU(string(b))
	if err != nil {
		return err
	}
	*k = parsed
	return nil
}

// IOMMUMode selects whether the GPU's page walks go through an
// IOMMU-style path (a longer walk over the I/O interconnect, no walk
// cache) instead of a core MMU walk.
type IOMMUMode uint8

const (
	// IOMMUAuto derives the mode from the system's fabric: devices
	// behind PCIe or the PCI aperture walk through the IOMMU, devices
	// on the memory controllers or an ideal fabric do not. The zero
	// value, so an omitted field keeps the fabric-derived behaviour.
	IOMMUAuto IOMMUMode = iota
	// IOMMUOn forces the IOMMU walk path for GPU misses.
	IOMMUOn
	// IOMMUOff forces core-MMU walks regardless of fabric.
	IOMMUOff
	// NumIOMMUModes is the number of IOMMU modes.
	NumIOMMUModes
)

var iommuNames = [NumIOMMUModes]string{"auto", "on", "off"}

func (m IOMMUMode) String() string {
	if int(m) < len(iommuNames) {
		return iommuNames[m]
	}
	return fmt.Sprintf("iommu(%d)", uint8(m))
}

// MarshalText implements encoding.TextMarshaler.
func (m IOMMUMode) MarshalText() ([]byte, error) {
	if m >= NumIOMMUModes {
		return nil, fmt.Errorf("xlat: invalid iommu mode %d", uint8(m))
	}
	return []byte(m.String()), nil
}

// UnmarshalText implements encoding.TextUnmarshaler.
func (m *IOMMUMode) UnmarshalText(b []byte) error {
	for k, name := range iommuNames {
		if string(b) == name {
			*m = IOMMUMode(k)
			return nil
		}
	}
	return fmt.Errorf("xlat: unknown iommu mode %q", b)
}

// Spec selects the translation front-end and optional parameter
// overrides. The zero Spec is translation off (the paper's baseline),
// and a zero Spec is what an omitted "translation" JSON field decodes
// to, so existing system files (and their hashes) are untouched by this
// axis. Nil parameter blocks mean "use the defaults"; zero fields
// inside a block likewise fall back field by field (see Resolved*).
type Spec struct {
	// MMU selects the walker arrangement; Off disables the axis.
	MMU MMUKind `json:"mmu"`
	// CPU and GPU size the per-PU TLBs; each PU picks its own page
	// size (Section II-A1).
	CPU *TLBParams `json:"cpu,omitempty"`
	GPU *TLBParams `json:"gpu,omitempty"`
	// Walk prices the page walk behind a TLB miss.
	Walk *WalkParams `json:"walk,omitempty"`
	// IOMMU selects the GPU's walk path; the zero value (auto) derives
	// it from the system's fabric.
	IOMMU IOMMUMode `json:"iommu,omitempty"`
}

// IsZero reports whether the spec is the translation-off baseline — the
// form the systems codec omits from JSON entirely.
func (s Spec) IsZero() bool { return s == Spec{} }

// Validate rejects malformed specs. Error messages carry the JSON path
// of the offending field ("translation.gpu.page_bytes") so CLI users
// can fix the file they wrote.
func (s Spec) Validate() error {
	if s.MMU >= NumMMUKinds {
		return fmt.Errorf("translation.mmu: invalid mmu arrangement %d", uint8(s.MMU))
	}
	if s.IOMMU >= NumIOMMUModes {
		return fmt.Errorf("translation.iommu: invalid iommu mode %d", uint8(s.IOMMU))
	}
	if s.MMU == Off {
		switch {
		case s.CPU != nil:
			return fmt.Errorf("translation.cpu: parameters set but mmu is %q", Off)
		case s.GPU != nil:
			return fmt.Errorf("translation.gpu: parameters set but mmu is %q", Off)
		case s.Walk != nil:
			return fmt.Errorf("translation.walk: parameters set but mmu is %q", Off)
		case s.IOMMU != IOMMUAuto:
			return fmt.Errorf("translation.iommu: mode set but mmu is %q", Off)
		}
		return nil
	}
	if s.CPU != nil {
		if err := s.CPU.validate("translation.cpu"); err != nil {
			return err
		}
	}
	if s.GPU != nil {
		if err := s.GPU.validate("translation.gpu"); err != nil {
			return err
		}
	}
	if s.Walk != nil {
		if err := s.Walk.validate(); err != nil {
			return err
		}
	}
	return nil
}

// MarshalJSON emits the canonical object form (presets are an input
// convenience only), keeping the systems Save encoding stable.
func (s Spec) MarshalJSON() ([]byte, error) {
	type specJSON Spec // drop methods to avoid recursion
	return json.Marshal(specJSON(s))
}

// UnmarshalJSON accepts either a preset string ("4k", "2m-shared", …)
// or the full object form. Unknown fields inside the object are
// rejected here explicitly: a custom unmarshaler does not inherit the
// outer decoder's DisallowUnknownFields setting, and typos in
// hand-written files must still fail loudly.
func (s *Spec) UnmarshalJSON(b []byte) error {
	b = bytes.TrimSpace(b)
	if len(b) > 0 && b[0] == '"' {
		var name string
		if err := json.Unmarshal(b, &name); err != nil {
			return err
		}
		preset, err := ParsePreset(name)
		if err != nil {
			return err
		}
		*s = preset
		return nil
	}
	type specJSON Spec
	dec := json.NewDecoder(bytes.NewReader(b))
	dec.DisallowUnknownFields()
	var j specJSON
	if err := dec.Decode(&j); err != nil {
		return err
	}
	*s = Spec(j)
	return nil
}

// ParsePreset resolves a named translation configuration:
//
//	off        translation disabled (the baseline)
//	4k         private per-PU MMUs, 4 KB pages on both PUs
//	2m         private MMUs, 4 KB CPU pages, 2 MB GPU pages
//	4k-shared  one shared walker, 4 KB pages on both PUs
//	2m-shared  one shared walker, 4 KB CPU / 2 MB GPU pages
func ParsePreset(name string) (Spec, error) {
	switch name {
	case "", "off":
		return Spec{}, nil
	case "4k":
		return Spec{MMU: Private}, nil
	case "2m":
		return Spec{MMU: Private, GPU: &TLBParams{PageBytes: 2 << 20}}, nil
	case "4k-shared":
		return Spec{MMU: Shared}, nil
	case "2m-shared":
		return Spec{MMU: Shared, GPU: &TLBParams{PageBytes: 2 << 20}}, nil
	}
	return Spec{}, fmt.Errorf("xlat: unknown translation preset %q (off, 4k, 2m, 4k-shared, 2m-shared)", name)
}

// MustParsePreset is ParsePreset but panics on an unknown name.
func MustParsePreset(name string) Spec {
	s, err := ParsePreset(name)
	if err != nil {
		panic(err)
	}
	return s
}

// Presets returns the preset names in documentation order.
func Presets() []string {
	return []string{"off", "4k", "2m", "4k-shared", "2m-shared"}
}

// Label returns a short coordinate tag for reports and grid point
// names: "off" for the zero spec, otherwise e.g. "xlat-priv-2m" (the
// page size shown is the GPU's — the axis the study varies; a
// non-default CPU page adds a "-c<size>" segment).
func (s Spec) Label() string {
	if s.IsZero() {
		return "off"
	}
	mmu := "priv"
	if s.MMU == Shared {
		mmu = "shared"
	}
	label := "xlat-" + mmu + "-" + pageName(s.ResolvedGPU().PageBytes)
	if cp := s.ResolvedCPU().PageBytes; cp != DefaultTLB().PageBytes {
		label += "-c" + pageName(cp)
	}
	if s.IOMMU == IOMMUOn {
		label += "-iommu"
	}
	return label
}

func pageName(b uint64) string {
	if b >= 1<<20 {
		return fmt.Sprintf("%dm", b>>20)
	}
	return fmt.Sprintf("%dk", b>>10)
}

// WithIOMMUResolved returns the spec with the auto IOMMU mode replaced
// by the fabric-derived answer (on for devices behind an I/O
// interconnect). Explicit on/off settings are kept.
func (s Spec) WithIOMMUResolved(remoteDevice bool) Spec {
	if s.IOMMU != IOMMUAuto {
		return s
	}
	if remoteDevice {
		s.IOMMU = IOMMUOn
	} else {
		s.IOMMU = IOMMUOff
	}
	return s
}

// TLBParams sizes one PU's TLB. Zero fields take the DefaultTLB value.
type TLBParams struct {
	// Entries is the total entry count (a power of two).
	Entries int `json:"entries,omitempty"`
	// Ways is the associativity; it must divide Entries.
	Ways int `json:"ways,omitempty"`
	// PageBytes is the PU's page size (a power of two) — reach is
	// Entries × PageBytes, the Section II-A1 trade-off.
	PageBytes uint64 `json:"page_bytes,omitempty"`
}

// DefaultTLB returns the baseline TLB: 64 entries, 4-way, 4 KB pages —
// a 256 KB reach, the host-page design both PUs start from.
func DefaultTLB() TLBParams {
	return TLBParams{Entries: 64, Ways: 4, PageBytes: 4096}
}

func (p *TLBParams) validate(path string) error {
	switch {
	case p.Entries < 0 || (p.Entries != 0 && bits.OnesCount(uint(p.Entries)) != 1):
		return fmt.Errorf("%s.entries: %d not a positive power of two", path, p.Entries)
	case p.Ways < 0:
		return fmt.Errorf("%s.ways: must be positive, got %d", path, p.Ways)
	case p.PageBytes != 0 && (p.PageBytes < 512 || p.PageBytes&(p.PageBytes-1) != 0):
		return fmt.Errorf("%s.page_bytes: %d not a power of two >= 512", path, p.PageBytes)
	}
	m := p.merged()
	if m.Entries%m.Ways != 0 {
		return fmt.Errorf("%s.ways: %d does not divide entries %d", path, m.Ways, m.Entries)
	}
	return nil
}

// merged returns p with zero fields replaced by the defaults.
func (p TLBParams) merged() TLBParams {
	d := DefaultTLB()
	if p.Entries == 0 {
		p.Entries = d.Entries
	}
	if p.Ways == 0 {
		p.Ways = d.Ways
	}
	if p.PageBytes == 0 {
		p.PageBytes = d.PageBytes
	}
	return p
}

// WalkParams prices the page walk behind a TLB miss. Durations are
// picoseconds; zero fields take the DefaultWalk value.
type WalkParams struct {
	// Levels is the page-table depth; a full walk pays Levels serial
	// LevelPS accesses.
	Levels int `json:"levels,omitempty"`
	// LevelPS is one page-table level's access latency (the table lines
	// typically hit the cache hierarchy, so this is well under a DRAM
	// access).
	LevelPS uint64 `json:"level_ps,omitempty"`
	// CacheEntries sizes the walk cache, which holds upper-level table
	// entries so a hit walks only the last level. -1 disables it; zero
	// takes the default.
	CacheEntries int `json:"cache_entries,omitempty"`
	// IOMMUExtraPS is the additional fixed latency of an IOMMU walk:
	// the request crosses the I/O interconnect to the IOMMU and the
	// device-table walk runs without the core walk caches.
	IOMMUExtraPS uint64 `json:"iommu_extra_ps,omitempty"`
}

// DefaultWalk returns a four-level walk at 20 ns per level (table
// entries mostly hit the cache hierarchy), a 16-entry walk cache, and
// 200 ns of extra IOMMU latency — the Kim et al. ballpark.
func DefaultWalk() WalkParams {
	return WalkParams{
		Levels:       4,
		LevelPS:      20_000,
		CacheEntries: 16,
		IOMMUExtraPS: 200_000,
	}
}

func (p *WalkParams) validate() error {
	switch {
	case p.Levels < 0 || p.Levels > 8:
		return fmt.Errorf("translation.walk.levels: must be 1-8, got %d", p.Levels)
	case p.CacheEntries < -1:
		return fmt.Errorf("translation.walk.cache_entries: must be positive, zero (default) or -1 (off), got %d", p.CacheEntries)
	case p.CacheEntries > 0 && bits.OnesCount(uint(p.CacheEntries)) != 1:
		return fmt.Errorf("translation.walk.cache_entries: %d not a power of two", p.CacheEntries)
	}
	return nil
}

// merged returns p with zero fields replaced by the defaults; a -1
// CacheEntries (walk cache off) resolves to 0.
func (p WalkParams) merged() WalkParams {
	d := DefaultWalk()
	if p.Levels == 0 {
		p.Levels = d.Levels
	}
	if p.LevelPS == 0 {
		p.LevelPS = d.LevelPS
	}
	switch {
	case p.CacheEntries == 0:
		p.CacheEntries = d.CacheEntries
	case p.CacheEntries < 0:
		p.CacheEntries = 0
	}
	if p.IOMMUExtraPS == 0 {
		p.IOMMUExtraPS = d.IOMMUExtraPS
	}
	return p
}

// ResolvedCPU returns the spec's CPU TLB parameters with defaults
// applied.
func (s Spec) ResolvedCPU() TLBParams {
	if s.CPU != nil {
		return s.CPU.merged()
	}
	return DefaultTLB()
}

// ResolvedGPU returns the spec's GPU TLB parameters with defaults
// applied.
func (s Spec) ResolvedGPU() TLBParams {
	if s.GPU != nil {
		return s.GPU.merged()
	}
	return DefaultTLB()
}

// ResolvedWalk returns the spec's walk parameters with defaults
// applied (CacheEntries 0 means the walk cache is off).
func (s Spec) ResolvedWalk() WalkParams {
	if s.Walk != nil {
		return s.Walk.merged()
	}
	return DefaultWalk()
}
