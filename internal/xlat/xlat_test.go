package xlat

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestSpecZeroIsOff(t *testing.T) {
	var s Spec
	if !s.IsZero() {
		t.Fatal("zero spec not IsZero")
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("zero spec invalid: %v", err)
	}
	if got := s.Label(); got != "off" {
		t.Fatalf("zero spec label = %q", got)
	}
}

func TestSpecValidatePaths(t *testing.T) {
	cases := []struct {
		name string
		spec Spec
		path string
	}{
		{"params-but-off-cpu", Spec{CPU: &TLBParams{Entries: 64}}, "translation.cpu"},
		{"params-but-off-walk", Spec{Walk: &WalkParams{Levels: 2}}, "translation.walk"},
		{"iommu-but-off", Spec{IOMMU: IOMMUOn}, "translation.iommu"},
		{"bad-mmu", Spec{MMU: NumMMUKinds}, "translation.mmu"},
		{"bad-entries", Spec{MMU: Private, CPU: &TLBParams{Entries: 100}}, "translation.cpu.entries"},
		{"bad-ways", Spec{MMU: Private, GPU: &TLBParams{Entries: 64, Ways: 3}}, "translation.gpu.ways"},
		{"bad-page", Spec{MMU: Private, GPU: &TLBParams{PageBytes: 1000}}, "translation.gpu.page_bytes"},
		{"bad-levels", Spec{MMU: Shared, Walk: &WalkParams{Levels: 9}}, "translation.walk.levels"},
		{"bad-walk-cache", Spec{MMU: Shared, Walk: &WalkParams{CacheEntries: 7}}, "translation.walk.cache_entries"},
	}
	for _, c := range cases {
		err := c.spec.Validate()
		if err == nil {
			t.Errorf("%s: accepted", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.path) {
			t.Errorf("%s: error %q does not carry path %q", c.name, err, c.path)
		}
	}
	good := Spec{MMU: Shared, GPU: &TLBParams{Entries: 32, Ways: 8, PageBytes: 2 << 20},
		Walk: &WalkParams{Levels: 5, CacheEntries: -1}, IOMMU: IOMMUOn}
	if err := good.Validate(); err != nil {
		t.Fatalf("good spec rejected: %v", err)
	}
}

func TestPresets(t *testing.T) {
	for _, name := range Presets() {
		s, err := ParsePreset(name)
		if err != nil {
			t.Fatalf("preset %q: %v", name, err)
		}
		if (name == "off") != s.IsZero() {
			t.Errorf("preset %q: IsZero = %v", name, s.IsZero())
		}
		if err := s.Validate(); err != nil {
			t.Errorf("preset %q invalid: %v", name, err)
		}
	}
	if _, err := ParsePreset("huge"); err == nil {
		t.Fatal("unknown preset accepted")
	}
	two := MustParsePreset("2m")
	if two.ResolvedGPU().PageBytes != 2<<20 || two.ResolvedCPU().PageBytes != 4096 {
		t.Fatalf("2m preset pages = gpu %d cpu %d", two.ResolvedGPU().PageBytes, two.ResolvedCPU().PageBytes)
	}
	if sh := MustParsePreset("2m-shared"); sh.MMU != Shared {
		t.Fatalf("2m-shared MMU = %v", sh.MMU)
	}
}

func TestSpecJSONRoundTrip(t *testing.T) {
	in := Spec{MMU: Shared, GPU: &TLBParams{Entries: 128, PageBytes: 2 << 20},
		Walk: &WalkParams{Levels: 5, LevelPS: 30_000}, IOMMU: IOMMUOn}
	b, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var out Spec
	if err := json.Unmarshal(b, &out); err != nil {
		t.Fatal(err)
	}
	if out.MMU != in.MMU || out.IOMMU != in.IOMMU ||
		*out.GPU != *in.GPU || *out.Walk != *in.Walk || out.CPU != nil {
		t.Fatalf("round trip changed spec: %+v -> %+v", in, out)
	}
}

func TestSpecUnmarshalPresetString(t *testing.T) {
	var s Spec
	if err := json.Unmarshal([]byte(`"2m-shared"`), &s); err != nil {
		t.Fatal(err)
	}
	want := MustParsePreset("2m-shared")
	if s.MMU != want.MMU || s.ResolvedGPU() != want.ResolvedGPU() || s.ResolvedCPU() != want.ResolvedCPU() {
		t.Fatalf("preset string decoded to %+v", s)
	}
	if err := json.Unmarshal([]byte(`"bogus"`), &s); err == nil {
		t.Fatal("unknown preset string accepted")
	}
}

func TestSpecUnmarshalRejectsUnknownFields(t *testing.T) {
	var s Spec
	err := json.Unmarshal([]byte(`{"mmu": "private", "page_size": 4096}`), &s)
	if err == nil {
		t.Fatal("unknown field inside translation block accepted")
	}
}

func TestLabel(t *testing.T) {
	cases := []struct {
		preset string
		want   string
	}{
		{"4k", "xlat-priv-4k"},
		{"2m", "xlat-priv-2m"},
		{"4k-shared", "xlat-shared-4k"},
		{"2m-shared", "xlat-shared-2m"},
	}
	for _, c := range cases {
		if got := MustParsePreset(c.preset).Label(); got != c.want {
			t.Errorf("label(%s) = %q, want %q", c.preset, got, c.want)
		}
	}
	iommu := Spec{MMU: Private, IOMMU: IOMMUOn}
	if got := iommu.Label(); got != "xlat-priv-4k-iommu" {
		t.Errorf("iommu label = %q", got)
	}
}

func TestWithIOMMUResolved(t *testing.T) {
	auto := MustParsePreset("4k")
	if got := auto.WithIOMMUResolved(true).IOMMU; got != IOMMUOn {
		t.Fatalf("auto over remote fabric = %v", got)
	}
	if got := auto.WithIOMMUResolved(false).IOMMU; got != IOMMUOff {
		t.Fatalf("auto over local fabric = %v", got)
	}
	forced := Spec{MMU: Private, IOMMU: IOMMUOff}
	if got := forced.WithIOMMUResolved(true).IOMMU; got != IOMMUOff {
		t.Fatalf("explicit off overridden: %v", got)
	}
}

func TestResolvedDefaults(t *testing.T) {
	var s Spec
	if got := s.ResolvedCPU(); got != DefaultTLB() {
		t.Fatalf("ResolvedCPU zero = %+v", got)
	}
	partial := Spec{MMU: Private, GPU: &TLBParams{PageBytes: 2 << 20}}
	g := partial.ResolvedGPU()
	if g.Entries != 64 || g.Ways != 4 || g.PageBytes != 2<<20 {
		t.Fatalf("partial merge = %+v", g)
	}
	w := Spec{MMU: Private, Walk: &WalkParams{CacheEntries: -1}}.ResolvedWalk()
	if w.CacheEntries != 0 {
		t.Fatalf("disabled walk cache resolves to %d", w.CacheEntries)
	}
	if w.Levels != 4 || w.LevelPS != 20_000 {
		t.Fatalf("walk defaults = %+v", w)
	}
}
