package xlat

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestTLBValidation(t *testing.T) {
	bad := []struct {
		entries, ways int
		page          uint64
	}{
		{0, 1, 4096}, {100, 4, 4096}, {64, 3, 4096}, {64, 4, 1000}, {64, 4, 0},
	}
	for i, c := range bad {
		if _, err := NewTLB(c.entries, c.ways, c.page); err == nil {
			t.Errorf("bad TLB config %d accepted", i)
		}
	}
	if _, err := NewTLB(64, 4, 4096); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
}

func TestTLBHitAfterMiss(t *testing.T) {
	tl := MustNewTLB(64, 4, 4096)
	if tl.Lookup(0x12345) {
		t.Fatal("cold TLB hit")
	}
	if !tl.Lookup(0x12345) {
		t.Fatal("second lookup missed")
	}
	if !tl.Lookup(0x12fff) {
		t.Fatal("same-page lookup missed")
	}
	if tl.Lookup(0x13000) {
		t.Fatal("next page hit")
	}
	if tl.Hits() != 2 || tl.Misses() != 2 {
		t.Fatalf("hits=%d misses=%d", tl.Hits(), tl.Misses())
	}
}

func TestTLBReach(t *testing.T) {
	small := MustNewTLB(64, 4, 4096)
	large := MustNewTLB(64, 4, 2<<20)
	if small.Reach() != 64*4096 {
		t.Errorf("small reach = %d", small.Reach())
	}
	if large.Reach() != 64*(2<<20) {
		t.Errorf("large reach = %d", large.Reach())
	}
	if !strings.Contains(large.String(), "entries") {
		t.Errorf("String() = %q", large.String())
	}
}

func TestLargePagesCoverStreamingSet(t *testing.T) {
	// Section II-A1: GPUs use large pages to accommodate high stream
	// locality. Walk an 8 MB stream with 4 KB vs 2 MB pages.
	const streamBytes = 8 << 20
	walk := func(pageSize uint64) float64 {
		tl := MustNewTLB(64, 4, pageSize)
		for pass := 0; pass < 2; pass++ {
			for a := uint64(0); a < streamBytes; a += 64 {
				tl.Lookup(a)
			}
		}
		return tl.MissRate()
	}
	smallRate := walk(4096)
	largeRate := walk(2 << 20)
	if largeRate >= smallRate {
		t.Fatalf("large pages (%.4f) not better than small (%.4f)", largeRate, smallRate)
	}
	if largeRate > 0.001 {
		t.Fatalf("2MB pages should nearly eliminate misses on 8MB stream: %.4f", largeRate)
	}
}

func TestTLBEvictionLRU(t *testing.T) {
	// Direct-ish: 4 entries, 4 ways = 1 set.
	tl := MustNewTLB(4, 4, 4096)
	for p := uint64(0); p < 4; p++ {
		tl.Lookup(p * 4096)
	}
	tl.Lookup(0)        // refresh page 0
	tl.Lookup(9 * 4096) // evicts LRU (page 1)
	if !tl.Lookup(0) {  // page 0 must survive
		t.Fatal("MRU page evicted")
	}
	if tl.Lookup(1 * 4096) { // page 1 must be gone
		t.Fatal("LRU page survived")
	}
	if tl.Evictions() == 0 {
		t.Fatal("no evictions recorded")
	}
}

func TestTLBInvalidateAndFlush(t *testing.T) {
	tl := MustNewTLB(16, 4, 4096)
	tl.Lookup(0x4000)
	if !tl.Invalidate(0x4000) {
		t.Fatal("invalidate of present entry failed")
	}
	if tl.Invalidate(0x4000) {
		t.Fatal("invalidate of absent entry succeeded")
	}
	if tl.Lookup(0x4000) {
		t.Fatal("hit after invalidate")
	}
	tl.Lookup(0x8000)
	tl.Flush()
	if tl.Lookup(0x8000) {
		t.Fatal("hit after flush")
	}
}

func TestTLBFlushKeepsCountersResetClears(t *testing.T) {
	tl := MustNewTLB(16, 4, 4096)
	tl.Lookup(0x4000)
	tl.Lookup(0x4000)
	tl.Flush()
	if tl.Hits() != 1 || tl.Misses() != 1 {
		t.Fatalf("flush lost counters: hits=%d misses=%d", tl.Hits(), tl.Misses())
	}
	tl.Reset()
	if tl.Hits() != 0 || tl.Misses() != 0 || tl.Evictions() != 0 {
		t.Fatal("reset kept counters")
	}
	if tl.Lookup(0x4000) {
		t.Fatal("hit after reset")
	}
}

func TestTLBMissRateZeroInitially(t *testing.T) {
	tl := MustNewTLB(16, 4, 4096)
	if tl.MissRate() != 0 {
		t.Fatal("miss rate before lookups")
	}
}

// Property: a second lookup of any address immediately after the first
// always hits, and hits+misses equals lookups.
func TestTLBRepeatHitProperty(t *testing.T) {
	f := func(addrs []uint32) bool {
		tl := MustNewTLB(32, 4, 4096)
		var lookups uint64
		for _, a := range addrs {
			tl.Lookup(uint64(a))
			lookups++
			if !tl.Lookup(uint64(a)) {
				return false
			}
			lookups++
		}
		return tl.Hits()+tl.Misses() == lookups
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkTLBLookup(b *testing.B) {
	tl := MustNewTLB(64, 4, 4096)
	for i := 0; i < b.N; i++ {
		tl.Lookup(uint64(i%1024) * 4096)
	}
}
