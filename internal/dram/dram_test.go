package dram

import (
	"math"
	"testing"
	"testing/quick"

	"heteromem/internal/clock"
)

func TestDDR3ConfigBandwidth(t *testing.T) {
	cfg := DDR3_1333()
	// 64 B / 6 ns per channel = 10.667 GB/s; 4 channels ≈ 42.7 GB/s.
	// The paper rounds to 41.6 GB/s; accept the 40-43 range.
	bw := cfg.PeakBandwidthGBs()
	if bw < 40 || bw > 43 {
		t.Fatalf("peak bandwidth %.1f GB/s, want ~41.6", bw)
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{Channels: 0, BanksPerChannel: 8, LineBytes: 64, RowBytes: 8192},
		{Channels: 4, BanksPerChannel: 0, LineBytes: 64, RowBytes: 8192},
		{Channels: 4, BanksPerChannel: 8, LineBytes: 0, RowBytes: 8192},
		{Channels: 4, BanksPerChannel: 8, LineBytes: 64, RowBytes: 32},
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestRowHitFasterThanConflict(t *testing.T) {
	c := MustNew(DDR3_1333())
	cfg := c.Config()
	// First access to a closed bank: activate + CAS + burst.
	t1 := c.Submit(0, 0)
	want1 := clock.Time(0).Add(cfg.TRCD + cfg.TCAS + cfg.TBurst)
	if t1 != want1 {
		t.Fatalf("cold access done at %v, want %v", t1, want1)
	}
	// Same row, after bank free: CAS + burst only.
	base := t1
	// Same channel 0, bank 0, row 0: line index must be a multiple of
	// channels*banks but inside row 0.
	t2 := c.Submit(uint64(cfg.Channels*cfg.BanksPerChannel*cfg.LineBytes), base)
	hitLat := t2.Sub(base)
	if hitLat != cfg.TCAS+cfg.TBurst {
		t.Fatalf("row hit latency %v, want %v", hitLat, cfg.TCAS+cfg.TBurst)
	}
	// Different row in the same bank: precharge + activate + CAS + burst.
	rowStride := uint64(cfg.RowBytes * cfg.Channels * cfg.BanksPerChannel)
	t3 := c.Submit(rowStride, t2)
	confLat := t3.Sub(t2)
	if confLat != cfg.TRP+cfg.TRCD+cfg.TCAS+cfg.TBurst {
		t.Fatalf("row conflict latency %v, want %v", confLat, cfg.TRP+cfg.TRCD+cfg.TCAS+cfg.TBurst)
	}
	st := c.Stats()
	if st.RowHits != 1 || st.RowMisses != 2 || st.Requests != 3 {
		t.Fatalf("stats %+v", st)
	}
}

func TestChannelInterleaving(t *testing.T) {
	c := MustNew(DDR3_1333())
	// Consecutive lines map to consecutive channels.
	ch0, _, _ := c.mapAddr(0)
	ch1, _, _ := c.mapAddr(64)
	ch2, _, _ := c.mapAddr(128)
	if ch0 == ch1 || ch1 == ch2 || ch0 == ch2 {
		t.Fatalf("lines not interleaved: ch %d %d %d", ch0, ch1, ch2)
	}
}

func TestBankConflictSerialises(t *testing.T) {
	c := MustNew(DDR3_1333())
	cfg := c.Config()
	// Two simultaneous requests to different rows of the same bank
	// serialise; two to different banks do not (beyond bus sharing).
	rowStride := uint64(cfg.RowBytes * cfg.Channels * cfg.BanksPerChannel)
	t1 := c.Submit(0, 0)
	t2 := c.Submit(rowStride, 0)
	if t2 <= t1 {
		t.Fatalf("same-bank conflict did not serialise: %v then %v", t1, t2)
	}
	c.Reset()
	bankStride := uint64(cfg.LineBytes * cfg.Channels)
	u1 := c.Submit(0, 0)
	u2 := c.Submit(bankStride*1, 0) // different bank, same channel
	// Bank access overlaps; only the burst serialises on the bus.
	if u2.Sub(0) >= t2.Sub(0) {
		t.Fatalf("different-bank pair (%v) not faster than same-bank pair (%v)", u2, t2)
	}
	_ = u1
}

func TestFRFCFSPrefersOpenRow(t *testing.T) {
	cfg := DDR3_1333()
	cfg.Channels = 1
	cfg.BanksPerChannel = 1

	mk := func(policy Policy) clock.Duration {
		cfg.Scheduling = policy
		c := MustNew(cfg)
		c.Submit(0, 0) // opens row 0
		rowStride := uint64(cfg.RowBytes)
		// Batch: conflict (older), hit, hit — FR-FCFS should run the two
		// row hits first and pay one conflict; FCFS pays conflict, then
		// two conflicts again (row ping-pong: 0->1->0 pattern below).
		reqs := []Request{
			{Addr: rowStride, Arrival: 1000},      // row 1: conflict
			{Addr: 64, Arrival: 1001},             // row 0: hit if served first
			{Addr: 128, Arrival: 1002},            // row 0: hit if served first
			{Addr: rowStride + 64, Arrival: 1003}, // row 1
		}
		done := c.SubmitBatch(reqs)
		latest := clock.Time(0)
		for _, d := range done {
			latest = clock.Max(latest, d)
		}
		return latest.Sub(0)
	}

	frfcfs := mk(FRFCFS)
	fcfs := mk(FCFS)
	if frfcfs >= fcfs {
		t.Fatalf("FR-FCFS (%v) not faster than FCFS (%v) on row-ping-pong batch", frfcfs, fcfs)
	}
}

func TestSubmitBatchEmpty(t *testing.T) {
	c := MustNew(DDR3_1333())
	if got := c.SubmitBatch(nil); len(got) != 0 {
		t.Fatalf("empty batch returned %d results", len(got))
	}
}

func TestSubmitBatchResultsAligned(t *testing.T) {
	c := MustNew(DDR3_1333())
	reqs := []Request{
		{Addr: 0, Arrival: 0},
		{Addr: 4096, Arrival: 0},
		{Addr: 64, Arrival: 0},
	}
	done := c.SubmitBatch(reqs)
	if len(done) != len(reqs) {
		t.Fatalf("got %d results for %d requests", len(done), len(reqs))
	}
	for i, d := range done {
		if d == 0 {
			t.Errorf("request %d has zero completion time", i)
		}
	}
}

func TestTransferTimeScalesWithSize(t *testing.T) {
	c := MustNew(DDR3_1333())
	small := c.TransferTime(4096, 0).Sub(0)
	c.Reset()
	large := c.TransferTime(65536, 0).Sub(0)
	if large <= small {
		t.Fatalf("64KB transfer (%v) not slower than 4KB (%v)", large, small)
	}
	// Streaming rate should approach the aggregate bandwidth: 64 KB at
	// ~41.6 GB/s is ~1.5 us. Allow generous bounds for row activates.
	us := large.Microseconds()
	if us < 1.0 || us > 4.0 {
		t.Fatalf("64KB streaming transfer took %.2fus, expected ~1.5-2us", us)
	}
}

func TestTransferTimeZero(t *testing.T) {
	c := MustNew(DDR3_1333())
	if c.TransferTime(0, 123) != 123 {
		t.Fatal("zero-byte transfer should take no time")
	}
}

func TestRowHitRate(t *testing.T) {
	var s Stats
	if s.RowHitRate() != 0 {
		t.Fatal("empty stats hit rate should be 0")
	}
	s = Stats{Requests: 10, RowHits: 4}
	if math.Abs(s.RowHitRate()-0.4) > 1e-12 {
		t.Fatalf("hit rate %v", s.RowHitRate())
	}
}

func TestReset(t *testing.T) {
	c := MustNew(DDR3_1333())
	c.Submit(0, 0)
	c.Reset()
	if c.Stats().Requests != 0 {
		t.Fatal("Reset did not clear stats")
	}
	// After reset the same access pays the cold-bank latency again.
	cfg := c.Config()
	if got := c.Submit(0, 0); got != clock.Time(0).Add(cfg.TRCD+cfg.TCAS+cfg.TBurst) {
		t.Fatalf("post-reset access at %v", got)
	}
}

// Property: completion is always at or after arrival plus the minimum
// (row-hit) service time.
func TestCompletionLowerBoundProperty(t *testing.T) {
	cfg := DDR3_1333()
	minService := cfg.TCAS + cfg.TBurst
	f := func(addrs []uint32, deltas []uint8) bool {
		c := MustNew(cfg)
		var now clock.Time
		n := len(addrs)
		if len(deltas) < n {
			n = len(deltas)
		}
		for i := 0; i < n; i++ {
			now = now.Add(clock.Duration(deltas[i]) * clock.Nanosecond)
			done := c.Submit(uint64(addrs[i]), now)
			if done < now.Add(minService) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSubmitStream(b *testing.B) {
	c := MustNew(DDR3_1333())
	var now clock.Time
	for i := 0; i < b.N; i++ {
		now = c.Submit(uint64(i)*64, now)
	}
}

func BenchmarkSubmitBatchFRFCFS(b *testing.B) {
	c := MustNew(DDR3_1333())
	reqs := make([]Request, 64)
	for i := range reqs {
		reqs[i] = Request{Addr: uint64(i) * 64}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.SubmitBatch(reqs)
	}
}
