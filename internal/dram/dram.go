// Package dram models the off-chip memory system of Table II: DDR3-1333
// with four controllers (channels), banked DRAM arrays with open-row
// policy, and FR-FCFS request scheduling.
//
// Timing follows the standard DDR3 command model at line granularity:
// a request to a bank whose row buffer already holds the target row (a
// row hit) pays only the column access (CL) plus burst transfer; a
// request to a different row (row conflict) pays precharge (tRP) +
// activate (tRCD) + column access. The data bus of each channel is a
// shared resource, which bounds per-channel bandwidth at
// LineBytes/BurstTime — 10.4 GB/s per channel, 41.6 GB/s aggregate,
// matching the paper's configuration.
package dram

import (
	"fmt"

	"heteromem/internal/clock"
	"heteromem/internal/obs"
)

// Policy selects the request scheduling policy.
type Policy uint8

const (
	// FRFCFS is first-ready, first-come-first-served: within a batch,
	// requests that hit the currently open row are serviced before older
	// row-conflict requests.
	FRFCFS Policy = iota
	// FCFS services requests strictly in arrival order. Provided for the
	// scheduling ablation.
	FCFS
)

func (p Policy) String() string {
	switch p {
	case FRFCFS:
		return "fr-fcfs"
	case FCFS:
		return "fcfs"
	default:
		return fmt.Sprintf("policy(%d)", uint8(p))
	}
}

// Config describes the memory system geometry and timing.
type Config struct {
	// Channels is the number of independent controllers.
	Channels int
	// BanksPerChannel is the number of banks each channel schedules over.
	BanksPerChannel int
	// LineBytes is the transfer granularity (one cache line per request).
	LineBytes int
	// RowBytes is the row-buffer size per bank.
	RowBytes int
	// TCAS is the column access latency (CL) for a row hit.
	TCAS clock.Duration
	// TRCD is the row activate latency.
	TRCD clock.Duration
	// TRP is the precharge latency.
	TRP clock.Duration
	// TBurst is the data-bus occupancy of one line transfer.
	TBurst clock.Duration
	// TCCD is the minimum spacing between column commands to the same
	// bank: after a row hit the bank accepts its next command after TCCD,
	// not after the full column latency (column accesses pipeline).
	TCCD clock.Duration
	// Scheduling selects FR-FCFS or FCFS.
	Scheduling Policy
	// PartitionRegionBit, when nonzero, splits each channel's banks into
	// two halves selected by that address bit (PALLOC-style bank
	// partitioning): streams from different address regions stop
	// ping-ponging each other's row buffers. The simulator sets it to the
	// address-space region bit so CPU-private and GPU-private data use
	// disjoint banks.
	PartitionRegionBit uint
}

// DDR3_1333 returns the paper's baseline memory configuration: DDR3-1333
// (tCK = 1.5 ns, CL = tRCD = tRP = 9 cycles, tCCD = 4 cycles), 64-byte
// lines, 8 KB rows, 16 banks per channel (two ranks of eight), 4
// channels. Burst of a 64-byte line takes 4 bus cycles (8 beats, double
// data rate) = 6 ns, i.e. 10.4 GB/s per channel and 41.6 GB/s aggregate
// as in Table II.
func DDR3_1333() Config {
	const tCK = 1500 * clock.Picosecond
	return Config{
		Channels:        4,
		BanksPerChannel: 16,
		LineBytes:       64,
		RowBytes:        8192,
		TCAS:            9 * tCK,
		TRCD:            9 * tCK,
		TRP:             9 * tCK,
		TBurst:          4 * tCK,
		TCCD:            4 * tCK,
		Scheduling:      FRFCFS,
		// Partition banks between the CPU-private (bit clear) and
		// GPU-private (bit set) virtual regions; see addrspace's layout.
		PartitionRegionBit: 46,
	}
}

func (c Config) validate() error {
	switch {
	case c.Channels <= 0:
		return fmt.Errorf("dram: channels %d must be positive", c.Channels)
	case c.BanksPerChannel <= 0:
		return fmt.Errorf("dram: banks %d must be positive", c.BanksPerChannel)
	case c.LineBytes <= 0:
		return fmt.Errorf("dram: line bytes %d must be positive", c.LineBytes)
	case c.RowBytes < c.LineBytes:
		return fmt.Errorf("dram: row bytes %d smaller than line %d", c.RowBytes, c.LineBytes)
	}
	return nil
}

// PeakBandwidthGBs returns the aggregate data-bus bandwidth in GB/s.
func (c Config) PeakBandwidthGBs() float64 {
	perChannel := float64(c.LineBytes) / (float64(c.TBurst) * 1e-12) // bytes/s
	return perChannel * float64(c.Channels) / 1e9
}

type bank struct {
	openRow  uint64
	rowValid bool
	busy     clock.Time
}

type channel struct {
	banks []bank
	bus   *clock.Resource
}

// Stats counts memory-system events.
type Stats struct {
	Requests  uint64
	RowHits   uint64
	RowMisses uint64
}

// RowHitRate returns row hits over requests, or 0 with no requests.
func (s Stats) RowHitRate() float64 {
	if s.Requests == 0 {
		return 0
	}
	return float64(s.RowHits) / float64(s.Requests)
}

// Controller is the set of memory channels fronting DRAM.
type Controller struct {
	cfg      Config
	channels []channel
	stats    Stats
	obs      ctrlObs

	// Scratch buffers reused across SubmitBatch/TransferTime calls so
	// batch scheduling allocates only the returned completion slice:
	// pendBuf holds the not-yet-scheduled request indices, chBuf/bkBuf/
	// rowBuf the per-request address decomposition (computed once per
	// request instead of once per scheduling step), reqBuf the synthetic
	// request list of a block transfer. The decomposition deliberately
	// lives in parallel arrays (struct-of-arrays, like the cache line
	// metadata and the MSHR file) rather than a []struct: the FR-FCFS
	// inner loop scans only the channel/bank columns when hunting for a
	// row hit, so the packed int32 columns keep that scan inside a couple
	// of cache lines per 16 pending requests.
	pendBuf []int
	chBuf   []int32
	bkBuf   []int32
	rowBuf  []uint64
	reqBuf  []Request
}

// ctrlObs holds the controller's observability instruments under the
// dram.* namespace; nil instruments make every bump a no-op.
type ctrlObs struct {
	requests  *obs.Counter
	rowHits   *obs.Counter
	rowMisses *obs.Counter
	bytes     *obs.Counter
}

// Instrument registers the controller's metrics (dram.*) with reg. The
// dram.bytes counter advances by one line per serviced request, so
// per-epoch deltas divided by the epoch length give achieved bandwidth.
// A nil registry detaches the instruments.
func (c *Controller) Instrument(reg *obs.Registry) {
	c.InstrumentPrefix(reg, "dram")
}

// InstrumentPrefix is Instrument under a caller-chosen namespace, for
// controllers embedded in another device (an HBM stack registers its
// banked-controller metrics as memtech.hbm.*).
func (c *Controller) InstrumentPrefix(reg *obs.Registry, prefix string) {
	c.obs = ctrlObs{
		requests:  reg.Counter(prefix + ".requests"),
		rowHits:   reg.Counter(prefix + ".row_hits"),
		rowMisses: reg.Counter(prefix + ".row_misses"),
		bytes:     reg.Counter(prefix + ".bytes"),
	}
}

// New returns a controller with all banks closed.
func New(cfg Config) (*Controller, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	c := &Controller{cfg: cfg, channels: make([]channel, cfg.Channels)}
	for i := range c.channels {
		c.channels[i] = channel{
			banks: make([]bank, cfg.BanksPerChannel),
			bus:   clock.NewResource(fmt.Sprintf("dram.ch%d.bus", i)),
		}
	}
	return c, nil
}

// MustNew is New but panics on configuration error.
func MustNew(cfg Config) *Controller {
	c, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return c
}

// Config returns the controller's configuration.
func (c *Controller) Config() Config { return c.cfg }

// Stats returns a snapshot of the counters.
func (c *Controller) Stats() Stats { return c.stats }

// mapAddr decomposes a line address into channel, bank and row indices.
// Lines interleave across channels, then banks, so sequential streams use
// all channels; the row index comes from the remaining high bits.
func (c *Controller) mapAddr(addr uint64) (ch, bk int, row uint64) {
	line := addr / uint64(c.cfg.LineBytes)
	ch = int(line % uint64(c.cfg.Channels))
	line /= uint64(c.cfg.Channels)
	banks := uint64(c.cfg.BanksPerChannel)
	if c.cfg.PartitionRegionBit != 0 && banks >= 2 {
		half := banks / 2
		sel := addr >> c.cfg.PartitionRegionBit & 1
		bk = int(line%half + half*sel)
		line /= half
	} else {
		bk = int(line % banks)
		line /= banks
	}
	row = line / uint64(c.cfg.RowBytes/c.cfg.LineBytes)
	return ch, bk, row
}

// Request is one line-granularity memory request.
type Request struct {
	// Addr is the physical address of the line.
	Addr uint64
	// Arrival is when the request reaches the controller.
	Arrival clock.Time
}

// Submit services a single request and returns the time its data has
// fully transferred.
func (c *Controller) Submit(addr uint64, now clock.Time) clock.Time {
	return c.service(addr, now)
}

func (c *Controller) service(addr uint64, at clock.Time) clock.Time {
	chIdx, bkIdx, row := c.mapAddr(addr)
	ch := &c.channels[chIdx]
	bk := &ch.banks[bkIdx]
	c.stats.Requests++
	c.obs.requests.Inc()
	c.obs.bytes.Add(uint64(c.cfg.LineBytes))

	start := clock.Max(at, bk.busy)
	var access, occupancy clock.Duration
	ccd := c.cfg.TCCD
	if ccd == 0 {
		ccd = c.cfg.TCAS
	}
	if bk.rowValid && bk.openRow == row {
		c.stats.RowHits++
		c.obs.rowHits.Inc()
		access = c.cfg.TCAS
		occupancy = ccd
	} else {
		c.stats.RowMisses++
		c.obs.rowMisses.Inc()
		if bk.rowValid {
			access = c.cfg.TRP + c.cfg.TRCD + c.cfg.TCAS
			occupancy = c.cfg.TRP + c.cfg.TRCD + ccd
		} else {
			access = c.cfg.TRCD + c.cfg.TCAS
			occupancy = c.cfg.TRCD + ccd
		}
		bk.openRow = row
		bk.rowValid = true
	}
	dataReady := start.Add(access)
	// Column commands pipeline: the bank accepts its next command after
	// the command occupancy (tCCD past the activate/precharge work), not
	// after the data returns; the burst itself only occupies the
	// channel's shared data bus.
	bk.busy = start.Add(occupancy)
	_, done := ch.bus.Acquire(dataReady, c.cfg.TBurst)
	return done
}

// SubmitBatch schedules a batch of requests that are simultaneously
// visible to the controller (e.g. a coalesced GPU burst or a DMA block
// transfer) and returns each request's completion time, in the order the
// requests were given. Under FRFCFS the controller reorders within the
// batch: at each step it picks, among requests that have arrived, one
// whose target row is open in its bank; if none, the oldest request.
func (c *Controller) SubmitBatch(reqs []Request) []clock.Time {
	done := make([]clock.Time, len(reqs))
	if len(reqs) == 0 {
		return done
	}
	if c.cfg.Scheduling == FCFS {
		for i, r := range reqs {
			done[i] = c.service(r.Addr, r.Arrival)
		}
		return done
	}
	n := len(reqs)
	if cap(c.pendBuf) < n {
		c.pendBuf = make([]int, n)
		c.chBuf = make([]int32, n)
		c.bkBuf = make([]int32, n)
		c.rowBuf = make([]uint64, n)
	}
	pending := c.pendBuf[:n]
	chs, bks, rows := c.chBuf[:n], c.bkBuf[:n], c.rowBuf[:n]
	// The address decomposition is static, so computing it once per
	// request (instead of once per scheduling step) cannot change which
	// request each step picks — only bank open-row state evolves.
	for i := range reqs {
		pending[i] = i
		ch, bk, row := c.mapAddr(reqs[i].Addr)
		chs[i], bks[i], rows[i] = int32(ch), int32(bk), row
	}
	for len(pending) > 0 {
		pick := -1
		// First ready: a pending request whose row is open in its bank.
		for pi, idx := range pending {
			bk := &c.channels[chs[idx]].banks[bks[idx]]
			if bk.rowValid && bk.openRow == rows[idx] {
				pick = pi
				break
			}
		}
		if pick < 0 {
			// First come: oldest arrival (stable on submission order).
			pick = 0
			for pi := 1; pi < len(pending); pi++ {
				if reqs[pending[pi]].Arrival < reqs[pending[pick]].Arrival {
					pick = pi
				}
			}
		}
		idx := pending[pick]
		pending = append(pending[:pick], pending[pick+1:]...)
		done[idx] = c.service(reqs[idx].Addr, reqs[idx].Arrival)
	}
	return done
}

// TransferTime returns how long a size-byte block transfer takes through
// the controller, assuming ideal streaming across all channels starting
// at now. Used to cost DMA-style copies through the memory controllers
// (the Fusion communication path).
func (c *Controller) TransferTime(size uint64, now clock.Time) clock.Time {
	if size == 0 {
		return now
	}
	lines := (size + uint64(c.cfg.LineBytes) - 1) / uint64(c.cfg.LineBytes)
	if uint64(cap(c.reqBuf)) < lines {
		c.reqBuf = make([]Request, lines)
	}
	reqs := c.reqBuf[:lines]
	for i := range reqs {
		reqs[i] = Request{Addr: uint64(i) * uint64(c.cfg.LineBytes), Arrival: now}
	}
	latest := now
	for _, t := range c.SubmitBatch(reqs) {
		latest = clock.Max(latest, t)
	}
	return latest
}

// Reset closes every row and idles every bus, clearing statistics.
func (c *Controller) Reset() {
	for i := range c.channels {
		for j := range c.channels[i].banks {
			c.channels[i].banks[j] = bank{}
		}
		c.channels[i].bus.Reset()
	}
	c.stats = Stats{}
}
