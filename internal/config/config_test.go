package config

import (
	"testing"

	"heteromem/internal/clock"
	"heteromem/internal/isa"
)

func TestBaselineCores(t *testing.T) {
	cpu := BaselineCPU()
	if cpu.FreqMHz != 3500 || cpu.ROBSize == 0 || cpu.MispredictPenalty == 0 {
		t.Fatalf("CPU baseline wrong: %+v", cpu)
	}
	gpu := BaselineGPU()
	if gpu.FreqMHz != 1500 || gpu.SIMDWidth != 8 || gpu.ROBSize != 0 {
		t.Fatalf("GPU baseline wrong: %+v", gpu)
	}
	if cpu.Domain().FreqMHz() != 3500 || gpu.Domain().FreqMHz() != 1500 {
		t.Fatal("domains do not match core frequencies")
	}
}

func TestTableIVValues(t *testing.T) {
	p := TableIV()
	if p.APIPCICycles != 33250 || p.APIAcqCycles != 1000 || p.APITrCycles != 7000 || p.LibPFCycles != 42000 {
		t.Fatalf("Table IV values wrong: %+v", p)
	}
	if p.PCIRateGBs != 16 {
		t.Fatalf("PCI-E rate %v, want 16 GB/s", p.PCIRateGBs)
	}
}

func TestLatencyAPIPCI(t *testing.T) {
	p := TableIV()
	// Zero-byte copy: just the 33250-cycle base at 3.5 GHz = 9.5 us.
	base := p.Latency(isa.APIPCI, 0)
	wantBase := clock.NewDomain("cpu", 3500).CyclesToDuration(33250)
	if base != wantBase {
		t.Fatalf("api-pci base %v, want %v", base, wantBase)
	}
	// 16 KB at 16 GB/s adds 1 us.
	withData := p.Latency(isa.APIPCI, 16384)
	added := withData - base
	if added < clock.Duration(0.9*float64(clock.Microsecond)) || added > clock.Duration(1.1*float64(clock.Microsecond)) {
		t.Fatalf("16KB transfer added %v, want ~1.024us", added)
	}
}

func TestLatencyOtherKinds(t *testing.T) {
	p := TableIV()
	acq := p.Latency(isa.APIAcquire, 0)
	rel := p.Latency(isa.APIRelease, 0)
	tr := p.Latency(isa.APITransfer, 0)
	pf := p.Latency(isa.LibPageFault, 0)
	if acq != rel {
		t.Error("acquire and release should share api-acq cost")
	}
	if !(acq < tr && tr < pf) {
		t.Errorf("expected acq(%v) < tr(%v) < pf(%v)", acq, tr, pf)
	}
	if p.Latency(isa.ALU, 0) != 0 || p.Latency(isa.Load, 64) != 0 {
		t.Error("non-comm kinds must cost nothing")
	}
}

func TestIdeal(t *testing.T) {
	p := Ideal()
	if !p.IsIdeal() {
		t.Fatal("Ideal() not ideal")
	}
	for _, k := range []isa.Kind{isa.APIPCI, isa.APIAcquire, isa.APITransfer, isa.LibPageFault} {
		if p.Latency(k, 1<<20) != 0 {
			t.Errorf("ideal %v latency nonzero", k)
		}
	}
	if TableIV().IsIdeal() {
		t.Fatal("Table IV reported ideal")
	}
}

func TestTransferScalesLinearly(t *testing.T) {
	p := TableIV()
	d1 := p.Latency(isa.APIPCI, 1<<20) - p.Latency(isa.APIPCI, 0)
	d2 := p.Latency(isa.APIPCI, 2<<20) - p.Latency(isa.APIPCI, 0)
	ratio := float64(d2) / float64(d1)
	if ratio < 1.99 || ratio > 2.01 {
		t.Fatalf("transfer time not linear: ratio %v", ratio)
	}
}
