// Package config holds the evaluation parameters of the paper: the
// core-side baseline configuration (Table II) and the communication
// overhead modeling parameters (Table IV). The memory-side baseline lives
// in mem.TableII.
package config

import (
	"heteromem/internal/clock"
	"heteromem/internal/isa"
)

// CoreConfig describes one processing unit's execution core (Table II).
type CoreConfig struct {
	// Name identifies the core ("cpu" or "gpu").
	Name string
	// FreqMHz is the core clock.
	FreqMHz float64
	// IssueWidth is instructions issued per cycle.
	IssueWidth int
	// ROBSize is the out-of-order window (CPU only; 0 for in-order).
	ROBSize int
	// SIMDWidth is the datapath width in lanes (GPU only).
	SIMDWidth int
	// MispredictPenalty is the front-end refill penalty in cycles after a
	// branch misprediction (CPU only).
	MispredictPenalty uint64
	// BranchStall is the stall in cycles charged per branch on a core
	// with no predictor (GPU: "stall on branch").
	BranchStall uint64
	// PredictorTableBits and PredictorHistoryBits size the gshare
	// predictor (CPU only).
	PredictorTableBits   uint
	PredictorHistoryBits uint
	// StrongConsistency makes every store complete globally before the
	// core proceeds (sequential consistency). The baseline is weak
	// consistency — a store buffer drains in the background and only
	// barriers wait — which is what every surveyed system uses (Table I's
	// consistency column). The strong option measures what the "strongly
	// consistent" half of the paper's ideal would cost.
	StrongConsistency bool
}

// BaselineCPU returns the Table II CPU core: 3.5 GHz, out-of-order,
// gshare predictor. Width and window follow a Sandy-Bridge-class core.
func BaselineCPU() CoreConfig {
	return CoreConfig{
		Name:                 "cpu",
		FreqMHz:              3500,
		IssueWidth:           4,
		ROBSize:              128,
		MispredictPenalty:    14,
		PredictorTableBits:   14,
		PredictorHistoryBits: 12,
	}
}

// BaselineGPU returns the Table II GPU core: 1.5 GHz, in-order, 8-wide
// SIMD, no branch predictor (stall on branch).
func BaselineGPU() CoreConfig {
	return CoreConfig{
		Name:        "gpu",
		FreqMHz:     1500,
		IssueWidth:  1,
		SIMDWidth:   8,
		BranchStall: 4,
	}
}

// Domain returns the core's clock domain.
func (c CoreConfig) Domain() *clock.Domain { return clock.NewDomain(c.Name, c.FreqMHz) }

// CommParams are the Table IV parameters for modeling communication
// overhead with special instructions. Latencies are in CPU cycles at the
// baseline 3.5 GHz clock, exactly as the paper specifies them.
// The JSON names appear in declarative system and grid files
// (systems.Load / systems.LoadGrid).
type CommParams struct {
	// APIPCICycles is the fixed cost of a memory copy API using PCI-E
	// (api-pci); the transfer itself adds bytes at PCIRateGBs.
	APIPCICycles uint64 `json:"api_pci_cycles"`
	// PCIRateGBs is the PCI-E 2.0 transfer rate (trans_rate).
	PCIRateGBs float64 `json:"pci_rate_gbs"`
	// APIAcqCycles is the cost of an ownership acquire action (api-acq).
	APIAcqCycles uint64 `json:"api_acq_cycles"`
	// APITrCycles is the cost of a data transfer function into the
	// partially shared space (api-tr).
	APITrCycles uint64 `json:"api_tr_cycles"`
	// LibPFCycles is the library cost of a page fault on first touch of
	// shared data (lib-pf).
	LibPFCycles uint64 `json:"lib_pf_cycles"`
	// CPUFreqMHz anchors the cycle counts to absolute time.
	CPUFreqMHz float64 `json:"cpu_freq_mhz"`
}

// TableIV returns the paper's default communication parameters:
// api-pci = 33250 cycles + bytes at 16 GB/s, api-acq = 1000,
// api-tr = 7000, lib-pf = 42000.
func TableIV() CommParams {
	return CommParams{
		APIPCICycles: 33250,
		PCIRateGBs:   16,
		APIAcqCycles: 1000,
		APITrCycles:  7000,
		LibPFCycles:  42000,
		CPUFreqMHz:   3500,
	}
}

// Ideal returns zero-cost communication parameters, used by the
// IDEAL-HETERO system and the Figure 7 experiment ("ideal communication
// overhead").
func Ideal() CommParams {
	return CommParams{CPUFreqMHz: 3500}
}

func (p CommParams) cycles(n uint64) clock.Duration {
	if n == 0 {
		return 0
	}
	return clock.NewDomain("cpu", p.CPUFreqMHz).CyclesToDuration(n)
}

// transfer returns the PCI-E serialisation time of size bytes.
func (p CommParams) transfer(size uint32) clock.Duration {
	if p.PCIRateGBs <= 0 || size == 0 {
		return 0
	}
	ps := float64(size) / (p.PCIRateGBs * 1e9) * 1e12
	return clock.Duration(ps)
}

// Latency returns the execution latency of a communication instruction of
// the given kind and payload size. Non-communication kinds cost nothing
// here.
func (p CommParams) Latency(kind isa.Kind, size uint32) clock.Duration {
	switch kind {
	case isa.APIPCI:
		return p.cycles(p.APIPCICycles) + p.transfer(size)
	case isa.APIAcquire, isa.APIRelease:
		return p.cycles(p.APIAcqCycles)
	case isa.APITransfer:
		return p.cycles(p.APITrCycles) + p.transfer(size)
	case isa.LibPageFault:
		return p.cycles(p.LibPFCycles)
	default:
		return 0
	}
}

// IsIdeal reports whether every communication cost is zero.
func (p CommParams) IsIdeal() bool {
	return p.APIPCICycles == 0 && p.APIAcqCycles == 0 &&
		p.APITrCycles == 0 && p.LibPFCycles == 0 && p.PCIRateGBs == 0
}
