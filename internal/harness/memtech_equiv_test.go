package harness_test

import (
	"os"
	"path/filepath"
	"testing"

	"heteromem/internal/harness"
	"heteromem/internal/memtech"
	"heteromem/internal/systems"
)

// TestMemTechDRAMEquivalence is the pluggable-backend refactor's
// correctness anchor: a sweep whose systems carry an *explicit*
// mem_tech: dram spec (exercising the Spec-driven backend construction
// rather than the zero-value default) must reproduce the committed
// Figure 5/6 goldens byte for byte. It never regenerates the goldens —
// no -update path — so it can only pass by matching what the DRAMStage
// produced before the Backend interface existed.
func TestMemTechDRAMEquivalence(t *testing.T) {
	sysList := systems.CaseStudies()
	for i := range sysList {
		sysList[i].MemTech = memtech.Spec{Kind: memtech.DRAM}
	}
	cells, err := harness.Executor{}.RunSystems(sysList, harness.QuickKernels())
	if err != nil {
		t.Fatal(err)
	}
	for name, text := range map[string]string{
		"figure5.txt": harness.RenderFigure5(cells),
		"figure6.txt": harness.RenderFigure6(cells),
	} {
		want, err := os.ReadFile(filepath.Join("testdata", name))
		if err != nil {
			t.Fatalf("missing committed golden %s: %v", name, err)
		}
		if text != string(want) {
			t.Errorf("mem_tech: dram diverges from the pre-refactor %s golden:\n--- got ---\n%s\n--- want ---\n%s",
				name, text, want)
		}
	}
}

// Every non-DRAM backend must produce a breakdown that differs from the
// DRAM baseline (the axis is real, not cosmetic) while keeping the
// sweep shape intact.
func TestMemTechAxisChangesResults(t *testing.T) {
	kernels := []string{"reduction"}
	base, err := harness.Executor{}.RunSystems(systems.CaseStudies()[:1], kernels)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []memtech.Kind{memtech.HBM, memtech.NVM, memtech.DRAMCache} {
		cells, err := harness.Executor{}.RunSystems(systems.CaseStudiesWithTech(k)[:1], kernels)
		if err != nil {
			t.Fatalf("%v: %v", k, err)
		}
		if cells[0].Result.MemTech != k.String() {
			t.Errorf("%v: result reports tech %q", k, cells[0].Result.MemTech)
		}
		if cells[0].Result.Total() == base[0].Result.Total() {
			t.Errorf("%v: total identical to DRAM baseline (%v) — backend not in the path",
				k, base[0].Result.Total())
		}
	}
}
