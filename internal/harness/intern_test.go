package harness

import (
	"sync"
	"testing"
)

func TestInternProgramSharesOneInstance(t *testing.T) {
	a, err := internProgram("reduction")
	if err != nil {
		t.Fatal(err)
	}
	b, err := internProgram("reduction")
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("internProgram returned distinct instances for one kernel")
	}
	if _, err := internProgram("no-such-kernel"); err == nil {
		t.Fatal("unknown kernel accepted")
	}
}

func TestInternProgramConcurrent(t *testing.T) {
	const workers = 16
	got := make([]interface{}, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			p, err := internProgram("convolution")
			if err != nil {
				t.Error(err)
				return
			}
			got[w] = p
		}(w)
	}
	wg.Wait()
	for w := 1; w < workers; w++ {
		if got[w] != got[0] {
			t.Fatalf("worker %d saw a different interned program", w)
		}
	}
}
