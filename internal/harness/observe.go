package harness

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"heteromem/internal/obs"
	"heteromem/internal/rescache"
	"heteromem/internal/sim"
)

// Observer wires a sweep into the observability layer: every cell the
// Executor runs appends a structured record to the run ledger, opens a
// hierarchical span (sweep → design point → kernel; the simulator hangs
// its phase spans underneath), feeds a live progress view, and merges
// the per-worker metric registries into one sweep-wide snapshot that the
// introspection server can expose while the sweep is still running.
//
// The Observer itself is nil-safe from the Executor's side — a nil
// *Observer disables all of it — and internally synchronised, so any
// number of workers report cells while HTTP handlers read Progress() and
// Metrics() concurrently.
type Observer struct {
	// Name labels the sweep's root span (defaults to "sweep").
	Name string
	// Ledger, when non-nil, receives one span line per sweep/point/kernel
	// scope and one "cell" record per (system, kernel) measurement.
	Ledger *obs.Ledger
	// Trace, when non-nil, collects a host-time Perfetto trace with one
	// track per worker and one slice per cell. Host nanoseconds are
	// recorded at nanosecond precision (ns×1000 in the tracer's
	// picosecond field), so a displayed microsecond is a real
	// microsecond of wall time.
	Trace *obs.Tracer
	// HostProfEvery, when positive, attaches sampled host wall-clock
	// self-profiling to every worker (1 = every pipeline run).
	HostProfEvery int
	// IntervalPS, when positive, samples each cell's registry at this
	// simulated-time interval and writes one CSV per cell to IntervalDir.
	IntervalPS  uint64
	IntervalDir string

	mu       sync.Mutex
	sweep    *obs.Span
	points   map[string]*obs.Span
	agg      obs.Snapshot
	total    int
	done     int
	failed   int
	cached   int
	verified int
	workers  []workerState
	start    time.Time
	err      error
	finished bool
	// cache is the sweep's result cache, when one is attached; Metrics
	// and Progress read its counters live.
	cache *rescache.Store
}

type workerState struct {
	current string
	done    int
	busy    time.Duration
}

// CellRecord is the ledger line appended for every completed sweep cell.
// Host times are wall-clock nanoseconds; simulated durations are
// picoseconds, the simulator's native unit.
type CellRecord struct {
	T      string `json:"t"`
	Span   uint64 `json:"span,omitempty"`
	System string `json:"system"`
	Spec   string `json:"spec,omitempty"`
	Kernel string `json:"kernel"`
	Worker int    `json:"worker"`

	// QueueWaitNS and WallNS are integer nanoseconds, never a coarser
	// unit: a cached cell resolves in sub-microsecond host time and must
	// remain distinguishable from a fast miss, which millisecond (or
	// float-second) rounding would collapse to 0.
	QueueWaitNS int64 `json:"queue_wait_ns"`
	WallNS      int64 `json:"wall_ns"`
	// Cached marks a cell served from the result cache without running a
	// simulator; ProbeNS is the cache-probe time for that cell. Verify
	// marks a re-simulation of a cached cell by the -cache-verify
	// determinism tripwire (not counted toward sweep progress).
	Cached  bool   `json:"cached,omitempty"`
	ProbeNS int64  `json:"probe_ns,omitempty"`
	Verify  bool   `json:"verify,omitempty"`
	Err     string `json:"err,omitempty"`

	SequentialPS    uint64  `json:"sequential_ps"`
	ParallelPS      uint64  `json:"parallel_ps"`
	CommunicationPS uint64  `json:"communication_ps"`
	TotalPS         uint64  `json:"total_ps"`
	CommShare       float64 `json:"comm_share"`
	PageFaults      int     `json:"page_faults,omitempty"`
	OwnershipOps    int     `json:"ownership_ops,omitempty"`
}

// WorkerProgress is one worker's live state within SweepProgress.
type WorkerProgress struct {
	ID      int     `json:"id"`
	Current string  `json:"current,omitempty"`
	Done    int     `json:"done"`
	BusySec float64 `json:"busy_s"`
	Util    float64 `json:"util"`
}

// SweepProgress is the live progress document served at /progress.
type SweepProgress struct {
	Total       int     `json:"total"`
	Done        int     `json:"done"`
	Failed      int     `json:"failed"`
	ElapsedSec  float64 `json:"elapsed_s"`
	ETASec      float64 `json:"eta_s"`
	CellsPerSec float64 `json:"cells_per_sec"`
	// Cache fields are present only when the sweep runs with a result
	// cache: cells served from the cache, cells verified against it,
	// and the store's own hit rate over all probes.
	CacheOn       bool             `json:"cache,omitempty"`
	CachedCells   int              `json:"cached_cells,omitempty"`
	VerifiedCells int              `json:"verified_cells,omitempty"`
	CacheHitRate  float64          `json:"cache_hit_rate,omitempty"`
	Workers       []WorkerProgress `json:"workers"`
}

// begin opens the sweep: records the start instant, sizes the worker
// table, attaches the result cache (if any), and writes the root span.
// Called once by RunSystems.
func (o *Observer) begin(totalCells, workers int, cache *rescache.Store) {
	if o == nil {
		return
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	o.start = time.Now()
	o.total = totalCells
	o.done, o.failed = 0, 0
	o.cached, o.verified = 0, 0
	o.cache = cache
	o.finished = false
	o.workers = make([]workerState, workers)
	o.points = make(map[string]*obs.Span)
	o.agg = obs.Snapshot{Counters: map[string]uint64{}}
	name := o.Name
	if name == "" {
		name = "sweep"
	}
	o.sweep = o.Ledger.Root("sweep", name)
	if cache != nil {
		o.Trace.SetTrack(0, "cache")
	}
	for w := 0; w < workers; w++ {
		o.Trace.SetTrack(w+1, fmt.Sprintf("worker %d", w))
	}
}

// pointLocked returns (lazily creating) the design point's span.
// Callers hold o.mu.
func (o *Observer) pointLocked(system string) *obs.Span {
	point := o.points[system]
	if point == nil {
		point = o.sweep.Child("point", system)
		o.points[system] = point
	}
	return point
}

// beginCell marks worker w busy on (system, kernel) and opens the cell's
// span (kind "kernel" for a simulation, "verify" for a cache-verify
// re-simulation) beneath the system's lazily created point span. The
// returned span parents the simulator's phase spans via SetRunSpan.
func (o *Observer) beginCell(w int, system, spec, kernel, kind string) *obs.Span {
	if o == nil {
		return nil
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	o.workers[w].current = system + "/" + kernel
	return o.pointLocked(system).Child(kind, kernel)
}

// cachedCell records a cell served from the result cache: one ledger
// record with cached:true, a closed kernel span, a slice on the cache
// trace track, and a progress bump. No worker ran it, so worker state
// and the metric aggregate are untouched.
func (o *Observer) cachedCell(system, spec, kernel string, res sim.Result, probeNS int64, started time.Time) {
	if o == nil {
		return
	}
	end := time.Now()
	o.mu.Lock()
	defer o.mu.Unlock()
	span := o.pointLocked(system).Child("kernel", kernel)
	rec := newCellRecord(system, spec, kernel, res, nil)
	rec.T = "cell"
	rec.Span = span.ID()
	rec.Worker = -1
	rec.Cached = true
	rec.ProbeNS = probeNS
	rec.WallNS = end.Sub(started).Nanoseconds()
	o.done++
	o.cached++
	if err := o.Ledger.Append(rec); err != nil && o.err == nil {
		o.err = err
	}
	span.End(map[string]any{"cached": true, "total_ps": rec.TotalPS})
	o.Trace.Span(0, system+"/"+kernel, "cached",
		hostPS(o.start, started), hostPS(o.start, end),
		map[string]any{"probe_ns": probeNS})
}

// endCell completes a cell: merges the worker registry's snapshot into
// the sweep aggregate, appends the ledger record, closes the cell span,
// emits the worker-track trace slice, and updates progress counters.
func (o *Observer) endCell(w int, span *obs.Span, rec CellRecord, snap obs.Snapshot, queued, started time.Time) {
	if o == nil {
		return
	}
	end := time.Now()
	rec.T = "cell"
	rec.Span = span.ID()
	rec.Worker = w
	rec.QueueWaitNS = started.Sub(queued).Nanoseconds()
	rec.WallNS = end.Sub(started).Nanoseconds()

	o.mu.Lock()
	defer o.mu.Unlock()
	o.agg.Merge(snap)
	if rec.Verify {
		// A verify re-run duplicates a cell already counted as cached;
		// it advances worker accounting but not sweep progress.
		o.verified++
	} else {
		o.done++
	}
	if rec.Err != "" {
		o.failed++
	}
	ws := &o.workers[w]
	ws.current = ""
	ws.done++
	ws.busy += end.Sub(started)
	if err := o.Ledger.Append(rec); err != nil && o.err == nil {
		o.err = err
	}
	attrs := map[string]any{"worker": w, "total_ps": rec.TotalPS}
	if rec.Verify {
		attrs["verify"] = true
	}
	if rec.Err != "" {
		attrs["err"] = rec.Err
	}
	span.End(attrs)
	o.Trace.Span(w+1, rec.System+"/"+rec.Kernel, "cell",
		hostPS(o.start, started), hostPS(o.start, end),
		map[string]any{"queue_wait_ns": rec.QueueWaitNS})
}

// finish closes the point and sweep spans. Called once after the worker
// pool drains.
func (o *Observer) finish() {
	if o == nil {
		return
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	o.finished = true
	for _, p := range o.points {
		p.End(nil)
	}
	attrs := map[string]any{"cells": o.done, "failed": o.failed}
	if o.cache != nil {
		attrs["cached"] = o.cached
		attrs["verified"] = o.verified
	}
	o.sweep.End(attrs)
	if err := o.Ledger.Err(); err != nil && o.err == nil {
		o.err = err
	}
}

// hostPS maps a host instant onto the tracer's picosecond axis at
// nanosecond precision, relative to the sweep start: ns since start
// × 1000, so one displayed microsecond is one real microsecond.
func hostPS(start, t time.Time) uint64 {
	d := t.Sub(start)
	if d < 0 {
		return 0
	}
	return uint64(d.Nanoseconds()) * 1000
}

// Err reports the first ledger or interval-CSV write error the sweep
// encountered. Observability failures never fail the sweep itself.
func (o *Observer) Err() error {
	if o == nil {
		return nil
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.err
}

// Progress returns the live progress document: cells done/total, ETA
// from the observed cell rate, and per-worker state. Safe to call
// concurrently with a running sweep.
func (o *Observer) Progress() SweepProgress {
	if o == nil {
		return SweepProgress{}
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	now := time.Now()
	elapsed := now.Sub(o.start)
	p := SweepProgress{
		Total:      o.total,
		Done:       o.done,
		Failed:     o.failed,
		ElapsedSec: elapsed.Seconds(),
	}
	if elapsed > 0 && o.done > 0 {
		p.CellsPerSec = float64(o.done) / elapsed.Seconds()
		p.ETASec = float64(o.total-o.done) / p.CellsPerSec
	}
	if o.cache != nil {
		p.CacheOn = true
		p.CachedCells = o.cached
		p.VerifiedCells = o.verified
		p.CacheHitRate = o.cache.Stats().HitRate()
	}
	for i := range o.workers {
		ws := o.workers[i]
		wp := WorkerProgress{ID: i, Current: ws.current, Done: ws.done, BusySec: ws.busy.Seconds()}
		if elapsed > 0 {
			wp.Util = ws.busy.Seconds() / elapsed.Seconds()
		}
		p.Workers = append(p.Workers, wp)
	}
	return p
}

// Metrics returns the sweep-wide aggregate metric snapshot: the merge of
// every completed cell's registry, plus sweep.* bookkeeping counters.
// The returned snapshot is a private copy, safe to serialise while
// workers keep merging.
func (o *Observer) Metrics() obs.Snapshot {
	out := obs.Snapshot{Counters: map[string]uint64{}}
	if o == nil {
		return out
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	out.Merge(o.agg)
	out.Counters["sweep.cells.total"] = uint64(o.total)
	out.Counters["sweep.cells.done"] = uint64(o.done)
	out.Counters["sweep.cells.failed"] = uint64(o.failed)
	if o.cache != nil {
		out.Counters["sweep.cells.cached"] = uint64(o.cached)
		out.Counters["sweep.cells.verified"] = uint64(o.verified)
		for name, v := range o.cache.Stats().Counters() {
			out.Counters[name] = v
		}
	}
	return out
}

// writeIntervalCSV persists one cell's interval time series under
// IntervalDir as <kernel>__<system>.csv. Errors are recorded on the
// Observer, not returned to the worker.
func (o *Observer) writeIntervalCSV(system, kernel string, s *obs.Sampler) {
	if o == nil || o.IntervalDir == "" || s == nil || len(s.Samples()) == 0 {
		return
	}
	record := func(err error) {
		o.mu.Lock()
		if o.err == nil {
			o.err = err
		}
		o.mu.Unlock()
	}
	if err := os.MkdirAll(o.IntervalDir, 0o755); err != nil {
		record(err)
		return
	}
	path := filepath.Join(o.IntervalDir, artifactName(kernel)+"__"+artifactName(system)+".csv")
	f, err := os.Create(path)
	if err != nil {
		record(err)
		return
	}
	if err := s.WriteCSV(f); err != nil {
		f.Close()
		record(err)
		return
	}
	if err := f.Close(); err != nil {
		record(err)
	}
}

// artifactName maps a free-form system or kernel name onto a portable
// file-name fragment.
func artifactName(s string) string {
	var b strings.Builder
	b.Grow(len(s))
	for _, r := range s {
		ok := r == '.' || r == '_' || r == '-' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || (r >= '0' && r <= '9')
		if ok {
			b.WriteRune(r)
		} else {
			b.WriteByte('-')
		}
	}
	if b.Len() == 0 {
		return "unnamed"
	}
	return b.String()
}

// newCellRecord fills the simulation-result half of a cell record.
func newCellRecord(system, spec, kernel string, res sim.Result, runErr error) CellRecord {
	rec := CellRecord{
		System: system, Spec: spec, Kernel: kernel,
	}
	if runErr != nil {
		rec.Err = runErr.Error()
		return rec
	}
	rec.SequentialPS = uint64(res.Sequential)
	rec.ParallelPS = uint64(res.Parallel)
	rec.CommunicationPS = uint64(res.Communication)
	rec.TotalPS = uint64(res.Total())
	rec.CommShare = res.CommFraction()
	rec.PageFaults = res.PageFaults
	rec.OwnershipOps = res.OwnershipOps
	return rec
}
