package harness

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// WriteCSV exports a sweep's cells as CSV (one row per system x kernel)
// for external plotting: system, kernel, the three time categories in
// nanoseconds, the total, and the communication share.
func WriteCSV(w io.Writer, cells []Cell) error {
	cw := csv.NewWriter(w)
	header := []string{
		"system", "kernel",
		"sequential_ns", "parallel_ns", "communication_ns", "total_ns",
		"comm_share", "page_faults", "ownership_ops",
	}
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("harness: writing csv header: %w", err)
	}
	for _, c := range cells {
		r := c.Result
		row := []string{
			c.System,
			c.Kernel,
			fmt.Sprintf("%.3f", r.Sequential.Nanoseconds()),
			fmt.Sprintf("%.3f", r.Parallel.Nanoseconds()),
			fmt.Sprintf("%.3f", r.Communication.Nanoseconds()),
			fmt.Sprintf("%.3f", r.Total().Nanoseconds()),
			strconv.FormatFloat(r.CommFraction(), 'f', 6, 64),
			strconv.Itoa(r.PageFaults),
			strconv.Itoa(r.OwnershipOps),
		}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("harness: writing csv row: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}
