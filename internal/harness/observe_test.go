package harness

import (
	"bufio"
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"heteromem/internal/obs"
	"heteromem/internal/sim"
	"heteromem/internal/systems"
)

// ledgerLines decodes every JSONL line of a ledger buffer.
func ledgerLines(t *testing.T, buf *bytes.Buffer) []map[string]any {
	t.Helper()
	var out []map[string]any
	sc := bufio.NewScanner(bytes.NewReader(buf.Bytes()))
	for sc.Scan() {
		var m map[string]any
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			t.Fatalf("bad ledger line %q: %v", sc.Text(), err)
		}
		out = append(out, m)
	}
	return out
}

func TestObservedSweepLedger(t *testing.T) {
	var buf bytes.Buffer
	led := obs.NewLedger(&buf)
	tracer := obs.NewTracer()
	o := &Observer{Name: "test-sweep", Ledger: led, Trace: tracer, HostProfEvery: 4}
	sysList := systems.CaseStudies()[:2]
	kernels := QuickKernels()

	cells, err := Executor{Par: 2, Obs: o}.RunSystems(sysList, kernels)
	if err != nil {
		t.Fatal(err)
	}
	if err := led.Close(); err != nil {
		t.Fatal(err)
	}
	if err := o.Err(); err != nil {
		t.Fatal(err)
	}
	n := len(sysList) * len(kernels)
	if len(cells) != n {
		t.Fatalf("got %d cells, want %d", len(cells), n)
	}

	lines := ledgerLines(t, &buf)
	var cellRecs, sweepSpans, pointSpans, kernelSpans, phaseSpans int
	wantSpec := map[string]string{}
	for _, s := range sysList {
		wantSpec[s.Name] = systems.Hash(s)
	}
	seen := map[string]bool{}
	for _, m := range lines {
		switch m["t"] {
		case "cell":
			cellRecs++
			sys, kernel := m["system"].(string), m["kernel"].(string)
			key := sys + "/" + kernel
			if seen[key] {
				t.Errorf("duplicate cell record for %s", key)
			}
			seen[key] = true
			if m["spec"] != wantSpec[sys] {
				t.Errorf("cell %s: spec %v, want %s", key, m["spec"], wantSpec[sys])
			}
			if m["total_ps"] == nil || m["total_ps"].(float64) <= 0 {
				t.Errorf("cell %s: missing total_ps", key)
			}
			if m["wall_ns"] == nil || m["wall_ns"].(float64) <= 0 {
				t.Errorf("cell %s: missing wall_ns", key)
			}
			if _, ok := m["queue_wait_ns"]; !ok {
				t.Errorf("cell %s: missing queue_wait_ns", key)
			}
			if m["span"] == nil {
				t.Errorf("cell %s: not linked to a span", key)
			}
		case "span":
			switch m["kind"] {
			case "sweep":
				sweepSpans++
				if m["name"] != "test-sweep" {
					t.Errorf("sweep span named %v", m["name"])
				}
			case "point":
				pointSpans++
			case "kernel":
				kernelSpans++
			case "phase":
				phaseSpans++
			}
		}
	}
	if cellRecs != n {
		t.Errorf("%d cell records, want %d", cellRecs, n)
	}
	if sweepSpans != 1 || pointSpans != len(sysList) || kernelSpans != n {
		t.Errorf("spans sweep=%d point=%d kernel=%d, want 1/%d/%d",
			sweepSpans, pointSpans, kernelSpans, len(sysList), n)
	}
	if phaseSpans == 0 {
		t.Error("no phase spans: simulator run spans not wired")
	}

	prog := o.Progress()
	if prog.Done != n || prog.Total != n || prog.Failed != 0 {
		t.Errorf("progress %+v, want done=total=%d failed=0", prog, n)
	}
	if len(prog.Workers) != 2 {
		t.Errorf("%d workers in progress, want 2", len(prog.Workers))
	}

	snap := o.Metrics()
	if snap.Counters["sweep.cells.done"] != uint64(n) {
		t.Errorf("sweep.cells.done = %d, want %d", snap.Counters["sweep.cells.done"], n)
	}
	var simCounters, hostCounters int
	for name, v := range snap.Counters {
		if strings.HasPrefix(name, "sweep.") {
			continue
		}
		if strings.HasPrefix(name, "host.") {
			hostCounters++
		}
		if v > 0 {
			simCounters++
		}
	}
	if simCounters == 0 {
		t.Error("aggregate snapshot has no nonzero simulator counters")
	}
	if hostCounters == 0 {
		t.Error("aggregate snapshot has no host.* self-profiling counters")
	}

	if tracer.Len() < n {
		t.Errorf("tracer has %d events, want at least one per cell (%d)", tracer.Len(), n)
	}
}

// The observed sweep must return exactly the same simulation results as
// an unobserved one: observability reads time, never simulated state.
func TestObservedSweepMatchesPlain(t *testing.T) {
	sysList := systems.CaseStudies()[:2]
	kernels := QuickKernels()
	plain, err := Executor{Par: 2}.RunSystems(sysList, kernels)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	o := &Observer{Ledger: obs.NewLedger(&buf), HostProfEvery: 1}
	observed, err := Executor{Par: 2, Obs: o}.RunSystems(sysList, kernels)
	if err != nil {
		t.Fatal(err)
	}
	if len(plain) != len(observed) {
		t.Fatalf("cell count mismatch %d vs %d", len(plain), len(observed))
	}
	for i := range plain {
		if plain[i] != observed[i] {
			t.Errorf("cell %d diverged under observation:\n got %+v\nwant %+v", i, observed[i], plain[i])
		}
	}
}

func TestObservedSweepIntervalCSVs(t *testing.T) {
	dir := t.TempDir()
	o := &Observer{IntervalPS: 1_000_000_000, IntervalDir: dir} // 1ms epochs
	sysList := systems.CaseStudies()[:1]
	kernels := []string{"reduction"}
	if _, err := (Executor{Par: 1, Obs: o}).RunSystems(sysList, kernels); err != nil {
		t.Fatal(err)
	}
	if err := o.Err(); err != nil {
		t.Fatal(err)
	}
	matches, err := filepath.Glob(filepath.Join(dir, "*.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) != 1 {
		t.Fatalf("got %d interval CSVs, want 1 (%v)", len(matches), matches)
	}
	data, err := os.ReadFile(matches[0])
	if err != nil {
		t.Fatal(err)
	}
	if lines := bytes.Count(data, []byte("\n")); lines < 2 {
		t.Errorf("interval CSV has %d lines, want header plus epochs", lines)
	}
}

func TestNilObserverIsNoop(t *testing.T) {
	var o *Observer
	o.begin(1, 1, nil)
	span := o.beginCell(0, "s", "spec", "k", "kernel")
	o.endCell(0, span, CellRecord{}, obs.Snapshot{}, time.Time{}, time.Time{})
	o.cachedCell("s", "spec", "k", sim.Result{}, 0, time.Time{})
	o.finish()
	if err := o.Err(); err != nil {
		t.Fatal(err)
	}
	if p := o.Progress(); p.Total != 0 {
		t.Error("nil observer progress not zero")
	}
	if s := o.Metrics(); len(s.Counters) != 0 {
		t.Error("nil observer metrics not empty")
	}
}
