package harness

import (
	"strings"
	"testing"
)

func TestTransferSensitivitySweep(t *testing.T) {
	points, err := RunTransferSensitivity("reduction", []float64{0.25, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2*5 {
		t.Fatalf("points = %d, want 10", len(points))
	}

	comm := func(scale float64, system string) float64 {
		for _, pt := range points {
			if pt.Scale == scale && pt.System == system {
				return pt.Result.CommFraction()
			}
		}
		t.Fatalf("missing point %v/%s", scale, system)
		return 0
	}
	// Growing the transfer volume grows the PCI-E system's communication
	// share.
	if comm(4, "CPU+GPU") <= comm(0.25, "CPU+GPU") {
		t.Errorf("CPU+GPU comm share did not grow with volume: %v vs %v",
			comm(0.25, "CPU+GPU"), comm(4, "CPU+GPU"))
	}
	// IDEAL stays at zero regardless.
	if comm(4, "IDEAL-HETERO") != 0 {
		t.Error("ideal system gained communication")
	}
	// At large volumes the PCI-E system is hit harder than Fusion: the
	// gap widens with scale.
	gapSmall := comm(0.25, "CPU+GPU") - comm(0.25, "Fusion")
	gapLarge := comm(4, "CPU+GPU") - comm(4, "Fusion")
	if gapLarge <= gapSmall {
		t.Errorf("PCI-E vs memctrl gap did not widen: %v -> %v", gapSmall, gapLarge)
	}
}

func TestRenderSensitivity(t *testing.T) {
	points, err := RunTransferSensitivity("merge-sort", []float64{1})
	if err != nil {
		t.Fatal(err)
	}
	out := RenderSensitivity("merge-sort", points)
	for _, want := range []string{"merge-sort", "1x", "CPU+GPU", "Slowdown over IDEAL-HETERO", "1.000x"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestSensitivityUnknownKernel(t *testing.T) {
	if _, err := RunTransferSensitivity("nope", []float64{1}); err == nil {
		t.Fatal("unknown kernel accepted")
	}
}

func TestSensitivityBadScale(t *testing.T) {
	if _, err := RunTransferSensitivity("reduction", []float64{0}); err == nil {
		t.Fatal("zero scale accepted")
	}
}
