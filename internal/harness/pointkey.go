package harness

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"heteromem/internal/rescache"
	"heteromem/internal/sim"
	"heteromem/internal/systems"
	"heteromem/internal/trace"
	"heteromem/internal/workload"
)

// PointKey derives the exact result-cache key for simulating program p
// on sys with options opts: the canonical design-point hash
// (systems.Hash covers model, fabric, protocol, granularity, params,
// mem-tech and translation), the kernel identity, the workload's
// generated shape, and a fingerprint of the result-affecting simulator
// options. Two cells share a key iff they are bit-identically the same
// simulation, which PR 2's Reset() bit-identity proof makes an exact
// memoization key: a deterministic simulator maps equal keys to equal
// results.
func PointKey(sys systems.System, p *workload.Program, opts sim.Options) rescache.Key {
	return rescache.Key{
		Spec:     systems.Hash(sys),
		Kernel:   p.Name,
		Workload: WorkloadFingerprint(p),
		Options:  optionsFingerprint(opts),
	}
}

// phaseFP pins one phase's shape. Generator-backed compute phases are
// identified by their instruction counts (the generators are
// deterministic functions of the kernel name, which the fingerprint also
// carries); materialized phases hash their full instruction streams, so
// a hand-loaded program file with the same name and counts but different
// instructions still keys differently.
type phaseFP struct {
	Kind      string `json:"kind"`
	CPUInsts  int    `json:"cpu,omitempty"`
	GPUInsts  int    `json:"gpu,omitempty"`
	CPUStream string `json:"cpu_sha,omitempty"`
	GPUStream string `json:"gpu_sha,omitempty"`
	Dir       string `json:"dir,omitempty"`
	Bytes     uint64 `json:"bytes,omitempty"`
	Addr      uint64 `json:"addr,omitempty"`
}

// objectFP pins one data object of the program's locality plan.
type objectFP struct {
	Addr     uint64 `json:"addr"`
	Size     uint32 `json:"size"`
	Region   int    `json:"region"`
	User     int    `json:"user"`
	Critical bool   `json:"critical,omitempty"`
}

type workloadFP struct {
	Name    string     `json:"name"`
	Pattern string     `json:"pattern"`
	Phases  []phaseFP  `json:"phases"`
	Objects []objectFP `json:"objects,omitempty"`
}

// WorkloadFingerprint returns a canonical content hash of the program's
// identity: name, pattern, every phase's kind and shape (with full
// stream hashes for materialized phases), and the locality objects. It
// is the Workload component of PointKey.
func WorkloadFingerprint(p *workload.Program) string {
	fp := workloadFP{Name: p.Name, Pattern: p.Pattern}
	for i := range p.Phases {
		ph := &p.Phases[i]
		e := phaseFP{Kind: ph.Kind.String()}
		switch ph.Kind {
		case workload.Transfer:
			e.Dir = ph.Dir.String()
			e.Bytes = ph.Bytes
			e.Addr = ph.Addr
		default:
			e.CPUInsts = ph.CPULen()
			e.GPUInsts = ph.GPULen()
			if len(ph.CPU) > 0 {
				e.CPUStream = streamDigest(ph.CPU)
			}
			if len(ph.GPU) > 0 {
				e.GPUStream = streamDigest(ph.GPU)
			}
		}
		fp.Phases = append(fp.Phases, e)
	}
	for _, o := range p.Objects {
		fp.Objects = append(fp.Objects, objectFP{
			Addr: o.Addr, Size: o.Size, Region: int(o.Region),
			User: int(o.User), Critical: o.Critical,
		})
	}
	data, err := json.Marshal(fp)
	if err != nil {
		panic("harness: marshaling workload fingerprint: " + err.Error())
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}

// streamDigest hashes a materialized trace stream via its canonical
// binary encoding.
func streamDigest(s trace.Stream) string {
	h := sha256.New()
	if err := trace.Write(h, s); err != nil {
		panic("harness: hashing trace stream: " + err.Error())
	}
	return hex.EncodeToString(h.Sum(nil))
}

// optionsFingerprint reduces the result-affecting sim.Options to a
// canonical string. The baseline configuration (no overrides) maps to
// "", so sweep keys stay stable as new option axes appear. Arena,
// Metrics, Sampler, Tracer, HostProf and Publish never change results
// (pinned by the observability equivalence tests) and are excluded.
func optionsFingerprint(opts sim.Options) string {
	var parts []string
	if opts.Hierarchy != nil {
		data, err := json.Marshal(opts.Hierarchy)
		if err != nil {
			panic("harness: marshaling hierarchy override: " + err.Error())
		}
		sum := sha256.Sum256(data)
		parts = append(parts, "hier:"+hex.EncodeToString(sum[:8]))
	}
	if opts.DisableCoalescing {
		parts = append(parts, "nocoalesce")
	}
	if opts.Locality != nil {
		parts = append(parts, "loc:"+opts.Locality.Name())
	}
	if len(parts) == 0 {
		return ""
	}
	out := parts[0]
	for _, p := range parts[1:] {
		out += "," + p
	}
	return out
}

// verifySampled reports whether a cache hit on key is selected for
// re-simulation at the given sampling fraction. Selection is
// deterministic — it hashes the key, not a random draw — so a given
// fraction always verifies the same stable subset of the design space
// and a re-run reproduces any mismatch it finds.
func verifySampled(key rescache.Key, fraction float64) bool {
	if fraction <= 0 {
		return false
	}
	if fraction >= 1 {
		return true
	}
	d := key.Digest()
	var v uint64
	for i := 0; i < 8; i++ {
		v = v<<8 | uint64(hexByte(d[2*i], d[2*i+1]))
	}
	return float64(v)/float64(1<<64) < fraction
}

func hexByte(hi, lo byte) byte {
	return byte(hexNibble(hi)<<4 | hexNibble(lo))
}

func hexNibble(c byte) int {
	if c >= 'a' {
		return int(c-'a') + 10
	}
	return int(c - '0')
}

// ErrCacheMismatch is wrapped by verification failures, so callers can
// distinguish the determinism tripwire from ordinary simulation errors.
var ErrCacheMismatch = fmt.Errorf("rescache: cached result differs from re-simulation")
