package harness

import (
	"fmt"
	"strings"

	"heteromem/internal/report"
	"heteromem/internal/sim"
	"heteromem/internal/systems"
	"heteromem/internal/workload"
)

// SensitivityPoint is one (scale, system) measurement of the
// transfer-volume sweep.
type SensitivityPoint struct {
	Scale  float64
	System string
	Result sim.Result
}

// RunTransferSensitivity sweeps the kernel's communication volume over
// the given scale factors across the five case-study systems. It shows
// where the crossovers fall: at small volumes the fixed PCI-E latency
// dominates; at large volumes the 16 GB/s link rate does, and the gap to
// the memory-controller path keeps widening.
func RunTransferSensitivity(kernel string, scales []float64) ([]SensitivityPoint, error) {
	base, err := internProgram(kernel)
	if err != nil {
		return nil, err
	}
	var out []SensitivityPoint
	for _, scale := range scales {
		p, err := workload.ScaleTransfers(base, scale)
		if err != nil {
			return nil, err
		}
		for _, sys := range systems.CaseStudies() {
			s, err := sim.New(sys)
			if err != nil {
				return nil, err
			}
			res, err := s.Run(p)
			if err != nil {
				return nil, err
			}
			out = append(out, SensitivityPoint{Scale: scale, System: sys.Name, Result: res})
		}
	}
	return out, nil
}

// RenderSensitivity renders the sweep as communication share per system
// and scale.
func RenderSensitivity(kernel string, points []SensitivityPoint) string {
	scales := []float64{}
	seenScale := map[float64]bool{}
	sysNames := []string{}
	seenSys := map[string]bool{}
	byKey := map[string]SensitivityPoint{}
	key := func(scale float64, system string) string {
		return fmt.Sprintf("%g/%s", scale, system)
	}
	for _, pt := range points {
		if !seenScale[pt.Scale] {
			seenScale[pt.Scale] = true
			scales = append(scales, pt.Scale)
		}
		if !seenSys[pt.System] {
			seenSys[pt.System] = true
			sysNames = append(sysNames, pt.System)
		}
		byKey[key(pt.Scale, pt.System)] = pt
	}

	var b strings.Builder
	fmt.Fprintf(&b, "Transfer-volume sensitivity: %s (communication share of total time)\n\n", kernel)
	tbl := report.Table{Headers: append([]string{"transfer scale"}, sysNames...)}
	for _, scale := range scales {
		row := []interface{}{fmt.Sprintf("%gx", scale)}
		for _, sys := range sysNames {
			pt := byKey[key(scale, sys)]
			row = append(row, report.Pct(pt.Result.CommFraction()))
		}
		tbl.AddRow(row...)
	}
	b.WriteString(tbl.String())

	// Slowdown over IDEAL-HETERO at each scale: the crossover view.
	b.WriteString("\nSlowdown over IDEAL-HETERO\n")
	tbl2 := report.Table{Headers: append([]string{"transfer scale"}, sysNames...)}
	for _, scale := range scales {
		ideal := byKey[key(scale, "IDEAL-HETERO")]
		row := []interface{}{fmt.Sprintf("%gx", scale)}
		for _, sys := range sysNames {
			pt := byKey[key(scale, sys)]
			slow := float64(pt.Result.Total()) / float64(ideal.Result.Total())
			row = append(row, fmt.Sprintf("%.3fx", slow))
		}
		tbl2.AddRow(row...)
	}
	b.WriteString(tbl2.String())
	return b.String()
}
