package harness_test

import (
	"testing"

	"heteromem/internal/addrspace"
	"heteromem/internal/harness"
	"heteromem/internal/systems"
)

// TestGridPointsRun drives every coherent point of the example design
// grid through the sweep executor: each must construct, run the
// reduction kernel and produce a nonzero breakdown.
func TestGridPointsRun(t *testing.T) {
	g, err := systems.LoadGridFile("../../examples/systems/grid.json")
	if err != nil {
		t.Fatal(err)
	}
	points, skipped := g.Enumerate()
	if len(points) < 24 {
		t.Fatalf("grid spans %d points, want >= 24 (%d skipped)", len(points), skipped)
	}
	exec := harness.Executor{Par: 4}
	cells, err := exec.RunSystems(points, []string{"reduction"})
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != len(points) {
		t.Fatalf("cells = %d, want one per point (%d)", len(cells), len(points))
	}
	for _, c := range cells {
		if c.Result.Total() == 0 {
			t.Errorf("%s: zero total", c.System)
		}
		if c.Result.Parallel == 0 {
			t.Errorf("%s: zero parallel time", c.System)
		}
	}
}

// TestForModelPointsRun covers the Figure 7 systems through the same
// declarative path: each per-model design point runs and completes.
func TestForModelPointsRun(t *testing.T) {
	var points []systems.System
	for _, m := range addrspace.AllModels() {
		points = append(points, systems.ForModel(m))
	}
	cells, err := (harness.Executor{Par: 2}).RunSystems(points, []string{"reduction"})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range cells {
		if c.Result.Total() == 0 {
			t.Errorf("%s: zero total", c.System)
		}
	}
}
