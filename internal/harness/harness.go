// Package harness drives the paper's experiments end to end: it runs the
// simulator over the case-study systems and kernels and renders every
// table and figure of the evaluation section. The hetsweep command, the
// repository benchmarks and the examples all call into this package so
// the numbers they print come from one place.
package harness

import (
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"time"

	"heteromem/internal/addrspace"
	"heteromem/internal/arena"
	"heteromem/internal/clock"
	"heteromem/internal/codegen"
	"heteromem/internal/config"
	"heteromem/internal/energy"
	"heteromem/internal/locality"
	"heteromem/internal/mem"
	"heteromem/internal/obs"
	"heteromem/internal/report"
	"heteromem/internal/rescache"
	"heteromem/internal/sim"
	"heteromem/internal/systems"
	"heteromem/internal/workload"
)

// Cell is one (system, kernel) measurement.
type Cell struct {
	System string
	Kernel string
	Result sim.Result
}

// DefaultKernels returns every Table III kernel name.
func DefaultKernels() []string { return workload.Names() }

// QuickKernels returns the subset small enough for fast runs (tests,
// examples): everything but the two multi-million-instruction kernels.
func QuickKernels() []string {
	return []string{"reduction", "convolution", "merge-sort"}
}

// RunCaseStudies simulates the five Figure 5 systems over the named
// kernels with the default executor.
func RunCaseStudies(kernels []string) ([]Cell, error) {
	return Executor{}.RunCaseStudies(kernels)
}

// RunAddressSpaces simulates the four Figure 7 configurations (each
// address-space model with ideal communication and the shared cache)
// with the default executor.
func RunAddressSpaces(kernels []string) ([]Cell, error) {
	return Executor{}.RunAddressSpaces(kernels)
}

// Executor runs sweep cells on a fixed-size worker pool. Workers stream
// cells from a shared queue, and each worker owns one pooled simulator
// per system, Reset between cells — so a sweep allocates per (worker,
// system), not per cell, and never has more goroutines than workers.
type Executor struct {
	// Par is the number of workers; zero or negative means GOMAXPROCS.
	Par int
	// Obs, when non-nil, observes the sweep: run-ledger cell records,
	// hierarchical spans, live progress, aggregated metrics, worker
	// traces, per-cell interval sampling. Nil keeps the sweep fully
	// uninstrumented.
	Obs *Observer
	// Cache, when non-nil, memoizes cells through the content-addressed
	// result cache: every cell is probed up front, hits are served
	// without touching a simulator (the pooled simulators are never
	// built for an all-hit sweep), and only misses are dispatched to
	// the worker pool, which fills the cache as it completes them.
	// Determinism makes the cache exact — see internal/rescache.
	Cache *rescache.Store
	// CacheVerify, in (0, 1], re-simulates that fraction of cache hits
	// and fails the sweep loudly if a cached result differs from the
	// fresh simulation — the determinism tripwire. Sampling is
	// deterministic per key. Zero disables verification; ignored
	// without Cache.
	CacheVerify float64
}

// RunCaseStudies simulates the five Figure 5 systems over the named
// kernels.
func (e Executor) RunCaseStudies(kernels []string) ([]Cell, error) {
	return e.RunSystems(systems.CaseStudies(), kernels)
}

// RunAddressSpaces simulates the four Figure 7 configurations.
func (e Executor) RunAddressSpaces(kernels []string) ([]Cell, error) {
	var sysList []systems.System
	for _, m := range addrspace.AllModels() {
		sysList = append(sysList, systems.ForModel(m))
	}
	return e.RunSystems(sysList, kernels)
}

// RunSystems measures every (kernel, system) cell. Each cell is an
// independent simulation (a pooled simulator is Reset to cold between
// cells, which is bit-identical to a fresh one), so results are
// deterministic and returned in kernel-major, system-minor order
// regardless of scheduling. All failing cells are reported, each with
// its kernel/system context.
//
// With a Cache attached, the executor schedules cache-aware: all cells
// are probed before the worker pool starts, hits are materialized
// immediately (recorded as cached cells in the ledger), and only misses
// — plus the deterministically sampled verification subset of the hits
// — go through the pool.
func (e Executor) RunSystems(sysList []systems.System, kernels []string) ([]Cell, error) {
	programs := make([]*workload.Program, len(kernels))
	for i, kernel := range kernels {
		p, err := internProgram(kernel)
		if err != nil {
			return nil, err
		}
		programs[i] = p
	}

	n := len(kernels) * len(sysList)
	obsv := e.Obs
	specs := make([]string, len(sysList))
	if obsv != nil || e.Cache != nil {
		for i, sys := range sysList {
			specs[i] = systems.Hash(sys)
		}
	}

	type job struct {
		ki, si  int
		enqueue time.Time
		// verify re-simulates a cell already served from the cache and
		// compares against the cached result instead of storing it.
		verify bool
	}
	cells := make([]Cell, n)
	errs := make([]error, n) // disjoint slots; no mutex needed

	// Cache probe phase: resolve every hit before the pool spins up, so
	// a warm sweep never constructs a simulator. pending collects the
	// jobs that still need a worker (misses, and hits sampled for
	// verification); hits remembers what to report to the observer once
	// it has begun.
	type hit struct {
		ki, si  int
		probeNS int64
		at      time.Time
	}
	var keys []rescache.Key
	var pending []job
	var hits []hit
	if e.Cache != nil {
		keys = make([]rescache.Key, n)
		fps := make([]string, len(programs))
		for i, p := range programs {
			fps[i] = WorkloadFingerprint(p)
		}
		for ki, p := range programs {
			for si := range sysList {
				idx := ki*len(sysList) + si
				keys[idx] = rescache.Key{Spec: specs[si], Kernel: p.Name, Workload: fps[ki]}
				at := time.Now()
				res, ok := e.Cache.Get(keys[idx])
				if !ok {
					pending = append(pending, job{ki: ki, si: si})
					continue
				}
				// The hash is name-invariant: a differently-named file for
				// the same point hits, so restamp the cell's own labels.
				res.System, res.Kernel = sysList[si].Name, p.Name
				cells[idx] = Cell{System: sysList[si].Name, Kernel: p.Name, Result: res}
				hits = append(hits, hit{ki: ki, si: si, probeNS: int64(time.Since(at)), at: at})
				if verifySampled(keys[idx], e.CacheVerify) {
					pending = append(pending, job{ki: ki, si: si, verify: true})
				}
			}
		}
	} else {
		pending = make([]job, 0, n)
		for ki := range programs {
			for si := range sysList {
				pending = append(pending, job{ki: ki, si: si})
			}
		}
	}

	workers := e.Par
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(pending) {
		workers = len(pending)
	}

	// The queue is buffered to hold the whole sweep: the producer never
	// blocks, so a job's enqueue instant is its true ready time and
	// queue wait measures worker backlog, not producer pacing.
	jobs := make(chan job, len(pending))
	obsv.begin(n, workers, e.Cache)
	for _, h := range hits {
		si := h.si
		obsv.cachedCell(sysList[si].Name, specs[si], programs[h.ki].Name,
			cells[h.ki*len(sysList)+si].Result, h.probeNS, h.at)
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// One pooled simulator per system, created on first use and
			// Reset between this worker's cells. Construction metadata
			// (cache arrays, MSHR files, core rings) comes out of one
			// per-worker arena, so building the pool costs a handful of
			// slab allocations; the arena is dropped with the pool when
			// the worker exits and is never Reset while the pool lives.
			ar := arena.New()
			sims := make([]*sim.Simulator, len(sysList))
			if obsv == nil {
				// Uninstrumented worker loop, kept separate from the
				// observed one so an unobserved sweep (the benchmarks)
				// executes exactly the pre-observability body.
				for j := range jobs {
					idx := j.ki*len(sysList) + j.si
					p, sys := programs[j.ki], sysList[j.si]
					s := sims[j.si]
					if s == nil {
						var err error
						if s, err = sim.NewWithOptions(sys, sim.Options{Arena: ar}); err != nil {
							errs[idx] = fmt.Errorf("%s on %s: %w", p.Name, sys.Name, err)
							continue
						}
						sims[j.si] = s
					} else {
						s.Reset()
					}
					res, err := s.Run(p)
					if err != nil {
						errs[idx] = fmt.Errorf("%s on %s: %w", p.Name, sys.Name, err)
						continue
					}
					if j.verify {
						if res != cells[idx].Result {
							errs[idx] = fmt.Errorf("%s on %s: %w (key %s)",
								p.Name, sys.Name, ErrCacheMismatch, keys[idx].Digest())
						}
						continue
					}
					// (miss) fill the cache before publishing the cell.
					if e.Cache != nil {
						// Write failures degrade to memory-only; the store
						// latches them for the CLI to surface as a warning.
						_ = e.Cache.Put(keys[idx], res)
					}
					cells[idx] = Cell{System: sys.Name, Kernel: p.Name, Result: res}
				}
				return
			}
			// Observability state is per worker: one registry (and
			// optional host profiler / interval sampler) shared by the
			// worker's pooled simulators, reset before every cell so each
			// post-run snapshot covers exactly that cell.
			reg := obs.NewRegistry()
			var hp *obs.HostProf
			var sampler *obs.Sampler
			if obsv.HostProfEvery > 0 {
				hp = obs.NewHostProf(obsv.HostProfEvery)
			}
			if obsv.IntervalPS > 0 {
				sampler = obs.NewSampler(reg, obsv.IntervalPS)
			}
			for j := range jobs {
				idx := j.ki*len(sysList) + j.si
				p, sys := programs[j.ki], sysList[j.si]
				kind := "kernel"
				if j.verify {
					kind = "verify"
				}
				span := obsv.beginCell(w, sys.Name, specs[j.si], p.Name, kind)
				started := time.Now()
				s := sims[j.si]
				if s == nil {
					var err error
					s, err = sim.NewWithOptions(sys, sim.Options{
						Metrics: reg, HostProf: hp, Sampler: sampler, Arena: ar,
					})
					if err != nil {
						errs[idx] = fmt.Errorf("%s on %s: %w", p.Name, sys.Name, err)
						obsv.endCell(w, span, newCellRecord(sys.Name, specs[j.si], p.Name, sim.Result{}, err),
							obs.Snapshot{}, j.enqueue, started)
						continue
					}
					sims[j.si] = s
				} else {
					s.Reset()
				}
				reg.Reset()
				sampler.Reset()
				s.SetRunSpan(span)
				res, err := s.Run(p)
				s.SetRunSpan(nil)
				if j.verify && err == nil && res != cells[idx].Result {
					err = fmt.Errorf("%w (key %s)", ErrCacheMismatch, keys[idx].Digest())
				}
				rec := newCellRecord(sys.Name, specs[j.si], p.Name, res, err)
				rec.Verify = j.verify
				obsv.endCell(w, span, rec, reg.Snapshot(), j.enqueue, started)
				obsv.writeIntervalCSV(sys.Name, p.Name, sampler)
				if err != nil {
					errs[idx] = fmt.Errorf("%s on %s: %w", p.Name, sys.Name, err)
					continue
				}
				if j.verify {
					continue
				}
				if e.Cache != nil {
					_ = e.Cache.Put(keys[idx], res)
				}
				cells[idx] = Cell{System: sys.Name, Kernel: p.Name, Result: res}
			}
		}(w)
	}
	for _, j := range pending {
		j.enqueue = time.Now()
		jobs <- j
	}
	close(jobs)
	wg.Wait()
	obsv.finish()

	if err := errors.Join(errs...); err != nil {
		return nil, err
	}
	return cells, nil
}

// baseline returns the cell for the named system within one kernel's
// group, used as the normalisation denominator.
func baseline(cells []Cell, kernel, system string) (Cell, bool) {
	for _, c := range cells {
		if c.Kernel == kernel && c.System == system {
			return c, true
		}
	}
	return Cell{}, false
}

func kernelsOf(cells []Cell) []string {
	var out []string
	seen := map[string]bool{}
	for _, c := range cells {
		if !seen[c.Kernel] {
			seen[c.Kernel] = true
			out = append(out, c.Kernel)
		}
	}
	return out
}

// RenderFigure5 renders the execution-time breakdown (sequential /
// parallel / communication), normalised per kernel to the CPU+GPU
// system, as Figure 5 plots it.
func RenderFigure5(cells []Cell) string {
	var b strings.Builder
	b.WriteString("Figure 5: execution time breakdown (normalised to CPU+GPU; s=sequential p=parallel c=communication)\n\n")
	for _, kernel := range kernelsOf(cells) {
		base, ok := baseline(cells, kernel, "CPU+GPU")
		if !ok {
			base = Cell{Result: cells[0].Result}
		}
		tbl := report.Table{
			Title:   kernel,
			Headers: []string{"system", "seq", "par", "comm", "total", "breakdown"},
		}
		for _, c := range cells {
			if c.Kernel != kernel {
				continue
			}
			seq, par, com := c.Result.Normalized(base.Result)
			tbl.AddRow(
				c.System,
				report.F3(seq), report.F3(par), report.F3(com), report.F3(seq+par+com),
				report.StackedBar([]float64{seq, par, com}, []rune{'s', 'p', 'c'}, 40),
			)
		}
		b.WriteString(tbl.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// RenderFigure6 renders communication overhead only (Figure 6).
func RenderFigure6(cells []Cell) string {
	var b strings.Builder
	b.WriteString("Figure 6: communication overhead\n\n")
	for _, kernel := range kernelsOf(cells) {
		var maxComm clock.Duration
		for _, c := range cells {
			if c.Kernel == kernel && c.Result.Communication > maxComm {
				maxComm = c.Result.Communication
			}
		}
		tbl := report.Table{
			Title:   kernel,
			Headers: []string{"system", "comm", "share", "relative"},
		}
		for _, c := range cells {
			if c.Kernel != kernel {
				continue
			}
			rel := 0.0
			if maxComm > 0 {
				rel = float64(c.Result.Communication) / float64(maxComm)
			}
			tbl.AddRow(
				c.System,
				report.Dur(c.Result.Communication),
				report.Pct(c.Result.CommFraction()),
				report.Bar(rel, 30),
			)
		}
		b.WriteString(tbl.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// RenderFigure7 renders the address-space comparison under ideal
// communication (Figure 7), normalised per kernel to the unified model.
func RenderFigure7(cells []Cell) string {
	var b strings.Builder
	b.WriteString("Figure 7: memory address space design options, ideal communication (normalised to unified)\n\n")
	tbl := report.Table{Headers: []string{"kernel", "UNI", "DIS", "PAS", "ADSM", "max delta"}}
	for _, kernel := range kernelsOf(cells) {
		vals := map[string]float64{}
		var base float64
		for _, c := range cells {
			if c.Kernel != kernel {
				continue
			}
			vals[c.System] = float64(c.Result.Total())
			if c.System == "ideal-unified" {
				base = float64(c.Result.Total())
			}
		}
		if base == 0 {
			continue
		}
		uni := vals["ideal-unified"] / base
		dis := vals["ideal-disjoint"] / base
		pas := vals["ideal-partially-shared"] / base
		adsm := vals["ideal-adsm"] / base
		maxd := 0.0
		for _, v := range []float64{uni, dis, pas, adsm} {
			if d := v - 1; d > maxd {
				maxd = d
			}
			if d := 1 - v; d > maxd {
				maxd = d
			}
		}
		tbl.AddRow(kernel, report.F3(uni), report.F3(dis), report.F3(pas), report.F3(adsm), report.Pct(maxd))
	}
	b.WriteString(tbl.String())
	return b.String()
}

// RenderTable1 renders the Table I survey.
func RenderTable1() string {
	tbl := report.Table{
		Title: "Table I: summary of heterogeneous computing memory systems",
		Headers: []string{"scheme", "address space", "connection", "coherence",
			"shared data", "consistency", "synchronization", "locality"},
	}
	for _, e := range systems.TableI() {
		tbl.AddRow(e.Scheme, e.AddressSpace, e.Connection, e.Coherence,
			e.SharedDataUse, e.Consistency, e.Synchronization, e.Locality)
	}
	f := systems.Findings()
	return tbl.String() + fmt.Sprintf(
		"\n%d systems: %d disjoint, %d unified, %d partially shared, %d ADSM; fully-coherent strong-consistent unified: %d\n",
		f.Total, f.Disjoint, f.Unified, f.PartiallyShared, f.ADSM, f.FullyCoherentUnified)
}

// RenderTable2 renders the baseline configuration (Table II).
func RenderTable2() string {
	cpu := config.BaselineCPU()
	gpu := config.BaselineGPU()
	m := mem.TableII()
	tbl := report.Table{
		Title:   "Table II: baseline system configuration",
		Headers: []string{"component", "CPU", "GPU"},
	}
	tbl.AddRow("cores", 1, 1)
	tbl.AddRow("execution engine",
		fmt.Sprintf("%.1fGHz out-of-order (%d-wide, ROB %d)", cpu.FreqMHz/1000, cpu.IssueWidth, cpu.ROBSize),
		fmt.Sprintf("%.1fGHz in-order %d-wide SIMD", gpu.FreqMHz/1000, gpu.SIMDWidth))
	tbl.AddRow("branch predictor",
		fmt.Sprintf("gshare (2^%d entries)", cpu.PredictorTableBits),
		"N/A (stall on branch)")
	tbl.AddRow("L1 D-cache",
		fmt.Sprintf("%d-way %dKB (%v)", m.CPUL1D.Ways, m.CPUL1D.SizeBytes>>10, m.CPUL1DLat),
		fmt.Sprintf("%d-way %dKB (%v)", m.GPUL1D.Ways, m.GPUL1D.SizeBytes>>10, m.GPUL1DLat))
	tbl.AddRow("software-managed cache", "-", fmt.Sprintf("%dKB (%v)", m.SWCacheBytes>>10, m.SWCacheLat))
	tbl.AddRow("L2", fmt.Sprintf("%d-way %dKB (%v)", m.CPUL2.Ways, m.CPUL2.SizeBytes>>10, m.CPUL2Lat), "N/A")
	tbl.AddRow("L3 (shared)",
		fmt.Sprintf("%d-way %dMB, %d tiles (%v)", m.L3Tile.Ways, m.L3Tiles*m.L3Tile.SizeBytes>>20, m.L3Tiles, m.L3Lat), "")
	tbl.AddRow("interconnection", "ring-bus network", "")
	tbl.AddRow("DRAM",
		fmt.Sprintf("DDR3-1333, %d controllers, %.1fGB/s, FR-FCFS", m.DRAM.Channels, m.DRAM.PeakBandwidthGBs()), "")
	return tbl.String()
}

// RenderTable3 renders the benchmark characteristics, checking the
// generated programs against the published values.
func RenderTable3() string {
	tbl := report.Table{
		Title:   "Table III: benchmark characteristics (generated vs paper)",
		Headers: []string{"name", "pattern", "CPU insts", "GPU insts", "serial", "#comm", "initial transfer (B)", "matches paper"},
	}
	paper := workload.TableIII()
	for i, p := range workload.All() {
		c := p.Characteristics()
		match := c == paper[i]
		tbl.AddRow(c.Name, c.Pattern, c.CPUInsts, c.GPUInsts, c.SerialInsts, c.Comms, c.InitialTransferBytes, match)
	}
	return tbl.String()
}

// RenderTable4 renders the communication modeling parameters.
func RenderTable4() string {
	p := config.TableIV()
	tbl := report.Table{
		Title:   "Table IV: communication overhead modeling parameters",
		Headers: []string{"name", "description", "system", "latency"},
	}
	tbl.AddRow("api-pci", "mem copy using PCI-E", "CPU+GPU, GMAC", fmt.Sprintf("%d + bytes@%.0fGB/s", p.APIPCICycles, p.PCIRateGBs))
	tbl.AddRow("api-acq", "acquire action", "LRB", p.APIAcqCycles)
	tbl.AddRow("api-tr", "data transfer", "LRB", fmt.Sprintf("%d + bytes@%.0fGB/s", p.APITrCycles, p.PCIRateGBs))
	tbl.AddRow("lib-pf", "page fault", "LRB", p.LibPFCycles)
	return tbl.String()
}

// RenderTable5 renders the programmability study, generated vs paper.
func RenderTable5() string {
	tbl := report.Table{
		Title:   "Table V: source lines to handle data communication",
		Headers: []string{"kernel", "Comp", "UNI", "PAS", "DIS", "ADSM", "matches paper"},
	}
	paper := codegen.PaperTableV()
	for i, r := range codegen.TableV() {
		tbl.AddRow(r.Kernel, r.Comp, r.UNI, r.PAS, r.DIS, r.ADSM, r == paper[i])
	}
	return tbl.String()
}

// RenderEnergy renders the estimated energy breakdown per system for each
// kernel in the sweep — the paper's power/energy motivation quantified.
func RenderEnergy(cells []Cell) string {
	var b strings.Builder
	b.WriteString("Energy breakdown (nJ, event-energy model; see internal/energy)\n\n")
	for _, kernel := range kernelsOf(cells) {
		tbl := report.Table{
			Title:   kernel,
			Headers: []string{"system", "cores", "caches", "dram", "noc", "comm", "total"},
		}
		for _, c := range cells {
			if c.Kernel != kernel {
				continue
			}
			e := energy.EstimateDefault(c.Result)
			tbl.AddRow(c.System,
				fmt.Sprintf("%.0f", e.Cores), fmt.Sprintf("%.0f", e.Caches),
				fmt.Sprintf("%.0f", e.DRAM), fmt.Sprintf("%.0f", e.Interconnect),
				fmt.Sprintf("%.0f", e.Communication), fmt.Sprintf("%.0f", e.Total()))
		}
		b.WriteString(tbl.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// RenderLocalityOptions renders the locality-management option counts per
// address-space model (conclusion 3).
func RenderLocalityOptions() string {
	tbl := report.Table{
		Title:   "Locality management options per address space (Section II-B)",
		Headers: []string{"model", "well-formed", "desirable", "schemes"},
	}
	for _, m := range addrspace.AllModels() {
		opts := locality.DesirableOptions(m)
		var names []string
		for _, s := range opts {
			names = append(names, s.Name())
		}
		preview := strings.Join(names, ", ")
		if len(preview) > 70 {
			preview = preview[:67] + "..."
		}
		tbl.AddRow(m, len(locality.Options(m)), len(opts), preview)
	}
	return tbl.String()
}
