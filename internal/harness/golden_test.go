package harness_test

import (
	"flag"
	"os"
	"path/filepath"
	"testing"

	"heteromem/internal/harness"
)

// update regenerates the golden files from the current implementation:
//
//	go test ./internal/harness -run TestGolden -update
var update = flag.Bool("update", false, "rewrite golden files under testdata/")

// goldenRenderings returns every rendering the sweep produces, keyed by
// golden-file name. Figures 5/6 run the five case-study systems and
// Figure 7 the four ideal-communication address-space models, all over
// the quick kernel set; Tables I-V are static renderings.
func goldenRenderings(t *testing.T) map[string]string {
	t.Helper()
	cases, err := harness.RunCaseStudies(harness.QuickKernels())
	if err != nil {
		t.Fatalf("RunCaseStudies: %v", err)
	}
	spaces, err := harness.RunAddressSpaces(harness.QuickKernels())
	if err != nil {
		t.Fatalf("RunAddressSpaces: %v", err)
	}
	return map[string]string{
		"figure5.txt": harness.RenderFigure5(cases),
		"figure6.txt": harness.RenderFigure6(cases),
		"figure7.txt": harness.RenderFigure7(spaces),
		"table1.txt":  harness.RenderTable1(),
		"table2.txt":  harness.RenderTable2(),
		"table3.txt":  harness.RenderTable3(),
		"table4.txt":  harness.RenderTable4(),
		"table5.txt":  harness.RenderTable5(),
	}
}

// TestGolden pins every figure and table rendering byte for byte. It is
// the equivalence check behind memory-path refactors: any change to the
// simulated latencies or to the report formatting shows up as a diff
// against testdata/.
func TestGolden(t *testing.T) {
	got := goldenRenderings(t)
	for name, text := range got {
		path := filepath.Join("testdata", name)
		if *update {
			if err := os.MkdirAll("testdata", 0o755); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, []byte(text), 0o644); err != nil {
				t.Fatal(err)
			}
			continue
		}
		want, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("missing golden file %s (run with -update): %v", path, err)
		}
		if text != string(want) {
			t.Errorf("%s differs from golden file %s:\n--- got ---\n%s\n--- want ---\n%s",
				name, path, text, want)
		}
	}
}
