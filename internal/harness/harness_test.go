package harness

import (
	"strings"
	"sync"
	"testing"
)

// The case-study sweep over the quick kernels is the expensive part;
// share it across tests.
var quickCells = sync.OnceValues(func() ([]Cell, error) {
	return RunCaseStudies(QuickKernels())
})

func TestRunCaseStudiesShape(t *testing.T) {
	cells, err := quickCells()
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 5*len(QuickKernels()) {
		t.Fatalf("cells = %d, want %d", len(cells), 5*len(QuickKernels()))
	}
	for _, c := range cells {
		if c.Result.Total() == 0 {
			t.Errorf("%s/%s: zero total", c.System, c.Kernel)
		}
	}
}

func TestRenderFigure5(t *testing.T) {
	cells, err := quickCells()
	if err != nil {
		t.Fatal(err)
	}
	out := RenderFigure5(cells)
	for _, want := range []string{"Figure 5", "CPU+GPU", "LRB", "GMAC", "Fusion", "IDEAL-HETERO", "reduction"} {
		if !strings.Contains(out, want) {
			t.Errorf("Figure 5 output missing %q", want)
		}
	}
	// CPU+GPU normalises to 1.000 against itself.
	if !strings.Contains(out, "1.000") {
		t.Error("no normalised 1.000 row")
	}
}

func TestRenderFigure6(t *testing.T) {
	cells, err := quickCells()
	if err != nil {
		t.Fatal(err)
	}
	out := RenderFigure6(cells)
	if !strings.Contains(out, "Figure 6") || !strings.Contains(out, "comm") {
		t.Error("Figure 6 output malformed")
	}
	// IDEAL shows zero communication.
	if !strings.Contains(out, "0ps") {
		t.Error("no zero-communication row for IDEAL")
	}
}

func TestFigure7NearIdentical(t *testing.T) {
	cells, err := RunAddressSpaces([]string{"reduction"})
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 4 {
		t.Fatalf("cells = %d, want 4 models", len(cells))
	}
	out := RenderFigure7(cells)
	if !strings.Contains(out, "Figure 7") || !strings.Contains(out, "UNI") {
		t.Error("Figure 7 output malformed")
	}
	// All normalised values round to 1.000 (sub-1% deltas).
	if strings.Count(out, "1.000") < 4 {
		t.Errorf("address spaces not near-identical:\n%s", out)
	}
}

func TestRenderTables(t *testing.T) {
	cases := []struct {
		name string
		out  string
		want []string
	}{
		{"table1", RenderTable1(), []string{"Table I", "GMAC", "ADSM", "13 systems", "strong-consistent unified: 0"}},
		{"table2", RenderTable2(), []string{"Table II", "3.5GHz", "1.5GHz", "gshare", "ring-bus", "DDR3-1333", "FR-FCFS"}},
		{"table3", RenderTable3(), []string{"Table III", "reduction", "8585229", "320512", "true"}},
		{"table4", RenderTable4(), []string{"Table IV", "api-pci", "33250", "42000"}},
		{"table5", RenderTable5(), []string{"Table V", "410", "matrix-mul", "true"}},
		{"locality", RenderLocalityOptions(), []string{"partially-shared", "12"}},
	}
	for _, c := range cases {
		for _, w := range c.want {
			if !strings.Contains(c.out, w) {
				t.Errorf("%s output missing %q:\n%s", c.name, w, c.out)
			}
		}
		if strings.Contains(c.out, "false") {
			t.Errorf("%s reports a paper mismatch:\n%s", c.name, c.out)
		}
	}
}

func TestRenderEnergy(t *testing.T) {
	cells, err := quickCells()
	if err != nil {
		t.Fatal(err)
	}
	out := RenderEnergy(cells)
	for _, want := range []string{"Energy breakdown", "cores", "dram", "CPU+GPU", "IDEAL-HETERO"} {
		if !strings.Contains(out, want) {
			t.Errorf("energy output missing %q", want)
		}
	}
}

func TestWriteCSV(t *testing.T) {
	cells, err := quickCells()
	if err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if err := WriteCSV(&buf, cells); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 1+len(cells) {
		t.Fatalf("csv lines = %d, want %d", len(lines), 1+len(cells))
	}
	if !strings.HasPrefix(lines[0], "system,kernel,sequential_ns") {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.Contains(out, "CPU+GPU,reduction") {
		t.Error("missing data row")
	}
}

func TestDefaultAndQuickKernels(t *testing.T) {
	if len(DefaultKernels()) != 6 {
		t.Errorf("default kernels = %v", DefaultKernels())
	}
	for _, q := range QuickKernels() {
		found := false
		for _, d := range DefaultKernels() {
			if q == d {
				found = true
			}
		}
		if !found {
			t.Errorf("quick kernel %q not in default set", q)
		}
	}
}
