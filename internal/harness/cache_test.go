package harness

import (
	"bytes"
	"errors"
	"sync"
	"testing"

	"heteromem/internal/obs"
	"heteromem/internal/rescache"
	"heteromem/internal/sim"
	"heteromem/internal/systems"
)

// TestExecutorCacheColdWarm is the heart of the PR: a cold sweep fills
// the cache, and a warm re-run — through a fresh store on the same
// directory, so even the memory tier starts cold — serves every cell
// from disk and returns bit-identical cells.
func TestExecutorCacheColdWarm(t *testing.T) {
	dir := t.TempDir()
	sysList := systems.CaseStudies()[:3]
	kernels := QuickKernels()
	n := len(sysList) * len(kernels)

	cold, err := rescache.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	cells1, err := Executor{Par: 2, Cache: cold}.RunSystems(sysList, kernels)
	if err != nil {
		t.Fatal(err)
	}
	if st := cold.Stats(); st.Hits != 0 || st.Misses != uint64(n) || st.Puts != uint64(n) {
		t.Fatalf("cold stats = %+v, want %d misses and puts", st, n)
	}

	warm, err := rescache.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	cells2, err := Executor{Par: 2, Cache: warm}.RunSystems(sysList, kernels)
	if err != nil {
		t.Fatal(err)
	}
	if st := warm.Stats(); st.Hits != uint64(n) || st.Misses != 0 || st.DiskHits != uint64(n) {
		t.Fatalf("warm stats = %+v, want %d disk hits", st, n)
	}
	if len(cells1) != len(cells2) {
		t.Fatalf("cold %d cells, warm %d", len(cells1), len(cells2))
	}
	for i := range cells1 {
		if cells1[i] != cells2[i] {
			t.Fatalf("cell %d differs:\ncold %+v\nwarm %+v", i, cells1[i], cells2[i])
		}
	}
	if err := cold.Err(); err != nil {
		t.Fatal(err)
	}
}

// TestExecutorCacheVerifyPasses re-simulates every hit (CacheVerify: 1)
// against an honestly filled cache: determinism says nothing can
// mismatch.
func TestExecutorCacheVerifyPasses(t *testing.T) {
	sysList := systems.CaseStudies()[:2]
	kernels := []string{"reduction"}
	cache, err := rescache.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := (Executor{Par: 2, Cache: cache}).RunSystems(sysList, kernels); err != nil {
		t.Fatal(err)
	}
	if _, err := (Executor{Par: 2, Cache: cache, CacheVerify: 1}).RunSystems(sysList, kernels); err != nil {
		t.Fatalf("verify of an honest cache failed: %v", err)
	}
}

// TestExecutorCacheVerifyCatchesPoison poisons one cache entry and runs
// with full verification: the sweep must fail with ErrCacheMismatch
// rather than silently serving the wrong result.
func TestExecutorCacheVerifyCatchesPoison(t *testing.T) {
	sysList := systems.CaseStudies()[:2]
	kernels := []string{"reduction"}
	cache, err := rescache.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := (Executor{Par: 2, Cache: cache}).RunSystems(sysList, kernels); err != nil {
		t.Fatal(err)
	}

	p, err := internProgram("reduction")
	if err != nil {
		t.Fatal(err)
	}
	key := PointKey(sysList[0], p, sim.Options{})
	poisoned, ok := cache.Get(key)
	if !ok {
		t.Fatal("expected the poisoned cell to be cached")
	}
	poisoned.Sequential += 12345
	if err := cache.Put(key, poisoned); err != nil {
		t.Fatal(err)
	}

	_, err = Executor{Par: 2, Cache: cache, CacheVerify: 1}.RunSystems(sysList, kernels)
	if err == nil {
		t.Fatal("poisoned cache passed verification")
	}
	if !errors.Is(err, ErrCacheMismatch) {
		t.Fatalf("error does not wrap ErrCacheMismatch: %v", err)
	}
}

// TestCachedCellLedger checks the observability of a warm sweep: cached
// cells appear in the ledger with cached:true, worker -1, a nonzero
// nanosecond wall clock even though they complete in microseconds (the
// sub-ms precision satellite), and the progress/metrics documents carry
// the cache counters.
func TestCachedCellLedger(t *testing.T) {
	dir := t.TempDir()
	sysList := systems.CaseStudies()[:2]
	kernels := []string{"reduction"}
	n := len(sysList) * len(kernels)

	cold, err := rescache.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := (Executor{Par: 2, Cache: cold}).RunSystems(sysList, kernels); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	led := obs.NewLedger(&buf)
	o := &Observer{Name: "warm", Ledger: led, Trace: obs.NewTracer()}
	warm, err := rescache.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := (Executor{Par: 2, Obs: o, Cache: warm, CacheVerify: 1}).RunSystems(sysList, kernels); err != nil {
		t.Fatal(err)
	}
	if err := led.Close(); err != nil {
		t.Fatal(err)
	}
	if err := o.Err(); err != nil {
		t.Fatal(err)
	}

	var cached, verified int
	for _, m := range ledgerLines(t, &buf) {
		if m["t"] != "cell" {
			continue
		}
		if m["cached"] == true {
			cached++
			if m["worker"].(float64) != -1 {
				t.Fatalf("cached cell ran on worker %v", m["worker"])
			}
			// Serving a hit takes microseconds; the ledger must still
			// resolve it (wall_ns is integer nanoseconds, never coarser).
			if w, ok := m["wall_ns"].(float64); !ok || w <= 0 {
				t.Fatalf("cached cell wall_ns = %v, want > 0", m["wall_ns"])
			}
		}
		if m["verify"] == true {
			verified++
			if m["cached"] == true {
				t.Fatal("a cell is both cached and a verify re-run")
			}
		}
	}
	if cached != n || verified != n {
		t.Fatalf("ledger has %d cached and %d verify cells, want %d each", cached, verified, n)
	}

	prog := o.Progress()
	if !prog.CacheOn || prog.CachedCells != n || prog.VerifiedCells != n {
		t.Fatalf("progress = %+v, want cache on with %d cached and verified", prog, n)
	}
	if prog.CacheHitRate != 1 {
		t.Fatalf("progress hit rate = %v, want 1", prog.CacheHitRate)
	}
	if prog.Done != prog.Total {
		t.Fatalf("progress done %d != total %d", prog.Done, prog.Total)
	}

	counters := o.Metrics().Counters
	if counters["rescache.hits"] != uint64(n) || counters["rescache.misses"] != 0 {
		t.Fatalf("metrics counters = %v", counters)
	}
	if counters["sweep.cells.cached"] != uint64(n) || counters["sweep.cells.verified"] != uint64(n) {
		t.Fatalf("metrics counters = %v", counters)
	}
}

// TestConcurrentExecutorsShareStore races two sweeps over one store
// (run under -race in CI): workers Put the same keys concurrently and
// both sweeps must return the same cells with a clean store.
func TestConcurrentExecutorsShareStore(t *testing.T) {
	cache, err := rescache.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	sysList := systems.CaseStudies()[:2]
	kernels := []string{"reduction", "convolution"}

	var wg sync.WaitGroup
	out := make([][]Cell, 2)
	errs := make([]error, 2)
	for i := range out {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			out[i], errs[i] = Executor{Par: 2, Cache: cache}.RunSystems(sysList, kernels)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("sweep %d: %v", i, err)
		}
	}
	if len(out[0]) != len(out[1]) {
		t.Fatalf("sweeps returned %d and %d cells", len(out[0]), len(out[1]))
	}
	for i := range out[0] {
		if out[0][i] != out[1][i] {
			t.Fatalf("cell %d differs between racing sweeps", i)
		}
	}
	if err := cache.Err(); err != nil {
		t.Fatal(err)
	}
	if st := cache.Stats(); st.Corrupt != 0 {
		t.Fatalf("racing sweeps left %d corrupt entries", st.Corrupt)
	}
}

// TestVerifySampledDeterministic pins the sampling function: stable per
// key, monotone in the fraction at the boundaries.
func TestVerifySampledDeterministic(t *testing.T) {
	k := rescache.Key{Spec: "s", Kernel: "k", Workload: "w"}
	if verifySampled(k, 0) {
		t.Fatal("fraction 0 selected a key")
	}
	if !verifySampled(k, 1) {
		t.Fatal("fraction 1 rejected a key")
	}
	got := verifySampled(k, 0.5)
	for i := 0; i < 10; i++ {
		if verifySampled(k, 0.5) != got {
			t.Fatal("sampling is not deterministic")
		}
	}
	// Over many keys, a 0.5 fraction should select roughly half — and
	// exactly the same subset on every pass.
	selected := 0
	for i := 0; i < 200; i++ {
		ki := rescache.Key{Spec: "s", Kernel: "k", Workload: string(rune('a' + i%26)), Options: string(rune(i))}
		if verifySampled(ki, 0.5) {
			selected++
		}
	}
	if selected < 60 || selected > 140 {
		t.Fatalf("0.5 fraction selected %d/200 keys", selected)
	}
}

// TestWorkloadFingerprintDistinguishes pins that the fingerprint reacts
// to what it must: materialized streams, transfer shape, and objects.
func TestWorkloadFingerprintDistinguishes(t *testing.T) {
	p1, err := internProgram("reduction")
	if err != nil {
		t.Fatal(err)
	}
	p2, err := internProgram("convolution")
	if err != nil {
		t.Fatal(err)
	}
	if WorkloadFingerprint(p1) != WorkloadFingerprint(p1) {
		t.Fatal("fingerprint is not stable")
	}
	if WorkloadFingerprint(p1) == WorkloadFingerprint(p2) {
		t.Fatal("different kernels share a fingerprint")
	}
}
