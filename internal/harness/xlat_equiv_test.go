package harness_test

import (
	"os"
	"path/filepath"
	"testing"

	"heteromem/internal/harness"
	"heteromem/internal/systems"
	"heteromem/internal/xlat"
)

// TestTranslationDisabledEquivalence is the translation front-end's
// correctness anchor: with the axis off (the zero Spec every committed
// system file carries), the full case-study sweep must reproduce the
// committed Figure 5/6 goldens byte for byte. It never regenerates the
// goldens — no -update path — so it can only pass if the disabled
// translation slot leaves the access path exactly as it was before the
// front-end existed.
func TestTranslationDisabledEquivalence(t *testing.T) {
	sysList := systems.CaseStudies()
	for _, s := range sysList {
		if !s.Translation.IsZero() {
			t.Fatalf("%s: case study carries a translation spec", s.Name)
		}
	}
	cells, err := harness.Executor{}.RunSystems(sysList, harness.QuickKernels())
	if err != nil {
		t.Fatal(err)
	}
	for name, text := range map[string]string{
		"figure5.txt": harness.RenderFigure5(cells),
		"figure6.txt": harness.RenderFigure6(cells),
	} {
		want, err := os.ReadFile(filepath.Join("testdata", name))
		if err != nil {
			t.Fatalf("missing committed golden %s: %v", name, err)
		}
		if text != string(want) {
			t.Errorf("translation-off diverges from the pre-axis %s golden:\n--- got ---\n%s\n--- want ---\n%s",
				name, text, want)
		}
	}
}

// Every translation preset must change the breakdown (the axis is real,
// not cosmetic) and label the result, while keeping the sweep shape.
func TestTranslationAxisChangesResults(t *testing.T) {
	kernels := []string{"reduction"}
	base, err := harness.Executor{}.RunSystems(systems.CaseStudies()[:1], kernels)
	if err != nil {
		t.Fatal(err)
	}
	if got := base[0].Result.Translation; got != "off" {
		t.Fatalf("baseline result labeled %q", got)
	}
	for _, preset := range xlat.Presets() {
		if preset == "off" {
			continue
		}
		spec := xlat.MustParsePreset(preset)
		cells, err := harness.Executor{}.RunSystems(
			systems.CaseStudiesWithTranslation(spec)[:1], kernels)
		if err != nil {
			t.Fatalf("%s: %v", preset, err)
		}
		if got := cells[0].Result.Translation; got != spec.Label() {
			t.Errorf("%s: result labeled %q, want %q", preset, got, spec.Label())
		}
		if cells[0].Result.Total() == base[0].Result.Total() {
			t.Errorf("%s: total identical to translation-off baseline (%v) — front-end not on the path",
				preset, base[0].Result.Total())
		}
	}
}
