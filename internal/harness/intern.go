package harness

import (
	"sync"

	"heteromem/internal/workload"
)

// programs interns one immutable streaming Program per kernel for the
// lifetime of the process. An opened program is read-only — compute
// phases carry generator parameters, and every replay draws a fresh
// cursor — so a single interned instance is safely shared by all sweep
// workers and repeated sweeps, instead of re-synthesising multi-million
// instruction traces per RunSystems call.
var programs sync.Map // kernel name -> *workload.Program

// internProgram returns the shared streaming program for the kernel.
func internProgram(kernel string) (*workload.Program, error) {
	if p, ok := programs.Load(kernel); ok {
		return p.(*workload.Program), nil
	}
	p, err := workload.Open(kernel)
	if err != nil {
		return nil, err
	}
	// A racing worker may have stored first; both built identical
	// programs, keep whichever won.
	actual, _ := programs.LoadOrStore(kernel, p)
	return actual.(*workload.Program), nil
}
