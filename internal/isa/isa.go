// Package isa defines the trace instruction set understood by the
// simulator cores. It is not a real machine ISA: like MacSim's trace
// format, it captures the dynamic instruction classes whose timing
// matters to a memory-system study (ALU vs. floating point vs. memory vs.
// branch), plus the paper's special instructions that model library and
// operating-system effects (Section IV-C, Table IV) and explicit locality
// control (push, Section II-B).
package isa

import "fmt"

// Kind classifies a dynamic trace instruction.
type Kind uint8

// Compute, control and memory instruction kinds. The SIMD variants are
// executed by the GPU's 8-wide datapath: one SIMD instruction performs
// the operation on every active lane.
const (
	// Nop performs no work; used for padding and testing.
	Nop Kind = iota
	// ALU is integer arithmetic/logic (1-cycle on both PUs).
	ALU
	// Mul is integer multiply.
	Mul
	// Div is integer divide.
	Div
	// FP is floating-point arithmetic.
	FP
	// FDiv is floating-point divide/sqrt.
	FDiv
	// Load reads memory through the data-cache hierarchy.
	Load
	// Store writes memory through the data-cache hierarchy.
	Store
	// Branch is a conditional branch. The CPU predicts it with gshare; the
	// GPU has no predictor and stalls until the branch resolves (Table II:
	// "stall on branch").
	Branch
	// SIMDALU is an 8-wide integer operation (GPU only).
	SIMDALU
	// SIMDFP is an 8-wide floating-point operation (GPU only).
	SIMDFP
	// SIMDLoad is an 8-wide gather; consecutive lane addresses coalesce
	// into cache-line requests.
	SIMDLoad
	// SIMDStore is an 8-wide scatter.
	SIMDStore
	// SWLoad reads the GPU's software-managed cache (fixed latency, never
	// misses; data must have been placed there by an explicit push).
	SWLoad
	// SWStore writes the GPU's software-managed cache.
	SWStore
	// Barrier is an intra-PU synchronisation point: the core drains all
	// outstanding memory operations before proceeding.
	Barrier
)

// Special instructions modeling programming-model and library effects.
// Their execution latency comes from config.CommParams (Table IV), not
// from the latency table below.
const (
	// APIPCI models a memory copy API using PCI-E (api-pci): latency
	// 33250 cycles plus transfer bytes at the PCI-E 2.0 rate. Used by the
	// CPU+GPU(CUDA) and GMAC systems.
	APIPCI Kind = iota + 64
	// APIAcquire models an ownership-acquire action in the partially
	// shared space (api-acq, LRB): 1000 cycles.
	APIAcquire
	// APIRelease models an ownership-release action; the paper folds its
	// cost into api-acq, so it uses the same latency class.
	APIRelease
	// APITransfer models a data-transfer function into/out of the
	// partially shared space (api-tr, LRB): 7000 cycles.
	APITransfer
	// LibPageFault models the library cost of handling a page fault on
	// first touch of shared data (lib-pf, LRB): 42000 cycles.
	LibPageFault
	// Push explicitly places data into a chosen level of the cache
	// hierarchy (the paper's push locality-control statement).
	Push
)

// NumKinds is one past the largest Kind value, for sizing count arrays.
const NumKinds = int(Push) + 1

var kindNames = map[Kind]string{
	Nop: "nop", ALU: "alu", Mul: "mul", Div: "div", FP: "fp", FDiv: "fdiv",
	Load: "load", Store: "store", Branch: "branch",
	SIMDALU: "simd.alu", SIMDFP: "simd.fp", SIMDLoad: "simd.load", SIMDStore: "simd.store",
	SWLoad: "sw.load", SWStore: "sw.store", Barrier: "barrier",
	APIPCI: "api-pci", APIAcquire: "api-acq", APIRelease: "api-rel",
	APITransfer: "api-tr", LibPageFault: "lib-pf", Push: "push",
}

func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// AllKinds returns every defined instruction kind in ascending order,
// for exhaustive tests and count tables.
func AllKinds() []Kind {
	return []Kind{
		Nop, ALU, Mul, Div, FP, FDiv, Load, Store, Branch,
		SIMDALU, SIMDFP, SIMDLoad, SIMDStore, SWLoad, SWStore, Barrier,
		APIPCI, APIAcquire, APIRelease, APITransfer, LibPageFault, Push,
	}
}

// Valid reports whether k is a defined instruction kind.
func (k Kind) Valid() bool {
	_, ok := kindNames[k]
	return ok
}

// IsMem reports whether k accesses the data-cache hierarchy.
func (k Kind) IsMem() bool {
	switch k {
	case Load, Store, SIMDLoad, SIMDStore:
		return true
	}
	return false
}

// IsLoad reports whether k reads memory (hierarchy or software-managed).
func (k Kind) IsLoad() bool {
	switch k {
	case Load, SIMDLoad, SWLoad:
		return true
	}
	return false
}

// IsStore reports whether k writes memory (hierarchy or software-managed).
func (k Kind) IsStore() bool {
	switch k {
	case Store, SIMDStore, SWStore:
		return true
	}
	return false
}

// IsSIMD reports whether k is an 8-wide GPU operation.
func (k Kind) IsSIMD() bool {
	switch k {
	case SIMDALU, SIMDFP, SIMDLoad, SIMDStore:
		return true
	}
	return false
}

// IsComm reports whether k is a special communication/library-effect
// instruction whose latency is a Table IV parameter.
func (k Kind) IsComm() bool {
	switch k {
	case APIPCI, APIAcquire, APIRelease, APITransfer, LibPageFault:
		return true
	}
	return false
}

// IsSoftwareCache reports whether k targets the GPU's software-managed
// cache rather than the hardware hierarchy.
func (k Kind) IsSoftwareCache() bool { return k == SWLoad || k == SWStore }

// CoreLocal reports whether executing k touches only the issuing core's
// private state: no data-cache hierarchy (IsMem), no software-managed
// cache (whose misses spill into the hierarchy), no communication fabric
// (IsComm), no explicit placement (Push). A trace consisting solely of
// core-local instructions cannot observe or disturb anything outside its
// own core, which is the property the simulator's certified parallel
// phase execution relies on (see sim.runParallel).
func (k Kind) CoreLocal() bool {
	return !(k.IsMem() || k.IsSoftwareCache() || k.IsComm() || k == Push)
}

// ExecLatency returns the fixed execution latency in core cycles for
// compute instructions. Memory and communication instructions return 0
// here because their latency is determined by the memory system or the
// communication fabric, respectively.
func (k Kind) ExecLatency() uint64 {
	switch k {
	case Nop, Barrier, Push:
		return 1
	case ALU, SIMDALU, Branch:
		return 1
	case Mul:
		return 3
	case FP, SIMDFP:
		return 4
	case Div:
		return 20
	case FDiv:
		return 24
	default:
		return 0
	}
}
