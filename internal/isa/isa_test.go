package isa

import (
	"strings"
	"testing"
)

func TestKindStrings(t *testing.T) {
	cases := []struct {
		k    Kind
		want string
	}{
		{ALU, "alu"},
		{SIMDLoad, "simd.load"},
		{APIPCI, "api-pci"},
		{APIAcquire, "api-acq"},
		{APITransfer, "api-tr"},
		{LibPageFault, "lib-pf"},
		{Push, "push"},
	}
	for _, c := range cases {
		if got := c.k.String(); got != c.want {
			t.Errorf("%d.String() = %q, want %q", c.k, got, c.want)
		}
	}
	if !strings.Contains(Kind(200).String(), "200") {
		t.Error("unknown kind should print its number")
	}
}

func TestValid(t *testing.T) {
	for _, k := range AllKinds() {
		if !k.Valid() {
			t.Errorf("%v reported invalid", k)
		}
	}
	if Kind(200).Valid() {
		t.Error("kind 200 reported valid")
	}
	if Kind(30).Valid() {
		t.Error("gap kind 30 reported valid")
	}
}

func TestClassification(t *testing.T) {
	if !Load.IsMem() || !SIMDStore.IsMem() {
		t.Error("Load/SIMDStore must be memory ops")
	}
	if SWLoad.IsMem() {
		t.Error("SWLoad must not hit the hardware hierarchy")
	}
	if !SWLoad.IsSoftwareCache() || !SWStore.IsSoftwareCache() {
		t.Error("SWLoad/SWStore are software-cache ops")
	}
	if !Load.IsLoad() || !SWLoad.IsLoad() || Store.IsLoad() {
		t.Error("IsLoad misclassified")
	}
	if !Store.IsStore() || !SWStore.IsStore() || Load.IsStore() {
		t.Error("IsStore misclassified")
	}
	if !SIMDALU.IsSIMD() || ALU.IsSIMD() {
		t.Error("IsSIMD misclassified")
	}
	for _, k := range []Kind{APIPCI, APIAcquire, APIRelease, APITransfer, LibPageFault} {
		if !k.IsComm() {
			t.Errorf("%v should be a communication instruction", k)
		}
	}
	if Push.IsComm() {
		t.Error("push is locality control, not communication")
	}
}

func TestExecLatency(t *testing.T) {
	if ALU.ExecLatency() != 1 {
		t.Error("ALU latency != 1")
	}
	if FP.ExecLatency() != 4 {
		t.Error("FP latency != 4")
	}
	if Div.ExecLatency() <= Mul.ExecLatency() {
		t.Error("Div should be slower than Mul")
	}
	// Memory and comm instructions defer to the memory system / fabric.
	for _, k := range []Kind{Load, Store, SIMDLoad, APIPCI, LibPageFault} {
		if k.ExecLatency() != 0 {
			t.Errorf("%v should have no fixed exec latency", k)
		}
	}
}

func TestKindSetsDisjoint(t *testing.T) {
	for _, k := range AllKinds() {
		n := 0
		if k.IsMem() {
			n++
		}
		if k.IsComm() {
			n++
		}
		if k.IsSoftwareCache() {
			n++
		}
		if n > 1 {
			t.Errorf("%v belongs to more than one of mem/comm/swcache", k)
		}
	}
}
