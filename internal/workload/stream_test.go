package workload

import (
	"testing"

	"heteromem/internal/trace"
)

// drainEqual walks src and checks it delivers exactly want,
// instruction for instruction.
func drainEqual(t *testing.T, label string, src trace.Source, want trace.Stream) {
	t.Helper()
	if src.Len() != len(want) {
		t.Fatalf("%s: Len = %d, want %d", label, src.Len(), len(want))
	}
	for i, w := range want {
		got, ok := src.Next()
		if !ok {
			t.Fatalf("%s: source ended at %d of %d", label, i, len(want))
		}
		if got != w {
			t.Fatalf("%s: inst %d = %+v, want %+v", label, i, got, w)
		}
	}
	if _, ok := src.Next(); ok {
		t.Fatalf("%s: source over-delivered past %d", label, len(want))
	}
}

// TestOpenMatchesGenerate pins the streaming path to the materialized
// one: for every kernel, every phase's Source delivers the identical
// instruction sequence Generate produces — the property the golden
// figures rely on when the simulator replays streams directly.
func TestOpenMatchesGenerate(t *testing.T) {
	for _, name := range Names() {
		t.Run(name, func(t *testing.T) {
			mat := MustGenerate(name)
			str := MustOpen(name)
			if len(mat.Phases) != len(str.Phases) {
				t.Fatalf("phase count: open %d, generate %d", len(str.Phases), len(mat.Phases))
			}
			if str.TotalInstructions() != mat.TotalInstructions() {
				t.Fatalf("total insts: open %d, generate %d", str.TotalInstructions(), mat.TotalInstructions())
			}
			if got, want := str.Characteristics(), mat.Characteristics(); got != want {
				t.Fatalf("characteristics: open %+v, generate %+v", got, want)
			}
			for i := range mat.Phases {
				mph, sph := &mat.Phases[i], &str.Phases[i]
				drainEqual(t, "cpu", sph.CPUSource(), mph.CPU)
				drainEqual(t, "gpu", sph.GPUSource(), mph.GPU)
			}
		})
	}
}

// TestSourceResetReplaysIdentically checks the restartability contract:
// after a partial or full pass, Reset rewinds a generator-backed source
// to the exact same sequence.
func TestSourceResetReplaysIdentically(t *testing.T) {
	p := MustOpen("convolution")
	for i := range p.Phases {
		ph := &p.Phases[i]
		if ph.Kind == Transfer {
			continue
		}
		src := ph.CPUSource()
		first := trace.Materialize(src)
		// Partial pass, then rewind.
		src.Reset()
		for j := 0; j < 1000; j++ {
			src.Next()
		}
		src.Reset()
		second := trace.Materialize(src)
		if len(first) != len(second) {
			t.Fatalf("phase %d: replay length %d != %d", i, len(second), len(first))
		}
		for j := range first {
			if first[j] != second[j] {
				t.Fatalf("phase %d inst %d: %+v != %+v after Reset", i, j, second[j], first[j])
			}
		}
	}
}

// TestSourcesAreIndependent checks that two sources from one shared
// phase do not perturb each other — the property program interning in
// the sweep harness relies on.
func TestSourcesAreIndependent(t *testing.T) {
	p := MustOpen("reduction")
	ph := &p.Phases[1] // parallel phase
	a, b := ph.CPUSource(), ph.CPUSource()
	av, aok := a.Next()
	for i := 0; i < 100; i++ {
		b.Next()
	}
	bv, _ := b.Next()
	a2, _ := a.Next()
	if !aok {
		t.Fatal("first Next failed")
	}
	if av == a2 {
		t.Fatal("source a did not advance")
	}
	// Walking b must not have skipped a ahead: a's second pull matches
	// the materialized stream's second instruction.
	want := trace.Materialize(ph.CPUSource())
	if av != want[0] || a2 != want[1] {
		t.Fatalf("interleaved pulls diverged: got %+v,%+v want %+v,%+v", av, a2, want[0], want[1])
	}
	_ = bv
}
