package workload

import "fmt"

// ScaleTransfers returns a copy of the program whose transfer phases
// move factor times the bytes (rounded up to one byte). Compute phases
// are shared with the original (they are read-only to the simulator), so
// scaling is cheap even for multi-million-instruction kernels.
//
// Transfer scaling drives sensitivity studies: as the communication
// volume grows relative to fixed compute, the gap between PCI-E-based
// systems and memory-controller or ideal communication widens, moving
// the crossover points between designs.
func ScaleTransfers(p *Program, factor float64) (*Program, error) {
	if factor <= 0 {
		return nil, fmt.Errorf("workload: non-positive transfer scale %v", factor)
	}
	out := &Program{
		Name:    p.Name,
		Pattern: p.Pattern,
		Phases:  make([]Phase, len(p.Phases)),
		Objects: p.Objects,
	}
	copy(out.Phases, p.Phases)
	for i := range out.Phases {
		if out.Phases[i].Kind != Transfer {
			continue
		}
		b := uint64(float64(out.Phases[i].Bytes) * factor)
		if b == 0 {
			b = 1
		}
		out.Phases[i].Bytes = b
	}
	return out, nil
}
