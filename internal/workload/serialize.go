package workload

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"heteromem/internal/addrspace"
	"heteromem/internal/locality"
	"heteromem/internal/mem"
	"heteromem/internal/trace"
)

// Program file format:
//
//	magic "HMPG" | version u16
//	name len u16 | name | pattern len u16 | pattern
//	object count u32 | objects (addr u64, size u32, region u8, user u8, critical u8)
//	phase count u32 | phases:
//	    kind u8
//	    compute: cpu trace (trace format) | gpu trace (trace format)
//	    transfer: dir u8 | bytes u64 | addr u64
//
// The embedded traces reuse the trace package's binary format, so a
// program file is self-contained: hettrace-generated programs replay
// bit-identically anywhere.
const (
	programMagic   = "HMPG"
	programVersion = uint16(1)
)

// SaveProgram serialises the program to w.
func SaveProgram(w io.Writer, p *Program) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(programMagic); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, programVersion); err != nil {
		return err
	}
	if err := writeString(bw, p.Name); err != nil {
		return err
	}
	if err := writeString(bw, p.Pattern); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint32(len(p.Objects))); err != nil {
		return err
	}
	for _, o := range p.Objects {
		if err := writeObject(bw, o); err != nil {
			return err
		}
	}
	if err := binary.Write(bw, binary.LittleEndian, uint32(len(p.Phases))); err != nil {
		return err
	}
	for i := range p.Phases {
		ph := &p.Phases[i]
		if err := bw.WriteByte(uint8(ph.Kind)); err != nil {
			return err
		}
		switch ph.Kind {
		case Transfer:
			if err := bw.WriteByte(uint8(ph.Dir)); err != nil {
				return err
			}
			if err := binary.Write(bw, binary.LittleEndian, ph.Bytes); err != nil {
				return err
			}
			if err := binary.Write(bw, binary.LittleEndian, ph.Addr); err != nil {
				return err
			}
		default:
			if err := bw.Flush(); err != nil {
				return err
			}
			// Encoding through the source streams generator-backed
			// programs record-at-a-time, so a kernel opened with Open can
			// be saved without ever materializing its traces.
			if err := trace.WriteSource(w, ph.CPUSource()); err != nil {
				return err
			}
			if err := trace.WriteSource(w, ph.GPUSource()); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// LoadProgram deserialises a program written by SaveProgram and
// validates it.
func LoadProgram(r io.Reader) (*Program, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, 4)
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("workload: reading program header: %w", err)
	}
	if string(magic) != programMagic {
		return nil, fmt.Errorf("workload: bad program magic %q", magic)
	}
	var version uint16
	if err := binary.Read(br, binary.LittleEndian, &version); err != nil {
		return nil, err
	}
	if version != programVersion {
		return nil, fmt.Errorf("workload: unsupported program version %d", version)
	}
	p := &Program{}
	var err error
	if p.Name, err = readString(br); err != nil {
		return nil, err
	}
	if p.Pattern, err = readString(br); err != nil {
		return nil, err
	}
	var nObj uint32
	if err := binary.Read(br, binary.LittleEndian, &nObj); err != nil {
		return nil, err
	}
	if nObj > 1<<16 {
		return nil, fmt.Errorf("workload: implausible object count %d", nObj)
	}
	for i := uint32(0); i < nObj; i++ {
		o, err := readObject(br)
		if err != nil {
			return nil, err
		}
		p.Objects = append(p.Objects, o)
	}
	var nPhases uint32
	if err := binary.Read(br, binary.LittleEndian, &nPhases); err != nil {
		return nil, err
	}
	if nPhases > 1<<16 {
		return nil, fmt.Errorf("workload: implausible phase count %d", nPhases)
	}
	for i := uint32(0); i < nPhases; i++ {
		kind, err := br.ReadByte()
		if err != nil {
			return nil, err
		}
		ph := Phase{Kind: PhaseKind(kind)}
		switch ph.Kind {
		case Transfer:
			dir, err := br.ReadByte()
			if err != nil {
				return nil, err
			}
			ph.Dir = Direction(dir)
			if err := binary.Read(br, binary.LittleEndian, &ph.Bytes); err != nil {
				return nil, err
			}
			if err := binary.Read(br, binary.LittleEndian, &ph.Addr); err != nil {
				return nil, err
			}
		case Sequential, Parallel:
			if ph.CPU, err = trace.Read(br); err != nil {
				return nil, fmt.Errorf("workload: phase %d cpu trace: %w", i, err)
			}
			if ph.GPU, err = trace.Read(br); err != nil {
				return nil, fmt.Errorf("workload: phase %d gpu trace: %w", i, err)
			}
		default:
			return nil, fmt.Errorf("workload: phase %d has unknown kind %d", i, kind)
		}
		p.Phases = append(p.Phases, ph)
	}
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("workload: loaded program invalid: %w", err)
	}
	return p, nil
}

func writeString(w *bufio.Writer, s string) error {
	if len(s) > 1<<16-1 {
		return fmt.Errorf("workload: string too long (%d)", len(s))
	}
	if err := binary.Write(w, binary.LittleEndian, uint16(len(s))); err != nil {
		return err
	}
	_, err := w.WriteString(s)
	return err
}

func readString(r *bufio.Reader) (string, error) {
	var n uint16
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return "", err
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return "", err
	}
	return string(buf), nil
}

func writeObject(w *bufio.Writer, o locality.Object) error {
	if err := binary.Write(w, binary.LittleEndian, o.Addr); err != nil {
		return err
	}
	if err := binary.Write(w, binary.LittleEndian, o.Size); err != nil {
		return err
	}
	if err := w.WriteByte(uint8(o.Region)); err != nil {
		return err
	}
	if err := w.WriteByte(uint8(o.User)); err != nil {
		return err
	}
	crit := byte(0)
	if o.Critical {
		crit = 1
	}
	return w.WriteByte(crit)
}

func readObject(r *bufio.Reader) (locality.Object, error) {
	var o locality.Object
	if err := binary.Read(r, binary.LittleEndian, &o.Addr); err != nil {
		return o, err
	}
	if err := binary.Read(r, binary.LittleEndian, &o.Size); err != nil {
		return o, err
	}
	region, err := r.ReadByte()
	if err != nil {
		return o, err
	}
	o.Region = addrspace.Region(region)
	user, err := r.ReadByte()
	if err != nil {
		return o, err
	}
	o.User = mem.PU(user)
	crit, err := r.ReadByte()
	if err != nil {
		return o, err
	}
	o.Critical = crit != 0
	return o, nil
}
