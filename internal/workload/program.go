// Package workload provides the six evaluation kernels of Table III —
// reduction, matrix multiply, convolution, DCT, merge sort and k-mean —
// as phase programs: sequences of sequential-compute, parallel-compute
// and data-transfer phases whose instruction counts, communication
// counts and initial transfer sizes match the paper exactly.
//
// Because the evaluation depends only on instruction counts, mixes,
// memory footprints and communication volume (the paper's traces carry
// no program semantics either), the trace streams are synthesised
// deterministically per kernel with per-kernel instruction mixes and
// access patterns. See DESIGN.md for the substitution rationale.
package workload

import (
	"fmt"

	"heteromem/internal/addrspace"
	"heteromem/internal/locality"
	"heteromem/internal/trace"
)

// PhaseKind classifies a program phase.
type PhaseKind uint8

const (
	// Sequential runs CPU-only serial code.
	Sequential PhaseKind = iota
	// Parallel runs the CPU and GPU halves concurrently (the paper
	// divides computational work evenly between the PUs).
	Parallel
	// Transfer logically moves data between the PUs' memories; the
	// system under evaluation decides its cost.
	Transfer
)

func (k PhaseKind) String() string {
	switch k {
	case Sequential:
		return "sequential"
	case Parallel:
		return "parallel"
	case Transfer:
		return "transfer"
	default:
		return fmt.Sprintf("phase(%d)", uint8(k))
	}
}

// Direction of a transfer phase.
type Direction uint8

const (
	// HostToDevice moves data from CPU memory to GPU memory.
	HostToDevice Direction = iota
	// DeviceToHost moves data from GPU memory to CPU memory.
	DeviceToHost
)

func (d Direction) String() string {
	if d == HostToDevice {
		return "h2d"
	}
	return "d2h"
}

// Phase is one step of a program.
type Phase struct {
	Kind PhaseKind
	// CPU and GPU hold the traces for compute phases (GPU empty for
	// Sequential).
	CPU trace.Stream
	GPU trace.Stream
	// Dir and Bytes describe a Transfer phase. Addr is the base of the
	// moved object, so address-space models can track ownership and
	// first-touch state.
	Dir   Direction
	Bytes uint64
	Addr  uint64
}

// Program is a complete kernel: its phases, the data objects it
// manipulates (for locality planning), and its Table III identity.
type Program struct {
	Name    string
	Pattern string
	Phases  []Phase
	Objects []locality.Object
}

// Characteristics is one row of Table III.
type Characteristics struct {
	Name                 string
	Pattern              string
	CPUInsts             uint64
	GPUInsts             uint64
	SerialInsts          uint64
	Comms                int
	InitialTransferBytes uint64
}

// Characteristics computes the program's Table III row from its phases.
func (p *Program) Characteristics() Characteristics {
	c := Characteristics{Name: p.Name, Pattern: p.Pattern}
	first := true
	for _, ph := range p.Phases {
		switch ph.Kind {
		case Sequential:
			c.SerialInsts += uint64(len(ph.CPU))
		case Parallel:
			c.CPUInsts += uint64(len(ph.CPU))
			c.GPUInsts += uint64(len(ph.GPU))
		case Transfer:
			c.Comms++
			if first {
				c.InitialTransferBytes = ph.Bytes
				first = false
			}
		}
	}
	return c
}

// Validate checks every trace in the program.
func (p *Program) Validate() error {
	for i, ph := range p.Phases {
		if err := ph.CPU.Validate(); err != nil {
			return fmt.Errorf("%s phase %d cpu: %w", p.Name, i, err)
		}
		if err := ph.GPU.Validate(); err != nil {
			return fmt.Errorf("%s phase %d gpu: %w", p.Name, i, err)
		}
		switch ph.Kind {
		case Sequential:
			if len(ph.GPU) != 0 {
				return fmt.Errorf("%s phase %d: sequential phase has GPU work", p.Name, i)
			}
		case Transfer:
			if ph.Bytes == 0 {
				return fmt.Errorf("%s phase %d: zero-byte transfer", p.Name, i)
			}
			if len(ph.CPU) != 0 || len(ph.GPU) != 0 {
				return fmt.Errorf("%s phase %d: transfer phase has compute work", p.Name, i)
			}
		}
	}
	return nil
}

// TotalInstructions returns the instruction count across all phases.
func (p *Program) TotalInstructions() uint64 {
	var n uint64
	for _, ph := range p.Phases {
		n += uint64(len(ph.CPU)) + uint64(len(ph.GPU))
	}
	return n
}

// Data-layout bases for generated traces. CPU-half data lives in the CPU
// private region, GPU-half data in the GPU private region, merge buffers
// in the shared region, so address-space models see region-appropriate
// traffic.
const (
	cpuDataBase = addrspace.CPUPrivateBase + 1<<20
	gpuDataBase = addrspace.GPUPrivateBase + 1<<20
	shrDataBase = addrspace.SharedBase + 1<<20
)

// TableIII returns the paper's benchmark characteristics verbatim.
func TableIII() []Characteristics {
	return []Characteristics{
		{"reduction", "parallel-merge-sequential", 70006, 70001, 99996, 2, 320512},
		{"matrix-mul", "fully-parallel", 8585229, 8585228, 16384, 2, 524288},
		{"convolution", "parallel-merge-parallel", 448260, 448259, 65536, 3, 65536},
		{"dct", "fully-parallel", 2359298, 2359298, 262144, 2, 262244},
		{"merge-sort", "parallel-merge-sequential", 161233, 157233, 97668, 2, 39936},
		{"k-mean", "parallel-merge-sequential-repeated", 1847765, 1844981, 36784, 6, 136192},
	}
}
