// Package workload provides the six evaluation kernels of Table III —
// reduction, matrix multiply, convolution, DCT, merge sort and k-mean —
// as phase programs: sequences of sequential-compute, parallel-compute
// and data-transfer phases whose instruction counts, communication
// counts and initial transfer sizes match the paper exactly.
//
// Because the evaluation depends only on instruction counts, mixes,
// memory footprints and communication volume (the paper's traces carry
// no program semantics either), the trace streams are synthesised
// deterministically per kernel with per-kernel instruction mixes and
// access patterns. See DESIGN.md for the substitution rationale.
package workload

import (
	"fmt"
	"sync/atomic"

	"heteromem/internal/addrspace"
	"heteromem/internal/locality"
	"heteromem/internal/trace"
)

// PhaseKind classifies a program phase.
type PhaseKind uint8

const (
	// Sequential runs CPU-only serial code.
	Sequential PhaseKind = iota
	// Parallel runs the CPU and GPU halves concurrently (the paper
	// divides computational work evenly between the PUs).
	Parallel
	// Transfer logically moves data between the PUs' memories; the
	// system under evaluation decides its cost.
	Transfer
)

func (k PhaseKind) String() string {
	switch k {
	case Sequential:
		return "sequential"
	case Parallel:
		return "parallel"
	case Transfer:
		return "transfer"
	default:
		return fmt.Sprintf("phase(%d)", uint8(k))
	}
}

// Direction of a transfer phase.
type Direction uint8

const (
	// HostToDevice moves data from CPU memory to GPU memory.
	HostToDevice Direction = iota
	// DeviceToHost moves data from GPU memory to CPU memory.
	DeviceToHost
)

func (d Direction) String() string {
	if d == HostToDevice {
		return "h2d"
	}
	return "d2h"
}

// Phase is one step of a program.
//
// A compute phase carries its traces in one of two forms: materialized
// streams in CPU/GPU (Generate, LoadProgram), or restartable generators
// (Open) that synthesize the identical instructions on demand. Consumers
// replay either form through CPUSource/GPUSource and size work with
// CPULen/GPULen.
type Phase struct {
	Kind PhaseKind
	// CPU and GPU hold the materialized traces for compute phases (GPU
	// empty for Sequential). Empty for streaming programs built by Open.
	CPU trace.Stream
	GPU trace.Stream
	// Dir and Bytes describe a Transfer phase. Addr is the base of the
	// moved object, so address-space models can track ownership and
	// first-touch state.
	Dir   Direction
	Bytes uint64
	Addr  uint64

	// Generator parameters for streaming programs; nil once materialized.
	cpuGen *genParams
	gpuGen *genParams

	// local caches the per-half core-locality classification (bit 0:
	// computed, bit 1: CPU half core-local, bit 2: GPU half core-local),
	// maintained with atomics because opened programs are shared across
	// concurrent simulators. Phases are only copied while a program is
	// being built, before anything classifies them.
	local uint32
}

// CPUCoreLocal reports whether the phase's CPU half is certified to touch
// only the CPU core's private state — every instruction is isa.CoreLocal
// (no hierarchy, software-cache, communication or push traffic). The
// simulator uses this to overlap interaction-free halves of a parallel
// phase. Generator-backed halves classify conservatively false: bodies
// emit conditionally, so no sample of the stream can certify all of it.
func (ph *Phase) CPUCoreLocal() bool { return ph.coreLocal()&2 != 0 }

// GPUCoreLocal is CPUCoreLocal for the phase's GPU half.
func (ph *Phase) GPUCoreLocal() bool { return ph.coreLocal()&4 != 0 }

func (ph *Phase) coreLocal() uint32 {
	if v := atomic.LoadUint32(&ph.local); v&1 != 0 {
		return v
	}
	v := uint32(1)
	if ph.cpuGen == nil && streamCoreLocal(ph.CPU) {
		v |= 2
	}
	if ph.gpuGen == nil && streamCoreLocal(ph.GPU) {
		v |= 4
	}
	// Racing classifiers compute identical bits from immutable inputs, so
	// last-store-wins is benign.
	atomic.StoreUint32(&ph.local, v)
	return v
}

func streamCoreLocal(s trace.Stream) bool {
	for i := range s {
		if !s[i].Kind.CoreLocal() {
			return false
		}
	}
	return true
}

// CPUSource returns a fresh cursor over the phase's CPU trace, whichever
// form it is stored in. Every call returns an independent source.
func (ph *Phase) CPUSource() trace.Source {
	if ph.cpuGen != nil {
		return ph.cpuGen.source()
	}
	return trace.NewCursor(ph.CPU)
}

// GPUSource returns a fresh cursor over the phase's GPU trace.
func (ph *Phase) GPUSource() trace.Source {
	if ph.gpuGen != nil {
		return ph.gpuGen.source()
	}
	return trace.NewCursor(ph.GPU)
}

// CPULen returns the phase's CPU instruction count without materializing.
func (ph *Phase) CPULen() int {
	if ph.cpuGen != nil {
		return ph.cpuGen.n
	}
	return len(ph.CPU)
}

// GPULen returns the phase's GPU instruction count without materializing.
func (ph *Phase) GPULen() int {
	if ph.gpuGen != nil {
		return ph.gpuGen.n
	}
	return len(ph.GPU)
}

// materialize expands the phase's generators (if any) into in-memory
// streams and drops the generators, converting a streaming phase into the
// serializable form.
func (ph *Phase) materialize() {
	if ph.cpuGen != nil {
		ph.CPU = trace.Materialize(ph.cpuGen.source())
		ph.cpuGen = nil
	}
	if ph.gpuGen != nil {
		ph.GPU = trace.Materialize(ph.gpuGen.source())
		ph.gpuGen = nil
	}
	// The conservative generator-backed classification no longer applies
	// to the now-inspectable streams.
	atomic.StoreUint32(&ph.local, 0)
}

// Program is a complete kernel: its phases, the data objects it
// manipulates (for locality planning), and its Table III identity.
type Program struct {
	Name    string
	Pattern string
	Phases  []Phase
	Objects []locality.Object
}

// Characteristics is one row of Table III.
type Characteristics struct {
	Name                 string
	Pattern              string
	CPUInsts             uint64
	GPUInsts             uint64
	SerialInsts          uint64
	Comms                int
	InitialTransferBytes uint64
}

// Characteristics computes the program's Table III row from its phases.
func (p *Program) Characteristics() Characteristics {
	c := Characteristics{Name: p.Name, Pattern: p.Pattern}
	first := true
	for i := range p.Phases {
		ph := &p.Phases[i]
		switch ph.Kind {
		case Sequential:
			c.SerialInsts += uint64(ph.CPULen())
		case Parallel:
			c.CPUInsts += uint64(ph.CPULen())
			c.GPUInsts += uint64(ph.GPULen())
		case Transfer:
			c.Comms++
			if first {
				c.InitialTransferBytes = ph.Bytes
				first = false
			}
		}
	}
	return c
}

// Validate checks the program's structure and every materialized trace.
// Generator-backed phases carry no records to check here: their output is
// pinned instruction-for-instruction against the materialized form by the
// workload tests, and re-synthesizing millions of records on every Run
// would defeat streaming.
func (p *Program) Validate() error {
	for i := range p.Phases {
		ph := &p.Phases[i]
		if err := ph.CPU.Validate(); err != nil {
			return fmt.Errorf("%s phase %d cpu: %w", p.Name, i, err)
		}
		if err := ph.GPU.Validate(); err != nil {
			return fmt.Errorf("%s phase %d gpu: %w", p.Name, i, err)
		}
		switch ph.Kind {
		case Sequential:
			if ph.GPULen() != 0 {
				return fmt.Errorf("%s phase %d: sequential phase has GPU work", p.Name, i)
			}
		case Transfer:
			if ph.Bytes == 0 {
				return fmt.Errorf("%s phase %d: zero-byte transfer", p.Name, i)
			}
			if ph.CPULen() != 0 || ph.GPULen() != 0 {
				return fmt.Errorf("%s phase %d: transfer phase has compute work", p.Name, i)
			}
		}
	}
	return nil
}

// TotalInstructions returns the instruction count across all phases.
func (p *Program) TotalInstructions() uint64 {
	var n uint64
	for i := range p.Phases {
		n += uint64(p.Phases[i].CPULen()) + uint64(p.Phases[i].GPULen())
	}
	return n
}

// Data-layout bases for generated traces. CPU-half data lives in the CPU
// private region, GPU-half data in the GPU private region, merge buffers
// in the shared region, so address-space models see region-appropriate
// traffic.
const (
	cpuDataBase = addrspace.CPUPrivateBase + 1<<20
	gpuDataBase = addrspace.GPUPrivateBase + 1<<20
	shrDataBase = addrspace.SharedBase + 1<<20
)

// TableIII returns the paper's benchmark characteristics verbatim.
func TableIII() []Characteristics {
	return []Characteristics{
		{"reduction", "parallel-merge-sequential", 70006, 70001, 99996, 2, 320512},
		{"matrix-mul", "fully-parallel", 8585229, 8585228, 16384, 2, 524288},
		{"convolution", "parallel-merge-parallel", 448260, 448259, 65536, 3, 65536},
		{"dct", "fully-parallel", 2359298, 2359298, 262144, 2, 262244},
		{"merge-sort", "parallel-merge-sequential", 161233, 157233, 97668, 2, 39936},
		{"k-mean", "parallel-merge-sequential-repeated", 1847765, 1844981, 36784, 6, 136192},
	}
}
