package workload

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

func TestProgramRoundTrip(t *testing.T) {
	orig := MustGenerate("merge-sort")
	var buf bytes.Buffer
	if err := SaveProgram(&buf, orig); err != nil {
		t.Fatalf("save: %v", err)
	}
	got, err := LoadProgram(&buf)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if got.Name != orig.Name || got.Pattern != orig.Pattern {
		t.Fatalf("identity: %s/%s", got.Name, got.Pattern)
	}
	if !reflect.DeepEqual(got.Objects, orig.Objects) {
		t.Fatalf("objects:\n got %+v\nwant %+v", got.Objects, orig.Objects)
	}
	if len(got.Phases) != len(orig.Phases) {
		t.Fatalf("phases: %d vs %d", len(got.Phases), len(orig.Phases))
	}
	for i := range got.Phases {
		if !reflect.DeepEqual(got.Phases[i], orig.Phases[i]) {
			t.Fatalf("phase %d differs", i)
		}
	}
	if got.Characteristics() != orig.Characteristics() {
		t.Fatal("characteristics changed through serialisation")
	}
}

func TestProgramRoundTripAllKernels(t *testing.T) {
	if testing.Short() {
		t.Skip("matrix-mul serialisation is large")
	}
	for _, name := range []string{"reduction", "convolution", "k-mean"} {
		orig := MustGenerate(name)
		var buf bytes.Buffer
		if err := SaveProgram(&buf, orig); err != nil {
			t.Fatalf("%s save: %v", name, err)
		}
		got, err := LoadProgram(&buf)
		if err != nil {
			t.Fatalf("%s load: %v", name, err)
		}
		if got.Characteristics() != orig.Characteristics() {
			t.Fatalf("%s characteristics changed", name)
		}
	}
}

func TestLoadProgramRejectsGarbage(t *testing.T) {
	cases := map[string]string{
		"empty":     "",
		"bad magic": "XXXXxxxxxxxxxxxxxxxx",
		"truncated": "HMPG\x01\x00\x04\x00na",
	}
	for name, raw := range cases {
		if _, err := LoadProgram(strings.NewReader(raw)); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

func TestLoadProgramRejectsBadVersion(t *testing.T) {
	orig := MustGenerate("reduction")
	var buf bytes.Buffer
	if err := SaveProgram(&buf, orig); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	raw[4] = 0xff
	if _, err := LoadProgram(bytes.NewReader(raw)); err == nil {
		t.Fatal("bad version accepted")
	}
}

func TestLoadProgramRejectsCorruptPhaseKind(t *testing.T) {
	orig := MustGenerate("reduction")
	var buf bytes.Buffer
	if err := SaveProgram(&buf, orig); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	// The first phase (a transfer) starts right after the fixed prefix;
	// find its kind byte by searching for the transfer encoding is
	// brittle, so instead corrupt the final byte region and expect either
	// an error or an unchanged prefix — the loader must never panic.
	raw[len(raw)-1] ^= 0xff
	p, err := LoadProgram(bytes.NewReader(raw))
	if err == nil && p.Validate() != nil {
		t.Fatal("corrupt program loaded and invalid")
	}
}
