package workload

import (
	"fmt"
	"sort"

	"heteromem/internal/addrspace"
	"heteromem/internal/isa"
	"heteromem/internal/locality"
	"heteromem/internal/mem"
	"heteromem/internal/trace"
)

// gen holds the deterministic state a kernel loop body evolves as it
// emits instructions: a splitmix64 stream seeded per kernel and PU drives
// address irregularity, so the same kernel always produces the same
// trace. Bodies emit into a small per-iteration buffer that bodySource
// drains, so a dynamic stream never materializes unless asked to.
type gen struct {
	// out is a full-length emission window; emit writes out[n] and
	// advances n. Indexed emission keeps the body's hot loop down to a
	// bounds-checked store — no slice-header rewrite, no growth branch.
	out       []trace.Inst
	n         int
	seed      uint64
	pcBase    uint64
	dataBase  uint64
	footprint uint64
	cursor    uint64
	iter      uint64
}

// next is splitmix64: deterministic, well-distributed, allocation-free.
func (g *gen) next() uint64 {
	g.seed += 0x9e3779b97f4a7c15
	z := g.seed
	z = (z ^ z>>30) * 0xbf58476d1ce4e5b9
	z = (z ^ z>>27) * 0x94d049bb133111eb
	return z ^ z>>31
}

func (g *gen) pc(slot uint64) uint64 { return g.pcBase + slot*4 }

// seqAddr returns the next streaming address, wrapping at the footprint.
// cursor is kept reduced modulo footprint (bodies advance by at most
// bodyBufCap small strides, each well under any footprint), so the wrap
// is a compare-and-subtract instead of a hardware divide in the hottest
// loop of trace synthesis.
func (g *gen) seqAddr(stride uint64) uint64 {
	a := g.dataBase + g.cursor
	g.cursor += stride
	if g.cursor >= g.footprint {
		g.cursor -= g.footprint
	}
	return a
}

// randAddr returns a pseudo-random 8-byte-aligned address in the footprint.
func (g *gen) randAddr() uint64 {
	return g.dataBase + (g.next()%g.footprint)&^7
}

func (g *gen) emit(in trace.Inst) { g.out[g.n] = in; g.n++ }

// bodyFn appends one loop iteration to g.
type bodyFn func(g *gen)

// bodyBufCap bounds the instructions one loop iteration emits; the widest
// body (blocked matrix multiply) emits seven.
const bodyBufCap = 8

// genParams identifies one phase half's generator: the loop body plus the
// seeds that make its output deterministic. Params are immutable once
// built, so one set can be shared by any number of concurrent sources.
type genParams struct {
	body      bodyFn
	n         int
	seed      uint64
	pcBase    uint64
	dataBase  uint64
	footprint uint64
}

// source returns a fresh cursor over the generator's stream.
func (p *genParams) source() *bodySource {
	s := &bodySource{p: p}
	s.Reset()
	return s
}

// bodySource is a restartable trace.Source that synthesizes the loop
// body's dynamic stream on demand: iterations are generated one at a time
// into a fixed buffer and handed out instruction by instruction, exactly
// n of them — the final iteration is truncated mid-body just as the
// materialized form is. Memory use is O(1) in the stream length.
type bodySource struct {
	p   *genParams
	g   gen
	pos int // instructions delivered so far
	bi  int // cursor into the current iteration's buffer
	buf [bodyBufCap]trace.Inst
}

// Reset rewinds the generator to the first instruction; the replayed
// sequence is bit-identical (the generator state is reseeded).
func (s *bodySource) Reset() {
	s.g = gen{
		seed:      s.p.seed,
		pcBase:    s.p.pcBase,
		dataBase:  s.p.dataBase,
		footprint: s.p.footprint,
	}
	if s.g.footprint == 0 {
		s.g.footprint = 4096
	}
	s.g.out = s.buf[:]
	s.pos, s.bi = 0, 0
}

// Len returns the total instruction count the source delivers.
func (s *bodySource) Len() int { return s.p.n }

// Next synthesizes and returns the next instruction.
func (s *bodySource) Next() (trace.Inst, bool) {
	if s.pos >= s.p.n {
		return trace.Inst{}, false
	}
	if s.bi >= s.g.n {
		s.g.n = 0
		s.bi = 0
		s.p.body(&s.g)
		s.g.iter++
		if s.g.n == 0 {
			panic("workload: loop body emitted nothing")
		}
	}
	in := s.g.out[s.bi]
	s.bi++
	s.pos++
	return in, true
}

// NextBatch fills up to len(dst) instructions into dst, regenerating
// loop iterations as needed. The delivered sequence is exactly Next's;
// the bulk form exists so replay loops avoid an interface call per
// instruction. While dst has at least a full iteration of room, the
// generator's scratch is pointed directly at dst, so the body's appends
// land in place and the per-iteration copy disappears.
func (s *bodySource) NextBatch(dst []trace.Inst) int {
	if rem := s.p.n - s.pos; len(dst) > rem {
		dst = dst[:rem]
	}
	n := 0
	// Drain whatever is left of the current iteration first.
	if s.bi < s.g.n {
		c := copy(dst, s.g.out[s.bi:s.g.n])
		s.bi += c
		n = c
	}
	// Emit whole iterations straight into dst.
	for len(dst)-n >= bodyBufCap {
		s.g.out = dst[n : n+bodyBufCap]
		s.g.n = 0
		s.p.body(&s.g)
		s.g.iter++
		if s.g.n == 0 {
			panic("workload: loop body emitted nothing")
		}
		n += s.g.n
	}
	s.g.out, s.g.n, s.bi = s.buf[:], 0, 0
	// Tail: generate into the scratch buffer and copy the part that fits.
	for n < len(dst) {
		s.g.n = 0
		s.bi = 0
		s.p.body(&s.g)
		s.g.iter++
		if s.g.n == 0 {
			panic("workload: loop body emitted nothing")
		}
		c := copy(dst[n:], s.g.out[:s.g.n])
		s.bi = c
		n += c
	}
	s.pos += n
	return n
}

// --- CPU loop bodies ---

// streamAddCPU: the reduction inner loop — load, accumulate, advance,
// loop branch.
func streamAddCPU(g *gen) {
	g.emit(trace.Inst{PC: g.pc(0), Kind: isa.Load, Addr: g.seqAddr(8), Size: 8})
	g.emit(trace.Inst{PC: g.pc(1), Kind: isa.ALU, Dep1: 1, Dep2: 4}) // acc += v
	g.emit(trace.Inst{PC: g.pc(2), Kind: isa.ALU})                   // i++
	g.emit(trace.Inst{PC: g.pc(3), Kind: isa.Branch, Taken: true, Dep1: 1})
}

// blockedFPCPU: matrix-multiply-like — two loads with strong reuse, a
// multiply-accumulate chain, occasional store.
func blockedFPCPU(g *gen) {
	rowBase := g.dataBase + (g.iter/64%64)*512 // row reused across 64 iterations
	g.emit(trace.Inst{PC: g.pc(0), Kind: isa.Load, Addr: rowBase + g.iter%64*8, Size: 8})
	g.emit(trace.Inst{PC: g.pc(1), Kind: isa.Load, Addr: g.seqAddr(8), Size: 8})
	g.emit(trace.Inst{PC: g.pc(2), Kind: isa.Mul, Dep1: 1, Dep2: 2})
	g.emit(trace.Inst{PC: g.pc(3), Kind: isa.FP, Dep1: 1, Dep2: 7}) // acc chain
	if g.iter%64 == 63 {
		g.emit(trace.Inst{PC: g.pc(4), Kind: isa.Store, Addr: g.dataBase + g.iter/64*8%g.footprint, Size: 8, Dep1: 1})
	}
	g.emit(trace.Inst{PC: g.pc(5), Kind: isa.ALU})
	g.emit(trace.Inst{PC: g.pc(6), Kind: isa.Branch, Taken: true})
}

// stencilFPCPU: convolution-like — window loads with short reuse, FP
// accumulation, store per window.
func stencilFPCPU(g *gen) {
	base := g.seqAddr(8)
	g.emit(trace.Inst{PC: g.pc(0), Kind: isa.Load, Addr: base, Size: 8})
	g.emit(trace.Inst{PC: g.pc(1), Kind: isa.Load, Addr: base + 8, Size: 8})
	g.emit(trace.Inst{PC: g.pc(2), Kind: isa.Load, Addr: base + 16, Size: 8})
	g.emit(trace.Inst{PC: g.pc(3), Kind: isa.FP, Dep1: 1, Dep2: 2})
	g.emit(trace.Inst{PC: g.pc(4), Kind: isa.FP, Dep1: 1, Dep2: 4})
	g.emit(trace.Inst{PC: g.pc(5), Kind: isa.Store, Addr: base, Size: 8, Dep1: 1})
	g.emit(trace.Inst{PC: g.pc(6), Kind: isa.Branch, Taken: true})
}

// transformFPCPU: DCT-like — compute-dominated FP with periodic loads.
func transformFPCPU(g *gen) {
	if g.iter%4 == 0 {
		g.emit(trace.Inst{PC: g.pc(0), Kind: isa.Load, Addr: g.seqAddr(64), Size: 64})
	}
	g.emit(trace.Inst{PC: g.pc(1), Kind: isa.FP, Dep1: 1})
	g.emit(trace.Inst{PC: g.pc(2), Kind: isa.Mul, Dep1: 1})
	g.emit(trace.Inst{PC: g.pc(3), Kind: isa.FP, Dep1: 1, Dep2: 2})
	g.emit(trace.Inst{PC: g.pc(4), Kind: isa.ALU})
	if g.iter%8 == 7 {
		g.emit(trace.Inst{PC: g.pc(5), Kind: isa.Store, Addr: g.seqAddr(8), Size: 8, Dep1: 1})
	}
	g.emit(trace.Inst{PC: g.pc(6), Kind: isa.Branch, Taken: true})
}

// irregularCPU: merge-sort-like — data-dependent loads, compare branches
// whose direction follows the data (hard to predict), pointer-chase deps.
func irregularCPU(g *gen) {
	g.emit(trace.Inst{PC: g.pc(0), Kind: isa.Load, Addr: g.randAddr(), Size: 8})
	g.emit(trace.Inst{PC: g.pc(1), Kind: isa.Load, Addr: g.randAddr(), Size: 8})
	g.emit(trace.Inst{PC: g.pc(2), Kind: isa.ALU, Dep1: 1, Dep2: 2}) // compare
	g.emit(trace.Inst{PC: g.pc(3), Kind: isa.Branch, Taken: g.next()&1 == 0, Dep1: 1})
	g.emit(trace.Inst{PC: g.pc(4), Kind: isa.Store, Addr: g.seqAddr(8), Size: 8, Dep1: 2})
	g.emit(trace.Inst{PC: g.pc(5), Kind: isa.Branch, Taken: true})
}

// distanceCPU: k-mean-like — load a point, FP distance to each centroid,
// compare-and-branch, occasional assignment store.
func distanceCPU(g *gen) {
	g.emit(trace.Inst{PC: g.pc(0), Kind: isa.Load, Addr: g.seqAddr(16), Size: 16})
	g.emit(trace.Inst{PC: g.pc(1), Kind: isa.Load, Addr: g.dataBase + g.iter%8*64, Size: 64}) // centroid: hot
	g.emit(trace.Inst{PC: g.pc(2), Kind: isa.FP, Dep1: 1, Dep2: 2})
	g.emit(trace.Inst{PC: g.pc(3), Kind: isa.FP, Dep1: 1})
	g.emit(trace.Inst{PC: g.pc(4), Kind: isa.ALU, Dep1: 1})
	g.emit(trace.Inst{PC: g.pc(5), Kind: isa.Branch, Taken: g.next()%8 != 0, Dep1: 1})
	if g.iter%8 == 0 {
		g.emit(trace.Inst{PC: g.pc(6), Kind: isa.Store, Addr: g.seqAddr(8), Size: 8, Dep1: 2})
	}
}

// --- GPU loop bodies (SIMD) ---

func streamAddGPU(g *gen) {
	g.emit(trace.Inst{PC: g.pc(0), Kind: isa.SIMDLoad, Addr: g.seqAddr(32), Size: 32, Lanes: 8})
	g.emit(trace.Inst{PC: g.pc(1), Kind: isa.SIMDALU, Dep1: 1, Dep2: 3})
	g.emit(trace.Inst{PC: g.pc(2), Kind: isa.ALU})
	g.emit(trace.Inst{PC: g.pc(3), Kind: isa.Branch, Taken: true})
}

func blockedFPGPU(g *gen) {
	rowBase := g.dataBase + (g.iter/64%64)*512
	g.emit(trace.Inst{PC: g.pc(0), Kind: isa.SIMDLoad, Addr: rowBase + g.iter%16*32, Size: 32, Lanes: 8})
	g.emit(trace.Inst{PC: g.pc(1), Kind: isa.SIMDLoad, Addr: g.seqAddr(32), Size: 32, Lanes: 8})
	g.emit(trace.Inst{PC: g.pc(2), Kind: isa.SIMDFP, Dep1: 1, Dep2: 2})
	g.emit(trace.Inst{PC: g.pc(3), Kind: isa.SIMDFP, Dep1: 1, Dep2: 6})
	if g.iter%16 == 15 {
		g.emit(trace.Inst{PC: g.pc(4), Kind: isa.SIMDStore, Addr: g.seqAddr(32), Size: 32, Lanes: 8, Dep1: 1})
	}
	g.emit(trace.Inst{PC: g.pc(5), Kind: isa.ALU})
	g.emit(trace.Inst{PC: g.pc(6), Kind: isa.Branch, Taken: true})
}

func stencilFPGPU(g *gen) {
	base := g.seqAddr(32)
	g.emit(trace.Inst{PC: g.pc(0), Kind: isa.SIMDLoad, Addr: base, Size: 32, Lanes: 8})
	g.emit(trace.Inst{PC: g.pc(1), Kind: isa.SIMDLoad, Addr: base + 32, Size: 32, Lanes: 8})
	g.emit(trace.Inst{PC: g.pc(2), Kind: isa.SIMDFP, Dep1: 1, Dep2: 2})
	g.emit(trace.Inst{PC: g.pc(3), Kind: isa.SIMDStore, Addr: base, Size: 32, Lanes: 8, Dep1: 1})
	g.emit(trace.Inst{PC: g.pc(4), Kind: isa.Branch, Taken: true})
}

func transformFPGPU(g *gen) {
	if g.iter%4 == 0 {
		g.emit(trace.Inst{PC: g.pc(0), Kind: isa.SIMDLoad, Addr: g.seqAddr(64), Size: 64, Lanes: 8})
	}
	g.emit(trace.Inst{PC: g.pc(1), Kind: isa.SIMDFP, Dep1: 1})
	g.emit(trace.Inst{PC: g.pc(2), Kind: isa.SIMDFP, Dep1: 1})
	g.emit(trace.Inst{PC: g.pc(3), Kind: isa.SIMDALU})
	if g.iter%8 == 7 {
		g.emit(trace.Inst{PC: g.pc(4), Kind: isa.SIMDStore, Addr: g.seqAddr(32), Size: 32, Lanes: 8, Dep1: 1})
	}
	g.emit(trace.Inst{PC: g.pc(5), Kind: isa.Branch, Taken: true})
}

func irregularGPU(g *gen) {
	g.emit(trace.Inst{PC: g.pc(0), Kind: isa.SIMDLoad, Addr: g.randAddr() &^ 31, Size: 32, Lanes: 8})
	g.emit(trace.Inst{PC: g.pc(1), Kind: isa.SIMDALU, Dep1: 1})
	g.emit(trace.Inst{PC: g.pc(2), Kind: isa.Branch, Taken: g.next()&1 == 0, Dep1: 1})
	g.emit(trace.Inst{PC: g.pc(3), Kind: isa.SIMDStore, Addr: g.seqAddr(32), Size: 32, Lanes: 8, Dep1: 2})
}

func distanceGPU(g *gen) {
	g.emit(trace.Inst{PC: g.pc(0), Kind: isa.SIMDLoad, Addr: g.seqAddr(32), Size: 32, Lanes: 8})
	g.emit(trace.Inst{PC: g.pc(1), Kind: isa.SIMDLoad, Addr: g.dataBase + g.iter%8*64, Size: 64, Lanes: 8})
	g.emit(trace.Inst{PC: g.pc(2), Kind: isa.SIMDFP, Dep1: 1, Dep2: 2})
	g.emit(trace.Inst{PC: g.pc(3), Kind: isa.SIMDFP, Dep1: 1})
	g.emit(trace.Inst{PC: g.pc(4), Kind: isa.ALU, Dep1: 1})
	g.emit(trace.Inst{PC: g.pc(5), Kind: isa.Branch, Taken: g.next()%8 != 0, Dep1: 1})
}

// mergeCPU is the serial merge/combination loop used by the sequential
// phases.
func mergeCPU(g *gen) {
	g.emit(trace.Inst{PC: g.pc(0), Kind: isa.Load, Addr: g.seqAddr(8), Size: 8})
	g.emit(trace.Inst{PC: g.pc(1), Kind: isa.ALU, Dep1: 1, Dep2: 3})
	g.emit(trace.Inst{PC: g.pc(2), Kind: isa.Store, Addr: g.seqAddr(8), Size: 8, Dep1: 1})
	g.emit(trace.Inst{PC: g.pc(3), Kind: isa.Branch, Taken: true})
}

// spec defines one kernel's generation parameters.
type spec struct {
	name      string
	pattern   string
	cpuBody   bodyFn
	gpuBody   bodyFn
	seqBody   bodyFn
	footprint uint64
}

var specs = map[string]spec{
	"reduction":   {"reduction", "parallel-merge-sequential", streamAddCPU, streamAddGPU, mergeCPU, 320512},
	"matrix-mul":  {"matrix-mul", "fully-parallel", blockedFPCPU, blockedFPGPU, mergeCPU, 524288},
	"convolution": {"convolution", "parallel-merge-parallel", stencilFPCPU, stencilFPGPU, mergeCPU, 65536},
	"dct":         {"dct", "fully-parallel", transformFPCPU, transformFPGPU, mergeCPU, 262144},
	"merge-sort":  {"merge-sort", "parallel-merge-sequential", irregularCPU, irregularGPU, mergeCPU, 39936},
	"k-mean":      {"k-mean", "parallel-merge-sequential-repeated", distanceCPU, distanceGPU, mergeCPU, 136192},
}

// Names returns the kernel names in Table III order.
func Names() []string {
	names := make([]string, 0, len(specs))
	for n := range specs {
		names = append(names, n)
	}
	sort.Slice(names, func(i, j int) bool { return tableOrder(names[i]) < tableOrder(names[j]) })
	return names
}

func tableOrder(name string) int {
	for i, c := range TableIII() {
		if c.Name == name {
			return i
		}
	}
	return 99
}

func (s spec) cpuParams(phase uint64, n int) *genParams {
	return &genParams{body: s.cpuBody, n: n,
		seed: 0x1000 + phase, pcBase: 0x400000 + phase*0x1000,
		dataBase: cpuDataBase, footprint: s.footprint}
}

func (s spec) gpuParams(phase uint64, n int) *genParams {
	return &genParams{body: s.gpuBody, n: n,
		seed: 0x2000 + phase, pcBase: 0x800000 + phase*0x1000,
		dataBase: gpuDataBase, footprint: s.footprint}
}

func (s spec) seqParams(phase uint64, n int) *genParams {
	return &genParams{body: s.seqBody, n: n,
		seed: 0x3000 + phase, pcBase: 0xc00000 + phase*0x1000,
		dataBase: shrDataBase, footprint: s.footprint/2 + 4096}
}

func parallel(s spec, phase uint64, cpuN, gpuN int) Phase {
	return Phase{
		Kind:   Parallel,
		cpuGen: s.cpuParams(phase, cpuN),
		gpuGen: s.gpuParams(phase, gpuN),
	}
}

func sequential(s spec, phase uint64, n int) Phase {
	return Phase{Kind: Sequential, cpuGen: s.seqParams(phase, n)}
}

func h2d(bytes uint64) Phase {
	return Phase{Kind: Transfer, Dir: HostToDevice, Bytes: bytes, Addr: gpuDataBase}
}

func d2h(bytes uint64) Phase {
	return Phase{Kind: Transfer, Dir: DeviceToHost, Bytes: bytes, Addr: gpuDataBase}
}

func objects(s spec) []locality.Object {
	return []locality.Object{
		{Addr: cpuDataBase, Size: uint32(s.footprint / 2), Region: addrspace.CPUPrivate, User: mem.CPU},
		{Addr: gpuDataBase, Size: uint32(s.footprint / 2), Region: addrspace.GPUPrivate, User: mem.GPU},
		{Addr: shrDataBase, Size: uint32(s.footprint / 4), Region: addrspace.Shared, User: mem.CPU, Critical: true},
		{Addr: shrDataBase + s.footprint/4, Size: uint32(s.footprint / 4), Region: addrspace.Shared, User: mem.GPU},
	}
}

// Open builds the named kernel's program in streaming form: compute
// phases carry restartable generators instead of materialized streams, so
// opening a kernel is O(1) in its instruction count and replaying it
// never allocates a trace. The delivered instruction sequences are
// bit-identical to Generate's (pinned by TestOpenMatchesGenerate); the
// instruction counts, communication counts and initial transfer size
// match Table III exactly.
//
// An opened program is immutable and safe to share: every CPUSource /
// GPUSource call hands out an independent cursor.
func Open(name string) (*Program, error) {
	s, ok := specs[name]
	if !ok {
		return nil, fmt.Errorf("workload: unknown kernel %q (have %v)", name, Names())
	}
	p := &Program{Name: s.name, Pattern: s.pattern, Objects: objects(s)}
	switch name {
	case "reduction":
		p.Phases = []Phase{
			h2d(320512),
			parallel(s, 0, 70006, 70001),
			d2h(4096),
			sequential(s, 1, 99996),
		}
	case "matrix-mul":
		p.Phases = []Phase{
			sequential(s, 0, 16384), // initialise matrices on the host
			h2d(524288),
			parallel(s, 1, 8585229, 8585228),
			d2h(262144),
		}
	case "convolution":
		p.Phases = []Phase{
			h2d(65536),
			parallel(s, 0, 224130, 224130),
			d2h(32768),
			sequential(s, 1, 65536), // merge halo rows on the host
			parallel(s, 2, 224130, 224129),
			d2h(32768),
		}
	case "dct":
		p.Phases = []Phase{
			sequential(s, 0, 262144), // build coefficient tables
			h2d(262244),
			parallel(s, 1, 2359298, 2359298),
			d2h(131072),
		}
	case "merge-sort":
		p.Phases = []Phase{
			h2d(39936),
			parallel(s, 0, 161233, 157233),
			d2h(19968),
			sequential(s, 1, 97668), // final merge of the two halves
		}
	case "k-mean":
		// Three assignment/update rounds: centroids out, partial sums
		// back, host-side centroid update each round.
		cpuIters := []int{615922, 615922, 615921}
		gpuIters := []int{614994, 614994, 614993}
		seqIters := []int{12261, 12261, 12262}
		sizes := []uint64{136192, 8192, 8192}
		for i := 0; i < 3; i++ {
			p.Phases = append(p.Phases,
				h2d(sizes[i]),
				parallel(s, uint64(i*2), cpuIters[i], gpuIters[i]),
				d2h(8192),
				sequential(s, uint64(i*2+1), seqIters[i]),
			)
		}
	}
	return p, nil
}

// MustOpen is Open but panics on unknown kernels.
func MustOpen(name string) *Program {
	p, err := Open(name)
	if err != nil {
		panic(err)
	}
	return p
}

// Generate builds the named kernel's program with materialized trace
// streams, for serialization, golden comparisons and tools that index
// into the traces. Simulation paths should prefer Open: it delivers the
// same instructions without the O(N) stream allocation.
func Generate(name string) (*Program, error) {
	p, err := Open(name)
	if err != nil {
		return nil, err
	}
	for i := range p.Phases {
		p.Phases[i].materialize()
	}
	return p, nil
}

// MustGenerate is Generate but panics on unknown kernels.
func MustGenerate(name string) *Program {
	p, err := Generate(name)
	if err != nil {
		panic(err)
	}
	return p
}

// All generates every kernel in Table III order.
func All() []*Program {
	var out []*Program
	for _, n := range Names() {
		out = append(out, MustGenerate(n))
	}
	return out
}
