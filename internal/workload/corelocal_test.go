package workload

import (
	"testing"

	"heteromem/internal/isa"
	"heteromem/internal/trace"
)

func TestCoreLocalClassification(t *testing.T) {
	compute := trace.Stream{
		{PC: 0x10, Kind: isa.ALU},
		{PC: 0x14, Kind: isa.FP, Dep1: 1},
		{PC: 0x18, Kind: isa.Barrier},
		{PC: 0x1c, Kind: isa.Branch, Taken: true},
	}
	load := trace.Inst{PC: 0x20, Kind: isa.Load, Addr: 0x1000, Size: 8}

	cases := []struct {
		name     string
		ph       Phase
		cpu, gpu bool
	}{
		{"both-compute", Phase{Kind: Parallel, CPU: compute, GPU: compute}, true, true},
		{"cpu-touches-memory", Phase{Kind: Parallel, CPU: append(compute[:3:3], load), GPU: compute}, false, true},
		{"empty-halves", Phase{Kind: Parallel}, true, true},
		{"push-disqualifies", Phase{Kind: Parallel,
			GPU: trace.Stream{{PC: 0x30, Kind: isa.Push, Addr: 0x1000, Size: 64}}}, true, false},
		{"swcache-disqualifies", Phase{Kind: Parallel,
			GPU: trace.Stream{{PC: 0x30, Kind: isa.SWLoad, Addr: 0x1000, Size: 8}}}, true, false},
		{"comm-disqualifies", Phase{Kind: Parallel,
			CPU: trace.Stream{{PC: 0x30, Kind: isa.APIPCI}}}, false, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.ph.CPUCoreLocal(); got != tc.cpu {
				t.Errorf("CPUCoreLocal() = %v, want %v", got, tc.cpu)
			}
			if got := tc.ph.GPUCoreLocal(); got != tc.gpu {
				t.Errorf("GPUCoreLocal() = %v, want %v", got, tc.gpu)
			}
		})
	}
}

// TestCoreLocalGeneratorConservative pins that generator-backed halves
// classify false even when the body only emits compute: conditional
// emission means no sample can certify the whole stream, so streaming
// phases are never overlapped. Materializing the phase makes the stream
// inspectable and the classification exact.
func TestCoreLocalGeneratorConservative(t *testing.T) {
	computeBody := func(g *gen) {
		g.emit(trace.Inst{PC: g.pc(0), Kind: isa.ALU})
		g.emit(trace.Inst{PC: g.pc(1), Kind: isa.Branch, Taken: true})
	}
	ph := Phase{Kind: Parallel, cpuGen: &genParams{body: computeBody, n: 100, seed: 1}}
	if ph.CPUCoreLocal() {
		t.Fatal("generator-backed half classified core-local before materialization")
	}
	ph.materialize()
	if !ph.CPUCoreLocal() {
		t.Fatal("materialized compute-only half not reclassified core-local")
	}
}

// TestBuiltinKernelsNotCoreLocal documents that every Table III kernel
// half touches memory: the certified overlap path never fires for the
// Figure 5 suite, whose goldens pin the sequenced path.
func TestBuiltinKernelsNotCoreLocal(t *testing.T) {
	for _, name := range Names() {
		p := MustGenerate(name)
		for i := range p.Phases {
			ph := &p.Phases[i]
			if ph.Kind != Parallel {
				continue
			}
			if ph.CPUCoreLocal() || ph.GPUCoreLocal() {
				t.Errorf("%s phase %d: unexpectedly core-local (cpu=%v gpu=%v)",
					name, i, ph.CPUCoreLocal(), ph.GPUCoreLocal())
			}
		}
	}
}
