package workload

import (
	"reflect"
	"sync"
	"testing"

	"heteromem/internal/isa"
	"heteromem/internal/trace"
)

// cachedAll shares the generated programs across tests: generation is
// deterministic, and regenerating 26M instructions per test is wasteful.
var cachedAll = sync.OnceValue(All)

func TestCharacteristicsMatchTableIII(t *testing.T) {
	// The generated programs must reproduce Table III exactly:
	// instruction counts, communication counts, initial transfer sizes.
	programs := cachedAll()
	for i, want := range TableIII() {
		p := programs[i]
		if p.Name != want.Name {
			t.Fatalf("program %d is %s, want %s", i, p.Name, want.Name)
		}
		got := p.Characteristics()
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s characteristics:\n got %+v\nwant %+v", want.Name, got, want)
		}
	}
}

func TestAllProgramsValidate(t *testing.T) {
	for _, p := range cachedAll() {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
	}
}

func TestNamesOrder(t *testing.T) {
	names := Names()
	if len(names) != 6 {
		t.Fatalf("names = %v", names)
	}
	want := []string{"reduction", "matrix-mul", "convolution", "dct", "merge-sort", "k-mean"}
	if !reflect.DeepEqual(names, want) {
		t.Fatalf("names = %v, want Table III order %v", names, want)
	}
}

func TestGenerateUnknown(t *testing.T) {
	if _, err := Generate("nope"); err == nil {
		t.Fatal("unknown kernel accepted")
	}
}

func TestDeterministic(t *testing.T) {
	a := MustGenerate("merge-sort")
	b := MustGenerate("merge-sort")
	if len(a.Phases) != len(b.Phases) {
		t.Fatal("phase counts differ")
	}
	for i := range a.Phases {
		if !reflect.DeepEqual(a.Phases[i], b.Phases[i]) {
			t.Fatalf("phase %d differs between generations", i)
		}
	}
}

func TestKernelMixesDiffer(t *testing.T) {
	// Sanity: the kernels exercise different instruction mixes.
	stats := map[string]trace.Stats{}
	for _, p := range cachedAll() {
		var all trace.Stream
		for _, ph := range p.Phases {
			all = trace.Concat(all, ph.CPU, ph.GPU)
		}
		stats[p.Name] = trace.Summarize(all)
	}
	// matrix-mul and dct are FP-heavy; reduction has none of the CPU FP.
	if stats["matrix-mul"].ByKind[isa.FP] == 0 {
		t.Error("matrix-mul has no FP")
	}
	if stats["reduction"].ByKind[isa.FP] != 0 {
		t.Error("reduction should be integer-only")
	}
	// merge-sort is the branchiest relative to size.
	msRate := float64(stats["merge-sort"].Branches) / float64(stats["merge-sort"].Total)
	mmRate := float64(stats["matrix-mul"].Branches) / float64(stats["matrix-mul"].Total)
	if msRate <= mmRate {
		t.Errorf("merge-sort branch rate %.2f <= matrix-mul %.2f", msRate, mmRate)
	}
	// Every kernel has GPU SIMD work.
	for name, st := range stats {
		if st.SIMDOps == 0 {
			t.Errorf("%s has no SIMD ops", name)
		}
	}
}

func TestTransferPhasesWellFormed(t *testing.T) {
	for _, p := range cachedAll() {
		var h2dSeen bool
		for _, ph := range p.Phases {
			if ph.Kind != Transfer {
				continue
			}
			if !h2dSeen {
				if ph.Dir != HostToDevice {
					t.Errorf("%s: first transfer is %v, want h2d (input starts on the CPU)", p.Name, ph.Dir)
				}
				h2dSeen = true
			}
			if ph.Bytes == 0 {
				t.Errorf("%s: zero-byte transfer", p.Name)
			}
		}
		if !h2dSeen {
			t.Errorf("%s: no transfers at all", p.Name)
		}
	}
}

func TestObjectsPresent(t *testing.T) {
	for _, p := range cachedAll() {
		if len(p.Objects) == 0 {
			t.Errorf("%s: no objects for locality planning", p.Name)
		}
	}
}

func TestTotalInstructions(t *testing.T) {
	p := MustGenerate("reduction")
	c := p.Characteristics()
	want := c.CPUInsts + c.GPUInsts + c.SerialInsts
	if got := p.TotalInstructions(); got != want {
		t.Fatalf("TotalInstructions = %d, want %d", got, want)
	}
}

func TestMustGeneratePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustGenerate(bogus) did not panic")
		}
	}()
	MustGenerate("bogus")
}

func TestValidateRejectsMalformedPhases(t *testing.T) {
	cases := []struct {
		name string
		p    Program
	}{
		{"gpu work in sequential", Program{Name: "x", Phases: []Phase{{
			Kind: Sequential, GPU: trace.Stream{{Kind: isa.SIMDALU}},
		}}}},
		{"zero-byte transfer", Program{Name: "x", Phases: []Phase{{
			Kind: Transfer, Dir: HostToDevice,
		}}}},
		{"compute in transfer", Program{Name: "x", Phases: []Phase{{
			Kind: Transfer, Bytes: 64, CPU: trace.Stream{{Kind: isa.ALU}},
		}}}},
		{"invalid trace record", Program{Name: "x", Phases: []Phase{{
			Kind: Parallel, CPU: trace.Stream{{Kind: isa.Kind(250)}},
		}}}},
	}
	for _, c := range cases {
		if err := c.p.Validate(); err == nil {
			t.Errorf("%s accepted", c.name)
		}
	}
}

func TestPhaseKindStrings(t *testing.T) {
	if Sequential.String() != "sequential" || Parallel.String() != "parallel" || Transfer.String() != "transfer" {
		t.Error("phase kind names wrong")
	}
	if HostToDevice.String() != "h2d" || DeviceToHost.String() != "d2h" {
		t.Error("direction names wrong")
	}
}

func TestScaleTransfers(t *testing.T) {
	base := MustGenerate("reduction")
	scaled, err := ScaleTransfers(base, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i, ph := range scaled.Phases {
		orig := base.Phases[i]
		switch ph.Kind {
		case Transfer:
			if ph.Bytes != orig.Bytes*2 {
				t.Errorf("phase %d: bytes %d, want %d", i, ph.Bytes, orig.Bytes*2)
			}
		default:
			if len(ph.CPU) != len(orig.CPU) || len(ph.GPU) != len(orig.GPU) {
				t.Errorf("phase %d: compute changed by transfer scaling", i)
			}
		}
	}
	// The original must be untouched.
	if base.Phases[0].Bytes != 320512 {
		t.Error("ScaleTransfers mutated its input")
	}
	// Rounding floor: tiny factors keep at least one byte.
	tiny, err := ScaleTransfers(base, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	if tiny.Phases[0].Bytes == 0 {
		t.Error("scaled transfer reached zero bytes")
	}
	if _, err := ScaleTransfers(base, 0); err == nil {
		t.Error("zero factor accepted")
	}
	if _, err := ScaleTransfers(base, -1); err == nil {
		t.Error("negative factor accepted")
	}
}

func TestSourceExactCount(t *testing.T) {
	for _, n := range []int{1, 5, 6, 7, 100, 9999} {
		p := &genParams{body: streamAddCPU, n: n, seed: 1, dataBase: cpuDataBase, footprint: 4096}
		s := trace.Materialize(p.source())
		if len(s) != n {
			t.Fatalf("source(n=%d) produced %d", n, len(s))
		}
	}
}

func BenchmarkGenerateAll(b *testing.B) {
	for i := 0; i < b.N; i++ {
		All()
	}
}
