// Package report renders experiment results as aligned ASCII tables and
// text bar charts, shared by the command-line tools, the benchmark
// harness and the examples.
package report

import (
	"fmt"
	"strings"
	"unicode/utf8"

	"heteromem/internal/clock"
)

// Table is a titled grid of cells.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// AddRow appends a row; values are formatted with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		row[i] = fmt.Sprintf("%v", c)
	}
	t.Rows = append(t.Rows, row)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	cols := len(t.Headers)
	for _, r := range t.Rows {
		if len(r) > cols {
			cols = len(r)
		}
	}
	widths := make([]int, cols)
	measure := func(row []string) {
		for i, c := range row {
			// Count runes, not bytes: cells may hold non-ASCII (µs
			// durations, Greek letters) and byte widths misalign them.
			if n := utf8.RuneCountInString(c); n > widths[i] {
				widths[i] = n
			}
		}
	}
	measure(t.Headers)
	for _, r := range t.Rows {
		measure(r)
	}

	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
		b.WriteString(strings.Repeat("=", utf8.RuneCountInString(t.Title)))
		b.WriteByte('\n')
	}
	writeRow := func(row []string) {
		for i := 0; i < cols; i++ {
			cell := ""
			if i < len(row) {
				cell = row[i]
			}
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(pad(cell, widths[i]))
		}
		b.WriteByte('\n')
	}
	if len(t.Headers) > 0 {
		writeRow(t.Headers)
		total := 0
		for i, w := range widths {
			if i > 0 {
				total += 2
			}
			total += w
		}
		b.WriteString(strings.Repeat("-", total))
		b.WriteByte('\n')
	}
	for _, r := range t.Rows {
		writeRow(r)
	}
	return b.String()
}

func pad(s string, w int) string {
	n := utf8.RuneCountInString(s)
	if n >= w {
		return s
	}
	return s + strings.Repeat(" ", w-n)
}

// Bar renders a horizontal bar of the given fractional length (0..1)
// over width characters using '#'.
func Bar(frac float64, width int) string {
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	n := int(frac*float64(width) + 0.5)
	return strings.Repeat("#", n) + strings.Repeat(".", width-n)
}

// StackedBar renders segments (fractions of the full width, summing to
// <=1) with one rune per segment class, e.g. 's', 'p', 'c' for the
// Figure 5 breakdown.
func StackedBar(fracs []float64, runes []rune, width int) string {
	var b strings.Builder
	used := 0
	for i, f := range fracs {
		n := int(f*float64(width) + 0.5)
		if used+n > width {
			n = width - used
		}
		b.WriteString(strings.Repeat(string(runes[i%len(runes)]), n))
		used += n
	}
	if used < width {
		b.WriteString(strings.Repeat(".", width-used))
	}
	return b.String()
}

// Dur formats a simulated duration for table cells.
func Dur(d clock.Duration) string { return d.String() }

// Pct formats a fraction as a percentage.
func Pct(f float64) string { return fmt.Sprintf("%.1f%%", f*100) }

// F3 formats a float with three decimals.
func F3(f float64) string { return fmt.Sprintf("%.3f", f) }
