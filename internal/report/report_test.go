package report

import (
	"strings"
	"testing"
	"unicode/utf8"

	"heteromem/internal/clock"
)

func TestTableAlignment(t *testing.T) {
	tbl := Table{
		Title:   "T",
		Headers: []string{"name", "value"},
	}
	tbl.AddRow("a", 1)
	tbl.AddRow("longer-name", 22)
	out := tbl.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// Title, underline, header, separator, two rows.
	if len(lines) != 6 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[2], "name") {
		t.Errorf("header line %q", lines[2])
	}
	// Both data rows have the value column starting at the same offset.
	iA := strings.Index(lines[4], "1")
	iB := strings.Index(lines[5], "22")
	if iA != iB {
		t.Errorf("columns misaligned: %d vs %d\n%s", iA, iB, out)
	}
}

func TestTableNoTitleNoHeaders(t *testing.T) {
	tbl := Table{}
	tbl.AddRow("x")
	out := tbl.String()
	if strings.Contains(out, "=") || strings.Contains(out, "-") {
		t.Errorf("decorations on bare table:\n%s", out)
	}
}

func TestBar(t *testing.T) {
	if got := Bar(0.5, 10); got != "#####....." {
		t.Errorf("Bar(0.5,10) = %q", got)
	}
	if got := Bar(-1, 4); got != "...." {
		t.Errorf("Bar(-1) = %q", got)
	}
	if got := Bar(2, 4); got != "####" {
		t.Errorf("Bar(2) = %q", got)
	}
}

func TestStackedBar(t *testing.T) {
	got := StackedBar([]float64{0.25, 0.5, 0.25}, []rune{'s', 'p', 'c'}, 8)
	if got != "sspppPcc" && got != "ssppppcc" {
		// rounding may shift one cell; require length and order.
		if len(got) != 8 {
			t.Fatalf("StackedBar length %d: %q", len(got), got)
		}
	}
	if strings.IndexByte(got, 's') > strings.IndexByte(got, 'p') {
		t.Errorf("segment order wrong: %q", got)
	}
	// Over-full input clamps to width.
	got = StackedBar([]float64{0.8, 0.8}, []rune{'a', 'b'}, 10)
	if len(got) != 10 {
		t.Errorf("over-full bar length %d", len(got))
	}
}

func TestFormatters(t *testing.T) {
	if Pct(0.125) != "12.5%" {
		t.Errorf("Pct = %q", Pct(0.125))
	}
	if F3(1.0/3) != "0.333" {
		t.Errorf("F3 = %q", F3(1.0/3))
	}
	if Dur(1500*clock.Nanosecond) != "1.500us" {
		t.Errorf("Dur = %q", Dur(1500*clock.Nanosecond))
	}
}

func TestTableRuneAlignment(t *testing.T) {
	tbl := Table{Headers: []string{"name", "value"}}
	tbl.AddRow("µ-bench", "1")   // multi-byte rune in the name cell
	tbl.AddRow("plain", "22222") // longer ASCII cell sets the width
	out := tbl.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("expected 4 lines, got %d:\n%s", len(lines), out)
	}
	// The value column must start at the same on-screen (rune) offset in
	// every row; byte-based padding shifts the µ-bench row left by one.
	valCol := strings.Index(lines[0], "value")
	for _, row := range []string{lines[2], lines[3]} {
		runes := []rune(row)
		if len(runes) < valCol {
			t.Fatalf("row %q shorter than value column %d", row, valCol)
		}
		cell := strings.TrimRight(string(runes[valCol:]), " ")
		if cell != "1" && cell != "22222" {
			t.Errorf("value column misaligned in %q: got cell %q\n%s", row, cell, out)
		}
	}
	if w := utf8.RuneCountInString(lines[1]); w != utf8.RuneCountInString(strings.TrimRight(lines[0], " ")) {
		t.Errorf("separator width %d does not match header width", w)
	}
}
