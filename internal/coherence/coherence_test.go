package coherence

import (
	"testing"
	"testing/quick"
)

// Node indices for the two PUs' coherence domains.
const (
	cpuNode = 0
	gpuNode = 1
)

func TestNewValidation(t *testing.T) {
	if _, err := NewDirectory(0, 2); err == nil {
		t.Error("zero line size accepted")
	}
	if _, err := NewDirectory(100, 2); err == nil {
		t.Error("non-power-of-two line size accepted")
	}
	if _, err := NewDirectory(64, 2); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

func TestReadReadNoTraffic(t *testing.T) {
	d := MustNewDirectory(64, 2)
	a1 := d.Access(cpuNode, 0x1000, false)
	a2 := d.Access(gpuNode, 0x1000, false)
	if a1.Messages != 0 || a2.Messages != 0 {
		t.Fatalf("clean sharing generated traffic: %+v %+v", a1, a2)
	}
	if d.StateOf(0x1000) != Shared {
		t.Fatalf("state = %v, want S", d.StateOf(0x1000))
	}
	if !d.SharedBy(cpuNode, 0x1000) || !d.SharedBy(gpuNode, 0x1000) {
		t.Fatal("sharers not recorded")
	}
}

func TestWriteInvalidatesSharer(t *testing.T) {
	d := MustNewDirectory(64, 2)
	d.Access(cpuNode, 0x1000, false)
	act := d.Access(gpuNode, 0x1000, true)
	if act.Invalidations != 1 {
		t.Fatalf("invalidations = %d, want 1", act.Invalidations)
	}
	if act.Writeback {
		t.Fatal("clean copy forced a writeback")
	}
	if d.StateOf(0x1000) != Modified {
		t.Fatalf("state = %v, want M", d.StateOf(0x1000))
	}
	if d.SharedBy(cpuNode, 0x1000) {
		t.Fatal("invalidated sharer still recorded")
	}
}

func TestReadOfModifiedForcesWriteback(t *testing.T) {
	d := MustNewDirectory(64, 2)
	d.Access(gpuNode, 0x2000, true)
	act := d.Access(cpuNode, 0x2000, false)
	if !act.Writeback || act.WritebackNode != gpuNode {
		t.Fatalf("read of remote M: %+v, want writeback from GPU", act)
	}
	if d.StateOf(0x2000) != Shared {
		t.Fatalf("state after downgrade = %v, want S", d.StateOf(0x2000))
	}
	// Both hold it now.
	if !d.SharedBy(cpuNode, 0x2000) || !d.SharedBy(gpuNode, 0x2000) {
		t.Fatal("sharers wrong after downgrade")
	}
}

func TestWriteOfRemoteModified(t *testing.T) {
	d := MustNewDirectory(64, 2)
	d.Access(cpuNode, 0x3000, true)
	act := d.Access(gpuNode, 0x3000, true)
	if !act.Writeback || act.WritebackNode != cpuNode {
		t.Fatalf("write of remote M: %+v", act)
	}
	if act.Invalidations != 1 {
		t.Fatalf("invalidations = %d, want 1", act.Invalidations)
	}
	if d.StateOf(0x3000) != Modified || !d.SharedBy(gpuNode, 0x3000) || d.SharedBy(cpuNode, 0x3000) {
		t.Fatal("ownership transfer wrong")
	}
}

func TestLocalUpgradeAndRewrite(t *testing.T) {
	d := MustNewDirectory(64, 2)
	d.Access(cpuNode, 0x4000, false)
	act := d.Access(cpuNode, 0x4000, true) // local S->M upgrade
	if act.Messages != 0 {
		t.Fatalf("local upgrade cost messages: %+v", act)
	}
	act = d.Access(cpuNode, 0x4000, true) // rewrite in M
	if act.Messages != 0 {
		t.Fatalf("rewrite in M cost messages: %+v", act)
	}
}

func TestEvict(t *testing.T) {
	d := MustNewDirectory(64, 2)
	d.Access(cpuNode, 0x5000, true)
	d.Evict(cpuNode, 0x5000)
	if d.StateOf(0x5000) != Invalid {
		t.Fatalf("state after owner evict = %v", d.StateOf(0x5000))
	}
	if d.TrackedLines() != 0 {
		t.Fatal("directory entry leaked")
	}
	// Evicting the owner with a sharer remaining degrades to S.
	d.Access(cpuNode, 0x6000, false)
	d.Access(gpuNode, 0x6000, false)
	d2 := MustNewDirectory(64, 2)
	d2.Access(gpuNode, 0x7000, true)
	d2.Access(cpuNode, 0x7000, false) // S, both sharers
	d2.Evict(gpuNode, 0x7000)
	if d2.StateOf(0x7000) != Shared || !d2.SharedBy(cpuNode, 0x7000) {
		t.Fatal("remaining sharer lost")
	}
	// Evicting an untracked line is a no-op.
	d2.Evict(cpuNode, 0x999000)
}

func TestLineGranularity(t *testing.T) {
	d := MustNewDirectory(64, 2)
	d.Access(cpuNode, 0x1000, true)
	// Same line, different offset: still a local rewrite.
	if act := d.Access(cpuNode, 0x1020, true); act.Messages != 0 {
		t.Fatal("same-line access treated as new line")
	}
	if d.TrackedLines() != 1 {
		t.Fatalf("tracked = %d, want 1", d.TrackedLines())
	}
}

func TestStats(t *testing.T) {
	d := MustNewDirectory(64, 2)
	d.Access(cpuNode, 0x1000, false)
	d.Access(gpuNode, 0x1000, true)
	d.Access(cpuNode, 0x1000, false)
	st := d.Stats()
	if st.Reads != 2 || st.Writes != 1 {
		t.Fatalf("stats %+v", st)
	}
	if st.Invalidations != 1 || st.ForcedWritebacks != 1 {
		t.Fatalf("stats %+v", st)
	}
	if st.Messages == 0 {
		t.Fatal("no messages counted")
	}
}

// Property: the protocol invariant — at most one PU in Modified, and a
// Modified line has exactly one sharer recorded as owner — holds for any
// access interleaving.
func TestSWMPInvariantProperty(t *testing.T) {
	f := func(ops []uint16) bool {
		d := MustNewDirectory(64, 2)
		for _, op := range ops {
			pu := int(op & 1)
			write := op&2 != 0
			addr := uint64(op>>2&0xff) * 64
			if op&0x8000 != 0 {
				d.Evict(pu, addr)
				continue
			}
			d.Access(pu, addr, write)
			switch d.StateOf(addr) {
			case Modified:
				// Exactly one sharer, and it is the last writer when the
				// op was a write.
				n := 0
				for p := 0; p < 2; p++ {
					if d.SharedBy(p, addr) {
						n++
					}
				}
				if n != 1 {
					return false
				}
				if write && !d.SharedBy(pu, addr) {
					return false
				}
			case Invalid:
				if d.SharedBy(cpuNode, addr) || d.SharedBy(gpuNode, addr) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkDirectoryPingPong(b *testing.B) {
	d := MustNewDirectory(64, 2)
	for i := 0; i < b.N; i++ {
		d.Access(i&1, uint64(i%64)*64, true)
	}
}
