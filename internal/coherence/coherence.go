// Package coherence implements a directory-based hardware coherence
// protocol over the two processing units' private caches. The paper's
// motivation (Sections I-II) is that a unified, fully coherent,
// strongly consistent memory system is the ideal programming target but
// expensive to build across heterogeneous PUs; this package supplies the
// machinery so that cost can be measured rather than asserted: a
// directory at the shared cache tracks which PU holds each line and in
// what state, and cross-PU accesses pay invalidation and
// forced-writeback traffic.
//
// The protocol is MSI at PU granularity (each PU's private hierarchy is
// one coherence domain, the standard arrangement for CPU+GPU systems):
//
//   - A read of a line another PU holds Modified forces a writeback and
//     downgrades both to Shared.
//   - A write invalidates every other PU's copy and takes Modified.
//   - Evictions silently drop sharers; dirty evictions clear ownership.
package coherence

import "fmt"

// State is a line's directory state.
type State uint8

const (
	// Invalid: no PU holds the line.
	Invalid State = iota
	// Shared: one or more PUs hold a clean copy.
	Shared
	// Modified: exactly one PU holds a dirty copy.
	Modified
)

func (s State) String() string {
	switch s {
	case Invalid:
		return "I"
	case Shared:
		return "S"
	case Modified:
		return "M"
	default:
		return fmt.Sprintf("state(%d)", uint8(s))
	}
}

type line struct {
	state   State
	sharers []bool
	owner   int
}

// Action describes what a coherence access requires of the memory
// system, so the hierarchy can price it.
type Action struct {
	// Invalidations is how many remote copies must be invalidated.
	Invalidations int
	// Writeback reports a remote Modified copy must be written back
	// before the access proceeds, and names the node holding it.
	Writeback     bool
	WritebackNode int
	// Messages is the total protocol messages on the interconnect
	// (requests, invalidations, acks, data forwards).
	Messages int
}

// Stats counts protocol activity.
type Stats struct {
	Reads            uint64
	Writes           uint64
	Invalidations    uint64
	ForcedWritebacks uint64
	Messages         uint64
}

// Directory tracks the coherence state of every line resident in any
// private cache. Nodes are coherence domains (one per PU's private
// hierarchy), identified by index so the package stays independent of
// the rest of the simulator.
type Directory struct {
	lineBytes uint64
	nodes     int
	lines     map[uint64]*line
	stats     Stats
}

// NewDirectory returns an empty directory tracking lineBytes-sized
// lines across nodes coherence domains. lineBytes must be a power of
// two and nodes at least two (one domain has nothing to be coherent
// with).
func NewDirectory(lineBytes uint64, nodes int) (*Directory, error) {
	if lineBytes == 0 || lineBytes&(lineBytes-1) != 0 {
		return nil, fmt.Errorf("coherence: line size %d not a power of two", lineBytes)
	}
	if nodes < 2 {
		return nil, fmt.Errorf("coherence: %d nodes; need at least 2", nodes)
	}
	return &Directory{lineBytes: lineBytes, nodes: nodes, lines: make(map[uint64]*line)}, nil
}

// MustNewDirectory is NewDirectory but panics on configuration error.
func MustNewDirectory(lineBytes uint64, nodes int) *Directory {
	d, err := NewDirectory(lineBytes, nodes)
	if err != nil {
		panic(err)
	}
	return d
}

func (d *Directory) lineOf(addr uint64) uint64 { return addr &^ (d.lineBytes - 1) }

// Reset returns the directory to its just-constructed state: no tracked
// lines, statistics cleared.
func (d *Directory) Reset() {
	clear(d.lines)
	d.stats = Stats{}
}

// Access records node reading or writing addr and returns the coherence
// work the access requires. It panics on an out-of-range node, which is
// always a wiring bug.
func (d *Directory) Access(node int, addr uint64, write bool) Action {
	if node < 0 || node >= d.nodes {
		panic(fmt.Sprintf("coherence: node %d out of range [0,%d)", node, d.nodes))
	}
	key := d.lineOf(addr)
	ln := d.lines[key]
	if ln == nil {
		ln = &line{sharers: make([]bool, d.nodes)}
		d.lines[key] = ln
	}
	var act Action
	if write {
		d.stats.Writes++
		for p := 0; p < d.nodes; p++ {
			if p != node && ln.sharers[p] {
				act.Invalidations++
				act.Messages += 2 // invalidate + ack
				if ln.state == Modified && ln.owner == p {
					act.Writeback = true
					act.WritebackNode = p
					act.Messages++ // data writeback
				}
				ln.sharers[p] = false
			}
		}
		ln.state = Modified
		ln.owner = node
		ln.sharers[node] = true
	} else {
		d.stats.Reads++
		if ln.state == Modified && ln.owner != node {
			act.Writeback = true
			act.WritebackNode = ln.owner
			act.Messages += 3 // forward request + data + downgrade ack
			ln.state = Shared
		}
		if ln.state == Invalid {
			ln.state = Shared
		}
		ln.sharers[node] = true
	}
	d.stats.Invalidations += uint64(act.Invalidations)
	if act.Writeback {
		d.stats.ForcedWritebacks++
	}
	d.stats.Messages += uint64(act.Messages)
	return act
}

// Evict records node dropping its copy of addr's line.
func (d *Directory) Evict(node int, addr uint64) {
	key := d.lineOf(addr)
	ln := d.lines[key]
	if ln == nil {
		return
	}
	ln.sharers[node] = false
	if ln.state == Modified && ln.owner == node {
		ln.state = Invalid
	}
	any := false
	for p := 0; p < d.nodes; p++ {
		any = any || ln.sharers[p]
	}
	if !any {
		delete(d.lines, key)
	} else if ln.state == Modified {
		// The owner left but another sharer remains: degrade to Shared.
		ln.state = Shared
	}
}

// StateOf returns the directory state of addr's line.
func (d *Directory) StateOf(addr uint64) State {
	if ln := d.lines[d.lineOf(addr)]; ln != nil {
		return ln.state
	}
	return Invalid
}

// SharedBy reports whether node currently holds addr's line.
func (d *Directory) SharedBy(node int, addr uint64) bool {
	if ln := d.lines[d.lineOf(addr)]; ln != nil {
		return ln.sharers[node]
	}
	return false
}

// TrackedLines returns how many lines the directory currently tracks —
// the directory storage cost the paper's scalability concern is about.
func (d *Directory) TrackedLines() int { return len(d.lines) }

// Stats returns a snapshot of the counters.
func (d *Directory) Stats() Stats { return d.stats }
