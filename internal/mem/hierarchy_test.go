package mem

import (
	"testing"
	"testing/quick"

	"heteromem/internal/clock"
	"heteromem/internal/noc"
)

func newH(t *testing.T) *Hierarchy {
	t.Helper()
	h, err := New(TableII())
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestTableIIValid(t *testing.T) {
	cfg := TableII()
	if _, err := New(cfg); err != nil {
		t.Fatalf("baseline config invalid: %v", err)
	}
	// Aggregate L3 is 8 MB in 4 tiles.
	if cfg.L3Tiles*cfg.L3Tile.SizeBytes != 8<<20 {
		t.Fatalf("L3 total = %d, want 8MB", cfg.L3Tiles*cfg.L3Tile.SizeBytes)
	}
	if cfg.DRAM.Channels != 4 {
		t.Fatalf("DRAM channels = %d, want 4", cfg.DRAM.Channels)
	}
}

func TestConfigValidation(t *testing.T) {
	cfg := TableII()
	cfg.L3Tiles = 0
	if _, err := New(cfg); err == nil {
		t.Fatal("zero L3 tiles accepted")
	}
	cfg = TableII()
	cfg.Ring = noc.Config{Stops: 3, HopLatency: 1, LinkBytesPerCycle: 32, CycleTime: 1}
	if _, err := New(cfg); err == nil {
		t.Fatal("mismatched ring stop count accepted")
	}
}

func TestCPUL1Hit(t *testing.T) {
	h := newH(t)
	// First access: full miss path. Second: L1 hit at exactly L1 latency.
	h.Access(CPU, 0x1000, false, 0)
	start := clock.Time(clock.Microsecond)
	done := h.Access(CPU, 0x1000, false, start)
	if done.Sub(start) != h.Config().CPUL1DLat {
		t.Fatalf("L1 hit latency %v, want %v", done.Sub(start), h.Config().CPUL1DLat)
	}
	if h.Stats().L1Hits[CPU] != 1 {
		t.Fatalf("L1 hits = %d, want 1", h.Stats().L1Hits[CPU])
	}
}

func TestLatencyOrderingAcrossLevels(t *testing.T) {
	h := newH(t)
	cfg := h.Config()

	// Cold miss goes to DRAM.
	coldDone := h.Access(CPU, 0x4000, false, 0)
	cold := coldDone.Sub(0)

	// L1 hit.
	s := clock.Time(clock.Microsecond)
	l1 := h.Access(CPU, 0x4000, false, s).Sub(s)

	// Evict from L1 only (fill conflicting lines into L1's set) is hard to
	// target; instead use a fresh address resident only in L3: access once,
	// then flush private caches.
	h.Access(CPU, 0x8000, false, s)
	h.FlushPrivate(CPU)
	s2 := clock.Time(2 * clock.Microsecond)
	l3 := h.Access(CPU, 0x8000, false, s2).Sub(s2)

	if !(l1 < l3 && l3 < cold) {
		t.Fatalf("latency ordering violated: L1=%v L3=%v DRAM=%v", l1, l3, cold)
	}
	if l1 != cfg.CPUL1DLat {
		t.Fatalf("L1 latency %v, want %v", l1, cfg.CPUL1DLat)
	}
	// The L3 round trip must include at least request latencies + L3.
	if l3 < cfg.CPUL1DLat+cfg.CPUL2Lat+cfg.L3Lat {
		t.Fatalf("L3 latency %v implausibly small", l3)
	}
}

func TestGPUAccessPath(t *testing.T) {
	h := newH(t)
	cfg := h.Config()
	cold := h.Access(GPU, 0x2000, false, 0).Sub(0)
	s := clock.Time(clock.Microsecond)
	hit := h.Access(GPU, 0x2000, false, s).Sub(s)
	if hit != cfg.GPUL1DLat {
		t.Fatalf("GPU L1 hit %v, want %v", hit, cfg.GPUL1DLat)
	}
	if cold <= hit {
		t.Fatal("GPU cold miss not slower than hit")
	}
	if h.Stats().DRAMFills[GPU] != 1 {
		t.Fatalf("GPU DRAM fills = %d, want 1", h.Stats().DRAMFills[GPU])
	}
}

func TestSharedL3VisibleToBothPUs(t *testing.T) {
	h := newH(t)
	// CPU warms the line into L3; GPU should then hit in L3, not DRAM.
	h.Access(CPU, 0x6000, false, 0)
	s := clock.Time(clock.Microsecond)
	h.Access(GPU, 0x6000, false, s)
	st := h.Stats()
	if st.DRAMFills[GPU] != 0 {
		t.Fatalf("GPU went to DRAM despite shared L3 (fills=%d)", st.DRAMFills[GPU])
	}
	if st.L3Hits[GPU] != 1 {
		t.Fatalf("GPU L3 hits = %d, want 1", st.L3Hits[GPU])
	}
}

func TestMSHRMergesConcurrentMisses(t *testing.T) {
	h := newH(t)
	d1 := h.Access(CPU, 0xa000, false, 0)
	// Second access to the same line issued before the first completes
	// merges and finishes no later than the primary.
	d2 := h.Access(CPU, 0xa000, false, 10)
	if d2 > d1 {
		t.Fatalf("merged miss (%v) finished after primary (%v)", d2, d1)
	}
}

func TestPushSharedMarksExplicit(t *testing.T) {
	h := newH(t)
	done := h.Push(CPU, 0x10000, 256, LevelShared, 0)
	if done == 0 {
		t.Fatal("push completed instantaneously")
	}
	explicit := 0
	for _, tile := range h.l3 {
		explicit += tile.ExplicitBlocks()
	}
	if explicit != 4 { // 256 B = 4 lines
		t.Fatalf("explicit L3 blocks = %d, want 4", explicit)
	}
	if h.Stats().Pushes != 1 || h.Stats().PushBytes != 256 {
		t.Fatalf("push stats %+v", h.Stats())
	}
}

func TestPushSoftwarePlacesInScratchpad(t *testing.T) {
	h := newH(t)
	h.Push(GPU, 0x20000, 4096, LevelSoftware, 0)
	if !h.Scratchpad().Resident(0x20000) || !h.Scratchpad().Resident(0x20fff) {
		t.Fatal("pushed range not resident in scratchpad")
	}
}

func TestPushSoftwareOverCapacityRecovers(t *testing.T) {
	h := newH(t)
	h.Push(GPU, 0x0, 16<<10, LevelSoftware, 0)
	// Second push exceeds the 16 KB capacity: the scratchpad is recycled.
	h.Push(GPU, 0x100000, 8<<10, LevelSoftware, 0)
	if !h.Scratchpad().Resident(0x100000) {
		t.Fatal("scratchpad did not recover from over-capacity push")
	}
	if h.Scratchpad().Resident(0x0) {
		t.Fatal("old range survived recycle")
	}
}

func TestPushPrivateWarmsL1(t *testing.T) {
	h := newH(t)
	h.Push(CPU, 0x30000, 128, LevelPrivate, 0)
	s := clock.Time(clock.Microsecond)
	d := h.Access(CPU, 0x30000, false, s)
	if d.Sub(s) != h.Config().CPUL1DLat {
		t.Fatalf("access after private push took %v, want L1 hit %v", d.Sub(s), h.Config().CPUL1DLat)
	}
}

func TestPushZeroSize(t *testing.T) {
	h := newH(t)
	if got := h.Push(CPU, 0x1000, 0, LevelShared, 42); got != 42 {
		t.Fatalf("zero-size push took time: %v", got)
	}
}

func TestFlushPrivate(t *testing.T) {
	h := newH(t)
	h.Access(CPU, 0x1000, true, 0)
	wb := h.FlushPrivate(CPU)
	if wb == 0 {
		t.Fatal("flush of dirty private caches wrote back nothing")
	}
	// After the flush the access misses L1/L2 again (L3 still holds it).
	s := clock.Time(clock.Microsecond)
	d := h.Access(CPU, 0x1000, false, s)
	if d.Sub(s) <= h.Config().CPUL1DLat+h.Config().CPUL2Lat {
		t.Fatal("access after flush hit a private cache")
	}
}

func TestCacheStatsNames(t *testing.T) {
	h := newH(t)
	h.Access(CPU, 0x0, false, 0)
	st := h.CacheStats()
	for _, name := range []string{"cpu.l1d", "cpu.l2", "gpu.l1d", "l3.t0", "l3.t3"} {
		if _, ok := st[name]; !ok {
			t.Errorf("missing cache stats for %q", name)
		}
	}
}

func TestPUAndLevelStrings(t *testing.T) {
	if CPU.String() != "cpu" || GPU.String() != "gpu" {
		t.Error("PU names wrong")
	}
	if LevelPrivate.String() != "private" || LevelShared.String() != "shared" || LevelSoftware.String() != "software" {
		t.Error("level names wrong")
	}
}

func TestAccessorsAndGPUFlush(t *testing.T) {
	h := newH(t)
	if h.DRAM() == nil || h.Ring() == nil {
		t.Fatal("substrate accessors returned nil")
	}
	// GPU flush clears the L1 and the scratchpad.
	h.Access(GPU, 0x1000, true, 0)
	h.Push(GPU, 0x2000, 1024, LevelSoftware, 0)
	wb := h.FlushPrivate(GPU)
	if wb == 0 {
		t.Fatal("GPU flush wrote back nothing despite a dirty line")
	}
	if h.Scratchpad().Used() != 0 {
		t.Fatal("scratchpad survived GPU flush")
	}
}

func TestL3DirtyEvictionWritesBack(t *testing.T) {
	// Shrink the L3 to one tiny tile so evictions happen quickly, and
	// fill it with dirty lines (stores under write-allocate).
	cfg := TableII()
	cfg.L3Tile.SizeBytes = 4096
	cfg.L3Tile.Ways = 4
	cfg.L3Tile.MaxExplicitWays = 2
	cfg.L3Tiles = 4
	h, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var now clock.Time
	dramBefore := h.DRAM().Stats().Requests
	for i := 0; i < 2048; i++ {
		now = h.Access(CPU, uint64(i)*64, true, now)
		// Keep the private caches from absorbing everything.
		if i%64 == 63 {
			h.FlushPrivate(CPU)
		}
	}
	if h.DRAM().Stats().Requests <= dramBefore {
		t.Fatal("no DRAM traffic at all")
	}
	if h.Stats().Writebacks == 0 {
		t.Fatal("no writebacks despite dirty working set far beyond the L3")
	}
}

func TestAccessUnknownPUPanics(t *testing.T) {
	h := newH(t)
	defer func() {
		if recover() == nil {
			t.Fatal("unknown PU did not panic")
		}
	}()
	h.Access(PU(9), 0, false, 0)
}

// Property: every access completes at or after its start plus the
// first-level latency, for any interleaving of PUs, addresses and ops.
func TestAccessLowerBoundProperty(t *testing.T) {
	f := func(ops []uint32) bool {
		h := MustNew(TableII())
		var now clock.Time
		for _, op := range ops {
			pu := PU(op & 1)
			write := op&2 != 0
			addr := uint64(op >> 2 & 0xffff * 64)
			now = now.Add(clock.Nanosecond)
			minLat := h.Config().CPUL1DLat
			if pu == GPU {
				minLat = h.Config().GPUL1DLat
			}
			done := h.Access(pu, addr, write, now)
			if done < now.Add(minLat) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkAccessHot(b *testing.B) {
	h := MustNew(TableII())
	h.Access(CPU, 0x1000, false, 0)
	now := clock.Time(clock.Microsecond)
	for i := 0; i < b.N; i++ {
		now = h.Access(CPU, 0x1000, false, now)
	}
}

func BenchmarkAccessStreaming(b *testing.B) {
	h := MustNew(TableII())
	var now clock.Time
	for i := 0; i < b.N; i++ {
		now = h.Access(CPU, uint64(i)*64, false, now)
	}
}
