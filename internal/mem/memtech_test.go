package mem

import (
	"strings"
	"testing"

	"heteromem/internal/memtech"
	"heteromem/internal/obs"
)

// Every memory technology must assemble, serve a miss-heavy access
// stream, reset cleanly, and surface nonzero memtech.* counters.
func TestHierarchyMemTechs(t *testing.T) {
	counters := map[memtech.Kind]string{
		memtech.DRAM:      "memtech.dram.accesses",
		memtech.HBM:       "memtech.hbm.accesses",
		memtech.NVM:       "memtech.nvm.reads",
		memtech.DRAMCache: "memtech.dram_cache.misses",
	}
	for _, k := range memtech.AllKinds() {
		t.Run(k.String(), func(t *testing.T) {
			cfg := TableII()
			cfg.Tech = memtech.Spec{Kind: k}
			h, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if h.TechKind() != k {
				t.Fatalf("TechKind = %v, want %v", h.TechKind(), k)
			}
			reg := obs.NewRegistry()
			h.Instrument(reg)

			// A stride-64 stream over 32 MB overruns every cache level, so
			// the terminal backend must serve fills.
			var now uint64
			for addr := uint64(0); addr < 32<<20; addr += 4096 {
				now = uint64(h.Access(CPU, addr, addr%8192 == 0, 0))
			}
			_ = now
			st := h.Stats()
			if st.DRAMFills[CPU] == 0 {
				t.Fatal("stream must miss to the backend")
			}
			h.FlushObs()
			snap := reg.Snapshot()
			if got := snap.Counters[counters[k]]; got == 0 {
				t.Errorf("%s = 0, want nonzero (have %d fills)", counters[k], st.DRAMFills[CPU])
			}

			// Reset must restore cold state: the same stream replays with
			// identical fill counts.
			h.Reset()
			if h.Stats().DRAMFills[CPU] != 0 {
				t.Fatal("Reset must clear stats")
			}
			for addr := uint64(0); addr < 32<<20; addr += 4096 {
				h.Access(CPU, addr, addr%8192 == 0, 0)
			}
			if got := h.Stats().DRAMFills[CPU]; got != st.DRAMFills[CPU] {
				t.Errorf("fills after Reset = %d, want %d (reset not cold)", got, st.DRAMFills[CPU])
			}
		})
	}
}

// The default Tech must leave the hierarchy on the bit-identical
// DRAMStage path.
func TestDefaultTechIsDRAMStage(t *testing.T) {
	h := MustNew(TableII())
	if h.TechKind() != memtech.DRAM {
		t.Fatalf("default tech = %v", h.TechKind())
	}
	if h.Backend() == nil {
		t.Fatal("backend must be constructed")
	}
}

// Config.validate must reject malformed mem_tech blocks with the JSON
// path of the offending field.
func TestConfigRejectsBadTech(t *testing.T) {
	cfg := TableII()
	cfg.Tech = memtech.Spec{Kind: memtech.NVM, NVM: &memtech.NVMParams{Channels: -1}}
	_, err := New(cfg)
	if err == nil || !strings.Contains(err.Error(), "mem_tech.nvm.channels") {
		t.Errorf("want mem_tech.nvm.channels error, got %v", err)
	}
}
