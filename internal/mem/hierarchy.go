// Package mem composes the cache, interconnect and DRAM substrates into
// the memory hierarchy of Table II: per-PU first-level caches, the CPU's
// private L2, a shared four-tile L3 reached over the ring bus, and the
// DDR3 memory controllers behind it. The hierarchy times individual
// accesses and explicit push placements, and exposes the GPU's
// software-managed cache.
package mem

import (
	"fmt"

	"heteromem/internal/cache"
	"heteromem/internal/clock"
	"heteromem/internal/coherence"
	"heteromem/internal/dram"
	"heteromem/internal/noc"
	"heteromem/internal/obs"
)

// PU identifies a processing unit attached to the hierarchy.
type PU uint8

const (
	// CPU is the out-of-order general-purpose core.
	CPU PU = iota
	// GPU is the in-order SIMD accelerator core.
	GPU
	// NumPUs is the number of processing units.
	NumPUs
)

func (p PU) String() string {
	switch p {
	case CPU:
		return "cpu"
	case GPU:
		return "gpu"
	default:
		return fmt.Sprintf("pu(%d)", uint8(p))
	}
}

// Level identifies a target cache level for explicit (push) placement.
type Level uint8

const (
	// LevelPrivate places data in the PU's first-level data cache.
	LevelPrivate Level = iota
	// LevelShared places data in the shared second-level (L3) cache —
	// the "push(x, S)" of the paper's locality examples (Figure 4).
	LevelShared
	// LevelSoftware places data in the GPU's software-managed cache.
	LevelSoftware
)

func (l Level) String() string {
	switch l {
	case LevelPrivate:
		return "private"
	case LevelShared:
		return "shared"
	case LevelSoftware:
		return "software"
	default:
		return fmt.Sprintf("level(%d)", uint8(l))
	}
}

// Config describes the whole hierarchy. Latencies are absolute durations;
// callers convert from cycle counts in the owning frequency domain.
type Config struct {
	CPUL1D cache.Config
	CPUL2  cache.Config
	GPUL1D cache.Config
	// L3Tile is the configuration of one L3 tile; L3Tiles tiles are
	// instantiated and lines interleave across them.
	L3Tile  cache.Config
	L3Tiles int

	CPUL1DLat clock.Duration
	CPUL2Lat  clock.Duration
	GPUL1DLat clock.Duration
	L3Lat     clock.Duration

	// SWCacheBytes is the GPU software-managed cache capacity.
	SWCacheBytes uint64
	// SWCacheLat is its fixed access latency.
	SWCacheLat clock.Duration

	// MSHRsPerPU bounds outstanding misses per PU (0 = unlimited).
	MSHRsPerPU int

	// Coherence selects hardware coherence across the PUs' private
	// caches. The baseline leaves it off: none of the surveyed systems
	// builds full cross-PU hardware coherence (Table I), and the paper's
	// ideal system treats coherence as free. Enabling the directory
	// measures what that "free" actually costs.
	Coherence CoherenceMode

	Ring noc.Config
	DRAM dram.Config
}

// CoherenceMode selects the cross-PU coherence machinery.
type CoherenceMode uint8

const (
	// CoherenceNone trusts software (flushes at ownership/kernel
	// boundaries) to keep data coherent.
	CoherenceNone CoherenceMode = iota
	// CoherenceDirectory runs a directory-based MSI protocol between the
	// PUs' private hierarchies, priced over the ring.
	CoherenceDirectory
)

func (m CoherenceMode) String() string {
	switch m {
	case CoherenceNone:
		return "none"
	case CoherenceDirectory:
		return "directory"
	default:
		return fmt.Sprintf("coherence(%d)", uint8(m))
	}
}

// Ring stop layout: CPU, GPU, L3 tiles, then the memory controller stop.
func (c Config) cpuStop() int        { return 0 }
func (c Config) gpuStop() int        { return 1 }
func (c Config) l3Stop(tile int) int { return 2 + tile }
func (c Config) mcStop() int         { return 2 + c.L3Tiles }

func (c Config) validate() error {
	if c.L3Tiles <= 0 {
		return fmt.Errorf("mem: L3 tiles %d must be positive", c.L3Tiles)
	}
	if c.Ring.Stops != c.mcStop()+1 {
		return fmt.Errorf("mem: ring has %d stops, hierarchy needs %d", c.Ring.Stops, c.mcStop()+1)
	}
	return nil
}

// TableII returns the paper's baseline hierarchy (Table II), with cache
// latencies converted using the 3.5 GHz CPU and 1.5 GHz GPU domains:
// 8-way 32 KB 2-cycle L1s, 8-way 256 KB 8-cycle CPU L2, 32-way 8 MB
// 20-cycle L3 in 4 tiles, 16 KB software-managed GPU cache, ring bus,
// DDR3-1333 with 4 controllers.
func TableII() Config {
	cpuCycle := clock.NewDomain("cpu", 3500).PeriodPS()
	gpuCycle := clock.NewDomain("gpu", 1500).PeriodPS()
	cfg := Config{
		CPUL1D: cache.Config{Name: "cpu.l1d", SizeBytes: 32 << 10, LineBytes: 64, Ways: 8},
		CPUL2:  cache.Config{Name: "cpu.l2", SizeBytes: 256 << 10, LineBytes: 64, Ways: 8},
		GPUL1D: cache.Config{Name: "gpu.l1d", SizeBytes: 32 << 10, LineBytes: 64, Ways: 8},
		L3Tile: cache.Config{
			Name: "l3", SizeBytes: 2 << 20, LineBytes: 64, Ways: 32,
			Policy: cache.LocalityAware,
		},
		L3Tiles:      4,
		CPUL1DLat:    2 * cpuCycle,
		CPUL2Lat:     8 * cpuCycle,
		GPUL1DLat:    2 * gpuCycle,
		L3Lat:        20 * cpuCycle,
		SWCacheBytes: 16 << 10,
		SWCacheLat:   2 * gpuCycle,
		MSHRsPerPU:   16,
		Ring: noc.Config{
			Stops:             7, // cpu, gpu, 4 L3 tiles, mc
			HopLatency:        2 * cpuCycle,
			LinkBytesPerCycle: 32,
			CycleTime:         cpuCycle,
		},
		DRAM: dram.DDR3_1333(),
	}
	return cfg
}

// Stats counts hierarchy-level events per PU.
type Stats struct {
	Accesses   [NumPUs]uint64
	L1Hits     [NumPUs]uint64
	L2Hits     uint64 // CPU only
	L3Hits     [NumPUs]uint64
	DRAMFills  [NumPUs]uint64
	Writebacks uint64
	Pushes     uint64
	PushBytes  uint64
	// CoherenceOps counts accesses that required remote invalidations or
	// forced writebacks under CoherenceDirectory.
	CoherenceOps uint64
}

// Hierarchy is the assembled memory system.
type Hierarchy struct {
	cfg     Config
	cpuL1d  *cache.Cache
	cpuL2   *cache.Cache
	gpuL1d  *cache.Cache
	l3      []*cache.Cache
	ring    *noc.Ring
	dram    *dram.Controller
	mshr    [NumPUs]*cache.MSHR
	scratch *cache.Scratchpad
	dir     *coherence.Directory
	stats   Stats
	obs     hierObs

	// reqBytes/respBytes size the ring control and data messages.
	reqBytes  int
	lineBytes int
}

// hierObs holds the hierarchy's observability instruments under the
// mem.* namespace; nil instruments make every bump a no-op.
type hierObs struct {
	accesses     [NumPUs]*obs.Counter
	l1Hits       [NumPUs]*obs.Counter
	l2Hits       *obs.Counter
	l3Hits       [NumPUs]*obs.Counter
	dramFills    [NumPUs]*obs.Counter
	writebacks   *obs.Counter
	pushes       *obs.Counter
	pushBytes    *obs.Counter
	coherenceOps *obs.Counter
	mshrOut      [NumPUs]*obs.Gauge
}

// Instrument registers the hierarchy's metrics (mem.*) with reg and
// cascades to its components: each cache under "mem.<name>", the ring
// (noc.*) and the memory controllers (dram.*). A nil registry detaches
// everything.
func (h *Hierarchy) Instrument(reg *obs.Registry) {
	for p := PU(0); p < NumPUs; p++ {
		h.obs.accesses[p] = reg.Counter("mem.accesses." + p.String())
		h.obs.l1Hits[p] = reg.Counter("mem.l1.hits." + p.String())
		h.obs.l3Hits[p] = reg.Counter("mem.l3.hits." + p.String())
		h.obs.dramFills[p] = reg.Counter("mem.dram_fills." + p.String())
		h.obs.mshrOut[p] = reg.Gauge("mem.mshr.outstanding." + p.String())
	}
	h.obs.l2Hits = reg.Counter("mem.l2.hits")
	h.obs.writebacks = reg.Counter("mem.writebacks")
	h.obs.pushes = reg.Counter("mem.pushes")
	h.obs.pushBytes = reg.Counter("mem.push_bytes")
	h.obs.coherenceOps = reg.Counter("mem.coherence.ops")

	h.cpuL1d.Instrument(reg, "mem."+h.cfg.CPUL1D.Name)
	h.cpuL2.Instrument(reg, "mem."+h.cfg.CPUL2.Name)
	h.gpuL1d.Instrument(reg, "mem."+h.cfg.GPUL1D.Name)
	for i, t := range h.l3 {
		t.Instrument(reg, fmt.Sprintf("mem.l3.t%d", i))
	}
	h.ring.Instrument(reg)
	h.dram.Instrument(reg)
}

// New assembles a hierarchy from cfg.
func New(cfg Config) (*Hierarchy, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	h := &Hierarchy{cfg: cfg, reqBytes: 16, lineBytes: cfg.L3Tile.LineBytes}
	var err error
	if h.cpuL1d, err = cache.New(cfg.CPUL1D); err != nil {
		return nil, err
	}
	if h.cpuL2, err = cache.New(cfg.CPUL2); err != nil {
		return nil, err
	}
	if h.gpuL1d, err = cache.New(cfg.GPUL1D); err != nil {
		return nil, err
	}
	h.l3 = make([]*cache.Cache, cfg.L3Tiles)
	for i := range h.l3 {
		tileCfg := cfg.L3Tile
		tileCfg.Name = fmt.Sprintf("l3.t%d", i)
		if h.l3[i], err = cache.New(tileCfg); err != nil {
			return nil, err
		}
	}
	if h.ring, err = noc.New(cfg.Ring); err != nil {
		return nil, err
	}
	if h.dram, err = dram.New(cfg.DRAM); err != nil {
		return nil, err
	}
	for p := PU(0); p < NumPUs; p++ {
		h.mshr[p] = cache.NewMSHR(cfg.MSHRsPerPU)
	}
	h.scratch = cache.NewScratchpad("gpu.sw", cfg.SWCacheBytes)
	if cfg.Coherence == CoherenceDirectory {
		h.dir, err = coherence.NewDirectory(uint64(h.lineBytes), int(NumPUs))
		if err != nil {
			return nil, err
		}
	}
	return h, nil
}

// MustNew is New but panics on configuration error.
func MustNew(cfg Config) *Hierarchy {
	h, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return h
}

// Config returns the hierarchy's configuration.
func (h *Hierarchy) Config() Config { return h.cfg }

// Stats returns a snapshot of the hierarchy counters.
func (h *Hierarchy) Stats() Stats { return h.stats }

// Scratchpad returns the GPU's software-managed cache.
func (h *Hierarchy) Scratchpad() *cache.Scratchpad { return h.scratch }

// DRAM returns the memory controller, for direct DMA-style transfers.
func (h *Hierarchy) DRAM() *dram.Controller { return h.dram }

// Ring returns the interconnect, for reporting.
func (h *Hierarchy) Ring() *noc.Ring { return h.ring }

// tileFor returns the L3 tile index serving addr (line interleaved).
func (h *Hierarchy) tileFor(addr uint64) int {
	return int(addr/uint64(h.lineBytes)) % h.cfg.L3Tiles
}

func (h *Hierarchy) puStop(pu PU) int {
	if pu == CPU {
		return h.cfg.cpuStop()
	}
	return h.cfg.gpuStop()
}

// Access times a single load or store by pu to addr, starting at now, and
// returns its completion time. Write-allocate, write-back at every level.
func (h *Hierarchy) Access(pu PU, addr uint64, write bool, now clock.Time) clock.Time {
	h.stats.Accesses[pu]++
	h.obs.accesses[pu].Inc()
	switch pu {
	case CPU:
		t := now.Add(h.cfg.CPUL1DLat)
		if h.cpuL1d.Lookup(addr, write) {
			h.stats.L1Hits[CPU]++
			h.obs.l1Hits[CPU].Inc()
			if write {
				t = h.coherenceFee(CPU, addr, true, t)
			}
			return t
		}
		t = t.Add(h.cfg.CPUL2Lat)
		if h.cpuL2.Lookup(addr, write) {
			h.stats.L2Hits++
			h.obs.l2Hits.Inc()
			h.fillInto(h.cpuL1d, addr, write)
			return t
		}
		return h.sharedAccess(CPU, addr, write, t)
	case GPU:
		t := now.Add(h.cfg.GPUL1DLat)
		if h.gpuL1d.Lookup(addr, write) {
			h.stats.L1Hits[GPU]++
			h.obs.l1Hits[GPU].Inc()
			if write {
				t = h.coherenceFee(GPU, addr, true, t)
			}
			return t
		}
		return h.sharedAccess(GPU, addr, write, t)
	default:
		panic(fmt.Sprintf("mem: access from unknown PU %d", pu))
	}
}

// sharedAccess handles a first-level-miss access from pu beginning its L3
// request at time t (private levels already charged).
func (h *Hierarchy) sharedAccess(pu PU, addr uint64, write bool, t clock.Time) clock.Time {
	line := addr &^ uint64(h.lineBytes-1)
	if ready, ok := h.mshr[pu].Outstanding(line, t); ok {
		// A miss to this line is already in flight; this access completes
		// with it (the fill also populated the private levels).
		return clock.Max(ready, t)
	}

	tile := h.tileFor(addr)
	src := h.puStop(pu)
	l3s := h.cfg.l3Stop(tile)

	// Request message to the L3 tile, then the tile lookup. The home
	// tile consults the coherence directory before serving data.
	at := h.ring.Send(src, l3s, h.reqBytes, t)
	at = at.Add(h.cfg.L3Lat)
	at = h.coherenceFee(pu, addr, write, at)
	if h.l3[tile].Lookup(addr, write) {
		h.stats.L3Hits[pu]++
		h.obs.l3Hits[pu].Inc()
		done := h.ring.Send(l3s, src, h.lineBytes+h.reqBytes, at)
		h.fillPrivate(pu, addr, write)
		return h.allocateMSHR(pu, line, t, done)
	}

	// L3 miss: forward to the memory controller stop, access DRAM, and
	// return the line to the requester.
	at = h.ring.Send(l3s, h.cfg.mcStop(), h.reqBytes, at)
	at = h.dram.Submit(addr, at)
	h.stats.DRAMFills[pu]++
	h.obs.dramFills[pu].Inc()
	at = h.ring.Send(h.cfg.mcStop(), l3s, h.lineBytes+h.reqBytes, at)
	h.fillL3(tile, addr, false, write, at)
	done := h.ring.Send(l3s, src, h.lineBytes+h.reqBytes, at)
	h.fillPrivate(pu, addr, write)
	return h.allocateMSHR(pu, line, t, done)
}

// allocateMSHR registers the primary miss and, when instrumented, tracks
// the outstanding-miss level. The InFlight walk only runs with a live
// gauge, so the uninstrumented path pays a single nil check.
func (h *Hierarchy) allocateMSHR(pu PU, line uint64, t, done clock.Time) clock.Time {
	ready := h.mshr[pu].Allocate(line, t, done)
	if h.obs.mshrOut[pu] != nil {
		h.obs.mshrOut[pu].Set(uint64(h.mshr[pu].InFlight(t)))
	}
	return ready
}

// fillPrivate installs the line into pu's private levels, notifying the
// directory when a line leaves the PU's domain entirely.
func (h *Hierarchy) fillPrivate(pu PU, addr uint64, write bool) {
	if pu == CPU {
		ev := h.cpuL2.Fill(addr, false, false)
		h.noteEviction(CPU, ev, h.cpuL1d)
		h.fillInto(h.cpuL1d, addr, write)
		return
	}
	ev := h.gpuL1d.Fill(addr, false, write)
	h.noteEviction(GPU, ev, nil)
}

// noteEviction counts a private eviction and drops the line from the
// directory if no other cache of the same PU still holds it.
func (h *Hierarchy) noteEviction(pu PU, ev cache.Eviction, alsoHolds *cache.Cache) {
	if !ev.Valid {
		return
	}
	if ev.Dirty {
		h.stats.Writebacks++
		h.obs.writebacks.Inc()
	}
	if h.dir == nil {
		return
	}
	if alsoHolds != nil && alsoHolds.Probe(ev.Addr) {
		return
	}
	h.dir.Evict(int(pu), ev.Addr)
}

// coherenceFee prices the directory work an access requires: remote
// copies are invalidated (and dirty ones written back) over the ring
// before the access may complete. Free when the directory is off or the
// access needs no remote work.
func (h *Hierarchy) coherenceFee(pu PU, addr uint64, write bool, t clock.Time) clock.Time {
	if h.dir == nil {
		return t
	}
	act := h.dir.Access(int(pu), addr, write)
	if act.Messages == 0 {
		return t
	}
	h.stats.CoherenceOps++
	h.obs.coherenceOps.Inc()
	other := CPU
	if pu == CPU {
		other = GPU
	}
	line := addr &^ uint64(h.lineBytes-1)
	if other == CPU {
		h.cpuL1d.Invalidate(line)
		h.cpuL2.Invalidate(line)
	} else {
		h.gpuL1d.Invalidate(line)
	}
	// One round trip from the home tile to the remote PU: the
	// invalidate/forward out, the ack (plus data for a writeback) back.
	tile := h.tileFor(addr)
	l3s := h.cfg.l3Stop(tile)
	t = h.ring.Send(l3s, h.puStop(other), h.reqBytes, t)
	resp := h.reqBytes
	if act.Writeback {
		resp += h.lineBytes
	}
	return h.ring.Send(h.puStop(other), l3s, resp, t)
}

// Directory returns the coherence directory, or nil when coherence is
// off.
func (h *Hierarchy) Directory() *coherence.Directory { return h.dir }

// fillInto fills a private cache, absorbing the eviction (private-level
// writebacks land in the level below, whose traffic the shared path
// already dominates; we count them only).
func (h *Hierarchy) fillInto(c *cache.Cache, addr uint64, dirty bool) {
	ev := c.Fill(addr, false, dirty)
	if ev.Valid && ev.Dirty {
		h.stats.Writebacks++
		h.obs.writebacks.Inc()
	}
}

// fillL3 installs a line into its L3 tile; a dirty victim is written back
// to DRAM, occupying the controller but off the critical path.
func (h *Hierarchy) fillL3(tile int, addr uint64, explicit, dirty bool, now clock.Time) {
	ev := h.l3[tile].Fill(addr, explicit, dirty)
	if ev.Valid && ev.Dirty {
		h.stats.Writebacks++
		h.obs.writebacks.Inc()
		h.dram.Submit(ev.Addr, now)
	}
}

// Push explicitly places the size-byte object at addr into the target
// level for pu, line by line, and returns the completion time. This is
// the hardware side of the paper's push(x, level) locality-control
// statement: data moves into the designated cache with its locality bit
// set so implicit traffic cannot evict it (Section II-B5).
func (h *Hierarchy) Push(pu PU, addr uint64, size uint32, level Level, now clock.Time) clock.Time {
	h.stats.Pushes++
	h.stats.PushBytes += uint64(size)
	h.obs.pushes.Inc()
	h.obs.pushBytes.Add(uint64(size))
	if size == 0 {
		return now
	}
	switch level {
	case LevelSoftware:
		// Software-managed cache: one DMA-style burst from the shared
		// hierarchy into the scratchpad.
		if err := h.scratch.Place(addr, uint64(size)); err != nil {
			// Capacity exceeded is a program (trace) error; treat as a
			// refresh of the whole scratchpad.
			h.scratch.Clear()
			_ = h.scratch.Place(addr, uint64(size))
		}
		t := now
		for line := addr &^ uint64(h.lineBytes-1); line < addr+uint64(size); line += uint64(h.lineBytes) {
			t = h.Access(GPU, line, false, t)
		}
		return t
	case LevelShared:
		// Move each line into its L3 tile over the ring, marked explicit.
		t := now
		src := h.puStop(pu)
		for line := addr &^ uint64(h.lineBytes-1); line < addr+uint64(size); line += uint64(h.lineBytes) {
			tile := h.tileFor(line)
			at := h.ring.Send(src, h.cfg.l3Stop(tile), h.lineBytes+h.reqBytes, t)
			at = at.Add(h.cfg.L3Lat)
			h.fillL3(tile, line, true, true, at)
			t = at
		}
		return t
	case LevelPrivate:
		// Prefetch into the PU's first-level cache through the normal path.
		t := now
		for line := addr &^ uint64(h.lineBytes-1); line < addr+uint64(size); line += uint64(h.lineBytes) {
			t = h.Access(pu, line, false, t)
		}
		return t
	default:
		panic(fmt.Sprintf("mem: push to unknown level %d", level))
	}
}

// FlushPrivate writes back and invalidates pu's private caches (used at
// ownership-transfer points) and returns the number of dirty lines
// written back.
func (h *Hierarchy) FlushPrivate(pu PU) int {
	if pu == CPU {
		return h.cpuL1d.FlushAll() + h.cpuL2.FlushAll()
	}
	h.scratch.Clear()
	return h.gpuL1d.FlushAll()
}

// CacheStats returns per-cache statistics keyed by cache name.
func (h *Hierarchy) CacheStats() map[string]cache.Stats {
	out := map[string]cache.Stats{
		h.cfg.CPUL1D.Name: h.cpuL1d.Stats(),
		h.cfg.CPUL2.Name:  h.cpuL2.Stats(),
		h.cfg.GPUL1D.Name: h.gpuL1d.Stats(),
	}
	for i, t := range h.l3 {
		out[fmt.Sprintf("l3.t%d", i)] = t.Stats()
	}
	return out
}
