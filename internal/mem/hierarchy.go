// Package mem composes the cache, interconnect and DRAM substrates into
// the memory hierarchy of Table II: per-PU first-level caches, the CPU's
// private L2, a shared four-tile L3 reached over the ring bus, and the
// DDR3 memory controllers behind it. The hierarchy times individual
// accesses and explicit push placements, and exposes the GPU's
// software-managed cache.
//
// Each access runs as a memsys.Request through an explicit stage
// pipeline (private levels, MSHR, ring hops, L3, coherence, DRAM,
// commit); this package owns the composition, internal/memsys owns the
// stages.
package mem

import (
	"fmt"
	"math/bits"

	"heteromem/internal/arena"
	"heteromem/internal/cache"
	"heteromem/internal/clock"
	"heteromem/internal/coherence"
	"heteromem/internal/dram"
	"heteromem/internal/memsys"
	"heteromem/internal/memtech"
	"heteromem/internal/noc"
	"heteromem/internal/obs"
	"heteromem/internal/xlat"
)

// PU identifies a processing unit attached to the hierarchy.
type PU uint8

const (
	// CPU is the out-of-order general-purpose core.
	CPU PU = iota
	// GPU is the in-order SIMD accelerator core.
	GPU
	// NumPUs is the number of processing units.
	NumPUs
)

func (p PU) String() string {
	switch p {
	case CPU:
		return "cpu"
	case GPU:
		return "gpu"
	default:
		return fmt.Sprintf("pu(%d)", uint8(p))
	}
}

// Level identifies a target cache level for explicit (push) placement.
type Level uint8

const (
	// LevelPrivate places data in the PU's first-level data cache.
	LevelPrivate Level = iota
	// LevelShared places data in the shared second-level (L3) cache —
	// the "push(x, S)" of the paper's locality examples (Figure 4).
	LevelShared
	// LevelSoftware places data in the GPU's software-managed cache.
	LevelSoftware
)

func (l Level) String() string {
	switch l {
	case LevelPrivate:
		return "private"
	case LevelShared:
		return "shared"
	case LevelSoftware:
		return "software"
	default:
		return fmt.Sprintf("level(%d)", uint8(l))
	}
}

// Config describes the whole hierarchy. Latencies are absolute durations;
// callers convert from cycle counts in the owning frequency domain.
type Config struct {
	CPUL1D cache.Config
	CPUL2  cache.Config
	GPUL1D cache.Config
	// L3Tile is the configuration of one L3 tile; L3Tiles tiles are
	// instantiated and lines interleave across them.
	L3Tile  cache.Config
	L3Tiles int

	CPUL1DLat clock.Duration
	CPUL2Lat  clock.Duration
	GPUL1DLat clock.Duration
	L3Lat     clock.Duration

	// SWCacheBytes is the GPU software-managed cache capacity.
	SWCacheBytes uint64
	// SWCacheLat is its fixed access latency.
	SWCacheLat clock.Duration

	// MSHRsPerPU bounds outstanding misses per PU (0 = unlimited).
	MSHRsPerPU int

	// Coherence selects hardware coherence across the PUs' private
	// caches. The baseline leaves it off: none of the surveyed systems
	// builds full cross-PU hardware coherence (Table I), and the paper's
	// ideal system treats coherence as free. Enabling the directory
	// measures what that "free" actually costs.
	Coherence CoherenceMode

	Ring noc.Config
	DRAM dram.Config

	// Tech selects the terminal memory technology behind the L3 (the
	// mem_tech design axis). The zero Spec is the DDR3 baseline above;
	// other kinds replace the terminal stage with an HBM, NVM or
	// DRAM-cache backend. The DRAM controller is always built — the
	// memory-controller fabric DMAs through it regardless of Tech.
	Tech memtech.Spec

	// Xlat selects the address-translation front-end (the translation
	// design axis). The zero Spec is the paper's baseline — translation
	// free — and adds nothing to the access path; a non-zero spec puts a
	// per-PU TLB probe and page-walk model in front of every Access. The
	// spec's IOMMU mode must already be resolved (auto behaves as off
	// here; sim resolves it from the system's fabric).
	Xlat xlat.Spec
}

// CoherenceMode selects the cross-PU coherence machinery.
type CoherenceMode uint8

const (
	// CoherenceNone trusts software (flushes at ownership/kernel
	// boundaries) to keep data coherent.
	CoherenceNone CoherenceMode = iota
	// CoherenceDirectory runs a directory-based MSI protocol between the
	// PUs' private hierarchies, priced over the ring.
	CoherenceDirectory
)

func (m CoherenceMode) String() string {
	switch m {
	case CoherenceNone:
		return "none"
	case CoherenceDirectory:
		return "directory"
	default:
		return fmt.Sprintf("coherence(%d)", uint8(m))
	}
}

// Ring stop layout: CPU, GPU, L3 tiles, then the memory controller stop.
func (c Config) cpuStop() int        { return 0 }
func (c Config) gpuStop() int        { return 1 }
func (c Config) l3Stop(tile int) int { return 2 + tile }
func (c Config) mcStop() int         { return 2 + c.L3Tiles }

func (c Config) validate() error {
	if c.L3Tiles <= 0 {
		return fmt.Errorf("mem: L3 tiles %d must be positive", c.L3Tiles)
	}
	if c.Ring.Stops != c.mcStop()+1 {
		return fmt.Errorf("mem: ring has %d stops, hierarchy needs %d", c.Ring.Stops, c.mcStop()+1)
	}
	if err := c.Tech.Validate(); err != nil {
		return fmt.Errorf("mem: %w", err)
	}
	if err := c.Xlat.Validate(); err != nil {
		return fmt.Errorf("mem: %w", err)
	}
	return nil
}

// TableII returns the paper's baseline hierarchy (Table II), with cache
// latencies converted using the 3.5 GHz CPU and 1.5 GHz GPU domains:
// 8-way 32 KB 2-cycle L1s, 8-way 256 KB 8-cycle CPU L2, 32-way 8 MB
// 20-cycle L3 in 4 tiles, 16 KB software-managed GPU cache, ring bus,
// DDR3-1333 with 4 controllers.
func TableII() Config {
	cpuCycle := clock.NewDomain("cpu", 3500).PeriodPS()
	gpuCycle := clock.NewDomain("gpu", 1500).PeriodPS()
	cfg := Config{
		CPUL1D: cache.Config{Name: "cpu.l1d", SizeBytes: 32 << 10, LineBytes: 64, Ways: 8},
		CPUL2:  cache.Config{Name: "cpu.l2", SizeBytes: 256 << 10, LineBytes: 64, Ways: 8},
		GPUL1D: cache.Config{Name: "gpu.l1d", SizeBytes: 32 << 10, LineBytes: 64, Ways: 8},
		L3Tile: cache.Config{
			Name: "l3", SizeBytes: 2 << 20, LineBytes: 64, Ways: 32,
			Policy: cache.LocalityAware,
		},
		L3Tiles:      4,
		CPUL1DLat:    2 * cpuCycle,
		CPUL2Lat:     8 * cpuCycle,
		GPUL1DLat:    2 * gpuCycle,
		L3Lat:        20 * cpuCycle,
		SWCacheBytes: 16 << 10,
		SWCacheLat:   2 * gpuCycle,
		MSHRsPerPU:   16,
		Ring: noc.Config{
			Stops:             7, // cpu, gpu, 4 L3 tiles, mc
			HopLatency:        2 * cpuCycle,
			LinkBytesPerCycle: 32,
			CycleTime:         cpuCycle,
		},
		DRAM: dram.DDR3_1333(),
	}
	return cfg
}

// Stats counts hierarchy-level events per PU.
type Stats struct {
	Accesses   [NumPUs]uint64
	L1Hits     [NumPUs]uint64
	L2Hits     uint64 // CPU only
	L3Hits     [NumPUs]uint64
	DRAMFills  [NumPUs]uint64
	Writebacks uint64
	Pushes     uint64
	PushBytes  uint64
	// CoherenceOps counts accesses that required remote invalidations or
	// forced writebacks under CoherenceDirectory.
	CoherenceOps uint64
	// ScratchOverflows counts software-cache placements that exceeded
	// the scratchpad's capacity and forced a full refresh — a workload
	// placement bug the report should surface, not swallow.
	ScratchOverflows uint64
	// Translation counters (all zero with the axis off): TLB probes,
	// misses, total picoseconds stalled on page walks (including walker
	// queueing on a shared MMU), and shootdowns at ownership handovers.
	XlatLookups    [NumPUs]uint64
	XlatMisses     [NumPUs]uint64
	XlatWalkPS     [NumPUs]uint64
	XlatShootdowns [NumPUs]uint64
}

// Hierarchy is the assembled memory system: the cache/ring/DRAM
// substrates plus the per-PU memsys pipelines that route each access
// through them.
type Hierarchy struct {
	cfg     Config
	cpuL1d  *cache.Cache
	cpuL2   *cache.Cache
	gpuL1d  *cache.Cache
	l3      []*cache.Cache
	ring    *noc.Ring
	dram    *dram.Controller
	mshr    [NumPUs]*cache.MSHR
	scratch *cache.Scratchpad
	dir     *coherence.Directory

	// topo maps PUs and tiles onto ring stops and fixes message sizes;
	// env carries the counters the stages bump.
	topo    memsys.Topology
	env     memsys.Env
	private [NumPUs]*memsys.PrivateStage
	coh     *memsys.CoherenceStage
	l3Stage *memsys.L3Stage
	// backend is the terminal stage selected by cfg.Tech, shared by both
	// chains and by the L3's victim-writeback path.
	backend memsys.Backend
	// xlat is the translation front-end selected by cfg.Xlat; nil when
	// the axis is off. Access charges it directly (before its L1 fast
	// path), and it is also installed as the chains' Xlat slot so the
	// staged Run path translates identically.
	xlat  *memsys.TranslationStage
	chain [NumPUs]memsys.Chain
	// req is the reusable transaction: accesses are sequential per
	// hierarchy (one simulator, one goroutine), so a single request
	// keeps the miss path allocation-free.
	req memsys.Request

	// Fast-path state. l1/l1Lat mirror the private stages' first level
	// so an L1 hit is served without touching the stage chain; memo is
	// the per-PU direct-mapped filter of recently-hit lines; gen holds
	// one generation per PU, bumped whenever that PU's private caches
	// mutate (its own miss or flush, or a coherence recall of its
	// copy), so one PU's traffic no longer wipes the other PU's memo.
	// The generation is purely a liveness filter: a live slot's way is
	// still tag-verified (cache.HitWay) before it is trusted.
	l1        [NumPUs]*cache.Cache
	l1Lat     [NumPUs]clock.Duration
	lineShift uint
	memo      [NumPUs]lineMemo
	gen       [memsys.NumPUs]uint64

	stats Stats // access/push counts; event counts live in env
	obs   hierObs
}

// memoSlots is the number of direct-mapped entries in each PU's line
// memo; a power of two so the slot index is a mask.
const memoSlots = 256

// memoSlot remembers that its line was resident in the PU's L1 at way
// `way` while the hierarchy generation was `gen`. A slot whose
// generation is stale is dead; a live slot's way is still verified
// against the cache tag on use (cache.HitWay), so even a logically
// stale slot can never corrupt timing — at worst it degenerates into
// the ordinary L1 probe.
type memoSlot struct {
	line uint64
	gen  uint64
	way  int32
}

// lineMemo is a per-PU direct-mapped filter of recently-hit lines — a
// way predictor for the simulated L1 that lets repeated same-line hits
// in core replay skip even the L1 set scan.
type lineMemo struct {
	slots [memoSlots]memoSlot
}

// hierObs holds the hierarchy-owned observability instruments under the
// mem.* namespace; the per-stage instruments live in env.Obs. Nil
// instruments make every bump a no-op. Counters advance in batches
// (FlushObs) by the delta of stats over flushed.
type hierObs struct {
	accesses         [NumPUs]*obs.Counter
	pushes           *obs.Counter
	pushBytes        *obs.Counter
	scratchOverflows *obs.Counter
	flushed          Stats
}

// Instrument registers the hierarchy's metrics (mem.*) with reg and
// cascades to its components: each cache under "mem.<name>", the ring
// (noc.*) and the memory controllers (dram.*). A nil registry detaches
// everything. The stages observe the rewiring through their shared Env.
func (h *Hierarchy) Instrument(reg *obs.Registry) {
	for p := PU(0); p < NumPUs; p++ {
		h.obs.accesses[p] = reg.Counter("mem.accesses." + p.String())
		h.env.Obs.L1Hits[p] = reg.Counter("mem.l1.hits." + p.String())
		h.env.Obs.L3Hits[p] = reg.Counter("mem.l3.hits." + p.String())
		h.env.Obs.DRAMFills[p] = reg.Counter("mem.dram_fills." + p.String())
		h.env.Obs.MSHROut[p] = reg.Gauge("mem.mshr.outstanding." + p.String())
	}
	h.env.Obs.L2Hits = reg.Counter("mem.l2.hits")
	h.env.Obs.Writebacks = reg.Counter("mem.writebacks")
	h.env.Obs.CoherenceOps = reg.Counter("mem.coherence.ops")
	h.obs.pushes = reg.Counter("mem.pushes")
	h.obs.pushBytes = reg.Counter("mem.push_bytes")
	h.obs.scratchOverflows = reg.Counter("mem.scratch_overflows")
	h.obs.flushed = h.stats
	h.env.MarkFlushed()

	h.cpuL1d.Instrument(reg, "mem."+h.cfg.CPUL1D.Name)
	h.cpuL2.Instrument(reg, "mem."+h.cfg.CPUL2.Name)
	h.gpuL1d.Instrument(reg, "mem."+h.cfg.GPUL1D.Name)
	for i, t := range h.l3 {
		t.Instrument(reg, fmt.Sprintf("mem.l3.t%d", i))
	}
	h.ring.Instrument(reg)
	h.dram.Instrument(reg)
	h.backend.Instrument(reg)
	h.xlat.Instrument(reg)
}

// InstrumentHost attaches sampled host wall-clock attribution to the
// per-PU stage chains: one in every p.Every() chain runs times each
// stage it executes, accumulating into p's memsys.* sections (flushed to
// the registry as host.memsys.*.ns counters by the simulator's batched
// flush). Section registration is idempotent, so pooled simulators
// sharing one profiler agree on ids. A nil profiler detaches profiling.
func (h *Hierarchy) InstrumentHost(p *obs.HostProf) {
	base := -1
	for i, name := range memsys.ProfSections() {
		id := p.Section(name)
		if i == 0 {
			base = id
		}
	}
	for pu := range h.chain {
		h.chain[pu].Prof = p
		h.chain[pu].ProfBase = base
	}
}

// New assembles a hierarchy from cfg.
func New(cfg Config) (*Hierarchy, error) {
	return NewIn(nil, cfg)
}

// NewIn is New with the hierarchy's cache metadata arrays and MSHR files
// carved from the arena (nil falls back to the heap). The arena is used
// only during construction — the hierarchy keeps no reference to it — so
// the caller decides the lifecycle: a sweep worker builds its pooled
// simulators out of one arena and drops or resets it wholesale when the
// pool retires.
func NewIn(a *arena.Arena, cfg Config) (*Hierarchy, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	h := &Hierarchy{cfg: cfg}
	var err error
	if h.cpuL1d, err = cache.NewIn(a, cfg.CPUL1D); err != nil {
		return nil, err
	}
	if h.cpuL2, err = cache.NewIn(a, cfg.CPUL2); err != nil {
		return nil, err
	}
	if h.gpuL1d, err = cache.NewIn(a, cfg.GPUL1D); err != nil {
		return nil, err
	}
	h.l3 = make([]*cache.Cache, cfg.L3Tiles)
	for i := range h.l3 {
		tileCfg := cfg.L3Tile
		tileCfg.Name = fmt.Sprintf("l3.t%d", i)
		if h.l3[i], err = cache.NewIn(a, tileCfg); err != nil {
			return nil, err
		}
	}
	if h.ring, err = noc.New(cfg.Ring); err != nil {
		return nil, err
	}
	if h.dram, err = dram.New(cfg.DRAM); err != nil {
		return nil, err
	}
	for p := PU(0); p < NumPUs; p++ {
		h.mshr[p] = cache.NewMSHRIn(a, cfg.MSHRsPerPU)
	}
	h.scratch = cache.NewScratchpad("gpu.sw", cfg.SWCacheBytes)
	if cfg.Coherence == CoherenceDirectory {
		h.dir, err = coherence.NewDirectory(uint64(cfg.L3Tile.LineBytes), int(NumPUs))
		if err != nil {
			return nil, err
		}
	}
	for p := range h.gen {
		h.gen[p] = 1 // zero-valued memo slots must never match
	}
	if err := h.buildPipelines(); err != nil {
		return nil, err
	}
	return h, nil
}

// buildPipelines composes the per-PU stage pipelines over the
// substrates New assembled: private levels, MSHR merge, request hop,
// L3 (with coherence), the terminal backend cfg.Tech selects, response
// hop, commit. Stage order is the request path of Table II.
func (h *Hierarchy) buildPipelines() error {
	cfg := h.cfg
	h.topo = memsys.Topology{
		PUStop:    [memsys.NumPUs]int{cfg.cpuStop(), cfg.gpuStop()},
		L3Base:    cfg.l3Stop(0),
		MCStop:    cfg.mcStop(),
		Tiles:     cfg.L3Tiles,
		LineBytes: cfg.L3Tile.LineBytes,
		ReqBytes:  16,
	}.Derive()
	coh := &memsys.CoherenceStage{
		Dir:  h.dir,
		Net:  h.ring,
		Topo: h.topo,
		Caches: [memsys.NumPUs][]*cache.Cache{
			{h.cpuL1d, h.cpuL2},
			{h.gpuL1d},
		},
		Env: &h.env,
		Gen: &h.gen,
	}
	h.coh = coh
	h.private[CPU] = &memsys.PrivateStage{
		PU: memsys.CPU, L1: h.cpuL1d, L1Lat: cfg.CPUL1DLat,
		L2: h.cpuL2, L2Lat: cfg.CPUL2Lat, Coherence: coh, Env: &h.env,
	}
	h.private[GPU] = &memsys.PrivateStage{
		PU: memsys.GPU, L1: h.gpuL1d, L1Lat: cfg.GPUL1DLat,
		Coherence: coh, Env: &h.env,
	}
	h.l3Stage = &memsys.L3Stage{
		Tiles: h.l3, Lat: cfg.L3Lat,
		Topo: h.topo, Coherence: coh, Env: &h.env,
	}
	if err := h.buildBackend(); err != nil {
		return err
	}
	h.l3Stage.Mem = h.backend
	x, err := memsys.NewTranslationStage(cfg.Xlat)
	if err != nil {
		return fmt.Errorf("mem: %w", err)
	}
	h.xlat = x
	for p := PU(0); p < NumPUs; p++ {
		h.chain[p] = memsys.Chain{
			Xlat:    h.xlat,
			Private: h.private[p],
			MSHR:    &memsys.MSHRStage{File: h.mshr[p]},
			ReqHop:  &memsys.RingHopStage{Stage: memsys.StageRingReq, Net: h.ring, Topo: h.topo},
			L3:      h.l3Stage,
			Backend: h.backend,
			RespHop: &memsys.RingHopStage{Stage: memsys.StageRingResp, Net: h.ring, Topo: h.topo},
			Commit:  &memsys.CommitStage{Private: h.private[p], File: h.mshr[p], Env: &h.env},
		}
	}

	// Fast-path mirrors of the private stages' first level.
	h.l1[CPU], h.l1Lat[CPU] = h.cpuL1d, cfg.CPUL1DLat
	h.l1[GPU], h.l1Lat[GPU] = h.gpuL1d, cfg.GPUL1DLat
	h.lineShift = uint(bits.TrailingZeros64(uint64(cfg.L3Tile.LineBytes)))
	return nil
}

// buildBackend constructs the terminal memory stage cfg.Tech selects.
func (h *Hierarchy) buildBackend() error {
	cfg := h.cfg
	switch cfg.Tech.Kind {
	case memtech.DRAM:
		h.backend = &memsys.DRAMStage{
			Ctrl: h.dram, Net: h.ring, Topo: h.topo, L3: h.l3Stage, Env: &h.env,
		}
	case memtech.HBM:
		p := cfg.Tech.ResolvedHBM()
		ctrl, err := dram.New(p.DRAMConfig(cfg.L3Tile.LineBytes))
		if err != nil {
			return fmt.Errorf("mem: mem_tech.hbm: %w", err)
		}
		h.backend = &memsys.HBMStage{
			Ctrl: ctrl, ExtraLat: p.ExtraLat(),
			Net: h.ring, Topo: h.topo, L3: h.l3Stage, Env: &h.env,
		}
	case memtech.NVM:
		p := cfg.Tech.ResolvedNVM()
		chans := make([]*clock.Resource, p.Channels)
		for i := range chans {
			chans[i] = clock.NewResource(fmt.Sprintf("nvm.ch%d", i))
		}
		h.backend = &memsys.NVMStage{
			Chans:      chans,
			ReadLat:    clock.Duration(p.ReadPS),
			WriteLat:   clock.Duration(p.WritePS),
			Bus:        clock.Duration(p.BusPS),
			QueueDepth: p.WriteQueueDepth,
			Net:        h.ring, Topo: h.topo, L3: h.l3Stage, Env: &h.env,
		}
	case memtech.DRAMCache:
		p := cfg.Tech.ResolvedDRAMCache()
		dir, err := cache.New(cache.Config{
			Name:      "dram_cache",
			SizeBytes: int(p.SizeBytes),
			LineBytes: cfg.L3Tile.LineBytes,
			Ways:      p.Ways,
		})
		if err != nil {
			return fmt.Errorf("mem: mem_tech.dram_cache: %w", err)
		}
		near := make([]*clock.Resource, p.NearChannels)
		for i := range near {
			near[i] = clock.NewResource(fmt.Sprintf("dram_cache.near%d", i))
		}
		far := make([]*clock.Resource, p.FarChannels)
		for i := range far {
			far[i] = clock.NewResource(fmt.Sprintf("dram_cache.far%d", i))
		}
		h.backend = &memsys.DRAMCacheStage{
			Dir:       dir,
			NearChans: near, FarChans: far,
			NearLat: clock.Duration(p.NearPS), NearBus: clock.Duration(p.NearBusPS),
			FarRead: clock.Duration(p.FarReadPS), FarWrite: clock.Duration(p.FarWritePS),
			FarBus: clock.Duration(p.FarBusPS),
			Net:    h.ring, Topo: h.topo, L3: h.l3Stage, Env: &h.env,
		}
	default:
		return fmt.Errorf("mem: mem_tech.kind: invalid memory technology %d", uint8(cfg.Tech.Kind))
	}
	return nil
}

// MustNew is New but panics on configuration error.
func MustNew(cfg Config) *Hierarchy {
	h, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return h
}

// Config returns the hierarchy's configuration.
func (h *Hierarchy) Config() Config { return h.cfg }

// Stats returns a snapshot of the hierarchy counters.
func (h *Hierarchy) Stats() Stats {
	s := h.stats
	s.L1Hits = h.env.L1Hits
	s.L2Hits = h.env.L2Hits
	s.L3Hits = h.env.L3Hits
	s.DRAMFills = h.env.DRAMFills
	s.Writebacks = h.env.Writebacks
	s.CoherenceOps = h.env.CoherenceOps
	for p := PU(0); p < NumPUs; p++ {
		s.XlatLookups[p] = h.xlat.Lookups(memsys.PU(p))
		s.XlatMisses[p] = h.xlat.Misses(memsys.PU(p))
		s.XlatWalkPS[p] = h.xlat.WalkPS(memsys.PU(p))
		s.XlatShootdowns[p] = h.xlat.Shootdowns(memsys.PU(p))
	}
	return s
}

// Reset returns the hierarchy to its just-constructed state: every
// cache cold, the ring and controllers idle, MSHR files and scratchpad
// empty, the directory untracked, and all statistics cleared.
// Instruments stay wired (use Instrument(nil) to detach them).
func (h *Hierarchy) Reset() {
	h.cpuL1d.Reset()
	h.cpuL2.Reset()
	h.gpuL1d.Reset()
	for _, t := range h.l3 {
		t.Reset()
	}
	h.ring.Reset()
	h.dram.Reset()
	h.backend.Reset()
	h.xlat.Reset()
	for p := PU(0); p < NumPUs; p++ {
		h.mshr[p].Reset()
	}
	h.scratch.Reset()
	if h.dir != nil {
		h.dir.Reset()
	}
	h.env.Reset()
	h.stats = Stats{}
	h.obs.flushed = Stats{}
	for p := range h.memo {
		h.memo[p] = lineMemo{}
	}
	for p := range h.gen {
		h.gen[p] = 1
	}
}

// FlushObs pushes the counters accumulated since the last flush into the
// registered instruments: the hierarchy's own access/push counters, the
// stage counters in env, and each cache's hit/miss/eviction counts. The
// simulator calls it at phase boundaries (immediately before interval
// samples), so hot-path events cost a plain integer increment instead of
// an instrument call.
func (h *Hierarchy) FlushObs() {
	for p := PU(0); p < NumPUs; p++ {
		h.obs.accesses[p].Add(h.stats.Accesses[p] - h.obs.flushed.Accesses[p])
	}
	h.obs.pushes.Add(h.stats.Pushes - h.obs.flushed.Pushes)
	h.obs.pushBytes.Add(h.stats.PushBytes - h.obs.flushed.PushBytes)
	h.obs.scratchOverflows.Add(h.stats.ScratchOverflows - h.obs.flushed.ScratchOverflows)
	h.obs.flushed = h.stats
	h.env.FlushObs()
	h.cpuL1d.FlushObs()
	h.cpuL2.FlushObs()
	h.gpuL1d.FlushObs()
	for _, t := range h.l3 {
		t.FlushObs()
	}
	h.backend.FlushObs()
	h.xlat.FlushObs()
}

// Scratchpad returns the GPU's software-managed cache.
func (h *Hierarchy) Scratchpad() *cache.Scratchpad { return h.scratch }

// DRAM returns the memory controller, for direct DMA-style transfers.
func (h *Hierarchy) DRAM() *dram.Controller { return h.dram }

// Backend returns the terminal memory stage serving L3 misses.
func (h *Hierarchy) Backend() memsys.Backend { return h.backend }

// TechKind returns the configured memory technology.
func (h *Hierarchy) TechKind() memtech.Kind { return h.cfg.Tech.Kind }

// Translation returns the address-translation front-end, or nil when
// the axis is off.
func (h *Hierarchy) Translation() *memsys.TranslationStage { return h.xlat }

// Ring returns the interconnect, for reporting.
func (h *Hierarchy) Ring() *noc.Ring { return h.ring }

// Directory returns the coherence directory, or nil when coherence is
// off.
func (h *Hierarchy) Directory() *coherence.Directory { return h.dir }

// Access times a single load or store by pu to addr, starting at now, and
// returns its completion time. Write-allocate, write-back at every level.
//
// An access that hits the PU's first-level cache is served on a fast
// path — memo probe, then direct L1 lookup — without constructing a
// request or entering the stage chain; only a first-level miss pays for
// the full pipeline. Both fast-path arms charge the same L1 latency and
// perform the same cache mutations as PrivateStage, so timing and
// statistics are identical to the staged path.
func (h *Hierarchy) Access(pu PU, addr uint64, write bool, now clock.Time) clock.Time {
	if pu >= NumPUs {
		panic(fmt.Sprintf("mem: access from unknown PU %d", pu))
	}
	h.stats.Accesses[pu]++
	if h.xlat != nil {
		// Translation runs before any cache can be indexed by the
		// physical address: a TLB hit is free (probe overlaps the L1 tag
		// check), a miss stalls the access for the page walk.
		now = h.xlat.Translate(memsys.PU(pu), addr, now)
	}
	line := h.topo.Line(addr)
	slot := &h.memo[pu].slots[(line>>h.lineShift)&(memoSlots-1)]
	if slot.gen == h.gen[pu] && slot.line == line && h.l1[pu].HitWay(addr, int(slot.way), write) {
		h.env.L1Hits[pu]++
		end := now.Add(h.l1Lat[pu])
		if write {
			end = h.coh.Apply(memsys.PU(pu), addr, line, write, end)
			slot.gen = h.gen[pu] // re-key after a possible coherence bump
		}
		return end
	}
	if way := h.l1[pu].LookupWay(addr, write); way >= 0 {
		h.env.L1Hits[pu]++
		end := now.Add(h.l1Lat[pu])
		if write {
			end = h.coh.Apply(memsys.PU(pu), addr, line, write, end)
		}
		*slot = memoSlot{line: line, gen: h.gen[pu], way: int32(way)}
		return end
	}
	// Miss: the fill and any evictions below mutate this PU's private
	// caches, so its memoized ways are suspect. The other PU's memo is
	// only disturbed through the coherence stage's targeted bump.
	h.gen[pu]++
	h.req.Start(memsys.PU(pu), addr, line, write, now.Add(h.l1Lat[pu]))
	end := h.chain[pu].RunMissedL1(&h.req)
	// Memo-on-fill: the commit stage reports which L1 way it installed
	// the line into, so streaming lines touched exactly twice (common at
	// sub-line strides) ride the fast path on their second access instead
	// of paying a probe. The coherence stage only ever bumps the *other*
	// PU's generation, so h.gen[pu] is still the value set above and the
	// slot is keyed to the post-miss epoch. HitWay tag-verifies before
	// trusting the slot, so a stale way is a wasted check, never a wrong
	// answer.
	if w := h.req.L1Way; w >= 0 {
		*slot = memoSlot{line: line, gen: h.gen[pu], way: int32(w)}
	}
	return end
}

// Push explicitly places the size-byte object at addr into the target
// level for pu, line by line, and returns the completion time. This is
// the hardware side of the paper's push(x, level) locality-control
// statement: data moves into the designated cache with its locality bit
// set so implicit traffic cannot evict it (Section II-B5).
func (h *Hierarchy) Push(pu PU, addr uint64, size uint32, level Level, now clock.Time) clock.Time {
	h.stats.Pushes++
	h.stats.PushBytes += uint64(size)
	// No generation bump: explicit placement mutates the L3 tiles and
	// the scratchpad, never a private L1 directly — the private-level
	// traffic it does generate goes through Access, which maintains the
	// generations itself. Any slot the placement happens to orphan is
	// caught by HitWay's tag verification.
	if size == 0 {
		return now
	}
	lineBytes := uint64(h.topo.LineBytes)
	switch level {
	case LevelSoftware:
		// Software-managed cache: one DMA-style burst from the shared
		// hierarchy into the scratchpad.
		if err := h.scratch.Place(addr, uint64(size)); err != nil {
			// Capacity exceeded is a program (trace) error; count it so
			// reports surface the placement bug, then treat it as a
			// refresh of the whole scratchpad.
			h.stats.ScratchOverflows++
			h.scratch.Clear()
			_ = h.scratch.Place(addr, uint64(size))
		}
		t := now
		for line := h.topo.Line(addr); line < addr+uint64(size); line += lineBytes {
			t = h.Access(GPU, line, false, t)
		}
		return t
	case LevelShared:
		// Move each line into its L3 tile over the ring, marked explicit.
		t := now
		src := h.topo.PUStop[pu]
		for line := h.topo.Line(addr); line < addr+uint64(size); line += lineBytes {
			tile := h.topo.TileFor(line)
			at := h.ring.Send(src, h.topo.TileStop(tile), h.topo.LineBytes+h.topo.ReqBytes, t)
			at = at.Add(h.cfg.L3Lat)
			h.l3Stage.Fill(tile, line, true, true, at)
			t = at
		}
		return t
	case LevelPrivate:
		// Prefetch into the PU's first-level cache through the normal path.
		t := now
		for line := h.topo.Line(addr); line < addr+uint64(size); line += lineBytes {
			t = h.Access(pu, line, false, t)
		}
		return t
	default:
		panic(fmt.Sprintf("mem: push to unknown level %d", level))
	}
}

// FlushPrivate writes back and invalidates pu's private caches (used at
// ownership-transfer points) and returns the number of dirty lines
// written back.
func (h *Hierarchy) FlushPrivate(pu PU) int {
	h.gen[pu]++ // flushed lines must drop out of the flushing PU's memo
	// An ownership transfer remaps pages between the PUs' views, so the
	// handover that flushes the caches also shoots down the TLB (nil-safe
	// when the translation axis is off).
	h.xlat.Flush(memsys.PU(pu))
	if pu == CPU {
		return h.cpuL1d.FlushAll() + h.cpuL2.FlushAll()
	}
	h.scratch.Clear()
	return h.gpuL1d.FlushAll()
}

// CacheStats returns per-cache statistics keyed by cache name.
func (h *Hierarchy) CacheStats() map[string]cache.Stats {
	out := map[string]cache.Stats{
		h.cfg.CPUL1D.Name: h.cpuL1d.Stats(),
		h.cfg.CPUL2.Name:  h.cpuL2.Stats(),
		h.cfg.GPUL1D.Name: h.gpuL1d.Stats(),
	}
	for i, t := range h.l3 {
		out[fmt.Sprintf("l3.t%d", i)] = t.Stats()
	}
	return out
}
