package mem

import (
	"testing"

	"heteromem/internal/clock"
	"heteromem/internal/memtech"
	"heteromem/internal/xlat"
)

// fastH returns a baseline hierarchy with one CPU line resident and
// memoized: the first access misses and fills, the second hits through
// the normal probe and installs the memo slot.
func fastH(t *testing.T, addr uint64) (*Hierarchy, clock.Time) {
	t.Helper()
	h := MustNew(TableII())
	now := h.Access(CPU, addr, false, 0)
	now = h.Access(CPU, addr, false, now)
	return h, now
}

func (h *Hierarchy) memoSlotFor(pu PU, addr uint64) *memoSlot {
	line := h.topo.Line(addr)
	return &h.memo[pu].slots[(line>>h.lineShift)&(memoSlots-1)]
}

func TestMemoHitMatchesL1Latency(t *testing.T) {
	const addr = 0x4000
	h, now := fastH(t, addr)
	slot := h.memoSlotFor(CPU, addr)
	if slot.gen != h.gen[CPU] || slot.line != h.topo.Line(addr) {
		t.Fatalf("L1 hit did not install a live memo slot: slot %+v, gen %d", *slot, h.gen[CPU])
	}
	// The memoized access must cost exactly the L1 latency, like any
	// other L1 hit.
	before := h.Stats()
	d := h.Access(CPU, addr, false, now)
	if got, want := d.Sub(now), h.Config().CPUL1DLat; got != want {
		t.Fatalf("memo hit took %v, want L1 latency %v", got, want)
	}
	after := h.Stats()
	if after.L1Hits[CPU] != before.L1Hits[CPU]+1 || after.Accesses[CPU] != before.Accesses[CPU]+1 {
		t.Fatalf("memo hit miscounted: before %+v after %+v", before, after)
	}
}

func TestMemoInvalidatedOnEviction(t *testing.T) {
	const addr = 0x0
	h, now := fastH(t, addr)
	gen := h.gen[CPU]
	// Fill the line's set with conflicting lines (same set index every
	// 4 KB in the 64-set, 8-way L1) until the memoized line is evicted.
	cfg := h.Config().CPUL1D
	setStride := uint64(cfg.SizeBytes) / uint64(cfg.Ways)
	for k := 1; k <= cfg.Ways; k++ {
		now = h.Access(CPU, addr+uint64(k)*setStride, false, now)
	}
	if h.gen[CPU] == gen {
		t.Fatal("misses did not advance the generation")
	}
	// Memo-on-fill may have re-populated the slot with one of the
	// conflicting lines; what must not survive is a live mapping for the
	// evicted line itself.
	if slot := h.memoSlotFor(CPU, addr); slot.gen == h.gen[CPU] && slot.line == h.topo.Line(addr) {
		t.Fatal("memo slot still live for the evicted line after its set was overrun")
	}
	d := h.Access(CPU, addr, false, now)
	if d.Sub(now) <= h.Config().CPUL1DLat {
		t.Fatal("access hit a line the conflicting fills should have evicted")
	}
}

// TestMemoSurvivesSharedPush pins the per-PU generation refinement: an
// explicit placement into the shared L3 never touches a private L1, so
// it must NOT kill the pushing PU's memo — the next same-line access
// still rides the fast path at exact L1-hit cost.
func TestMemoSurvivesSharedPush(t *testing.T) {
	const addr = 0x8000
	h, now := fastH(t, addr)
	gen := h.gen[CPU]
	now = h.Push(CPU, 0x100000, 4096, LevelShared, now)
	if h.gen[CPU] != gen {
		t.Fatal("shared push advanced the CPU generation despite leaving its L1 untouched")
	}
	if slot := h.memoSlotFor(CPU, addr); slot.gen != h.gen[CPU] {
		t.Fatal("memo slot did not survive a shared-level placement")
	}
	d := h.Access(CPU, addr, false, now)
	if got, want := d.Sub(now), h.Config().CPUL1DLat; got != want {
		t.Fatalf("post-push memo hit took %v, want L1 latency %v", got, want)
	}
}

// TestMemoCrossPUIsolation pins the other half of the refinement: one
// PU's misses must not invalidate the other PU's memo.
func TestMemoCrossPUIsolation(t *testing.T) {
	const addr = 0x8000
	h, now := fastH(t, addr)
	gen := h.gen[CPU]
	// A GPU miss storm mutates only GPU-side private state.
	for k := 0; k < 64; k++ {
		now = h.Access(GPU, 0x400000+uint64(k)*4096, false, now)
	}
	if h.gen[CPU] != gen {
		t.Fatal("GPU misses advanced the CPU generation")
	}
	if slot := h.memoSlotFor(CPU, addr); slot.gen != h.gen[CPU] {
		t.Fatal("CPU memo slot died under GPU-only traffic")
	}
	d := h.Access(CPU, addr, false, now)
	if got, want := d.Sub(now), h.Config().CPUL1DLat; got != want {
		t.Fatalf("memo hit after GPU traffic took %v, want L1 latency %v", got, want)
	}
}

func TestMemoInvalidatedOnFlush(t *testing.T) {
	const addr = 0xC000
	h, now := fastH(t, addr)
	h.FlushPrivate(CPU)
	if slot := h.memoSlotFor(CPU, addr); slot.gen == h.gen[CPU] {
		t.Fatal("memo slot survived a private-cache flush")
	}
	d := h.Access(CPU, addr, false, now)
	if d.Sub(now) <= h.Config().CPUL1DLat {
		t.Fatal("access hit a line FlushPrivate should have invalidated")
	}
}

func TestMemoInvalidatedOnCoherenceInvalidation(t *testing.T) {
	cfg := TableII()
	cfg.Coherence = CoherenceDirectory
	h := MustNew(cfg)
	const addr = 0x1000
	// CPU reads twice so the line is both resident and memoized.
	now := h.Access(CPU, addr, false, 0)
	now = h.Access(CPU, addr, false, now)
	gen := h.gen[CPU]
	// The GPU's write recalls the CPU's copy; the memo must go stale
	// with it, and the CPU's next read must miss.
	now = h.Access(GPU, addr, true, now)
	if h.gen[CPU] == gen {
		t.Fatal("remote invalidation did not advance the victim's generation")
	}
	if slot := h.memoSlotFor(CPU, addr); slot.gen == h.gen[CPU] {
		t.Fatal("memo slot survived a cross-PU invalidation")
	}
	d := h.Access(CPU, addr, false, now)
	if d.Sub(now) <= h.Config().CPUL1DLat {
		t.Fatal("CPU read hit a copy the GPU's write should have invalidated")
	}
}

func TestMemoResetClearsSlots(t *testing.T) {
	const addr = 0x4000
	h, _ := fastH(t, addr)
	h.Reset()
	if h.gen[CPU] != 1 || h.gen[GPU] != 1 {
		t.Fatalf("reset generations = %v, want all 1", h.gen)
	}
	if slot := h.memoSlotFor(CPU, addr); *slot != (memoSlot{}) {
		t.Fatalf("reset left memo slot %+v", *slot)
	}
}

func TestL1HitPathDoesNotAllocate(t *testing.T) {
	const addr = 0x4000
	h, now := fastH(t, addr)
	if n := testing.AllocsPerRun(100, func() {
		h.Access(CPU, addr, false, now)
	}); n != 0 {
		t.Fatalf("L1-hit access allocates %.1f objects", n)
	}
}

// BenchmarkHierarchyAccess exercises the three service tiers of a
// single access: the L1-hit fast path, an L3 hit behind a working set
// too large for the private levels, and an ever-cold DRAM stream.
func BenchmarkHierarchyAccess(b *testing.B) {
	b.Run("l1-hit", func(b *testing.B) {
		h := MustNew(TableII())
		now := h.Access(CPU, 0, false, 0)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			now = h.Access(CPU, 0, false, now)
		}
	})
	b.Run("l3-hit", func(b *testing.B) {
		h := MustNew(TableII())
		// 1 MB round-robin: overruns the 32 KB L1 and 256 KB L2 but sits
		// in the 8 MB L3, so steady-state accesses are L3 hits.
		const lines = (1 << 20) / 64
		now := clock.Time(0)
		for i := 0; i < lines; i++ {
			now = h.Access(CPU, uint64(i)*64, false, now)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			now = h.Access(CPU, uint64(i%lines)*64, false, now)
		}
	})
	b.Run("dram", func(b *testing.B) {
		h := MustNew(TableII())
		now := clock.Time(0)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			// Ever-increasing line addresses: cold at every level.
			now = h.Access(CPU, uint64(i)*64, false, now)
		}
	})
	// The alternative terminal backends on the same ever-cold stream:
	// what a backend swap costs per simulated access.
	coldStream := func(k memtech.Kind) func(*testing.B) {
		return func(b *testing.B) {
			cfg := TableII()
			cfg.Tech = memtech.Spec{Kind: k}
			h := MustNew(cfg)
			now := clock.Time(0)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				now = h.Access(CPU, uint64(i)*64, false, now)
			}
		}
	}
	b.Run("hbm", coldStream(memtech.HBM))
	b.Run("nvm", coldStream(memtech.NVM))
	b.Run("dram-cache-miss", coldStream(memtech.DRAMCache))
	b.Run("dram-cache-hit", func(b *testing.B) {
		cfg := TableII()
		cfg.Tech = memtech.Spec{Kind: memtech.DRAMCache}
		h := MustNew(cfg)
		// 16 MB round-robin: overruns the 8 MB L3 so every access reaches
		// the backend, but fits the 64 MB near cache, so after one warmup
		// pass the steady state is all near-memory hits.
		const lines = (16 << 20) / 64
		now := clock.Time(0)
		for i := 0; i < lines; i++ {
			now = h.Access(CPU, uint64(i)*64, false, now)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			now = h.Access(CPU, uint64(i%lines)*64, false, now)
		}
	})
	// The translation front-end on the L1-hit fast path: a warm TLB adds
	// only the probe, while an ever-cold stream of 4 KB pages walks the
	// page table on every new page.
	b.Run("tlb-hit", func(b *testing.B) {
		cfg := TableII()
		cfg.Xlat = xlat.MustParsePreset("4k")
		h := MustNew(cfg)
		now := h.Access(CPU, 0, false, 0)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			now = h.Access(CPU, 0, false, now)
		}
	})
	b.Run("tlb-miss-walk", func(b *testing.B) {
		cfg := TableII()
		cfg.Xlat = xlat.MustParsePreset("4k")
		h := MustNew(cfg)
		now := clock.Time(0)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			// A new 4 KB page every access: every lookup misses and walks.
			now = h.Access(CPU, uint64(i)*4096, false, now)
		}
	})
}
