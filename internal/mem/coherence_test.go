package mem

import (
	"testing"

	"heteromem/internal/clock"
)

func coherentH(t *testing.T) *Hierarchy {
	t.Helper()
	cfg := TableII()
	cfg.Coherence = CoherenceDirectory
	h, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestCoherenceModeString(t *testing.T) {
	if CoherenceNone.String() != "none" || CoherenceDirectory.String() != "directory" {
		t.Error("mode names wrong")
	}
}

func TestDirectoryNilWhenOff(t *testing.T) {
	h := MustNew(TableII())
	if h.Directory() != nil {
		t.Fatal("directory present with coherence off")
	}
}

func TestCrossPUWriteInvalidatesRemoteCopy(t *testing.T) {
	h := coherentH(t)
	// CPU reads a line; GPU writes it; the CPU's next read must miss its
	// (invalidated) private copy.
	h.Access(CPU, 0x1000, false, 0)
	s := clock.Time(clock.Microsecond)
	h.Access(GPU, 0x1000, true, s)
	s2 := clock.Time(2 * clock.Microsecond)
	d := h.Access(CPU, 0x1000, false, s2)
	if d.Sub(s2) <= h.Config().CPUL1DLat {
		t.Fatal("CPU read hit a copy the GPU's write should have invalidated")
	}
	if h.Stats().CoherenceOps == 0 {
		t.Fatal("no coherence operations recorded")
	}
	if h.Directory().Stats().Invalidations == 0 {
		t.Fatal("directory recorded no invalidations")
	}
}

func TestCrossPUReadOfDirtyDataPaysWriteback(t *testing.T) {
	h := coherentH(t)
	// Both reads hit the shared L3; the one whose line the GPU holds
	// Modified must additionally pay the forced-writeback round trip.
	h.Access(GPU, 0x2000, true, 0) // GPU: Modified
	s := clock.Time(clock.Microsecond)
	dirty := h.Access(CPU, 0x2000, false, s).Sub(s)

	h2 := coherentH(t)
	h2.Access(GPU, 0x3000, false, 0) // GPU: Shared (clean)
	s2 := clock.Time(clock.Microsecond)
	clean := h2.Access(CPU, 0x3000, false, s2).Sub(s2)
	if dirty <= clean {
		t.Fatalf("dirty-remote L3 read (%v) not slower than clean-remote L3 read (%v)", dirty, clean)
	}
	if h.Directory().Stats().ForcedWritebacks == 0 {
		t.Fatal("no forced writebacks recorded")
	}
}

func TestLocalTrafficFreeUnderDirectory(t *testing.T) {
	// A single PU hammering its own data pays no coherence fees.
	h := coherentH(t)
	for i := 0; i < 100; i++ {
		h.Access(CPU, uint64(i%8)*64, i%2 == 0, clock.Time(i)*clock.Time(clock.Microsecond))
	}
	if h.Stats().CoherenceOps != 0 {
		t.Fatalf("local traffic triggered %d coherence ops", h.Stats().CoherenceOps)
	}
}

func TestPingPongSharingCostly(t *testing.T) {
	// The paper's scalability concern: CPU and GPU alternately writing
	// the same lines is far slower with hardware coherence than the same
	// pattern on disjoint lines.
	h := coherentH(t)
	var now clock.Time
	for i := 0; i < 200; i++ {
		pu := PU(i % 2)
		now = h.Access(pu, 0x8000, true, now)
	}
	sharedTime := now

	h2 := coherentH(t)
	now = 0
	for i := 0; i < 200; i++ {
		pu := PU(i % 2)
		addr := uint64(0x8000 + int(pu)*0x100000)
		now = h2.Access(pu, addr, true, now)
	}
	disjointTime := now
	if sharedTime < disjointTime*2 {
		t.Fatalf("write ping-pong (%v) not clearly costlier than disjoint writes (%v)", sharedTime, disjointTime)
	}
}

func TestEvictionReleasesDirectoryEntry(t *testing.T) {
	cfg := TableII()
	cfg.Coherence = CoherenceDirectory
	// Tiny GPU L1 forces evictions quickly.
	cfg.GPUL1D.SizeBytes = 1024
	cfg.GPUL1D.Ways = 2
	h, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var now clock.Time
	for i := 0; i < 256; i++ {
		now = h.Access(GPU, uint64(i)*64, false, now)
	}
	// The directory must not track more lines than the GPU could hold
	// plus what the CPU side holds (nothing).
	if got := h.Directory().TrackedLines(); got > 64 {
		t.Fatalf("directory tracks %d lines; evictions not propagated", got)
	}
}
