// Package memtech names and parameterises the memory technologies the
// simulator can put behind the shared L3 — the mem_tech design axis.
// The paper's evaluation assumes one DDR3-era DRAM backend; this package
// opens that assumption so design points can also terminate in an
// HBM-class stack (many narrow channels, higher access latency), an NVM
// tier (asymmetric read/write latency with a serial write-queue drain),
// or a set-associative DRAM cache fronting slow far memory.
//
// The package is purely declarative: a Spec selects a Kind and optional
// parameter overrides, serialises inside systems JSON files under the
// "mem_tech" key, and validates with JSON-path error messages so a bad
// parameter is diagnosable from the CLI ("mem_tech.nvm.read_ps: must be
// positive"). internal/memsys implements the corresponding backends;
// internal/mem constructs the one a hierarchy's Config.Tech selects.
package memtech

import (
	"fmt"

	"heteromem/internal/clock"
	"heteromem/internal/dram"
)

// Kind names a terminal memory technology.
type Kind uint8

const (
	// DRAM is the paper's baseline: DDR3-1333 behind FR-FCFS
	// controllers (dram.DDR3_1333). The zero value, so the default
	// everywhere a Spec is omitted.
	DRAM Kind = iota
	// HBM is a high-bandwidth stacked DRAM: many pseudo-channels with
	// small rows and a fast data bus, paying extra access latency for
	// the stacked path.
	HBM
	// NVM is a byte-addressable non-volatile tier: reads are slow,
	// writes much slower and absorbed by a bounded write queue that
	// drains serially (per Horro et al.).
	NVM
	// DRAMCache is a set-associative DRAM cache in front of slow far
	// memory (per Babaie et al.): near-DRAM latency on a hit, a far
	// read plus a near fill on a miss.
	DRAMCache
	// NumKinds is the number of memory technologies.
	NumKinds
)

var kindNames = [NumKinds]string{"dram", "hbm", "nvm", "dram-cache"}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("memtech(%d)", uint8(k))
}

// Parse returns the kind named s (as produced by String).
func Parse(s string) (Kind, error) {
	for k, name := range kindNames {
		if s == name {
			return Kind(k), nil
		}
	}
	return 0, fmt.Errorf("memtech: unknown memory technology %q", s)
}

// MarshalText implements encoding.TextMarshaler so kinds serialise as
// their names in declarative configs.
func (k Kind) MarshalText() ([]byte, error) {
	if k >= NumKinds {
		return nil, fmt.Errorf("memtech: invalid kind %d", uint8(k))
	}
	return []byte(k.String()), nil
}

// UnmarshalText implements encoding.TextUnmarshaler.
func (k *Kind) UnmarshalText(b []byte) error {
	parsed, err := Parse(string(b))
	if err != nil {
		return err
	}
	*k = parsed
	return nil
}

// AllKinds returns the kinds in declaration order.
func AllKinds() []Kind { return []Kind{DRAM, HBM, NVM, DRAMCache} }

// Spec selects a memory technology and optional parameter overrides.
// The zero Spec is the baseline DRAM backend, and a zero Spec is what
// an omitted "mem_tech" JSON field decodes to, so existing system files
// (and their hashes) are untouched by this axis. Nil parameter blocks
// mean "use the kind's defaults"; zero fields inside a block likewise
// fall back field by field (see Resolved*).
type Spec struct {
	Kind Kind `json:"kind"`
	// HBM, NVM and DRAMCache carry the per-kind parameters; only the
	// block matching Kind may be set.
	HBM       *HBMParams       `json:"hbm,omitempty"`
	NVM       *NVMParams       `json:"nvm,omitempty"`
	DRAMCache *DRAMCacheParams `json:"dram_cache,omitempty"`
}

// IsZero reports whether the spec is the all-default DRAM selection —
// the form the systems codec omits from JSON entirely.
func (s Spec) IsZero() bool { return s == Spec{} }

// Validate rejects malformed specs. Error messages carry the JSON path
// of the offending field ("mem_tech.nvm.read_ps") so CLI users can fix
// the file they wrote.
func (s Spec) Validate() error {
	if s.Kind >= NumKinds {
		return fmt.Errorf("mem_tech.kind: invalid memory technology %d", uint8(s.Kind))
	}
	if s.HBM != nil && s.Kind != HBM {
		return fmt.Errorf("mem_tech.hbm: parameters set but kind is %q", s.Kind)
	}
	if s.NVM != nil && s.Kind != NVM {
		return fmt.Errorf("mem_tech.nvm: parameters set but kind is %q", s.Kind)
	}
	if s.DRAMCache != nil && s.Kind != DRAMCache {
		return fmt.Errorf("mem_tech.dram_cache: parameters set but kind is %q", s.Kind)
	}
	if s.HBM != nil {
		if err := s.HBM.validate(); err != nil {
			return err
		}
	}
	if s.NVM != nil {
		if err := s.NVM.validate(); err != nil {
			return err
		}
	}
	if s.DRAMCache != nil {
		if err := s.DRAMCache.validate(); err != nil {
			return err
		}
	}
	return nil
}

// HBMParams parameterises the HBM backend. Durations are picoseconds;
// zero fields take the DefaultHBM value.
type HBMParams struct {
	// Channels is the number of independent pseudo-channels.
	Channels int `json:"channels,omitempty"`
	// BanksPerChannel is the banks each pseudo-channel schedules over.
	BanksPerChannel int `json:"banks_per_channel,omitempty"`
	// RowBytes is the row-buffer size per bank (HBM rows are small).
	RowBytes int `json:"row_bytes,omitempty"`
	// TCASPS / TRCDPS / TRPPS are the column, activate and precharge
	// latencies; TBurstPS is one line's data-bus occupancy; TCCDPS the
	// column-to-column spacing.
	TCASPS   uint64 `json:"tcas_ps,omitempty"`
	TRCDPS   uint64 `json:"trcd_ps,omitempty"`
	TRPPS    uint64 `json:"trp_ps,omitempty"`
	TBurstPS uint64 `json:"tburst_ps,omitempty"`
	TCCDPS   uint64 `json:"tccd_ps,omitempty"`
	// ExtraLatPS is the additional fixed access latency of the stacked
	// path (TSVs, interposer, wider prefetch) every request pays.
	ExtraLatPS uint64 `json:"extra_lat_ps,omitempty"`
}

// DefaultHBM returns an HBM2-class stack: 16 pseudo-channels with 8
// banks each and 2 KB rows; 25.6 GB/s per pseudo-channel (64 B burst in
// 2.5 ns), 409.6 GB/s aggregate — roughly 10x the DDR3 baseline — at
// ~15 ns extra access latency.
func DefaultHBM() HBMParams {
	return HBMParams{
		Channels:        16,
		BanksPerChannel: 8,
		RowBytes:        2048,
		TCASPS:          15_000,
		TRCDPS:          15_000,
		TRPPS:           15_000,
		TBurstPS:        2_500,
		TCCDPS:          2_000,
		ExtraLatPS:      15_000,
	}
}

func (p *HBMParams) validate() error {
	switch {
	case p.Channels < 0:
		return fmt.Errorf("mem_tech.hbm.channels: must be positive, got %d", p.Channels)
	case p.BanksPerChannel < 0:
		return fmt.Errorf("mem_tech.hbm.banks_per_channel: must be positive, got %d", p.BanksPerChannel)
	case p.RowBytes < 0:
		return fmt.Errorf("mem_tech.hbm.row_bytes: must be positive, got %d", p.RowBytes)
	case p.RowBytes != 0 && p.RowBytes < 64:
		return fmt.Errorf("mem_tech.hbm.row_bytes: must hold at least one 64-byte line, got %d", p.RowBytes)
	}
	return nil
}

// merged returns p with zero fields replaced by the defaults.
func (p HBMParams) merged() HBMParams {
	d := DefaultHBM()
	if p.Channels == 0 {
		p.Channels = d.Channels
	}
	if p.BanksPerChannel == 0 {
		p.BanksPerChannel = d.BanksPerChannel
	}
	if p.RowBytes == 0 {
		p.RowBytes = d.RowBytes
	}
	if p.TCASPS == 0 {
		p.TCASPS = d.TCASPS
	}
	if p.TRCDPS == 0 {
		p.TRCDPS = d.TRCDPS
	}
	if p.TRPPS == 0 {
		p.TRPPS = d.TRPPS
	}
	if p.TBurstPS == 0 {
		p.TBurstPS = d.TBurstPS
	}
	if p.TCCDPS == 0 {
		p.TCCDPS = d.TCCDPS
	}
	if p.ExtraLatPS == 0 {
		p.ExtraLatPS = d.ExtraLatPS
	}
	return p
}

// DRAMConfig converts the (resolved) parameters into a dram.Config so
// the HBM backend reuses the banked FR-FCFS controller model with HBM
// geometry. PartitionRegionBit stays off: HBM interleaves everything.
func (p HBMParams) DRAMConfig(lineBytes int) dram.Config {
	m := p.merged()
	return dram.Config{
		Channels:        m.Channels,
		BanksPerChannel: m.BanksPerChannel,
		LineBytes:       lineBytes,
		RowBytes:        m.RowBytes,
		TCAS:            clock.Duration(m.TCASPS),
		TRCD:            clock.Duration(m.TRCDPS),
		TRP:             clock.Duration(m.TRPPS),
		TBurst:          clock.Duration(m.TBurstPS),
		TCCD:            clock.Duration(m.TCCDPS),
		Scheduling:      dram.FRFCFS,
	}
}

// ExtraLat returns the resolved fixed access latency.
func (p HBMParams) ExtraLat() clock.Duration {
	return clock.Duration(p.merged().ExtraLatPS)
}

// NVMParams parameterises the NVM backend. Durations are picoseconds;
// zero fields take the DefaultNVM value.
type NVMParams struct {
	// Channels is the number of independent device channels; lines
	// interleave across them and each serialises its own transfers.
	Channels int `json:"channels,omitempty"`
	// ReadPS is the device read latency.
	ReadPS uint64 `json:"read_ps,omitempty"`
	// WritePS is the device write (drain) latency — NVM writes are
	// several times slower than reads.
	WritePS uint64 `json:"write_ps,omitempty"`
	// BusPS is one line's channel occupancy.
	BusPS uint64 `json:"bus_ps,omitempty"`
	// WriteQueueDepth bounds the buffered writes; a full queue stalls
	// new traffic until a slot drains.
	WriteQueueDepth int `json:"write_queue_depth,omitempty"`
}

// DefaultNVM returns an Optane-DIMM-class tier: 250 ns reads, 1 µs
// write drain, 4 channels at 6.4 GB/s each, a 16-entry write queue.
func DefaultNVM() NVMParams {
	return NVMParams{
		Channels:        4,
		ReadPS:          250_000,
		WritePS:         1_000_000,
		BusPS:           10_000,
		WriteQueueDepth: 16,
	}
}

func (p *NVMParams) validate() error {
	switch {
	case p.Channels < 0:
		return fmt.Errorf("mem_tech.nvm.channels: must be positive, got %d", p.Channels)
	case p.WriteQueueDepth < 0:
		return fmt.Errorf("mem_tech.nvm.write_queue_depth: must be positive, got %d", p.WriteQueueDepth)
	}
	return nil
}

// Merged returns p with zero fields replaced by the defaults.
func (p NVMParams) Merged() NVMParams {
	d := DefaultNVM()
	if p.Channels == 0 {
		p.Channels = d.Channels
	}
	if p.ReadPS == 0 {
		p.ReadPS = d.ReadPS
	}
	if p.WritePS == 0 {
		p.WritePS = d.WritePS
	}
	if p.BusPS == 0 {
		p.BusPS = d.BusPS
	}
	if p.WriteQueueDepth == 0 {
		p.WriteQueueDepth = d.WriteQueueDepth
	}
	return p
}

// DRAMCacheParams parameterises the DRAM-cache backend. Durations are
// picoseconds; zero fields take the DefaultDRAMCache value.
type DRAMCacheParams struct {
	// SizeBytes is the DRAM cache capacity; Ways its associativity.
	// The line size follows the hierarchy's L3 line.
	SizeBytes uint64 `json:"size_bytes,omitempty"`
	Ways      int    `json:"ways,omitempty"`
	// NearPS is one near-DRAM access (tags and data co-located);
	// NearBusPS one line's near-channel occupancy over NearChannels.
	NearPS       uint64 `json:"near_ps,omitempty"`
	NearBusPS    uint64 `json:"near_bus_ps,omitempty"`
	NearChannels int    `json:"near_channels,omitempty"`
	// FarReadPS / FarWritePS are the far-memory latencies behind a
	// miss; FarBusPS one line's far-channel occupancy over FarChannels.
	FarReadPS   uint64 `json:"far_read_ps,omitempty"`
	FarWritePS  uint64 `json:"far_write_ps,omitempty"`
	FarBusPS    uint64 `json:"far_bus_ps,omitempty"`
	FarChannels int    `json:"far_channels,omitempty"`
}

// DefaultDRAMCache returns a 64 MB 16-way cache of 30 ns near accesses
// over 8 channels, fronting a far tier with 250 ns reads and 500 ns
// writes over 2 channels — the Babaie-style near/far split.
func DefaultDRAMCache() DRAMCacheParams {
	return DRAMCacheParams{
		SizeBytes:    64 << 20,
		Ways:         16,
		NearPS:       30_000,
		NearBusPS:    3_000,
		NearChannels: 8,
		FarReadPS:    250_000,
		FarWritePS:   500_000,
		FarBusPS:     10_000,
		FarChannels:  2,
	}
}

func (p *DRAMCacheParams) validate() error {
	switch {
	case p.Ways < 0:
		return fmt.Errorf("mem_tech.dram_cache.ways: must be positive, got %d", p.Ways)
	case p.NearChannels < 0:
		return fmt.Errorf("mem_tech.dram_cache.near_channels: must be positive, got %d", p.NearChannels)
	case p.FarChannels < 0:
		return fmt.Errorf("mem_tech.dram_cache.far_channels: must be positive, got %d", p.FarChannels)
	case p.SizeBytes != 0 && p.SizeBytes < 4096:
		return fmt.Errorf("mem_tech.dram_cache.size_bytes: must be at least 4096, got %d", p.SizeBytes)
	}
	return nil
}

// Merged returns p with zero fields replaced by the defaults.
func (p DRAMCacheParams) Merged() DRAMCacheParams {
	d := DefaultDRAMCache()
	if p.SizeBytes == 0 {
		p.SizeBytes = d.SizeBytes
	}
	if p.Ways == 0 {
		p.Ways = d.Ways
	}
	if p.NearPS == 0 {
		p.NearPS = d.NearPS
	}
	if p.NearBusPS == 0 {
		p.NearBusPS = d.NearBusPS
	}
	if p.NearChannels == 0 {
		p.NearChannels = d.NearChannels
	}
	if p.FarReadPS == 0 {
		p.FarReadPS = d.FarReadPS
	}
	if p.FarWritePS == 0 {
		p.FarWritePS = d.FarWritePS
	}
	if p.FarBusPS == 0 {
		p.FarBusPS = d.FarBusPS
	}
	if p.FarChannels == 0 {
		p.FarChannels = d.FarChannels
	}
	return p
}

// ResolvedHBM returns the spec's HBM parameters with defaults applied.
func (s Spec) ResolvedHBM() HBMParams {
	if s.HBM != nil {
		return s.HBM.merged()
	}
	return DefaultHBM()
}

// ResolvedNVM returns the spec's NVM parameters with defaults applied.
func (s Spec) ResolvedNVM() NVMParams {
	if s.NVM != nil {
		return s.NVM.Merged()
	}
	return DefaultNVM()
}

// ResolvedDRAMCache returns the spec's DRAM-cache parameters with
// defaults applied.
func (s Spec) ResolvedDRAMCache() DRAMCacheParams {
	if s.DRAMCache != nil {
		return s.DRAMCache.Merged()
	}
	return DefaultDRAMCache()
}
