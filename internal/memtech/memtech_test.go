package memtech

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestKindRoundTrip(t *testing.T) {
	for _, k := range AllKinds() {
		parsed, err := Parse(k.String())
		if err != nil {
			t.Fatalf("Parse(%q): %v", k.String(), err)
		}
		if parsed != k {
			t.Errorf("Parse(%q) = %v, want %v", k.String(), parsed, k)
		}
		text, err := k.MarshalText()
		if err != nil {
			t.Fatalf("MarshalText(%v): %v", k, err)
		}
		var back Kind
		if err := back.UnmarshalText(text); err != nil {
			t.Fatalf("UnmarshalText(%q): %v", text, err)
		}
		if back != k {
			t.Errorf("text round trip of %v = %v", k, back)
		}
	}
	if _, err := Parse("optane"); err == nil {
		t.Error("Parse must reject unknown technologies")
	}
	if _, err := Kind(200).MarshalText(); err == nil {
		t.Error("MarshalText must reject invalid kinds")
	}
}

func TestSpecZero(t *testing.T) {
	var s Spec
	if !s.IsZero() {
		t.Error("zero Spec must report IsZero")
	}
	if s.Kind != DRAM {
		t.Error("zero Spec must select DRAM")
	}
	if err := s.Validate(); err != nil {
		t.Errorf("zero Spec must validate: %v", err)
	}
	if (Spec{Kind: HBM}).IsZero() {
		t.Error("non-DRAM Spec must not report IsZero")
	}
}

// Validate errors must carry the JSON path of the offending field so a
// CLI user can fix the file they wrote (the hetsim -system error
// contract).
func TestValidatePathErrors(t *testing.T) {
	cases := []struct {
		spec Spec
		path string
	}{
		{Spec{Kind: NumKinds}, "mem_tech.kind"},
		{Spec{Kind: DRAM, HBM: &HBMParams{}}, "mem_tech.hbm"},
		{Spec{Kind: HBM, NVM: &NVMParams{}}, "mem_tech.nvm"},
		{Spec{Kind: NVM, DRAMCache: &DRAMCacheParams{}}, "mem_tech.dram_cache"},
		{Spec{Kind: HBM, HBM: &HBMParams{Channels: -1}}, "mem_tech.hbm.channels"},
		{Spec{Kind: HBM, HBM: &HBMParams{RowBytes: 32}}, "mem_tech.hbm.row_bytes"},
		{Spec{Kind: NVM, NVM: &NVMParams{Channels: -2}}, "mem_tech.nvm.channels"},
		{Spec{Kind: NVM, NVM: &NVMParams{WriteQueueDepth: -1}}, "mem_tech.nvm.write_queue_depth"},
		{Spec{Kind: DRAMCache, DRAMCache: &DRAMCacheParams{Ways: -4}}, "mem_tech.dram_cache.ways"},
		{Spec{Kind: DRAMCache, DRAMCache: &DRAMCacheParams{SizeBytes: 128}}, "mem_tech.dram_cache.size_bytes"},
	}
	for _, c := range cases {
		err := c.spec.Validate()
		if err == nil {
			t.Errorf("spec %+v: want error naming %s, got nil", c.spec, c.path)
			continue
		}
		if !strings.Contains(err.Error(), c.path) {
			t.Errorf("spec %+v: error %q does not name %s", c.spec, err, c.path)
		}
	}
}

func TestDefaultsMerge(t *testing.T) {
	// A partially specified block keeps its overrides and fills the rest
	// from the defaults.
	s := Spec{Kind: HBM, HBM: &HBMParams{Channels: 32}}
	h := s.ResolvedHBM()
	if h.Channels != 32 {
		t.Errorf("override lost: channels = %d", h.Channels)
	}
	if h.BanksPerChannel != DefaultHBM().BanksPerChannel || h.TBurstPS != DefaultHBM().TBurstPS {
		t.Errorf("defaults not merged: %+v", h)
	}

	n := Spec{Kind: NVM, NVM: &NVMParams{WritePS: 2_000_000}}.ResolvedNVM()
	if n.WritePS != 2_000_000 || n.ReadPS != DefaultNVM().ReadPS {
		t.Errorf("nvm merge wrong: %+v", n)
	}

	d := Spec{Kind: DRAMCache}.ResolvedDRAMCache()
	if d != DefaultDRAMCache() {
		t.Errorf("nil block must resolve to defaults, got %+v", d)
	}
}

func TestHBMDRAMConfigValid(t *testing.T) {
	cfg := Spec{Kind: HBM}.ResolvedHBM().DRAMConfig(64)
	if cfg.Channels != 16 || cfg.RowBytes != 2048 || cfg.LineBytes != 64 {
		t.Errorf("unexpected HBM geometry: %+v", cfg)
	}
}

func TestSpecJSONRoundTrip(t *testing.T) {
	in := Spec{Kind: NVM, NVM: &NVMParams{ReadPS: 300_000, WriteQueueDepth: 8}}
	data, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var out Spec
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if out.Kind != NVM || out.NVM == nil || *out.NVM != *in.NVM {
		t.Errorf("round trip = %+v, want %+v", out, in)
	}
	// The zero Spec serialises to just the kind.
	data, err = json.Marshal(Spec{})
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != `{"kind":"dram"}` {
		t.Errorf("zero Spec JSON = %s", data)
	}
}
