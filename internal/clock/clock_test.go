package clock

import (
	"testing"
	"testing/quick"
)

func TestTimeAddSub(t *testing.T) {
	t0 := Time(100)
	t1 := t0.Add(50)
	if t1 != 150 {
		t.Fatalf("Add: got %d, want 150", t1)
	}
	if d := t1.Sub(t0); d != 50 {
		t.Fatalf("Sub: got %d, want 50", d)
	}
}

func TestTimeSubNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Sub with later argument did not panic")
		}
	}()
	Time(10).Sub(Time(20))
}

func TestTimeOrdering(t *testing.T) {
	if !Time(1).Before(Time(2)) {
		t.Error("1 should be before 2")
	}
	if Time(2).Before(Time(2)) {
		t.Error("2 should not be before itself")
	}
	if !Time(3).After(Time(2)) {
		t.Error("3 should be after 2")
	}
	if Max(Time(3), Time(5)) != 5 {
		t.Error("Max(3,5) != 5")
	}
	if Min(Time(3), Time(5)) != 3 {
		t.Error("Min(3,5) != 3")
	}
}

func TestDurationUnits(t *testing.T) {
	if Second != 1_000_000_000_000*Picosecond {
		t.Fatalf("Second = %d ps", uint64(Second))
	}
	d := 1500 * Nanosecond
	if got := d.Microseconds(); got != 1.5 {
		t.Fatalf("Microseconds: got %v, want 1.5", got)
	}
}

func TestDurationString(t *testing.T) {
	cases := []struct {
		d    Duration
		want string
	}{
		{500 * Picosecond, "500ps"},
		{1500 * Picosecond, "1.500ns"},
		{2 * Microsecond, "2.000us"},
		{3 * Millisecond, "3.000ms"},
	}
	for _, c := range cases {
		if got := c.d.String(); got != c.want {
			t.Errorf("(%d).String() = %q, want %q", uint64(c.d), got, c.want)
		}
	}
}

func TestDomainCPU(t *testing.T) {
	cpu := NewDomain("cpu", 3500)
	// 3.5 GHz: 7 cycles take exactly 2000 ps.
	if d := cpu.CyclesToDuration(7); d != 2000 {
		t.Fatalf("7 CPU cycles = %d ps, want 2000", uint64(d))
	}
	if c := cpu.DurationToCycles(2000); c != 7 {
		t.Fatalf("2000 ps = %d CPU cycles, want 7", c)
	}
	if got := cpu.FreqMHz(); got != 3500 {
		t.Fatalf("FreqMHz = %v", got)
	}
}

func TestDomainGPU(t *testing.T) {
	gpu := NewDomain("gpu", 1500)
	// 1.5 GHz: 3 cycles take exactly 2000 ps.
	if d := gpu.CyclesToDuration(3); d != 2000 {
		t.Fatalf("3 GPU cycles = %d ps, want 2000", uint64(d))
	}
	// Rounding up: 1 ps must cost at least 1 cycle.
	if c := gpu.DurationToCycles(1); c != 1 {
		t.Fatalf("1 ps = %d GPU cycles, want 1", c)
	}
}

func TestDomainCyclesAt(t *testing.T) {
	cpu := NewDomain("cpu", 1000) // 1 GHz: 1 cycle = 1000 ps
	if c := cpu.CyclesAt(Time(5500)); c != 5 {
		t.Fatalf("CyclesAt(5500) = %d, want 5", c)
	}
}

func TestDomainZeroFreqPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero frequency did not panic")
		}
	}()
	NewDomain("bad", 0)
}

func TestDomainRoundTripProperty(t *testing.T) {
	cpu := NewDomain("cpu", 3500)
	// DurationToCycles rounds up, so converting cycles->duration->cycles
	// must return at least the original count, and the duration of that
	// count must not be shorter than the original duration.
	f := func(n uint32) bool {
		cycles := uint64(n)
		d := cpu.CyclesToDuration(cycles)
		back := cpu.DurationToCycles(d)
		return back >= cycles && cpu.CyclesToDuration(back) >= d
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEngineOrdering(t *testing.T) {
	e := NewEngine()
	var order []int
	e.Schedule(30, func(Time) { order = append(order, 3) })
	e.Schedule(10, func(Time) { order = append(order, 1) })
	e.Schedule(20, func(Time) { order = append(order, 2) })
	end := e.Run()
	if end != 30 {
		t.Fatalf("final time %v, want 30ps", end)
	}
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("execution order %v, want [1 2 3]", order)
	}
}

func TestEngineFIFOAtSameTime(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(100, func(Time) { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events ran out of order: %v", order)
		}
	}
}

func TestEngineScheduleFromHandler(t *testing.T) {
	e := NewEngine()
	var hits []Time
	e.Schedule(10, func(now Time) {
		hits = append(hits, now)
		e.ScheduleAfter(5, func(now Time) { hits = append(hits, now) })
	})
	e.Run()
	if len(hits) != 2 || hits[0] != 10 || hits[1] != 15 {
		t.Fatalf("hits = %v, want [10 15]", hits)
	}
}

func TestEngineSchedulePastPanics(t *testing.T) {
	e := NewEngine()
	e.Schedule(100, func(Time) {})
	e.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	e.Schedule(50, func(Time) {})
}

func TestEngineRunUntil(t *testing.T) {
	e := NewEngine()
	var ran []Time
	e.Schedule(10, func(now Time) { ran = append(ran, now) })
	e.Schedule(20, func(now Time) { ran = append(ran, now) })
	e.Schedule(30, func(now Time) { ran = append(ran, now) })
	e.RunUntil(25)
	if len(ran) != 2 {
		t.Fatalf("ran %d events, want 2", len(ran))
	}
	if e.Now() != 25 {
		t.Fatalf("now = %v, want 25ps", e.Now())
	}
	if e.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", e.Pending())
	}
	e.Run()
	if e.Processed() != 3 {
		t.Fatalf("processed = %d, want 3", e.Processed())
	}
}

func TestEngineStepEmpty(t *testing.T) {
	e := NewEngine()
	if e.Step() {
		t.Fatal("Step on empty queue returned true")
	}
}

func TestResourceSerialisation(t *testing.T) {
	r := NewResource("bus")
	s1, f1 := r.Acquire(0, 100)
	if s1 != 0 || f1 != 100 {
		t.Fatalf("first acquire: start=%v free=%v", s1, f1)
	}
	// A request arriving at 50 while the bus is busy until 100 starts at 100.
	s2, f2 := r.Acquire(50, 100)
	if s2 != 100 || f2 != 200 {
		t.Fatalf("second acquire: start=%v free=%v, want 100/200", s2, f2)
	}
	// A request arriving after the bus freed starts immediately.
	s3, _ := r.Acquire(500, 10)
	if s3 != 500 {
		t.Fatalf("third acquire start=%v, want 500", s3)
	}
	if r.Requests() != 3 {
		t.Fatalf("requests = %d, want 3", r.Requests())
	}
	if r.BusyTime() != 210 {
		t.Fatalf("busy time = %d, want 210", uint64(r.BusyTime()))
	}
}

func TestResourceReset(t *testing.T) {
	r := NewResource("bus")
	r.Acquire(0, 100)
	r.Reset()
	if r.FreeAt() != 0 || r.Requests() != 0 || r.BusyTime() != 0 {
		t.Fatal("Reset did not clear state")
	}
}

func TestResourceMonotonicProperty(t *testing.T) {
	// For any sequence of acquires with nondecreasing arrival times, start
	// times must be nondecreasing and every start >= its arrival.
	f := func(arrivalDeltas []uint16, occupancies []uint16) bool {
		r := NewResource("x")
		var at Time
		var lastStart Time
		n := len(arrivalDeltas)
		if len(occupancies) < n {
			n = len(occupancies)
		}
		for i := 0; i < n; i++ {
			at = at.Add(Duration(arrivalDeltas[i]))
			start, free := r.Acquire(at, Duration(occupancies[i]))
			if start < at || start < lastStart || free != start.Add(Duration(occupancies[i])) {
				return false
			}
			lastStart = start
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// runEngineScript drives e through a fixed scheduling scenario (including
// rescheduling from handlers and a partial RunUntil) and returns an
// execution transcript plus the engine's final observable state.
func runEngineScript(e *Engine) (transcript []Time, now Time, processed uint64, pending int) {
	record := func(t Time) { transcript = append(transcript, t) }
	e.Schedule(30, record)
	e.Schedule(10, func(t Time) {
		record(t)
		e.ScheduleAfter(5, record)
		e.Schedule(e.Now(), record) // same-time append runs this pass, in FIFO order
	})
	e.Schedule(10, record)
	e.Schedule(20, record)
	e.RunUntil(12)
	e.Schedule(40, record)
	e.Run()
	return transcript, e.Now(), e.Processed(), e.Pending()
}

func TestEngineResetVsFresh(t *testing.T) {
	pooled := NewEngine()
	pooled.Schedule(7, func(Time) {})
	pooled.Schedule(7, func(Time) {})
	pooled.Schedule(99, func(Time) {})
	pooled.Step() // leave events pending, time advanced
	pooled.Reset()

	if pooled.Now() != 0 || pooled.Pending() != 0 || pooled.Processed() != 0 {
		t.Fatalf("after Reset: now=%v pending=%d processed=%d",
			pooled.Now(), pooled.Pending(), pooled.Processed())
	}

	gotT, gotNow, gotProc, gotPend := runEngineScript(pooled)
	wantT, wantNow, wantProc, wantPend := runEngineScript(NewEngine())
	if len(gotT) != len(wantT) {
		t.Fatalf("transcript length %d vs fresh %d", len(gotT), len(wantT))
	}
	for i := range gotT {
		if gotT[i] != wantT[i] {
			t.Fatalf("transcript[%d] = %v, fresh %v (got %v want %v)", i, gotT[i], wantT[i], gotT, wantT)
		}
	}
	if gotNow != wantNow || gotProc != wantProc || gotPend != wantPend {
		t.Fatalf("final state now=%v/%v processed=%d/%d pending=%d/%d",
			gotNow, wantNow, gotProc, wantProc, gotPend, wantPend)
	}
}

func TestEngineZeroValueUsable(t *testing.T) {
	var e Engine
	ran := false
	e.Schedule(5, func(Time) { ran = true })
	e.Run()
	if !ran {
		t.Fatal("zero-value engine did not run its event")
	}
}

func TestEngineSameTimeBatching(t *testing.T) {
	// Many events on one timestamp share a single heap node: scheduling
	// and draining them must preserve FIFO order and the pending count.
	e := NewEngine()
	const n = 1000
	var order []int
	for i := 0; i < n; i++ {
		i := i
		e.Schedule(42, func(Time) { order = append(order, i) })
	}
	if e.Pending() != n {
		t.Fatalf("pending = %d, want %d", e.Pending(), n)
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("order[%d] = %d", i, v)
		}
	}
	if e.Pending() != 0 || e.Processed() != n {
		t.Fatalf("after run: pending=%d processed=%d", e.Pending(), e.Processed())
	}
}

func TestEngineSteadyStateScheduleAllocFree(t *testing.T) {
	// After a warm-up pass populates the bucket pool, a schedule/run cycle
	// over recurring timestamps must not allocate per event.
	e := NewEngine()
	fn := func(Time) {}
	cycle := func() {
		for j := 0; j < 64; j++ {
			e.Schedule(e.Now().Add(Duration(j%7)), fn)
		}
		e.Run()
	}
	cycle() // warm the pool and bucket capacities
	if allocs := testing.AllocsPerRun(20, cycle); allocs > 2 {
		t.Fatalf("steady-state schedule/run allocates %.1f times per cycle", allocs)
	}
}

func TestEngineFreePoolBounded(t *testing.T) {
	// A spike that fans events out over many distinct timestamps must not
	// pin its high-water mark of buckets in the free pool: the pool is
	// capped so the garbage collector reclaims the excess, and the engine
	// keeps working normally afterwards.
	e := NewEngine()
	const spike = 10 * maxFreeBuckets
	for j := 0; j < spike; j++ {
		e.Schedule(Time(j), func(Time) {})
	}
	e.Run() // drains (and recycles) one bucket per distinct timestamp
	if n := len(e.free); n > maxFreeBuckets {
		t.Fatalf("free pool holds %d buckets after spike, cap is %d", n, maxFreeBuckets)
	}
	// Reset of a populated queue recycles through the same cap.
	for j := 0; j < spike; j++ {
		e.Schedule(e.Now().Add(Duration(j)), func(Time) {})
	}
	e.Reset()
	if n := len(e.free); n > maxFreeBuckets {
		t.Fatalf("free pool holds %d buckets after reset, cap is %d", n, maxFreeBuckets)
	}
	// Steady state after the spike: recurring timestamps still recycle
	// allocation-free out of the bounded pool.
	fn := func(Time) {}
	cycle := func() {
		for j := 0; j < 64; j++ {
			e.Schedule(e.Now().Add(Duration(j%7)), fn)
		}
		e.Run()
	}
	cycle()
	if allocs := testing.AllocsPerRun(20, cycle); allocs > 2 {
		t.Fatalf("post-spike steady state allocates %.1f times per cycle", allocs)
	}
}

func BenchmarkEngineScheduleRun(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e := NewEngine()
		for j := 0; j < 1000; j++ {
			e.Schedule(Time(j%97), func(Time) {})
		}
		e.Run()
	}
}
