package clock

import "fmt"

// Domain is a clock/frequency domain: a component (CPU core, GPU core,
// memory controller) that counts time in its own cycles. A Domain
// converts between cycle counts and absolute picosecond time.
//
// Frequencies are stored in kHz so that common clocks (3.5 GHz, 1.5 GHz,
// 666.5 MHz DDR3 bus) are exact integers.
type Domain struct {
	name    string
	freqKHz uint64
}

// NewDomain returns a frequency domain named name running at freqMHz.
// It panics if freqMHz is not positive; a zero-frequency domain cannot
// make progress and always indicates a configuration bug.
func NewDomain(name string, freqMHz float64) *Domain {
	if freqMHz <= 0 {
		panic(fmt.Sprintf("clock: non-positive frequency %v for domain %q", freqMHz, name))
	}
	return &Domain{name: name, freqKHz: uint64(freqMHz * 1000)}
}

// Name returns the domain's name.
func (d *Domain) Name() string { return d.name }

// FreqMHz returns the domain frequency in MHz.
func (d *Domain) FreqMHz() float64 { return float64(d.freqKHz) / 1000 }

// PeriodPS returns the duration of one cycle, rounded to the nearest
// picosecond. Prefer CyclesToDuration for multi-cycle spans: it divides
// once at the end and so does not accumulate rounding error.
func (d *Domain) PeriodPS() Duration { return d.CyclesToDuration(1) }

// CyclesToDuration converts a cycle count in this domain to a duration.
// The conversion computes cycles*1e9/freqKHz with 64-bit intermediate
// math; at 3.5 GHz this overflows only beyond ~52 days of simulated
// time, far past any realistic run.
func (d *Domain) CyclesToDuration(cycles uint64) Duration {
	return Duration(cycles * 1_000_000_000 / d.freqKHz)
}

// DurationToCycles converts a duration to a whole number of cycles in
// this domain, rounding up so that a component never finishes earlier
// than the duration it was asked to wait.
func (d *Domain) DurationToCycles(dur Duration) uint64 {
	num := uint64(dur) * d.freqKHz
	const ps = 1_000_000_000
	return (num + ps - 1) / ps
}

// CyclesAt returns the number of whole cycles of this domain that have
// elapsed at absolute time t.
func (d *Domain) CyclesAt(t Time) uint64 {
	return uint64(t) * d.freqKHz / 1_000_000_000
}

func (d *Domain) String() string {
	return fmt.Sprintf("%s@%.1fMHz", d.name, d.FreqMHz())
}
