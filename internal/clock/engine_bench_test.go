package clock

import "testing"

// BenchmarkEngineSchedule measures the steady-state cost of scheduling
// and draining events: a window of timestamps is populated (several
// events share each bucket) and periodically drained, the pattern the
// simulator's resources produce. Steady state must not allocate — the
// bucket pool absorbs the churn.
func BenchmarkEngineSchedule(b *testing.B) {
	e := NewEngine()
	fn := Event(func(Time) {})
	const window = 64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		at := e.Now().Add(Duration(1 + i%window))
		e.Schedule(at, fn)
		if i%window == window-1 {
			e.RunUntil(at)
		}
	}
	e.Run()
}
