// Package clock provides the simulated-time substrate for the
// heterogeneous-computing simulator: a picosecond-resolution timeline,
// frequency domains that convert between cycles and absolute time, and a
// deterministic discrete-event engine.
//
// The paper's baseline (Table II) clocks the CPU at 3.5 GHz and the GPU at
// 1.5 GHz. Because the two processing units run in different frequency
// domains, the simulator keeps all global timestamps in picoseconds and
// lets each component translate to and from its own cycle count. One CPU
// cycle at 3.5 GHz is 285.714... ps; to stay exact with integer
// arithmetic, domains store frequency in kHz and convert with 64-bit
// multiply/divide in a fixed order so the same inputs always produce the
// same timestamps.
package clock

import "fmt"

// Time is an absolute simulated timestamp in picoseconds since the start
// of simulation. The zero value is the beginning of time.
type Time uint64

// Duration is a span of simulated time in picoseconds.
type Duration uint64

// Common durations.
const (
	Picosecond  Duration = 1
	Nanosecond  Duration = 1000 * Picosecond
	Microsecond Duration = 1000 * Nanosecond
	Millisecond Duration = 1000 * Microsecond
	Second      Duration = 1000 * Millisecond
)

// Add returns the time d after t.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration from u to t. It panics if u is after t, which
// always indicates a scheduling bug in the caller.
func (t Time) Sub(u Time) Duration {
	if u > t {
		panic(fmt.Sprintf("clock: negative duration: %d - %d", t, u))
	}
	return Duration(t - u)
}

// Before reports whether t is strictly earlier than u.
func (t Time) Before(u Time) bool { return t < u }

// After reports whether t is strictly later than u.
func (t Time) After(u Time) bool { return t > u }

// Max returns the later of t and u.
func Max(t, u Time) Time {
	if t > u {
		return t
	}
	return u
}

// Min returns the earlier of t and u.
func Min(t, u Time) Time {
	if t < u {
		return t
	}
	return u
}

// Nanoseconds returns the duration as a floating-point nanosecond count,
// for reporting.
func (d Duration) Nanoseconds() float64 { return float64(d) / float64(Nanosecond) }

// Microseconds returns the duration as a floating-point microsecond count.
func (d Duration) Microseconds() float64 { return float64(d) / float64(Microsecond) }

// Milliseconds returns the duration as a floating-point millisecond count.
func (d Duration) Milliseconds() float64 { return float64(d) / float64(Millisecond) }

func (d Duration) String() string {
	switch {
	case d >= Millisecond:
		return fmt.Sprintf("%.3fms", d.Milliseconds())
	case d >= Microsecond:
		return fmt.Sprintf("%.3fus", d.Microseconds())
	case d >= Nanosecond:
		return fmt.Sprintf("%.3fns", d.Nanoseconds())
	default:
		return fmt.Sprintf("%dps", uint64(d))
	}
}

func (t Time) String() string { return Duration(t).String() }
