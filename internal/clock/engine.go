package clock

import "fmt"

// Event is a callback scheduled to run at a specific simulated time. The
// engine passes the event's own timestamp to the callback so handlers do
// not need to capture it.
type Event func(now Time)

// bucket holds every event scheduled for one timestamp, in FIFO order.
// Batching same-timestamp events into one heap node keeps the heap small
// (one entry per distinct time, not per event) and makes scheduling onto
// an already-populated timestamp a plain slice append — no heap sift, no
// per-event boxing.
type bucket struct {
	at   Time
	fns  []Event
	next int // index of the next fn to run
}

// Engine is a deterministic discrete-event simulation engine. Events
// scheduled for the same timestamp run in the order they were scheduled,
// so a simulation is fully reproducible from its inputs.
//
// The queue is a typed slice-backed binary min-heap of per-timestamp
// buckets: no container/heap, no interface{} boxing, and drained buckets
// are pooled for reuse, so steady-state scheduling allocates nothing.
//
// Engine is not safe for concurrent use; the simulator is single-threaded
// by design (determinism is a core requirement for a design-space study,
// where runs are compared against each other).
type Engine struct {
	now       Time
	heap      []*bucket       // min-heap on at; one bucket per distinct timestamp
	byTime    map[Time]*bucket
	free      []*bucket // drained buckets awaiting reuse
	pending   int
	processed uint64
}

// NewEngine returns an engine positioned at time zero with no pending
// events.
func NewEngine() *Engine {
	return &Engine{byTime: make(map[Time]*bucket)}
}

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Pending returns the number of events not yet executed.
func (e *Engine) Pending() int { return e.pending }

// Processed returns the total number of events executed so far.
func (e *Engine) Processed() uint64 { return e.processed }

// Schedule runs fn at absolute time at. Scheduling in the past panics:
// it would silently reorder causality and corrupt the run.
func (e *Engine) Schedule(at Time, fn Event) {
	if at < e.now {
		panic(fmt.Sprintf("clock: schedule at %v before now %v", at, e.now))
	}
	// A nil map read is fine, so the zero-value init lives on the cold
	// bucket-allocation branch, not in front of every event.
	b := e.byTime[at]
	if b == nil {
		if e.byTime == nil {
			e.byTime = make(map[Time]*bucket)
		}
		if n := len(e.free); n > 0 {
			b = e.free[n-1]
			e.free[n-1] = nil
			e.free = e.free[:n-1]
		} else {
			b = &bucket{}
		}
		b.at = at
		e.byTime[at] = b
		e.push(b)
	}
	b.fns = append(b.fns, fn)
	e.pending++
}

// ScheduleAfter runs fn after duration d from the current time.
func (e *Engine) ScheduleAfter(d Duration, fn Event) {
	e.Schedule(e.now.Add(d), fn)
}

// Step executes the single earliest pending event and advances time to
// its timestamp. It reports whether an event was executed.
func (e *Engine) Step() bool {
	if len(e.heap) == 0 {
		return false
	}
	b := e.heap[0]
	e.now = b.at
	fn := b.fns[b.next]
	b.next++
	e.pending--
	e.processed++
	fn(e.now)
	// The handler may have scheduled more work at this same timestamp
	// (appended to b), so the drained check comes after it runs.
	if b.next >= len(b.fns) {
		e.pop()
		delete(e.byTime, b.at)
		e.recycle(b)
	}
	return true
}

// Run executes events until the queue is empty and returns the final
// simulated time.
func (e *Engine) Run() Time {
	for e.Step() {
	}
	return e.now
}

// RunUntil executes events with timestamps at or before deadline, then
// advances time to the deadline (even if no event landed exactly on it).
func (e *Engine) RunUntil(deadline Time) {
	for len(e.heap) > 0 && e.heap[0].at <= deadline {
		e.Step()
	}
	if e.now < deadline {
		e.now = deadline
	}
}

// Reset clears the queue and processed-event count and rewinds the engine
// to time zero, matching Resource.Reset and the simulator lifecycle: a
// reset engine behaves identically to a freshly constructed one. Bucket
// storage is retained for reuse.
func (e *Engine) Reset() {
	for _, b := range e.heap {
		e.recycle(b)
	}
	clear(e.heap)
	e.heap = e.heap[:0]
	clear(e.byTime)
	e.now = 0
	e.pending = 0
	e.processed = 0
}

// maxFreeBuckets bounds the drained-bucket pool. Steady-state simulation
// touches only a handful of distinct timestamps at once, so a small pool
// already gives a 100% recycle hit rate; without the cap, one workload
// spike that fans out over many distinct timestamps (or a Reset of a
// deep queue) would pin that high-water mark of buckets — and their fns
// backing arrays — for the engine's whole remaining lifetime.
const maxFreeBuckets = 64

// recycle returns a bucket to the pool, dropping its event references so
// completed closures can be collected. Beyond maxFreeBuckets the bucket
// is released to the garbage collector instead.
func (e *Engine) recycle(b *bucket) {
	if len(e.free) >= maxFreeBuckets {
		return
	}
	clear(b.fns)
	b.fns = b.fns[:0]
	b.next = 0
	e.free = append(e.free, b)
}

// push adds a bucket to the heap (sift up).
func (e *Engine) push(b *bucket) {
	e.heap = append(e.heap, b)
	i := len(e.heap) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if e.heap[parent].at <= e.heap[i].at {
			break
		}
		e.heap[parent], e.heap[i] = e.heap[i], e.heap[parent]
		i = parent
	}
}

// pop removes the minimum bucket from the heap (sift down).
func (e *Engine) pop() {
	n := len(e.heap) - 1
	e.heap[0] = e.heap[n]
	e.heap[n] = nil
	e.heap = e.heap[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && e.heap[l].at < e.heap[smallest].at {
			smallest = l
		}
		if r < n && e.heap[r].at < e.heap[smallest].at {
			smallest = r
		}
		if smallest == i {
			return
		}
		e.heap[i], e.heap[smallest] = e.heap[smallest], e.heap[i]
		i = smallest
	}
}
