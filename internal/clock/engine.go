package clock

import (
	"container/heap"
	"fmt"
)

// Event is a callback scheduled to run at a specific simulated time. The
// engine passes the event's own timestamp to the callback so handlers do
// not need to capture it.
type Event func(now Time)

type scheduledEvent struct {
	at  Time
	seq uint64 // tie-breaker: FIFO among events at the same time
	fn  Event
}

type eventQueue []scheduledEvent

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x interface{}) { *q = append(*q, x.(scheduledEvent)) }
func (q *eventQueue) Pop() interface{} {
	old := *q
	n := len(old)
	ev := old[n-1]
	*q = old[:n-1]
	return ev
}

// Engine is a deterministic discrete-event simulation engine. Events
// scheduled for the same timestamp run in the order they were scheduled,
// so a simulation is fully reproducible from its inputs.
//
// Engine is not safe for concurrent use; the simulator is single-threaded
// by design (determinism is a core requirement for a design-space study,
// where runs are compared against each other).
type Engine struct {
	now       Time
	queue     eventQueue
	seq       uint64
	processed uint64
}

// NewEngine returns an engine positioned at time zero with no pending
// events.
func NewEngine() *Engine { return &Engine{} }

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Pending returns the number of events not yet executed.
func (e *Engine) Pending() int { return len(e.queue) }

// Processed returns the total number of events executed so far.
func (e *Engine) Processed() uint64 { return e.processed }

// Schedule runs fn at absolute time at. Scheduling in the past panics:
// it would silently reorder causality and corrupt the run.
func (e *Engine) Schedule(at Time, fn Event) {
	if at < e.now {
		panic(fmt.Sprintf("clock: schedule at %v before now %v", at, e.now))
	}
	e.seq++
	heap.Push(&e.queue, scheduledEvent{at: at, seq: e.seq, fn: fn})
}

// ScheduleAfter runs fn after duration d from the current time.
func (e *Engine) ScheduleAfter(d Duration, fn Event) {
	e.Schedule(e.now.Add(d), fn)
}

// Step executes the single earliest pending event and advances time to
// its timestamp. It reports whether an event was executed.
func (e *Engine) Step() bool {
	if len(e.queue) == 0 {
		return false
	}
	ev := heap.Pop(&e.queue).(scheduledEvent)
	e.now = ev.at
	e.processed++
	ev.fn(e.now)
	return true
}

// Run executes events until the queue is empty and returns the final
// simulated time.
func (e *Engine) Run() Time {
	for e.Step() {
	}
	return e.now
}

// RunUntil executes events with timestamps at or before deadline, then
// advances time to the deadline (even if no event landed exactly on it).
func (e *Engine) RunUntil(deadline Time) {
	for len(e.queue) > 0 && e.queue[0].at <= deadline {
		e.Step()
	}
	if e.now < deadline {
		e.now = deadline
	}
}
