package clock

// Resource models a pipelined hardware resource with an occupancy
// constraint using busy-until bookkeeping: each request reserves the
// resource for a given duration, and a request arriving while the
// resource is busy is delayed until it frees up.
//
// This is the standard trace-driven-simulator compromise between a fixed
// latency (no contention at all) and a full micro-event model: it
// serialises conflicting requests exactly, costs O(1) per request, and is
// deterministic.
type Resource struct {
	name      string
	busyUntil Time
	requests  uint64
	busyTime  Duration
}

// NewResource returns an idle resource with the given name.
func NewResource(name string) *Resource { return &Resource{name: name} }

// Name returns the resource's name.
func (r *Resource) Name() string { return r.name }

// Acquire reserves the resource for occupancy starting no earlier than
// at. It returns the time the request actually starts (>= at) and the
// time the resource becomes free again. The caller's request completes at
// start plus its own latency, which may be longer than the occupancy
// (e.g. a bus transfer occupies the bus for the transfer time but the
// data arrives after an additional propagation delay).
func (r *Resource) Acquire(at Time, occupancy Duration) (start, free Time) {
	start = Max(at, r.busyUntil)
	free = start.Add(occupancy)
	r.busyUntil = free
	r.requests++
	r.busyTime += occupancy
	return start, free
}

// FreeAt returns the earliest time a new request could start.
func (r *Resource) FreeAt() Time { return r.busyUntil }

// Requests returns the number of Acquire calls so far.
func (r *Resource) Requests() uint64 { return r.requests }

// BusyTime returns the total occupancy accumulated so far, for
// utilisation reporting.
func (r *Resource) BusyTime() Duration { return r.busyTime }

// Reset returns the resource to idle at time zero, clearing statistics.
func (r *Resource) Reset() {
	r.busyUntil = 0
	r.requests = 0
	r.busyTime = 0
}
