// Package cpu models the baseline general-purpose core of Table II: a
// 3.5 GHz out-of-order core with a gshare branch predictor, replaying
// dynamic instruction traces against the memory hierarchy.
//
// The timing model is the standard trace-driven out-of-order
// approximation: instructions dispatch in program order limited by issue
// width and reorder-buffer occupancy, begin execution when their trace
// dependencies have completed, and complete out of order. Branch
// mispredictions stall dispatch for the refill penalty; communication API
// instructions (Table IV) serialise the core, as a blocking library call
// does.
package cpu

import (
	"heteromem/internal/arena"
	"heteromem/internal/clock"
	"heteromem/internal/config"
	"heteromem/internal/isa"
	"heteromem/internal/mem"
	"heteromem/internal/obs"
	"heteromem/internal/trace"

	"heteromem/internal/bpred"
)

// Memory is the view of the memory system the core needs. *mem.Hierarchy
// implements it; tests may substitute fixed-latency fakes.
type Memory interface {
	Access(pu mem.PU, addr uint64, write bool, now clock.Time) clock.Time
	Push(pu mem.PU, addr uint64, size uint32, level mem.Level, now clock.Time) clock.Time
}

// CommCoster prices a communication instruction; config.CommParams.Latency
// bound to a parameter set is the usual implementation.
type CommCoster func(kind isa.Kind, size uint32) clock.Duration

// Stats summarises one Run.
type Stats struct {
	Instructions uint64
	Branches     uint64
	Mispredicts  uint64
	MemOps       uint64
	CommOps      uint64
	PushOps      uint64
	// CommTime is the total time spent inside communication instructions;
	// the harness subtracts it from phase time to build the Figure 5
	// breakdown.
	CommTime clock.Duration
	// Duration is the wall time of the run (end - start).
	Duration clock.Duration
}

// Core is a reusable out-of-order core instance.
type Core struct {
	cfg    config.CoreConfig
	dom    *clock.Domain
	cycle  clock.Duration
	pred   *bpred.Gshare
	memory Memory
	comm   CommCoster
	obs    coreObs

	// completion and retire rings must cover both the ROB window and the
	// maximum trace dependency distance (uint16).
	comp   []clock.Time
	retire []clock.Time
	// srcBuf is the lookahead batch shared by the core's Executions (one
	// is live at a time); it lives here so starting a replay allocates
	// nothing.
	srcBuf []trace.Inst
}

// coreObs holds the core's observability instruments under the cpu.*
// namespace. All fields are nil until Instrument is called, and every
// bump on a nil instrument is a no-op, so the uninstrumented hot path
// pays one predictable branch per bump.
type coreObs struct {
	instructions *obs.Counter
	branches     *obs.Counter
	mispredicts  *obs.Counter
	memOps       *obs.Counter
	commOps      *obs.Counter
	pushOps      *obs.Counter
	commTimePS   *obs.Counter
	memLatPS     *obs.Histogram
}

// Instrument registers the core's metrics (cpu.*) with reg and routes the
// hot-path bumps to them. A nil registry detaches the instruments.
func (c *Core) Instrument(reg *obs.Registry) {
	c.obs = coreObs{
		instructions: reg.Counter("cpu.instructions"),
		branches:     reg.Counter("cpu.branches"),
		mispredicts:  reg.Counter("cpu.mispredicts"),
		memOps:       reg.Counter("cpu.memops"),
		commOps:      reg.Counter("cpu.commops"),
		pushOps:      reg.Counter("cpu.pushops"),
		commTimePS:   reg.Counter("cpu.commtime_ps"),
		memLatPS:     reg.Histogram("cpu.memlat_ps"),
	}
}

const ringSize = 1 << 16

// srcBatch is the lookahead batch size pulled from the trace source.
const srcBatch = 256

// New returns a core with the given configuration bound to a memory
// system and communication cost model.
func New(cfg config.CoreConfig, memory Memory, comm CommCoster) *Core {
	return NewIn(nil, cfg, memory, comm)
}

// NewIn is New with the completion rings and trace lookahead buffer
// carved from the arena (nil falls back to the heap); the core keeps no
// reference to the arena.
func NewIn(a *arena.Arena, cfg config.CoreConfig, memory Memory, comm CommCoster) *Core {
	if cfg.IssueWidth <= 0 {
		cfg.IssueWidth = 1
	}
	if cfg.ROBSize <= 0 {
		cfg.ROBSize = 1
	}
	dom := cfg.Domain()
	c := &Core{
		cfg:    cfg,
		dom:    dom,
		cycle:  dom.PeriodPS(),
		memory: memory,
		comm:   comm,
		comp:   arena.Make[clock.Time](a, ringSize),
		retire: arena.Make[clock.Time](a, ringSize),
		srcBuf: arena.Make[trace.Inst](a, srcBatch),
	}
	if cfg.PredictorTableBits > 0 {
		c.pred = bpred.NewGshare(cfg.PredictorTableBits, cfg.PredictorHistoryBits)
	}
	return c
}

// Domain returns the core's clock domain.
func (c *Core) Domain() *clock.Domain { return c.dom }

// Execution is an in-progress replay of one instruction source. It lets
// the simulator co-simulate two cores by alternately advancing whichever
// is behind in simulated time, so their memory traffic interleaves on
// shared resources in time order. A core supports one live Execution at
// a time (the completion rings are per-core).
//
// The execution keeps a lookahead batch pulled from the source (refilled
// the moment it drains), so Done is accurate the moment the last
// instruction executes (the co-simulation loop in internal/sim depends on
// that) and pausing at a StepUntil deadline never loses a record. Pulling
// in batches keeps the per-instruction source call out of the replay
// loop; it does not change when instructions execute.
type Execution struct {
	c   *Core
	src trace.Source
	i   int
	bi  int // next instruction to execute, in c.srcBuf
	bn  int // instructions buffered in c.srcBuf

	start      clock.Time
	cur        clock.Time // dispatch-cycle clock
	issued     int        // instructions dispatched this cycle
	maxComp    clock.Time // latest completion seen (for barriers/drain)
	lastRetire clock.Time
	stats      Stats
	// flushed is the Stats snapshot at the last FlushObs; the replay loop
	// bumps only the plain stats fields and the instruments advance by the
	// delta at flush points, keeping instrument calls off the hot path.
	flushed Stats
	// memLat accumulates load-latency observations between flushes; it
	// only fills when a latency histogram is registered.
	memLat obs.HistAccum
}

// Begin starts replaying the source at time at. A nil source is an empty
// execution.
func (c *Core) Begin(src trace.Source, at clock.Time) *Execution {
	e := &Execution{c: c, src: src, start: at, cur: at}
	if src != nil {
		e.bn = trace.FillBatch(src, c.srcBuf)
	}
	return e
}

// Run replays the source starting at start to completion and returns the
// completion time of the last instruction (including drained stores) and
// run statistics. Run may be called repeatedly; predictor state persists
// across calls (warm predictor), ring state does not need clearing
// because every slot is written before it is read within a run.
func (c *Core) Run(src trace.Source, start clock.Time) (clock.Time, Stats) {
	e := Execution{c: c, src: src, start: start, cur: start}
	if src != nil {
		e.bn = trace.FillBatch(src, c.srcBuf)
	}
	e.StepUntil(clock.Time(^uint64(0)))
	return e.End()
}

// RunStream is Run over an in-memory stream.
func (c *Core) RunStream(s trace.Stream, start clock.Time) (clock.Time, Stats) {
	cur := trace.Cursor{}
	return c.Run(cur.Bind(s), start)
}

// Done reports whether every instruction has executed.
func (e *Execution) Done() bool { return e.bi >= e.bn }

// Now returns the dispatch clock — where the front end currently is.
func (e *Execution) Now() clock.Time { return e.cur }

// StepUntil executes instructions while the dispatch clock is at or
// before deadline (and the source has instructions left). It always makes
// progress when called with deadline >= Now().
func (e *Execution) StepUntil(deadline clock.Time) {
	c := e.c
	for e.bi < e.bn && e.cur <= deadline {
		i, in := e.i, c.srcBuf[e.bi]
		if e.issued >= c.cfg.IssueWidth {
			e.cur = e.cur.Add(c.cycle)
			e.issued = 0
		}
		// Reorder-buffer occupancy: instruction i cannot dispatch before
		// instruction i-ROB has retired.
		if i >= c.cfg.ROBSize {
			head := c.retire[(i-c.cfg.ROBSize)%ringSize]
			if e.cur < head {
				e.cur = head
				e.issued = 0
			}
		}
		// Dependencies pointing before the stream start are ignored: the
		// producer ran in an earlier phase and has long completed.
		ready := e.cur
		if d := int(in.Dep1); d != 0 && d <= i {
			if t := c.comp[(i-d)%ringSize]; t > ready {
				ready = t
			}
		}
		if d := int(in.Dep2); d != 0 && d <= i {
			if t := c.comp[(i-d)%ringSize]; t > ready {
				ready = t
			}
		}

		var done clock.Time
		switch {
		case in.Kind == isa.Branch:
			done = ready.Add(c.cycle)
			e.stats.Branches++
			correct := true
			if c.pred != nil {
				correct = c.pred.Update(in.PC, in.Taken)
			}
			if !correct {
				e.stats.Mispredicts++
				resume := done.Add(clock.Duration(c.cfg.MispredictPenalty) * c.cycle)
				if resume > e.cur {
					e.cur = resume
					e.issued = 0
				}
			}
		case in.Kind == isa.Load:
			e.stats.MemOps++
			done = c.memory.Access(mem.CPU, in.Addr, false, ready)
			if c.obs.memLatPS != nil {
				e.memLat.Observe(uint64(done.Sub(ready)))
			}
		case in.Kind == isa.Store:
			e.stats.MemOps++
			drain := c.memory.Access(mem.CPU, in.Addr, true, ready)
			if drain > e.maxComp {
				e.maxComp = drain
			}
			if c.cfg.StrongConsistency {
				// Sequential consistency: the store must be globally
				// performed before anything younger proceeds.
				done = drain
				if drain > e.cur {
					e.cur = drain
					e.issued = 0
				}
			} else {
				// Weak consistency: the store buffer absorbs it; only
				// barriers wait for the drain.
				done = ready.Add(c.cycle)
			}
		case in.Kind.IsComm():
			e.stats.CommOps++
			d := c.comm(in.Kind, in.Size)
			e.stats.CommTime += d
			// A blocking API call serialises the core: it begins after all
			// outstanding work and stalls dispatch until it returns.
			at := clock.Max(ready, e.maxComp)
			done = at.Add(d)
			e.cur = done
			e.issued = 0
		case in.Kind == isa.Push:
			e.stats.PushOps++
			done = c.memory.Push(mem.CPU, in.Addr, in.Size, pushLevel(in.PushLevel), ready)
		case in.Kind == isa.Barrier:
			done = clock.Max(ready, e.maxComp).Add(c.cycle)
			e.cur = done
			e.issued = 0
		default:
			lat := in.Kind.ExecLatency()
			done = ready.Add(clock.Duration(lat) * c.cycle)
		}

		slot := i % ringSize
		c.comp[slot] = done
		if done > e.maxComp {
			e.maxComp = done
		}
		if done > e.lastRetire {
			e.lastRetire = done
		}
		c.retire[slot] = e.lastRetire
		e.issued++
		e.stats.Instructions++
		e.i++
		e.bi++
		if e.bi >= e.bn {
			e.bn = trace.FillBatch(e.src, c.srcBuf)
			e.bi = 0
		}
	}
}

// End returns the completion time (all work drained) and the run's
// statistics. The execution must be Done.
func (e *Execution) End() (clock.Time, Stats) {
	if !e.Done() {
		panic("cpu: End called on unfinished execution")
	}
	e.FlushObs()
	end := clock.Max(e.cur, e.maxComp)
	st := e.stats
	st.Duration = end.Sub(e.start)
	return end, st
}

// FlushObs pushes the statistics accumulated since the previous flush
// into the core's instruments. The co-simulation loop calls it before
// each interval sample; End flushes the tail, so registry totals match
// per-event bumping exactly. A no-op on an uninstrumented core (every
// instrument is nil-safe).
func (e *Execution) FlushObs() {
	c, st, fl := e.c, &e.stats, &e.flushed
	c.obs.instructions.Add(st.Instructions - fl.Instructions)
	c.obs.branches.Add(st.Branches - fl.Branches)
	c.obs.mispredicts.Add(st.Mispredicts - fl.Mispredicts)
	c.obs.memOps.Add(st.MemOps - fl.MemOps)
	c.obs.commOps.Add(st.CommOps - fl.CommOps)
	c.obs.pushOps.Add(st.PushOps - fl.PushOps)
	c.obs.commTimePS.Add(uint64(st.CommTime - fl.CommTime))
	c.obs.memLatPS.Merge(&e.memLat)
	e.flushed = *st
}

func pushLevel(l uint8) mem.Level {
	switch l {
	case trace.PushShared:
		return mem.LevelShared
	case trace.PushSoftware:
		return mem.LevelSoftware
	default:
		return mem.LevelPrivate
	}
}

// Predictor returns the core's branch predictor, or nil if it has none.
func (c *Core) Predictor() *bpred.Gshare { return c.pred }

// Reset clears the core's cross-run state so it can start a fresh
// program. Only the branch predictor persists between runs (all other
// execution state lives in the per-run Execution); its history and
// statistics are cleared.
func (c *Core) Reset() {
	if c.pred != nil {
		c.pred.Reset()
	}
}
