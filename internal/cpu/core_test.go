package cpu

import (
	"testing"

	"heteromem/internal/clock"
	"heteromem/internal/config"
	"heteromem/internal/isa"
	"heteromem/internal/mem"
	"heteromem/internal/trace"
)

// fakeMem is a fixed-latency memory for isolating the core model.
type fakeMem struct {
	lat      clock.Duration
	accesses int
	pushes   int
}

func (f *fakeMem) Access(pu mem.PU, addr uint64, write bool, now clock.Time) clock.Time {
	f.accesses++
	return now.Add(f.lat)
}

func (f *fakeMem) Push(pu mem.PU, addr uint64, size uint32, level mem.Level, now clock.Time) clock.Time {
	f.pushes++
	return now.Add(f.lat)
}

func zeroComm(isa.Kind, uint32) clock.Duration { return 0 }

func newCore(m Memory, comm CommCoster) *Core {
	if comm == nil {
		comm = zeroComm
	}
	return New(config.BaselineCPU(), m, comm)
}

func alu(n int) trace.Stream {
	s := make(trace.Stream, n)
	for i := range s {
		s[i] = trace.Inst{PC: uint64(i) * 4, Kind: isa.ALU}
	}
	return s
}

func TestIndependentALUIssuesAtFullWidth(t *testing.T) {
	c := newCore(&fakeMem{}, nil)
	n := 4000
	end, st := c.RunStream(alu(n), 0)
	cycles := c.Domain().DurationToCycles(end.Sub(0))
	// 4-wide issue: ~n/4 cycles (a couple of cycles of slack at the ends).
	want := uint64(n / 4)
	if cycles+4 < want || cycles > want+4 {
		t.Fatalf("ran %d ALU ops in %d cycles, want ~%d", n, cycles, want)
	}
	if st.Instructions != uint64(n) {
		t.Fatalf("instructions = %d", st.Instructions)
	}
}

func TestDependencyChainSerialises(t *testing.T) {
	c := newCore(&fakeMem{}, nil)
	n := 1000
	s := make(trace.Stream, n)
	for i := range s {
		s[i] = trace.Inst{PC: uint64(i) * 4, Kind: isa.ALU, Dep1: 1}
	}
	end, _ := c.RunStream(s, 0)
	cycles := c.Domain().DurationToCycles(end.Sub(0))
	// A serial chain of 1-cycle ops takes ~n cycles, not n/4.
	if cycles < uint64(n)-2 {
		t.Fatalf("dependent chain took %d cycles, want >= %d", cycles, n)
	}
}

func TestMispredictStallsDispatch(t *testing.T) {
	mkStream := func(taken func(i int) bool) trace.Stream {
		var s trace.Stream
		for i := 0; i < 2000; i++ {
			s = append(s, trace.Inst{PC: 0x100, Kind: isa.Branch, Taken: taken(i)})
			s = append(s, trace.Inst{PC: uint64(0x200 + i*4), Kind: isa.ALU})
		}
		return s
	}
	// Steady branch: learned quickly.
	cSteady := newCore(&fakeMem{}, nil)
	endSteady, stSteady := cSteady.RunStream(mkStream(func(int) bool { return true }), 0)
	// Pseudo-random branch: mispredicts often.
	cRand := newCore(&fakeMem{}, nil)
	endRand, stRand := cRand.RunStream(mkStream(func(i int) bool { return (i*2654435761)>>13&1 == 0 }), 0)
	if stRand.Mispredicts <= stSteady.Mispredicts {
		t.Fatalf("random branches mispredicted %d <= steady %d", stRand.Mispredicts, stSteady.Mispredicts)
	}
	if endRand <= endSteady {
		t.Fatal("mispredictions did not cost time")
	}
}

func TestLoadLatencyExposedThroughDeps(t *testing.T) {
	m := &fakeMem{lat: 100 * clock.Nanosecond}
	c := newCore(m, nil)
	// load ; dependent ALU — the ALU waits for the load.
	s := trace.Stream{
		{Kind: isa.Load, Addr: 0x1000, Size: 8},
		{Kind: isa.ALU, Dep1: 1},
	}
	end, st := c.RunStream(s, 0)
	if end.Sub(0) < 100*clock.Nanosecond {
		t.Fatalf("dependent ALU did not wait for load: end %v", end)
	}
	if st.MemOps != 1 || m.accesses != 1 {
		t.Fatal("load not issued to memory")
	}
}

func TestIndependentLoadsOverlap(t *testing.T) {
	m := &fakeMem{lat: 100 * clock.Nanosecond}
	c := newCore(m, nil)
	s := trace.Stream{
		{Kind: isa.Load, Addr: 0x1000, Size: 8},
		{Kind: isa.Load, Addr: 0x2000, Size: 8},
		{Kind: isa.Load, Addr: 0x3000, Size: 8},
		{Kind: isa.Load, Addr: 0x4000, Size: 8},
	}
	end, _ := c.RunStream(s, 0)
	// All four overlap: total ≈ one load latency, not four.
	if end.Sub(0) > 150*clock.Nanosecond {
		t.Fatalf("independent loads serialised: %v", end.Sub(0))
	}
}

func TestStoreDoesNotBlockButBarrierDrains(t *testing.T) {
	m := &fakeMem{lat: 100 * clock.Nanosecond}
	c := newCore(m, nil)
	s := trace.Stream{
		{Kind: isa.Store, Addr: 0x1000, Size: 8},
		{Kind: isa.ALU, Dep1: 1},
	}
	end, _ := c.RunStream(s, 0)
	// Dependent of a store sees the store buffer, not memory... but the
	// run end includes the drain.
	if end.Sub(0) < 100*clock.Nanosecond {
		t.Fatalf("run ended before store drained: %v", end.Sub(0))
	}

	c2 := newCore(&fakeMem{lat: 100 * clock.Nanosecond}, nil)
	s2 := trace.Stream{
		{Kind: isa.Store, Addr: 0x1000, Size: 8},
		{Kind: isa.Barrier},
		{Kind: isa.ALU},
	}
	end2, _ := c2.RunStream(s2, 0)
	if end2.Sub(0) < 100*clock.Nanosecond {
		t.Fatal("barrier did not wait for store drain")
	}
}

func TestROBLimitsRunahead(t *testing.T) {
	// One very slow load followed by many independent ALU ops: dispatch
	// must stall once the ROB fills, so the run takes at least the load
	// latency even though the ALUs are independent.
	m := &fakeMem{lat: 10 * clock.Microsecond}
	c := newCore(m, nil)
	s := trace.Stream{{Kind: isa.Load, Addr: 0x1000, Size: 8}}
	for i := 0; i < 1000; i++ {
		s = append(s, trace.Inst{PC: uint64(i) * 4, Kind: isa.ALU})
	}
	end, _ := c.RunStream(s, 0)
	if end.Sub(0) < 10*clock.Microsecond {
		t.Fatalf("ROB did not limit runahead: %v", end.Sub(0))
	}
}

func TestCommSerialisesAndAccumulates(t *testing.T) {
	params := config.TableIV()
	c := newCore(&fakeMem{}, params.Latency)
	s := trace.Stream{
		{Kind: isa.ALU},
		{Kind: isa.APIPCI, Size: 65536},
		{Kind: isa.ALU},
	}
	end, st := c.RunStream(s, 0)
	want := params.Latency(isa.APIPCI, 65536)
	if st.CommTime != want {
		t.Fatalf("CommTime = %v, want %v", st.CommTime, want)
	}
	if end.Sub(0) < want {
		t.Fatal("API call did not serialise the core")
	}
	if st.CommOps != 1 {
		t.Fatalf("CommOps = %d", st.CommOps)
	}
}

func TestPushRoutedToMemory(t *testing.T) {
	m := &fakeMem{lat: clock.Nanosecond}
	c := newCore(m, nil)
	s := trace.Stream{{Kind: isa.Push, Addr: 0x1000, Size: 4096, PushLevel: trace.PushShared}}
	_, st := c.RunStream(s, 0)
	if m.pushes != 1 || st.PushOps != 1 {
		t.Fatalf("push not routed: mem=%d stat=%d", m.pushes, st.PushOps)
	}
}

func TestStrongConsistencySlowerOnStores(t *testing.T) {
	var s trace.Stream
	for i := 0; i < 500; i++ {
		s = append(s, trace.Inst{PC: uint64(i), Kind: isa.Store, Addr: uint64(i) * 64, Size: 8})
		s = append(s, trace.Inst{PC: uint64(i), Kind: isa.ALU})
	}
	weak := newCore(&fakeMem{lat: 50 * clock.Nanosecond}, nil)
	weakEnd, _ := weak.RunStream(s, 0)

	cfg := config.BaselineCPU()
	cfg.StrongConsistency = true
	strong := New(cfg, &fakeMem{lat: 50 * clock.Nanosecond}, zeroComm)
	strongEnd, _ := strong.RunStream(s, 0)

	// SC serialises on every store: ~500 x 50ns = 25us minimum. Weak
	// overlaps everything behind the store buffer.
	if strongEnd < clock.Time(25*clock.Microsecond) {
		t.Fatalf("strong consistency too fast: %v", strongEnd)
	}
	if weakEnd*4 > strongEnd {
		t.Fatalf("strong (%v) not clearly slower than weak (%v)", strongEnd, weakEnd)
	}
}

func TestRunAgainstRealHierarchy(t *testing.T) {
	h := mem.MustNew(mem.TableII())
	c := newCore(h, config.TableIV().Latency)
	var s trace.Stream
	for i := 0; i < 5000; i++ {
		s = append(s, trace.Inst{PC: uint64(i%128) * 4, Kind: isa.Load, Addr: uint64(i%64) * 64, Size: 8})
		s = append(s, trace.Inst{PC: uint64(i%128)*4 + 1, Kind: isa.ALU, Dep1: 1})
	}
	end, st := c.RunStream(s, 0)
	if end == 0 || st.Instructions != 10000 {
		t.Fatalf("run failed: end=%v st=%+v", end, st)
	}
	hs := h.Stats()
	if hs.Accesses[mem.CPU] != 5000 {
		t.Fatalf("hierarchy saw %d accesses, want 5000", hs.Accesses[mem.CPU])
	}
	// The 64-line working set fits L1: nearly everything hits after warm-up.
	if hs.L1Hits[mem.CPU] < 4800 {
		t.Fatalf("L1 hits %d, want ~4936", hs.L1Hits[mem.CPU])
	}
}

func TestStatsDuration(t *testing.T) {
	c := newCore(&fakeMem{}, nil)
	start := clock.Time(5 * clock.Microsecond)
	end, st := c.RunStream(alu(100), start)
	if st.Duration != end.Sub(start) {
		t.Fatalf("Duration %v != end-start %v", st.Duration, end.Sub(start))
	}
}

func TestEmptyStream(t *testing.T) {
	c := newCore(&fakeMem{}, nil)
	end, st := c.RunStream(nil, 42)
	if end != 42 || st.Instructions != 0 {
		t.Fatalf("empty run: end=%v st=%+v", end, st)
	}
}

func BenchmarkRunALU(b *testing.B) {
	c := newCore(&fakeMem{}, nil)
	s := alu(10000)
	b.ResetTimer()
	var now clock.Time
	for i := 0; i < b.N; i++ {
		now, _ = c.RunStream(s, now)
	}
}

func BenchmarkRunMixed(b *testing.B) {
	h := mem.MustNew(mem.TableII())
	c := newCore(h, config.TableIV().Latency)
	var s trace.Stream
	for i := 0; i < 10000; i++ {
		switch i % 5 {
		case 0:
			s = append(s, trace.Inst{PC: uint64(i), Kind: isa.Load, Addr: uint64(i%4096) * 16, Size: 8})
		case 1:
			s = append(s, trace.Inst{PC: uint64(i), Kind: isa.Branch, Taken: i%3 == 0})
		default:
			s = append(s, trace.Inst{PC: uint64(i), Kind: isa.ALU, Dep1: 1})
		}
	}
	b.ResetTimer()
	var now clock.Time
	for i := 0; i < b.N; i++ {
		now, _ = c.RunStream(s, now)
	}
}
