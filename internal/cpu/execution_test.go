package cpu

import (
	"testing"

	"heteromem/internal/clock"
	"heteromem/internal/isa"
	"heteromem/internal/trace"
)

func TestExecutionStepwiseMatchesRun(t *testing.T) {
	// Advancing an execution in small deadline steps must produce exactly
	// the same end time and statistics as a monolithic Run (the memory is
	// private to each, so no cross-interference).
	mk := func() trace.Stream {
		var s trace.Stream
		for i := 0; i < 5000; i++ {
			switch i % 4 {
			case 0:
				s = append(s, trace.Inst{PC: uint64(i), Kind: isa.Load, Addr: uint64(i%128) * 64, Size: 8})
			case 1:
				s = append(s, trace.Inst{PC: uint64(i), Kind: isa.ALU, Dep1: 1})
			case 2:
				s = append(s, trace.Inst{PC: uint64(i), Kind: isa.Branch, Taken: i%3 == 0})
			default:
				s = append(s, trace.Inst{PC: uint64(i), Kind: isa.Store, Addr: uint64(i%64) * 64, Size: 8})
			}
		}
		return s
	}

	cRun := newCore(&fakeMem{lat: 50 * clock.Nanosecond}, nil)
	endRun, stRun := cRun.RunStream(mk(), 0)

	cStep := newCore(&fakeMem{lat: 50 * clock.Nanosecond}, nil)
	e := cStep.Begin(trace.NewCursor(mk()), 0)
	deadline := clock.Time(0)
	for !e.Done() {
		deadline = deadline.Add(100 * clock.Nanosecond)
		e.StepUntil(deadline)
	}
	endStep, stStep := e.End()

	if endRun != endStep {
		t.Fatalf("stepwise end %v != run end %v", endStep, endRun)
	}
	if stRun != stStep {
		t.Fatalf("stepwise stats %+v != run stats %+v", stStep, stRun)
	}
}

func TestExecutionProgressGuarantee(t *testing.T) {
	c := newCore(&fakeMem{}, nil)
	e := c.Begin(trace.NewCursor(alu(100)), 0)
	// A deadline equal to Now always allows at least one instruction.
	for i := 0; i < 100 && !e.Done(); i++ {
		before := e.i
		e.StepUntil(e.Now())
		if e.i == before {
			t.Fatal("StepUntil(Now()) made no progress")
		}
	}
	if !e.Done() {
		t.Fatalf("execution incomplete after 100 steps: %d/100", e.i)
	}
}

func TestExecutionEndPanicsIfUnfinished(t *testing.T) {
	c := newCore(&fakeMem{}, nil)
	e := c.Begin(trace.NewCursor(alu(1000)), 0)
	e.StepUntil(0) // a handful of instructions at most
	if e.Done() {
		t.Skip("stream completed in one step")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("End on unfinished execution did not panic")
		}
	}()
	e.End()
}

func TestExecutionNowMonotonic(t *testing.T) {
	c := newCore(&fakeMem{lat: 10 * clock.Nanosecond}, nil)
	var s trace.Stream
	for i := 0; i < 2000; i++ {
		s = append(s, trace.Inst{PC: uint64(i), Kind: isa.Load, Addr: uint64(i) * 64, Size: 8})
		s = append(s, trace.Inst{PC: uint64(i), Kind: isa.ALU, Dep1: 1})
	}
	e := c.Begin(trace.NewCursor(s), 0)
	prev := e.Now()
	for !e.Done() {
		e.StepUntil(prev.Add(clock.Microsecond))
		if e.Now() < prev {
			t.Fatal("dispatch clock moved backwards")
		}
		prev = e.Now()
	}
}

func TestExecutionEmptyStream(t *testing.T) {
	c := newCore(&fakeMem{}, nil)
	e := c.Begin(trace.NewCursor(nil), 99)
	if !e.Done() {
		t.Fatal("empty execution not done")
	}
	end, st := e.End()
	if end != 99 || st.Instructions != 0 {
		t.Fatalf("empty end=%v st=%+v", end, st)
	}
}
