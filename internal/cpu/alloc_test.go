package cpu

import (
	"testing"

	"heteromem/internal/isa"
	"heteromem/internal/trace"
)

// TestRunAllocBudget pins the replay hot path at zero heap allocations
// per Run: the Execution lives on the caller's stack and instructions are
// pulled through a reused cursor, so replay cost is independent of trace
// length. A regression here silently reintroduces O(N)-alloc replays.
func TestRunAllocBudget(t *testing.T) {
	c := newCore(&fakeMem{lat: 100}, nil)
	s := make(trace.Stream, 10000)
	for i := range s {
		switch i % 5 {
		case 0:
			s[i] = trace.Inst{PC: uint64(i) * 4, Kind: isa.Load, Addr: uint64(i) * 64, Size: 8}
		case 1:
			s[i] = trace.Inst{PC: uint64(i) * 4, Kind: isa.ALU, Dep1: 1}
		case 2:
			s[i] = trace.Inst{PC: uint64(i) * 4, Kind: isa.Branch, Taken: i%3 == 0}
		case 3:
			s[i] = trace.Inst{PC: uint64(i) * 4, Kind: isa.Store, Addr: uint64(i) * 8, Size: 8, Dep1: 2}
		default:
			s[i] = trace.Inst{PC: uint64(i) * 4, Kind: isa.FP, Dep1: 1}
		}
	}
	cur := trace.NewCursor(s)
	avg := testing.AllocsPerRun(20, func() {
		cur.Reset()
		c.Run(cur, 0)
	})
	if avg != 0 {
		t.Errorf("cpu.Core.Run allocates %.1f objects per replay, want 0", avg)
	}
}
