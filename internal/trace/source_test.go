package trace

import (
	"bytes"
	"reflect"
	"testing"

	"heteromem/internal/isa"
)

func sampleStream(n int) Stream {
	var s Stream
	for i := 0; i < n; i++ {
		switch i % 4 {
		case 0:
			s = append(s, Inst{PC: uint64(i), Kind: isa.Load, Addr: uint64(i) * 64, Size: 8})
		case 1:
			s = append(s, Inst{PC: uint64(i), Kind: isa.ALU, Dep1: 1})
		case 2:
			s = append(s, Inst{PC: uint64(i), Kind: isa.Branch, Taken: i%3 == 0})
		default:
			s = append(s, Inst{PC: uint64(i), Kind: isa.Store, Addr: uint64(i) * 8, Size: 8, Dep1: 2})
		}
	}
	return s
}

func TestCursorWalksStream(t *testing.T) {
	s := sampleStream(17)
	c := NewCursor(s)
	if c.Len() != 17 {
		t.Fatalf("Len = %d, want 17", c.Len())
	}
	for i, want := range s {
		got, ok := c.Next()
		if !ok || got != want {
			t.Fatalf("inst %d: got %+v ok=%v, want %+v", i, got, ok, want)
		}
	}
	if _, ok := c.Next(); ok {
		t.Fatal("Next past end returned ok")
	}
	// Len is the total, not the remainder.
	if c.Len() != 17 {
		t.Fatalf("Len after drain = %d, want 17", c.Len())
	}
	c.Reset()
	if in, ok := c.Next(); !ok || in != s[0] {
		t.Fatalf("after Reset: got %+v ok=%v", in, ok)
	}
}

func TestCursorBindReuses(t *testing.T) {
	a, b := sampleStream(4), sampleStream(8)
	var c Cursor
	if got := Materialize(c.Bind(a)); !reflect.DeepEqual(got, a) {
		t.Fatalf("bind a: %v", got)
	}
	if got := Materialize(c.Bind(b)); !reflect.DeepEqual(got, b) {
		t.Fatalf("bind b: %v", got)
	}
}

func TestMaterializeNil(t *testing.T) {
	if got := Materialize(nil); got != nil {
		t.Fatalf("Materialize(nil) = %v", got)
	}
}

func TestSummarizeSourceMatchesSummarize(t *testing.T) {
	s := sampleStream(1000)
	want := Summarize(s)
	got := SummarizeSource(NewCursor(s))
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("SummarizeSource = %+v, want %+v", got, want)
	}
}

func TestWriteSourceMatchesWrite(t *testing.T) {
	s := sampleStream(4097) // crosses the decoder's chunk boundary
	var viaStream, viaSource bytes.Buffer
	if err := Write(&viaStream, s); err != nil {
		t.Fatal(err)
	}
	if err := WriteSource(&viaSource, NewCursor(s)); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(viaStream.Bytes(), viaSource.Bytes()) {
		t.Fatal("WriteSource output differs from Write")
	}
	back, err := Read(&viaSource)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, s) {
		t.Fatal("round trip through WriteSource mismatched")
	}
}

// shortSource under-delivers against its declared Len.
type shortSource struct{ n, given int }

func (s *shortSource) Next() (Inst, bool) {
	if s.given >= s.n-1 {
		return Inst{}, false
	}
	s.given++
	return Inst{Kind: isa.ALU}, true
}
func (s *shortSource) Reset()   { s.given = 0 }
func (s *shortSource) Len() int { return s.n }

func TestWriteSourceRejectsShortSource(t *testing.T) {
	if err := WriteSource(&bytes.Buffer{}, &shortSource{n: 5}); err == nil {
		t.Fatal("WriteSource accepted a source that under-delivered")
	}
}

func TestWriteSourceNil(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteSource(&buf, nil); err != nil {
		t.Fatal(err)
	}
	s, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(s) != 0 {
		t.Fatalf("nil source decoded to %d records", len(s))
	}
}
