package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"heteromem/internal/isa"
)

// Binary trace format:
//
//	header:  magic "HMTR" | version uint16 | record count uint64
//	records: PC u64 | Addr u64 | Size u32 | Kind u8 | flags u8 | Dep1 u16 | Dep2 u16
//
// where flags bit0 = Taken, bits 1..2 = PushLevel, and bits 4..7 = Lanes.
// All integers are little-endian. The fixed 26-byte record keeps decoding
// allocation-free.
const (
	magic       = "HMTR"
	version     = uint16(1)
	recordBytes = 26
)

// Write serialises the stream to w in the binary trace format.
func Write(w io.Writer, s Stream) error {
	return WriteSource(w, NewCursor(s))
}

// WriteSource serialises src to w in the binary trace format, encoding
// one record at a time: the trace is never buffered in memory, so a
// multi-million-instruction generator streams straight to disk. The
// record count in the header is src.Len(); src must deliver exactly that
// many instructions from its current position (a freshly opened or Reset
// source does).
func WriteSource(w io.Writer, src Source) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(magic); err != nil {
		return err
	}
	n := 0
	if src != nil {
		n = src.Len()
	}
	var hdr [10]byte
	binary.LittleEndian.PutUint16(hdr[0:2], version)
	binary.LittleEndian.PutUint64(hdr[2:10], uint64(n))
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	var rec [recordBytes]byte
	written := 0
	if src != nil {
		for {
			in, ok := src.Next()
			if !ok {
				break
			}
			encodeRecord(&rec, in)
			if _, err := bw.Write(rec[:]); err != nil {
				return err
			}
			written++
		}
	}
	if written != n {
		return fmt.Errorf("trace: source delivered %d records, header promised %d", written, n)
	}
	return bw.Flush()
}

func encodeRecord(rec *[recordBytes]byte, in Inst) {
	binary.LittleEndian.PutUint64(rec[0:8], in.PC)
	binary.LittleEndian.PutUint64(rec[8:16], in.Addr)
	binary.LittleEndian.PutUint32(rec[16:20], in.Size)
	rec[20] = uint8(in.Kind)
	var flags uint8
	if in.Taken {
		flags |= 1
	}
	flags |= (in.PushLevel & 3) << 1
	flags |= in.Lanes << 4
	rec[21] = flags
	binary.LittleEndian.PutUint16(rec[22:24], in.Dep1)
	binary.LittleEndian.PutUint16(rec[24:26], in.Dep2)
}

func decodeRecord(rec *[recordBytes]byte) Inst {
	flags := rec[21]
	return Inst{
		PC:        binary.LittleEndian.Uint64(rec[0:8]),
		Addr:      binary.LittleEndian.Uint64(rec[8:16]),
		Size:      binary.LittleEndian.Uint32(rec[16:20]),
		Kind:      isa.Kind(rec[20]),
		Taken:     flags&1 != 0,
		PushLevel: flags >> 1 & 3,
		Lanes:     flags >> 4,
		Dep1:      binary.LittleEndian.Uint16(rec[22:24]),
		Dep2:      binary.LittleEndian.Uint16(rec[24:26]),
	}
}

// Read deserialises a stream written by Write. It consumes exactly the
// stream's bytes from r — no read-ahead — so traces can be embedded in
// larger files (the workload package's program format relies on this).
func Read(r io.Reader) (Stream, error) {
	var head [4 + 10]byte
	if _, err := io.ReadFull(r, head[:]); err != nil {
		return nil, fmt.Errorf("trace: reading header: %w", err)
	}
	if string(head[0:4]) != magic {
		return nil, fmt.Errorf("trace: bad magic %q", head[0:4])
	}
	if v := binary.LittleEndian.Uint16(head[4:6]); v != version {
		return nil, fmt.Errorf("trace: unsupported version %d", v)
	}
	count := binary.LittleEndian.Uint64(head[6:14])
	const maxReasonable = 1 << 32
	if count > maxReasonable {
		return nil, fmt.Errorf("trace: implausible record count %d", count)
	}
	if count == 0 {
		return nil, nil
	}
	out := make(Stream, 0, count)
	// Decode in chunks: exact consumption with few large reads.
	const chunkRecords = 4096
	buf := make([]byte, chunkRecords*recordBytes)
	var rec [recordBytes]byte
	for done := uint64(0); done < count; {
		n := count - done
		if n > chunkRecords {
			n = chunkRecords
		}
		chunk := buf[:n*recordBytes]
		if _, err := io.ReadFull(r, chunk); err != nil {
			return nil, fmt.Errorf("trace: record %d: %w", done, err)
		}
		for i := uint64(0); i < n; i++ {
			copy(rec[:], chunk[i*recordBytes:])
			out = append(out, decodeRecord(&rec))
		}
		done += n
	}
	return out, nil
}
