// Package trace defines the dynamic instruction trace format consumed by
// the simulator cores, together with binary serialization and summary
// statistics.
//
// The simulator is trace-driven in the style of MacSim (Section IV-A of
// the paper): cores replay a stream of dynamic instructions rather than
// fetching from a binary. Each record carries the minimal information a
// timing model needs — instruction class, memory address and size,
// dependency distances for the out-of-order window, branch outcome, and
// active SIMD lanes.
package trace

import (
	"fmt"

	"heteromem/internal/isa"
)

// Inst is one dynamic instruction in a trace.
type Inst struct {
	// PC is the instruction address; the CPU's gshare predictor indexes
	// its tables with it.
	PC uint64
	// Addr is the effective virtual address for memory operations, the
	// first lane's address for SIMD memory operations, and the object
	// address for push and communication transfers.
	Addr uint64
	// Size is the access size in bytes for memory operations and the
	// transfer size for communication instructions (api-pci, api-tr).
	Size uint32
	// Kind classifies the instruction.
	Kind isa.Kind
	// Dep1 and Dep2 are backward distances (in dynamic instructions) to
	// up to two producers this instruction depends on; zero means no
	// dependency. The out-of-order model cannot begin executing an
	// instruction before its producers complete.
	Dep1, Dep2 uint16
	// Taken is the outcome of a Branch.
	Taken bool
	// Lanes is the number of active SIMD lanes (1..8) for SIMD kinds;
	// zero is treated as all 8 lanes active.
	Lanes uint8
	// PushLevel selects the target cache level for Push instructions:
	// 0 = private first-level, 1 = shared second-level, 2 = the GPU's
	// software-managed cache.
	PushLevel uint8
}

// Push target levels (values of PushLevel).
const (
	PushPrivate  = 0
	PushShared   = 1
	PushSoftware = 2
)

// ActiveLanes returns the number of active SIMD lanes, defaulting to the
// full 8-wide datapath when unset.
func (in Inst) ActiveLanes() int {
	if in.Lanes == 0 {
		return 8
	}
	return int(in.Lanes)
}

// Validate checks internal consistency of a single record.
func (in Inst) Validate() error {
	if !in.Kind.Valid() {
		return fmt.Errorf("trace: invalid kind %d", uint8(in.Kind))
	}
	if in.Kind.IsMem() && in.Size == 0 {
		return fmt.Errorf("trace: %v with zero size", in.Kind)
	}
	if in.Lanes > 8 {
		return fmt.Errorf("trace: %d SIMD lanes exceeds datapath width 8", in.Lanes)
	}
	if in.Lanes != 0 && !in.Kind.IsSIMD() {
		return fmt.Errorf("trace: lane count on non-SIMD %v", in.Kind)
	}
	if in.PushLevel > PushSoftware {
		return fmt.Errorf("trace: push level %d out of range", in.PushLevel)
	}
	if in.PushLevel != 0 && in.Kind != isa.Push {
		return fmt.Errorf("trace: push level on non-push %v", in.Kind)
	}
	return nil
}

// Stream is an in-memory dynamic instruction trace.
type Stream []Inst

// Validate checks every record. Dependency distances may point before
// the start of the stream: such producers ran in an earlier phase and
// the cores treat them as long completed.
func (s Stream) Validate() error {
	for i, in := range s {
		if err := in.Validate(); err != nil {
			return fmt.Errorf("inst %d: %w", i, err)
		}
	}
	return nil
}

// Concat returns a new stream holding s followed by others.
func Concat(streams ...Stream) Stream {
	var n int
	for _, s := range streams {
		n += len(s)
	}
	out := make(Stream, 0, n)
	for _, s := range streams {
		out = append(out, s...)
	}
	return out
}

// Stats summarises a trace.
type Stats struct {
	Total      int
	ByKind     map[isa.Kind]int
	MemOps     int
	MemBytes   uint64
	CommOps    int
	CommBytes  uint64
	Branches   int
	TakenRate  float64
	SIMDOps    int
	PushOps    int
	UniquePCs  int
	UniqueAddr int
}

// Summarize computes summary statistics for the stream.
func Summarize(s Stream) Stats {
	return SummarizeSource(NewCursor(s))
}
