package trace

import "heteromem/internal/isa"

// Source is a pull-based cursor over a dynamic instruction stream. It is
// the simulator's replay interface: cores consume instructions one at a
// time, so a trace never needs to be materialized in memory — a Source
// may synthesize records on demand (the workload package's kernel
// generators), decode them incrementally, or walk an in-memory Stream.
//
// The contract mirrors a restartable iterator:
//
//   - Len returns the total number of instructions the source delivers
//     over a full pass, independent of the cursor position.
//   - Next returns the next instruction and true, or a zero Inst and
//     false once the pass is exhausted.
//   - Reset rewinds the cursor to the first instruction; a reset source
//     delivers the identical sequence again (deterministic replay is a
//     core requirement for a design-space study).
//
// A Source is not safe for concurrent use; callers that share the
// underlying definition across goroutines create one Source per consumer.
type Source interface {
	Next() (Inst, bool)
	Reset()
	Len() int
}

// BatchSource is an optional extension of Source for bulk delivery:
// NextBatch fills dst from the cursor position and returns how many
// instructions were written (zero once exhausted). The delivered
// sequence is identical to repeated Next calls; batching only removes
// the per-instruction call from replay loops. Use FillBatch to consume
// any Source through this interface.
type BatchSource interface {
	Source
	NextBatch(dst []Inst) int
}

// FillBatch fills dst from src, using bulk delivery when src supports
// it and falling back to Next otherwise. Returns the number written.
func FillBatch(src Source, dst []Inst) int {
	if b, ok := src.(BatchSource); ok {
		return b.NextBatch(dst)
	}
	n := 0
	for n < len(dst) {
		in, ok := src.Next()
		if !ok {
			break
		}
		dst[n] = in
		n++
	}
	return n
}

// Cursor adapts an in-memory Stream to the Source interface.
type Cursor struct {
	s Stream
	i int
}

// NewCursor returns a cursor positioned at the start of s.
func NewCursor(s Stream) *Cursor { return &Cursor{s: s} }

// Bind repositions the cursor at the start of s and returns it, so one
// cursor value can be reused across many short streams without
// allocating.
func (c *Cursor) Bind(s Stream) *Cursor {
	c.s, c.i = s, 0
	return c
}

// Next returns the next instruction, or false at end of stream.
func (c *Cursor) Next() (Inst, bool) {
	if c.i >= len(c.s) {
		return Inst{}, false
	}
	in := c.s[c.i]
	c.i++
	return in, true
}

// NextBatch copies up to len(dst) instructions from the cursor position.
func (c *Cursor) NextBatch(dst []Inst) int {
	n := copy(dst, c.s[c.i:])
	c.i += n
	return n
}

// Reset rewinds to the first instruction.
func (c *Cursor) Reset() { c.i = 0 }

// Len returns the total stream length.
func (c *Cursor) Len() int { return len(c.s) }

// Materialize drains src from its current position into a Stream sized
// by Len. It is the bridge from streaming sources back to the in-memory
// form that serialization and the golden tests use.
func Materialize(src Source) Stream {
	if src == nil {
		return nil
	}
	out := make(Stream, 0, src.Len())
	for {
		in, ok := src.Next()
		if !ok {
			return out
		}
		out = append(out, in)
	}
}

// SummarizeSource computes summary statistics by streaming src from its
// current position, without materializing the trace.
func SummarizeSource(src Source) Stats {
	st := Stats{ByKind: make(map[isa.Kind]int)}
	pcs := make(map[uint64]struct{})
	addrs := make(map[uint64]struct{})
	taken := 0
	for {
		in, ok := src.Next()
		if !ok {
			break
		}
		st.Total++
		st.ByKind[in.Kind]++
		pcs[in.PC] = struct{}{}
		switch {
		case in.Kind.IsMem():
			st.MemOps++
			st.MemBytes += uint64(in.Size)
			addrs[in.Addr] = struct{}{}
		case in.Kind.IsComm():
			st.CommOps++
			st.CommBytes += uint64(in.Size)
		case in.Kind == isa.Branch:
			st.Branches++
			if in.Taken {
				taken++
			}
		case in.Kind == isa.Push:
			st.PushOps++
		}
		if in.Kind.IsSIMD() {
			st.SIMDOps++
		}
	}
	if st.Branches > 0 {
		st.TakenRate = float64(taken) / float64(st.Branches)
	}
	st.UniquePCs = len(pcs)
	st.UniqueAddr = len(addrs)
	return st
}
