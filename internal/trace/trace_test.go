package trace

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"heteromem/internal/isa"
)

func sample() Stream {
	return Stream{
		{PC: 0x400000, Kind: isa.ALU},
		{PC: 0x400004, Kind: isa.Load, Addr: 0x1000, Size: 8, Dep1: 1},
		{PC: 0x400008, Kind: isa.FP, Dep1: 1, Dep2: 2},
		{PC: 0x40000c, Kind: isa.Branch, Taken: true},
		{PC: 0x400010, Kind: isa.SIMDLoad, Addr: 0x2000, Size: 32, Lanes: 8},
		{PC: 0x400014, Kind: isa.Store, Addr: 0x1008, Size: 8, Dep1: 3},
		{PC: 0x400018, Kind: isa.APIPCI, Size: 65536},
		{PC: 0x40001c, Kind: isa.Push, Addr: 0x3000, Size: 4096, PushLevel: PushShared},
	}
}

func TestValidateOK(t *testing.T) {
	if err := sample().Validate(); err != nil {
		t.Fatalf("valid stream rejected: %v", err)
	}
}

func TestValidateRejects(t *testing.T) {
	cases := []struct {
		name string
		s    Stream
		want string
	}{
		{"bad kind", Stream{{Kind: isa.Kind(200)}}, "invalid kind"},
		{"zero-size mem", Stream{{Kind: isa.Load}}, "zero size"},
		{"too many lanes", Stream{{Kind: isa.SIMDALU, Lanes: 9}}, "lanes"},
		{"lanes on scalar", Stream{{Kind: isa.ALU, Lanes: 4}}, "non-SIMD"},
		{"push level range", Stream{{Kind: isa.Push, Addr: 1, Size: 4, PushLevel: 3}}, "out of range"},
		{"push level on alu", Stream{{Kind: isa.ALU, PushLevel: 1}}, "non-push"},
	}
	for _, c := range cases {
		err := c.s.Validate()
		if err == nil {
			t.Errorf("%s: not rejected", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.want)
		}
	}
}

func TestActiveLanes(t *testing.T) {
	if (Inst{Kind: isa.SIMDALU}).ActiveLanes() != 8 {
		t.Error("zero lanes should default to 8")
	}
	if (Inst{Kind: isa.SIMDALU, Lanes: 3}).ActiveLanes() != 3 {
		t.Error("explicit lane count ignored")
	}
}

func TestConcat(t *testing.T) {
	a := Stream{{Kind: isa.ALU}}
	b := Stream{{Kind: isa.FP}, {Kind: isa.Mul}}
	c := Concat(a, b, nil)
	if len(c) != 3 || c[0].Kind != isa.ALU || c[2].Kind != isa.Mul {
		t.Fatalf("Concat wrong: %v", c)
	}
	// Concat must copy: mutating the result must not touch inputs.
	c[0].Kind = isa.Div
	if a[0].Kind != isa.ALU {
		t.Error("Concat aliases its inputs")
	}
}

func TestSummarize(t *testing.T) {
	st := Summarize(sample())
	if st.Total != 8 {
		t.Errorf("Total = %d, want 8", st.Total)
	}
	if st.MemOps != 3 {
		t.Errorf("MemOps = %d, want 3", st.MemOps)
	}
	if st.MemBytes != 48 {
		t.Errorf("MemBytes = %d, want 48", st.MemBytes)
	}
	if st.CommOps != 1 || st.CommBytes != 65536 {
		t.Errorf("Comm = %d ops/%d bytes, want 1/65536", st.CommOps, st.CommBytes)
	}
	if st.Branches != 1 || st.TakenRate != 1.0 {
		t.Errorf("branches=%d taken=%v", st.Branches, st.TakenRate)
	}
	if st.SIMDOps != 1 {
		t.Errorf("SIMDOps = %d, want 1", st.SIMDOps)
	}
	if st.PushOps != 1 {
		t.Errorf("PushOps = %d, want 1", st.PushOps)
	}
	if st.ByKind[isa.ALU] != 1 || st.ByKind[isa.Load] != 1 {
		t.Errorf("ByKind wrong: %v", st.ByKind)
	}
	if st.UniquePCs != 8 {
		t.Errorf("UniquePCs = %d, want 8", st.UniquePCs)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	st := Summarize(nil)
	if st.Total != 0 || st.TakenRate != 0 {
		t.Fatalf("empty summary wrong: %+v", st)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	s := sample()
	var buf bytes.Buffer
	if err := Write(&buf, s); err != nil {
		t.Fatalf("Write: %v", err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if !reflect.DeepEqual(got, s) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, s)
	}
}

func TestEncodeDecodeEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, nil); err != nil {
		t.Fatalf("Write(nil): %v", err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if len(got) != 0 {
		t.Fatalf("got %d records, want 0", len(got))
	}
}

func TestReadRejectsBadMagic(t *testing.T) {
	if _, err := Read(strings.NewReader("XXXX..........")); err == nil {
		t.Fatal("bad magic accepted")
	}
}

func TestReadRejectsTruncated(t *testing.T) {
	s := sample()
	var buf bytes.Buffer
	if err := Write(&buf, s); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	if _, err := Read(bytes.NewReader(raw[:len(raw)-5])); err == nil {
		t.Fatal("truncated trace accepted")
	}
	if _, err := Read(bytes.NewReader(raw[:8])); err == nil {
		t.Fatal("truncated header accepted")
	}
}

func TestReadRejectsBadVersion(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, nil); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	raw[4] = 99 // clobber version
	if _, err := Read(bytes.NewReader(raw)); err == nil {
		t.Fatal("bad version accepted")
	}
}

// quick.Value can't generate valid Insts directly (Kind gaps), so map
// arbitrary ints onto the valid space.
func instFromSeed(pc, addr uint64, size uint32, kindSel uint8, dep1, dep2 uint16, taken bool, lanes uint8) Inst {
	kinds := isa.AllKinds()
	k := kinds[int(kindSel)%len(kinds)]
	in := Inst{PC: pc, Addr: addr, Size: size, Kind: k, Dep1: dep1, Dep2: dep2, Taken: taken}
	if k.IsMem() && in.Size == 0 {
		in.Size = 4
	}
	if k.IsSIMD() {
		in.Lanes = lanes%8 + 1
	}
	if k == isa.Push {
		in.PushLevel = lanes % 3
	}
	return in
}

func TestEncodeDecodeProperty(t *testing.T) {
	f := func(pc, addr uint64, size uint32, kindSel uint8, dep1, dep2 uint16, taken bool, lanes uint8) bool {
		in := instFromSeed(pc, addr, size, kindSel, dep1, dep2, taken, lanes)
		var rec [recordBytes]byte
		encodeRecord(&rec, in)
		return decodeRecord(&rec) == in
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkWrite(b *testing.B) {
	s := make(Stream, 10000)
	for i := range s {
		s[i] = Inst{PC: uint64(i), Kind: isa.ALU}
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := Write(&buf, s); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRead(b *testing.B) {
	s := make(Stream, 10000)
	for i := range s {
		s[i] = Inst{PC: uint64(i), Kind: isa.ALU}
	}
	var buf bytes.Buffer
	if err := Write(&buf, s); err != nil {
		b.Fatal(err)
	}
	raw := buf.Bytes()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Read(bytes.NewReader(raw)); err != nil {
			b.Fatal(err)
		}
	}
}
