package systems

import (
	"bytes"
	"strings"
	"testing"

	"heteromem/internal/memtech"
)

func TestSaveOmitsDefaultMemTech(t *testing.T) {
	// The DRAM baseline keeps pre-axis files byte-identical: no mem_tech
	// key appears for a zero Spec.
	for _, s := range CaseStudies() {
		data, err := Save(s)
		if err != nil {
			t.Fatal(err)
		}
		if bytes.Contains(data, []byte("mem_tech")) {
			t.Errorf("%s: baseline Save emits mem_tech:\n%s", s.Name, data)
		}
	}
}

func TestMemTechRoundTrip(t *testing.T) {
	s := GraceHopper()
	data, err := Save(s)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Load(data)
	if err != nil {
		t.Fatalf("Load(Save(grace-hopper)): %v\n%s", err, data)
	}
	if back != s {
		t.Errorf("round trip changed grace-hopper:\n got %+v\nwant %+v", back, s)
	}

	// A spec with a parameter block round-trips field by field (pointer
	// identity differs, so compare contents).
	s = CPUGPU()
	s.MemTech = memtech.Spec{Kind: memtech.NVM, NVM: &memtech.NVMParams{ReadPS: 300_000}}
	data, err = Save(s)
	if err != nil {
		t.Fatal(err)
	}
	back, err = Load(data)
	if err != nil {
		t.Fatalf("Load: %v\n%s", err, data)
	}
	if back.MemTech.Kind != memtech.NVM || back.MemTech.NVM == nil ||
		*back.MemTech.NVM != *s.MemTech.NVM {
		t.Errorf("round trip changed mem_tech: %+v", back.MemTech)
	}
}

func TestLoadRejectsMemTechErrors(t *testing.T) {
	base := `{"name": "x", "model": "unified", "fabric": "ideal", "protocol": "ideal", "mem_tech": %s}`
	cases := []struct{ name, block, wantInErr string }{
		{"unknown kind", `{"kind": "optane"}`, "optane"},
		{"unknown field in block", `{"kind": "hbm", "pony": 1}`, "pony"},
		{"unknown field in params", `{"kind": "nvm", "nvm": {"read_latency": 5}}`, "read_latency"},
		{"negative channels", `{"kind": "nvm", "nvm": {"channels": -3}}`, "mem_tech.nvm.channels"},
		{"tiny rows", `{"kind": "hbm", "hbm": {"row_bytes": 16}}`, "mem_tech.hbm.row_bytes"},
		{"params for the wrong kind", `{"kind": "hbm", "nvm": {"channels": 2}}`, "mem_tech.nvm"},
		{"undersized dram cache", `{"kind": "dram-cache", "dram_cache": {"size_bytes": 512}}`, "mem_tech.dram_cache.size_bytes"},
	}
	for _, c := range cases {
		_, err := Load([]byte(strings.Replace(base, "%s", c.block, 1)))
		if err == nil {
			t.Errorf("%s: Load accepted mem_tech %s", c.name, c.block)
			continue
		}
		if !strings.Contains(err.Error(), c.wantInErr) {
			t.Errorf("%s: error %q does not name %q", c.name, err, c.wantInErr)
		}
	}
}

// Two systems differing only in MemTech are distinct design points and
// must hash differently; the DRAM-default spec must hash identically to
// the pre-axis encoding.
func TestHashCoversMemTech(t *testing.T) {
	base := IdealHetero()
	hbm := base
	hbm.MemTech = memtech.Spec{Kind: memtech.HBM}

	hBase := Hash(base)
	hHBM := Hash(hbm)
	if hBase == "" || hHBM == "" {
		t.Fatal("hash failed")
	}
	if hBase == hHBM {
		t.Error("systems differing only in mem_tech hash identically")
	}

	// Parameter overrides are also part of the point's identity.
	tuned := hbm
	tuned.MemTech.HBM = &memtech.HBMParams{Channels: 32}
	hTuned := Hash(tuned)
	if hTuned == "" {
		t.Fatal("hash failed")
	}
	if hTuned == hHBM {
		t.Error("parameter overrides do not change the hash")
	}
}

func TestGridMemTechAxis(t *testing.T) {
	g := Grid{
		Name:     "techs",
		Models:   nil, Fabrics: nil, Protocols: nil,
		MemTechs: memtech.AllKinds(),
	}
	points, _ := g.Enumerate()
	if len(points) == 0 {
		t.Fatal("empty enumeration")
	}
	// Without the axis the same grid spans a quarter of the points, and
	// each surviving point appears once per technology.
	base, _ := (Grid{}).Enumerate()
	if len(points) != 4*len(base) {
		t.Errorf("mem_tech axis spans %d points, want %d", len(points), 4*len(base))
	}
	perTech := map[memtech.Kind]int{}
	for _, p := range points {
		perTech[p.MemTech.Kind]++
		if p.MemTech.Kind == memtech.DRAM {
			if !p.MemTech.IsZero() {
				t.Errorf("%s: DRAM point must keep the zero Spec", p.Name)
			}
			if strings.Contains(p.Name, "/dram") {
				t.Errorf("%s: baseline point name must not carry a tech suffix", p.Name)
			}
		} else if !strings.HasSuffix(p.Name, "/"+p.MemTech.Kind.String()) {
			t.Errorf("%s: name must end in /%s", p.Name, p.MemTech.Kind)
		}
	}
	for _, k := range memtech.AllKinds() {
		if perTech[k] != len(base) {
			t.Errorf("%v: %d points, want %d", k, perTech[k], len(base))
		}
	}
}

func TestMemTechExampleFiles(t *testing.T) {
	s, err := LoadFile("../../examples/systems/grace-hopper.json")
	if err != nil {
		t.Fatal(err)
	}
	if s != GraceHopper() {
		t.Errorf("grace-hopper.json = %+v, want built-in %+v", s, GraceHopper())
	}
	if Hash(s) == "" {
		t.Error("grace-hopper does not hash")
	}

	g, err := LoadGridFile("../../examples/systems/memtech-grid.json")
	if err != nil {
		t.Fatal(err)
	}
	points, skipped := g.Enumerate()
	if len(points) != 4 || skipped != 0 {
		t.Errorf("memtech grid: %d points (%d skipped), want 4 (0)", len(points), skipped)
	}
	seen := map[memtech.Kind]bool{}
	for _, p := range points {
		seen[p.MemTech.Kind] = true
	}
	for _, k := range memtech.AllKinds() {
		if !seen[k] {
			t.Errorf("memtech grid misses %v", k)
		}
	}
}

func TestCaseStudiesWithTech(t *testing.T) {
	for _, k := range memtech.AllKinds() {
		list := CaseStudiesWithTech(k)
		if len(list) != 5 {
			t.Fatalf("%v: %d systems", k, len(list))
		}
		for i, s := range list {
			if s.Name != CaseStudies()[i].Name {
				t.Errorf("%v: name changed to %s", k, s.Name)
			}
			if s.MemTech.Kind != k {
				t.Errorf("%v: %s has tech %v", k, s.Name, s.MemTech.Kind)
			}
			if err := s.Validate(); err != nil {
				t.Errorf("%v/%s: %v", k, s.Name, err)
			}
		}
	}
	if !CaseStudiesWithTech(memtech.DRAM)[0].MemTech.IsZero() {
		t.Error("DRAM case studies must keep the zero Spec")
	}
}
