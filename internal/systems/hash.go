package systems

import (
	"crypto/sha256"
	"encoding/hex"
)

// Hash returns a canonical content hash of the design point, in the form
// "sha256:<hex>". The hash covers every axis that affects simulation —
// model, fabric, protocol, fault granularity, parameters — but NOT the
// display name, so two differently-named files describing the same point
// hash identically. It is computed over the canonical Save encoding
// (full params object, sorted keys via struct order), making it stable
// across processes and suitable as a ledger key or point-cache key.
//
// Hashing an invalid system returns "" — callers that already validated
// can ignore the error path.
func Hash(s System) string {
	s.Name = ""
	data, err := Save(s)
	if err != nil {
		return ""
	}
	sum := sha256.Sum256(data)
	return "sha256:" + hex.EncodeToString(sum[:])
}
