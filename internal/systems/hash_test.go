package systems

import (
	"strings"
	"testing"
)

func TestHashIgnoresName(t *testing.T) {
	a := CaseStudies()[0]
	b := a
	b.Name = "renamed"
	ha, hb := Hash(a), Hash(b)
	if ha == "" || hb == "" {
		t.Fatal("hash of valid system is empty")
	}
	if ha != hb {
		t.Errorf("renamed system hashes differently: %s vs %s", ha, hb)
	}
	if !strings.HasPrefix(ha, "sha256:") || len(ha) != len("sha256:")+64 {
		t.Errorf("malformed hash %q", ha)
	}
}

func TestHashSeparatesDesignPoints(t *testing.T) {
	seen := make(map[string]string)
	for _, s := range CaseStudies() {
		h := Hash(s)
		if h == "" {
			t.Fatalf("system %q: empty hash", s.Name)
		}
		if prev, dup := seen[h]; dup {
			t.Errorf("systems %q and %q collide on %s", prev, s.Name, h)
		}
		seen[h] = s.Name
	}
}

func TestHashStableAcrossRoundTrip(t *testing.T) {
	s := CaseStudies()[1]
	data, err := Save(s)
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(data)
	if err != nil {
		t.Fatal(err)
	}
	if Hash(s) != Hash(loaded) {
		t.Error("Save/Load round trip changed the hash")
	}
}

func TestHashInvalidSystem(t *testing.T) {
	var s System
	s.Model = 200 // out of range
	if h := Hash(s); h != "" {
		t.Errorf("invalid system hashed to %q, want empty", h)
	}
}
