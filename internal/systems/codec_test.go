package systems

import (
	"errors"
	"testing"

	"heteromem/internal/addrspace"
	"heteromem/internal/config"
	"heteromem/internal/model"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	for _, s := range CaseStudies() {
		data, err := Save(s)
		if err != nil {
			t.Fatalf("Save(%s): %v", s.Name, err)
		}
		back, err := Load(data)
		if err != nil {
			t.Fatalf("Load(Save(%s)): %v\n%s", s.Name, err, data)
		}
		if back != s {
			t.Errorf("round trip changed %s:\n got %+v\nwant %+v", s.Name, back, s)
		}
	}
}

func TestLoadPresets(t *testing.T) {
	s, err := Load([]byte(`{
		"name": "x", "model": "disjoint", "fabric": "pcie",
		"protocol": "explicit-copy", "params": "ideal"
	}`))
	if err != nil {
		t.Fatal(err)
	}
	if s.Params != config.Ideal() {
		t.Errorf("ideal preset = %+v", s.Params)
	}
	// Omitted params default to Table IV.
	s, err = Load([]byte(`{
		"name": "y", "model": "disjoint", "fabric": "pcie",
		"protocol": "explicit-copy"
	}`))
	if err != nil {
		t.Fatal(err)
	}
	if s.Params != config.TableIV() {
		t.Errorf("default params = %+v, want Table IV", s.Params)
	}
	// A full object overrides field by field.
	s, err = Load([]byte(`{
		"name": "z", "model": "disjoint", "fabric": "pcie",
		"protocol": "explicit-copy",
		"params": {"api_pci_cycles": 1, "pci_rate_gbs": 8, "api_acq_cycles": 2,
		           "api_tr_cycles": 3, "lib_pf_cycles": 4, "cpu_freq_mhz": 1000}
	}`))
	if err != nil {
		t.Fatal(err)
	}
	want := config.CommParams{APIPCICycles: 1, PCIRateGBs: 8, APIAcqCycles: 2,
		APITrCycles: 3, LibPFCycles: 4, CPUFreqMHz: 1000}
	if s.Params != want {
		t.Errorf("explicit params = %+v, want %+v", s.Params, want)
	}
}

func TestLoadRejects(t *testing.T) {
	cases := []struct{ name, src string }{
		{"unknown field", `{"name": "x", "model": "disjoint", "fabric": "pcie",
			"protocol": "explicit-copy", "pony": true}`},
		{"unknown fabric", `{"name": "x", "model": "disjoint", "fabric": "warp",
			"protocol": "explicit-copy"}`},
		{"unknown protocol", `{"name": "x", "model": "disjoint", "fabric": "pcie",
			"protocol": "telepathy"}`},
		{"unknown preset", `{"name": "x", "model": "disjoint", "fabric": "pcie",
			"protocol": "explicit-copy", "params": "free"}`},
		{"incoherent", `{"name": "x", "model": "disjoint", "fabric": "pcie",
			"protocol": "ownership-first-touch"}`},
	}
	for _, c := range cases {
		if _, err := Load([]byte(c.src)); err == nil {
			t.Errorf("%s: Load accepted %s", c.name, c.src)
		}
	}
}

func TestValidateIncoherent(t *testing.T) {
	base := CPUGPU()
	cases := []struct {
		name   string
		mutate func(*System)
	}{
		{"faults on disjoint", func(s *System) { s.Protocol = model.OwnershipFirstTouch }},
		{"ownership on unified", func(s *System) {
			s.Model = addrspace.Unified
			s.Protocol = model.Ownership
		}},
		{"granularity without faults", func(s *System) { s.FaultGranularityBytes = 4096 }},
		{"adsm protocol off the adsm model", func(s *System) { s.Protocol = model.ADSMLazy }},
		{"invalid model", func(s *System) { s.Model = addrspace.NumModels }},
		{"invalid fabric", func(s *System) { s.Fabric = NumFabrics }},
		{"invalid protocol", func(s *System) { s.Protocol = model.NumKinds }},
	}
	for _, c := range cases {
		s := base
		c.mutate(&s)
		err := s.Validate()
		if err == nil {
			t.Errorf("%s: Validate accepted %+v", c.name, s)
			continue
		}
		if !errors.Is(err, ErrIncoherent) {
			t.Errorf("%s: error does not wrap ErrIncoherent: %v", c.name, err)
		}
	}
	for _, s := range CaseStudies() {
		if err := s.Validate(); err != nil {
			t.Errorf("case study %s rejected: %v", s.Name, err)
		}
	}
	for _, m := range addrspace.AllModels() {
		if err := ForModel(m).Validate(); err != nil {
			t.Errorf("ForModel(%v) rejected: %v", m, err)
		}
	}
}

func TestLoadFileMatchesBuiltins(t *testing.T) {
	cases := []struct {
		path string
		want System
	}{
		{"../../examples/systems/lrb.json", LRB()},
		{"../../examples/systems/gmac.json", GMAC()},
	}
	for _, c := range cases {
		got, err := LoadFile(c.path)
		if err != nil {
			t.Fatalf("%s: %v", c.path, err)
		}
		if got != c.want {
			t.Errorf("%s = %+v, want built-in %+v", c.path, got, c.want)
		}
	}
}

func TestGridEnumerate(t *testing.T) {
	// The zero grid spans the whole built-in space; every point it emits
	// is coherent and uniquely named.
	points, skipped := (Grid{}).Enumerate()
	if len(points) == 0 {
		t.Fatal("empty enumeration")
	}
	if skipped == 0 {
		t.Error("full cross-product should contain incoherent points")
	}
	names := make(map[string]bool, len(points))
	for _, p := range points {
		if err := p.Validate(); err != nil {
			t.Errorf("enumerated point %s rejected: %v", p.Name, err)
		}
		if names[p.Name] {
			t.Errorf("duplicate point name %s", p.Name)
		}
		names[p.Name] = true
		if p.Params == (config.CommParams{}) {
			t.Errorf("%s: zero params would divide by zero", p.Name)
		}
	}
}

func TestGridExampleFile(t *testing.T) {
	g, err := LoadGridFile("../../examples/systems/grid.json")
	if err != nil {
		t.Fatal(err)
	}
	points, _ := g.Enumerate()
	if len(points) < 24 {
		t.Errorf("example grid spans %d points, want >= 24", len(points))
	}
	if len(g.Kernels) == 0 {
		t.Error("example grid names no kernels")
	}
}

func TestLoadGridRejectsUnknownField(t *testing.T) {
	if _, err := LoadGrid([]byte(`{"name": "g", "fabrics": ["pcie"], "pony": 1}`)); err == nil {
		t.Error("LoadGrid accepted an unknown field")
	}
}
