package systems

import (
	"bytes"
	"strings"
	"testing"

	"heteromem/internal/xlat"
)

func TestTranslationZeroSpecOmittedFromSave(t *testing.T) {
	for _, s := range append(CaseStudies(), GraceHopper()) {
		data, err := Save(s)
		if err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
		if bytes.Contains(data, []byte("translation")) {
			t.Errorf("%s: zero Translation spec serialised:\n%s", s.Name, data)
		}
	}
}

// The canonical hashes of the pre-axis systems, captured before the
// translation axis existed. systems.Hash keys result caches and run
// manifests, so adding an axis must not move any existing point.
func TestHashStableAcrossTranslationAxis(t *testing.T) {
	pinned := map[string]string{
		"CPU+GPU":      "sha256:d5c00861c73c6839e3cb512953c4a137072d448e69599fb5bd84897d05f94c62",
		"LRB":          "sha256:abfd7b2cd050a15ddd32ca0e8e1bb75b483c9d897ca05b46278df27de0d6069b",
		"GMAC":         "sha256:ac8871e1b9c94ed11a4fb1243f69ce79eb5cad8e34125aefe6331feae8ba88b5",
		"Fusion":       "sha256:3800fe6fd7a6e9d1371c1b26f32b03de420c877d6988720432db2af636aaf002",
		"IDEAL-HETERO": "sha256:b2be246c007d160d081016f1274b7455b551026be084427099d3b5140f16d8b4",
		"grace-hopper": "sha256:a6f05a6291a7c2a367246f68857eb6b3792ada76ded6b65163e35f4d1315fc1c",
	}
	for _, s := range append(CaseStudies(), GraceHopper()) {
		want, ok := pinned[s.Name]
		if !ok {
			t.Fatalf("no pinned hash for %s", s.Name)
		}
		if got := Hash(s); got != want {
			t.Errorf("%s: hash moved: %s (pinned %s)", s.Name, got, want)
		}
	}
}

func TestTranslationRoundTrip(t *testing.T) {
	s := LRB()
	s.Translation = xlat.Spec{
		MMU: xlat.Shared,
		GPU: &xlat.TLBParams{Entries: 128, PageBytes: 2 << 20},
		Walk: &xlat.WalkParams{
			Levels: 5, LevelPS: 25_000, CacheEntries: 32, IOMMUExtraPS: 150_000,
		},
		IOMMU: xlat.IOMMUOn,
	}
	data, err := Save(s)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(data, []byte(`"translation"`)) {
		t.Fatalf("translation block missing:\n%s", data)
	}
	got, err := Load(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Translation.MMU != s.Translation.MMU ||
		got.Translation.IOMMU != s.Translation.IOMMU ||
		*got.Translation.GPU != *s.Translation.GPU ||
		*got.Translation.Walk != *s.Translation.Walk ||
		got.Translation.CPU != nil {
		t.Fatalf("round trip changed translation: %+v -> %+v", s.Translation, got.Translation)
	}
}

func TestTranslationPresetStringInSystemFile(t *testing.T) {
	got, err := Load([]byte(`{
  "name": "LRB-2M",
  "model": "partially-shared",
  "fabric": "pci-aperture",
  "protocol": "ownership-first-touch",
  "params": "table-iv",
  "translation": "2m"
}`))
	if err != nil {
		t.Fatal(err)
	}
	if got.Translation.MMU != xlat.Private || got.Translation.ResolvedGPU().PageBytes != 2<<20 {
		t.Fatalf("preset string decoded to %+v", got.Translation)
	}
}

func TestTranslationUnknownFieldRejected(t *testing.T) {
	_, err := Load([]byte(`{
  "name": "x",
  "model": "partially-shared",
  "fabric": "pci-aperture",
  "protocol": "ownership-first-touch",
  "translation": {"mmu": "private", "page_size": 4096}
}`))
	if err == nil {
		t.Fatal("unknown field inside translation block accepted")
	}
	if !strings.Contains(err.Error(), "page_size") {
		t.Fatalf("error does not name the bad field: %v", err)
	}
}

func TestTranslationValidateCarriesSystemAndPath(t *testing.T) {
	s := LRB()
	s.Translation = xlat.Spec{MMU: xlat.Private, CPU: &xlat.TLBParams{Entries: 100}}
	err := s.Validate()
	if err == nil {
		t.Fatal("bad translation spec accepted")
	}
	for _, want := range []string{`system "LRB"`, "translation.cpu.entries"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q missing %q", err, want)
		}
	}
}

func TestGridTranslationsAxis(t *testing.T) {
	g, err := LoadGrid([]byte(`{
  "name": "xlat-sweep",
  "models": ["partially-shared"],
  "fabrics": ["pci-aperture"],
  "protocols": ["ownership-first-touch"],
  "translations": ["4k", "2m", "4k-shared", "2m-shared"]
}`))
	if err != nil {
		t.Fatal(err)
	}
	points, skipped := g.Enumerate()
	if skipped != 0 || len(points) != 4 {
		t.Fatalf("points=%d skipped=%d", len(points), skipped)
	}
	names := map[string]bool{}
	for _, p := range points {
		names[p.Name] = true
		if p.Translation.IsZero() {
			t.Errorf("%s: zero translation", p.Name)
		}
	}
	for _, want := range []string{
		"partially-shared/pci-aperture/ownership-first-touch/xlat-priv-4k",
		"partially-shared/pci-aperture/ownership-first-touch/xlat-shared-2m",
	} {
		if !names[want] {
			t.Errorf("missing point %s (have %v)", want, names)
		}
	}
}

func TestGridWithoutTranslationsKeepsPointNames(t *testing.T) {
	full, skippedFull := (Grid{}).Enumerate()
	for _, p := range full {
		if strings.Contains(p.Name, "xlat") {
			t.Errorf("translation suffix leaked into baseline point %s", p.Name)
		}
		if !p.Translation.IsZero() {
			t.Errorf("baseline point %s has translation on", p.Name)
		}
	}
	if len(full) == 0 || skippedFull == 0 {
		t.Fatalf("default grid shape unexpected: %d points, %d skipped", len(full), skippedFull)
	}
}
