package systems

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"

	"heteromem/internal/addrspace"
	"heteromem/internal/config"
	"heteromem/internal/memtech"
	"heteromem/internal/model"
	"heteromem/internal/xlat"
)

// Grid declaratively spans a region of the design space as one list per
// axis; Enumerate takes the cross-product. Empty axes default to the
// whole axis (all models, all fabrics, all protocols, whole-object fault
// granularity), so the zero Grid is the full built-in space.
type Grid struct {
	// Name labels the grid in reports.
	Name string
	// Models, Fabrics and Protocols are the axis values to combine.
	Models    []addrspace.Model
	Fabrics   []FabricKind
	Protocols []model.Kind
	// FaultGranularities lists first-touch page sizes in bytes; zero
	// means one fault per object. The axis only multiplies protocols that
	// take faults — for other protocols nonzero granularities are
	// incoherent points and are skipped rather than duplicated.
	FaultGranularities []uint64
	// MemTechs lists the terminal memory technologies to combine; empty
	// means the DRAM baseline only (NOT all kinds — the axis multiplies
	// every grid fourfold, so spanning it is opt-in).
	MemTechs []memtech.Kind
	// Translations lists the translation front-ends to combine; empty
	// means translation off only (opt-in, like MemTechs). Grid files may
	// give presets ("4k", "2m-shared") or full objects per entry.
	Translations []xlat.Spec
	// Params prices communication for every point; the zero value means
	// Table IV.
	Params config.CommParams
	// Kernels optionally names the workloads to sweep the grid over;
	// consumers default it (hetsweep uses the reduction kernel).
	Kernels []string
}

// gridJSON is the serialised form of a Grid.
type gridJSON struct {
	Name               string            `json:"name"`
	Models             []addrspace.Model `json:"models,omitempty"`
	Fabrics            []FabricKind      `json:"fabrics,omitempty"`
	Protocols          []model.Kind      `json:"protocols,omitempty"`
	FaultGranularities []uint64          `json:"fault_granularities,omitempty"`
	MemTechs           []memtech.Kind    `json:"mem_techs,omitempty"`
	Translations       []xlat.Spec       `json:"translations,omitempty"`
	Params             json.RawMessage   `json:"params,omitempty"`
	Kernels            []string          `json:"kernels,omitempty"`
}

// LoadGrid parses a declarative grid description. Unknown fields are
// rejected so typos in hand-written files fail loudly.
func LoadGrid(data []byte) (Grid, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var j gridJSON
	if err := dec.Decode(&j); err != nil {
		return Grid{}, fmt.Errorf("systems: parsing grid: %w", err)
	}
	params, err := parseParams(j.Params)
	if err != nil {
		return Grid{}, fmt.Errorf("systems: grid %q: %w", j.Name, err)
	}
	return Grid{
		Name:               j.Name,
		Models:             j.Models,
		Fabrics:            j.Fabrics,
		Protocols:          j.Protocols,
		FaultGranularities: j.FaultGranularities,
		MemTechs:           j.MemTechs,
		Translations:       j.Translations,
		Params:             params,
		Kernels:            j.Kernels,
	}, nil
}

// LoadGridFile reads and parses a grid description file.
func LoadGridFile(path string) (Grid, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Grid{}, fmt.Errorf("systems: %w", err)
	}
	g, err := LoadGrid(data)
	if err != nil {
		return Grid{}, fmt.Errorf("%s: %w", path, err)
	}
	return g, nil
}

// Enumerate takes the cross-product of the grid's axes and returns every
// coherent design point, plus the number of incoherent combinations
// skipped (Validate rejections — e.g. ownership over a disjoint space).
// Point names encode their coordinates (model/fabric/protocol, with a
// /pgN suffix for nonzero fault granularities), so every point is
// addressable in reports.
func (g Grid) Enumerate() (points []System, skipped int) {
	models := g.Models
	if len(models) == 0 {
		models = addrspace.AllModels()
	}
	fabrics := g.Fabrics
	if len(fabrics) == 0 {
		fabrics = AllFabrics()
	}
	protocols := g.Protocols
	if len(protocols) == 0 {
		protocols = model.AllKinds()
	}
	granularities := g.FaultGranularities
	if len(granularities) == 0 {
		granularities = []uint64{0}
	}
	techs := g.MemTechs
	if len(techs) == 0 {
		techs = []memtech.Kind{memtech.DRAM}
	}
	translations := g.Translations
	if len(translations) == 0 {
		translations = []xlat.Spec{{}}
	}
	params := g.Params
	if params == (config.CommParams{}) {
		params = config.TableIV()
	}

	for _, m := range models {
		for _, f := range fabrics {
			for _, p := range protocols {
				for _, gran := range granularities {
					for _, tech := range techs {
						for _, tr := range translations {
							s := System{
								Name:                  pointName(m, f, p, gran, tech, tr),
								Model:                 m,
								Fabric:                f,
								Protocol:              p,
								FaultGranularityBytes: gran,
								Params:                params,
								Translation:           tr,
							}
							// The DRAM baseline keeps the zero Spec so its
							// points name and hash exactly as before the axis.
							if tech != memtech.DRAM {
								s.MemTech = memtech.Spec{Kind: tech}
							}
							if s.Validate() != nil {
								skipped++
								continue
							}
							points = append(points, s)
						}
					}
				}
			}
		}
	}
	return points, skipped
}

// pointName encodes a design point's axis coordinates. Baseline values
// (whole-object granularity, DRAM) are elided so pre-axis names are
// stable.
func pointName(m addrspace.Model, f FabricKind, p model.Kind, gran uint64, tech memtech.Kind, tr xlat.Spec) string {
	name := fmt.Sprintf("%v/%v/%v", m, f, p)
	if gran > 0 {
		name += fmt.Sprintf("/pg%d", gran)
	}
	if tech != memtech.DRAM {
		name += "/" + tech.String()
	}
	if !tr.IsZero() {
		name += "/" + tr.Label()
	}
	return name
}
