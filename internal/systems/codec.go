// Declarative JSON serialisation of design points. A system file names a
// value on each design-space axis:
//
//	{
//	  "name": "LRB",
//	  "model": "partially-shared",
//	  "fabric": "pci-aperture",
//	  "protocol": "ownership-first-touch",
//	  "params": "table-iv"
//	}
//
// "params" is either a preset name ("table-iv", "ideal") or a full
// parameter object; omitted it defaults to Table IV. Save always writes
// the full object so Load(Save(s)) == s for any system.
package systems

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"

	"heteromem/internal/addrspace"
	"heteromem/internal/config"
	"heteromem/internal/memtech"
	"heteromem/internal/model"
	"heteromem/internal/xlat"
)

// systemJSON is the serialised form of a System. The enum axes marshal
// as their names via their TextMarshaler implementations.
type systemJSON struct {
	Name                  string          `json:"name"`
	Model                 addrspace.Model `json:"model"`
	Fabric                FabricKind      `json:"fabric"`
	Protocol              model.Kind      `json:"protocol"`
	FaultGranularityBytes uint64          `json:"fault_granularity_bytes,omitempty"`
	Params                json.RawMessage `json:"params,omitempty"`
	// MemTech is a pointer so the baseline DRAM selection is omitted
	// entirely, keeping pre-axis files and hashes byte-identical.
	MemTech *memtech.Spec `json:"mem_tech,omitempty"`
	// Translation likewise: the translation-off baseline is omitted
	// entirely. The field accepts a preset string ("4k", "2m-shared") or
	// a full object; Save always writes the object form.
	Translation *xlat.Spec `json:"translation,omitempty"`
}

// Save serialises the system as indented JSON, suitable for -system
// files and for Load round-trips.
func Save(s System) ([]byte, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	params, err := json.Marshal(s.Params)
	if err != nil {
		return nil, fmt.Errorf("systems: %w", err)
	}
	j := systemJSON{
		Name:                  s.Name,
		Model:                 s.Model,
		Fabric:                s.Fabric,
		Protocol:              s.Protocol,
		FaultGranularityBytes: s.FaultGranularityBytes,
		Params:                params,
	}
	if !s.MemTech.IsZero() {
		mt := s.MemTech
		j.MemTech = &mt
	}
	if !s.Translation.IsZero() {
		tr := s.Translation
		j.Translation = &tr
	}
	out, err := json.MarshalIndent(j, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("systems: %w", err)
	}
	return append(out, '\n'), nil
}

// Load parses a declarative system description and validates it.
// Unknown fields are rejected so typos in hand-written files fail loudly.
func Load(data []byte) (System, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var j systemJSON
	if err := dec.Decode(&j); err != nil {
		return System{}, fmt.Errorf("systems: parsing system: %w", err)
	}
	params, err := parseParams(j.Params)
	if err != nil {
		return System{}, fmt.Errorf("systems: system %q: %w", j.Name, err)
	}
	s := System{
		Name:                  j.Name,
		Model:                 j.Model,
		Fabric:                j.Fabric,
		Protocol:              j.Protocol,
		FaultGranularityBytes: j.FaultGranularityBytes,
		Params:                params,
	}
	if j.MemTech != nil {
		s.MemTech = *j.MemTech
	}
	if j.Translation != nil {
		s.Translation = *j.Translation
	}
	if err := s.Validate(); err != nil {
		return System{}, err
	}
	return s, nil
}

// LoadFile reads and parses a system description file.
func LoadFile(path string) (System, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return System{}, fmt.Errorf("systems: %w", err)
	}
	s, err := Load(data)
	if err != nil {
		return System{}, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}

// parseParams resolves the "params" field: absent means Table IV, a
// string names a preset, an object gives the values directly.
func parseParams(raw json.RawMessage) (config.CommParams, error) {
	raw = bytes.TrimSpace(raw)
	if len(raw) == 0 || bytes.Equal(raw, []byte("null")) {
		return config.TableIV(), nil
	}
	if raw[0] == '"' {
		var name string
		if err := json.Unmarshal(raw, &name); err != nil {
			return config.CommParams{}, err
		}
		switch name {
		case "table-iv":
			return config.TableIV(), nil
		case "ideal":
			return config.Ideal(), nil
		default:
			return config.CommParams{}, fmt.Errorf("unknown params preset %q (table-iv, ideal)", name)
		}
	}
	var p config.CommParams
	if err := json.Unmarshal(raw, &p); err != nil {
		return config.CommParams{}, err
	}
	return p, nil
}
