package systems

// SurveyEntry is one row of Table I: a previously proposed heterogeneous
// computing system and its memory-system choices. Free-text fields are
// transcribed from the paper; "-" means not applicable and "" unknown.
type SurveyEntry struct {
	Scheme          string
	AddressSpace    string
	Connection      string
	Coherence       string
	SharedDataUse   string
	Consistency     string
	Synchronization string
	Locality        string
	// Homogeneous marks the one non-heterogeneous comparison point
	// (Rigel).
	Homogeneous bool
}

// TableI returns the paper's survey of existing heterogeneous computing
// memory systems (Table I), in row order.
func TableI() []SurveyEntry {
	return []SurveyEntry{
		{
			Scheme: "CPU+CUDA*", AddressSpace: "disjoint", Connection: "PCI-E",
			Coherence: "-", SharedDataUse: "NA", Consistency: "weak consistency",
			Synchronization: "-", Locality: "impl-pri-expl-pri",
		},
		{
			Scheme: "EXOCHI", AddressSpace: "unified", Connection: "Memory controller",
			Coherence: "can be coherent", SharedDataUse: "CHI runtime API",
			Consistency: "weak consistency", Synchronization: "unknown", Locality: "impl-pri",
		},
		{
			Scheme: "CPU+LRB", AddressSpace: "partially shared", Connection: "PCI-E",
			Coherence: "coherent only in LRB/CPU", SharedDataUse: "type qualifier, ownership",
			Consistency: "weak consistency", Synchronization: "APIs", Locality: "impl-pri",
		},
		{
			Scheme: "COMIC", AddressSpace: "unified", Connection: "interconnection",
			Coherence: "directory", SharedDataUse: "COMIC API functions",
			Consistency: "centralized release consistency", Synchronization: "barrier function",
			Locality: "expl-pri-impl-pri-impl-shared",
		},
		{
			Scheme: "Rigel", AddressSpace: "unified", Connection: "interconnection",
			Coherence: "HW/SW", SharedDataUse: "global memory operation",
			Consistency: "weak consistency", Synchronization: "implicit barrier/Rigel LPI",
			Locality: "expl", Homogeneous: true,
		},
		{
			Scheme: "GMAC", AddressSpace: "ADSM", Connection: "PCI-E",
			Coherence: "GMAC protocol", SharedDataUse: "global memory operation",
			Consistency: "weak consistency", Synchronization: "sync API",
			Locality: "expl-private-impl-shared",
		},
		{
			Scheme: "Sandy Bridge", AddressSpace: "disjoint", Connection: "Memory controller",
			Coherence: "-", SharedDataUse: "-", Consistency: "weak consistency",
			Synchronization: "-", Locality: "impl-priv-exp-priv",
		},
		{
			Scheme: "Fusion", AddressSpace: "disjoint", Connection: "Memory controller",
			Coherence: "-", SharedDataUse: "-", Consistency: "-", Synchronization: "-", Locality: "-",
		},
		{
			Scheme: "IBM Cell", AddressSpace: "disjoint", Connection: "interconnection",
			Coherence: "-", SharedDataUse: "-", Consistency: "weak consistency",
			Synchronization: "-", Locality: "expl-pri-impl-priv-impl-shared",
		},
		{
			Scheme: "Xbox 360", AddressSpace: "disjoint", Connection: "cache/FSB",
			Coherence: "-", SharedDataUse: "Lock-set cache, copy",
			Consistency: "-", Synchronization: "-", Locality: "impl-priv-exp-shared",
		},
		{
			Scheme: "CUBA", AddressSpace: "disjoint", Connection: "BUS",
			Coherence: "-", SharedDataUse: "direct access to local storage",
			Consistency: "weak consistency", Synchronization: "-", Locality: "exp-priv",
		},
		{
			Scheme: "CUDA 4.0", AddressSpace: "unified", Connection: "-",
			Coherence: "-", SharedDataUse: "explicit copy",
			Consistency: "weak consistency", Synchronization: "-", Locality: "exp-priv",
		},
		{
			Scheme: "OpenCL", AddressSpace: "unified", Connection: "-",
			Coherence: "-", SharedDataUse: "explicit copy",
			Consistency: "weak consistency", Synchronization: "-", Locality: "exp-priv",
		},
	}
}

// ByAddressSpace groups the survey rows by their address-space label.
func ByAddressSpace() map[string][]SurveyEntry {
	out := make(map[string][]SurveyEntry)
	for _, e := range TableI() {
		out[e.AddressSpace] = append(out[e.AddressSpace], e)
	}
	return out
}

// SurveyFindings returns the summary observations of Section III that a
// reader should be able to recompute from the table.
type SurveyFindings struct {
	Total                int
	Disjoint             int
	Unified              int
	PartiallyShared      int
	ADSM                 int
	FullyCoherentUnified int
}

// Findings recomputes Section III's observations from Table I: most
// systems are disjoint, and none is a unified, fully-coherent,
// strongly-consistent system.
func Findings() SurveyFindings {
	var f SurveyFindings
	for _, e := range TableI() {
		f.Total++
		switch e.AddressSpace {
		case "disjoint":
			f.Disjoint++
		case "unified":
			f.Unified++
		case "partially shared":
			f.PartiallyShared++
		case "ADSM":
			f.ADSM++
		}
		if e.AddressSpace == "unified" && e.Coherence != "-" && e.Coherence != "" &&
			e.Consistency == "strong consistency" {
			f.FullyCoherentUnified++
		}
	}
	return f
}
