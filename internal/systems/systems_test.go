package systems

import (
	"testing"

	"heteromem/internal/addrspace"
	"heteromem/internal/dram"
	"heteromem/internal/model"
)

func TestCaseStudiesComposition(t *testing.T) {
	cs := CaseStudies()
	if len(cs) != 5 {
		t.Fatalf("case studies = %d, want 5", len(cs))
	}
	want := []struct {
		name   string
		model  addrspace.Model
		fabric FabricKind
	}{
		{"CPU+GPU", addrspace.Disjoint, FabricPCIe},
		{"LRB", addrspace.PartiallyShared, FabricAperture},
		{"GMAC", addrspace.ADSM, FabricPCIeAsync},
		{"Fusion", addrspace.Disjoint, FabricMemCtrl},
		{"IDEAL-HETERO", addrspace.Unified, FabricIdeal},
	}
	for i, w := range want {
		s := cs[i]
		if s.Name != w.name || s.Model != w.model || s.Fabric != w.fabric {
			t.Errorf("case study %d = %s/%v/%v, want %s/%v/%v",
				i, s.Name, s.Model, s.Fabric, w.name, w.model, w.fabric)
		}
	}
}

func TestSystemProtocols(t *testing.T) {
	lrb := LRB()
	if lrb.Protocol != model.OwnershipFirstTouch {
		t.Errorf("LRB protocol = %v, want %v", lrb.Protocol, model.OwnershipFirstTouch)
	}
	gmac := GMAC()
	if gmac.Protocol != model.ADSMLazy {
		t.Errorf("GMAC protocol = %v, want %v", gmac.Protocol, model.ADSMLazy)
	}
	cuda := CPUGPU()
	if cuda.Protocol != model.ExplicitCopy {
		t.Errorf("CPU+GPU protocol = %v, want %v", cuda.Protocol, model.ExplicitCopy)
	}
	ideal := IdealHetero()
	if ideal.Protocol != model.Ideal {
		t.Errorf("IDEAL-HETERO protocol = %v, want %v", ideal.Protocol, model.Ideal)
	}
	if !ideal.Params.IsIdeal() {
		t.Error("IDEAL-HETERO has non-ideal params")
	}
	for _, s := range CaseStudies() {
		if err := s.Validate(); err != nil {
			t.Errorf("%s does not validate: %v", s.Name, err)
		}
		p, err := s.NewProtocol()
		if err != nil {
			t.Errorf("%s: NewProtocol: %v", s.Name, err)
		} else if p.Name() != s.Protocol.String() {
			t.Errorf("%s: protocol name %q != kind %q", s.Name, p.Name(), s.Protocol)
		}
	}
}

func TestNewFabricKinds(t *testing.T) {
	ctrl := dram.MustNew(dram.DDR3_1333())
	for _, s := range CaseStudies() {
		f := s.NewFabric(ctrl)
		if f == nil {
			t.Fatalf("%s: nil fabric", s.Name)
		}
		if s.Fabric == FabricPCIeAsync && !f.Async() {
			t.Errorf("%s: async fabric not async", s.Name)
		}
		if s.Fabric != FabricPCIeAsync && f.Async() {
			t.Errorf("%s: sync fabric reports async", s.Name)
		}
	}
}

func TestForModel(t *testing.T) {
	for _, m := range addrspace.AllModels() {
		s := ForModel(m)
		if s.Model != m {
			t.Errorf("ForModel(%v).Model = %v", m, s.Model)
		}
		if !s.Params.IsIdeal() || s.Fabric != FabricIdeal {
			t.Errorf("ForModel(%v) not ideal", m)
		}
	}
	if p := ForModel(addrspace.PartiallyShared).Protocol; !p.UsesOwnership() {
		t.Errorf("PAS semantics should keep ownership ops, got protocol %v", p)
	}
	if p := ForModel(addrspace.PartiallyShared).Protocol; p.FirstTouchFaults() {
		t.Errorf("Figure 7 isolates semantics from fault cost; protocol %v takes faults", p)
	}
	if p := ForModel(addrspace.Unified).Protocol; p.UsesOwnership() {
		t.Errorf("unified should not have ownership ops, got protocol %v", p)
	}
}

func TestTableIShape(t *testing.T) {
	rows := TableI()
	if len(rows) != 13 {
		t.Fatalf("Table I rows = %d, want 13", len(rows))
	}
	for _, e := range rows {
		if e.Scheme == "" || e.AddressSpace == "" {
			t.Errorf("incomplete row %+v", e)
		}
	}
	// Exactly one homogeneous comparison point: Rigel.
	var homo []string
	for _, e := range rows {
		if e.Homogeneous {
			homo = append(homo, e.Scheme)
		}
	}
	if len(homo) != 1 || homo[0] != "Rigel" {
		t.Errorf("homogeneous rows = %v, want [Rigel]", homo)
	}
}

func TestFindingsMatchSectionIII(t *testing.T) {
	f := Findings()
	if f.Total != 13 {
		t.Fatalf("total = %d", f.Total)
	}
	// "Most proposed/existing systems have disjoint memory systems."
	if f.Disjoint < f.Unified || f.Disjoint < f.PartiallyShared || f.Disjoint < f.ADSM {
		t.Errorf("disjoint (%d) is not the most common: %+v", f.Disjoint, f)
	}
	// "None of the heterogeneous computing systems has employed a
	// unified, fully-coherent, strong-consistent memory system yet."
	if f.FullyCoherentUnified != 0 {
		t.Errorf("found %d fully-coherent strong-consistent unified systems, want 0", f.FullyCoherentUnified)
	}
	if f.PartiallyShared != 1 || f.ADSM != 1 {
		t.Errorf("PAS/ADSM counts %d/%d, want 1/1", f.PartiallyShared, f.ADSM)
	}
}

func TestByAddressSpace(t *testing.T) {
	groups := ByAddressSpace()
	if len(groups["disjoint"]) != 6 {
		t.Errorf("disjoint group = %d, want 6", len(groups["disjoint"]))
	}
	if len(groups["unified"]) != 5 {
		t.Errorf("unified group = %d, want 5", len(groups["unified"]))
	}
}

func TestFabricKindStrings(t *testing.T) {
	names := map[FabricKind]string{
		FabricPCIe: "pcie", FabricPCIeAsync: "pcie-async", FabricAperture: "pci-aperture",
		FabricMemCtrl: "memctrl", FabricIdeal: "ideal",
	}
	for k, want := range names {
		if k.String() != want {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), want)
		}
	}
}
