// Package systems describes heterogeneous computing systems as
// declarative, composable design points: an address-space model, a
// hardware communication fabric, a programming-model protocol, and the
// communication cost parameters. The five case studies of the paper's
// Section V-A — CPU+GPU(CUDA), LRB, GMAC, Fusion and IDEAL-HETERO — are
// five named points in that open space; Load/Save serialise points as
// JSON and Grid enumerates whole regions of the space for design-space
// sweeps. The package also holds the Table I survey of previously
// proposed heterogeneous memory systems.
package systems

import (
	"errors"
	"fmt"

	"heteromem/internal/addrspace"
	"heteromem/internal/comm"
	"heteromem/internal/config"
	"heteromem/internal/dram"
	"heteromem/internal/memtech"
	"heteromem/internal/model"
	"heteromem/internal/xlat"
)

// FabricKind names a hardware communication mechanism.
type FabricKind uint8

const (
	// FabricPCIe is synchronous PCI-E 2.0 copying (CPU+GPU/CUDA).
	FabricPCIe FabricKind = iota
	// FabricPCIeAsync is PCI-E with runtime-managed asynchronous copies
	// (GMAC).
	FabricPCIeAsync
	// FabricAperture is the LRB PCI aperture.
	FabricAperture
	// FabricMemCtrl is DMA through the shared memory controllers (Fusion).
	FabricMemCtrl
	// FabricIdeal is free communication (IDEAL-HETERO).
	FabricIdeal
	// NumFabrics is the number of fabric kinds.
	NumFabrics
)

var fabricNames = [NumFabrics]string{
	"pcie", "pcie-async", "pci-aperture", "memctrl", "ideal",
}

func (f FabricKind) String() string {
	if int(f) < len(fabricNames) {
		return fabricNames[f]
	}
	return fmt.Sprintf("fabric(%d)", uint8(f))
}

// ParseFabric returns the fabric kind named s (as produced by String).
func ParseFabric(s string) (FabricKind, error) {
	for f, name := range fabricNames {
		if s == name {
			return FabricKind(f), nil
		}
	}
	return 0, fmt.Errorf("systems: unknown fabric %q", s)
}

// MarshalText implements encoding.TextMarshaler so fabric kinds
// serialise as their names in declarative configs.
func (f FabricKind) MarshalText() ([]byte, error) {
	if f >= NumFabrics {
		return nil, fmt.Errorf("systems: invalid fabric kind %d", uint8(f))
	}
	return []byte(f.String()), nil
}

// UnmarshalText implements encoding.TextUnmarshaler.
func (f *FabricKind) UnmarshalText(b []byte) error {
	parsed, err := ParseFabric(string(b))
	if err != nil {
		return err
	}
	*f = parsed
	return nil
}

// AllFabrics returns the fabric kinds in declaration order.
func AllFabrics() []FabricKind {
	return []FabricKind{FabricPCIe, FabricPCIeAsync, FabricAperture, FabricMemCtrl, FabricIdeal}
}

// RemoteDevice reports whether the fabric puts the GPU behind an I/O
// interconnect (PCI-E or the PCI aperture), where the device's page
// walks go through an IOMMU rather than a core MMU. The translation
// axis resolves its "auto" IOMMU mode through this.
func (f FabricKind) RemoteDevice() bool {
	switch f {
	case FabricPCIe, FabricPCIeAsync, FabricAperture:
		return true
	default:
		return false
	}
}

// System is one heterogeneous system configuration: a declarative
// composition of the design-space axes. All systems share the same CPUs,
// GPUs and cache hierarchy (the paper isolates memory-system effects);
// they differ only in the fields here.
type System struct {
	// Name labels the configuration in reports.
	Name string
	// Model is the memory address space design option.
	Model addrspace.Model
	// Fabric is the hardware communication mechanism.
	Fabric FabricKind
	// Protocol is the programming-model protocol run over the fabric:
	// explicit-copy (CUDA/Fusion), ownership with or without first-touch
	// faults (LRB), adsm (GMAC), or ideal.
	Protocol model.Kind
	// FaultGranularityBytes sets the page size behind first-touch faults:
	// one lib-pf per granule of freshly shared data. Zero means one fault
	// per shared object — the GPU's large pages cover whole objects, the
	// paper's Section II-A1 page-size option. Small granularities model a
	// GPU stuck with host-sized pages.
	FaultGranularityBytes uint64
	// Params prices the special communication instructions (Table IV).
	Params config.CommParams
	// MemTech selects the terminal memory technology behind the shared
	// L3 (the mem_tech design axis). The zero Spec is the paper's DDR3
	// baseline, so existing system files and their hashes are unchanged.
	MemTech memtech.Spec
	// Translation selects the address-translation front-end (the
	// translation design axis): per-PU TLB geometry and page size, MMU
	// sharing, page-walk cost and the IOMMU mode. The zero Spec is the
	// paper's baseline — translation free — so existing system files and
	// their hashes are unchanged.
	Translation xlat.Spec
}

// ErrIncoherent reports a system configuration whose axes contradict
// each other (e.g. ownership operations over a space without ownership
// control).
var ErrIncoherent = errors.New("incoherent system configuration")

// Validate rejects incoherent configurations: protocol behaviours that
// the address-space model cannot express. Every error wraps
// ErrIncoherent and names the system.
func (s System) Validate() error {
	if s.Model >= addrspace.NumModels {
		return fmt.Errorf("system %q: %w: invalid address-space model %d", s.Name, ErrIncoherent, uint8(s.Model))
	}
	if s.Fabric >= NumFabrics {
		return fmt.Errorf("system %q: %w: invalid fabric %d", s.Name, ErrIncoherent, uint8(s.Fabric))
	}
	if s.Protocol >= model.NumKinds {
		return fmt.Errorf("system %q: %w: invalid protocol %d", s.Name, ErrIncoherent, uint8(s.Protocol))
	}
	if s.Protocol.FirstTouchFaults() && s.Model != addrspace.PartiallyShared {
		return fmt.Errorf("system %q: %w: first-touch faults need a demand-mapped shared space, which the %v model does not provide",
			s.Name, ErrIncoherent, s.Model)
	}
	if s.Protocol.UsesOwnership() && s.Model != addrspace.PartiallyShared {
		return fmt.Errorf("system %q: %w: %v ownership operations need ownership control, which only the partially-shared space provides (model is %v)",
			s.Name, ErrIncoherent, s.Protocol, s.Model)
	}
	if s.FaultGranularityBytes != 0 && !s.Protocol.FirstTouchFaults() {
		return fmt.Errorf("system %q: %w: fault granularity %d set while the %v protocol takes no first-touch faults",
			s.Name, ErrIncoherent, s.FaultGranularityBytes, s.Protocol)
	}
	if s.Protocol == model.ADSMLazy && s.Model != addrspace.ADSM {
		return fmt.Errorf("system %q: %w: the adsm protocol needs the CPU to address device memory, which the %v model does not allow",
			s.Name, ErrIncoherent, s.Model)
	}
	// Malformed mem_tech blocks are parameter errors, not axis
	// contradictions, so they do not wrap ErrIncoherent; the memtech
	// messages carry the JSON path of the offending field.
	if err := s.MemTech.Validate(); err != nil {
		return fmt.Errorf("system %q: %w", s.Name, err)
	}
	// Likewise for malformed translation blocks: parameter errors with
	// JSON paths, not ErrIncoherent contradictions.
	if err := s.Translation.Validate(); err != nil {
		return fmt.Errorf("system %q: %w", s.Name, err)
	}
	return nil
}

// NewProtocol instantiates the system's programming-model protocol.
func (s System) NewProtocol() (model.Protocol, error) {
	return model.New(s.Protocol, s.FaultGranularityBytes)
}

// NewFabric instantiates the system's fabric. The memory-controller
// fabric needs a DRAM controller to generate its accesses on; other
// fabrics ignore ctrl.
func (s System) NewFabric(ctrl *dram.Controller) comm.Fabric {
	switch s.Fabric {
	case FabricPCIe:
		return comm.NewPCIe(s.Params, false)
	case FabricPCIeAsync:
		return comm.NewPCIe(s.Params, true)
	case FabricAperture:
		return comm.NewAperture(s.Params)
	case FabricMemCtrl:
		return comm.NewMemController(ctrl)
	case FabricIdeal:
		return comm.NewIdeal()
	default:
		panic(fmt.Sprintf("systems: unknown fabric %d", s.Fabric))
	}
}

// CPUGPU returns the CPU+GPU(CUDA) configuration: disjoint memory spaces
// connected with PCI-E; every data exchange is an explicit api-pci copy,
// including transferring results back to the host.
func CPUGPU() System {
	return System{
		Name:     "CPU+GPU",
		Model:    addrspace.Disjoint,
		Fabric:   FabricPCIe,
		Protocol: model.ExplicitCopy,
		Params:   config.TableIV(),
	}
}

// LRB returns the LRB configuration: partially shared address space over
// the PCI aperture, with ownership acquire/release, api-tr transfers into
// the shared space, first-touch page faults, and no copy-back (results
// stay in the shared space).
func LRB() System {
	return System{
		Name:     "LRB",
		Model:    addrspace.PartiallyShared,
		Fabric:   FabricAperture,
		Protocol: model.OwnershipFirstTouch,
		Params:   config.TableIV(),
	}
}

// GMAC returns the GMAC configuration: ADSM over PCI-E with asynchronous
// copies the runtime overlaps with computation, and no copy-back (the
// CPU addresses the shared space directly).
func GMAC() System {
	return System{
		Name:     "GMAC",
		Model:    addrspace.ADSM,
		Fabric:   FabricPCIeAsync,
		Protocol: model.ADSMLazy,
		Params:   config.TableIV(),
	}
}

// Fusion returns the Fusion configuration: disjoint memory spaces whose
// transfers run through the shared memory controllers as ordinary memory
// accesses.
func Fusion() System {
	return System{
		Name:     "Fusion",
		Model:    addrspace.Disjoint,
		Fabric:   FabricMemCtrl,
		Protocol: model.ExplicitCopy,
		Params:   config.TableIV(),
	}
}

// IdealHetero returns IDEAL-HETERO: a unified, fully coherent system with
// free communication.
func IdealHetero() System {
	return System{
		Name:     "IDEAL-HETERO",
		Model:    addrspace.Unified,
		Fabric:   FabricIdeal,
		Protocol: model.Ideal,
		Params:   config.Ideal(),
	}
}

// CaseStudies returns the five systems of Figure 5 in the paper's order.
func CaseStudies() []System {
	return []System{CPUGPU(), LRB(), GMAC(), Fusion(), IdealHetero()}
}

// CaseStudiesWithTech returns the five case studies re-terminated on the
// given memory technology (default parameters), for re-running the
// Figure 5 comparison across the mem_tech axis. Names are unchanged so
// per-sweep reports normalise against the same baseline labels.
func CaseStudiesWithTech(k memtech.Kind) []System {
	out := CaseStudies()
	if k == memtech.DRAM {
		return out
	}
	for i := range out {
		out[i].MemTech = memtech.Spec{Kind: k}
	}
	return out
}

// CaseStudiesWithTranslation returns the five case studies with the
// given translation front-end, for re-running the Figure 5 comparison
// across the translation axis. Names are unchanged so per-sweep reports
// normalise against the same baseline labels; a zero spec returns the
// untouched baseline.
func CaseStudiesWithTranslation(spec xlat.Spec) []System {
	out := CaseStudies()
	if spec.IsZero() {
		return out
	}
	for i := range out {
		out[i].Translation = spec
	}
	return out
}

// GraceHopper returns a Grace-Hopper-style preset: a unified address
// space with hardware-coherent communication through the shared memory
// controllers — no copies, no faults — terminated on an HBM-class
// stack. It is the 2020s design point the 2012 paper's IDEAL-HETERO
// anticipated, except that communication rides real shared memory
// controllers rather than a free fabric, and the memory behind them is
// HBM rather than DDR3.
func GraceHopper() System {
	return System{
		Name:     "grace-hopper",
		Model:    addrspace.Unified,
		Fabric:   FabricMemCtrl,
		Protocol: model.Ideal,
		Params:   config.Ideal(),
		MemTech:  memtech.Spec{Kind: memtech.HBM},
	}
}

// ForModel returns a system exercising the given address-space model with
// ideal communication and a shared cache — the Figure 7 configuration
// that isolates pure address-space effects.
func ForModel(m addrspace.Model) System {
	s := System{
		Name:   fmt.Sprintf("ideal-%s", m),
		Model:  m,
		Fabric: FabricIdeal,
		Params: config.Ideal(),
	}
	switch m {
	case addrspace.PartiallyShared:
		// The model's semantics keep ownership operations (they are part
		// of the programming model, not the hardware), but under ideal
		// parameters they cost nothing. First-touch faults are a page-size
		// choice, not a PAS obligation, so the isolated model goes without.
		s.Protocol = model.Ownership
	case addrspace.ADSM:
		s.Protocol = model.ADSMLazy
	case addrspace.Unified:
		s.Protocol = model.Ideal
	default:
		s.Protocol = model.ExplicitCopy
	}
	return s
}
