// Package systems defines the five heterogeneous computing systems the
// paper evaluates in Section V-A — CPU+GPU(CUDA), LRB, GMAC, Fusion and
// IDEAL-HETERO — as combinations of an address-space model, a hardware
// communication fabric, and programming-model behaviours (ownership
// operations, first-touch page faults, asynchronous copies). It also
// holds the Table I survey of previously proposed heterogeneous memory
// systems.
package systems

import (
	"fmt"

	"heteromem/internal/addrspace"
	"heteromem/internal/comm"
	"heteromem/internal/config"
	"heteromem/internal/dram"
)

// FabricKind names a hardware communication mechanism.
type FabricKind uint8

const (
	// FabricPCIe is synchronous PCI-E 2.0 copying (CPU+GPU/CUDA).
	FabricPCIe FabricKind = iota
	// FabricPCIeAsync is PCI-E with runtime-managed asynchronous copies
	// (GMAC).
	FabricPCIeAsync
	// FabricAperture is the LRB PCI aperture.
	FabricAperture
	// FabricMemCtrl is DMA through the shared memory controllers (Fusion).
	FabricMemCtrl
	// FabricIdeal is free communication (IDEAL-HETERO).
	FabricIdeal
)

func (f FabricKind) String() string {
	switch f {
	case FabricPCIe:
		return "pcie"
	case FabricPCIeAsync:
		return "pcie-async"
	case FabricAperture:
		return "pci-aperture"
	case FabricMemCtrl:
		return "memctrl"
	case FabricIdeal:
		return "ideal"
	default:
		return fmt.Sprintf("fabric(%d)", uint8(f))
	}
}

// System is one evaluated heterogeneous system configuration. All five
// case studies share the same CPUs, GPUs and cache hierarchy (the paper
// isolates memory-system effects); they differ only in the fields here.
type System struct {
	// Name is the paper's label for the configuration.
	Name string
	// Model is the memory address space design option.
	Model addrspace.Model
	// Fabric is the hardware communication mechanism.
	Fabric FabricKind
	// Params prices the special communication instructions (Table IV).
	Params config.CommParams
	// OwnershipOps injects api-acq ownership acquire/release actions
	// around transfers (the LRB programming model).
	OwnershipOps bool
	// PageFaultOnFirstTouch charges lib-pf when the GPU first touches a
	// freshly shared object (LRB).
	PageFaultOnFirstTouch bool
	// FaultGranularityBytes sets the page size behind first-touch faults:
	// one lib-pf per granule of freshly shared data. Zero means one fault
	// per shared object — the GPU's large pages cover whole objects, the
	// paper's Section II-A1 page-size option. Small granularities model a
	// GPU stuck with host-sized pages.
	FaultGranularityBytes uint64
	// SkipDeviceToHost elides device-to-host copies because the result
	// already lives in a space the CPU can address (LRB's shared space,
	// GMAC's ADSM region).
	SkipDeviceToHost bool
}

// NewFabric instantiates the system's fabric. The memory-controller
// fabric needs a DRAM controller to generate its accesses on; other
// fabrics ignore ctrl.
func (s System) NewFabric(ctrl *dram.Controller) comm.Fabric {
	switch s.Fabric {
	case FabricPCIe:
		return comm.NewPCIe(s.Params, false)
	case FabricPCIeAsync:
		return comm.NewPCIe(s.Params, true)
	case FabricAperture:
		return comm.NewAperture(s.Params)
	case FabricMemCtrl:
		return comm.NewMemController(ctrl)
	case FabricIdeal:
		return comm.NewIdeal()
	default:
		panic(fmt.Sprintf("systems: unknown fabric %d", s.Fabric))
	}
}

// CPUGPU returns the CPU+GPU(CUDA) configuration: disjoint memory spaces
// connected with PCI-E; every data exchange is an explicit api-pci copy,
// including transferring results back to the host.
func CPUGPU() System {
	return System{
		Name:   "CPU+GPU",
		Model:  addrspace.Disjoint,
		Fabric: FabricPCIe,
		Params: config.TableIV(),
	}
}

// LRB returns the LRB configuration: partially shared address space over
// the PCI aperture, with ownership acquire/release, api-tr transfers into
// the shared space, first-touch page faults, and no copy-back (results
// stay in the shared space).
func LRB() System {
	return System{
		Name:                  "LRB",
		Model:                 addrspace.PartiallyShared,
		Fabric:                FabricAperture,
		Params:                config.TableIV(),
		OwnershipOps:          true,
		PageFaultOnFirstTouch: true,
		SkipDeviceToHost:      true,
	}
}

// GMAC returns the GMAC configuration: ADSM over PCI-E with asynchronous
// copies the runtime overlaps with computation, and no copy-back (the
// CPU addresses the shared space directly).
func GMAC() System {
	return System{
		Name:             "GMAC",
		Model:            addrspace.ADSM,
		Fabric:           FabricPCIeAsync,
		Params:           config.TableIV(),
		SkipDeviceToHost: true,
	}
}

// Fusion returns the Fusion configuration: disjoint memory spaces whose
// transfers run through the shared memory controllers as ordinary memory
// accesses.
func Fusion() System {
	return System{
		Name:   "Fusion",
		Model:  addrspace.Disjoint,
		Fabric: FabricMemCtrl,
		Params: config.TableIV(),
	}
}

// IdealHetero returns IDEAL-HETERO: a unified, fully coherent system with
// free communication.
func IdealHetero() System {
	return System{
		Name:   "IDEAL-HETERO",
		Model:  addrspace.Unified,
		Fabric: FabricIdeal,
		Params: config.Ideal(),
	}
}

// CaseStudies returns the five systems of Figure 5 in the paper's order.
func CaseStudies() []System {
	return []System{CPUGPU(), LRB(), GMAC(), Fusion(), IdealHetero()}
}

// ForModel returns a system exercising the given address-space model with
// ideal communication and a shared cache — the Figure 7 configuration
// that isolates pure address-space effects.
func ForModel(m addrspace.Model) System {
	s := System{
		Name:   fmt.Sprintf("ideal-%s", m),
		Model:  m,
		Fabric: FabricIdeal,
		Params: config.Ideal(),
	}
	if m == addrspace.PartiallyShared {
		// The model's semantics keep ownership operations (they are part
		// of the programming model, not the hardware), but under ideal
		// parameters they cost nothing.
		s.OwnershipOps = true
		s.SkipDeviceToHost = true
	}
	if m == addrspace.ADSM {
		s.SkipDeviceToHost = true
	}
	return s
}
