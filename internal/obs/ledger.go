package obs

import (
	"bufio"
	"encoding/json"
	"io"
	"os"
	"sync"
	"time"
)

// Ledger is the append-only run log of a sweep: one JSON object per line
// (JSONL), so a sweep's full history — spans, per-cell results, errors —
// is a single greppable artifact and the exact input a design-space
// search consumes for its point cache.
//
// Unlike the rest of this package, ledger timestamps are HOST wall-clock
// nanoseconds (UnixNano), not simulated picoseconds: the ledger records
// where real time went across a fleet of simulations, while samplers and
// tracers record where simulated time went inside one.
//
// A Ledger is safe for concurrent use: sweep workers append from their
// own goroutines. All methods are nil-safe no-ops, so an unobserved
// sweep pays only nil checks.
type Ledger struct {
	mu     sync.Mutex
	w      *bufio.Writer
	c      io.Closer
	err    error
	nextID uint64
	// now supplies span timestamps; tests pin it for deterministic output.
	now func() int64
}

// NewLedger returns a ledger writing JSONL records to w.
func NewLedger(w io.Writer) *Ledger {
	return &Ledger{w: bufio.NewWriter(w), now: func() int64 { return time.Now().UnixNano() }}
}

// CreateLedger creates (truncating) a file-backed ledger at path. Close
// flushes and closes the file.
func CreateLedger(path string) (*Ledger, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	l := NewLedger(f)
	l.c = f
	return l, nil
}

// Append marshals rec and writes it as one line. Records should carry
// their own type discriminator (a `t` field) so mixed streams stay
// greppable. The first marshal or write error sticks and suppresses
// further output; it is reported by Err and Close. No-op on nil.
func (l *Ledger) Append(rec any) error {
	if l == nil {
		return nil
	}
	data, err := json.Marshal(rec)
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.err != nil {
		return l.err
	}
	if err != nil {
		l.err = err
		return err
	}
	if _, err := l.w.Write(data); err != nil {
		l.err = err
		return err
	}
	if err := l.w.WriteByte('\n'); err != nil {
		l.err = err
		return err
	}
	return nil
}

// Err returns the first error encountered while writing; nil if none.
func (l *Ledger) Err() error {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.err
}

// Close flushes buffered records and closes the underlying file (when
// the ledger was opened with CreateLedger). No-op on nil.
func (l *Ledger) Close() error {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if ferr := l.w.Flush(); l.err == nil {
		l.err = ferr
	}
	if l.c != nil {
		if cerr := l.c.Close(); l.err == nil {
			l.err = cerr
		}
		l.c = nil
	}
	return l.err
}

// nowNS returns the ledger's current wall-clock reading.
func (l *Ledger) nowNS() int64 {
	if l == nil {
		return 0
	}
	return l.now()
}

// span allocates the next span id.
func (l *Ledger) span() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.nextID++
	return l.nextID
}

// SpanRecord is the ledger line a finished span writes. Spans form a
// tree via Parent (0 for roots), so the sweep → design-point → kernel →
// phase hierarchy reconstructs from the flat stream.
type SpanRecord struct {
	T       string         `json:"t"` // always "span"
	ID      uint64         `json:"id"`
	Parent  uint64         `json:"parent,omitempty"`
	Kind    string         `json:"kind"`
	Name    string         `json:"name"`
	StartNS int64          `json:"start_ns"`
	EndNS   int64          `json:"end_ns"`
	Attrs   map[string]any `json:"attrs,omitempty"`
}

// Span is one node of the hierarchical host-time span tree. A span is
// created open (Root/Child stamp the start time) and written to the
// ledger as a single line when End is called. Methods on a nil span are
// no-ops and Child of a nil span returns nil, so callers thread spans
// unconditionally.
type Span struct {
	l       *Ledger
	id      uint64
	parent  uint64
	kind    string
	name    string
	startNS int64
	ended   bool
}

// Root opens a top-level span (e.g. kind "sweep"). Nil on a nil ledger.
func (l *Ledger) Root(kind, name string) *Span {
	if l == nil {
		return nil
	}
	return &Span{l: l, id: l.span(), kind: kind, name: name, startNS: l.nowNS()}
}

// Child opens a sub-span of s. Nil on a nil span.
func (s *Span) Child(kind, name string) *Span {
	if s == nil {
		return nil
	}
	return &Span{l: s.l, id: s.l.span(), parent: s.id, kind: kind, name: name, startNS: s.l.nowNS()}
}

// ID returns the span's ledger id; 0 on nil, so records can reference
// their span unconditionally.
func (s *Span) ID() uint64 {
	if s == nil {
		return 0
	}
	return s.id
}

// End closes the span and writes its record, with optional attributes.
// Ending twice writes once. No-op on nil.
func (s *Span) End(attrs map[string]any) {
	if s == nil || s.ended {
		return
	}
	s.ended = true
	_ = s.l.Append(SpanRecord{
		T: "span", ID: s.id, Parent: s.parent, Kind: s.kind, Name: s.name,
		StartNS: s.startNS, EndNS: s.l.nowNS(), Attrs: attrs,
	})
}
