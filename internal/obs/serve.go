package obs

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"time"
)

// Publisher is a concurrency-safe holder of the most recent metrics
// Snapshot. Simulation code publishes at its safe points (phase or cell
// boundaries) from its own goroutine; the introspection server reads the
// latest snapshot from HTTP handler goroutines. This keeps the Registry
// itself single-goroutine (its hot-path bumps stay unsynchronised) while
// still giving scrapers a live, race-free view. Nil-safe.
type Publisher struct {
	mu   sync.Mutex
	snap Snapshot
}

// Publish stores s as the latest snapshot. No-op on nil.
func (p *Publisher) Publish(s Snapshot) {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.snap = s
	p.mu.Unlock()
}

// Latest returns the most recently published snapshot (the zero Snapshot
// before the first Publish, or on nil).
func (p *Publisher) Latest() Snapshot {
	if p == nil {
		return Snapshot{Counters: map[string]uint64{}}
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.snap
}

// ServerConfig wires data sources into the introspection server. Nil
// sources leave their endpoint serving an empty document, so partial
// wiring (metrics without progress, or vice versa) just works.
type ServerConfig struct {
	// Metrics supplies the snapshot behind /metrics (Prometheus text
	// format) and /metrics.json. It is called from HTTP handler
	// goroutines and must be safe for concurrent use — wrap a live
	// registry in a Publisher rather than snapshotting it directly.
	Metrics func() Snapshot
	// Progress supplies the JSON document behind /progress. Same
	// concurrency contract as Metrics.
	Progress func() any
}

// Server is a live introspection HTTP server: Prometheus metrics, sweep
// progress, and net/http/pprof host profiling — the embryo of the
// simulation-service HTTP surface.
//
// Endpoints:
//
//	/             index
//	/metrics      Prometheus text exposition of the latest snapshot
//	/metrics.json the same snapshot as JSON
//	/progress     sweep progress (points done/total, ETA, per-worker state)
//	/debug/pprof/ standard Go host profiling
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Serve listens on addr (host:port; ":0" picks a free port, reported by
// Addr) and serves the introspection endpoints in a background goroutine
// until Close.
func Serve(addr string, cfg ServerConfig) (*Server, error) {
	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, "hetsim introspection\n\n/metrics\n/metrics.json\n/progress\n/debug/pprof/\n")
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		snap := Snapshot{}
		if cfg.Metrics != nil {
			snap = cfg.Metrics()
		}
		_ = WritePrometheus(w, snap)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, r *http.Request) {
		snap := Snapshot{Counters: map[string]uint64{}}
		if cfg.Metrics != nil {
			snap = cfg.Metrics()
		}
		writeIndentedJSON(w, snap)
	})
	mux.HandleFunc("/progress", func(w http.ResponseWriter, r *http.Request) {
		var doc any = struct{}{}
		if cfg.Progress != nil {
			doc = cfg.Progress()
		}
		writeIndentedJSON(w, doc)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: serve: %w", err)
	}
	srv := &http.Server{Handler: mux, ReadHeaderTimeout: 10 * time.Second}
	go func() { _ = srv.Serve(ln) }()
	return &Server{ln: ln, srv: srv}, nil
}

func writeIndentedJSON(w http.ResponseWriter, doc any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(doc)
}

// Addr returns the server's bound address (useful with ":0").
func (s *Server) Addr() string {
	if s == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Close shuts the server down immediately. Nil-safe.
func (s *Server) Close() error {
	if s == nil {
		return nil
	}
	return s.srv.Close()
}
