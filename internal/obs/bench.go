package obs

import (
	"encoding/json"
	"os"
	"path/filepath"
	"sort"
)

// CostUnit reports whether larger values of unit mean worse performance
// (wall clock, allocation). Both the report (best-of-N headline) and
// cmd/benchcmp (regression direction) key off this, so it lives here
// rather than in the command.
func CostUnit(unit string) bool {
	switch unit {
	case "ns/op", "B/op", "allocs/op":
		return true
	}
	return false
}

// BenchEntry is one headline benchmark number. Value is the headline:
// for cost-like units it is the best (minimum) of the recorded samples,
// since the minimum of repeated runs is the least noise-contaminated
// estimate of a benchmark's true cost; for quality/throughput units it
// is the latest sample. Samples holds every recorded value in arrival
// order (absent in reports written before sample tracking existed).
type BenchEntry struct {
	Name    string    `json:"name"`
	Value   float64   `json:"value"`
	Unit    string    `json:"unit"`
	Samples []float64 `json:"samples,omitempty"`
}

// Min returns the smallest recorded sample, falling back to Value for
// entries loaded from reports without sample tracking.
func (e BenchEntry) Min() float64 {
	if len(e.Samples) == 0 {
		return e.Value
	}
	m := e.Samples[0]
	for _, s := range e.Samples[1:] {
		if s < m {
			m = s
		}
	}
	return m
}

// Median returns the median recorded sample (mean of the middle pair
// for even counts), falling back to Value when no samples are recorded.
func (e BenchEntry) Median() float64 {
	if len(e.Samples) == 0 {
		return e.Value
	}
	s := append([]float64(nil), e.Samples...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// BenchReport collects headline numbers from a benchmark run and writes
// them to BENCH_<date>.json, seeding the repository's performance
// trajectory: successive PRs dump fresh files and diff them. GoGC and
// GoMaxProcs record the runtime knobs the numbers were taken under so a
// comparison across reports is known to be apples-to-apples.
type BenchReport struct {
	Date       string       `json:"date"`
	GoOS       string       `json:"goos,omitempty"`
	GoArch     string       `json:"goarch,omitempty"`
	GoGC       string       `json:"gogc,omitempty"`
	GoMaxProcs int          `json:"gomaxprocs,omitempty"`
	Entries    []BenchEntry `json:"entries"`
}

// NewBenchReport returns an empty report stamped with date (expected
// YYYY-MM-DD, used in the output file name).
func NewBenchReport(date string) *BenchReport {
	return &BenchReport{Date: date}
}

// Add records one sample under name. A repeated name (e.g. the same
// benchmark run with -count=3) accumulates samples rather than
// overwriting: cost-like units keep the best (minimum) sample as the
// headline Value, anything else keeps the latest. This is what makes a
// -count=N smoke run robust against one-off scheduler noise — a single
// slow sample cannot drag the headline into cmd/benchcmp's regression
// band.
func (r *BenchReport) Add(name string, value float64, unit string) {
	if r == nil {
		return
	}
	for i := range r.Entries {
		if r.Entries[i].Name != name {
			continue
		}
		e := &r.Entries[i]
		e.Samples = append(e.Samples, value)
		e.Unit = unit
		if !CostUnit(unit) || value < e.Value {
			e.Value = value
		}
		return
	}
	r.Entries = append(r.Entries, BenchEntry{
		Name: name, Value: value, Unit: unit, Samples: []float64{value},
	})
}

// WriteFile writes the report as BENCH_<date>.json under dir and returns
// the path. Entries are sorted by name for diff-friendly output.
func (r *BenchReport) WriteFile(dir string) (string, error) {
	sort.Slice(r.Entries, func(i, j int) bool { return r.Entries[i].Name < r.Entries[j].Name })
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return "", err
	}
	path := filepath.Join(dir, "BENCH_"+r.Date+".json")
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return "", err
	}
	return path, nil
}
