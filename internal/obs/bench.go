package obs

import (
	"encoding/json"
	"os"
	"path/filepath"
	"sort"
)

// BenchEntry is one headline benchmark number.
type BenchEntry struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
	Unit  string  `json:"unit"`
}

// BenchReport collects headline numbers from a benchmark run and writes
// them to BENCH_<date>.json, seeding the repository's performance
// trajectory: successive PRs dump fresh files and diff them.
type BenchReport struct {
	Date    string       `json:"date"`
	GoOS    string       `json:"goos,omitempty"`
	GoArch  string       `json:"goarch,omitempty"`
	Entries []BenchEntry `json:"entries"`
}

// NewBenchReport returns an empty report stamped with date (expected
// YYYY-MM-DD, used in the output file name).
func NewBenchReport(date string) *BenchReport {
	return &BenchReport{Date: date}
}

// Add records one entry; a repeated name overwrites the earlier value so
// a re-run benchmark keeps its latest number.
func (r *BenchReport) Add(name string, value float64, unit string) {
	if r == nil {
		return
	}
	for i := range r.Entries {
		if r.Entries[i].Name == name {
			r.Entries[i] = BenchEntry{Name: name, Value: value, Unit: unit}
			return
		}
	}
	r.Entries = append(r.Entries, BenchEntry{Name: name, Value: value, Unit: unit})
}

// WriteFile writes the report as BENCH_<date>.json under dir and returns
// the path. Entries are sorted by name for diff-friendly output.
func (r *BenchReport) WriteFile(dir string) (string, error) {
	sort.Slice(r.Entries, func(i, j int) bool { return r.Entries[i].Name < r.Entries[j].Name })
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return "", err
	}
	path := filepath.Join(dir, "BENCH_"+r.Date+".json")
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return "", err
	}
	return path, nil
}
