package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// SortedCounterNames returns the snapshot's counter names in ascending
// order. Every text export of a snapshot iterates names through these
// helpers, so output is diff-stable regardless of registration order.
func (s Snapshot) SortedCounterNames() []string { return sortedKeys(s.Counters) }

// SortedGaugeNames returns the snapshot's gauge names in ascending order.
func (s Snapshot) SortedGaugeNames() []string { return sortedKeys(s.Gauges) }

// SortedHistogramNames returns the snapshot's histogram names in
// ascending order.
func (s Snapshot) SortedHistogramNames() []string {
	names := make([]string, 0, len(s.Histograms))
	for name := range s.Histograms {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

func sortedKeys(m map[string]uint64) []string {
	names := make([]string, 0, len(m))
	for name := range m {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Merge folds o into s: counters and histogram totals add, gauges take
// o's level (last writer wins — gauges are instantaneous levels, not
// totals). Used to aggregate per-worker registries into one sweep-wide
// snapshot.
func (s *Snapshot) Merge(o Snapshot) {
	if s.Counters == nil && len(o.Counters) > 0 {
		s.Counters = map[string]uint64{}
	}
	for name, v := range o.Counters {
		s.Counters[name] += v
	}
	if len(o.Gauges) > 0 {
		if s.Gauges == nil {
			s.Gauges = map[string]uint64{}
		}
		for name, v := range o.Gauges {
			s.Gauges[name] = v
		}
	}
	if len(o.Histograms) > 0 {
		if s.Histograms == nil {
			s.Histograms = map[string]HistogramSnapshot{}
		}
		for name, oh := range o.Histograms {
			s.Histograms[name] = mergeHist(s.Histograms[name], oh)
		}
	}
}

func mergeHist(a, b HistogramSnapshot) HistogramSnapshot {
	out := HistogramSnapshot{Count: a.Count + b.Count, Sum: a.Sum + b.Sum}
	if out.Count > 0 {
		out.Mean = float64(out.Sum) / float64(out.Count)
	}
	byLo := map[uint64]Bucket{}
	for _, bk := range a.Buckets {
		byLo[bk.Lo] = bk
	}
	for _, bk := range b.Buckets {
		if have, ok := byLo[bk.Lo]; ok {
			have.Count += bk.Count
			byLo[bk.Lo] = have
		} else {
			byLo[bk.Lo] = bk
		}
	}
	for _, bk := range byLo {
		out.Buckets = append(out.Buckets, bk)
	}
	sort.Slice(out.Buckets, func(i, j int) bool { return out.Buckets[i].Lo < out.Buckets[j].Lo })
	return out
}

// promName maps a registry metric name onto the Prometheus identifier
// charset: every run of characters outside [a-zA-Z0-9_:] becomes one
// underscore ("mem.l3.t0.hits" → "mem_l3_t0_hits").
func promName(name string) string {
	var b strings.Builder
	b.Grow(len(name))
	pending := false
	for _, r := range name {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || (r >= '0' && r <= '9')
		if ok {
			if pending && b.Len() > 0 {
				b.WriteByte('_')
			}
			pending = false
			b.WriteRune(r)
		} else {
			pending = true
		}
	}
	out := b.String()
	if out == "" {
		out = "_"
	}
	if out[0] >= '0' && out[0] <= '9' {
		out = "_" + out
	}
	return out
}

// WritePrometheus writes the snapshot in the Prometheus text exposition
// format (version 0.0.4): counters and gauges as single samples,
// histograms as cumulative le-bucketed series with _sum and _count.
// Metrics are emitted in sorted name order, so the output is diff-stable
// for a deterministic simulation.
func WritePrometheus(w io.Writer, s Snapshot) error {
	var b strings.Builder
	for _, name := range s.SortedCounterNames() {
		pn := promName(name)
		fmt.Fprintf(&b, "# TYPE %s counter\n%s %d\n", pn, pn, s.Counters[name])
	}
	for _, name := range s.SortedGaugeNames() {
		pn := promName(name)
		fmt.Fprintf(&b, "# TYPE %s gauge\n%s %d\n", pn, pn, s.Gauges[name])
	}
	for _, name := range s.SortedHistogramNames() {
		h := s.Histograms[name]
		pn := promName(name)
		fmt.Fprintf(&b, "# TYPE %s histogram\n", pn)
		var cum uint64
		for _, bk := range h.Buckets {
			cum += bk.Count
			fmt.Fprintf(&b, "%s_bucket{le=\"%d\"} %d\n", pn, bk.Hi, cum)
		}
		fmt.Fprintf(&b, "%s_bucket{le=\"+Inf\"} %d\n", pn, h.Count)
		fmt.Fprintf(&b, "%s_sum %d\n%s_count %d\n", pn, h.Sum, pn, h.Count)
	}
	_, err := io.WriteString(w, b.String())
	return err
}
