package obs

import "testing"

// Satellite: interval-sampler edge cases — zero-length run, final
// partial interval, restart after Reset. In every case the column sums
// must equal the final counter totals exactly.

func sumDeltas(samples []Sample, name string) uint64 {
	var total uint64
	for _, sm := range samples {
		total += sm.Delta(name)
	}
	return total
}

func TestSamplerZeroLengthRun(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("x")
	s := NewSampler(reg, 1000)

	// No time passes, no counters move: Finish(0) must not invent epochs.
	s.Finish(0)
	if n := len(s.Samples()); n != 0 {
		t.Fatalf("idle zero-length run emitted %d samples, want 0", n)
	}

	// Zero-length but with activity (all work at t=0): one degenerate
	// epoch carries the totals.
	reg2 := NewRegistry()
	c2 := reg2.Counter("x")
	s2 := NewSampler(reg2, 1000)
	c2.Add(7)
	s2.Finish(0)
	if n := len(s2.Samples()); n != 1 {
		t.Fatalf("active zero-length run emitted %d samples, want 1", n)
	}
	sm := s2.Samples()[0]
	if sm.StartPS != 0 || sm.EndPS != 0 {
		t.Errorf("degenerate epoch bounds [%d,%d), want [0,0)", sm.StartPS, sm.EndPS)
	}
	if got := sumDeltas(s2.Samples(), "x"); got != c2.Value() {
		t.Errorf("deltas sum %d != total %d", got, c2.Value())
	}
	_ = c
}

func TestSamplerFinalPartialInterval(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("x")
	s := NewSampler(reg, 1000)

	c.Add(3)
	s.Advance(1000) // full epoch [0,1000)
	c.Add(5)
	s.Finish(1400) // partial tail [1000,1400)

	samples := s.Samples()
	if len(samples) != 2 {
		t.Fatalf("got %d samples, want 2", len(samples))
	}
	last := samples[len(samples)-1]
	if last.StartPS != 1000 || last.EndPS != 1400 {
		t.Errorf("final partial epoch [%d,%d), want [1000,1400)", last.StartPS, last.EndPS)
	}
	if last.Delta("x") != 5 {
		t.Errorf("final partial delta = %d, want 5", last.Delta("x"))
	}
	if got := sumDeltas(samples, "x"); got != c.Value() {
		t.Errorf("deltas sum %d != total %d", got, c.Value())
	}
}

func TestSamplerRestartAfterReset(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("x")
	s := NewSampler(reg, 1000)

	// First run: 10 events over 2.5 epochs.
	c.Add(4)
	s.Advance(1200)
	c.Add(6)
	s.Finish(2500)
	if got := sumDeltas(s.Samples(), "x"); got != 10 {
		t.Fatalf("first run deltas sum %d, want 10", got)
	}

	// Recycle the pooled pair: registry and sampler reset together.
	reg.Reset()
	s.Reset()
	if len(s.Samples()) != 0 {
		t.Fatal("Reset should clear emitted samples")
	}

	// Second run must attribute from zero again — deltas sum to the new
	// totals, not to (new - stale prev).
	c.Add(2)
	s.Advance(1000)
	c.Add(9)
	s.Finish(1700)
	samples := s.Samples()
	if len(samples) != 2 {
		t.Fatalf("restarted run emitted %d samples, want 2", len(samples))
	}
	if samples[0].StartPS != 0 {
		t.Errorf("restarted first epoch starts at %d, want 0", samples[0].StartPS)
	}
	if got := sumDeltas(samples, "x"); got != c.Value() || got != 11 {
		t.Errorf("restarted deltas sum %d != total %d (want 11)", got, c.Value())
	}

	// Further Advance calls after Finish stay ignored until the next Reset.
	s.Advance(99999)
	if len(s.Samples()) != 2 {
		t.Error("Advance after Finish should be ignored")
	}
}

func TestSamplerResetNil(t *testing.T) {
	var s *Sampler
	s.Reset() // must not panic
}
