package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

// fakeClock returns a monotonically increasing ns source for
// deterministic span timestamps.
func fakeClock() func() int64 {
	var t int64
	return func() int64 { t += 100; return t }
}

func decodeLines(t *testing.T, buf *bytes.Buffer) []map[string]any {
	t.Helper()
	var out []map[string]any
	sc := bufio.NewScanner(bytes.NewReader(buf.Bytes()))
	for sc.Scan() {
		var m map[string]any
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			t.Fatalf("bad ledger line %q: %v", sc.Text(), err)
		}
		out = append(out, m)
	}
	return out
}

func TestLedgerSpanHierarchy(t *testing.T) {
	var buf bytes.Buffer
	l := NewLedger(&buf)
	l.now = fakeClock()

	sweep := l.Root("sweep", "grid")
	point := sweep.Child("point", "unified/pcie/explicit-copy")
	kernel := point.Child("kernel", "reduction")
	kernel.End(map[string]any{"total_ps": 123})
	point.End(nil)
	sweep.End(nil)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	lines := decodeLines(t, &buf)
	if len(lines) != 3 {
		t.Fatalf("got %d ledger lines, want 3", len(lines))
	}
	// Ends arrive innermost-first.
	k, p, s := lines[0], lines[1], lines[2]
	for _, m := range lines {
		if m["t"] != "span" {
			t.Fatalf("line type %v, want span", m["t"])
		}
	}
	if k["kind"] != "kernel" || p["kind"] != "point" || s["kind"] != "sweep" {
		t.Fatalf("kinds = %v %v %v", k["kind"], p["kind"], s["kind"])
	}
	if k["parent"] != p["id"] {
		t.Errorf("kernel parent = %v, want point id %v", k["parent"], p["id"])
	}
	if p["parent"] != s["id"] {
		t.Errorf("point parent = %v, want sweep id %v", p["parent"], s["id"])
	}
	if _, hasParent := s["parent"]; hasParent {
		t.Error("root span should omit parent")
	}
	if k["start_ns"].(float64) >= k["end_ns"].(float64) {
		t.Errorf("kernel span start %v not before end %v", k["start_ns"], k["end_ns"])
	}
	if k["attrs"].(map[string]any)["total_ps"] != float64(123) {
		t.Errorf("kernel attrs = %v", k["attrs"])
	}
}

func TestLedgerAppendCustomRecord(t *testing.T) {
	var buf bytes.Buffer
	l := NewLedger(&buf)
	type cell struct {
		T      string `json:"t"`
		Kernel string `json:"kernel"`
		WallNS int64  `json:"wall_ns"`
	}
	if err := l.Append(cell{T: "cell", Kernel: "reduction", WallNS: 42}); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	got := strings.TrimSpace(buf.String())
	want := `{"t":"cell","kernel":"reduction","wall_ns":42}`
	if got != want {
		t.Errorf("ledger line = %s, want %s", got, want)
	}
}

func TestLedgerConcurrentAppend(t *testing.T) {
	var buf bytes.Buffer
	l := NewLedger(&buf)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				sp := l.Root("cell", "c")
				sp.End(map[string]any{"worker": w})
			}
		}(w)
	}
	wg.Wait()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	lines := decodeLines(t, &buf)
	if len(lines) != 8*50 {
		t.Fatalf("got %d lines, want %d", len(lines), 8*50)
	}
	seen := map[float64]bool{}
	for _, m := range lines {
		id := m["id"].(float64)
		if seen[id] {
			t.Fatalf("duplicate span id %v", id)
		}
		seen[id] = true
	}
}

func TestLedgerNilSafety(t *testing.T) {
	var l *Ledger
	if err := l.Append(struct{}{}); err != nil {
		t.Error("nil ledger Append should be a no-op")
	}
	sp := l.Root("sweep", "x")
	if sp != nil {
		t.Error("nil ledger Root should return nil span")
	}
	child := sp.Child("point", "y")
	if child != nil {
		t.Error("nil span Child should return nil")
	}
	sp.End(nil) // must not panic
	if sp.ID() != 0 {
		t.Error("nil span ID should be 0")
	}
	if err := l.Close(); err != nil {
		t.Error("nil ledger Close should be a no-op")
	}
	if l.Err() != nil {
		t.Error("nil ledger Err should be nil")
	}
}

func TestLedgerDoubleEndWritesOnce(t *testing.T) {
	var buf bytes.Buffer
	l := NewLedger(&buf)
	sp := l.Root("sweep", "x")
	sp.End(nil)
	sp.End(nil)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if n := len(decodeLines(t, &buf)); n != 1 {
		t.Errorf("double End wrote %d lines, want 1", n)
	}
}
