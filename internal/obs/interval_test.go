package obs

import (
	"strings"
	"testing"
)

func TestSamplerDeltaMath(t *testing.T) {
	r := NewRegistry()
	insts := r.Counter("cpu.instructions")
	mshr := r.Gauge("mem.mshr.cpu")

	s := NewSampler(r, 1000)
	insts.Add(10)
	mshr.Set(4)
	s.Advance(500) // no boundary crossed yet
	if len(s.Samples()) != 0 {
		t.Fatalf("premature sample: %+v", s.Samples())
	}
	s.Advance(1000) // first epoch [0,1000)
	insts.Add(25)
	s.Advance(3500) // epochs [1000,2000) and [2000,3000)
	insts.Add(7)
	s.Finish(3600) // partial tail epoch [3000,3600)

	samples := s.Samples()
	if len(samples) != 4 {
		t.Fatalf("got %d samples, want 4: %+v", len(samples), samples)
	}
	wantDeltas := []uint64{10, 25, 0, 7}
	var sum uint64
	for i, sm := range samples {
		if sm.Epoch != i {
			t.Fatalf("sample %d has epoch %d", i, sm.Epoch)
		}
		if got := sm.Delta("cpu.instructions"); got != wantDeltas[i] {
			t.Fatalf("epoch %d delta = %d, want %d", i, got, wantDeltas[i])
		}
		sum += sm.Delta("cpu.instructions")
	}
	if sum != insts.Value() {
		t.Fatalf("delta sum %d != counter value %d", sum, insts.Value())
	}
	if samples[0].StartPS != 0 || samples[0].EndPS != 1000 {
		t.Fatalf("epoch 0 bounds [%d,%d)", samples[0].StartPS, samples[0].EndPS)
	}
	if samples[3].StartPS != 3000 || samples[3].EndPS != 3600 {
		t.Fatalf("tail epoch bounds [%d,%d), want [3000,3600)", samples[3].StartPS, samples[3].EndPS)
	}
	if samples[0].Gauges["mem.mshr.cpu"] != 4 {
		t.Fatalf("gauge level = %d, want 4", samples[0].Gauges["mem.mshr.cpu"])
	}

	// Finish is idempotent; Advance after Finish is ignored.
	insts.Add(100)
	s.Advance(10000)
	s.Finish(10000)
	if len(s.Samples()) != 4 {
		t.Fatalf("sampler emitted after Finish: %d samples", len(s.Samples()))
	}
}

func TestSamplerCSV(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("cpu.instructions")
	s := NewSampler(r, 100)
	s.AddDerived("ipc.fake", func(sm Sample) float64 {
		return float64(sm.Delta("cpu.instructions")) / float64(sm.DT())
	})
	c.Add(50)
	s.Advance(100)
	c.Add(30)
	s.Finish(150)

	var b strings.Builder
	if err := s.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d CSV lines, want 3:\n%s", len(lines), b.String())
	}
	if lines[0] != "epoch,start_ps,end_ps,cpu.instructions,ipc.fake" {
		t.Fatalf("header = %q", lines[0])
	}
	if lines[1] != "0,0,100,50,0.5" {
		t.Fatalf("row 0 = %q", lines[1])
	}
	if lines[2] != "1,100,150,30,0.6" {
		t.Fatalf("row 1 = %q", lines[2])
	}
}

func TestSamplerFinishWithNoActivity(t *testing.T) {
	r := NewRegistry()
	r.Counter("x")
	s := NewSampler(r, 1000)
	s.Finish(0)
	if len(s.Samples()) != 0 {
		t.Fatalf("empty run must produce no samples, got %+v", s.Samples())
	}
}
