package obs

import "time"

// HostProf attributes HOST wall-clock time to labeled code sections —
// simulator phases, memory-pipeline stages — so a slow sweep can answer
// "where does real time go" without an external profiler. Sections are
// registered once (idempotent by name) and accumulate into plain struct
// fields; FlushTo drains deltas into a Registry through the same batched
// path the simulated-time counters use, as host.<section>.ns and
// host.<section>.samples counters.
//
// Timing every event would double the cost of the hot path, so hot
// callers gate on Sample(), which is true once every `every` calls: the
// flushed numbers are a sample of host time, not a census (the .samples
// counter says how many events were timed). Coarse callers (one timing
// per simulator phase) skip the gate and call Add directly.
//
// A HostProf belongs to one simulator goroutine, like the Registry.
// Methods on a nil *HostProf are no-ops and Sample returns false, so
// disabled profiling costs one predictable nil-check branch.
type HostProf struct {
	every uint32
	tick  uint32
	names []string
	index map[string]int
	ns    []uint64
	count []uint64
	// flushed mirrors ns/count at the last FlushTo, so flushes add deltas.
	flushedNS    []uint64
	flushedCount []uint64
}

// NewHostProf returns a profiler that samples one in every `every`
// gated events; every < 1 times all of them.
func NewHostProf(every int) *HostProf {
	if every < 1 {
		every = 1
	}
	return &HostProf{every: uint32(every), index: map[string]int{}}
}

// Every returns the sampling period; 0 on nil.
func (p *HostProf) Every() int {
	if p == nil {
		return 0
	}
	return int(p.every)
}

// Section registers (or looks up) a named section and returns its id.
// Repeated registration of the same names yields the same ids, so pooled
// simulators sharing one profiler agree on the numbering. Returns -1 on
// a nil profiler (Add ignores it).
func (p *HostProf) Section(name string) int {
	if p == nil {
		return -1
	}
	if id, ok := p.index[name]; ok {
		return id
	}
	id := len(p.names)
	p.index[name] = id
	p.names = append(p.names, name)
	p.ns = append(p.ns, 0)
	p.count = append(p.count, 0)
	p.flushedNS = append(p.flushedNS, 0)
	p.flushedCount = append(p.flushedCount, 0)
	return id
}

// Sample reports whether this event should be timed, true once per
// `every` calls. Always false on nil.
func (p *HostProf) Sample() bool {
	if p == nil {
		return false
	}
	p.tick++
	if p.tick >= p.every {
		p.tick = 0
		return true
	}
	return false
}

// Add attributes d of host time to section id. No-op on nil or an
// invalid id.
func (p *HostProf) Add(id int, d time.Duration) {
	if p == nil || id < 0 || id >= len(p.ns) {
		return
	}
	p.ns[id] += uint64(d)
	p.count[id]++
}

// SectionNS returns the total nanoseconds attributed to the named
// section so far (0 if unknown or nil).
func (p *HostProf) SectionNS(name string) uint64 {
	if p == nil {
		return 0
	}
	id, ok := p.index[name]
	if !ok {
		return 0
	}
	return p.ns[id]
}

// FlushTo drains the accumulation since the last flush into reg as
// host.<section>.ns and host.<section>.samples counters. Registration is
// idempotent, so repeated flushes into the same registry reuse the same
// instruments. No-op on a nil profiler or registry.
func (p *HostProf) FlushTo(reg *Registry) {
	if p == nil || reg == nil {
		return
	}
	for id, name := range p.names {
		if d := p.ns[id] - p.flushedNS[id]; d > 0 {
			reg.Counter("host." + name + ".ns").Add(d)
			p.flushedNS[id] = p.ns[id]
		}
		if d := p.count[id] - p.flushedCount[id]; d > 0 {
			reg.Counter("host." + name + ".samples").Add(d)
			p.flushedCount[id] = p.count[id]
		}
	}
}

// Reset clears all accumulated time and the flush bookkeeping, keeping
// the registered sections. No-op on nil.
func (p *HostProf) Reset() {
	if p == nil {
		return
	}
	p.tick = 0
	for i := range p.ns {
		p.ns[i] = 0
		p.count[i] = 0
		p.flushedNS[i] = 0
		p.flushedCount[i] = 0
	}
}
