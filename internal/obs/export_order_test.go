package obs

import (
	"strings"
	"testing"
)

// Satellite: registry snapshots and text exports must iterate
// sorted-by-name so -metrics-json and /metrics output is diff-stable
// regardless of the order components registered their instruments.

func TestWriteJSONOrderIndependent(t *testing.T) {
	build := func(names []string) string {
		reg := NewRegistry()
		for i, n := range names {
			reg.Counter(n).Add(uint64(i + 1))
		}
		reg.Gauge("g.two").Set(2)
		reg.Gauge("g.one").Set(1)
		var b strings.Builder
		if err := reg.WriteJSON(&b); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}
	// Counter values follow the name, not the registration position, so
	// the two orders describe the same state.
	a := build([]string{"cpu.instructions", "dram.bytes", "noc.hops"})
	regB := NewRegistry()
	regB.Counter("noc.hops").Add(3)
	regB.Counter("cpu.instructions").Add(1)
	regB.Counter("dram.bytes").Add(2)
	regB.Gauge("g.one").Set(1)
	regB.Gauge("g.two").Set(2)
	var bb strings.Builder
	if err := regB.WriteJSON(&bb); err != nil {
		t.Fatal(err)
	}
	if a != bb.String() {
		t.Errorf("WriteJSON depends on registration order:\n%s\nvs\n%s", a, bb.String())
	}
	ci := strings.Index(a, `"cpu.instructions"`)
	di := strings.Index(a, `"dram.bytes"`)
	ni := strings.Index(a, `"noc.hops"`)
	if !(ci < di && di < ni) {
		t.Errorf("WriteJSON names not sorted: cpu@%d dram@%d noc@%d\n%s", ci, di, ni, a)
	}
}

func TestSnapshotSortedNameHelpers(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("b").Inc()
	reg.Counter("a").Inc()
	reg.Gauge("z").Set(1)
	reg.Gauge("y").Set(1)
	reg.Histogram("q").Observe(1)
	reg.Histogram("p").Observe(1)
	s := reg.Snapshot()
	if got := s.SortedCounterNames(); got[0] != "a" || got[1] != "b" {
		t.Errorf("SortedCounterNames = %v", got)
	}
	if got := s.SortedGaugeNames(); got[0] != "y" || got[1] != "z" {
		t.Errorf("SortedGaugeNames = %v", got)
	}
	if got := s.SortedHistogramNames(); got[0] != "p" || got[1] != "q" {
		t.Errorf("SortedHistogramNames = %v", got)
	}
}
