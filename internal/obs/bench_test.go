package obs

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func TestBenchReportWriteFile(t *testing.T) {
	r := NewBenchReport("2026-08-05")
	r.GoOS, r.GoArch = "linux", "amd64"
	r.Add("sim.reduction.insts_per_sec", 1.5e7, "insts/s")
	r.Add("sim.reduction.total_us", 120, "us")
	r.Add("sim.reduction.insts_per_sec", 2e7, "insts/s") // non-cost unit keeps latest

	dir := t.TempDir()
	path, err := r.WriteFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(path) != "BENCH_2026-08-05.json" {
		t.Fatalf("path = %s", path)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var got BenchReport
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	if got.Date != "2026-08-05" || len(got.Entries) != 2 {
		t.Fatalf("report = %+v", got)
	}
	// Entries are sorted by name.
	if got.Entries[0].Name != "sim.reduction.insts_per_sec" || got.Entries[0].Value != 2e7 {
		t.Fatalf("entry 0 = %+v", got.Entries[0])
	}
	if got.Entries[1].Name != "sim.reduction.total_us" {
		t.Fatalf("entry 1 = %+v", got.Entries[1])
	}
	// Repeated adds accumulate samples in arrival order.
	if s := got.Entries[0].Samples; len(s) != 2 || s[0] != 1.5e7 || s[1] != 2e7 {
		t.Fatalf("samples = %v", s)
	}
}

func TestBenchReportBestOfN(t *testing.T) {
	r := NewBenchReport("2026-08-08")
	// Cost unit: the headline is the minimum sample regardless of order,
	// so one noisy slow run cannot poison a -count=3 smoke.
	r.Add("bench/ns_op", 5.0e9, "ns/op")
	r.Add("bench/ns_op", 3.6e9, "ns/op")
	r.Add("bench/ns_op", 4.1e9, "ns/op")
	e := r.Entries[0]
	if e.Value != 3.6e9 {
		t.Fatalf("cost headline = %g, want min 3.6e9", e.Value)
	}
	if e.Min() != 3.6e9 {
		t.Fatalf("Min() = %g", e.Min())
	}
	if e.Median() != 4.1e9 {
		t.Fatalf("Median() = %g", e.Median())
	}

	// Non-cost unit: latest wins, samples still tracked.
	r.Add("sim_us", 10, "sim_us")
	r.Add("sim_us", 30, "sim_us")
	if e := r.Entries[1]; e.Value != 30 || e.Median() != 20 {
		t.Fatalf("non-cost entry = %+v median %g", e, e.Median())
	}
}

func TestBenchEntryLegacyNoSamples(t *testing.T) {
	// Entries unmarshalled from pre-sample reports must fall back to
	// Value for Min/Median so benchcmp can still compare against them.
	e := BenchEntry{Name: "x", Value: 42, Unit: "ns/op"}
	if e.Min() != 42 || e.Median() != 42 {
		t.Fatalf("legacy entry Min/Median = %g/%g", e.Min(), e.Median())
	}
}

func TestCostUnit(t *testing.T) {
	for _, u := range []string{"ns/op", "B/op", "allocs/op"} {
		if !CostUnit(u) {
			t.Errorf("CostUnit(%q) = false", u)
		}
	}
	for _, u := range []string{"sim_us", "insts/run", "critical_survived", ""} {
		if CostUnit(u) {
			t.Errorf("CostUnit(%q) = true", u)
		}
	}
}
