package obs

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func TestBenchReportWriteFile(t *testing.T) {
	r := NewBenchReport("2026-08-05")
	r.GoOS, r.GoArch = "linux", "amd64"
	r.Add("sim.reduction.insts_per_sec", 1.5e7, "insts/s")
	r.Add("sim.reduction.total_us", 120, "us")
	r.Add("sim.reduction.insts_per_sec", 2e7, "insts/s") // overwrite keeps latest

	dir := t.TempDir()
	path, err := r.WriteFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(path) != "BENCH_2026-08-05.json" {
		t.Fatalf("path = %s", path)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var got BenchReport
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	if got.Date != "2026-08-05" || len(got.Entries) != 2 {
		t.Fatalf("report = %+v", got)
	}
	// Entries are sorted by name.
	if got.Entries[0].Name != "sim.reduction.insts_per_sec" || got.Entries[0].Value != 2e7 {
		t.Fatalf("entry 0 = %+v", got.Entries[0])
	}
	if got.Entries[1].Name != "sim.reduction.total_us" {
		t.Fatalf("entry 1 = %+v", got.Entries[1])
	}
}
