package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
)

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func TestServeEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("cpu.instructions").Add(7)
	reg.Gauge("mem.mshr.outstanding.cpu").Set(3)
	reg.Histogram("mem.load_latency_ps").Observe(100)
	var pub Publisher
	pub.Publish(reg.Snapshot())

	type prog struct {
		Total int `json:"total"`
		Done  int `json:"done"`
	}
	srv, err := Serve("127.0.0.1:0", ServerConfig{
		Metrics:  pub.Latest,
		Progress: func() any { return prog{Total: 28, Done: 13} },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	code, body := get(t, base+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	for _, want := range []string{
		"# TYPE cpu_instructions counter\ncpu_instructions 7\n",
		"# TYPE mem_mshr_outstanding_cpu gauge\nmem_mshr_outstanding_cpu 3\n",
		"mem_load_latency_ps_count 1\n",
		`mem_load_latency_ps_bucket{le="+Inf"} 1`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q in:\n%s", want, body)
		}
	}

	code, body = get(t, base+"/progress")
	if code != http.StatusOK {
		t.Fatalf("/progress status %d", code)
	}
	var p prog
	if err := json.Unmarshal([]byte(body), &p); err != nil {
		t.Fatalf("/progress not JSON: %v\n%s", err, body)
	}
	if p.Total != 28 || p.Done != 13 {
		t.Errorf("/progress = %+v, want {28 13}", p)
	}

	code, body = get(t, base+"/metrics.json")
	if code != http.StatusOK {
		t.Fatalf("/metrics.json status %d", code)
	}
	var snap Snapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("/metrics.json not a snapshot: %v", err)
	}
	if snap.Counters["cpu.instructions"] != 7 {
		t.Errorf("/metrics.json counters = %v", snap.Counters)
	}

	if code, _ := get(t, base+"/debug/pprof/cmdline"); code != http.StatusOK {
		t.Errorf("/debug/pprof/cmdline status %d", code)
	}
	if code, _ := get(t, base+"/"); code != http.StatusOK {
		t.Errorf("/ status %d", code)
	}
	if code, _ := get(t, base+"/nope"); code != http.StatusNotFound {
		t.Errorf("/nope status %d, want 404", code)
	}
}

func TestServeEmptyConfig(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", ServerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()
	if code, body := get(t, base+"/metrics"); code != http.StatusOK || body != "" {
		t.Errorf("empty /metrics = %d %q", code, body)
	}
	if code, _ := get(t, base+"/progress"); code != http.StatusOK {
		t.Errorf("empty /progress status %d", code)
	}
}

func TestPublisherNilAndConcurrency(t *testing.T) {
	var p *Publisher
	p.Publish(Snapshot{}) // no-op
	if got := p.Latest(); got.Counters == nil {
		t.Error("nil publisher Latest should return an empty usable snapshot")
	}

	pub := &Publisher{}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 1000; i++ {
			pub.Publish(Snapshot{Counters: map[string]uint64{"x": uint64(i)}})
		}
	}()
	for i := 0; i < 1000; i++ {
		_ = pub.Latest()
	}
	<-done
}

func TestWritePrometheusSortedAndSanitized(t *testing.T) {
	// Register deliberately out of order: exposition must sort by name.
	reg := NewRegistry()
	reg.Counter("zeta.ops").Add(1)
	reg.Counter("alpha.ops").Add(2)
	reg.Counter("mem.l3.t0.hits").Add(3)

	var b strings.Builder
	if err := WritePrometheus(&b, reg.Snapshot()); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	ia, iz := strings.Index(out, "alpha_ops"), strings.Index(out, "zeta_ops")
	im := strings.Index(out, "mem_l3_t0_hits")
	if ia < 0 || iz < 0 || im < 0 {
		t.Fatalf("missing sanitized names in:\n%s", out)
	}
	if !(ia < im && im < iz) {
		t.Errorf("names not sorted: alpha@%d mem@%d zeta@%d", ia, im, iz)
	}

	// Diff-stability: a registry built in a different order exports the
	// same bytes.
	reg2 := NewRegistry()
	reg2.Counter("mem.l3.t0.hits").Add(3)
	reg2.Counter("alpha.ops").Add(2)
	reg2.Counter("zeta.ops").Add(1)
	var b2 strings.Builder
	if err := WritePrometheus(&b2, reg2.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if b2.String() != out {
		t.Errorf("exposition depends on registration order:\n%s\nvs\n%s", out, b2.String())
	}
}

func TestSnapshotMerge(t *testing.T) {
	a := Snapshot{Counters: map[string]uint64{"x": 1, "y": 2}}
	regB := NewRegistry()
	regB.Counter("x").Add(10)
	regB.Gauge("g").Set(5)
	h := regB.Histogram("h")
	h.Observe(3)
	h.Observe(300)
	b := regB.Snapshot()

	a.Merge(b)
	if a.Counters["x"] != 11 || a.Counters["y"] != 2 {
		t.Errorf("merged counters = %v", a.Counters)
	}
	if a.Gauges["g"] != 5 {
		t.Errorf("merged gauges = %v", a.Gauges)
	}
	mh := a.Histograms["h"]
	if mh.Count != 2 || mh.Sum != 303 {
		t.Errorf("merged histogram = %+v", mh)
	}

	// Merging again doubles the additive parts.
	a.Merge(b)
	if a.Counters["x"] != 21 {
		t.Errorf("second merge x = %d, want 21", a.Counters["x"])
	}
	if a.Histograms["h"].Count != 4 {
		t.Errorf("second merge histogram count = %d, want 4", a.Histograms["h"].Count)
	}
}
