package obs

import (
	"testing"
	"time"
)

func TestHostProfSampleCadence(t *testing.T) {
	p := NewHostProf(64)
	hits := 0
	for i := 0; i < 640; i++ {
		if p.Sample() {
			hits++
		}
	}
	if hits != 10 {
		t.Errorf("640 ticks at every=64 sampled %d, want 10", hits)
	}
	if NewHostProf(0).Every() != 1 {
		t.Error("every<1 should clamp to 1 (time everything)")
	}
}

func TestHostProfSectionsAndFlush(t *testing.T) {
	p := NewHostProf(1)
	a := p.Section("memsys.private")
	b := p.Section("memsys.l3")
	if again := p.Section("memsys.private"); again != a {
		t.Errorf("re-registration returned %d, want %d", again, a)
	}
	p.Add(a, 100*time.Nanosecond)
	p.Add(a, 50*time.Nanosecond)
	p.Add(b, 10*time.Nanosecond)
	if got := p.SectionNS("memsys.private"); got != 150 {
		t.Errorf("private ns = %d, want 150", got)
	}

	reg := NewRegistry()
	p.FlushTo(reg)
	if v := reg.CounterValue("host.memsys.private.ns"); v != 150 {
		t.Errorf("flushed private ns = %d, want 150", v)
	}
	if v := reg.CounterValue("host.memsys.private.samples"); v != 2 {
		t.Errorf("flushed private samples = %d, want 2", v)
	}
	if v := reg.CounterValue("host.memsys.l3.ns"); v != 10 {
		t.Errorf("flushed l3 ns = %d, want 10", v)
	}

	// A second flush with no new activity adds nothing; with activity it
	// adds only the delta.
	p.FlushTo(reg)
	if v := reg.CounterValue("host.memsys.private.ns"); v != 150 {
		t.Errorf("idempotent flush changed ns to %d", v)
	}
	p.Add(a, 25*time.Nanosecond)
	p.FlushTo(reg)
	if v := reg.CounterValue("host.memsys.private.ns"); v != 175 {
		t.Errorf("delta flush ns = %d, want 175", v)
	}

	// Registry reset + continued profiling: counters restart from zero
	// and receive only post-reset deltas (the per-cell pattern).
	reg.Reset()
	p.Add(a, 5*time.Nanosecond)
	p.FlushTo(reg)
	if v := reg.CounterValue("host.memsys.private.ns"); v != 5 {
		t.Errorf("post-reset flush ns = %d, want 5", v)
	}
}

func TestHostProfReset(t *testing.T) {
	p := NewHostProf(4)
	id := p.Section("x")
	p.Add(id, time.Microsecond)
	p.Sample()
	p.Reset()
	if p.SectionNS("x") != 0 {
		t.Error("Reset should clear accumulated ns")
	}
	if again := p.Section("x"); again != id {
		t.Error("Reset should keep registered sections")
	}
	reg := NewRegistry()
	p.FlushTo(reg)
	if v := reg.CounterValue("host.x.ns"); v != 0 {
		t.Errorf("flush after reset wrote %d", v)
	}
}

func TestHostProfNilSafety(t *testing.T) {
	var p *HostProf
	if p.Sample() {
		t.Error("nil Sample should be false")
	}
	if p.Section("x") != -1 {
		t.Error("nil Section should be -1")
	}
	p.Add(0, time.Second) // must not panic
	p.Add(-1, time.Second)
	p.FlushTo(NewRegistry())
	p.Reset()
	if p.Every() != 0 {
		t.Error("nil Every should be 0")
	}
	if p.SectionNS("x") != 0 {
		t.Error("nil SectionNS should be 0")
	}
}
