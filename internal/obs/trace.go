package obs

import (
	"encoding/json"
	"io"
	"sort"
)

// Tracer records structured simulation events in the Chrome trace-event
// format (the JSON-array flavour), so a run opens directly in Perfetto or
// chrome://tracing. Spans ("X" complete events) show phases and
// transfers; instants ("i") mark point events like page faults and
// ownership operations; counter events ("C") plot numeric series.
//
// Timestamps are simulated picoseconds; the trace-event format counts in
// microseconds, so the writer scales by 1e-6 (fractional microseconds are
// allowed by the format and preserved by Perfetto).
//
// Tracks are (pid, tid) pairs; the simulator registers one tid per
// hardware unit (sim, cpu, gpu, fabric) via SetTrack, and the writer
// emits the matching thread_name metadata so the UI labels the rows.
type Tracer struct {
	events []traceEvent
	tracks map[int]string
}

// Track ids the simulator uses. Callers may register additional tracks.
const (
	TrackSim    = 0
	TrackCPU    = 1
	TrackGPU    = 2
	TrackFabric = 3
)

const tracePID = 1

type traceEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat,omitempty"`
	Ph    string         `json:"ph"`
	TS    float64        `json:"ts"`
	Dur   *float64       `json:"dur,omitempty"`
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

// NewTracer returns an empty tracer with the default track names set.
func NewTracer() *Tracer {
	t := &Tracer{tracks: map[int]string{}}
	t.SetTrack(TrackSim, "sim")
	t.SetTrack(TrackCPU, "cpu")
	t.SetTrack(TrackGPU, "gpu")
	t.SetTrack(TrackFabric, "fabric")
	return t
}

// SetTrack names a track (tid). No-op on a nil tracer.
func (t *Tracer) SetTrack(tid int, name string) {
	if t == nil {
		return
	}
	t.tracks[tid] = name
}

func psToUS(ps uint64) float64 { return float64(ps) / 1e6 }

// Span records a complete event covering [startPS, endPS] on the track.
// No-op on a nil tracer.
func (t *Tracer) Span(tid int, name, category string, startPS, endPS uint64, args map[string]any) {
	if t == nil {
		return
	}
	dur := psToUS(endPS) - psToUS(startPS)
	t.events = append(t.events, traceEvent{
		Name: name, Cat: category, Ph: "X", TS: psToUS(startPS), Dur: &dur,
		PID: tracePID, TID: tid, Args: args,
	})
}

// Instant records a point event at tsPS on the track (thread-scoped).
// No-op on a nil tracer.
func (t *Tracer) Instant(tid int, name, category string, tsPS uint64, args map[string]any) {
	if t == nil {
		return
	}
	t.events = append(t.events, traceEvent{
		Name: name, Cat: category, Ph: "i", TS: psToUS(tsPS),
		PID: tracePID, TID: tid, Scope: "t", Args: args,
	})
}

// Counter records a counter sample at tsPS: Perfetto renders each named
// counter as its own numeric track. No-op on a nil tracer.
func (t *Tracer) Counter(name string, tsPS uint64, value float64) {
	if t == nil {
		return
	}
	t.events = append(t.events, traceEvent{
		Name: name, Ph: "C", TS: psToUS(tsPS),
		PID: tracePID, TID: TrackSim, Args: map[string]any{"value": value},
	})
}

// Len returns the number of recorded events (metadata excluded).
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	return len(t.events)
}

// Events returns summaries of the recorded events, for tests and tools.
type EventSummary struct {
	Name string
	Ph   string
	TID  int
	TSPS uint64
}

// Summaries lists (name, phase-type, track, timestamp) for every recorded
// event in emission order.
func (t *Tracer) Summaries() []EventSummary {
	if t == nil {
		return nil
	}
	out := make([]EventSummary, len(t.events))
	for i, e := range t.events {
		out[i] = EventSummary{Name: e.Name, Ph: e.Ph, TID: e.TID, TSPS: uint64(e.TS * 1e6)}
	}
	return out
}

// WriteJSON writes the trace in the Chrome trace-event JSON-object
// format: process/thread metadata first, then the events in emission
// order. The output is deterministic for a deterministic simulation.
func (t *Tracer) WriteJSON(w io.Writer) error {
	if t == nil {
		return nil
	}
	all := make([]traceEvent, 0, len(t.events)+1+len(t.tracks))
	all = append(all, traceEvent{
		Name: "process_name", Ph: "M", PID: tracePID, TID: 0,
		Args: map[string]any{"name": "hetsim"},
	})
	tids := make([]int, 0, len(t.tracks))
	for tid := range t.tracks {
		tids = append(tids, tid)
	}
	sort.Ints(tids)
	for _, tid := range tids {
		all = append(all, traceEvent{
			Name: "thread_name", Ph: "M", PID: tracePID, TID: tid,
			Args: map[string]any{"name": t.tracks[tid]},
		})
	}
	all = append(all, t.events...)
	doc := struct {
		DisplayTimeUnit string       `json:"displayTimeUnit"`
		TraceEvents     []traceEvent `json:"traceEvents"`
	}{DisplayTimeUnit: "ns", TraceEvents: all}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(doc)
}
