// Package obs is the simulator-wide observability layer: a metrics
// registry of named counters, gauges and log-scaled latency histograms, an
// interval sampler that turns the registry into a per-epoch time series,
// and a Chrome-trace-event tracer whose output opens directly in
// Perfetto / chrome://tracing.
//
// The package is deliberately dependency-free (standard library only) so
// every substrate package — cpu, gpu, mem, cache, dram, noc, comm,
// addrspace — can import it without cycles. Timestamps are plain uint64
// picosecond counts, the same unit as clock.Time; callers convert with a
// uint64() cast.
//
// Every metric type is nil-safe: methods on a nil *Counter, *Gauge,
// *Histogram, *Sampler or *Tracer are no-ops, and a nil *Registry hands
// out nil metrics. A component therefore registers its instruments
// unconditionally at construction and bumps them unconditionally on the
// hot path; when observability is off, every bump is a single predictable
// nil-check branch (benchmarked to be within noise of the uninstrumented
// simulator).
//
// Metrics within one Registry are not synchronised: a registry belongs to
// one simulator instance and is bumped from that simulator's goroutine
// only. Concurrent sweeps (harness.RunCaseStudies) give each cell its own
// simulator and hence its own registry.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math/bits"
)

// Counter is a monotonically increasing metric (events, bytes, hits).
type Counter struct {
	name string
	v    uint64
}

// Inc adds one. No-op on a nil counter.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v++
}

// Add adds n. No-op on a nil counter.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v += n
}

// Value returns the current count; zero on a nil counter.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v
}

// Name returns the registered name; empty on a nil counter.
func (c *Counter) Name() string {
	if c == nil {
		return ""
	}
	return c.name
}

// Gauge is a point-in-time level (outstanding misses, bytes in flight).
type Gauge struct {
	name string
	v    uint64
}

// Set stores v. No-op on a nil gauge.
func (g *Gauge) Set(v uint64) {
	if g == nil {
		return
	}
	g.v = v
}

// Value returns the current level; zero on a nil gauge.
func (g *Gauge) Value() uint64 {
	if g == nil {
		return 0
	}
	return g.v
}

// Name returns the registered name; empty on a nil gauge.
func (g *Gauge) Name() string {
	if g == nil {
		return ""
	}
	return g.name
}

// histBuckets is the number of power-of-two histogram buckets: bucket i
// holds observations v with bits.Len64(v) == i, i.e. bucket 0 is v == 0
// and bucket i >= 1 covers [2^(i-1), 2^i).
const histBuckets = 65

// Histogram is a log2-bucketed distribution, sized for picosecond
// latencies: 65 buckets cover the full uint64 range with one branch-free
// index computation per observation.
type Histogram struct {
	name    string
	buckets [histBuckets]uint64
	count   uint64
	sum     uint64
}

// Observe records v. No-op on a nil histogram.
func (h *Histogram) Observe(v uint64) {
	if h == nil {
		return
	}
	h.buckets[bits.Len64(v)]++
	h.count++
	h.sum += v
}

// Count returns the number of observations; zero on a nil histogram.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count
}

// Sum returns the total of all observations; zero on a nil histogram.
func (h *Histogram) Sum() uint64 {
	if h == nil {
		return 0
	}
	return h.sum
}

// Mean returns the average observation, or 0 with no observations.
func (h *Histogram) Mean() float64 {
	if h == nil || h.count == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.count)
}

// Name returns the registered name; empty on a nil histogram.
func (h *Histogram) Name() string {
	if h == nil {
		return ""
	}
	return h.name
}

// HistAccum is a plain histogram accumulator for hot-path batching:
// replay code observes into a HistAccum held in an ordinary struct (no
// registry indirection) and folds the accumulated buckets into a
// registered Histogram at phase boundaries with Histogram.Merge. The
// zero value is ready to use.
type HistAccum struct {
	buckets [histBuckets]uint64
	count   uint64
	sum     uint64
}

// Observe records v.
func (a *HistAccum) Observe(v uint64) {
	a.buckets[bits.Len64(v)]++
	a.count++
	a.sum += v
}

// Count returns the number of accumulated observations.
func (a *HistAccum) Count() uint64 { return a.count }

// Sum returns the total of the accumulated observations.
func (a *HistAccum) Sum() uint64 { return a.sum }

// Reset clears the accumulator.
func (a *HistAccum) Reset() { *a = HistAccum{} }

// Merge folds an accumulator's observations into the histogram and
// resets the accumulator, so repeated flushes never double-count. On a
// nil histogram the observations are discarded (the accumulator is
// still cleared).
func (h *Histogram) Merge(a *HistAccum) {
	if h != nil {
		for i, n := range a.buckets {
			h.buckets[i] += n
		}
		h.count += a.count
		h.sum += a.sum
	}
	a.Reset()
}

// Bucket is one non-empty histogram bucket: Count observations fell in
// [Lo, Hi).
type Bucket struct {
	Lo, Hi uint64
	Count  uint64
}

// Buckets returns the non-empty buckets in ascending order.
func (h *Histogram) Buckets() []Bucket {
	if h == nil {
		return nil
	}
	var out []Bucket
	for i, n := range h.buckets {
		if n == 0 {
			continue
		}
		b := Bucket{Count: n}
		if i > 0 {
			b.Lo = 1 << (i - 1)
			if i < 64 {
				b.Hi = 1 << i
			} else {
				b.Hi = ^uint64(0)
			}
		} else {
			b.Hi = 1
		}
		out = append(out, b)
	}
	return out
}

// Registry is a named collection of metrics. Registration is idempotent:
// asking for an existing name returns the existing instrument, so two
// components may safely share a metric. Asking a name already registered
// as a different metric kind panics — that is always a wiring bug.
type Registry struct {
	counters   []*Counter
	gauges     []*Gauge
	histograms []*Histogram
	index      map[string]interface{}
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{index: make(map[string]interface{})}
}

// Counter registers (or looks up) the named counter. A nil registry
// returns a nil counter, whose methods are no-ops.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	if m, ok := r.index[name]; ok {
		c, ok := m.(*Counter)
		if !ok {
			panic(fmt.Sprintf("obs: %q already registered as %T, not a counter", name, m))
		}
		return c
	}
	c := &Counter{name: name}
	r.counters = append(r.counters, c)
	r.index[name] = c
	return c
}

// Gauge registers (or looks up) the named gauge. A nil registry returns a
// nil gauge.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	if m, ok := r.index[name]; ok {
		g, ok := m.(*Gauge)
		if !ok {
			panic(fmt.Sprintf("obs: %q already registered as %T, not a gauge", name, m))
		}
		return g
	}
	g := &Gauge{name: name}
	r.gauges = append(r.gauges, g)
	r.index[name] = g
	return g
}

// Histogram registers (or looks up) the named histogram. A nil registry
// returns a nil histogram.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	if m, ok := r.index[name]; ok {
		h, ok := m.(*Histogram)
		if !ok {
			panic(fmt.Sprintf("obs: %q already registered as %T, not a histogram", name, m))
		}
		return h
	}
	h := &Histogram{name: name}
	r.histograms = append(r.histograms, h)
	r.index[name] = h
	return h
}

// Reset zeroes every registered metric's value, keeping the instruments
// themselves (and every pointer components hold to them) intact. No-op
// on a nil registry. Used when a simulator is recycled between runs.
func (r *Registry) Reset() {
	if r == nil {
		return
	}
	for _, c := range r.counters {
		c.v = 0
	}
	for _, g := range r.gauges {
		g.v = 0
	}
	for _, h := range r.histograms {
		h.buckets = [histBuckets]uint64{}
		h.count = 0
		h.sum = 0
	}
}

// LookupCounter returns the named counter if registered.
func (r *Registry) LookupCounter(name string) (*Counter, bool) {
	if r == nil {
		return nil, false
	}
	c, ok := r.index[name].(*Counter)
	return c, ok
}

// CounterValue returns the named counter's value, or 0 if unregistered.
func (r *Registry) CounterValue(name string) uint64 {
	c, _ := r.LookupCounter(name)
	return c.Value()
}

// Counters returns every registered counter in registration order.
func (r *Registry) Counters() []*Counter {
	if r == nil {
		return nil
	}
	return r.counters
}

// Gauges returns every registered gauge in registration order.
func (r *Registry) Gauges() []*Gauge {
	if r == nil {
		return nil
	}
	return r.gauges
}

// Histograms returns every registered histogram in registration order.
func (r *Registry) Histograms() []*Histogram {
	if r == nil {
		return nil
	}
	return r.histograms
}

// HistogramSnapshot is the exported form of one histogram.
type HistogramSnapshot struct {
	Count   uint64   `json:"count"`
	Sum     uint64   `json:"sum"`
	Mean    float64  `json:"mean"`
	Buckets []Bucket `json:"buckets,omitempty"`
}

// Snapshot is a point-in-time copy of every metric, ready for JSON
// export. Map keys serialise in sorted order, so output is deterministic.
type Snapshot struct {
	Counters   map[string]uint64            `json:"counters"`
	Gauges     map[string]uint64            `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot captures the current value of every registered metric.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{Counters: map[string]uint64{}}
	if r == nil {
		return s
	}
	for _, c := range r.counters {
		s.Counters[c.name] = c.v
	}
	if len(r.gauges) > 0 {
		s.Gauges = map[string]uint64{}
		for _, g := range r.gauges {
			s.Gauges[g.name] = g.v
		}
	}
	if len(r.histograms) > 0 {
		s.Histograms = map[string]HistogramSnapshot{}
		for _, h := range r.histograms {
			s.Histograms[h.name] = HistogramSnapshot{
				Count: h.count, Sum: h.sum, Mean: h.Mean(), Buckets: h.Buckets(),
			}
		}
	}
	return s
}

// WriteJSON writes the registry snapshot as indented JSON.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}
