package obs

import "testing"

// The disabled path must be a single predictable branch: these two
// benches quantify the nil-sink cost against a live counter.

func BenchmarkCounterIncNil(b *testing.B) {
	var c *Counter
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkCounterIncLive(b *testing.B) {
	c := NewRegistry().Counter("bench.counter")
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
	if c.Value() != uint64(b.N) {
		b.Fatalf("counter = %d, want %d", c.Value(), b.N)
	}
}

func BenchmarkHistogramObserveNil(b *testing.B) {
	var h *Histogram
	for i := 0; i < b.N; i++ {
		h.Observe(uint64(i))
	}
}

func BenchmarkHistogramObserveLive(b *testing.B) {
	h := NewRegistry().Histogram("bench.hist")
	for i := 0; i < b.N; i++ {
		h.Observe(uint64(i))
	}
}
