package obs

import (
	"strings"
	"testing"
)

func TestRegistryRegistrationAndLookup(t *testing.T) {
	r := NewRegistry()
	c1 := r.Counter("cpu.instructions")
	c2 := r.Counter("cpu.instructions")
	if c1 != c2 {
		t.Fatal("re-registering a counter must return the same instance")
	}
	c1.Add(3)
	if got := r.CounterValue("cpu.instructions"); got != 3 {
		t.Fatalf("CounterValue = %d, want 3", got)
	}
	if _, ok := r.LookupCounter("gpu.instructions"); ok {
		t.Fatal("lookup of unregistered counter must fail")
	}
	if len(r.Counters()) != 1 {
		t.Fatalf("got %d counters, want 1", len(r.Counters()))
	}

	g := r.Gauge("mem.mshr.cpu")
	g.Set(7)
	if g.Value() != 7 {
		t.Fatalf("gauge = %d, want 7", g.Value())
	}
	if r.Gauge("mem.mshr.cpu") != g {
		t.Fatal("re-registering a gauge must return the same instance")
	}

	defer func() {
		if recover() == nil {
			t.Fatal("registering a counter name as a gauge must panic")
		}
	}()
	r.Gauge("cpu.instructions")
}

func TestNilSafety(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	g := r.Gauge("y")
	h := r.Histogram("z")
	if c != nil || g != nil || h != nil {
		t.Fatal("nil registry must hand out nil metrics")
	}
	// None of these may panic.
	c.Inc()
	c.Add(10)
	g.Set(5)
	h.Observe(123)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Mean() != 0 {
		t.Fatal("nil metrics must read as zero")
	}
	var s *Sampler
	s.Advance(100)
	s.Finish(200)
	s.AddDerived("d", nil)
	if s.Samples() != nil {
		t.Fatal("nil sampler must have no samples")
	}
	if err := s.WriteCSV(nil); err != nil {
		t.Fatal(err)
	}
	var tr *Tracer
	tr.Span(TrackCPU, "a", "b", 0, 1, nil)
	tr.Instant(TrackGPU, "a", "b", 0, nil)
	tr.Counter("c", 0, 1)
	if tr.Len() != 0 {
		t.Fatal("nil tracer must have no events")
	}
	if err := tr.WriteJSON(nil); err != nil {
		t.Fatal(err)
	}
	snap := r.Snapshot()
	if len(snap.Counters) != 0 {
		t.Fatal("nil registry snapshot must be empty")
	}
}

func TestHistogramBucketing(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat")
	// 0 -> bucket [0,1); 1 -> [1,2); 2,3 -> [2,4); 1000 -> [512,1024).
	for _, v := range []uint64{0, 1, 2, 3, 1000} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if h.Sum() != 1006 {
		t.Fatalf("sum = %d, want 1006", h.Sum())
	}
	want := []Bucket{
		{Lo: 0, Hi: 1, Count: 1},
		{Lo: 1, Hi: 2, Count: 1},
		{Lo: 2, Hi: 4, Count: 2},
		{Lo: 512, Hi: 1024, Count: 1},
	}
	got := h.Buckets()
	if len(got) != len(want) {
		t.Fatalf("got %d buckets %v, want %d", len(got), got, len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("bucket %d = %+v, want %+v", i, got[i], want[i])
		}
	}
	if h.Mean() != 1006.0/5 {
		t.Fatalf("mean = %g", h.Mean())
	}
}

func TestRegistryWriteJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("a.count").Add(2)
	r.Gauge("b.level").Set(9)
	r.Histogram("c.lat").Observe(100)
	var b strings.Builder
	if err := r.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{`"a.count": 2`, `"b.level": 9`, `"c.lat"`, `"count": 1`} {
		if !strings.Contains(out, want) {
			t.Fatalf("JSON missing %q:\n%s", want, out)
		}
	}
}
