package obs

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

func buildTestTrace() *Tracer {
	tr := NewTracer()
	tr.Span(TrackSim, "sequential", "phase", 0, 2_000_000, map[string]any{"phase": 0})
	tr.Span(TrackFabric, "transfer", "comm", 2_000_000, 5_500_000, map[string]any{"bytes": 4096})
	tr.Instant(TrackGPU, "lib-pf", "fault", 5_500_000, nil)
	tr.Instant(TrackCPU, "release", "ownership", 2_000_000, nil)
	tr.Counter("dram.bw_gbps", 5_500_000, 10.4)
	return tr
}

func TestTraceGolden(t *testing.T) {
	var b bytes.Buffer
	if err := buildTestTrace().WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "trace_golden.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, b.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b.Bytes(), want) {
		t.Fatalf("trace JSON differs from golden (re-run with -update to refresh):\ngot:\n%s\nwant:\n%s", b.Bytes(), want)
	}
}

func TestTraceIsValidChromeFormat(t *testing.T) {
	var b bytes.Buffer
	if err := buildTestTrace().WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		DisplayTimeUnit string           `json:"displayTimeUnit"`
		TraceEvents     []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(b.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	// Metadata (process + 4 default tracks) plus the 5 recorded events.
	if len(doc.TraceEvents) != 10 {
		t.Fatalf("got %d events, want 10", len(doc.TraceEvents))
	}
	phases := map[string]int{}
	for _, e := range doc.TraceEvents {
		ph, _ := e["ph"].(string)
		phases[ph]++
		if _, ok := e["ts"]; !ok && ph != "M" {
			t.Fatalf("event missing ts: %v", e)
		}
	}
	if phases["M"] != 5 || phases["X"] != 2 || phases["i"] != 2 || phases["C"] != 1 {
		t.Fatalf("phase mix = %v", phases)
	}
	// The span's timestamp must be in microseconds: 2_000_000 ps = 2 us.
	for _, e := range doc.TraceEvents {
		if e["name"] == "transfer" {
			if ts := e["ts"].(float64); ts != 2 {
				t.Fatalf("transfer ts = %v us, want 2", ts)
			}
			if dur := e["dur"].(float64); dur != 3.5 {
				t.Fatalf("transfer dur = %v us, want 3.5", dur)
			}
		}
	}
}

func TestTracerSummaries(t *testing.T) {
	tr := buildTestTrace()
	sums := tr.Summaries()
	if len(sums) != 5 {
		t.Fatalf("got %d summaries, want 5", len(sums))
	}
	if sums[0].Name != "sequential" || sums[0].Ph != "X" || sums[0].TID != TrackSim {
		t.Fatalf("summary 0 = %+v", sums[0])
	}
	if sums[2].Name != "lib-pf" || sums[2].Ph != "i" || sums[2].TID != TrackGPU || sums[2].TSPS != 5_500_000 {
		t.Fatalf("summary 2 = %+v", sums[2])
	}
}
