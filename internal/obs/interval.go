package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Sample is one epoch of the interval time series: counter deltas and
// gauge levels over [StartPS, EndPS) of simulated time.
type Sample struct {
	Epoch   int               `json:"epoch"`
	StartPS uint64            `json:"start_ps"`
	EndPS   uint64            `json:"end_ps"`
	Deltas  map[string]uint64 `json:"deltas"`
	Gauges  map[string]uint64 `json:"gauges,omitempty"`
}

// DT returns the epoch length in picoseconds.
func (s Sample) DT() uint64 { return s.EndPS - s.StartPS }

// Delta returns the named counter's delta over the epoch (0 if absent).
func (s Sample) Delta(name string) uint64 { return s.Deltas[name] }

// DerivedColumn computes a per-epoch value (IPC, miss rate, bandwidth)
// from the raw deltas of that epoch.
type DerivedColumn struct {
	Name string
	F    func(Sample) float64
}

// Sampler snapshots a registry's counters at fixed simulated-time
// boundaries, building a per-epoch delta time series. The simulator calls
// Advance whenever its clock moves and Finish once at the end of the run;
// deltas accumulated between two Advance calls are attributed to the
// first epoch boundary crossed, and the Finish epoch absorbs the tail, so
// the column sums always equal the final counter values exactly.
type Sampler struct {
	reg      *Registry
	interval uint64
	start    uint64 // current epoch's start
	next     uint64 // current epoch's end boundary
	prev     map[string]uint64
	samples  []Sample
	derived  []DerivedColumn
	finished bool
}

// NewSampler returns a sampler over reg with the given epoch length in
// picoseconds. Panics if intervalPS is zero.
func NewSampler(reg *Registry, intervalPS uint64) *Sampler {
	if intervalPS == 0 {
		panic("obs: zero sampling interval")
	}
	return &Sampler{
		reg:      reg,
		interval: intervalPS,
		next:     intervalPS,
		prev:     make(map[string]uint64),
	}
}

// Interval returns the epoch length in picoseconds; zero on nil.
func (s *Sampler) Interval() uint64 {
	if s == nil {
		return 0
	}
	return s.interval
}

// AddDerived registers a derived per-epoch column, appended after the raw
// counter columns in CSV output. Registering a name again replaces the
// earlier function, so a sampler shared by pooled simulators keeps one
// column per name. No-op on a nil sampler.
func (s *Sampler) AddDerived(name string, f func(Sample) float64) {
	if s == nil {
		return
	}
	for i := range s.derived {
		if s.derived[i].Name == name {
			s.derived[i].F = f
			return
		}
	}
	s.derived = append(s.derived, DerivedColumn{Name: name, F: f})
}

// Advance moves simulated time forward to nowPS, emitting one sample per
// epoch boundary crossed. Counter activity since the previous call is
// attributed to the first epoch emitted. No-op on a nil sampler or when
// nowPS has not reached the next boundary.
func (s *Sampler) Advance(nowPS uint64) {
	if s == nil || s.finished {
		return
	}
	for nowPS >= s.next {
		s.emit(s.start, s.next)
		s.start = s.next
		s.next += s.interval
	}
}

// Finish emits the final (possibly partial) epoch ending at endPS,
// capturing all counter activity not yet attributed. After Finish the
// sampler ignores further Advance calls. No-op on a nil sampler.
func (s *Sampler) Finish(endPS uint64) {
	if s == nil || s.finished {
		return
	}
	s.Advance(endPS)
	if endPS > s.start || s.dirty() {
		end := endPS
		if end < s.start {
			end = s.start
		}
		s.emit(s.start, end)
	}
	s.finished = true
}

// dirty reports whether any counter moved since the last emitted sample.
func (s *Sampler) dirty() bool {
	for _, c := range s.reg.Counters() {
		if c.v != s.prev[c.name] {
			return true
		}
	}
	return false
}

func (s *Sampler) emit(start, end uint64) {
	sm := Sample{
		Epoch:   len(s.samples),
		StartPS: start,
		EndPS:   end,
		Deltas:  make(map[string]uint64),
	}
	for _, c := range s.reg.Counters() {
		sm.Deltas[c.name] = c.v - s.prev[c.name]
		s.prev[c.name] = c.v
	}
	if gs := s.reg.Gauges(); len(gs) > 0 {
		sm.Gauges = make(map[string]uint64)
		for _, g := range gs {
			sm.Gauges[g.name] = g.v
		}
	}
	s.samples = append(s.samples, sm)
}

// Reset returns the sampler to its just-constructed state — no emitted
// samples, the first epoch starting at 0 — keeping the interval and the
// derived columns. Call it together with the registry's Reset when a
// pooled simulator is recycled between runs: the sampler's notion of
// "previous counter value" is cleared with it, so post-reset deltas
// still sum exactly to the post-reset totals. No-op on a nil sampler.
func (s *Sampler) Reset() {
	if s == nil {
		return
	}
	s.start = 0
	s.next = s.interval
	s.samples = nil // emitted samples may be retained by callers
	for k := range s.prev {
		delete(s.prev, k)
	}
	s.finished = false
}

// Samples returns the emitted time series.
func (s *Sampler) Samples() []Sample {
	if s == nil {
		return nil
	}
	return s.samples
}

// columns returns the CSV column names after the three epoch columns:
// counters and gauges in registration order, then derived columns.
func (s *Sampler) columns() (counters, gauges []string) {
	for _, c := range s.reg.Counters() {
		counters = append(counters, c.name)
	}
	for _, g := range s.reg.Gauges() {
		gauges = append(gauges, g.name)
	}
	return counters, gauges
}

// WriteCSV writes the time series as CSV: one row per epoch, columns
// epoch, start_ps, end_ps, one delta column per counter, one level column
// per gauge, then the derived columns.
func (s *Sampler) WriteCSV(w io.Writer) error {
	if s == nil {
		return nil
	}
	counters, gauges := s.columns()
	var b strings.Builder
	b.WriteString("epoch,start_ps,end_ps")
	for _, name := range counters {
		b.WriteByte(',')
		b.WriteString(name)
	}
	for _, name := range gauges {
		b.WriteByte(',')
		b.WriteString(name)
	}
	for _, d := range s.derived {
		b.WriteByte(',')
		b.WriteString(d.Name)
	}
	b.WriteByte('\n')
	for _, sm := range s.samples {
		b.WriteString(strconv.Itoa(sm.Epoch))
		b.WriteByte(',')
		b.WriteString(strconv.FormatUint(sm.StartPS, 10))
		b.WriteByte(',')
		b.WriteString(strconv.FormatUint(sm.EndPS, 10))
		for _, name := range counters {
			b.WriteByte(',')
			b.WriteString(strconv.FormatUint(sm.Deltas[name], 10))
		}
		for _, name := range gauges {
			b.WriteByte(',')
			b.WriteString(strconv.FormatUint(sm.Gauges[name], 10))
		}
		for _, d := range s.derived {
			b.WriteByte(',')
			fmt.Fprintf(&b, "%g", d.F(sm))
		}
		b.WriteByte('\n')
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteJSON writes the time series as an indented JSON array of samples.
func (s *Sampler) WriteJSON(w io.Writer) error {
	if s == nil {
		return nil
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s.samples)
}
