package sim

import (
	"bytes"
	"encoding/csv"
	"strconv"
	"strings"
	"testing"

	"heteromem/internal/obs"
	"heteromem/internal/systems"
	"heteromem/internal/workload"
)

// runInstrumented runs kernel on sys with the full observability stack
// attached and returns the result plus the sinks.
func runInstrumented(t *testing.T, sys systems.System, kernel string, intervalPS uint64) (Result, *obs.Registry, *obs.Sampler, *obs.Tracer) {
	t.Helper()
	reg := obs.NewRegistry()
	sp := obs.NewSampler(reg, intervalPS)
	tr := obs.NewTracer()
	s, err := NewWithOptions(sys, Options{Metrics: reg, Sampler: sp, Tracer: tr})
	if err != nil {
		t.Fatalf("NewWithOptions: %v", err)
	}
	res, err := s.Run(workload.MustGenerate(kernel))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return res, reg, sp, tr
}

// TestIntervalDeltasSumToResult is the acceptance check: summing the
// per-epoch instruction deltas over the whole time series must reproduce
// the final aggregate instruction counts exactly — the Finish tail epoch
// guarantees no activity is lost.
func TestIntervalDeltasSumToResult(t *testing.T) {
	for _, sys := range []systems.System{systems.LRB(), systems.CPUGPU(), systems.GMAC()} {
		t.Run(sys.Name, func(t *testing.T) {
			res, reg, sp, _ := runInstrumented(t, sys, "reduction", 30_000_000) // 30 us epochs
			var cpuSum, gpuSum uint64
			for _, sm := range sp.Samples() {
				cpuSum += sm.Delta("cpu.instructions")
				gpuSum += sm.Delta("gpu.instructions")
			}
			if want := res.CPU.Instructions; cpuSum != want {
				t.Errorf("cpu.instructions deltas sum to %d, Result has %d", cpuSum, want)
			}
			if want := res.GPU.Instructions; gpuSum != want {
				t.Errorf("gpu.instructions deltas sum to %d, Result has %d", gpuSum, want)
			}
			if got := reg.CounterValue("cpu.instructions"); got != res.CPU.Instructions {
				t.Errorf("registry cpu.instructions = %d, Result has %d", got, res.CPU.Instructions)
			}
			if len(sp.Samples()) < 2 {
				t.Errorf("expected multiple epochs, got %d", len(sp.Samples()))
			}
		})
	}
}

// TestMetricsMatchResultStats cross-checks registry counters against the
// independently maintained Result statistics.
func TestMetricsMatchResultStats(t *testing.T) {
	res, reg, _, _ := runInstrumented(t, systems.LRB(), "reduction", 1_000_000_000)
	checks := []struct {
		name string
		want uint64
	}{
		{"cpu.memops", res.CPU.MemOps},
		{"gpu.memops", res.GPU.MemOps},
		{"gpu.line_requests", res.GPU.LineRequests},
		{"mem.accesses.cpu", res.Mem.Accesses[0]},
		{"mem.accesses.gpu", res.Mem.Accesses[1]},
		{"mem.l2.hits", res.Mem.L2Hits},
		{"noc.messages", res.Ring.Messages},
		{"dram.requests", res.DRAM.Requests},
		{"comm.transfers", res.Fabric.Transfers},
		{"comm.bytes", res.Fabric.Bytes},
		{"addrspace.first_touch_faults", res.Space.FirstTouchFaults},
		{"addrspace.ownership_changes", res.Space.OwnershipChanges},
	}
	for _, c := range checks {
		if got := reg.CounterValue(c.name); got != c.want {
			t.Errorf("%s = %d, Result stats have %d", c.name, got, c.want)
		}
	}
}

// TestTraceContents runs reduction on LRB and checks the trace holds the
// acceptance-criteria events: phase spans plus fault and ownership
// instants, and that it serialises to valid Chrome trace-event JSON.
func TestTraceContents(t *testing.T) {
	_, _, _, tr := runInstrumented(t, systems.LRB(), "reduction", 1_000_000_000)
	byName := map[string]int{}
	byPh := map[string]int{}
	for _, e := range tr.Summaries() {
		byName[e.Name]++
		byPh[e.Ph]++
	}
	for _, want := range []string{
		"phase0.transfer", "phase1.parallel",
		"lib-pf", "acquire-ownership", "release-ownership", "cache-flush",
		"transfer.h2d",
	} {
		if byName[want] == 0 {
			t.Errorf("trace missing event %q (have %v)", want, byName)
		}
	}
	if byPh["X"] == 0 || byPh["i"] == 0 {
		t.Errorf("trace needs spans and instants, got phases %v", byPh)
	}

	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	if !strings.Contains(buf.String(), `"traceEvents"`) {
		t.Errorf("trace JSON missing traceEvents array")
	}
}

// TestIntervalCSV checks the CSV export parses, carries the derived
// columns, and its cpu.instructions column sums to the aggregate.
func TestIntervalCSV(t *testing.T) {
	res, _, sp, _ := runInstrumented(t, systems.LRB(), "reduction", 30_000_000)
	var buf bytes.Buffer
	if err := sp.WriteCSV(&buf); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	rows, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatalf("parsing CSV: %v", err)
	}
	if len(rows) < 3 {
		t.Fatalf("expected header plus multiple epochs, got %d rows", len(rows))
	}
	col := -1
	for i, name := range rows[0] {
		if name == "cpu.instructions" {
			col = i
		}
	}
	if col < 0 {
		t.Fatalf("no cpu.instructions column in %v", rows[0])
	}
	for _, want := range []string{"ipc.cpu", "ipc.gpu", "l2.miss_rate", "l3.miss_rate", "dram.bw_gbs", "noc.util"} {
		found := false
		for _, name := range rows[0] {
			if name == want {
				found = true
			}
		}
		if !found {
			t.Errorf("derived column %q missing from header %v", want, rows[0])
		}
	}
	var sum uint64
	for _, row := range rows[1:] {
		v, err := strconv.ParseUint(row[col], 10, 64)
		if err != nil {
			t.Fatalf("bad delta %q: %v", row[col], err)
		}
		sum += v
	}
	if sum != res.CPU.Instructions {
		t.Errorf("CSV cpu.instructions sums to %d, Result has %d", sum, res.CPU.Instructions)
	}
}

// TestUninstrumentedRunUnchanged checks that attaching observability does
// not perturb simulated timing: the model must be measurement-invariant.
func TestUninstrumentedRunUnchanged(t *testing.T) {
	plain := MustNew(systems.LRB())
	resPlain, err := plain.Run(workload.MustGenerate("reduction"))
	if err != nil {
		t.Fatalf("plain run: %v", err)
	}
	resObs, _, _, _ := runInstrumented(t, systems.LRB(), "reduction", 30_000_000)
	if resPlain.Total() != resObs.Total() {
		t.Errorf("instrumentation changed timing: plain %v, instrumented %v", resPlain.Total(), resObs.Total())
	}
	if resPlain.CPU.Instructions != resObs.CPU.Instructions {
		t.Errorf("instrumentation changed instruction count: %d vs %d",
			resPlain.CPU.Instructions, resObs.CPU.Instructions)
	}
}
