package sim

import (
	"strings"
	"testing"

	"heteromem/internal/obs"
	"heteromem/internal/systems"
	"heteromem/internal/workload"
)

// Host-time self-profiling measures real time only: a profiled run must
// be bit-identical to an unprofiled one, and the host.* counters must
// appear in the registry after flushes.
func TestHostProfDoesNotPerturbResults(t *testing.T) {
	p, err := workload.Open("reduction")
	if err != nil {
		t.Fatal(err)
	}
	sys := systems.CaseStudies()[0]

	plain, err := New(sys)
	if err != nil {
		t.Fatal(err)
	}
	want, err := plain.Run(p)
	if err != nil {
		t.Fatal(err)
	}

	reg := obs.NewRegistry()
	hp := obs.NewHostProf(1) // time every pipeline run: worst case
	profiled, err := NewWithOptions(sys, Options{Metrics: reg, HostProf: hp})
	if err != nil {
		t.Fatal(err)
	}
	got, err := profiled.Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("profiled run diverged:\n got %+v\nwant %+v", got, want)
	}

	snap := reg.Snapshot()
	var hostNames []string
	for name := range snap.Counters {
		if strings.HasPrefix(name, "host.") {
			hostNames = append(hostNames, name)
		}
	}
	if len(hostNames) == 0 {
		t.Fatal("no host.* counters flushed")
	}
	var phaseNS, stageSamples uint64
	for _, k := range []string{"sequential", "parallel", "transfer"} {
		phaseNS += snap.Counters["host.sim.phase."+k+".ns"]
	}
	if phaseNS == 0 {
		t.Error("phase host attribution is zero")
	}
	for name, v := range snap.Counters {
		if strings.HasPrefix(name, "host.memsys.") && strings.HasSuffix(name, ".samples") {
			stageSamples += v
		}
	}
	if stageSamples == 0 {
		t.Error("no memsys stage samples recorded at every=1")
	}
}

// A pooled, reset simulator with host profiling stays bit-identical to a
// fresh one, and per-cell registry resets leave host counters consistent.
func TestHostProfAcrossReset(t *testing.T) {
	p, err := workload.Open("reduction")
	if err != nil {
		t.Fatal(err)
	}
	sys := systems.CaseStudies()[1]
	reg := obs.NewRegistry()
	hp := obs.NewHostProf(8)
	s, err := NewWithOptions(sys, Options{Metrics: reg, HostProf: hp})
	if err != nil {
		t.Fatal(err)
	}
	first, err := s.Run(p)
	if err != nil {
		t.Fatal(err)
	}
	s.Reset()
	reg.Reset()
	second, err := s.Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if first != second {
		t.Errorf("reset run diverged under host profiling:\n got %+v\nwant %+v", second, first)
	}
}
