// Package sim is the top-level simulator: it binds a system configuration
// (address-space model + communication fabric + programming-model
// behaviours) to the baseline cores and memory hierarchy, executes a
// workload phase program, and splits execution time into the paper's
// three categories — sequential, parallel and communication (Figure 5).
package sim

import (
	"fmt"
	"time"

	"heteromem/internal/addrspace"
	"heteromem/internal/arena"
	"heteromem/internal/clock"
	"heteromem/internal/comm"
	"heteromem/internal/config"
	"heteromem/internal/cpu"
	"heteromem/internal/dram"
	"heteromem/internal/gpu"
	"heteromem/internal/isa"
	"heteromem/internal/locality"
	"heteromem/internal/mem"
	"heteromem/internal/model"
	"heteromem/internal/noc"
	"heteromem/internal/obs"
	"heteromem/internal/systems"
	"heteromem/internal/trace"
	"heteromem/internal/workload"
)

// Result is the outcome of running one kernel on one system.
type Result struct {
	System string
	Kernel string
	// MemTech names the terminal memory technology behind the L3
	// (dram, hbm, nvm, dram-cache).
	MemTech string
	// Translation labels the address-translation front-end the run used
	// ("off" for the free-translation baseline, otherwise e.g.
	// "xlat-priv-2m").
	Translation string

	// The Figure 5 breakdown. Total = Sequential + Parallel + Communication.
	Sequential    clock.Duration
	Parallel      clock.Duration
	Communication clock.Duration

	CPU    cpu.Stats
	GPU    gpu.Stats
	Mem    mem.Stats
	Fabric comm.Stats
	// FabricName identifies the communication mechanism the run used
	// (pcie, pcie-async, pci-aperture, memctrl, ideal).
	FabricName string
	Space      addrspace.Stats
	Ring       noc.Stats
	DRAM       dram.Stats

	// PageFaults counts lib-pf events (LRB first-touch).
	PageFaults int
	// OwnershipOps counts injected acquire/release actions.
	OwnershipOps int
}

// Total returns the end-to-end execution time.
func (r Result) Total() clock.Duration {
	return r.Sequential + r.Parallel + r.Communication
}

// CommFraction returns communication time as a fraction of the total.
func (r Result) CommFraction() float64 {
	t := r.Total()
	if t == 0 {
		return 0
	}
	return float64(r.Communication) / float64(t)
}

// Normalized returns (seq, par, comm) as fractions of base's total, the
// form Figure 5 plots.
func (r Result) Normalized(base Result) (seq, par, com float64) {
	t := float64(base.Total())
	if t == 0 {
		return 0, 0, 0
	}
	return float64(r.Sequential) / t, float64(r.Parallel) / t, float64(r.Communication) / t
}

// Options tweak a simulator away from the baseline, for ablations.
type Options struct {
	// Hierarchy overrides the Table II memory configuration.
	Hierarchy *mem.Config
	// DisableCoalescing issues one GPU memory request per SIMD lane.
	DisableCoalescing bool
	// Locality applies an explicit locality-management scheme: the push
	// instructions the scheme requires for the program's objects are
	// injected ahead of execution (Section II-B / V-D). Nil runs fully
	// implicit management.
	Locality *locality.Scheme

	// Arena, when non-nil, backs the simulator's construction-time
	// metadata (cache tag/state arrays, MSHR files, core replay rings)
	// with bump-allocated slabs instead of individual heap allocations.
	// The simulator keeps no reference to the arena; the caller owns its
	// lifecycle and must not Reset it while simulators built from it are
	// still in use. Sweep workers build their pooled simulators out of
	// one arena each (see internal/harness).
	Arena *arena.Arena

	// Metrics attaches an observability registry: every component
	// registers its counters under its namespace (cpu.*, gpu.*, mem.*,
	// noc.*, dram.*, comm.*, addrspace.*) and bumps them as it runs. Nil
	// leaves the hot path uninstrumented.
	Metrics *obs.Registry
	// Sampler snapshots Metrics at fixed simulated-time intervals,
	// building the per-epoch time series. Must be built over the same
	// registry as Metrics. The simulator registers the standard derived
	// columns (IPC, miss rates, DRAM bandwidth, ring utilisation) on it.
	Sampler *obs.Sampler
	// Tracer records phase/transfer spans and programming-model instants
	// in Chrome trace-event form.
	Tracer *obs.Tracer
	// HostProf attaches sampled host wall-clock self-profiling: per-phase
	// attribution (sim.phase.*) plus sampled per-stage attribution in the
	// memory pipeline (memsys.*), flushed into Metrics as host.* counters
	// through the batched path. Requires Metrics to be visible anywhere.
	HostProf *obs.HostProf
	// Publish, when non-nil, receives a registry snapshot at every phase
	// boundary, giving concurrent readers (the live introspection server)
	// a race-free mid-run view of Metrics.
	Publish *obs.Publisher
}

// Simulator runs kernels on one system configuration. A Simulator is
// stateful across phases of a run (caches stay warm, first-touch state
// persists); call Reset between measurements — a reset simulator
// produces bit-identical results to a freshly constructed one, so sweep
// harnesses pool simulators instead of rebuilding them per cell.
type Simulator struct {
	sys     systems.System
	hier    *mem.Hierarchy
	cpuCore *cpu.Core
	gpuCore *gpu.Core
	fabric  comm.Fabric
	space   *addrspace.Space

	// proto is the programming-model protocol: it owns all model state
	// (pending acquires, queued first-touch faults, the async-ready
	// horizon) and is hooked at phase boundaries. env is the machine
	// surface it acts through; env.res is repointed at each Run's result.
	proto model.Protocol
	env   protoEnv

	// sharedHandle is the space object ownership operations act on.
	sharedHandle addrspace.Object
	// scheme is the locality-management scheme to apply, if any.
	scheme *locality.Scheme

	// Observability sinks; all nil-safe, so an uninstrumented run pays
	// one predictable branch per bump.
	metrics *obs.Registry
	sampler *obs.Sampler
	tracer  *obs.Tracer

	// Host-time self-profiling (Options.HostProf): phase sections are
	// timed unconditionally (one clock pair per phase), pipeline stages
	// by sampling inside memsys.Chain.
	hostProf                *obs.HostProf
	secSeq, secPar, secXfer int
	// pub receives phase-boundary registry snapshots for concurrent
	// readers; runSpan, when set (SetRunSpan), parents one host-time
	// ledger span per executed phase.
	pub     *obs.Publisher
	runSpan *obs.Span

	// Scratch buffers reused across phases and runs so the replay path
	// does not allocate per phase: the parallel-phase prologue and the
	// locality-scheme push streams are rebuilt in place each time.
	prologue  trace.Stream
	cpuPushes trace.Stream
	gpuPushes trace.Stream

	// forceSequenced pins parallel phases to the lock-step co-simulation
	// loop even when overlapCertified would allow goroutine overlap; the
	// A/B bit-identity tests use it to produce the reference timing.
	forceSequenced bool
}

// New returns a simulator for the system with the Table II baseline.
func New(sys systems.System) (*Simulator, error) {
	return NewWithOptions(sys, Options{})
}

// NewWithOptions returns a simulator with ablation options applied. The
// system is validated first, so incoherent design points (ownership over
// a space without ownership control, fault granularity without faults)
// fail here with the system's name rather than misbehaving mid-run.
func NewWithOptions(sys systems.System, opts Options) (*Simulator, error) {
	if err := sys.Validate(); err != nil {
		return nil, fmt.Errorf("sim: %w", err)
	}
	memCfg := mem.TableII()
	if opts.Hierarchy != nil {
		memCfg = *opts.Hierarchy
	}
	if !sys.MemTech.IsZero() {
		// The system's mem_tech axis selects the hierarchy's terminal
		// backend; an explicit Hierarchy override may still pre-set it.
		memCfg.Tech = sys.MemTech
	}
	if !sys.Translation.IsZero() {
		// The translation axis front-ends the hierarchy's access path.
		// The "auto" IOMMU mode resolves from the fabric here: only the
		// system knows whether its GPU sits behind an I/O interconnect.
		memCfg.Xlat = sys.Translation.WithIOMMUResolved(sys.Fabric.RemoteDevice())
	}
	hier, err := mem.NewIn(opts.Arena, memCfg)
	if err != nil {
		return nil, fmt.Errorf("sim: %w", err)
	}
	space, err := addrspace.New(sys.Model, 4096)
	if err != nil {
		return nil, fmt.Errorf("sim: %w", err)
	}
	proto, err := sys.NewProtocol()
	if err != nil {
		return nil, fmt.Errorf("sim: %w", err)
	}
	s := &Simulator{
		sys:    sys,
		hier:   hier,
		fabric: sys.NewFabric(hier.DRAM()),
		space:  space,
		proto:  proto,
	}
	s.env.s = s
	s.cpuCore = cpu.NewIn(opts.Arena, config.BaselineCPU(), hier, sys.Params.Latency)
	s.gpuCore = gpu.NewIn(opts.Arena, config.BaselineGPU(), hier, sys.Params.Latency, memCfg.SWCacheLat)
	s.gpuCore.Coalesce = !opts.DisableCoalescing
	if opts.Locality != nil {
		if err := opts.Locality.Validate(sys.Model); err != nil {
			return nil, fmt.Errorf("sim: %w", err)
		}
		s.scheme = opts.Locality
	}
	if opts.Metrics != nil {
		s.metrics = opts.Metrics
		s.hier.Instrument(opts.Metrics)
		s.space.Instrument(opts.Metrics)
		s.fabric.Instrument(opts.Metrics)
		s.cpuCore.Instrument(opts.Metrics)
		s.gpuCore.Instrument(opts.Metrics)
	}
	s.sampler = opts.Sampler
	s.tracer = opts.Tracer
	if opts.HostProf != nil {
		s.hostProf = opts.HostProf
		s.hier.InstrumentHost(opts.HostProf)
		s.secSeq = opts.HostProf.Section("sim.phase.sequential")
		s.secPar = opts.HostProf.Section("sim.phase.parallel")
		s.secXfer = opts.HostProf.Section("sim.phase.transfer")
	}
	s.pub = opts.Publish
	s.registerDerived()
	return s, nil
}

// SetRunSpan sets (or clears, with nil) the host-time ledger span the
// next Run's phases will be children of: each executed phase writes a
// kind-"phase" span under it, completing the sweep → design-point →
// kernel → phase hierarchy. The caller owns and Ends the parent span.
func (s *Simulator) SetRunSpan(span *obs.Span) { s.runSpan = span }

// registerDerived adds the standard per-epoch derived columns to the
// sampler: they need configuration knowledge (clock periods, tile and
// link counts) that only the simulator has.
func (s *Simulator) registerDerived() {
	if s.sampler == nil {
		return
	}
	cpuCycle := float64(config.BaselineCPU().Domain().PeriodPS())
	gpuCycle := float64(config.BaselineGPU().Domain().PeriodPS())
	ipc := func(counter string, cycle float64) func(obs.Sample) float64 {
		return func(sm obs.Sample) float64 {
			if sm.DT() == 0 {
				return 0
			}
			return float64(sm.Delta(counter)) * cycle / float64(sm.DT())
		}
	}
	s.sampler.AddDerived("ipc.cpu", ipc("cpu.instructions", cpuCycle))
	s.sampler.AddDerived("ipc.gpu", ipc("gpu.instructions", gpuCycle))
	s.sampler.AddDerived("l2.miss_rate", func(sm obs.Sample) float64 {
		h, m := sm.Delta("mem.cpu.l2.hits"), sm.Delta("mem.cpu.l2.misses")
		if h+m == 0 {
			return 0
		}
		return float64(m) / float64(h+m)
	})
	tiles := s.hier.Config().L3Tiles
	s.sampler.AddDerived("l3.miss_rate", func(sm obs.Sample) float64 {
		var h, m uint64
		for t := 0; t < tiles; t++ {
			h += sm.Delta(fmt.Sprintf("mem.l3.t%d.hits", t))
			m += sm.Delta(fmt.Sprintf("mem.l3.t%d.misses", t))
		}
		if h+m == 0 {
			return 0
		}
		return float64(m) / float64(h+m)
	})
	s.sampler.AddDerived("dram.bw_gbs", func(sm obs.Sample) float64 {
		if sm.DT() == 0 {
			return 0
		}
		// bytes/ps * 1e12 = bytes/s; /1e9 = GB/s.
		return float64(sm.Delta("dram.bytes")) * 1000 / float64(sm.DT())
	})
	links := float64(s.hier.Ring().Links())
	s.sampler.AddDerived("noc.util", func(sm obs.Sample) float64 {
		if sm.DT() == 0 {
			return 0
		}
		return float64(sm.Delta("noc.link_busy_ps")) / (float64(sm.DT()) * links)
	})
}

// MustNew is New but panics on configuration error.
func MustNew(sys systems.System) *Simulator {
	s, err := New(sys)
	if err != nil {
		panic(err)
	}
	return s
}

// Reset returns the simulator to its just-constructed state so the next
// Run starts cold: hierarchy (caches, ring, DRAM, MSHRs, scratchpad,
// directory), cores, fabric, address space, programming-model state and
// every attached metric are cleared. Instruments stay wired.
func (s *Simulator) Reset() {
	s.hier.Reset()
	s.cpuCore.Reset()
	s.fabric.Reset()
	s.space.Reset()
	s.sharedHandle = addrspace.Object{}
	s.proto.Reset()
	s.metrics.Reset()
	s.sampler.Reset()
}

// flushObs drains the batched hot-path counters into the registry so
// interval samples and registry reads observe them. Core counters flush
// when each Execution ends (and mid-phase in the co-simulation loop);
// this covers the hierarchy and its components, plus the host-time
// self-profiler. A no-op when the run is uninstrumented.
func (s *Simulator) flushObs() {
	if s.metrics == nil {
		return
	}
	s.hier.FlushObs()
	s.hostProf.FlushTo(s.metrics)
}

// publishObs hands the current registry snapshot to concurrent readers.
// Called at phase boundaries only — snapshots allocate, so the
// co-simulation inner loop never publishes.
func (s *Simulator) publishObs() {
	if s.pub == nil {
		return
	}
	s.pub.Publish(s.metrics.Snapshot())
}

// phaseSection maps a phase kind onto its host-profiler section.
func (s *Simulator) phaseSection(k workload.PhaseKind) int {
	switch k {
	case workload.Sequential:
		return s.secSeq
	case workload.Parallel:
		return s.secPar
	default:
		return s.secXfer
	}
}

// Hierarchy exposes the memory system for inspection.
func (s *Simulator) Hierarchy() *mem.Hierarchy { return s.hier }

// Space exposes the address space for inspection.
func (s *Simulator) Space() *addrspace.Space { return s.space }

// Metrics returns the attached observability registry (nil when the run
// is uninstrumented).
func (s *Simulator) Metrics() *obs.Registry { return s.metrics }

// allocate registers the program's objects with the address space so the
// run accounts for the model's page-table maintenance. Regions the model
// does not provide degrade to the accessing PU's private space, exactly
// as a programmer would restructure the allocation.
func (s *Simulator) allocate(p *workload.Program) error {
	for _, o := range p.Objects {
		r := o.Region
		if !s.space.SupportsRegion(r) {
			if o.User == mem.GPU {
				r = addrspace.GPUPrivate
			} else {
				r = addrspace.CPUPrivate
			}
		}
		obj, err := s.space.Alloc(uint64(o.Size), r)
		if err != nil {
			return err
		}
		if obj.Region == addrspace.Shared && s.sharedHandle.Size == 0 {
			s.sharedHandle = obj
		}
	}
	return nil
}

// Run executes the program and returns its timing breakdown.
func (s *Simulator) Run(p *workload.Program) (Result, error) {
	res := Result{
		System: s.sys.Name, Kernel: p.Name,
		MemTech:     s.hier.TechKind().String(),
		Translation: s.sys.Translation.Label(),
	}
	if err := p.Validate(); err != nil {
		return res, fmt.Errorf("sim: %w", err)
	}
	if err := s.allocate(p); err != nil {
		return res, fmt.Errorf("sim: allocating %s on %s: %w", p.Name, s.sys.Name, err)
	}
	s.env.res = &res
	now := clock.Time(0)
	now = s.applyLocality(p, now, &res)
	s.flushObs()
	s.sampler.Advance(uint64(now))
	for i := range p.Phases {
		ph := &p.Phases[i]
		phaseStart := now
		var phaseSpan *obs.Span
		if s.runSpan != nil {
			phaseSpan = s.runSpan.Child("phase", fmt.Sprintf("phase%d.%s", i, ph.Kind))
		}
		var hostStart time.Time
		if s.hostProf != nil {
			hostStart = time.Now()
		}
		var err error
		switch ph.Kind {
		case workload.Sequential:
			now = s.runSequential(ph, now, &res)
		case workload.Parallel:
			now = s.runParallel(ph, now, &res)
		case workload.Transfer:
			now, err = s.runTransfer(ph, now, &res)
		default:
			err = fmt.Errorf("sim: unknown phase kind %v", ph.Kind)
		}
		if s.hostProf != nil {
			s.hostProf.Add(s.phaseSection(ph.Kind), time.Since(hostStart))
		}
		if err != nil {
			phaseSpan.End(map[string]any{"err": err.Error()})
			return res, fmt.Errorf("sim: %s phase %d on %s: %w", p.Name, i, s.sys.Name, err)
		}
		phaseSpan.End(map[string]any{"sim_ps": uint64(now) - uint64(phaseStart)})
		s.tracer.Span(obs.TrackSim, fmt.Sprintf("phase%d.%s", i, ph.Kind), "phase",
			uint64(phaseStart), uint64(now), nil)
		s.flushObs()
		s.sampler.Advance(uint64(now))
		s.publishObs()
	}
	// Program end is a synchronisation point: outstanding asynchronous
	// copies must land before the program completes.
	now = s.proto.SyncPoint(&s.env, now)
	s.flushObs()
	s.sampler.Finish(uint64(now))
	s.publishObs()
	res.Mem = s.hier.Stats()
	res.Fabric = s.fabric.Stats()
	res.FabricName = s.fabric.Name()
	res.Space = s.space.Stats()
	res.Ring = s.hier.Ring().Stats()
	res.DRAM = s.hier.DRAM().Stats()
	return res, nil
}

// applyLocality injects the scheme's explicit push placements at program
// start: the paper's Section V-D observation is that locality management
// changes performance only through these additional instructions.
func (s *Simulator) applyLocality(p *workload.Program, now clock.Time, res *Result) clock.Time {
	if s.scheme == nil {
		return now
	}
	s.cpuPushes, s.gpuPushes = s.cpuPushes[:0], s.gpuPushes[:0]
	for _, op := range locality.Plan(*s.scheme, p.Objects) {
		in := trace.Inst{Kind: isa.Push, Addr: op.Addr, Size: op.Size, PushLevel: op.Level}
		if op.PU == mem.CPU {
			s.cpuPushes = append(s.cpuPushes, in)
		} else {
			s.gpuPushes = append(s.gpuPushes, in)
		}
	}
	end := now
	if len(s.cpuPushes) > 0 {
		cEnd, cst := s.cpuCore.RunStream(s.cpuPushes, now)
		addCPUStats(&res.CPU, cst)
		end = clock.Max(end, cEnd)
	}
	if len(s.gpuPushes) > 0 {
		gEnd, gst := s.gpuCore.RunStream(s.gpuPushes, now)
		addGPUStats(&res.GPU, gst)
		end = clock.Max(end, gEnd)
	}
	res.Sequential += end.Sub(now)
	return end
}

func (s *Simulator) runSequential(ph *workload.Phase, now clock.Time, res *Result) clock.Time {
	end, st := s.cpuCore.Run(ph.CPUSource(), now)
	res.Sequential += st.Duration - st.CommTime
	res.Communication += st.CommTime
	addCPUStats(&res.CPU, st)
	return end
}

func (s *Simulator) runParallel(ph *workload.Phase, now clock.Time, res *Result) clock.Time {
	start := now
	gpuStart := start

	// Programming-model events at kernel entry (e.g. LRB's ownership
	// acquire and queued first-touch faults) arrive as a GPU prologue
	// stream from the protocol.
	prologue := s.proto.KernelEntry(&s.env, start, s.prologue[:0])
	s.prologue = prologue // keep any growth for the next phase
	if len(prologue) > 0 {
		end, st := s.gpuCore.RunStream(prologue, gpuStart)
		s.tracer.Span(obs.TrackGPU, "prologue", "model", uint64(gpuStart), uint64(end), nil)
		gpuStart = end
		addGPUStats(&res.GPU, st)
	}

	// Co-simulate the two halves: repeatedly advance whichever core is
	// behind in simulated time up to the other's clock, so their traffic
	// interleaves on the shared hierarchy (ring links, L3 tiles, DRAM) in
	// time order instead of one core reserving everything first.
	ge := s.gpuCore.Begin(ph.GPUSource(), gpuStart)
	ce := s.cpuCore.Begin(ph.CPUSource(), start)
	const forever = clock.Time(^uint64(0))
	switch {
	case s.overlapCertified(ph):
		// Certified interaction-free: at least one half is core-local
		// (touches nothing outside its own core) and no shared
		// observability sink is attached, so the two halves cannot
		// exchange information through the hierarchy, the fabric, or a
		// metrics registry. Advancing them on separate goroutines is then
		// bit-identical to the interleaved loop below: chunked StepUntil
		// calls compose (StepUntil(t1); StepUntil(t2) ≡ StepUntil(t2))
		// when nothing mutates shared state between chunks, and here
		// nothing can. The channel close orders the worker's writes
		// before the joins and the End calls below, which run in the
		// same fixed order as the sequenced path.
		done := make(chan struct{})
		if ph.GPUCoreLocal() {
			go func() {
				defer close(done)
				ge.StepUntil(forever)
			}()
			ce.StepUntil(forever)
		} else {
			go func() {
				defer close(done)
				ce.StepUntil(forever)
			}()
			ge.StepUntil(forever)
		}
		<-done
	default:
		s.runCoSim(ge, ce)
	}
	gpuEnd, gst := ge.End()
	cpuEnd, cst := ce.End()
	addCPUStats(&res.CPU, cst)
	addGPUStats(&res.GPU, gst)
	s.tracer.Span(obs.TrackCPU, "cpu.parallel", "compute", uint64(start), uint64(cpuEnd), nil)
	s.tracer.Span(obs.TrackGPU, "gpu.parallel", "compute", uint64(gpuStart), uint64(gpuEnd), nil)

	// Communication inside a parallel phase counts only where it is
	// exposed on the critical path: a GPU-side delay (async-copy wait,
	// ownership acquire, page faults, in-trace comm ops) that hides under
	// a longer CPU half costs nothing — that is exactly how GMAC hides
	// its copies (Section V-A).
	gpuDelay := gpuStart.Sub(start) + gst.CommTime
	cpuDelay := cst.CommTime
	var exposed clock.Duration
	if gpuEnd > cpuEnd {
		exposed += minDur(gpuDelay, gpuEnd.Sub(cpuEnd))
	}
	if cpuEnd > gpuEnd {
		exposed += minDur(cpuDelay, cpuEnd.Sub(gpuEnd))
	}

	end := clock.Max(cpuEnd, gpuEnd)
	span := end.Sub(start)
	if span > exposed {
		res.Parallel += span - exposed
	}
	res.Communication += exposed
	return end
}

// runCoSim advances the two halves of a parallel phase in lock step:
// repeatedly step whichever core is behind in simulated time up to the
// other's clock, so their traffic interleaves on the shared hierarchy in
// time order. This is the general path — it is correct for any pair of
// halves — and the fallback whenever overlapCertified declines.
func (s *Simulator) runCoSim(ge *gpu.Execution, ce *cpu.Execution) {
	const forever = clock.Time(^uint64(0))
	for !ge.Done() || !ce.Done() {
		switch {
		case ge.Done():
			ce.StepUntil(forever)
		case ce.Done():
			ge.StepUntil(forever)
		case ge.Now() <= ce.Now():
			ge.StepUntil(ce.Now())
		default:
			ce.StepUntil(ge.Now())
		}
		if s.sampler != nil {
			// Drain the batched counters so the epoch deltas match
			// per-event bumping exactly.
			ce.FlushObs()
			ge.FlushObs()
			s.flushObs()
			lo := ge.Now()
			if ce.Now() < lo {
				lo = ce.Now()
			}
			s.sampler.Advance(uint64(lo))
		}
	}
}

// overlapCertified reports whether a parallel phase's halves may run on
// separate goroutines with a result bit-identical to runCoSim. The
// certification rule is deliberately conservative — every condition must
// hold, and any doubt falls back to the sequenced path:
//
//  1. At least one half is core-local (workload.Phase.CPUCoreLocal /
//     GPUCoreLocal): every one of its instructions executes entirely
//     inside its own core, so it can neither observe nor disturb the
//     hierarchy, ring, DRAM, fabric, or the other core.
//  2. No observability sink is attached. Metrics counters, samplers,
//     tracers, host profilers, publishers and run spans are shared
//     mutable state the two goroutines would race on; an instrumented
//     run always takes the sequenced path.
//  3. Flush-based coherence only (no directory). The directory is
//     consulted per miss, and although a core-local half never misses,
//     declining keeps the rule auditable: nothing coherence-related can
//     run concurrently at all.
func (s *Simulator) overlapCertified(ph *workload.Phase) bool {
	if s.forceSequenced {
		return false
	}
	if s.metrics != nil || s.sampler != nil || s.tracer != nil ||
		s.hostProf != nil || s.pub != nil || s.runSpan != nil {
		return false
	}
	if s.hier.Directory() != nil {
		return false
	}
	return ph.CPUCoreLocal() || ph.GPUCoreLocal()
}

func minDur(a, b clock.Duration) clock.Duration {
	if a < b {
		return a
	}
	return b
}

func (s *Simulator) runTransfer(ph *workload.Phase, now clock.Time, res *Result) (clock.Time, error) {
	if ph.Dir == workload.DeviceToHost {
		// Kernel return: a protocol whose results already live in a space
		// the CPU can address elides the bulk copy — LRB hands ownership
		// back to the CPU, GMAC waits at its return-synchronisation point.
		end, handled, err := s.proto.KernelReturn(&s.env, now)
		if handled || err != nil {
			return end, err
		}
	} else {
		// Before a host-to-device copy the protocol charges its release
		// costs and queues kernel-entry work (LRB's ownership release and
		// first-touch faults).
		var err error
		if now, err = s.proto.BeforeTransfer(&s.env, ph.Addr, ph.Bytes, now); err != nil {
			return now, err
		}
	}

	if s.fabric.Async() {
		// The host blocks only for the driver call that enqueues the
		// copy; the data moves in the background and the GPU consumes it
		// page by page as it arrives (ADSM's lazy transfer), so only sync
		// points wait on the protocol's async-ready horizon.
		launch := s.fabric.Launch()
		res.Communication += launch
		now = now.Add(launch)
		done := s.fabric.Transfer(ph.Bytes, now)
		s.tracer.Span(obs.TrackFabric, "transfer."+ph.Dir.String(), "comm",
			uint64(now), uint64(done), map[string]any{"bytes": ph.Bytes, "async": true})
		s.proto.AfterTransfer(&s.env, done)
		return now, nil
	}
	done := s.fabric.Transfer(ph.Bytes, now)
	s.tracer.Span(obs.TrackFabric, "transfer."+ph.Dir.String(), "comm",
		uint64(now), uint64(done), map[string]any{"bytes": ph.Bytes})
	s.proto.AfterTransfer(&s.env, done)
	res.Communication += done.Sub(now)
	return done, nil
}

func addCPUStats(dst *cpu.Stats, src cpu.Stats) {
	dst.Instructions += src.Instructions
	dst.Branches += src.Branches
	dst.Mispredicts += src.Mispredicts
	dst.MemOps += src.MemOps
	dst.CommOps += src.CommOps
	dst.PushOps += src.PushOps
	dst.CommTime += src.CommTime
	dst.Duration += src.Duration
}

func addGPUStats(dst *gpu.Stats, src gpu.Stats) {
	dst.Instructions += src.Instructions
	dst.Branches += src.Branches
	dst.MemOps += src.MemOps
	dst.LineRequests += src.LineRequests
	dst.SWHits += src.SWHits
	dst.SWMisses += src.SWMisses
	dst.CommOps += src.CommOps
	dst.PushOps += src.PushOps
	dst.CommTime += src.CommTime
	dst.Duration += src.Duration
}
