package sim

import (
	"reflect"
	"testing"

	"heteromem/internal/isa"
	"heteromem/internal/obs"
	"heteromem/internal/systems"
	"heteromem/internal/trace"
	"heteromem/internal/workload"
)

// computeOnlyGPU returns a materialized GPU-half stream containing only
// core-local instructions (compute, branches, a barrier) — certified to
// never leave the GPU core.
func computeOnlyGPU(n int) trace.Stream {
	s := make(trace.Stream, 0, n)
	for i := 0; len(s) < n; i++ {
		pc := uint64(0x800000 + i*16)
		s = append(s,
			trace.Inst{PC: pc, Kind: isa.SIMDFP, Lanes: 8},
			trace.Inst{PC: pc + 4, Kind: isa.SIMDALU, Dep1: 1, Lanes: 8},
			trace.Inst{PC: pc + 8, Kind: isa.ALU},
			trace.Inst{PC: pc + 12, Kind: isa.Branch, Taken: i%7 != 0},
		)
	}
	s = append(s, trace.Inst{PC: 0x8ffff0, Kind: isa.Barrier})
	return s[:n]
}

// memHeavyCPU returns a CPU-half stream that exercises the shared
// hierarchy: strided loads and stores over a footprint that spills the
// private levels, mixed with compute.
func memHeavyCPU(n int) trace.Stream {
	s := make(trace.Stream, 0, n)
	const base = 1 << 21
	for i := 0; len(s) < n; i++ {
		pc := uint64(0x400000 + i*16)
		addr := uint64(base + (i*832)%(1<<20))
		s = append(s,
			trace.Inst{PC: pc, Kind: isa.Load, Addr: addr, Size: 8},
			trace.Inst{PC: pc + 4, Kind: isa.ALU, Dep1: 1},
			trace.Inst{PC: pc + 8, Kind: isa.Store, Addr: addr + 64, Size: 8, Dep1: 1},
			trace.Inst{PC: pc + 12, Kind: isa.Branch, Taken: true},
		)
	}
	return s[:n]
}

// overlapProgram builds a program whose single parallel phase has a
// memory-heavy CPU half and a compute-only (core-local) GPU half, the
// shape that qualifies for certified goroutine overlap.
func overlapProgram() *workload.Program {
	return &workload.Program{
		Name:    "overlap-probe",
		Pattern: "fully-parallel",
		Phases: []workload.Phase{
			{Kind: workload.Parallel, CPU: memHeavyCPU(4000), GPU: computeOnlyGPU(6000)},
		},
	}
}

// TestOverlapBitIdentity is the A/B gate for the certified parallel
// path: for every case-study system, the goroutine-overlapped execution
// must produce a Result bit-identical to the lock-step co-simulation.
// Under -race this also exercises the concurrent path for data races.
func TestOverlapBitIdentity(t *testing.T) {
	p := overlapProgram()
	for _, sys := range systems.CaseStudies() {
		t.Run(sys.Name, func(t *testing.T) {
			seq := MustNew(sys)
			seq.forceSequenced = true
			want, err := seq.Run(p)
			if err != nil {
				t.Fatal(err)
			}

			par := MustNew(sys)
			if ph := &p.Phases[0]; !ph.GPUCoreLocal() {
				t.Fatal("compute-only GPU half not classified core-local")
			}
			got, err := par.Run(p)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("overlapped run diverged from sequenced run:\n got %+v\nwant %+v", got, want)
			}
		})
	}
}

// TestOverlapBitIdentityCPULocal covers the mirrored shape: the CPU half
// core-local, the GPU half with memory traffic (the built-in kernels'
// GPU bodies all touch memory, so reuse one from workload.Generate).
func TestOverlapBitIdentityCPULocal(t *testing.T) {
	ref := workload.MustGenerate("reduction")
	var gpuHalf trace.Stream
	for i := range ref.Phases {
		if ref.Phases[i].Kind == workload.Parallel {
			gpuHalf = ref.Phases[i].GPU
			break
		}
	}
	cpuHalf := make(trace.Stream, 0, 5000)
	for i := 0; len(cpuHalf) < 5000; i++ {
		pc := uint64(0x400000 + i*8)
		cpuHalf = append(cpuHalf,
			trace.Inst{PC: pc, Kind: isa.FP},
			trace.Inst{PC: pc + 4, Kind: isa.Branch, Taken: true, Dep1: 1},
		)
	}
	p := &workload.Program{
		Name:    "overlap-probe-cpu",
		Pattern: "fully-parallel",
		Phases: []workload.Phase{
			{Kind: workload.Parallel, CPU: cpuHalf, GPU: gpuHalf},
		},
	}
	if ph := &p.Phases[0]; !ph.CPUCoreLocal() || ph.GPUCoreLocal() {
		t.Fatalf("classification: cpu=%v gpu=%v, want true/false", ph.CPUCoreLocal(), ph.GPUCoreLocal())
	}
	for _, sys := range systems.CaseStudies() {
		t.Run(sys.Name, func(t *testing.T) {
			seq := MustNew(sys)
			seq.forceSequenced = true
			want, err := seq.Run(p)
			if err != nil {
				t.Fatal(err)
			}
			got, err := MustNew(sys).Run(p)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("overlapped run diverged from sequenced run:\n got %+v\nwant %+v", got, want)
			}
		})
	}
}

// TestOverlapCertificationDeclines pins the conservative side of the
// rule: instrumented simulators and generator-backed phases never take
// the concurrent path.
func TestOverlapCertificationDeclines(t *testing.T) {
	sys := systems.CPUGPU()

	s := MustNew(sys)
	ph := &overlapProgram().Phases[0]
	if !s.overlapCertified(ph) {
		t.Fatal("uninstrumented sim should certify a core-local half")
	}

	opened := workload.MustOpen("reduction")
	for i := range opened.Phases {
		if opened.Phases[i].Kind != workload.Parallel {
			continue
		}
		if s.overlapCertified(&opened.Phases[i]) {
			t.Error("generator-backed phase must classify conservatively")
		}
	}

	inst, err := NewWithOptions(sys, Options{Metrics: obs.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	if inst.overlapCertified(ph) {
		t.Error("instrumented sim must decline certification")
	}
}
