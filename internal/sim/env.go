package sim

import (
	"heteromem/internal/addrspace"
	"heteromem/internal/clock"
	"heteromem/internal/comm"
	"heteromem/internal/mem"
	"heteromem/internal/model"
	"heteromem/internal/obs"
	"heteromem/internal/trace"
)

var _ model.Env = (*protoEnv)(nil)

// protoEnv adapts the simulator to model.Env: the surface the
// programming-model protocol acts through. res points at the result of
// the run in flight, so protocol costs (ownership streams, exposed async
// waits, fault counts) land in the right accumulators.
type protoEnv struct {
	s   *Simulator
	res *Result
}

func (e *protoEnv) SharedHandle() addrspace.Object { return e.s.sharedHandle }

func (e *protoEnv) Space() *addrspace.Space { return e.s.space }

func (e *protoEnv) FlushPrivate(pu mem.PU) { e.s.hier.FlushPrivate(pu) }

func (e *protoEnv) RunCPUStream(st trace.Stream, now clock.Time) clock.Time {
	end, cst := e.s.cpuCore.RunStream(st, now)
	addCPUStats(&e.res.CPU, cst)
	return end
}

func (e *protoEnv) Fabric() comm.Fabric { return e.s.fabric }

func (e *protoEnv) Tracer() *obs.Tracer { return e.s.tracer }

func (e *protoEnv) ChargeComm(d clock.Duration) { e.res.Communication += d }

func (e *protoEnv) CountOwnershipOp() { e.res.OwnershipOps++ }

func (e *protoEnv) CountPageFaults(n int) { e.res.PageFaults += n }
