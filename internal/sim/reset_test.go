package sim

import (
	"reflect"
	"testing"

	"heteromem/internal/obs"
	"heteromem/internal/systems"
	"heteromem/internal/workload"
)

// resetSystems covers every fabric kind, both ownership/page-fault
// programming models, and the directory-coherent ablation path.
func resetSystems() []systems.System {
	return systems.CaseStudies()
}

// TestResetMatchesFreshSimulator is the pooling contract: running a cell
// on a Reset() simulator must be bit-identical — Result and all metrics
// — to running it on a freshly constructed one.
func TestResetMatchesFreshSimulator(t *testing.T) {
	for _, sys := range resetSystems() {
		for _, kernel := range []string{"reduction", "merge-sort"} {
			t.Run(sys.Name+"/"+kernel, func(t *testing.T) {
				p, err := workload.Generate(kernel)
				if err != nil {
					t.Fatal(err)
				}

				fresh, err := NewWithOptions(sys, Options{Metrics: obs.NewRegistry()})
				if err != nil {
					t.Fatal(err)
				}
				want, err := fresh.Run(p)
				if err != nil {
					t.Fatal(err)
				}

				// Same simulator, run twice with a Reset in between: the
				// second run must not see any first-run state.
				pooled, err := NewWithOptions(sys, Options{Metrics: obs.NewRegistry()})
				if err != nil {
					t.Fatal(err)
				}
				if _, err := pooled.Run(p); err != nil {
					t.Fatal(err)
				}
				pooled.Reset()
				got, err := pooled.Run(p)
				if err != nil {
					t.Fatal(err)
				}

				if !reflect.DeepEqual(got, want) {
					t.Errorf("reused simulator result differs from fresh:\n got %+v\nwant %+v", got, want)
				}
				gotM := pooled.Metrics().Snapshot()
				wantM := fresh.Metrics().Snapshot()
				if !reflect.DeepEqual(gotM, wantM) {
					t.Errorf("reused simulator metrics differ from fresh:\n got %+v\nwant %+v", gotM, wantM)
				}
			})
		}
	}
}

// TestResetClearsResultState checks a reset simulator also behaves
// across different kernels: state from kernel A must not leak into a
// later run of kernel B.
func TestResetClearsResultState(t *testing.T) {
	sys := systems.CaseStudies()[0]
	a, err := workload.Generate("reduction")
	if err != nil {
		t.Fatal(err)
	}
	b, err := workload.Generate("convolution")
	if err != nil {
		t.Fatal(err)
	}

	fresh := MustNew(sys)
	want, err := fresh.Run(b)
	if err != nil {
		t.Fatal(err)
	}

	pooled := MustNew(sys)
	if _, err := pooled.Run(a); err != nil {
		t.Fatal(err)
	}
	pooled.Reset()
	got, err := pooled.Run(b)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("kernel state leaked across Reset:\n got %+v\nwant %+v", got, want)
	}
}
