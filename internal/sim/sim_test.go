package sim

import (
	"testing"

	"heteromem/internal/addrspace"
	"heteromem/internal/locality"
	"heteromem/internal/systems"
	"heteromem/internal/workload"
)

// run executes kernel on sys with a fresh simulator.
func run(t *testing.T, sys systems.System, kernel string) Result {
	t.Helper()
	s, err := New(sys)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(workload.MustGenerate(kernel))
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestAllSystemsRunReduction(t *testing.T) {
	for _, sys := range systems.CaseStudies() {
		res := run(t, sys, "reduction")
		if res.Total() == 0 {
			t.Errorf("%s: zero total time", sys.Name)
		}
		if res.Parallel == 0 {
			t.Errorf("%s: zero parallel time", sys.Name)
		}
		if res.Sequential == 0 {
			t.Errorf("%s: zero sequential time", sys.Name)
		}
		if res.CPU.Instructions == 0 || res.GPU.Instructions == 0 {
			t.Errorf("%s: cores idle: %+v %+v", sys.Name, res.CPU, res.GPU)
		}
	}
}

func TestParallelDominates(t *testing.T) {
	// Figure 5: "the majority of execution time is spent on parallel
	// computation".
	for _, sys := range systems.CaseStudies() {
		res := run(t, sys, "reduction")
		if res.Parallel < res.Sequential || res.Parallel < res.Communication {
			t.Errorf("%s: parallel (%v) does not dominate seq (%v) / comm (%v)",
				sys.Name, res.Parallel, res.Sequential, res.Communication)
		}
	}
}

func TestCommunicationOrdering(t *testing.T) {
	// Figure 6: PCI-E systems pay far more than Fusion; IDEAL pays zero.
	cuda := run(t, systems.CPUGPU(), "reduction")
	lrb := run(t, systems.LRB(), "reduction")
	fusion := run(t, systems.Fusion(), "reduction")
	ideal := run(t, systems.IdealHetero(), "reduction")

	if ideal.Communication != 0 {
		t.Errorf("IDEAL comm = %v, want 0", ideal.Communication)
	}
	if fusion.Communication == 0 {
		t.Error("Fusion comm should be nonzero (memory accesses for transfers)")
	}
	if cuda.Communication <= fusion.Communication {
		t.Errorf("CPU+GPU comm (%v) not greater than Fusion (%v)", cuda.Communication, fusion.Communication)
	}
	if lrb.Communication <= fusion.Communication {
		t.Errorf("LRB comm (%v) not greater than Fusion (%v)", lrb.Communication, fusion.Communication)
	}
}

func TestGMACHidesCommunication(t *testing.T) {
	// GMAC's asynchronous copies overlap computation: its visible
	// communication must be below the synchronous PCI-E system's.
	cuda := run(t, systems.CPUGPU(), "reduction")
	gmac := run(t, systems.GMAC(), "reduction")
	if gmac.Communication >= cuda.Communication {
		t.Errorf("GMAC comm (%v) not hidden vs CPU+GPU (%v)", gmac.Communication, cuda.Communication)
	}
	if gmac.Total() >= cuda.Total() {
		t.Errorf("GMAC total (%v) not faster than CPU+GPU (%v)", gmac.Total(), cuda.Total())
	}
}

func TestSlowSystemsSlowerThanIdeal(t *testing.T) {
	// "CPU+GPU, LRB and GMAC have a longer execution time than those of
	// IDEAL-HETERO and Fusion." GMAC's gap comes from exposed async-copy
	// waits, which show on the transfer-heavy reduction kernel.
	for _, kernel := range []string{"reduction"} {
		ideal := run(t, systems.IdealHetero(), kernel).Total()
		fusion := run(t, systems.Fusion(), kernel).Total()
		for _, sys := range []systems.System{systems.CPUGPU(), systems.LRB(), systems.GMAC()} {
			tot := run(t, sys, kernel).Total()
			if tot <= ideal {
				t.Errorf("%s %s total (%v) not slower than IDEAL (%v)", sys.Name, kernel, tot, ideal)
			}
			if tot <= fusion {
				t.Errorf("%s %s total (%v) not slower than Fusion (%v)", sys.Name, kernel, tot, fusion)
			}
		}
	}
}

func TestLRBEvents(t *testing.T) {
	res := run(t, systems.LRB(), "reduction")
	if res.PageFaults == 0 {
		t.Error("LRB recorded no first-touch page faults")
	}
	if res.OwnershipOps == 0 {
		t.Error("LRB recorded no ownership operations")
	}
	if res.Space.OwnershipChanges == 0 {
		t.Error("address space saw no ownership handovers")
	}
	// Non-LRB systems see none of this.
	cuda := run(t, systems.CPUGPU(), "reduction")
	if cuda.PageFaults != 0 || cuda.OwnershipOps != 0 {
		t.Errorf("CPU+GPU has LRB events: %d faults, %d ownership ops", cuda.PageFaults, cuda.OwnershipOps)
	}
}

func TestKMeanFaultsOncePerObject(t *testing.T) {
	// k-mean transfers to the same object three times; only the first
	// touch faults (large pages cover the object).
	res := run(t, systems.LRB(), "k-mean")
	if res.PageFaults != 1 {
		t.Errorf("k-mean page faults = %d, want 1", res.PageFaults)
	}
	if res.Fabric.Transfers != 3 {
		t.Errorf("LRB k-mean fabric transfers = %d, want 3 h2d", res.Fabric.Transfers)
	}
}

func TestFigure7AddressSpacesNearIdentical(t *testing.T) {
	// Figure 7: with ideal communication and a shared cache, the four
	// address-space options perform within a whisker of each other.
	var totals []float64
	for _, m := range addrspace.AllModels() {
		res := run(t, systems.ForModel(m), "reduction")
		totals = append(totals, float64(res.Total()))
	}
	lo, hi := totals[0], totals[0]
	for _, v := range totals {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if (hi-lo)/hi > 0.01 {
		t.Errorf("address-space totals differ by %.2f%%, want <1%%: %v", (hi-lo)/hi*100, totals)
	}
}

func TestBreakdownConsistency(t *testing.T) {
	res := run(t, systems.CPUGPU(), "merge-sort")
	if res.Total() != res.Sequential+res.Parallel+res.Communication {
		t.Error("Total != seq+par+comm")
	}
	frac := res.CommFraction()
	if frac <= 0 || frac >= 1 {
		t.Errorf("comm fraction %v out of (0,1)", frac)
	}
	seq, par, com := res.Normalized(res)
	if s := seq + par + com; s < 0.999 || s > 1.001 {
		t.Errorf("self-normalised breakdown sums to %v", s)
	}
}

func TestSpaceAccounting(t *testing.T) {
	res := run(t, systems.LRB(), "reduction")
	if res.Space.Allocs == 0 {
		t.Error("no allocations recorded")
	}
	// Shared objects must be mapped in both page tables under PAS.
	if res.Space.MapUpdates[0] == 0 || res.Space.MapUpdates[1] == 0 {
		t.Errorf("mapping updates %v; shared data must map on both PUs", res.Space.MapUpdates)
	}
}

func TestDisjointRemapsSharedObjects(t *testing.T) {
	// Under the disjoint model the program's shared objects degrade to
	// private allocations instead of failing.
	s := MustNew(systems.CPUGPU())
	if _, err := s.Run(workload.MustGenerate("reduction")); err != nil {
		t.Fatalf("disjoint run failed: %v", err)
	}
	if s.Space().LiveObjects() == 0 {
		t.Fatal("no live objects after allocation")
	}
}

func TestDeterministicResults(t *testing.T) {
	a := run(t, systems.LRB(), "reduction")
	b := run(t, systems.LRB(), "reduction")
	if a.Total() != b.Total() || a.Communication != b.Communication {
		t.Fatalf("nondeterministic: %v/%v vs %v/%v", a.Total(), a.Communication, b.Total(), b.Communication)
	}
}

func TestCoalescingAblation(t *testing.T) {
	sys := systems.IdealHetero()
	base, err := NewWithOptions(sys, Options{})
	if err != nil {
		t.Fatal(err)
	}
	resBase, err := base.Run(workload.MustGenerate("reduction"))
	if err != nil {
		t.Fatal(err)
	}
	nocoal, err := NewWithOptions(sys, Options{DisableCoalescing: true})
	if err != nil {
		t.Fatal(err)
	}
	resNo, err := nocoal.Run(workload.MustGenerate("reduction"))
	if err != nil {
		t.Fatal(err)
	}
	if resNo.GPU.LineRequests <= resBase.GPU.LineRequests {
		t.Errorf("uncoalesced requests (%d) not more than coalesced (%d)",
			resNo.GPU.LineRequests, resBase.GPU.LineRequests)
	}
	if resNo.Total() <= resBase.Total() {
		t.Errorf("uncoalesced run (%v) not slower than coalesced (%v)", resNo.Total(), resBase.Total())
	}
}

func TestLocalitySchemeCostsOnlyPushes(t *testing.T) {
	// Section V-D: "The locality management option itself does not affect
	// performance except for the additional instructions of push."
	sys := systems.ForModel(addrspace.PartiallyShared)
	p := workload.MustGenerate("reduction")

	base, err := NewWithOptions(sys, Options{})
	if err != nil {
		t.Fatal(err)
	}
	resBase, err := base.Run(p)
	if err != nil {
		t.Fatal(err)
	}

	scheme := locality.ImplPrivExplShared
	expl, err := NewWithOptions(sys, Options{Locality: &scheme})
	if err != nil {
		t.Fatal(err)
	}
	resExpl, err := expl.Run(p)
	if err != nil {
		t.Fatal(err)
	}

	pushes := resExpl.CPU.PushOps + resExpl.GPU.PushOps
	if pushes == 0 {
		t.Fatal("explicit scheme injected no pushes")
	}
	if resBase.CPU.PushOps+resBase.GPU.PushOps != 0 {
		t.Fatal("implicit run has pushes")
	}
	// The scheme must not add more than the push-placement cost (a few
	// percent); it may *help*, because pushed data prewarms the shared
	// cache — a benefit the paper's cost-only model did not capture.
	rb, re := float64(resBase.Total()), float64(resExpl.Total())
	diff := (re - rb) / rb
	if diff > 0.05 {
		t.Errorf("scheme slowed the run by %.2f%% (base %v, explicit %v); pushes should cost almost nothing",
			diff*100, resBase.Total(), resExpl.Total())
	}
	if diff < -0.25 {
		t.Errorf("scheme sped the run up by %.2f%%; prewarming cannot plausibly save a quarter of the time", -diff*100)
	}
	// Explicit blocks landed in the L3 with their locality bit set.
	if expl.Hierarchy().Stats().Pushes == 0 {
		t.Error("hierarchy saw no pushes")
	}
}

func TestFaultGranularity(t *testing.T) {
	// LRB with host-sized (4 KB) fault granularity pays one lib-pf per
	// page of the 320512-byte transfer instead of one per object.
	sys := systems.LRB()
	sys.FaultGranularityBytes = 4096
	s := MustNew(sys)
	res, err := s.Run(workload.MustGenerate("reduction"))
	if err != nil {
		t.Fatal(err)
	}
	wantFaults := (320512 + 4095) / 4096
	if res.PageFaults != wantFaults {
		t.Fatalf("4KB-granule faults = %d, want %d", res.PageFaults, wantFaults)
	}
	// Large pages (the default) fault once and are much cheaper.
	large := run(t, systems.LRB(), "reduction")
	if large.PageFaults != 1 {
		t.Fatalf("large-page faults = %d, want 1", large.PageFaults)
	}
	if res.Communication <= large.Communication*10 {
		t.Fatalf("small pages (%v comm) not dramatically worse than large (%v comm)",
			res.Communication, large.Communication)
	}
}

func TestLocalitySchemeRejectedForModel(t *testing.T) {
	// A shared-space scheme is ill-formed under the disjoint model.
	scheme := locality.ImplPrivExplShared
	if _, err := NewWithOptions(systems.CPUGPU(), Options{Locality: &scheme}); err == nil {
		t.Fatal("shared-space scheme accepted under disjoint model")
	}
}

func BenchmarkRunReductionCUDA(b *testing.B) {
	p := workload.MustGenerate("reduction")
	for i := 0; i < b.N; i++ {
		s := MustNew(systems.CPUGPU())
		if _, err := s.Run(p); err != nil {
			b.Fatal(err)
		}
	}
}
