// Package arena provides a typed bump allocator for simulator
// construction. Building a simulator carves dozens of metadata slices —
// cache tag arrays, MSHR files, core replay rings, trace buffers — and a
// sweep harness builds one simulator per (worker, design point). The
// arena batches those small allocations into large per-type slabs, so a
// build costs a handful of slab allocations instead of hundreds of
// individual ones, and the garbage collector sees a few long-lived
// objects instead of a cloud of small ones.
//
// Reset rewinds every slab in O(slabs) — it does not zero retained
// memory. Zeroing happens at carve time instead (Make clears exactly the
// span it hands out), so a recycled arena is indistinguishable from a
// fresh one to its callers while Reset stays effectively O(1) between
// sweep cells.
//
// All helpers accept a nil *Arena and degrade to plain make, so
// arena-aware constructors need no branching at call sites.
package arena

import "reflect"

const (
	// slabMin is the smallest element count a fresh batching slab holds;
	// batching slabs double as a type's demand grows, bounding slab count
	// logarithmically.
	slabMin = 1024
	// exactCut sends requests of at least this many elements to their own
	// exact-fit slab instead of the doubling curve. Large carvings (replay
	// rings, L3 tag columns) would otherwise trigger slabs up to twice
	// their size and pin the overshoot for the arena's lifetime —
	// measured as +30% allocated bytes on the Figure 5 sweep.
	exactCut = 4096
	// slabCap bounds the batching-slab doubling, limiting the tail waste
	// of the small-carving slabs to one slabCap-sized slab per type.
	slabCap = 32768
)

// Arena is a collection of per-element-type bump-allocated slabs. It is
// not safe for concurrent use: each sweep worker owns one arena, matching
// the one-goroutine-per-simulator execution model.
type Arena struct {
	pools map[reflect.Type]pooler
	// bytes is the total retained slab footprint, for introspection.
	bytes uintptr
}

// New returns an empty arena.
func New() *Arena {
	return &Arena{pools: make(map[reflect.Type]pooler)}
}

// Reset rewinds every pool so the next Make calls re-carve the retained
// slabs from their start. Memory handed out before Reset must no longer
// be used; it will be re-issued (zeroed) by later Makes.
func (a *Arena) Reset() {
	if a == nil {
		return
	}
	for _, p := range a.pools {
		p.rewind()
	}
}

// Bytes returns the total retained slab footprint.
func (a *Arena) Bytes() uintptr {
	if a == nil {
		return 0
	}
	return a.bytes
}

// pooler is the type-erased view of a pool, for Reset.
type pooler interface{ rewind() }

// pool bump-allocates []T spans out of progressively larger slabs.
type pool[T any] struct {
	slabs [][]T
	cur   int // slab being carved
	off   int // next free element in slabs[cur]
	small int // size of the next batching slab (doubles up to slabCap)
}

func (p *pool[T]) rewind() { p.cur, p.off = 0, 0 }

// Make carves a zeroed length-n []T from the arena (capacity exactly n:
// growing the result with append escapes to the ordinary heap, which is
// safe but defeats the batching — size correctly instead). A nil arena
// returns make([]T, n).
func Make[T any](a *Arena, n int) []T {
	if a == nil {
		return make([]T, n)
	}
	if n == 0 {
		return []T{}
	}
	var zero T
	rt := reflect.TypeOf(&zero)
	p, ok := a.pools[rt].(*pool[T])
	if !ok {
		p = &pool[T]{}
		a.pools[rt] = p
	}
	// Advance through retained slabs until one has room.
	for p.cur < len(p.slabs) && len(p.slabs[p.cur])-p.off < n {
		p.cur++
		p.off = 0
	}
	if p.cur == len(p.slabs) {
		// Large requests get an exact-fit slab; small ones batch into
		// doubling slabs so hundreds of little carvings still cost a
		// logarithmic number of allocations.
		size := n
		if n < exactCut {
			if p.small == 0 {
				p.small = slabMin
			}
			if size < p.small {
				size = p.small
			}
			if p.small < slabCap {
				p.small *= 2
			}
		}
		p.slabs = append(p.slabs, make([]T, size))
		a.bytes += uintptr(size) * rt.Elem().Size()
	}
	s := p.slabs[p.cur][p.off : p.off+n : p.off+n]
	p.off += n
	clear(s)
	return s
}
