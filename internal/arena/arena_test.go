package arena

import "testing"

func TestNilArenaFallsBackToMake(t *testing.T) {
	s := Make[uint64](nil, 8)
	if len(s) != 8 {
		t.Fatalf("len = %d, want 8", len(s))
	}
	s[0] = 1 // must be writable
}

func TestMakeZeroesAndSeparates(t *testing.T) {
	a := New()
	x := Make[uint64](a, 4)
	y := Make[uint64](a, 4)
	for i := range x {
		x[i] = 0xdead
	}
	for i, v := range y {
		if v != 0 {
			t.Fatalf("y[%d] = %#x, want 0 (spans overlap?)", i, v)
		}
	}
	// Capacity is clamped, so appends cannot bleed into the next span.
	x = append(x, 0xbeef)
	if y[0] != 0 {
		t.Fatal("append to x overwrote y")
	}
}

func TestResetReissuesZeroedMemory(t *testing.T) {
	a := New()
	x := Make[uint64](a, 16)
	for i := range x {
		x[i] = ^uint64(0)
	}
	before := a.Bytes()
	a.Reset()
	y := Make[uint64](a, 16)
	for i, v := range y {
		if v != 0 {
			t.Fatalf("recycled span not zeroed at %d: %#x", i, v)
		}
	}
	if a.Bytes() != before {
		t.Fatalf("reset+reuse grew the arena: %d -> %d bytes", before, a.Bytes())
	}
}

func TestResetIsO1NoReallocation(t *testing.T) {
	a := New()
	// Fill several generations; after the first, steady-state reuse must
	// not allocate new slabs.
	for i := 0; i < 4; i++ {
		for j := 0; j < 100; j++ {
			Make[uint64](a, 100)
		}
		if i == 0 {
			continue
		}
		before := a.Bytes()
		a.Reset()
		for j := 0; j < 100; j++ {
			Make[uint64](a, 100)
		}
		if a.Bytes() != before {
			t.Fatalf("generation %d grew the arena: %d -> %d", i, before, a.Bytes())
		}
		a.Reset()
	}
}

func TestMixedTypesShareOneArena(t *testing.T) {
	type rec struct{ a, b uint64 }
	a := New()
	u := Make[uint64](a, 10)
	r := Make[rec](a, 10)
	u[9] = 7
	r[9] = rec{1, 2}
	if u[9] != 7 || r[9] != (rec{1, 2}) {
		t.Fatal("typed pools interfered")
	}
	if a.Bytes() == 0 {
		t.Fatal("accounting missing")
	}
}

func TestOversizedRequestGetsOwnSlab(t *testing.T) {
	a := New()
	big := Make[uint64](a, 3*slabMin)
	if len(big) != 3*slabMin {
		t.Fatalf("len = %d", len(big))
	}
	big[3*slabMin-1] = 1
}

func TestLargeRequestsExactFit(t *testing.T) {
	// Requests at or above exactCut retain exactly their own footprint:
	// no doubling past a replay ring or cache column, no matter how many
	// arrive in sequence.
	a := New()
	const n = 4 * exactCut
	for i := 0; i < 3; i++ {
		before := a.Bytes()
		s := Make[uint64](a, n)
		if len(s) != n {
			t.Fatalf("len = %d", len(s))
		}
		if got, want := a.Bytes()-before, uintptr(n)*8; got != want {
			t.Fatalf("carve %d retained %d bytes, want exactly %d", i, got, want)
		}
	}
}

func TestBatchingSlabsCapped(t *testing.T) {
	// Small carvings ride doubling slabs, but the doubling stops at
	// slabCap: after a long run of small requests, the marginal retained
	// footprint per request approaches its exact size.
	a := New()
	total := 0
	for total < 16*slabCap {
		Make[uint64](a, 64)
		total += 64
	}
	// Worst case: every slab full except the last (≤ slabCap elements),
	// plus the capped-geometry prefix (< 2*slabCap elements).
	if max := uintptr(total+3*slabCap) * 8; a.Bytes() > max {
		t.Fatalf("retained %d bytes for %d carved, cap implies ≤ %d", a.Bytes(), total*8, max)
	}
}

func BenchmarkMakeSteadyState(b *testing.B) {
	a := New()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < 32; j++ {
			Make[uint64](a, 256)
		}
		a.Reset()
	}
}
