// Package energy estimates the energy consumption of a simulated run.
// The paper's closing argument for the partially shared space is that its
// hardware design options "provide opportunities to optimize hardware and
// save power/energy"; this package turns that motivation into a
// measurable quantity with an event-energy model in the CACTI/McPAT
// style: every counted event (instruction, cache access, DRAM access,
// ring flit, fabric byte) carries a per-event energy, and a run's
// breakdown is the dot product of its statistics with those costs.
//
// The default constants target a 32 nm-class system and are deliberately
// round: as with the timing model, relative structure matters, not
// absolute joules.
package energy

import (
	"fmt"

	"heteromem/internal/mem"
	"heteromem/internal/sim"
)

// Params holds per-event energies in picojoules.
type Params struct {
	// CPUInstPJ and GPUInstPJ are per-instruction core energies
	// (pipeline, register files, predictor/datapath).
	CPUInstPJ float64
	GPUInstPJ float64
	// L1AccessPJ, L2AccessPJ, L3AccessPJ are per-access cache energies.
	L1AccessPJ float64
	L2AccessPJ float64
	L3AccessPJ float64
	// DRAMAccessPJ is the energy of one line-granularity DRAM access.
	DRAMAccessPJ float64
	// RingBytePJ is the interconnect energy per byte-hop.
	RingBytePJ float64
	// FabricBytePJ is the CPU<->GPU communication energy per byte (PCI-E
	// serdes are power-hungry; the ideal fabric is free).
	FabricBytePJ float64
}

// Default returns the 32 nm-class constants.
func Default() Params {
	return Params{
		CPUInstPJ:    70, // wide OoO pipeline
		GPUInstPJ:    25, // in-order SIMD, amortised over lanes
		L1AccessPJ:   15,
		L2AccessPJ:   45,
		L3AccessPJ:   120,
		DRAMAccessPJ: 20000, // ~20 nJ per 64B access incl. I/O
		RingBytePJ:   1,
		FabricBytePJ: 60, // PCI-E-class serdes + protocol
	}
}

func (p Params) validate() error {
	for name, v := range map[string]float64{
		"cpu-inst": p.CPUInstPJ, "gpu-inst": p.GPUInstPJ,
		"l1": p.L1AccessPJ, "l2": p.L2AccessPJ, "l3": p.L3AccessPJ,
		"dram": p.DRAMAccessPJ, "ring": p.RingBytePJ, "fabric": p.FabricBytePJ,
	} {
		if v < 0 {
			return fmt.Errorf("energy: negative %s energy %v", name, v)
		}
	}
	return nil
}

// Breakdown is a run's estimated energy by component, in nanojoules.
type Breakdown struct {
	Cores         float64
	Caches        float64
	DRAM          float64
	Interconnect  float64
	Communication float64
}

// Total returns the summed energy in nanojoules.
func (b Breakdown) Total() float64 {
	return b.Cores + b.Caches + b.DRAM + b.Interconnect + b.Communication
}

// Estimate computes the energy breakdown of a run from its statistics.
func Estimate(res sim.Result, p Params) (Breakdown, error) {
	if err := p.validate(); err != nil {
		return Breakdown{}, err
	}
	var b Breakdown

	b.Cores = (float64(res.CPU.Instructions)*p.CPUInstPJ +
		float64(res.GPU.Instructions)*p.GPUInstPJ) / 1000

	// Every hierarchy access touches an L1; CPU L1 misses touch the L2;
	// first-level misses that reach the shared level touch an L3 tile.
	l1 := float64(res.Mem.Accesses[mem.CPU] + res.Mem.Accesses[mem.GPU])
	l2 := float64(res.Mem.Accesses[mem.CPU] - res.Mem.L1Hits[mem.CPU])
	l3 := float64(res.Mem.L3Hits[mem.CPU] + res.Mem.L3Hits[mem.GPU] +
		res.Mem.DRAMFills[mem.CPU] + res.Mem.DRAMFills[mem.GPU])
	b.Caches = (l1*p.L1AccessPJ + l2*p.L2AccessPJ + l3*p.L3AccessPJ) / 1000

	b.DRAM = float64(res.DRAM.Requests) * p.DRAMAccessPJ / 1000
	b.Interconnect = float64(res.Ring.Bytes) * p.RingBytePJ / 1000
	// The serdes energy applies to off-chip PCI-class links only; the
	// memory-controller fabric's traffic is already in the DRAM term
	// (its DMA issues real controller requests), and the ideal fabric is
	// free by definition.
	switch res.FabricName {
	case "pcie", "pcie-async", "pci-aperture":
		b.Communication = float64(res.Fabric.Bytes) * p.FabricBytePJ / 1000
	}
	return b, nil
}

// EstimateDefault is Estimate with the default constants.
func EstimateDefault(res sim.Result) Breakdown {
	b, err := Estimate(res, Default())
	if err != nil {
		panic(err) // Default() always validates
	}
	return b
}
