package energy

import (
	"testing"

	"heteromem/internal/sim"
	"heteromem/internal/systems"
	"heteromem/internal/workload"
)

func runOne(t *testing.T, sys systems.System) sim.Result {
	t.Helper()
	s, err := sim.New(sys)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(workload.MustGenerate("reduction"))
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestBreakdownPositive(t *testing.T) {
	res := runOne(t, systems.CPUGPU())
	b := EstimateDefault(res)
	if b.Cores <= 0 || b.Caches <= 0 || b.DRAM <= 0 || b.Interconnect <= 0 {
		t.Fatalf("non-positive components: %+v", b)
	}
	if b.Communication <= 0 {
		t.Fatal("PCI-E system has zero communication energy")
	}
	if b.Total() <= b.Cores {
		t.Fatal("total not larger than one component")
	}
}

func TestIdealSavesCommunicationEnergy(t *testing.T) {
	cuda := EstimateDefault(runOne(t, systems.CPUGPU()))
	ideal := EstimateDefault(runOne(t, systems.IdealHetero()))
	if ideal.Communication != 0 {
		t.Fatalf("ideal fabric burned %v nJ of communication", ideal.Communication)
	}
	if cuda.Total() <= ideal.Total() {
		t.Fatalf("CPU+GPU total (%v nJ) not above ideal (%v nJ)", cuda.Total(), ideal.Total())
	}
	// The compute-side energy is nearly identical: the memory model only
	// changes communication (and second-order cache effects).
	coreDelta := cuda.Cores/ideal.Cores - 1
	if coreDelta > 0.02 || coreDelta < -0.02 {
		t.Fatalf("core energy differs by %.1f%% across systems", coreDelta*100)
	}
}

func TestFusionCheaperCommThanPCIe(t *testing.T) {
	cuda := EstimateDefault(runOne(t, systems.CPUGPU()))
	fusion := EstimateDefault(runOne(t, systems.Fusion()))
	// Fusion's transfers ride the memory controllers: they show up as
	// DRAM energy, not serdes energy.
	if fusion.Communication >= cuda.Communication {
		t.Fatalf("Fusion comm energy (%v) not below PCI-E (%v)", fusion.Communication, cuda.Communication)
	}
	if fusion.DRAM <= cuda.DRAM {
		t.Fatalf("Fusion DRAM energy (%v) not above CPU+GPU (%v): DMA traffic missing", fusion.DRAM, cuda.DRAM)
	}
}

func TestValidation(t *testing.T) {
	p := Default()
	p.DRAMAccessPJ = -1
	if _, err := Estimate(sim.Result{}, p); err == nil {
		t.Fatal("negative energy accepted")
	}
}

func TestZeroResultZeroEnergy(t *testing.T) {
	b, err := Estimate(sim.Result{}, Default())
	if err != nil {
		t.Fatal(err)
	}
	if b.Total() != 0 {
		t.Fatalf("empty run burned %v nJ", b.Total())
	}
}
