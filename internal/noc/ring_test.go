package noc

import (
	"testing"
	"testing/quick"

	"heteromem/internal/clock"
)

func testRing(t *testing.T, stops int) *Ring {
	t.Helper()
	r, err := New(Config{
		Stops:             stops,
		HopLatency:        2 * clock.Nanosecond,
		LinkBytesPerCycle: 32,
		CycleTime:         1 * clock.Nanosecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{Stops: 1, HopLatency: 1, LinkBytesPerCycle: 32, CycleTime: 1},
		{Stops: 4, HopLatency: 0, LinkBytesPerCycle: 32, CycleTime: 1},
		{Stops: 4, HopLatency: 1, LinkBytesPerCycle: 0, CycleTime: 1},
		{Stops: 4, HopLatency: 1, LinkBytesPerCycle: 32, CycleTime: 0},
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestHopsShorterDirection(t *testing.T) {
	r := testRing(t, 8)
	cases := []struct{ from, to, want int }{
		{0, 0, 0}, {0, 1, 1}, {0, 4, 4}, {0, 5, 3}, {0, 7, 1}, {6, 1, 3},
	}
	for _, c := range cases {
		if got := r.Hops(c.from, c.to); got != c.want {
			t.Errorf("Hops(%d,%d) = %d, want %d", c.from, c.to, got, c.want)
		}
	}
}

func TestSendLatencyComposition(t *testing.T) {
	r := testRing(t, 8)
	// 64-byte message over 2 hops: 2*2ns header + 2ns serialisation = 6ns.
	got := r.Send(0, 2, 64, 0)
	if got != clock.Time(6*clock.Nanosecond) {
		t.Fatalf("arrival %v, want 6ns", got)
	}
}

func TestSendSameStop(t *testing.T) {
	r := testRing(t, 8)
	if got := r.Send(3, 3, 1024, 100); got != 100 {
		t.Fatalf("self-send arrival %v, want 100ps", got)
	}
}

func TestSendZeroBytesControlFlit(t *testing.T) {
	r := testRing(t, 8)
	got := r.Send(0, 1, 0, 0)
	// 1 hop * 2ns + 1 flit cycle = 3ns.
	if got != clock.Time(3*clock.Nanosecond) {
		t.Fatalf("control flit arrival %v, want 3ns", got)
	}
}

func TestLinkContention(t *testing.T) {
	r := testRing(t, 8)
	// Two simultaneous messages over the same first link serialise.
	a := r.Send(0, 1, 3200, 0) // 100 cycles of serialisation
	b := r.Send(0, 1, 3200, 0)
	if b <= a {
		t.Fatalf("contending messages did not serialise: %v then %v", a, b)
	}
	// A message on the opposite side of the ring is unaffected.
	r2 := testRing(t, 8)
	c := r2.Send(4, 5, 64, 0)
	r.Reset()
	r.Send(0, 1, 3200, 0)
	d := r.Send(4, 5, 64, 0)
	if c != d {
		t.Fatalf("disjoint links interfered: %v vs %v", c, d)
	}
}

func TestCounterClockwiseRoute(t *testing.T) {
	r := testRing(t, 8)
	// 0 -> 7 goes counter-clockwise over one link.
	got := r.Send(0, 7, 64, 0)
	want := clock.Time(2*clock.Nanosecond + 2*clock.Nanosecond)
	if got != want {
		t.Fatalf("ccw arrival %v, want %v", got, want)
	}
	if r.Stats().TotalHops != 1 {
		t.Fatalf("hops = %d, want 1", r.Stats().TotalHops)
	}
}

func TestSendOutOfRangePanics(t *testing.T) {
	r := testRing(t, 4)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range stop did not panic")
		}
	}()
	r.Send(0, 9, 64, 0)
}

func TestStatsAndReset(t *testing.T) {
	r := testRing(t, 8)
	r.Send(0, 2, 64, 0)
	r.Send(2, 0, 128, 0)
	st := r.Stats()
	if st.Messages != 2 || st.Bytes != 192 || st.TotalHops != 4 {
		t.Fatalf("stats %+v", st)
	}
	r.Reset()
	if r.Stats() != (Stats{}) {
		t.Fatal("Reset did not clear stats")
	}
}

// Property: arrival is monotone in distance — for messages sent on an
// idle ring, more hops never arrive earlier — and always after now.
func TestArrivalMonotoneProperty(t *testing.T) {
	f := func(fromRaw, bytesRaw uint16) bool {
		stops := 8
		from := int(fromRaw) % stops
		bytes := int(bytesRaw) % 4096
		var prev clock.Time
		for d := 0; d <= stops/2; d++ {
			r := MustNew(Config{Stops: stops, HopLatency: 2 * clock.Nanosecond, LinkBytesPerCycle: 32, CycleTime: clock.Nanosecond})
			to := (from + d) % stops
			got := r.Send(from, to, bytes, 0)
			if d > 0 && got < prev {
				return false
			}
			prev = got
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSend(b *testing.B) {
	r := MustNew(Config{Stops: 8, HopLatency: 2 * clock.Nanosecond, LinkBytesPerCycle: 32, CycleTime: clock.Nanosecond})
	var now clock.Time
	for i := 0; i < b.N; i++ {
		now = r.Send(i%8, (i+3)%8, 64, now)
	}
}
