// Package noc models the on-chip interconnect of Table II: a
// bidirectional ring bus connecting the processing units, the shared
// last-level cache tiles, and the memory controllers.
//
// Messages use wormhole-style timing: the header pays one hop latency per
// link along the shorter ring direction, the body serialises onto each
// link at the link width, and links are shared resources so concurrent
// messages contend.
package noc

import (
	"fmt"
	"math/bits"

	"heteromem/internal/clock"
	"heteromem/internal/obs"
)

// Config describes the ring geometry and timing.
type Config struct {
	// Stops is the number of ring stops. Must be at least 2.
	Stops int
	// HopLatency is the header latency per link traversed.
	HopLatency clock.Duration
	// LinkBytesPerCycle is the link width in bytes per link cycle.
	LinkBytesPerCycle int
	// CycleTime is the ring clock period.
	CycleTime clock.Duration
}

func (c Config) validate() error {
	switch {
	case c.Stops < 2:
		return fmt.Errorf("noc: ring needs at least 2 stops, got %d", c.Stops)
	case c.HopLatency == 0:
		return fmt.Errorf("noc: zero hop latency")
	case c.LinkBytesPerCycle <= 0:
		return fmt.Errorf("noc: link width %d must be positive", c.LinkBytesPerCycle)
	case c.CycleTime == 0:
		return fmt.Errorf("noc: zero cycle time")
	}
	return nil
}

// Stats counts interconnect traffic.
type Stats struct {
	Messages  uint64
	TotalHops uint64
	Bytes     uint64
}

// Ring is a bidirectional ring interconnect.
type Ring struct {
	cfg Config
	// cw[i] is the clockwise link from stop i to stop (i+1)%n;
	// ccw[i] is the counter-clockwise link from stop (i+1)%n to stop i.
	cw  []*clock.Resource
	ccw []*clock.Resource
	// path[from*Stops+to] is the link sequence a message traverses,
	// precomputed so the Send hot path walks a slice instead of
	// re-deriving direction and wrap-around arithmetic per hop.
	path [][]*clock.Resource
	// lbcShift is log2(LinkBytesPerCycle) when the link width is a power
	// of two, else -1 (Send falls back to division).
	lbcShift int
	stats    Stats
	obs      ringObs
}

// ringObs holds the ring's observability instruments under the noc.*
// namespace; nil instruments make every bump a no-op.
type ringObs struct {
	messages   *obs.Counter
	hops       *obs.Counter
	bytes      *obs.Counter
	linkBusyPS *obs.Counter
}

// Instrument registers the ring's metrics (noc.*) with reg. The
// noc.link_busy_ps counter accumulates link occupancy (serialisation time
// times links traversed), so per-epoch deltas divided by epoch length and
// link count give ring-link utilisation. A nil registry detaches the
// instruments.
func (r *Ring) Instrument(reg *obs.Registry) {
	r.obs = ringObs{
		messages:   reg.Counter("noc.messages"),
		hops:       reg.Counter("noc.hops"),
		bytes:      reg.Counter("noc.bytes"),
		linkBusyPS: reg.Counter("noc.link_busy_ps"),
	}
}

// Links returns the number of directed links (two per stop pair).
func (r *Ring) Links() int { return 2 * r.cfg.Stops }

// New returns a ring with idle links.
func New(cfg Config) (*Ring, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	r := &Ring{cfg: cfg, lbcShift: -1}
	r.cw = make([]*clock.Resource, cfg.Stops)
	r.ccw = make([]*clock.Resource, cfg.Stops)
	for i := 0; i < cfg.Stops; i++ {
		r.cw[i] = clock.NewResource(fmt.Sprintf("ring.cw%d", i))
		r.ccw[i] = clock.NewResource(fmt.Sprintf("ring.ccw%d", i))
	}
	if w := cfg.LinkBytesPerCycle; w&(w-1) == 0 {
		r.lbcShift = bits.TrailingZeros(uint(w))
	}
	n := cfg.Stops
	r.path = make([][]*clock.Resource, n*n)
	for from := 0; from < n; from++ {
		for to := 0; to < n; to++ {
			if from == to {
				continue
			}
			cwHops := ((to-from)%n + n) % n
			links := make([]*clock.Resource, 0, n/2+1)
			stop := from
			if cwHops <= n-cwHops {
				for h := 0; h < cwHops; h++ {
					links = append(links, r.cw[stop])
					stop = (stop + 1) % n
				}
			} else {
				for h := 0; h < n-cwHops; h++ {
					prev := (stop - 1 + n) % n
					links = append(links, r.ccw[prev])
					stop = prev
				}
			}
			r.path[from*n+to] = links
		}
	}
	return r, nil
}

// MustNew is New but panics on configuration error.
func MustNew(cfg Config) *Ring {
	r, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return r
}

// Config returns the ring's configuration.
func (r *Ring) Config() Config { return r.cfg }

// Stats returns a snapshot of the counters.
func (r *Ring) Stats() Stats { return r.stats }

// Hops returns the number of links a message from one stop to the other
// traverses, taking the shorter direction (ties go clockwise).
func (r *Ring) Hops(from, to int) int {
	n := r.cfg.Stops
	cw := ((to-from)%n + n) % n
	ccw := n - cw
	if cw <= ccw {
		return cw
	}
	return ccw
}

// Send transmits a bytes-sized message from stop from to stop to,
// starting no earlier than now, and returns the time the full message has
// arrived. A message to the sender's own stop arrives immediately.
func (r *Ring) Send(from, to, bytes int, now clock.Time) clock.Time {
	if from < 0 || from >= r.cfg.Stops || to < 0 || to >= r.cfg.Stops {
		panic(fmt.Sprintf("noc: stop out of range: %d -> %d (ring has %d)", from, to, r.cfg.Stops))
	}
	if from == to {
		return now
	}
	var cycles int
	if r.lbcShift >= 0 {
		cycles = (bytes + r.cfg.LinkBytesPerCycle - 1) >> uint(r.lbcShift)
	} else {
		cycles = (bytes + r.cfg.LinkBytesPerCycle - 1) / r.cfg.LinkBytesPerCycle
	}
	if cycles == 0 {
		cycles = 1 // even a zero-payload control message takes a flit
	}
	ser := clock.Duration(uint64(cycles)) * r.cfg.CycleTime

	t := now
	links := r.path[from*r.cfg.Stops+to]
	hops := len(links)
	for _, link := range links {
		start, _ := link.Acquire(t, ser)
		t = start.Add(r.cfg.HopLatency)
	}
	r.stats.Messages++
	r.stats.TotalHops += uint64(hops)
	r.stats.Bytes += uint64(bytes)
	r.obs.messages.Inc()
	r.obs.hops.Add(uint64(hops))
	r.obs.bytes.Add(uint64(bytes))
	r.obs.linkBusyPS.Add(uint64(ser) * uint64(hops))
	return t.Add(ser)
}

// Reset idles all links and clears statistics.
func (r *Ring) Reset() {
	for i := range r.cw {
		r.cw[i].Reset()
		r.ccw[i].Reset()
	}
	r.stats = Stats{}
}
