// Package codegen reproduces the paper's programmability study
// (Section V-C, Table V): it represents each evaluation kernel's host
// program as a small IR and lowers it through one backend per memory
// address-space model — unified, disjoint, partially shared (LRB-style
// ownership), and ADSM. Every emitted source line is classified as
// computation or communication handling, and counting the communication
// lines per model regenerates Table V.
//
// The backends encode the models' programming idioms from the paper's
// Figures 2 and 3:
//
//   - Unified: plain malloc and direct kernel calls; no communication
//     lines at all.
//   - Disjoint: a device pointer declaration, a device allocation and an
//     explicit Memcpy per shared object (Figure 3a).
//   - Partially shared: allocations move to sharedmalloc (still one line,
//     so still computation) and each GPU kernel region is bracketed by
//     releaseOwnership/acquireOwnership (Figure 2b).
//   - ADSM: adsmAlloc and accfree per shared object; transfers themselves
//     are implicit in the model (Figure 3b).
package codegen

import "fmt"

// Class labels an emitted source line.
type Class uint8

const (
	// Compute is computation or data-allocation code present under every
	// model.
	Compute Class = iota
	// Comm is code that exists only to handle data communication between
	// the PUs' address spaces.
	Comm
)

func (c Class) String() string {
	if c == Comm {
		return "comm"
	}
	return "compute"
}

// Line is one emitted source line.
type Line struct {
	Text  string
	Class Class
}

// Op is an IR statement kind.
type Op uint8

const (
	// OpDecl declares and allocates a data object.
	OpDecl Op = iota
	// OpInitLoop initialises objects on the host.
	OpInitLoop
	// OpGPURegion invokes a GPU kernel over shared objects.
	OpGPURegion
	// OpCPUCall invokes host computation.
	OpCPUCall
	// OpBody is kernel/computation body code (the bulk of Comp lines).
	OpBody
	// OpFree releases objects at program end.
	OpFree
)

// Stmt is one IR statement.
type Stmt struct {
	Op Op
	// Objects names the data objects the statement touches.
	Objects []string
	// Shared marks objects exchanged between CPU and GPU.
	Shared bool
	// Count is the number of body lines for OpBody / iterations hint.
	Count int
	// Name is the called function for region/call ops.
	Name string
}

// Program is a kernel's host program in IR form.
type Program struct {
	Name  string
	Stmts []Stmt
}

// Kernel metadata drives IR construction: how many shared objects flow
// between the PUs, how many GPU kernel regions execute, and how many
// computation lines the full source has (Table V's Comp column).
type Kernel struct {
	Name string
	// SharedObjects is the number of objects exchanged between PUs.
	SharedObjects int
	// GPURegions is the number of GPU kernel invocation regions
	// (ownership transfer sections under the LRB model).
	GPURegions int
	// ComputeLines is the Comp column of Table V.
	ComputeLines int
}

// Kernels returns the six kernels with metadata chosen to match the
// paper's sources: object and region counts follow each kernel's
// structure (reduction and convolution carry three shared arrays,
// convolution runs two GPU phases, k-mean three).
func Kernels() []Kernel {
	return []Kernel{
		{Name: "matrix-mul", SharedObjects: 3, GPURegions: 1, ComputeLines: 39},
		{Name: "merge-sort", SharedObjects: 2, GPURegions: 1, ComputeLines: 112},
		{Name: "dct", SharedObjects: 2, GPURegions: 1, ComputeLines: 410},
		{Name: "reduction", SharedObjects: 3, GPURegions: 1, ComputeLines: 142},
		{Name: "convolution", SharedObjects: 3, GPURegions: 2, ComputeLines: 75},
		{Name: "k-mean", SharedObjects: 2, GPURegions: 3, ComputeLines: 332},
	}
}

// Build constructs the IR for a kernel: declarations, host
// initialisation, one GPU region per phase with host work interleaved,
// body code sized to the compute budget, and frees.
func Build(k Kernel) Program {
	var stmts []Stmt
	names := objectNames(k.SharedObjects)
	stmts = append(stmts, Stmt{Op: OpDecl, Objects: names, Shared: true})
	stmts = append(stmts, Stmt{Op: OpDecl, Objects: []string{"t0", "t1"}})
	stmts = append(stmts, Stmt{Op: OpInitLoop, Objects: names})
	for r := 0; r < k.GPURegions; r++ {
		stmts = append(stmts, Stmt{
			Op: OpGPURegion, Objects: names, Shared: true,
			Name: fmt.Sprintf("%sKernel%d", ident(k.Name), r),
		})
		stmts = append(stmts, Stmt{Op: OpCPUCall, Objects: []string{"t0", "t1"}, Name: "hostStep"})
	}
	// The fixed statements above emit a known number of compute lines;
	// the body statement carries the remainder of the Comp budget.
	fixed := fixedComputeLines(k)
	body := k.ComputeLines - fixed
	if body < 0 {
		body = 0
	}
	stmts = append(stmts, Stmt{Op: OpBody, Count: body, Name: ident(k.Name)})
	stmts = append(stmts, Stmt{Op: OpFree, Objects: names, Shared: true})
	return Program{Name: k.Name, Stmts: stmts}
}

func objectNames(n int) []string {
	base := []string{"a", "b", "c", "d", "e", "f"}
	if n > len(base) {
		n = len(base)
	}
	return base[:n]
}

func ident(name string) string {
	out := make([]rune, 0, len(name))
	up := false
	for _, r := range name {
		if r == '-' {
			up = true
			continue
		}
		if up {
			r = r - 'a' + 'A'
			up = false
		}
		out = append(out, r)
	}
	return string(out)
}

// fixedComputeLines counts the compute lines the non-body statements
// emit, which is backend-independent by construction (backends only add
// Comm lines).
func fixedComputeLines(k Kernel) int {
	// shared decls + private decls + init loop (3 lines) + per region
	// (gpu call + host call) + frees of shared and private objects.
	return k.SharedObjects + 2 + 3 + 2*k.GPURegions + k.SharedObjects + 2
}
