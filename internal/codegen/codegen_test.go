package codegen

import (
	"reflect"
	"strings"
	"testing"

	"heteromem/internal/addrspace"
)

func TestTableVMatchesPaper(t *testing.T) {
	got := TableV()
	want := PaperTableV()
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Table V mismatch:\n got %+v\nwant %+v", got, want)
	}
}

func TestComputeLinesBackendInvariant(t *testing.T) {
	// The Comp column is the same under every model: backends only add
	// communication-handling lines.
	for _, k := range Kernels() {
		base, _ := Count(k, addrspace.Unified)
		for _, m := range addrspace.AllModels() {
			comp, _ := Count(k, m)
			if comp != base {
				t.Errorf("%s under %v: compute lines %d != unified %d", k.Name, m, comp, base)
			}
		}
	}
}

func TestUnifiedHasNoCommLines(t *testing.T) {
	for _, k := range Kernels() {
		if _, comm := Count(k, addrspace.Unified); comm != 0 {
			t.Errorf("%s unified comm lines = %d, want 0", k.Name, comm)
		}
	}
}

func TestOverheadOrdering(t *testing.T) {
	// Section V-C: "the overhead increases in the following order:
	// Unified < partially shared <= ADSM < disjoint".
	for _, r := range TableV() {
		if !(r.UNI < r.PAS || r.UNI == 0 && r.PAS > 0) {
			t.Errorf("%s: UNI (%d) not below PAS (%d)", r.Kernel, r.UNI, r.PAS)
		}
		if r.PAS > r.ADSM && r.Kernel != "k-mean" {
			// k-mean is the paper's own exception (6 vs 4): ownership
			// operations repeat per iteration while ADSM allocates once.
			t.Errorf("%s: PAS (%d) above ADSM (%d)", r.Kernel, r.PAS, r.ADSM)
		}
		if r.ADSM > r.DIS {
			t.Errorf("%s: ADSM (%d) above DIS (%d)", r.Kernel, r.ADSM, r.DIS)
		}
	}
}

func TestEmittedSourceShape(t *testing.T) {
	k := Kernels()[0] // matrix-mul
	// Disjoint source contains explicit copies; unified does not.
	dis := render(Emit(k, addrspace.Disjoint))
	if !strings.Contains(dis, "Memcpy") || !strings.Contains(dis, "GPUmemallocate") {
		t.Error("disjoint source lacks explicit copy API")
	}
	uni := render(Emit(k, addrspace.Unified))
	if strings.Contains(uni, "Memcpy") {
		t.Error("unified source contains Memcpy")
	}
	pas := render(Emit(k, addrspace.PartiallyShared))
	if !strings.Contains(pas, "acquireOwnership") || !strings.Contains(pas, "releaseOwnership") {
		t.Error("partially shared source lacks ownership operations")
	}
	if !strings.Contains(pas, "sharedmalloc") {
		t.Error("partially shared source lacks sharedmalloc")
	}
	adsm := render(Emit(k, addrspace.ADSM))
	if !strings.Contains(adsm, "adsmAlloc") || !strings.Contains(adsm, "accfree") {
		t.Error("ADSM source lacks adsmAlloc/accfree")
	}
}

func TestKMeanRepeatsOwnership(t *testing.T) {
	var km Kernel
	for _, k := range Kernels() {
		if k.Name == "k-mean" {
			km = k
		}
	}
	pas := render(Emit(km, addrspace.PartiallyShared))
	if strings.Count(pas, "releaseOwnership") != 3 {
		t.Errorf("k-mean should release ownership once per iteration (3), got %d",
			strings.Count(pas, "releaseOwnership"))
	}
}

func TestBuildIRStructure(t *testing.T) {
	p := Build(Kernels()[0])
	if p.Name != "matrix-mul" {
		t.Errorf("program name %q", p.Name)
	}
	var ops []Op
	for _, st := range p.Stmts {
		ops = append(ops, st.Op)
	}
	// Must start with declarations and end with frees.
	if ops[0] != OpDecl || ops[len(ops)-1] != OpFree {
		t.Errorf("IR shape wrong: %v", ops)
	}
	var regions int
	for _, op := range ops {
		if op == OpGPURegion {
			regions++
		}
	}
	if regions != 1 {
		t.Errorf("matrix-mul GPU regions = %d, want 1", regions)
	}
}

func TestIdentCamelCase(t *testing.T) {
	if ident("merge-sort") != "mergeSort" {
		t.Errorf("ident = %q", ident("merge-sort"))
	}
	if ident("dct") != "dct" {
		t.Errorf("ident = %q", ident("dct"))
	}
}

func TestClassString(t *testing.T) {
	if Compute.String() != "compute" || Comm.String() != "comm" {
		t.Error("class names wrong")
	}
}

func render(lines []Line) string {
	var b strings.Builder
	for _, l := range lines {
		b.WriteString(l.Text)
		b.WriteByte('\n')
	}
	return b.String()
}

func BenchmarkEmitAll(b *testing.B) {
	for i := 0; i < b.N; i++ {
		TableV()
	}
}
