package codegen

import (
	"fmt"

	"heteromem/internal/addrspace"
)

// Emit lowers the kernel's IR through the backend for the given
// address-space model and returns the classified source lines.
func Emit(k Kernel, model addrspace.Model) []Line {
	p := Build(k)
	var out []Line
	for _, st := range p.Stmts {
		out = append(out, emitStmt(st, model)...)
	}
	return out
}

func emitStmt(st Stmt, model addrspace.Model) []Line {
	switch st.Op {
	case OpDecl:
		return emitDecl(st, model)
	case OpInitLoop:
		return []Line{
			{Text: fmt.Sprintf("for (i = 0; i < n; i++) { // initialize %s", list(st.Objects)), Class: Compute},
			{Text: "    init(i);", Class: Compute},
			{Text: "}", Class: Compute},
		}
	case OpGPURegion:
		return emitGPURegion(st, model)
	case OpCPUCall:
		return []Line{{Text: fmt.Sprintf("%s(%s); // on CPU", st.Name, list(st.Objects)), Class: Compute}}
	case OpBody:
		out := make([]Line, 0, st.Count)
		for i := 0; i < st.Count; i++ {
			out = append(out, Line{Text: bodyLine(st.Name, i), Class: Compute})
		}
		return out
	case OpFree:
		return emitFree(st, model)
	default:
		panic(fmt.Sprintf("codegen: unknown op %d", st.Op))
	}
}

func emitDecl(st Stmt, model addrspace.Model) []Line {
	var out []Line
	for _, o := range st.Objects {
		switch {
		case !st.Shared:
			out = append(out, Line{Text: fmt.Sprintf("int *%s = malloc(n);", o), Class: Compute})
		case model == addrspace.Unified:
			out = append(out, Line{Text: fmt.Sprintf("int *%s = malloc(n);", o), Class: Compute})
		case model == addrspace.Disjoint:
			// The host allocation is computation (it exists under every
			// model); the device-side mirror is pure communication
			// handling: pointer, device allocation, explicit copy.
			out = append(out, Line{Text: fmt.Sprintf("int *%s = malloc(n);", o), Class: Compute})
			out = append(out, Line{Text: fmt.Sprintf("int *gpu_%s;", o), Class: Comm})
			out = append(out, Line{Text: fmt.Sprintf("gpu_%s = GPUmemallocate(n);", o), Class: Comm})
			out = append(out, Line{Text: fmt.Sprintf("Memcpy(gpu_%s, %s, MemcpyHosttoDevice);", o, o), Class: Comm})
		case model == addrspace.PartiallyShared:
			// sharedmalloc replaces malloc: still one allocation line.
			out = append(out, Line{Text: fmt.Sprintf("shared int *%s = sharedmalloc(n);", o), Class: Compute})
		case model == addrspace.ADSM:
			// malloc is replaced, but ADSM needs the adsmAlloc into the
			// accelerator-visible space and a matching accfree (emitted by
			// OpFree); the alloc line replaces malloc yet is communication
			// handling: it exists only to place data in the shared space.
			out = append(out, Line{Text: fmt.Sprintf("int *%s = malloc(n);", o), Class: Compute})
			out = append(out, Line{Text: fmt.Sprintf("%s = adsmAlloc(n);", o), Class: Comm})
		}
	}
	return out
}

func emitGPURegion(st Stmt, model addrspace.Model) []Line {
	var out []Line
	if model == addrspace.PartiallyShared {
		out = append(out, Line{Text: fmt.Sprintf("releaseOwnership(%s);", list(st.Objects)), Class: Comm})
	}
	out = append(out, Line{Text: fmt.Sprintf("%s<<<grid>>>(%s); // on GPU", st.Name, list(st.Objects)), Class: Compute})
	if model == addrspace.PartiallyShared {
		out = append(out, Line{Text: fmt.Sprintf("acquireOwnership(%s);", list(st.Objects)), Class: Comm})
	}
	return out
}

func emitFree(st Stmt, model addrspace.Model) []Line {
	var out []Line
	for _, o := range st.Objects {
		out = append(out, Line{Text: fmt.Sprintf("free(%s);", o), Class: Compute})
		if st.Shared && model == addrspace.ADSM {
			out = append(out, Line{Text: fmt.Sprintf("accfree(%s);", o), Class: Comm})
		}
	}
	// The two private temporaries.
	out = append(out, Line{Text: "free(t0);", Class: Compute})
	out = append(out, Line{Text: "free(t1);", Class: Compute})
	return out
}

func bodyLine(name string, i int) string {
	patterns := []string{
		"    %s_acc[%d] += in[i + %d] * coef[%d];",
		"    out[i + %d] = %s_acc[%d] >> shift;",
		"    if (out[i] > bound) out[i] = bound; // %s %d",
		"    idx[%d] = partition(in, lo, hi); // %s",
	}
	switch i % 4 {
	case 0:
		return fmt.Sprintf(patterns[0], name, i%8, i%16, i%8)
	case 1:
		return fmt.Sprintf(patterns[1], i%16, name, i%8)
	case 2:
		return fmt.Sprintf(patterns[2], name, i)
	default:
		return fmt.Sprintf(patterns[3], i%8, name)
	}
}

func list(objs []string) string {
	out := ""
	for i, o := range objs {
		if i > 0 {
			out += ", "
		}
		out += o
	}
	return out
}

// Count returns the number of compute and communication lines of the
// kernel under the model.
func Count(k Kernel, model addrspace.Model) (compute, comm int) {
	for _, l := range Emit(k, model) {
		if l.Class == Comm {
			comm++
		} else {
			compute++
		}
	}
	return compute, comm
}

// TableVRow is one row of Table V.
type TableVRow struct {
	Kernel string
	Comp   int
	UNI    int
	PAS    int
	DIS    int
	ADSM   int
}

// TableV regenerates Table V by emitting every kernel under every model
// and counting lines.
func TableV() []TableVRow {
	var rows []TableVRow
	for _, k := range Kernels() {
		comp, uni := Count(k, addrspace.Unified)
		_, pas := Count(k, addrspace.PartiallyShared)
		_, dis := Count(k, addrspace.Disjoint)
		_, adsm := Count(k, addrspace.ADSM)
		rows = append(rows, TableVRow{
			Kernel: k.Name, Comp: comp, UNI: uni, PAS: pas, DIS: dis, ADSM: adsm,
		})
	}
	return rows
}

// PaperTableV returns the published Table V values for comparison.
func PaperTableV() []TableVRow {
	return []TableVRow{
		{"matrix-mul", 39, 0, 2, 9, 6},
		{"merge-sort", 112, 0, 2, 6, 4},
		{"dct", 410, 0, 2, 6, 4},
		{"reduction", 142, 0, 2, 9, 6},
		{"convolution", 75, 0, 4, 9, 6},
		{"k-mean", 332, 0, 6, 6, 4},
	}
}
