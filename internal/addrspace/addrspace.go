// Package addrspace implements the memory address space design options
// of Section II-A: unified, disjoint, partially shared, and asymmetric
// distributed shared memory (ADSM). A Space manages virtual allocation in
// three regions (CPU-private, GPU-private, shared), per-PU page tables
// mapping those allocations onto each PU's physical memory, ownership
// control for the partially shared space (the LRB programming model), and
// first-touch fault tracking for shared pages.
//
// The package captures the semantic differences the paper studies:
// which PU may access which region under each model, who must maintain
// page-table mappings (the dual-mapping overhead of partially shared and
// virtually-unified spaces), and where ownership transfers and page
// faults arise.
package addrspace

import (
	"errors"
	"fmt"

	"heteromem/internal/mem"
	"heteromem/internal/obs"
)

// Model is one of the four address-space design options (Figure 1).
type Model uint8

const (
	// Unified is a single address space visible to every PU (Figure 1a).
	Unified Model = iota
	// Disjoint gives each PU a private space; all sharing is by explicit
	// copies (Figure 1b).
	Disjoint
	// PartiallyShared adds a shared region to per-PU private spaces, with
	// ownership control (Figure 1c; the LRB model).
	PartiallyShared
	// ADSM lets the CPU address everything while the GPU sees only its
	// own space; shared data lives in GPU memory (Figure 1d; GMAC).
	ADSM
	// NumModels is the number of models.
	NumModels
)

var modelNames = [NumModels]string{"unified", "disjoint", "partially-shared", "adsm"}

func (m Model) String() string {
	if int(m) < len(modelNames) {
		return modelNames[m]
	}
	return fmt.Sprintf("model(%d)", uint8(m))
}

// ParseModel returns the model named s (as produced by String, plus the
// paper's abbreviations UNI/DIS/PAS/ADSM, case-sensitive lowercase).
func ParseModel(s string) (Model, error) {
	switch s {
	case "unified", "uni":
		return Unified, nil
	case "disjoint", "dis":
		return Disjoint, nil
	case "partially-shared", "pas":
		return PartiallyShared, nil
	case "adsm":
		return ADSM, nil
	}
	return 0, fmt.Errorf("addrspace: unknown model %q", s)
}

// MarshalText implements encoding.TextMarshaler so models serialise as
// their names in declarative system configs.
func (m Model) MarshalText() ([]byte, error) {
	if m >= NumModels {
		return nil, fmt.Errorf("addrspace: invalid model %d", uint8(m))
	}
	return []byte(m.String()), nil
}

// UnmarshalText implements encoding.TextUnmarshaler.
func (m *Model) UnmarshalText(b []byte) error {
	parsed, err := ParseModel(string(b))
	if err != nil {
		return err
	}
	*m = parsed
	return nil
}

// AllModels returns the four models in paper order (UNI, PAS, DIS, ADSM
// is Table V's column order; this returns declaration order).
func AllModels() []Model {
	return []Model{Unified, Disjoint, PartiallyShared, ADSM}
}

// Region classifies where an object is allocated.
type Region uint8

const (
	// CPUPrivate is the CPU's private space.
	CPUPrivate Region = iota
	// GPUPrivate is the GPU's private space.
	GPUPrivate
	// Shared is the (partially) shared space.
	Shared
	// NumRegions is the number of regions.
	NumRegions
)

var regionNames = [NumRegions]string{"cpu-private", "gpu-private", "shared"}

func (r Region) String() string {
	if int(r) < len(regionNames) {
		return regionNames[r]
	}
	return fmt.Sprintf("region(%d)", uint8(r))
}

// Virtual layout: each region owns a fixed slice of the address space so
// Region-of-address is a pure function.
const (
	regionBits = 46
	// CPUPrivateBase, GPUPrivateBase and SharedBase are the region bases.
	CPUPrivateBase uint64 = 0
	GPUPrivateBase uint64 = 1 << regionBits
	SharedBase     uint64 = 2 << regionBits
)

// RegionOf returns the region containing the virtual address addr.
func RegionOf(addr uint64) Region {
	switch addr >> regionBits {
	case 0:
		return CPUPrivate
	case 1:
		return GPUPrivate
	default:
		return Shared
	}
}

// Errors reported by Space operations.
var (
	// ErrRegionUnsupported reports an allocation in a region the model
	// does not provide (e.g. Shared under Disjoint).
	ErrRegionUnsupported = errors.New("addrspace: region not supported by model")
	// ErrInaccessible reports an access by a PU that cannot address the
	// target region under the model.
	ErrInaccessible = errors.New("addrspace: address not accessible by this PU")
	// ErrNoOwnership reports Acquire/Release under a model without
	// ownership control.
	ErrNoOwnership = errors.New("addrspace: model has no ownership control")
	// ErrNotOwner reports a shared-space access by a PU that has not
	// acquired ownership.
	ErrNotOwner = errors.New("addrspace: PU does not own the shared object")
	// ErrNotAllocated reports an operation on an address outside any
	// live allocation.
	ErrNotAllocated = errors.New("addrspace: address not allocated")
)

// Object is one allocation.
type Object struct {
	// Base is the virtual base address.
	Base uint64
	// Size is the allocation size in bytes.
	Size uint64
	// Region is where the object lives.
	Region Region
}

// Contains reports whether addr falls inside the object.
func (o Object) Contains(addr uint64) bool {
	return addr >= o.Base && addr < o.Base+o.Size
}

// Stats counts address-space management events. MapUpdates exposes the
// dual-mapping overhead the paper discusses for partially shared and
// virtually-unified spaces: every shared page must be mapped in both
// PUs' page tables.
type Stats struct {
	Allocs           uint64
	Frees            uint64
	MapUpdates       [mem.NumPUs]uint64
	OwnershipChanges uint64
	FirstTouchFaults uint64
}

// Space is an address space instance under one model.
type Space struct {
	model    Model
	pageSize uint64
	next     [NumRegions]uint64
	objects  []Object
	// pt[pu] maps virtual page number to a physical frame in pu's memory;
	// nextFrame[pu] allocates frames sequentially.
	pt        [mem.NumPUs]map[uint64]uint64
	nextFrame [mem.NumPUs]uint64
	// owner maps a shared object base to the PU currently holding
	// ownership (PartiallyShared only).
	owner map[uint64]mem.PU
	// touched records shared pages a PU has touched, for first-touch
	// fault modeling (LRB's lib-pf).
	touched [mem.NumPUs]map[uint64]bool
	stats   Stats
	obs     spaceObs
}

// spaceObs holds the space's observability instruments under the
// addrspace.* namespace; nil instruments make every bump a no-op.
type spaceObs struct {
	allocs           *obs.Counter
	frees            *obs.Counter
	mapUpdates       [mem.NumPUs]*obs.Counter
	ownershipChanges *obs.Counter
	firstTouchFaults *obs.Counter
}

// Instrument registers the space's metrics (addrspace.*) with reg. A nil
// registry detaches the instruments.
func (s *Space) Instrument(reg *obs.Registry) {
	s.obs = spaceObs{
		allocs:           reg.Counter("addrspace.allocs"),
		frees:            reg.Counter("addrspace.frees"),
		ownershipChanges: reg.Counter("addrspace.ownership_changes"),
		firstTouchFaults: reg.Counter("addrspace.first_touch_faults"),
	}
	s.obs.mapUpdates[mem.CPU] = reg.Counter("addrspace.map_updates.cpu")
	s.obs.mapUpdates[mem.GPU] = reg.Counter("addrspace.map_updates.gpu")
}

// New returns an empty space under the given model with the given page
// size (must be a power of two; 4096 is the usual choice).
func New(model Model, pageSize uint64) (*Space, error) {
	if model >= NumModels {
		return nil, fmt.Errorf("addrspace: invalid model %d", model)
	}
	if pageSize == 0 || pageSize&(pageSize-1) != 0 {
		return nil, fmt.Errorf("addrspace: page size %d not a power of two", pageSize)
	}
	s := &Space{
		model:    model,
		pageSize: pageSize,
		owner:    make(map[uint64]mem.PU),
	}
	s.next[CPUPrivate] = CPUPrivateBase + pageSize // keep page 0 unmapped
	s.next[GPUPrivate] = GPUPrivateBase
	s.next[Shared] = SharedBase
	for p := mem.PU(0); p < mem.NumPUs; p++ {
		s.pt[p] = make(map[uint64]uint64)
		s.touched[p] = make(map[uint64]bool)
	}
	return s, nil
}

// MustNew is New but panics on configuration error.
func MustNew(model Model, pageSize uint64) *Space {
	s, err := New(model, pageSize)
	if err != nil {
		panic(err)
	}
	return s
}

// Reset returns the space to its just-constructed state: no objects, no
// mappings, no ownership or touch history, statistics cleared, and the
// region allocation cursors back at their bases (page 0 of the
// CPU-private region stays unmapped, as in New). Instruments stay wired.
func (s *Space) Reset() {
	s.next[CPUPrivate] = CPUPrivateBase + s.pageSize
	s.next[GPUPrivate] = GPUPrivateBase
	s.next[Shared] = SharedBase
	s.objects = nil
	s.nextFrame = [mem.NumPUs]uint64{}
	clear(s.owner)
	for p := mem.PU(0); p < mem.NumPUs; p++ {
		clear(s.pt[p])
		clear(s.touched[p])
	}
	s.stats = Stats{}
}

// Model returns the space's model.
func (s *Space) Model() Model { return s.model }

// PageSize returns the page size.
func (s *Space) PageSize() uint64 { return s.pageSize }

// Stats returns a snapshot of the counters.
func (s *Space) Stats() Stats { return s.stats }

// SupportsRegion reports whether the model provides the region.
func (s *Space) SupportsRegion(r Region) bool {
	switch s.model {
	case Unified:
		// One flat space; region labels are allocation hints only.
		return true
	case Disjoint:
		return r != Shared
	case PartiallyShared:
		return true
	case ADSM:
		// Shared data is allocated in the GPU's memory via adsmAlloc;
		// both private regions also exist.
		return true
	}
	return false
}

// mappedPUs returns which PUs must map pages of region r under the model
// — the page-table maintenance cost of each design option.
func (s *Space) mappedPUs(r Region) []mem.PU {
	switch s.model {
	case Unified:
		// Virtually unified with discrete memories: every PU maps every
		// page (Section II-A1's TLB/page-table complication).
		return []mem.PU{mem.CPU, mem.GPU}
	case Disjoint:
		if r == CPUPrivate {
			return []mem.PU{mem.CPU}
		}
		return []mem.PU{mem.GPU}
	case PartiallyShared:
		switch r {
		case CPUPrivate:
			return []mem.PU{mem.CPU}
		case GPUPrivate:
			return []mem.PU{mem.GPU}
		default:
			// The shared region must be mapped in both page tables.
			return []mem.PU{mem.CPU, mem.GPU}
		}
	case ADSM:
		switch r {
		case CPUPrivate:
			return []mem.PU{mem.CPU}
		case GPUPrivate:
			return []mem.PU{mem.GPU}
		default:
			// ADSM: identical ranges allocated on both PUs, but only the
			// CPU maintains coherent mappings over the whole space.
			return []mem.PU{mem.CPU, mem.GPU}
		}
	}
	return nil
}

// Alloc reserves size bytes in region r and maps the pages in every PU
// that must see them under the model.
func (s *Space) Alloc(size uint64, r Region) (Object, error) {
	if r >= NumRegions {
		return Object{}, fmt.Errorf("addrspace: invalid region %d", r)
	}
	if !s.SupportsRegion(r) {
		return Object{}, fmt.Errorf("%w: %v under %v", ErrRegionUnsupported, r, s.model)
	}
	if size == 0 {
		return Object{}, errors.New("addrspace: zero-size allocation")
	}
	pages := (size + s.pageSize - 1) / s.pageSize
	base := s.next[r]
	s.next[r] += pages * s.pageSize
	o := Object{Base: base, Size: size, Region: r}
	s.objects = append(s.objects, o)
	s.stats.Allocs++
	s.obs.allocs.Inc()
	for _, pu := range s.mappedPUs(r) {
		for p := uint64(0); p < pages; p++ {
			vpn := (base + p*s.pageSize) / s.pageSize
			s.pt[pu][vpn] = s.nextFrame[pu]
			s.nextFrame[pu]++
			s.stats.MapUpdates[pu]++
			s.obs.mapUpdates[pu].Inc()
		}
	}
	if s.model == PartiallyShared && r == Shared {
		// Shared objects start CPU-owned: the host initialises data.
		s.owner[base] = mem.CPU
	}
	return o, nil
}

// Free releases the object's pages from every page table that held them.
func (s *Space) Free(o Object) error {
	idx := -1
	for i, obj := range s.objects {
		if obj.Base == o.Base && obj.Size == o.Size {
			idx = i
			break
		}
	}
	if idx < 0 {
		return ErrNotAllocated
	}
	s.objects = append(s.objects[:idx], s.objects[idx+1:]...)
	pages := (o.Size + s.pageSize - 1) / s.pageSize
	for _, pu := range s.mappedPUs(o.Region) {
		for p := uint64(0); p < pages; p++ {
			vpn := (o.Base + p*s.pageSize) / s.pageSize
			delete(s.pt[pu], vpn)
			s.stats.MapUpdates[pu]++
			s.obs.mapUpdates[pu].Inc()
		}
	}
	delete(s.owner, o.Base)
	s.stats.Frees++
	s.obs.frees.Inc()
	return nil
}

// objectAt returns the live object containing addr.
func (s *Space) objectAt(addr uint64) (Object, bool) {
	for _, o := range s.objects {
		if o.Contains(addr) {
			return o, true
		}
	}
	return Object{}, false
}

// Accessible reports whether pu may address the region containing addr
// under the model, ignoring ownership (see CheckAccess for the full
// check).
func (s *Space) Accessible(pu mem.PU, addr uint64) bool {
	r := RegionOf(addr)
	switch s.model {
	case Unified:
		return true
	case Disjoint:
		return (pu == mem.CPU && r == CPUPrivate) || (pu == mem.GPU && r == GPUPrivate)
	case PartiallyShared:
		switch r {
		case CPUPrivate:
			return pu == mem.CPU
		case GPUPrivate:
			return pu == mem.GPU
		default:
			return true
		}
	case ADSM:
		if pu == mem.CPU {
			return true // the CPU addresses the entire space
		}
		return r != CPUPrivate
	}
	return false
}

// CheckAccess validates an access by pu to addr: the address must be
// allocated, the region reachable under the model, and — for the
// partially shared space — owned by pu.
func (s *Space) CheckAccess(pu mem.PU, addr uint64) error {
	o, ok := s.objectAt(addr)
	if !ok {
		return fmt.Errorf("%w: %#x", ErrNotAllocated, addr)
	}
	if !s.Accessible(pu, addr) {
		return fmt.Errorf("%w: %v at %#x (%v, %v)", ErrInaccessible, pu, addr, o.Region, s.model)
	}
	if s.model == PartiallyShared && o.Region == Shared {
		if owner, ok := s.owner[o.Base]; ok && owner != pu {
			return fmt.Errorf("%w: %v accessing %#x owned by %v", ErrNotOwner, pu, addr, owner)
		}
	}
	return nil
}

// HasOwnership reports whether the model uses ownership control.
func (s *Space) HasOwnership() bool { return s.model == PartiallyShared }

// Acquire transfers ownership of the shared object o to pu (the LRB
// acquireOwnership action). The previous owner's cached copies must be
// flushed by the caller; the space only tracks the protocol.
func (s *Space) Acquire(pu mem.PU, o Object) error {
	if !s.HasOwnership() {
		return fmt.Errorf("%w: %v", ErrNoOwnership, s.model)
	}
	if o.Region != Shared {
		return fmt.Errorf("addrspace: ownership applies to shared objects, not %v", o.Region)
	}
	if _, ok := s.objectAt(o.Base); !ok {
		return ErrNotAllocated
	}
	if s.owner[o.Base] != pu {
		s.owner[o.Base] = pu
		s.stats.OwnershipChanges++
		s.obs.ownershipChanges.Inc()
	}
	return nil
}

// Release relinquishes pu's ownership of o (the LRB releaseOwnership
// action), leaving the object unowned until the next Acquire.
func (s *Space) Release(pu mem.PU, o Object) error {
	if !s.HasOwnership() {
		return fmt.Errorf("%w: %v", ErrNoOwnership, s.model)
	}
	owner, ok := s.owner[o.Base]
	if !ok {
		return nil // already unowned
	}
	if owner != pu {
		return fmt.Errorf("%w: %v releasing object owned by %v", ErrNotOwner, pu, owner)
	}
	delete(s.owner, o.Base)
	s.stats.OwnershipChanges++
	s.obs.ownershipChanges.Inc()
	return nil
}

// OwnerOf returns the PU owning the shared object based at base.
func (s *Space) OwnerOf(base uint64) (mem.PU, bool) {
	pu, ok := s.owner[base]
	return pu, ok
}

// Touch records pu touching the shared page containing addr and reports
// whether this is the first touch — the event that costs lib-pf in the
// LRB system (a page fault maps the shared page on demand).
func (s *Space) Touch(pu mem.PU, addr uint64) bool {
	if RegionOf(addr) != Shared {
		return false
	}
	page := addr / s.pageSize
	if s.touched[pu][page] {
		return false
	}
	s.touched[pu][page] = true
	s.stats.FirstTouchFaults++
	s.obs.firstTouchFaults.Inc()
	return true
}

// Translate returns pu's physical address for the virtual address addr.
// The same shared virtual page maps to different physical frames on each
// PU when memories are discrete — exactly the property that lets each PU
// keep its own page-table format and page size (Section II-A1).
func (s *Space) Translate(pu mem.PU, addr uint64) (uint64, error) {
	if err := s.CheckAccess(pu, addr); err != nil {
		return 0, err
	}
	vpn := addr / s.pageSize
	frame, ok := s.pt[pu][vpn]
	if !ok {
		return 0, fmt.Errorf("%w: no mapping for %v page %#x", ErrNotAllocated, pu, vpn)
	}
	return frame*s.pageSize + addr%s.pageSize, nil
}

// MappedPages returns how many pages pu currently has mapped.
func (s *Space) MappedPages(pu mem.PU) int { return len(s.pt[pu]) }

// LiveObjects returns the number of live allocations.
func (s *Space) LiveObjects() int { return len(s.objects) }
