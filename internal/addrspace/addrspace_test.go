package addrspace

import (
	"errors"
	"testing"
	"testing/quick"

	"heteromem/internal/mem"
)

func space(t *testing.T, m Model) *Space {
	t.Helper()
	s, err := New(m, 4096)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestModelStringsAndParse(t *testing.T) {
	for _, m := range AllModels() {
		parsed, err := ParseModel(m.String())
		if err != nil || parsed != m {
			t.Errorf("round trip %v failed: %v %v", m, parsed, err)
		}
	}
	for in, want := range map[string]Model{"uni": Unified, "dis": Disjoint, "pas": PartiallyShared, "adsm": ADSM} {
		if got, err := ParseModel(in); err != nil || got != want {
			t.Errorf("ParseModel(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseModel("bogus"); err == nil {
		t.Error("bogus model parsed")
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Model(99), 4096); err == nil {
		t.Error("invalid model accepted")
	}
	if _, err := New(Unified, 1000); err == nil {
		t.Error("non-power-of-two page size accepted")
	}
	if _, err := New(Unified, 0); err == nil {
		t.Error("zero page size accepted")
	}
}

func TestRegionOf(t *testing.T) {
	if RegionOf(CPUPrivateBase+123) != CPUPrivate {
		t.Error("CPU base misclassified")
	}
	if RegionOf(GPUPrivateBase+123) != GPUPrivate {
		t.Error("GPU base misclassified")
	}
	if RegionOf(SharedBase+123) != Shared {
		t.Error("shared base misclassified")
	}
}

func TestDisjointForbidsShared(t *testing.T) {
	s := space(t, Disjoint)
	if _, err := s.Alloc(4096, Shared); !errors.Is(err, ErrRegionUnsupported) {
		t.Fatalf("disjoint shared alloc: %v, want ErrRegionUnsupported", err)
	}
	if _, err := s.Alloc(4096, CPUPrivate); err != nil {
		t.Fatalf("disjoint CPU alloc failed: %v", err)
	}
}

func TestZeroSizeAllocRejected(t *testing.T) {
	s := space(t, Unified)
	if _, err := s.Alloc(0, CPUPrivate); err == nil {
		t.Fatal("zero-size alloc accepted")
	}
}

func TestAccessibilityMatrix(t *testing.T) {
	// For each model: can (CPU,GPU) access (cpu-private, gpu-private, shared)?
	type row struct {
		model Model
		cpu   [3]bool
		gpu   [3]bool
	}
	rows := []row{
		{Unified, [3]bool{true, true, true}, [3]bool{true, true, true}},
		{Disjoint, [3]bool{true, false, false}, [3]bool{false, true, false}},
		{PartiallyShared, [3]bool{true, false, true}, [3]bool{false, true, true}},
		{ADSM, [3]bool{true, true, true}, [3]bool{false, true, true}},
	}
	addrs := [3]uint64{CPUPrivateBase + 8192, GPUPrivateBase + 8192, SharedBase + 8192}
	for _, r := range rows {
		s := space(t, r.model)
		for i, a := range addrs {
			if got := s.Accessible(mem.CPU, a); got != r.cpu[i] {
				t.Errorf("%v: CPU access to %v = %v, want %v", r.model, RegionOf(a), got, r.cpu[i])
			}
			if got := s.Accessible(mem.GPU, a); got != r.gpu[i] {
				t.Errorf("%v: GPU access to %v = %v, want %v", r.model, RegionOf(a), got, r.gpu[i])
			}
		}
	}
}

func TestCheckAccessUnallocated(t *testing.T) {
	s := space(t, Unified)
	if err := s.CheckAccess(mem.CPU, 0x123456); !errors.Is(err, ErrNotAllocated) {
		t.Fatalf("unallocated access: %v", err)
	}
}

func TestDisjointCrossAccessRejected(t *testing.T) {
	s := space(t, Disjoint)
	o, err := s.Alloc(4096, CPUPrivate)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.CheckAccess(mem.CPU, o.Base); err != nil {
		t.Fatalf("owner access rejected: %v", err)
	}
	if err := s.CheckAccess(mem.GPU, o.Base); !errors.Is(err, ErrInaccessible) {
		t.Fatalf("cross access: %v, want ErrInaccessible", err)
	}
}

func TestOwnershipLifecycle(t *testing.T) {
	s := space(t, PartiallyShared)
	o, err := s.Alloc(8192, Shared)
	if err != nil {
		t.Fatal(err)
	}
	// Shared objects start CPU-owned (the host initialises them).
	if owner, ok := s.OwnerOf(o.Base); !ok || owner != mem.CPU {
		t.Fatalf("initial owner = %v,%v, want CPU", owner, ok)
	}
	// GPU access while CPU owns: rejected.
	if err := s.CheckAccess(mem.GPU, o.Base); !errors.Is(err, ErrNotOwner) {
		t.Fatalf("GPU access while CPU owns: %v", err)
	}
	// CPU releases, GPU acquires, GPU can access, CPU cannot.
	if err := s.Release(mem.CPU, o); err != nil {
		t.Fatal(err)
	}
	if err := s.Acquire(mem.GPU, o); err != nil {
		t.Fatal(err)
	}
	if err := s.CheckAccess(mem.GPU, o.Base); err != nil {
		t.Fatalf("GPU access after acquire: %v", err)
	}
	if err := s.CheckAccess(mem.CPU, o.Base); !errors.Is(err, ErrNotOwner) {
		t.Fatalf("CPU access after GPU acquire: %v", err)
	}
	if s.Stats().OwnershipChanges != 2 {
		t.Fatalf("ownership changes = %d, want 2", s.Stats().OwnershipChanges)
	}
}

func TestReleaseByNonOwnerRejected(t *testing.T) {
	s := space(t, PartiallyShared)
	o, _ := s.Alloc(4096, Shared)
	if err := s.Release(mem.GPU, o); !errors.Is(err, ErrNotOwner) {
		t.Fatalf("non-owner release: %v", err)
	}
}

func TestOwnershipOnlyUnderPAS(t *testing.T) {
	for _, m := range []Model{Unified, Disjoint, ADSM} {
		s := space(t, m)
		region := CPUPrivate
		if m != Disjoint {
			region = Shared
		}
		o, err := s.Alloc(4096, region)
		if err != nil {
			t.Fatalf("%v alloc: %v", m, err)
		}
		if err := s.Acquire(mem.CPU, o); !errors.Is(err, ErrNoOwnership) {
			t.Errorf("%v: acquire = %v, want ErrNoOwnership", m, err)
		}
		if s.HasOwnership() {
			t.Errorf("%v reports ownership", m)
		}
	}
}

func TestFirstTouchFaults(t *testing.T) {
	s := space(t, PartiallyShared)
	o, _ := s.Alloc(3*4096, Shared)
	if !s.Touch(mem.GPU, o.Base) {
		t.Fatal("first touch not a fault")
	}
	if s.Touch(mem.GPU, o.Base+100) {
		t.Fatal("second touch of same page faulted")
	}
	if !s.Touch(mem.GPU, o.Base+4096) {
		t.Fatal("first touch of second page not a fault")
	}
	// Touching a private region never faults.
	p, _ := s.Alloc(4096, CPUPrivate)
	if s.Touch(mem.CPU, p.Base) {
		t.Fatal("private touch faulted")
	}
	if s.Stats().FirstTouchFaults != 2 {
		t.Fatalf("faults = %d, want 2", s.Stats().FirstTouchFaults)
	}
}

func TestPageTableMappingCosts(t *testing.T) {
	// A shared allocation must be mapped in both page tables under
	// PartiallyShared; a private one in only its own PU's table.
	s := space(t, PartiallyShared)
	if _, err := s.Alloc(2*4096, Shared); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.MapUpdates[mem.CPU] != 2 || st.MapUpdates[mem.GPU] != 2 {
		t.Fatalf("shared mapping updates %v, want 2 each", st.MapUpdates)
	}
	if _, err := s.Alloc(4096, CPUPrivate); err != nil {
		t.Fatal(err)
	}
	st = s.Stats()
	if st.MapUpdates[mem.CPU] != 3 || st.MapUpdates[mem.GPU] != 2 {
		t.Fatalf("private mapping updates %v", st.MapUpdates)
	}

	// Unified with discrete memories maps everything everywhere.
	u := space(t, Unified)
	if _, err := u.Alloc(4096, CPUPrivate); err != nil {
		t.Fatal(err)
	}
	ust := u.Stats()
	if ust.MapUpdates[mem.CPU] != 1 || ust.MapUpdates[mem.GPU] != 1 {
		t.Fatalf("unified mapping updates %v, want 1 each", ust.MapUpdates)
	}
}

func TestTranslateDistinctPhysical(t *testing.T) {
	s := space(t, PartiallyShared)
	o, _ := s.Alloc(4096, Shared)
	pCPU, err := s.Translate(mem.CPU, o.Base+12)
	if err != nil {
		t.Fatal(err)
	}
	// GPU can't translate while CPU owns; hand over first.
	if err := s.Release(mem.CPU, o); err != nil {
		t.Fatal(err)
	}
	if err := s.Acquire(mem.GPU, o); err != nil {
		t.Fatal(err)
	}
	pGPU, err := s.Translate(mem.GPU, o.Base+12)
	if err != nil {
		t.Fatal(err)
	}
	if pCPU%4096 != 12 || pGPU%4096 != 12 {
		t.Fatal("page offset not preserved")
	}
	// Frames allocated independently per PU; the first shared page lands
	// in frame 0 of both, so equality here is fine — what matters is that
	// both translations exist independently.
	if s.MappedPages(mem.CPU) != 1 || s.MappedPages(mem.GPU) != 1 {
		t.Fatalf("mapped pages %d/%d", s.MappedPages(mem.CPU), s.MappedPages(mem.GPU))
	}
}

func TestFree(t *testing.T) {
	s := space(t, PartiallyShared)
	o, _ := s.Alloc(4096, Shared)
	if err := s.Free(o); err != nil {
		t.Fatal(err)
	}
	if s.LiveObjects() != 0 {
		t.Fatal("object survived free")
	}
	if s.MappedPages(mem.CPU) != 0 || s.MappedPages(mem.GPU) != 0 {
		t.Fatal("mappings survived free")
	}
	if err := s.Free(o); !errors.Is(err, ErrNotAllocated) {
		t.Fatalf("double free: %v", err)
	}
	if err := s.CheckAccess(mem.CPU, o.Base); !errors.Is(err, ErrNotAllocated) {
		t.Fatalf("access after free: %v", err)
	}
}

func TestADSMAsymmetry(t *testing.T) {
	s := space(t, ADSM)
	cpuObj, _ := s.Alloc(4096, CPUPrivate)
	shObj, _ := s.Alloc(4096, Shared)
	// CPU reaches everything, including shared (GPU-resident) data.
	if err := s.CheckAccess(mem.CPU, shObj.Base); err != nil {
		t.Fatalf("CPU to shared: %v", err)
	}
	// GPU cannot reach CPU-private data.
	if err := s.CheckAccess(mem.GPU, cpuObj.Base); !errors.Is(err, ErrInaccessible) {
		t.Fatalf("GPU to CPU-private: %v", err)
	}
	if err := s.CheckAccess(mem.GPU, shObj.Base); err != nil {
		t.Fatalf("GPU to shared: %v", err)
	}
}

// Property: allocations never overlap, every allocated byte is
// translatable by at least one PU, and offsets are preserved.
func TestAllocDisjointProperty(t *testing.T) {
	f := func(sizes []uint16, regionSel []uint8) bool {
		s := MustNew(PartiallyShared, 4096)
		n := len(sizes)
		if len(regionSel) < n {
			n = len(regionSel)
		}
		var objs []Object
		for i := 0; i < n && i < 32; i++ {
			size := uint64(sizes[i])%20000 + 1
			r := Region(regionSel[i] % uint8(NumRegions))
			o, err := s.Alloc(size, r)
			if err != nil {
				return false
			}
			objs = append(objs, o)
		}
		for i := range objs {
			for j := i + 1; j < len(objs); j++ {
				a, b := objs[i], objs[j]
				if a.Base < b.Base+b.Size && b.Base < a.Base+a.Size {
					return false // overlap
				}
			}
			pu := mem.CPU
			if objs[i].Region == GPUPrivate {
				pu = mem.GPU
			}
			p, err := s.Translate(pu, objs[i].Base)
			if err != nil || p%4096 != objs[i].Base%4096 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkAllocFree(b *testing.B) {
	s := MustNew(PartiallyShared, 4096)
	for i := 0; i < b.N; i++ {
		o, err := s.Alloc(8192, Shared)
		if err != nil {
			b.Fatal(err)
		}
		if err := s.Free(o); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCheckAccess(b *testing.B) {
	s := MustNew(PartiallyShared, 4096)
	o, _ := s.Alloc(1<<20, Shared)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.CheckAccess(mem.CPU, o.Base+uint64(i)%o.Size)
	}
}
