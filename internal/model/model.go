// Package model isolates the programming-model protocols of the design
// space: the runtime behaviours a memory model imposes at phase
// boundaries — ownership acquire/release around kernel launches (LRB),
// first-touch page faults on freshly shared data (lib-pf), ADSM's lazy
// asynchronous copies with return synchronisation (GMAC), and the plain
// explicit-copy discipline of disjoint spaces (CUDA, Fusion).
//
// A Protocol owns all of that state (pending acquires, queued faults,
// the async-ready horizon) and exposes hook points the simulator calls
// at phase boundaries:
//
//   - KernelEntry — start of a parallel phase; returns the GPU prologue
//     stream (ownership acquire, queued first-touch faults).
//   - KernelReturn — a device-to-host transfer phase; a protocol that
//     keeps results in a host-addressable space elides the bulk copy and
//     charges its own return cost instead.
//   - BeforeTransfer — ahead of a host-to-device bulk copy; charges
//     release costs and queues kernel-entry work.
//   - AfterTransfer — after a bulk copy is issued; tracks the completion
//     horizon of asynchronous copies.
//   - SyncPoint — a synchronisation point (program end); blocks until
//     outstanding asynchronous copies land.
//
// Protocols act on the machine through the Env interface the simulator
// implements, so the simulator stays free of per-model branches and new
// protocols compose with any address-space model and fabric the design
// space offers.
package model

import (
	"fmt"

	"heteromem/internal/addrspace"
	"heteromem/internal/clock"
	"heteromem/internal/comm"
	"heteromem/internal/mem"
	"heteromem/internal/obs"
	"heteromem/internal/trace"
)

// Env is the surface of the simulated machine a protocol acts through.
// All mutation of shared simulator state (result counters, CPU stream
// execution, cache flushes) goes through here, so protocol state stays
// inside the protocol.
type Env interface {
	// SharedHandle returns the run's shared-space object (zero Size when
	// the program has none under the current model).
	SharedHandle() addrspace.Object
	// Space is the address space the run allocates in; protocols walk
	// ownership transfers on it so space statistics reflect handovers.
	Space() *addrspace.Space
	// FlushPrivate writes back and invalidates pu's private caches —
	// release consistency's obligation at ownership handovers.
	FlushPrivate(pu mem.PU)
	// RunCPUStream executes the instruction stream on the CPU core
	// starting at now, accumulates its statistics into the current
	// result, and returns the completion time.
	RunCPUStream(st trace.Stream, now clock.Time) clock.Time
	// Fabric is the hardware communication mechanism of the run.
	Fabric() comm.Fabric
	// Tracer returns the attached tracer; nil-safe, may be nil.
	Tracer() *obs.Tracer
	// ChargeComm adds d to the run's communication time.
	ChargeComm(d clock.Duration)
	// CountOwnershipOp records one injected acquire/release action.
	CountOwnershipOp()
	// CountPageFaults records n lib-pf events.
	CountPageFaults(n int)
}

// Protocol is one programming-model protocol. A Protocol is stateful
// across the phases of a run; Reset returns it to its just-constructed
// state.
type Protocol interface {
	// Name identifies the protocol in reports and configs.
	Name() string
	// KernelEntry appends the GPU prologue for a parallel phase starting
	// at now to dst and returns it. The simulator executes the returned
	// stream on the GPU core before the kernel body.
	KernelEntry(env Env, now clock.Time, dst trace.Stream) trace.Stream
	// KernelReturn handles a device-to-host transfer phase. handled
	// reports that the bulk copy is elided (the result already lives in a
	// space the CPU can address) and any protocol cost has been charged;
	// when handled is false the protocol must not advance time and the
	// simulator runs the bulk copy.
	KernelReturn(env Env, now clock.Time) (end clock.Time, handled bool, err error)
	// BeforeTransfer runs ahead of a host-to-device bulk copy of bytes at
	// addr: ownership release, first-touch fault queueing.
	BeforeTransfer(env Env, addr, bytes uint64, now clock.Time) (clock.Time, error)
	// AfterTransfer observes the completion time of a bulk copy issued by
	// the simulator, extending the async-ready horizon when the fabric
	// copies asynchronously.
	AfterTransfer(env Env, done clock.Time)
	// SyncPoint blocks until outstanding asynchronous copies land,
	// charging the exposed wait as communication.
	SyncPoint(env Env, now clock.Time) clock.Time
	// Reset returns the protocol to its just-constructed state.
	Reset()
}

// Kind names a built-in protocol.
type Kind uint8

const (
	// ExplicitCopy is the CUDA/Fusion discipline: every data exchange is
	// an explicit bulk copy, including transferring results back.
	ExplicitCopy Kind = iota
	// Ownership is acquire/release ownership control over a partially
	// shared space without first-touch faults — the pure PAS semantics of
	// the Figure 7 experiment.
	Ownership
	// OwnershipFirstTouch is the full LRB model: ownership control plus
	// lib-pf page faults when the GPU first touches freshly shared data.
	OwnershipFirstTouch
	// ADSMLazy is GMAC's asymmetric-distributed-shared-memory model:
	// asynchronous copies overlapped with computation and a return
	// synchronisation that elides the copy-back.
	ADSMLazy
	// Ideal is the no-op protocol of a unified, coherent machine: no
	// ownership, no faults, no elision — hardware does everything.
	Ideal
	// NumKinds is the number of built-in protocols.
	NumKinds
)

var kindNames = [NumKinds]string{
	"explicit-copy", "ownership", "ownership-first-touch", "adsm", "ideal",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("protocol(%d)", uint8(k))
}

// ParseKind returns the protocol kind named s (as produced by String).
func ParseKind(s string) (Kind, error) {
	for k, name := range kindNames {
		if s == name {
			return Kind(k), nil
		}
	}
	return 0, fmt.Errorf("model: unknown protocol %q", s)
}

// MarshalText implements encoding.TextMarshaler so kinds serialise as
// their names in declarative configs.
func (k Kind) MarshalText() ([]byte, error) {
	if k >= NumKinds {
		return nil, fmt.Errorf("model: invalid protocol kind %d", uint8(k))
	}
	return []byte(k.String()), nil
}

// UnmarshalText implements encoding.TextUnmarshaler.
func (k *Kind) UnmarshalText(b []byte) error {
	parsed, err := ParseKind(string(b))
	if err != nil {
		return err
	}
	*k = parsed
	return nil
}

// AllKinds returns the built-in protocols in declaration order.
func AllKinds() []Kind {
	return []Kind{ExplicitCopy, Ownership, OwnershipFirstTouch, ADSMLazy, Ideal}
}

// UsesOwnership reports whether the protocol injects acquire/release
// ownership actions, which require a space with ownership control.
func (k Kind) UsesOwnership() bool {
	return k == Ownership || k == OwnershipFirstTouch
}

// FirstTouchFaults reports whether the protocol charges lib-pf on the
// GPU's first touch of freshly shared data.
func (k Kind) FirstTouchFaults() bool { return k == OwnershipFirstTouch }

// ElidesDeviceToHost reports whether the protocol skips device-to-host
// copies because results already live in a host-addressable space.
func (k Kind) ElidesDeviceToHost() bool {
	return k == Ownership || k == OwnershipFirstTouch || k == ADSMLazy
}

// New returns a fresh protocol of the given kind. faultGranularity sets
// the page size behind first-touch faults: one lib-pf per granule of
// freshly shared data, zero meaning one fault per object (large pages);
// kinds without faults ignore it.
func New(k Kind, faultGranularity uint64) (Protocol, error) {
	switch k {
	case ExplicitCopy:
		return &explicitCopy{}, nil
	case Ownership:
		return newOwnership(false, 0), nil
	case OwnershipFirstTouch:
		return newOwnership(true, faultGranularity), nil
	case ADSMLazy:
		return &adsmLazy{}, nil
	case Ideal:
		return &ideal{}, nil
	default:
		return nil, fmt.Errorf("model: unknown protocol kind %d", uint8(k))
	}
}
