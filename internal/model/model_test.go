package model

import (
	"strings"
	"testing"

	"heteromem/internal/addrspace"
	"heteromem/internal/clock"
	"heteromem/internal/comm"
	"heteromem/internal/config"
	"heteromem/internal/isa"
	"heteromem/internal/mem"
	"heteromem/internal/obs"
	"heteromem/internal/trace"
)

// fakeEnv records what a protocol asks of the machine. The CPU "core"
// charges a fixed latency per stream so tests can assert time motion.
type fakeEnv struct {
	handle  addrspace.Object
	space   *addrspace.Space
	fabric  comm.Fabric
	comm    clock.Duration
	ownOps  int
	faults  int
	flushed []mem.PU
	streams []trace.Stream
}

const fakeStreamLatency = clock.Duration(1000)

func (e *fakeEnv) SharedHandle() addrspace.Object { return e.handle }
func (e *fakeEnv) Space() *addrspace.Space        { return e.space }
func (e *fakeEnv) FlushPrivate(pu mem.PU)         { e.flushed = append(e.flushed, pu) }
func (e *fakeEnv) RunCPUStream(st trace.Stream, now clock.Time) clock.Time {
	e.streams = append(e.streams, st)
	return now.Add(fakeStreamLatency)
}
func (e *fakeEnv) Fabric() comm.Fabric         { return e.fabric }
func (e *fakeEnv) Tracer() *obs.Tracer         { return nil }
func (e *fakeEnv) ChargeComm(d clock.Duration) { e.comm += d }
func (e *fakeEnv) CountOwnershipOp()           { e.ownOps++ }
func (e *fakeEnv) CountPageFaults(n int)       { e.faults += n }

func syncEnv() *fakeEnv  { return &fakeEnv{fabric: comm.NewIdeal()} }
func asyncEnv() *fakeEnv { return &fakeEnv{fabric: comm.NewPCIe(config.TableIV(), true)} }

func TestKindRoundTrip(t *testing.T) {
	for _, k := range AllKinds() {
		parsed, err := ParseKind(k.String())
		if err != nil {
			t.Fatalf("ParseKind(%q): %v", k, err)
		}
		if parsed != k {
			t.Errorf("ParseKind(%q) = %v", k, parsed)
		}
		text, err := k.MarshalText()
		if err != nil {
			t.Fatalf("%v.MarshalText: %v", k, err)
		}
		var back Kind
		if err := back.UnmarshalText(text); err != nil {
			t.Fatalf("UnmarshalText(%q): %v", text, err)
		}
		if back != k {
			t.Errorf("text round trip %v -> %q -> %v", k, text, back)
		}
	}
	if _, err := ParseKind("warp-drive"); err == nil {
		t.Error("ParseKind accepted an unknown name")
	}
	if _, err := NumKinds.MarshalText(); err == nil {
		t.Error("MarshalText accepted an out-of-range kind")
	}
}

func TestKindPredicates(t *testing.T) {
	if !OwnershipFirstTouch.UsesOwnership() || !Ownership.UsesOwnership() {
		t.Error("ownership kinds should use ownership")
	}
	if ExplicitCopy.UsesOwnership() || ADSMLazy.UsesOwnership() || Ideal.UsesOwnership() {
		t.Error("non-ownership kinds report ownership")
	}
	if !OwnershipFirstTouch.FirstTouchFaults() || Ownership.FirstTouchFaults() {
		t.Error("only ownership-first-touch takes faults")
	}
	for _, k := range []Kind{Ownership, OwnershipFirstTouch, ADSMLazy} {
		if !k.ElidesDeviceToHost() {
			t.Errorf("%v should elide the copy-back", k)
		}
	}
	for _, k := range []Kind{ExplicitCopy, Ideal} {
		if k.ElidesDeviceToHost() {
			t.Errorf("%v should run the copy-back", k)
		}
	}
}

func TestNewNamesMatchKinds(t *testing.T) {
	for _, k := range AllKinds() {
		p, err := New(k, 0)
		if err != nil {
			t.Fatalf("New(%v): %v", k, err)
		}
		if p.Name() != k.String() {
			t.Errorf("New(%v).Name() = %q", k, p.Name())
		}
	}
	if _, err := New(NumKinds, 0); err == nil {
		t.Error("New accepted an unknown kind")
	}
}

func TestOwnershipFaultQueueing(t *testing.T) {
	env := syncEnv()
	p, err := New(OwnershipFirstTouch, 0)
	if err != nil {
		t.Fatal(err)
	}
	// First host-to-device transfer of an object: release + one queued
	// fault (large pages cover the whole object).
	end, err := p.BeforeTransfer(env, 0x1000, 1<<20, 0)
	if err != nil {
		t.Fatal(err)
	}
	if end != clock.Time(0).Add(fakeStreamLatency) {
		t.Errorf("release end = %v, want the CPU stream latency", end)
	}
	if env.ownOps != 1 {
		t.Errorf("ownership ops after release = %d, want 1", env.ownOps)
	}
	prologue := p.KernelEntry(env, end, nil)
	var acq, pf int
	for _, inst := range prologue {
		switch inst.Kind {
		case isa.APIAcquire:
			acq++
		case isa.LibPageFault:
			pf++
		}
	}
	if acq != 1 || pf != 1 {
		t.Errorf("prologue = %d acquires + %d faults, want 1+1", acq, pf)
	}
	if env.faults != 1 || env.ownOps != 2 {
		t.Errorf("counters = %d faults, %d ownership ops, want 1, 2", env.faults, env.ownOps)
	}
	// Retransfer of the same object: release again, but no new fault.
	if _, err := p.BeforeTransfer(env, 0x1000, 1<<20, end); err != nil {
		t.Fatal(err)
	}
	if got := p.KernelEntry(env, end, nil); len(got) != 1 || got[0].Kind != isa.APIAcquire {
		t.Errorf("retransfer prologue = %v, want a lone acquire", got)
	}
	if env.faults != 1 {
		t.Errorf("faults after retransfer = %d, want still 1", env.faults)
	}
}

func TestOwnershipFaultGranularity(t *testing.T) {
	env := syncEnv()
	p, err := New(OwnershipFirstTouch, 4096)
	if err != nil {
		t.Fatal(err)
	}
	// 10000 bytes at 4 KiB pages = ceil(10000/4096) = 3 faults.
	if _, err := p.BeforeTransfer(env, 0x2000, 10000, 0); err != nil {
		t.Fatal(err)
	}
	p.KernelEntry(env, 0, nil)
	if env.faults != 3 {
		t.Errorf("faults = %d, want 3 (one per 4 KiB granule)", env.faults)
	}
}

func TestOwnershipWalksSpace(t *testing.T) {
	sp, err := addrspace.New(addrspace.PartiallyShared, 4096)
	if err != nil {
		t.Fatal(err)
	}
	obj, err := sp.Alloc(1<<16, addrspace.Shared)
	if err != nil {
		t.Fatal(err)
	}
	env := syncEnv()
	env.space = sp
	env.handle = obj
	p, err := New(OwnershipFirstTouch, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.BeforeTransfer(env, obj.Base, obj.Size, 0); err != nil {
		t.Fatal(err)
	}
	if len(env.flushed) == 0 || env.flushed[0] != mem.CPU {
		t.Errorf("release did not flush the CPU caches: %v", env.flushed)
	}
	p.KernelEntry(env, 0, nil)
	if owner, ok := sp.OwnerOf(obj.Base); !ok || owner != mem.GPU {
		t.Errorf("owner after kernel entry = %v/%v, want GPU", owner, ok)
	}
	end, handled, err := p.KernelReturn(env, 0)
	if err != nil || !handled {
		t.Fatalf("KernelReturn = (%v, %v, %v), want handled", end, handled, err)
	}
	if owner, ok := sp.OwnerOf(obj.Base); !ok || owner != mem.CPU {
		t.Errorf("owner after kernel return = %v/%v, want CPU", owner, ok)
	}
}

func TestAsyncHorizon(t *testing.T) {
	env := asyncEnv()
	p, err := New(ADSMLazy, 0)
	if err != nil {
		t.Fatal(err)
	}
	p.AfterTransfer(env, clock.Time(5000))
	got := p.SyncPoint(env, clock.Time(1000))
	if got != clock.Time(5000) {
		t.Errorf("SyncPoint = %v, want the copy horizon 5000", got)
	}
	if env.comm != clock.Duration(4000) {
		t.Errorf("exposed wait charged = %v, want 4000", env.comm)
	}
	// A later sync point has nothing left to wait for.
	if got := p.SyncPoint(env, clock.Time(6000)); got != clock.Time(6000) {
		t.Errorf("second SyncPoint = %v, want now", got)
	}
	p.Reset()
	if got := p.SyncPoint(env, clock.Time(0)); got != 0 {
		t.Errorf("SyncPoint after Reset = %v, want 0", got)
	}
}

func TestSyncFabricTracksNoHorizon(t *testing.T) {
	env := syncEnv()
	p, err := New(ExplicitCopy, 0)
	if err != nil {
		t.Fatal(err)
	}
	// A synchronous fabric blocks inside the transfer; the protocol must
	// not double-charge the copy at sync points.
	p.AfterTransfer(env, clock.Time(9000))
	if got := p.SyncPoint(env, clock.Time(100)); got != clock.Time(100) {
		t.Errorf("SyncPoint = %v, want now (nothing outstanding)", got)
	}
	if env.comm != 0 {
		t.Errorf("comm charged = %v, want 0", env.comm)
	}
}

func TestAdsmReturnSync(t *testing.T) {
	env := asyncEnv()
	p, err := New(ADSMLazy, 0)
	if err != nil {
		t.Fatal(err)
	}
	p.AfterTransfer(env, clock.Time(50_000_000))
	end, handled, err := p.KernelReturn(env, clock.Time(0))
	if err != nil || !handled {
		t.Fatalf("KernelReturn = (%v, %v, %v), want handled", end, handled, err)
	}
	launch := env.fabric.Launch()
	if end != clock.Time(50_000_000) {
		t.Errorf("return sync end = %v, want the copy horizon", end)
	}
	wantComm := launch + clock.Time(50_000_000).Sub(clock.Time(0).Add(launch))
	if env.comm != wantComm {
		t.Errorf("comm charged = %v, want launch + exposed wait = %v", env.comm, wantComm)
	}
}

func TestPassiveProtocolsAreInert(t *testing.T) {
	for _, k := range []Kind{ExplicitCopy, Ideal} {
		env := syncEnv()
		p, err := New(k, 0)
		if err != nil {
			t.Fatal(err)
		}
		if got := p.KernelEntry(env, 0, nil); len(got) != 0 {
			t.Errorf("%v prologue = %v, want empty", k, got)
		}
		if _, handled, _ := p.KernelReturn(env, 0); handled {
			t.Errorf("%v elided the copy-back", k)
		}
		if end, err := p.BeforeTransfer(env, 0, 1<<20, clock.Time(7)); err != nil || end != clock.Time(7) {
			t.Errorf("%v BeforeTransfer moved time: %v, %v", k, end, err)
		}
		if env.comm != 0 || env.ownOps != 0 || env.faults != 0 {
			t.Errorf("%v charged costs: %+v", k, env)
		}
	}
}

func TestUnknownKindString(t *testing.T) {
	if s := Kind(250).String(); !strings.Contains(s, "250") {
		t.Errorf("out-of-range String() = %q", s)
	}
}
