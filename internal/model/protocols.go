package model

import (
	"heteromem/internal/clock"
	"heteromem/internal/isa"
	"heteromem/internal/mem"
	"heteromem/internal/obs"
	"heteromem/internal/trace"
)

// Single-instruction API-call streams used at ownership handovers;
// immutable.
var (
	acquireStream = trace.Stream{{Kind: isa.APIAcquire}}
	releaseStream = trace.Stream{{Kind: isa.APIRelease}}
)

// asyncState tracks the completion horizon of asynchronous copies. It is
// embedded in every protocol: any protocol may be composed with an
// asynchronous fabric in the open design space, and the horizon is
// programming-model state (GMAC's return synchronisation), not fabric
// state.
type asyncState struct {
	// ready is when outstanding asynchronous copies complete.
	ready clock.Time
}

// AfterTransfer implements Protocol: a copy issued on an asynchronous
// fabric completes in the background, extending the horizon sync points
// must wait on. Synchronous fabrics block inside the transfer itself, so
// there is nothing to track.
func (a *asyncState) AfterTransfer(env Env, done clock.Time) {
	if env.Fabric().Async() {
		a.ready = clock.Max(a.ready, done)
	}
}

// SyncPoint implements Protocol: outstanding asynchronous copies must
// land before the program completes, and the exposed wait is
// communication time.
func (a *asyncState) SyncPoint(env Env, now clock.Time) clock.Time {
	if a.ready > now {
		env.Tracer().Span(obs.TrackFabric, "async-wait", "comm", uint64(now), uint64(a.ready), nil)
		env.ChargeComm(a.ready.Sub(now))
		now = a.ready
	}
	return now
}

// returnSync is ADSM return synchronisation (one of GMAC's four
// fundamental APIs) at a kernel-return boundary: the host pays the
// synchronisation call itself, then blocks until outstanding copies
// land. On a synchronous fabric both are free and this is a no-op.
func (a *asyncState) returnSync(env Env, now clock.Time) clock.Time {
	if f := env.Fabric(); f.Async() {
		sync := f.Launch()
		env.ChargeComm(sync)
		now = now.Add(sync)
	}
	if a.ready > now {
		env.ChargeComm(a.ready.Sub(now))
		now = a.ready
	}
	return now
}

func (a *asyncState) Reset() { a.ready = 0 }

// explicitCopy is the CUDA/Fusion protocol: no ownership, no faults, no
// elision — every exchange is a bulk copy the simulator times on the
// fabric.
type explicitCopy struct{ asyncState }

func (*explicitCopy) Name() string { return "explicit-copy" }

func (*explicitCopy) KernelEntry(env Env, now clock.Time, dst trace.Stream) trace.Stream {
	return dst
}

func (*explicitCopy) KernelReturn(env Env, now clock.Time) (clock.Time, bool, error) {
	return now, false, nil
}

func (*explicitCopy) BeforeTransfer(env Env, addr, bytes uint64, now clock.Time) (clock.Time, error) {
	return now, nil
}

// ideal is the protocol of a unified, coherent machine: hardware keeps
// every PU's view consistent, so the runtime injects nothing. It behaves
// like explicitCopy at every hook — transfers still run (for free on the
// ideal fabric) — but names the design point the paper's IDEAL-HETERO
// occupies.
type ideal struct{ asyncState }

func (*ideal) Name() string { return "ideal" }

func (*ideal) KernelEntry(env Env, now clock.Time, dst trace.Stream) trace.Stream {
	return dst
}

func (*ideal) KernelReturn(env Env, now clock.Time) (clock.Time, bool, error) {
	return now, false, nil
}

func (*ideal) BeforeTransfer(env Env, addr, bytes uint64, now clock.Time) (clock.Time, error) {
	return now, nil
}

// ownership is the LRB family: acquire/release ownership control over
// the partially shared space, optionally with first-touch page faults.
// Results stay in the shared space, so device-to-host copies are elided
// in favour of an ownership handover back to the CPU.
type ownership struct {
	asyncState
	// firstTouch enables lib-pf faults on the GPU's first touch of each
	// freshly shared object (the full LRB model).
	firstTouch bool
	// granularity is the page size behind first-touch faults; zero means
	// the GPU's large pages cover a whole object (one fault per object).
	granularity uint64

	// pendingAcquire queues the GPU-side ownership acquire for the next
	// kernel entry after the CPU released the shared handle.
	pendingAcquire bool
	// pendingFaults queues lib-pf events for the next kernel entry.
	pendingFaults int
	// touched tracks which transfer targets the GPU has faulted on
	// already (one lib-pf per shared object, see DESIGN.md).
	touched map[uint64]bool
}

func newOwnership(firstTouch bool, granularity uint64) *ownership {
	return &ownership{
		firstTouch:  firstTouch,
		granularity: granularity,
		touched:     make(map[uint64]bool),
	}
}

func (o *ownership) Name() string {
	if o.firstTouch {
		return "ownership-first-touch"
	}
	return "ownership"
}

// KernelEntry implements Protocol: the GPU acquires ownership of the
// shared data, then faults once per freshly shared object.
func (o *ownership) KernelEntry(env Env, now clock.Time, dst trace.Stream) trace.Stream {
	if o.pendingAcquire {
		dst = append(dst, trace.Inst{Kind: isa.APIAcquire})
		o.pendingAcquire = false
		env.CountOwnershipOp()
		if h := env.SharedHandle(); h.Size != 0 {
			// Walk the protocol in the address space as well, so space
			// statistics reflect the handovers.
			_ = env.Space().Acquire(mem.GPU, h)
		}
		env.Tracer().Instant(obs.TrackGPU, "acquire-ownership", "model", uint64(now), nil)
	}
	for f := 0; f < o.pendingFaults; f++ {
		dst = append(dst, trace.Inst{Kind: isa.LibPageFault})
	}
	if o.pendingFaults > 0 {
		env.Tracer().Instant(obs.TrackGPU, "lib-pf", "model", uint64(now),
			map[string]any{"faults": o.pendingFaults})
		env.CountPageFaults(o.pendingFaults)
		o.pendingFaults = 0
	}
	return dst
}

// KernelReturn implements Protocol: the result already lives in the
// shared space, so the copy-back is elided — the model hands ownership
// back to the CPU instead, flushing the GPU's private caches on its
// release side of the handover.
func (o *ownership) KernelReturn(env Env, now clock.Time) (clock.Time, bool, error) {
	if h := env.SharedHandle(); h.Size != 0 {
		env.FlushPrivate(mem.GPU)
		if err := env.Space().Acquire(mem.CPU, h); err != nil {
			return now, true, err
		}
	}
	env.Tracer().Instant(obs.TrackGPU, "cache-flush", "model", uint64(now), nil)
	env.Tracer().Instant(obs.TrackCPU, "acquire-ownership", "model", uint64(now), nil)
	end := env.RunCPUStream(acquireStream, now)
	env.ChargeComm(end.Sub(now))
	env.CountOwnershipOp()
	return o.returnSync(env, end), true, nil
}

// BeforeTransfer implements Protocol: the CPU releases ownership before
// the data moves into the shared space; the GPU acquires at kernel entry
// (next parallel phase), and its first touch of each new object faults.
func (o *ownership) BeforeTransfer(env Env, addr, bytes uint64, now clock.Time) (clock.Time, error) {
	if err := o.releaseShared(env); err != nil {
		return now, err
	}
	env.Tracer().Instant(obs.TrackCPU, "cache-flush", "model", uint64(now), nil)
	env.Tracer().Instant(obs.TrackCPU, "release-ownership", "model", uint64(now), nil)
	end := env.RunCPUStream(releaseStream, now)
	env.ChargeComm(end.Sub(now))
	env.CountOwnershipOp()
	o.pendingAcquire = true
	if o.firstTouch && !o.touched[addr] {
		o.touched[addr] = true
		if g := o.granularity; g > 0 {
			// One fault per page-sized granule of the freshly shared data.
			o.pendingFaults += int((bytes + g - 1) / g)
		} else {
			// Large pages cover the whole object: one fault.
			o.pendingFaults++
		}
	}
	return end, nil
}

// releaseShared walks the address-space protocol: the CPU gives up the
// shared handle so the GPU may take it. Release consistency requires the
// releasing PU's private caches to be written back and invalidated — the
// shared space is not kept coherent by hardware (Section II-A3).
func (o *ownership) releaseShared(env Env) error {
	h := env.SharedHandle()
	if h.Size == 0 {
		return nil // program has no shared object under this model
	}
	env.FlushPrivate(mem.CPU)
	sp := env.Space()
	if owner, ok := sp.OwnerOf(h.Base); ok && owner == mem.CPU {
		return sp.Release(mem.CPU, h)
	}
	return nil
}

// Reset implements Protocol.
func (o *ownership) Reset() {
	o.asyncState.Reset()
	o.pendingAcquire = false
	o.pendingFaults = 0
	clear(o.touched)
}

// adsmLazy is GMAC's protocol: the CPU addresses the whole space, so the
// copy-back is elided; transfers launched on an asynchronous fabric move
// in the background and the GPU consumes the data page by page as it
// arrives (lazy transfer), with return synchronisation at kernel-return
// boundaries and sync points.
type adsmLazy struct{ asyncState }

func (*adsmLazy) Name() string { return "adsm" }

func (*adsmLazy) KernelEntry(env Env, now clock.Time, dst trace.Stream) trace.Stream {
	return dst
}

func (a *adsmLazy) KernelReturn(env Env, now clock.Time) (clock.Time, bool, error) {
	return a.returnSync(env, now), true, nil
}

func (*adsmLazy) BeforeTransfer(env Env, addr, bytes uint64, now clock.Time) (clock.Time, error) {
	return now, nil
}

var (
	_ Protocol = (*explicitCopy)(nil)
	_ Protocol = (*ideal)(nil)
	_ Protocol = (*ownership)(nil)
	_ Protocol = (*adsmLazy)(nil)
)
