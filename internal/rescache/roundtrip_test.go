package rescache_test

import (
	"bytes"
	"encoding/json"
	"testing"

	"heteromem/internal/harness"
	"heteromem/internal/rescache"
	"heteromem/internal/sim"
)

// TestResultJSONRoundTrip is the canonical-JSON contract the on-disk
// cache rests on: for fully populated results (a real case-study run,
// not zero values), encode → decode → encode is byte-identical and the
// decoded struct compares equal. sim.Result holds only scalars, fixed
// arrays and strings, so Go's deterministic struct-order marshaling is
// a canonical encoding; this test fails if a future field (a map, or a
// float that doesn't survive JSON) breaks that.
func TestResultJSONRoundTrip(t *testing.T) {
	cells, err := harness.RunCaseStudies([]string{"reduction"})
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) == 0 {
		t.Fatal("no case-study cells")
	}
	for _, c := range cells {
		first, err := json.Marshal(c.Result)
		if err != nil {
			t.Fatalf("%s/%s: %v", c.System, c.Kernel, err)
		}
		var decoded sim.Result
		if err := json.Unmarshal(first, &decoded); err != nil {
			t.Fatalf("%s/%s: %v", c.System, c.Kernel, err)
		}
		if decoded != c.Result {
			t.Fatalf("%s/%s: decoded result differs:\n got %+v\nwant %+v",
				c.System, c.Kernel, decoded, c.Result)
		}
		second, err := json.Marshal(decoded)
		if err != nil {
			t.Fatalf("%s/%s: %v", c.System, c.Kernel, err)
		}
		if !bytes.Equal(first, second) {
			t.Fatalf("%s/%s: re-encoding is not byte-identical:\n first %s\nsecond %s",
				c.System, c.Kernel, first, second)
		}
	}
}

// TestResultSurvivesDiskStore drives the same populated results through
// the full disk path: Put, then Get from a store with a cold memory
// tier, must reproduce the exact struct.
func TestResultSurvivesDiskStore(t *testing.T) {
	cells, err := harness.RunCaseStudies([]string{"reduction"})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	w, err := rescache.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range cells {
		if err := w.Put(rescache.Key{Spec: c.System, Kernel: c.Kernel, Workload: "rt"}, c.Result); err != nil {
			t.Fatal(err)
		}
	}
	r, err := rescache.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range cells {
		got, ok := r.Get(rescache.Key{Spec: c.System, Kernel: c.Kernel, Workload: "rt"})
		if !ok {
			t.Fatalf("%s/%s: miss after Put", c.System, c.Kernel)
		}
		if got != c.Result {
			t.Fatalf("%s/%s: disk round trip differs:\n got %+v\nwant %+v",
				c.System, c.Kernel, got, c.Result)
		}
	}
}
