package rescache

import (
	"os"
	"path/filepath"
	"sync"
	"testing"

	"heteromem/internal/clock"
	"heteromem/internal/sim"
)

func testKey(n string) Key {
	return Key{Spec: "sha256:" + n, Kernel: "reduction", Workload: "w" + n}
}

func testResult(n uint64) sim.Result {
	return sim.Result{
		System:        "sys",
		Kernel:        "reduction",
		MemTech:       "dram",
		Translation:   "off",
		Sequential:    clock.Duration(n),
		Parallel:      clock.Duration(2 * n),
		Communication: clock.Duration(3 * n),
	}
}

// TestDigestStable pins the key canonicalization: the digest is the
// sha256 of the key's canonical JSON, so any accidental change to field
// order, naming or encoding — which would silently orphan every existing
// cache — fails here first.
func TestDigestStable(t *testing.T) {
	k := Key{Spec: "s", Kernel: "k", Workload: "w"}
	const want = "f9fc08af05819ab596538f5279e1d7570786f0ad192fde0b4bd2a32bc35a1378"
	if got := k.Digest(); got != want {
		t.Fatalf("digest of %+v = %s, want %s", k, got, want)
	}
	if k2 := (Key{Spec: "s", Kernel: "k", Workload: "w", Options: "nocoalesce"}); k2.Digest() == want {
		t.Fatal("options did not change the digest")
	}
}

func TestMemoryOnlyStore(t *testing.T) {
	s, err := Open("")
	if err != nil {
		t.Fatal(err)
	}
	k, res := testKey("1"), testResult(100)
	if _, ok := s.Get(k); ok {
		t.Fatal("hit on empty store")
	}
	if err := s.Put(k, res); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get(k)
	if !ok || got != res {
		t.Fatalf("Get = %+v, %v; want %+v, true", got, ok, res)
	}
	st := s.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.MemHits != 1 || st.DiskHits != 0 || st.Puts != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if st.BytesWritten != 0 {
		t.Fatalf("memory-only store wrote %d bytes", st.BytesWritten)
	}
}

func TestDiskPersistenceAndPromotion(t *testing.T) {
	dir := t.TempDir()
	s1, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	k, res := testKey("persist"), testResult(7)
	if err := s1.Put(k, res); err != nil {
		t.Fatal(err)
	}
	if s1.Stats().BytesWritten == 0 {
		t.Fatal("no bytes written to disk")
	}

	// A fresh store on the same directory has a cold memory tier: the
	// first probe is a disk hit, which is promoted so the second probe
	// is a memory hit.
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		got, ok := s2.Get(k)
		if !ok || got != res {
			t.Fatalf("probe %d: Get = %+v, %v", i, got, ok)
		}
	}
	st := s2.Stats()
	if st.DiskHits != 1 || st.MemHits != 1 || st.Hits != 2 || st.Misses != 0 {
		t.Fatalf("stats after promotion = %+v", st)
	}
	if st.BytesRead == 0 {
		t.Fatal("disk hit read no bytes")
	}
}

// TestSchemaBumpMissesCleanly simulates a schema bump: entries written
// under the old schema become clean misses (the new version directory is
// simply empty), and the store refills under the new version without
// disturbing the old blobs.
func TestSchemaBumpMissesCleanly(t *testing.T) {
	dir := t.TempDir()
	old, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	k, res := testKey("bump"), testResult(9)
	if err := old.Put(k, res); err != nil {
		t.Fatal(err)
	}

	bumped, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	bumped.schema = SchemaVersion + 1
	if _, ok := bumped.Get(k); ok {
		t.Fatal("stale-schema entry served as a hit")
	}
	st := bumped.Stats()
	if st.Misses != 1 || st.Corrupt != 0 {
		t.Fatalf("schema bump should be a clean miss, stats = %+v", st)
	}
	if err := bumped.Put(k, res); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(bumped.blobPath(k.Digest())); err != nil {
		t.Fatalf("refill under new schema: %v", err)
	}
	if _, err := os.Stat(old.blobPath(k.Digest())); err != nil {
		t.Fatalf("old-schema blob disturbed: %v", err)
	}
}

// TestStaleEnvelopeIsCorrupt covers the belt-and-braces envelope check:
// a blob whose envelope carries the wrong schema or the wrong key (a
// digest collision, or a file renamed by hand) reads as a corrupt miss.
func TestStaleEnvelopeIsCorrupt(t *testing.T) {
	dir := t.TempDir()
	k, other := testKey("env"), testKey("other")

	s1, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s1.Put(other, testResult(3)); err != nil {
		t.Fatal(err)
	}
	// Masquerade other's blob as k's: the envelope's key betrays it.
	if err := os.MkdirAll(filepath.Dir(s1.blobPath(k.Digest())), 0o755); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(s1.blobPath(other.Digest()))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(s1.blobPath(k.Digest()), data, 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s2.Get(k); ok {
		t.Fatal("key-mismatched blob served as a hit")
	}
	if st := s2.Stats(); st.Corrupt != 1 || st.Misses != 1 {
		t.Fatalf("stats = %+v, want 1 corrupt miss", st)
	}
}

// TestCorruptBlobMissesAndIsRewritten truncates a blob mid-JSON: the
// probe is a counted corrupt miss, and the next Put rewrites a
// well-formed entry.
func TestCorruptBlobMissesAndIsRewritten(t *testing.T) {
	dir := t.TempDir()
	k, res := testKey("corrupt"), testResult(11)
	s1, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s1.Put(k, res); err != nil {
		t.Fatal(err)
	}
	path := s1.blobPath(k.Digest())
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s2.Get(k); ok {
		t.Fatal("truncated blob served as a hit")
	}
	if st := s2.Stats(); st.Corrupt != 1 {
		t.Fatalf("stats = %+v, want Corrupt=1", st)
	}
	if err := s2.Put(k, res); err != nil {
		t.Fatal(err)
	}
	s3, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got, ok := s3.Get(k); !ok || got != res {
		t.Fatalf("after rewrite: Get = %+v, %v", got, ok)
	}
}

// TestConcurrentRacersConverge races many goroutines putting and
// getting the same small key set (run under -race in CI): every probe
// that hits must return the keyed result, and the store must end
// well-formed on disk.
func TestConcurrentRacersConverge(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	const keys, workers, rounds = 4, 8, 25
	var wg sync.WaitGroup
	errc := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				i := uint64((w + r) % keys)
				k, want := testKey(string(rune('a'+i))), testResult(i+1)
				if err := s.Put(k, want); err != nil {
					errc <- err
					return
				}
				if got, ok := s.Get(k); ok && got != want {
					errc <- os.ErrInvalid
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
	if err := s.Err(); err != nil {
		t.Fatal(err)
	}
	fresh, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < keys; i++ {
		k, want := testKey(string(rune('a'+i))), testResult(i+1)
		if got, ok := fresh.Get(k); !ok || got != want {
			t.Fatalf("key %d: Get = %+v, %v; want %+v, true", i, got, ok, want)
		}
	}
	if st := fresh.Stats(); st.Corrupt != 0 {
		t.Fatalf("racers left %d corrupt blobs", st.Corrupt)
	}
}

// TestNilStore pins that a nil *Store disables caching without panics.
func TestNilStore(t *testing.T) {
	var s *Store
	if _, ok := s.Get(testKey("nil")); ok {
		t.Fatal("nil store hit")
	}
	if err := s.Put(testKey("nil"), testResult(1)); err != nil {
		t.Fatal(err)
	}
	if s.Err() != nil || s.Dir() != "" {
		t.Fatal("nil store reported state")
	}
	if st := s.Stats(); st != (Stats{}) {
		t.Fatalf("nil store stats = %+v", st)
	}
}

func TestStatsCountersAndHitRate(t *testing.T) {
	st := Stats{Hits: 3, Misses: 1, MemHits: 2, DiskHits: 1, BytesRead: 10, BytesWritten: 20}
	if got := st.HitRate(); got != 0.75 {
		t.Fatalf("HitRate = %v, want 0.75", got)
	}
	if (Stats{}).HitRate() != 0 {
		t.Fatal("empty HitRate != 0")
	}
	c := st.Counters()
	if c["rescache.hits"] != 3 || c["rescache.misses"] != 1 || c["rescache.bytes"] != 30 {
		t.Fatalf("counters = %v", c)
	}
}
