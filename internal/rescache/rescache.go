// Package rescache is a persistent, content-addressed cache of
// simulation results. The simulator is deterministic — PR 2's Reset()
// bit-identity proof means the same design point, kernel and options
// always produce the same sim.Result — so memoizing results is *exact*:
// a cache hit returns the very bytes a fresh simulation would compute,
// and repeated design-space traffic (search drivers revisiting points,
// warm re-runs of a sweep, a simulation service under load) becomes
// nearly free.
//
// The store is two-tier:
//
//   - an in-process sharded map, keyed by the point digest, serving
//     repeat probes within one process without touching the disk;
//   - an optional on-disk content-addressed directory of canonical-JSON
//     result blobs under <dir>/v<schema>/<dd>/<digest>.json, written
//     atomically (temp file + rename) so concurrent writers racing on
//     the same key converge to one well-formed blob.
//
// Every blob is wrapped in a versioned envelope carrying the schema
// version and the full key. A schema bump, a truncated or corrupt blob,
// or a digest collision all read back as a clean miss — never as a
// wrong result — and the next Put rewrites the entry.
package rescache

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"heteromem/internal/sim"
)

// SchemaVersion is the result-blob schema. Bump it whenever sim.Result
// gains or changes fields, or whenever simulator semantics change in a
// way that alters results without changing the design-point spec: stale
// entries then miss cleanly instead of serving pre-change results.
const SchemaVersion = 1

// Key identifies one simulation exactly: two cells collide iff they are
// bit-identically the same simulation. Spec is the canonical design-point
// hash (systems.Hash — model, fabric, protocol, granularity, params,
// mem-tech, translation); Kernel and Workload pin the program identity
// and its generated shape; Options fingerprints any sim.Options that
// alter results (empty for the baseline sweep configuration).
type Key struct {
	Spec     string `json:"spec"`
	Kernel   string `json:"kernel"`
	Workload string `json:"workload"`
	Options  string `json:"options,omitempty"`
}

// Digest returns the key's content address: the sha256 of its canonical
// JSON encoding, in hex. The digest deliberately excludes the schema
// version — versioning lives in the on-disk layout (v<schema>/) and the
// envelope, so a schema bump retires old entries without recomputing
// addresses.
func (k Key) Digest() string {
	data, err := json.Marshal(k)
	if err != nil {
		// Keys are plain strings; Marshal cannot fail.
		panic("rescache: marshaling key: " + err.Error())
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}

// envelope is the on-disk blob format: the schema version and the full
// key ride with the result, so a read verifies it is decoding exactly
// what the prober asked for before trusting the payload.
type envelope struct {
	Schema int        `json:"schema"`
	Key    Key        `json:"key"`
	Result sim.Result `json:"result"`
}

// Stats is a point-in-time copy of the store's counters.
type Stats struct {
	// Hits and Misses count probes; Hits = MemHits + DiskHits.
	Hits, Misses      uint64
	MemHits, DiskHits uint64
	// Puts counts stores; Corrupt counts disk entries that failed to
	// decode or verify and were treated as misses.
	Puts, Corrupt uint64
	// BytesRead and BytesWritten count disk blob traffic.
	BytesRead, BytesWritten uint64
	// ProbeNS is the cumulative host time spent inside Get.
	ProbeNS uint64
}

// HitRate returns hits over probes, or 0 with no probes.
func (s Stats) HitRate() float64 {
	if s.Hits+s.Misses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Hits+s.Misses)
}

const numShards = 64

type shard struct {
	mu sync.RWMutex
	m  map[string]sim.Result
}

// Store is the two-tier result cache. All methods are safe for
// concurrent use by sweep workers; a nil *Store disables caching (Get
// always misses without counting, Put is a no-op).
type Store struct {
	dir    string // "" = memory-only
	schema int    // SchemaVersion; tests override to simulate bumps
	shards [numShards]shard

	hits, misses      atomic.Uint64
	memHits, diskHits atomic.Uint64
	puts, corrupt     atomic.Uint64
	bytesRead         atomic.Uint64
	bytesWritten      atomic.Uint64
	probeNS           atomic.Uint64
	writeErr          atomic.Pointer[error]
}

// Open returns a store backed by the content-addressed directory dir,
// creating it (and the current schema-version subdirectory) as needed.
// An empty dir opens a memory-only store.
func Open(dir string) (*Store, error) {
	s := &Store{dir: dir, schema: SchemaVersion}
	for i := range s.shards {
		s.shards[i].m = make(map[string]sim.Result)
	}
	if dir != "" {
		if err := os.MkdirAll(s.versionDir(), 0o755); err != nil {
			return nil, fmt.Errorf("rescache: %w", err)
		}
	}
	return s, nil
}

// Dir returns the store's on-disk root ("" for memory-only).
func (s *Store) Dir() string {
	if s == nil {
		return ""
	}
	return s.dir
}

func (s *Store) versionDir() string {
	return filepath.Join(s.dir, fmt.Sprintf("v%d", s.schema))
}

// blobPath fans the CAS out on the digest's first byte so no single
// directory accumulates the whole design space.
func (s *Store) blobPath(digest string) string {
	return filepath.Join(s.versionDir(), digest[:2], digest+".json")
}

func (s *Store) shardFor(digest string) *shard {
	// The digest is lowercase hex; fold its first two characters into
	// a shard index.
	return &s.shards[(hexVal(digest[0])*16+hexVal(digest[1]))%numShards]
}

func hexVal(c byte) int {
	if c >= 'a' {
		return int(c-'a') + 10
	}
	return int(c - '0')
}

// Get probes both tiers for the key's result. A disk hit is promoted
// into the memory tier. Any undecodable, truncated, schema-stale or
// key-mismatched blob counts as a miss (and as Corrupt when the file
// existed but failed verification).
func (s *Store) Get(key Key) (sim.Result, bool) {
	if s == nil {
		return sim.Result{}, false
	}
	start := time.Now()
	defer func() { s.probeNS.Add(uint64(time.Since(start).Nanoseconds())) }()

	digest := key.Digest()
	sh := s.shardFor(digest)
	sh.mu.RLock()
	res, ok := sh.m[digest]
	sh.mu.RUnlock()
	if ok {
		s.hits.Add(1)
		s.memHits.Add(1)
		return res, true
	}
	if s.dir == "" {
		s.misses.Add(1)
		return sim.Result{}, false
	}
	data, err := os.ReadFile(s.blobPath(digest))
	if err != nil {
		s.misses.Add(1)
		return sim.Result{}, false
	}
	s.bytesRead.Add(uint64(len(data)))
	var env envelope
	if err := json.Unmarshal(data, &env); err != nil ||
		env.Schema != s.schema || env.Key != key {
		s.corrupt.Add(1)
		s.misses.Add(1)
		return sim.Result{}, false
	}
	sh.mu.Lock()
	sh.m[digest] = env.Result
	sh.mu.Unlock()
	s.hits.Add(1)
	s.diskHits.Add(1)
	return env.Result, true
}

// Put stores the result under the key in both tiers. The disk blob is
// written to a temp file and renamed into place, so concurrent workers
// racing on the same key each install a complete blob and the last
// rename wins — with deterministic results, all racers carry identical
// bytes. Disk errors are returned and also latched for Err(); the memory
// tier is always updated, so a failing disk never poisons correctness.
func (s *Store) Put(key Key, res sim.Result) error {
	if s == nil {
		return nil
	}
	digest := key.Digest()
	sh := s.shardFor(digest)
	sh.mu.Lock()
	sh.m[digest] = res
	sh.mu.Unlock()
	s.puts.Add(1)
	if s.dir == "" {
		return nil
	}
	data, err := json.Marshal(envelope{Schema: s.schema, Key: key, Result: res})
	if err != nil {
		return s.latch(fmt.Errorf("rescache: encoding %s: %w", digest, err))
	}
	data = append(data, '\n')
	path := s.blobPath(digest)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return s.latch(fmt.Errorf("rescache: %w", err))
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), "."+digest+".tmp-*")
	if err != nil {
		return s.latch(fmt.Errorf("rescache: %w", err))
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return s.latch(fmt.Errorf("rescache: writing %s: %w", path, err))
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return s.latch(fmt.Errorf("rescache: writing %s: %w", path, err))
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return s.latch(fmt.Errorf("rescache: %w", err))
	}
	s.bytesWritten.Add(uint64(len(data)))
	return nil
}

// latch records the first disk-write error for Err and returns err.
func (s *Store) latch(err error) error {
	s.writeErr.CompareAndSwap(nil, &err)
	return err
}

// Err returns the first disk-write error the store encountered, if any.
// Write failures degrade the store to its memory tier; they never fail
// a sweep.
func (s *Store) Err() error {
	if s == nil {
		return nil
	}
	if p := s.writeErr.Load(); p != nil {
		return *p
	}
	return nil
}

// Stats returns a snapshot of the store's counters. Safe to call while
// workers probe and fill.
func (s *Store) Stats() Stats {
	if s == nil {
		return Stats{}
	}
	return Stats{
		Hits:         s.hits.Load(),
		Misses:       s.misses.Load(),
		MemHits:      s.memHits.Load(),
		DiskHits:     s.diskHits.Load(),
		Puts:         s.puts.Load(),
		Corrupt:      s.corrupt.Load(),
		BytesRead:    s.bytesRead.Load(),
		BytesWritten: s.bytesWritten.Load(),
		ProbeNS:      s.probeNS.Load(),
	}
}

// Counters exports the store's statistics in the observability
// registry's flat counter form, under the rescache.* namespace.
func (s Stats) Counters() map[string]uint64 {
	return map[string]uint64{
		"rescache.hits":          s.Hits,
		"rescache.misses":        s.Misses,
		"rescache.mem_hits":      s.MemHits,
		"rescache.disk_hits":     s.DiskHits,
		"rescache.puts":          s.Puts,
		"rescache.corrupt":       s.Corrupt,
		"rescache.bytes":         s.BytesRead + s.BytesWritten,
		"rescache.bytes_read":    s.BytesRead,
		"rescache.bytes_written": s.BytesWritten,
		"rescache.probe_ns":      s.ProbeNS,
	}
}
