// Package gpu models the baseline accelerator core of Table II: a
// 1.5 GHz in-order 8-wide SIMD core with no branch predictor ("stall on
// branch"), a hardware L1 reached through the shared hierarchy, and a
// 16 KB software-managed cache.
//
// The timing model is in-order single-issue with stall-on-use: memory
// operations are non-blocking until a dependent instruction needs their
// result (the trace's dependency distances), branches stall the front end
// until resolution, and SIMD memory operations coalesce consecutive lane
// addresses into cache-line requests.
package gpu

import (
	"heteromem/internal/cache"
	"heteromem/internal/clock"
	"heteromem/internal/config"
	"heteromem/internal/isa"
	"heteromem/internal/mem"
	"heteromem/internal/obs"
	"heteromem/internal/trace"
)

// Memory is the view of the memory system the core needs; *mem.Hierarchy
// implements it.
type Memory interface {
	Access(pu mem.PU, addr uint64, write bool, now clock.Time) clock.Time
	Push(pu mem.PU, addr uint64, size uint32, level mem.Level, now clock.Time) clock.Time
	Scratchpad() *cache.Scratchpad
}

// CommCoster prices a communication instruction.
type CommCoster func(kind isa.Kind, size uint32) clock.Duration

// Stats summarises one Run.
type Stats struct {
	Instructions uint64
	Branches     uint64
	MemOps       uint64
	LineRequests uint64
	SWHits       uint64
	SWMisses     uint64
	CommOps      uint64
	PushOps      uint64
	CommTime     clock.Duration
	Duration     clock.Duration
}

// Core is a reusable in-order SIMD core instance.
type Core struct {
	cfg    config.CoreConfig
	dom    *clock.Domain
	cycle  clock.Duration
	memory Memory
	comm   CommCoster
	swLat  clock.Duration
	// Coalesce controls whether SIMD memory operations merge lane
	// accesses into unique cache-line requests (true, the default) or
	// issue one request per active lane (the ablation configuration).
	Coalesce bool
	obs      coreObs

	comp []clock.Time
}

// coreObs holds the core's observability instruments under the gpu.*
// namespace; nil (the default) instruments make every bump a no-op.
type coreObs struct {
	instructions *obs.Counter
	branches     *obs.Counter
	memOps       *obs.Counter
	lineRequests *obs.Counter
	swHits       *obs.Counter
	swMisses     *obs.Counter
	commOps      *obs.Counter
	pushOps      *obs.Counter
	commTimePS   *obs.Counter
	memLatPS     *obs.Histogram
}

// Instrument registers the core's metrics (gpu.*) with reg and routes the
// hot-path bumps to them. A nil registry detaches the instruments.
func (c *Core) Instrument(reg *obs.Registry) {
	c.obs = coreObs{
		instructions: reg.Counter("gpu.instructions"),
		branches:     reg.Counter("gpu.branches"),
		memOps:       reg.Counter("gpu.memops"),
		lineRequests: reg.Counter("gpu.line_requests"),
		swHits:       reg.Counter("gpu.sw.hits"),
		swMisses:     reg.Counter("gpu.sw.misses"),
		commOps:      reg.Counter("gpu.commops"),
		pushOps:      reg.Counter("gpu.pushops"),
		commTimePS:   reg.Counter("gpu.commtime_ps"),
		memLatPS:     reg.Histogram("gpu.memlat_ps"),
	}
}

const ringSize = 1 << 16

// LineBytes is the coalescing granularity, matching the hierarchy's
// 64-byte lines.
const LineBytes = 64

// New returns a core bound to a memory system, communication cost model,
// and software-managed-cache latency.
func New(cfg config.CoreConfig, memory Memory, comm CommCoster, swLat clock.Duration) *Core {
	if cfg.SIMDWidth <= 0 {
		cfg.SIMDWidth = 8
	}
	dom := cfg.Domain()
	return &Core{
		cfg:      cfg,
		dom:      dom,
		cycle:    dom.PeriodPS(),
		memory:   memory,
		comm:     comm,
		swLat:    swLat,
		Coalesce: true,
		comp:     make([]clock.Time, ringSize),
	}
}

// Domain returns the core's clock domain.
func (c *Core) Domain() *clock.Domain { return c.dom }

// Execution is an in-progress replay of one instruction source,
// advanceable in bounded steps so the simulator can co-simulate the GPU
// with the CPU in time order. A core supports one live Execution at a
// time.
//
// Like the CPU's Execution, it keeps a one-instruction lookahead pulled
// from the source so Done is accurate the moment the last instruction
// executes.
type Execution struct {
	c    *Core
	src  trace.Source
	i    int
	pend trace.Inst // next instruction to execute (valid when have)
	have bool

	start   clock.Time
	cur     clock.Time
	maxComp clock.Time
	stats   Stats
}

// Begin starts replaying the source at time at. A nil source is an empty
// execution.
func (c *Core) Begin(src trace.Source, at clock.Time) *Execution {
	e := &Execution{c: c, src: src, start: at, cur: at}
	if src != nil {
		e.pend, e.have = src.Next()
	}
	return e
}

// Run replays the source starting at start to completion and returns the
// completion time of the last instruction (with memory drained) and
// statistics.
func (c *Core) Run(src trace.Source, start clock.Time) (clock.Time, Stats) {
	e := Execution{c: c, src: src, start: start, cur: start}
	if src != nil {
		e.pend, e.have = src.Next()
	}
	e.StepUntil(clock.Time(^uint64(0)))
	return e.End()
}

// RunStream is Run over an in-memory stream.
func (c *Core) RunStream(s trace.Stream, start clock.Time) (clock.Time, Stats) {
	cur := trace.Cursor{}
	return c.Run(cur.Bind(s), start)
}

// Done reports whether every instruction has executed.
func (e *Execution) Done() bool { return !e.have }

// Now returns the in-order issue clock.
func (e *Execution) Now() clock.Time { return e.cur }

// StepUntil executes instructions while the issue clock is at or before
// deadline (and the source has instructions left).
func (e *Execution) StepUntil(deadline clock.Time) {
	c := e.c
	for e.have && e.cur <= deadline {
		i, in := e.i, e.pend
		e.i++
		e.pend, e.have = e.src.Next()
		// Dependencies pointing before the stream start are ignored: the
		// producer ran in an earlier phase and has long completed.
		ready := e.cur
		if d := int(in.Dep1); d != 0 && d <= i {
			if t := c.comp[(i-d)%ringSize]; t > ready {
				ready = t
			}
		}
		if d := int(in.Dep2); d != 0 && d <= i {
			if t := c.comp[(i-d)%ringSize]; t > ready {
				ready = t
			}
		}
		issueAt := clock.Max(e.cur, ready)

		var done clock.Time
		switch {
		case in.Kind == isa.Branch:
			e.stats.Branches++
			c.obs.branches.Inc()
			done = issueAt.Add(c.cycle)
			// No predictor: the front end stalls until the branch
			// resolves, plus the refill bubble.
			e.cur = done.Add(clock.Duration(c.cfg.BranchStall) * c.cycle)
			e.record(i, done)
			e.stats.Instructions++
			continue
		case in.Kind.IsMem():
			e.stats.MemOps++
			c.obs.memOps.Inc()
			done = c.accessMem(in, issueAt, &e.stats)
			c.obs.memLatPS.Observe(uint64(done.Sub(issueAt)))
		case in.Kind.IsSoftwareCache():
			if c.memory.Scratchpad().Resident(in.Addr) {
				e.stats.SWHits++
				c.obs.swHits.Inc()
				done = issueAt.Add(c.swLat)
			} else {
				// Data was never placed: the access falls through to the
				// hardware hierarchy (and is counted so the workload
				// author can find the placement bug).
				e.stats.SWMisses++
				c.obs.swMisses.Inc()
				done = c.memory.Access(mem.GPU, in.Addr, in.Kind == isa.SWStore, issueAt)
			}
		case in.Kind.IsComm():
			e.stats.CommOps++
			c.obs.commOps.Inc()
			d := c.comm(in.Kind, in.Size)
			e.stats.CommTime += d
			c.obs.commTimePS.Add(uint64(d))
			at := clock.Max(issueAt, e.maxComp)
			done = at.Add(d)
			e.cur = done
			e.record(i, done)
			e.stats.Instructions++
			continue
		case in.Kind == isa.Push:
			e.stats.PushOps++
			c.obs.pushOps.Inc()
			done = c.memory.Push(mem.GPU, in.Addr, in.Size, pushLevel(in.PushLevel), issueAt)
		case in.Kind == isa.Barrier:
			done = clock.Max(issueAt, e.maxComp).Add(c.cycle)
			e.cur = done
			e.record(i, done)
			e.stats.Instructions++
			continue
		default:
			done = issueAt.Add(clock.Duration(in.Kind.ExecLatency()) * c.cycle)
		}

		// In-order single issue: the next instruction issues no earlier
		// than one cycle after this one, but does not wait for completion
		// (stall-on-use via the dependency distances).
		e.cur = issueAt.Add(c.cycle)
		e.record(i, done)
		e.stats.Instructions++
	}
}

// End returns the completion time (memory drained) and statistics. The
// execution must be Done.
func (e *Execution) End() (clock.Time, Stats) {
	if !e.Done() {
		panic("gpu: End called on unfinished execution")
	}
	end := clock.Max(e.cur, e.maxComp)
	st := e.stats
	st.Duration = end.Sub(e.start)
	return end, st
}

// record notes instruction i's completion time. It runs exactly once per
// executed instruction, so it also carries the instruction-counter bump.
func (e *Execution) record(i int, done clock.Time) {
	e.c.comp[i%ringSize] = done
	if done > e.maxComp {
		e.maxComp = done
	}
	e.c.obs.instructions.Inc()
}

// accessMem times a (possibly SIMD) memory operation issued at issueAt.
func (c *Core) accessMem(in trace.Inst, issueAt clock.Time, st *Stats) clock.Time {
	write := in.Kind.IsStore()
	if !in.Kind.IsSIMD() {
		st.LineRequests++
		c.obs.lineRequests.Inc()
		return c.memory.Access(mem.GPU, in.Addr, write, issueAt)
	}
	lanes := in.ActiveLanes()
	if lanes > c.cfg.SIMDWidth {
		lanes = c.cfg.SIMDWidth
	}
	if c.Coalesce {
		// Consecutive lanes touch [Addr, Addr+Size): request each unique
		// line once.
		first := in.Addr &^ uint64(LineBytes-1)
		last := (in.Addr + uint64(in.Size) - 1) &^ uint64(LineBytes-1)
		var done clock.Time
		for line := first; ; line += LineBytes {
			st.LineRequests++
			c.obs.lineRequests.Inc()
			if d := c.memory.Access(mem.GPU, line, write, issueAt); d > done {
				done = d
			}
			if line == last {
				break
			}
		}
		return done
	}
	// Uncoalesced: one memory transaction per active lane, issued at one
	// per cycle — without a coalescer the load/store unit serialises the
	// lanes even when they hit the same line.
	laneBytes := uint64(in.Size) / uint64(lanes)
	if laneBytes == 0 {
		laneBytes = 1
	}
	var done clock.Time
	for l := 0; l < lanes; l++ {
		st.LineRequests++
		c.obs.lineRequests.Inc()
		addr := in.Addr + uint64(l)*laneBytes
		at := issueAt.Add(clock.Duration(l) * c.cycle)
		if d := c.memory.Access(mem.GPU, addr, write, at); d > done {
			done = d
		}
	}
	return done
}

func pushLevel(l uint8) mem.Level {
	switch l {
	case trace.PushShared:
		return mem.LevelShared
	case trace.PushSoftware:
		return mem.LevelSoftware
	default:
		return mem.LevelPrivate
	}
}
