// Package gpu models the baseline accelerator core of Table II: a
// 1.5 GHz in-order 8-wide SIMD core with no branch predictor ("stall on
// branch"), a hardware L1 reached through the shared hierarchy, and a
// 16 KB software-managed cache.
//
// The timing model is in-order single-issue with stall-on-use: memory
// operations are non-blocking until a dependent instruction needs their
// result (the trace's dependency distances), branches stall the front end
// until resolution, and SIMD memory operations coalesce consecutive lane
// addresses into cache-line requests.
package gpu

import (
	"heteromem/internal/arena"
	"heteromem/internal/cache"
	"heteromem/internal/clock"
	"heteromem/internal/config"
	"heteromem/internal/isa"
	"heteromem/internal/mem"
	"heteromem/internal/obs"
	"heteromem/internal/trace"
)

// Memory is the view of the memory system the core needs; *mem.Hierarchy
// implements it.
type Memory interface {
	Access(pu mem.PU, addr uint64, write bool, now clock.Time) clock.Time
	Push(pu mem.PU, addr uint64, size uint32, level mem.Level, now clock.Time) clock.Time
	Scratchpad() *cache.Scratchpad
}

// CommCoster prices a communication instruction.
type CommCoster func(kind isa.Kind, size uint32) clock.Duration

// Stats summarises one Run.
type Stats struct {
	Instructions uint64
	Branches     uint64
	MemOps       uint64
	LineRequests uint64
	SWHits       uint64
	SWMisses     uint64
	CommOps      uint64
	PushOps      uint64
	CommTime     clock.Duration
	Duration     clock.Duration
}

// Core is a reusable in-order SIMD core instance.
type Core struct {
	cfg    config.CoreConfig
	dom    *clock.Domain
	cycle  clock.Duration
	memory Memory
	comm   CommCoster
	swLat  clock.Duration
	// Coalesce controls whether SIMD memory operations merge lane
	// accesses into unique cache-line requests (true, the default) or
	// issue one request per active lane (the ablation configuration).
	Coalesce bool
	obs      coreObs

	comp []clock.Time
	// srcBuf is the lookahead batch shared by the core's Executions (one
	// is live at a time); it lives here so starting a replay allocates
	// nothing.
	srcBuf []trace.Inst
}

// coreObs holds the core's observability instruments under the gpu.*
// namespace; nil (the default) instruments make every bump a no-op.
type coreObs struct {
	instructions *obs.Counter
	branches     *obs.Counter
	memOps       *obs.Counter
	lineRequests *obs.Counter
	swHits       *obs.Counter
	swMisses     *obs.Counter
	commOps      *obs.Counter
	pushOps      *obs.Counter
	commTimePS   *obs.Counter
	memLatPS     *obs.Histogram
}

// Instrument registers the core's metrics (gpu.*) with reg and routes the
// hot-path bumps to them. A nil registry detaches the instruments.
func (c *Core) Instrument(reg *obs.Registry) {
	c.obs = coreObs{
		instructions: reg.Counter("gpu.instructions"),
		branches:     reg.Counter("gpu.branches"),
		memOps:       reg.Counter("gpu.memops"),
		lineRequests: reg.Counter("gpu.line_requests"),
		swHits:       reg.Counter("gpu.sw.hits"),
		swMisses:     reg.Counter("gpu.sw.misses"),
		commOps:      reg.Counter("gpu.commops"),
		pushOps:      reg.Counter("gpu.pushops"),
		commTimePS:   reg.Counter("gpu.commtime_ps"),
		memLatPS:     reg.Histogram("gpu.memlat_ps"),
	}
}

const ringSize = 1 << 16

// srcBatch is the lookahead batch size pulled from the trace source.
const srcBatch = 256

// LineBytes is the coalescing granularity, matching the hierarchy's
// 64-byte lines.
const LineBytes = 64

// New returns a core bound to a memory system, communication cost model,
// and software-managed-cache latency.
func New(cfg config.CoreConfig, memory Memory, comm CommCoster, swLat clock.Duration) *Core {
	return NewIn(nil, cfg, memory, comm, swLat)
}

// NewIn is New with the completion ring and trace lookahead buffer
// carved from the arena (nil falls back to the heap); the core keeps no
// reference to the arena.
func NewIn(a *arena.Arena, cfg config.CoreConfig, memory Memory, comm CommCoster, swLat clock.Duration) *Core {
	if cfg.SIMDWidth <= 0 {
		cfg.SIMDWidth = 8
	}
	dom := cfg.Domain()
	return &Core{
		cfg:      cfg,
		dom:      dom,
		cycle:    dom.PeriodPS(),
		memory:   memory,
		comm:     comm,
		swLat:    swLat,
		Coalesce: true,
		comp:     arena.Make[clock.Time](a, ringSize),
		srcBuf:   arena.Make[trace.Inst](a, srcBatch),
	}
}

// Domain returns the core's clock domain.
func (c *Core) Domain() *clock.Domain { return c.dom }

// Execution is an in-progress replay of one instruction source,
// advanceable in bounded steps so the simulator can co-simulate the GPU
// with the CPU in time order. A core supports one live Execution at a
// time.
//
// Like the CPU's Execution, it keeps a lookahead batch pulled from the
// source (refilled the moment it drains) so Done is accurate the moment
// the last instruction executes, without a per-instruction source call.
type Execution struct {
	c   *Core
	src trace.Source
	i   int
	bi  int // next instruction to execute, in c.srcBuf
	bn  int // instructions buffered in c.srcBuf

	start   clock.Time
	cur     clock.Time
	maxComp clock.Time
	stats   Stats
	// flushed is the Stats snapshot at the last FlushObs; the replay loop
	// bumps only the plain stats fields and the instruments advance by the
	// delta at flush points, keeping instrument calls off the hot path.
	flushed Stats
	// memLat accumulates memory-latency observations between flushes; it
	// only fills when a latency histogram is registered.
	memLat obs.HistAccum
}

// Begin starts replaying the source at time at. A nil source is an empty
// execution.
func (c *Core) Begin(src trace.Source, at clock.Time) *Execution {
	e := &Execution{c: c, src: src, start: at, cur: at}
	if src != nil {
		e.bn = trace.FillBatch(src, c.srcBuf)
	}
	return e
}

// Run replays the source starting at start to completion and returns the
// completion time of the last instruction (with memory drained) and
// statistics.
func (c *Core) Run(src trace.Source, start clock.Time) (clock.Time, Stats) {
	e := Execution{c: c, src: src, start: start, cur: start}
	if src != nil {
		e.bn = trace.FillBatch(src, c.srcBuf)
	}
	e.StepUntil(clock.Time(^uint64(0)))
	return e.End()
}

// RunStream is Run over an in-memory stream.
func (c *Core) RunStream(s trace.Stream, start clock.Time) (clock.Time, Stats) {
	cur := trace.Cursor{}
	return c.Run(cur.Bind(s), start)
}

// Done reports whether every instruction has executed.
func (e *Execution) Done() bool { return e.bi >= e.bn }

// Now returns the in-order issue clock.
func (e *Execution) Now() clock.Time { return e.cur }

// StepUntil executes instructions while the issue clock is at or before
// deadline (and the source has instructions left).
func (e *Execution) StepUntil(deadline clock.Time) {
	c := e.c
	for e.bi < e.bn && e.cur <= deadline {
		i, in := e.i, c.srcBuf[e.bi]
		e.i++
		e.bi++
		if e.bi >= e.bn {
			e.bn = trace.FillBatch(e.src, c.srcBuf)
			e.bi = 0
		}
		// Dependencies pointing before the stream start are ignored: the
		// producer ran in an earlier phase and has long completed.
		ready := e.cur
		if d := int(in.Dep1); d != 0 && d <= i {
			if t := c.comp[(i-d)%ringSize]; t > ready {
				ready = t
			}
		}
		if d := int(in.Dep2); d != 0 && d <= i {
			if t := c.comp[(i-d)%ringSize]; t > ready {
				ready = t
			}
		}
		issueAt := clock.Max(e.cur, ready)

		var done clock.Time
		switch {
		case in.Kind == isa.Branch:
			e.stats.Branches++
			done = issueAt.Add(c.cycle)
			// No predictor: the front end stalls until the branch
			// resolves, plus the refill bubble.
			e.cur = done.Add(clock.Duration(c.cfg.BranchStall) * c.cycle)
			e.record(i, done)
			e.stats.Instructions++
			continue
		case in.Kind.IsMem():
			e.stats.MemOps++
			done = c.accessMem(in, issueAt, &e.stats)
			if c.obs.memLatPS != nil {
				e.memLat.Observe(uint64(done.Sub(issueAt)))
			}
		case in.Kind.IsSoftwareCache():
			if c.memory.Scratchpad().Resident(in.Addr) {
				e.stats.SWHits++
				done = issueAt.Add(c.swLat)
			} else {
				// Data was never placed: the access falls through to the
				// hardware hierarchy (and is counted so the workload
				// author can find the placement bug).
				e.stats.SWMisses++
				done = c.memory.Access(mem.GPU, in.Addr, in.Kind == isa.SWStore, issueAt)
			}
		case in.Kind.IsComm():
			e.stats.CommOps++
			d := c.comm(in.Kind, in.Size)
			e.stats.CommTime += d
			at := clock.Max(issueAt, e.maxComp)
			done = at.Add(d)
			e.cur = done
			e.record(i, done)
			e.stats.Instructions++
			continue
		case in.Kind == isa.Push:
			e.stats.PushOps++
			done = c.memory.Push(mem.GPU, in.Addr, in.Size, pushLevel(in.PushLevel), issueAt)
		case in.Kind == isa.Barrier:
			done = clock.Max(issueAt, e.maxComp).Add(c.cycle)
			e.cur = done
			e.record(i, done)
			e.stats.Instructions++
			continue
		default:
			done = issueAt.Add(clock.Duration(in.Kind.ExecLatency()) * c.cycle)
		}

		// In-order single issue: the next instruction issues no earlier
		// than one cycle after this one, but does not wait for completion
		// (stall-on-use via the dependency distances).
		e.cur = issueAt.Add(c.cycle)
		e.record(i, done)
		e.stats.Instructions++
	}
}

// End returns the completion time (memory drained) and statistics. The
// execution must be Done.
func (e *Execution) End() (clock.Time, Stats) {
	if !e.Done() {
		panic("gpu: End called on unfinished execution")
	}
	e.FlushObs()
	end := clock.Max(e.cur, e.maxComp)
	st := e.stats
	st.Duration = end.Sub(e.start)
	return end, st
}

// FlushObs pushes the statistics accumulated since the previous flush
// into the core's instruments. The co-simulation loop calls it before
// each interval sample; End flushes the tail, so registry totals match
// per-event bumping exactly. A no-op on an uninstrumented core (every
// instrument is nil-safe).
func (e *Execution) FlushObs() {
	c, st, fl := e.c, &e.stats, &e.flushed
	c.obs.instructions.Add(st.Instructions - fl.Instructions)
	c.obs.branches.Add(st.Branches - fl.Branches)
	c.obs.memOps.Add(st.MemOps - fl.MemOps)
	c.obs.lineRequests.Add(st.LineRequests - fl.LineRequests)
	c.obs.swHits.Add(st.SWHits - fl.SWHits)
	c.obs.swMisses.Add(st.SWMisses - fl.SWMisses)
	c.obs.commOps.Add(st.CommOps - fl.CommOps)
	c.obs.pushOps.Add(st.PushOps - fl.PushOps)
	c.obs.commTimePS.Add(uint64(st.CommTime - fl.CommTime))
	c.obs.memLatPS.Merge(&e.memLat)
	e.flushed = *st
}

// record notes instruction i's completion time.
func (e *Execution) record(i int, done clock.Time) {
	e.c.comp[i%ringSize] = done
	if done > e.maxComp {
		e.maxComp = done
	}
}

// accessMem times a (possibly SIMD) memory operation issued at issueAt.
func (c *Core) accessMem(in trace.Inst, issueAt clock.Time, st *Stats) clock.Time {
	write := in.Kind.IsStore()
	if !in.Kind.IsSIMD() {
		st.LineRequests++
		return c.memory.Access(mem.GPU, in.Addr, write, issueAt)
	}
	lanes := in.ActiveLanes()
	if lanes > c.cfg.SIMDWidth {
		lanes = c.cfg.SIMDWidth
	}
	if c.Coalesce {
		// Consecutive lanes touch [Addr, Addr+Size): request each unique
		// line once.
		first := in.Addr &^ uint64(LineBytes-1)
		last := (in.Addr + uint64(in.Size) - 1) &^ uint64(LineBytes-1)
		var done clock.Time
		for line := first; ; line += LineBytes {
			st.LineRequests++
			if d := c.memory.Access(mem.GPU, line, write, issueAt); d > done {
				done = d
			}
			if line == last {
				break
			}
		}
		return done
	}
	// Uncoalesced: one memory transaction per active lane, issued at one
	// per cycle — without a coalescer the load/store unit serialises the
	// lanes even when they hit the same line.
	laneBytes := uint64(in.Size) / uint64(lanes)
	if laneBytes == 0 {
		laneBytes = 1
	}
	var done clock.Time
	for l := 0; l < lanes; l++ {
		st.LineRequests++
		addr := in.Addr + uint64(l)*laneBytes
		at := issueAt.Add(clock.Duration(l) * c.cycle)
		if d := c.memory.Access(mem.GPU, addr, write, at); d > done {
			done = d
		}
	}
	return done
}

func pushLevel(l uint8) mem.Level {
	switch l {
	case trace.PushShared:
		return mem.LevelShared
	case trace.PushSoftware:
		return mem.LevelSoftware
	default:
		return mem.LevelPrivate
	}
}
