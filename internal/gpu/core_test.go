package gpu

import (
	"testing"

	"heteromem/internal/cache"
	"heteromem/internal/clock"
	"heteromem/internal/config"
	"heteromem/internal/isa"
	"heteromem/internal/mem"
	"heteromem/internal/trace"
)

// fakeMem is a fixed-latency memory with a real scratchpad.
type fakeMem struct {
	lat      clock.Duration
	accesses int
	pushes   int
	sp       *cache.Scratchpad
}

func newFake(lat clock.Duration) *fakeMem {
	return &fakeMem{lat: lat, sp: cache.NewScratchpad("sw", 16<<10)}
}

func (f *fakeMem) Access(pu mem.PU, addr uint64, write bool, now clock.Time) clock.Time {
	f.accesses++
	return now.Add(f.lat)
}

func (f *fakeMem) Push(pu mem.PU, addr uint64, size uint32, level mem.Level, now clock.Time) clock.Time {
	f.pushes++
	if level == mem.LevelSoftware {
		_ = f.sp.Place(addr, uint64(size))
	}
	return now.Add(f.lat)
}

func (f *fakeMem) Scratchpad() *cache.Scratchpad { return f.sp }

func zeroComm(isa.Kind, uint32) clock.Duration { return 0 }

func newCore(m Memory) *Core {
	return New(config.BaselineGPU(), m, zeroComm, 2*clock.NewDomain("gpu", 1500).PeriodPS())
}

func TestInOrderSingleIssue(t *testing.T) {
	c := newCore(newFake(0))
	n := 3000
	s := make(trace.Stream, n)
	for i := range s {
		s[i] = trace.Inst{PC: uint64(i) * 4, Kind: isa.SIMDALU}
	}
	end, st := c.RunStream(s, 0)
	cycles := c.Domain().DurationToCycles(end.Sub(0))
	// Single issue: about one cycle per instruction.
	if cycles+4 < uint64(n) {
		t.Fatalf("%d SIMD ops in %d cycles; in-order core cannot beat 1/cycle", n, cycles)
	}
	// Independent pipelined ops: not much more than n + drain.
	if cycles > uint64(n)+10 {
		t.Fatalf("independent ops took %d cycles, want ~%d", cycles, n)
	}
	if st.Instructions != uint64(n) {
		t.Fatalf("instructions = %d", st.Instructions)
	}
}

func TestBranchStalls(t *testing.T) {
	c := newCore(newFake(0))
	var s trace.Stream
	nBr := 100
	for i := 0; i < nBr; i++ {
		s = append(s, trace.Inst{PC: uint64(i) * 4, Kind: isa.Branch, Taken: true})
	}
	end, st := c.RunStream(s, 0)
	cycles := c.Domain().DurationToCycles(end.Sub(0))
	// Every branch stalls: 1 (resolve) + BranchStall cycles each.
	minCycles := uint64(nBr) * (1 + config.BaselineGPU().BranchStall)
	if cycles < minCycles {
		t.Fatalf("%d branches in %d cycles, want >= %d (stall on branch)", nBr, cycles, minCycles)
	}
	if st.Branches != uint64(nBr) {
		t.Fatalf("branches = %d", st.Branches)
	}
}

func TestCoalescingReducesRequests(t *testing.T) {
	// 8 lanes x 4 bytes consecutive = 32 bytes = 1 line when coalesced,
	// 8 requests otherwise.
	in := trace.Inst{Kind: isa.SIMDLoad, Addr: 0x1000, Size: 32, Lanes: 8}

	mc := newFake(10 * clock.Nanosecond)
	c := newCore(mc)
	_, st := c.RunStream(trace.Stream{in}, 0)
	if st.LineRequests != 1 || mc.accesses != 1 {
		t.Fatalf("coalesced: %d line requests, want 1", st.LineRequests)
	}

	mu := newFake(10 * clock.Nanosecond)
	u := newCore(mu)
	u.Coalesce = false
	_, st = u.RunStream(trace.Stream{in}, 0)
	if st.LineRequests != 8 || mu.accesses != 8 {
		t.Fatalf("uncoalesced: %d line requests, want 8", st.LineRequests)
	}
}

func TestCoalescingSpanningLines(t *testing.T) {
	// 256-byte footprint spans 4 lines (plus one if unaligned).
	in := trace.Inst{Kind: isa.SIMDLoad, Addr: 0x1000, Size: 256, Lanes: 8}
	m := newFake(0)
	c := newCore(m)
	_, st := c.RunStream(trace.Stream{in}, 0)
	if st.LineRequests != 4 {
		t.Fatalf("256B aligned burst: %d line requests, want 4", st.LineRequests)
	}
}

func TestStallOnUse(t *testing.T) {
	lat := 200 * clock.Nanosecond
	// Load then dependent op: total >= load latency.
	m := newFake(lat)
	c := newCore(m)
	s := trace.Stream{
		{Kind: isa.SIMDLoad, Addr: 0x1000, Size: 32},
		{Kind: isa.SIMDFP, Dep1: 1},
	}
	end, _ := c.RunStream(s, 0)
	if end.Sub(0) < lat {
		t.Fatal("dependent op did not wait for load")
	}
	// Load then independent ops: they issue under the load's shadow; only
	// the final drain waits.
	m2 := newFake(lat)
	c2 := newCore(m2)
	s2 := trace.Stream{
		{Kind: isa.SIMDLoad, Addr: 0x1000, Size: 32},
		{Kind: isa.SIMDFP},
		{Kind: isa.SIMDFP},
	}
	end2, _ := c2.RunStream(s2, 0)
	slack := 20 * clock.Nanosecond
	if end2.Sub(0) > lat+slack {
		t.Fatalf("independent ops did not overlap the load: %v", end2.Sub(0))
	}
}

func TestSoftwareCacheHitAndMiss(t *testing.T) {
	m := newFake(500 * clock.Nanosecond)
	c := newCore(m)
	// Place data, then SWLoad hits at the fixed latency.
	s := trace.Stream{
		{Kind: isa.Push, Addr: 0x1000, Size: 4096, PushLevel: trace.PushSoftware},
		{Kind: isa.SWLoad, Addr: 0x1000, Size: 4, Dep1: 1},
		{Kind: isa.SWLoad, Addr: 0x9000, Size: 4, Dep1: 1}, // never placed
	}
	_, st := c.RunStream(s, 0)
	if st.SWHits != 1 {
		t.Fatalf("SW hits = %d, want 1", st.SWHits)
	}
	if st.SWMisses != 1 {
		t.Fatalf("SW misses = %d, want 1", st.SWMisses)
	}
}

func TestCommSerialises(t *testing.T) {
	params := config.TableIV()
	m := newFake(0)
	c := New(config.BaselineGPU(), m, params.Latency, clock.Nanosecond)
	s := trace.Stream{
		{Kind: isa.APITransfer, Size: 4096},
		{Kind: isa.SIMDALU},
	}
	end, st := c.RunStream(s, 0)
	want := params.Latency(isa.APITransfer, 4096)
	if st.CommTime != want {
		t.Fatalf("CommTime %v, want %v", st.CommTime, want)
	}
	if end.Sub(0) < want {
		t.Fatal("comm op did not serialise")
	}
}

func TestBarrierDrainsMemory(t *testing.T) {
	lat := 300 * clock.Nanosecond
	m := newFake(lat)
	c := newCore(m)
	s := trace.Stream{
		{Kind: isa.SIMDStore, Addr: 0x1000, Size: 32},
		{Kind: isa.Barrier},
	}
	end, _ := c.RunStream(s, 0)
	if end.Sub(0) < lat {
		t.Fatal("barrier did not drain the store")
	}
}

func TestRunAgainstRealHierarchy(t *testing.T) {
	h := mem.MustNew(mem.TableII())
	c := New(config.BaselineGPU(), h, zeroComm, h.Config().SWCacheLat)
	var s trace.Stream
	for i := 0; i < 2000; i++ {
		s = append(s, trace.Inst{PC: uint64(i) * 4, Kind: isa.SIMDLoad, Addr: uint64(i%32) * 64, Size: 32})
		s = append(s, trace.Inst{PC: uint64(i)*4 + 1, Kind: isa.SIMDFP, Dep1: 1})
	}
	end, st := c.RunStream(s, 0)
	if end == 0 || st.Instructions != 4000 {
		t.Fatalf("run failed: %+v", st)
	}
	if h.Stats().L1Hits[mem.GPU] == 0 {
		t.Fatal("expected GPU L1 hits on a 32-line working set")
	}
}

func TestEmptyStream(t *testing.T) {
	c := newCore(newFake(0))
	end, st := c.RunStream(nil, 7)
	if end != 7 || st.Instructions != 0 {
		t.Fatalf("empty run: end=%v st=%+v", end, st)
	}
}

func BenchmarkRunSIMD(b *testing.B) {
	h := mem.MustNew(mem.TableII())
	c := New(config.BaselineGPU(), h, zeroComm, h.Config().SWCacheLat)
	var s trace.Stream
	for i := 0; i < 10000; i++ {
		if i%4 == 0 {
			s = append(s, trace.Inst{PC: uint64(i), Kind: isa.SIMDLoad, Addr: uint64(i%8192) * 32, Size: 32})
		} else {
			s = append(s, trace.Inst{PC: uint64(i), Kind: isa.SIMDFP, Dep1: 1})
		}
	}
	b.ResetTimer()
	var now clock.Time
	for i := 0; i < b.N; i++ {
		now, _ = c.RunStream(s, now)
	}
}
