package gpu

import (
	"testing"

	"heteromem/internal/clock"
	"heteromem/internal/isa"
	"heteromem/internal/trace"
)

func TestExecutionStepwiseMatchesRun(t *testing.T) {
	mk := func() trace.Stream {
		var s trace.Stream
		for i := 0; i < 4000; i++ {
			switch i % 4 {
			case 0:
				s = append(s, trace.Inst{PC: uint64(i), Kind: isa.SIMDLoad, Addr: uint64(i%256) * 32, Size: 32})
			case 1:
				s = append(s, trace.Inst{PC: uint64(i), Kind: isa.SIMDFP, Dep1: 1})
			case 2:
				s = append(s, trace.Inst{PC: uint64(i), Kind: isa.Branch, Taken: i%5 != 0})
			default:
				s = append(s, trace.Inst{PC: uint64(i), Kind: isa.SIMDStore, Addr: uint64(i%128) * 32, Size: 32, Dep1: 2})
			}
		}
		return s
	}

	cRun := newCore(newFake(30 * clock.Nanosecond))
	endRun, stRun := cRun.RunStream(mk(), 0)

	cStep := newCore(newFake(30 * clock.Nanosecond))
	e := cStep.Begin(trace.NewCursor(mk()), 0)
	deadline := clock.Time(0)
	for !e.Done() {
		deadline = deadline.Add(200 * clock.Nanosecond)
		e.StepUntil(deadline)
	}
	endStep, stStep := e.End()

	if endRun != endStep {
		t.Fatalf("stepwise end %v != run end %v", endStep, endRun)
	}
	if stRun != stStep {
		t.Fatalf("stepwise stats %+v != run stats %+v", stStep, stRun)
	}
}

func TestExecutionProgressGuarantee(t *testing.T) {
	c := newCore(newFake(0))
	s := make(trace.Stream, 50)
	for i := range s {
		s[i] = trace.Inst{PC: uint64(i), Kind: isa.SIMDALU}
	}
	e := c.Begin(trace.NewCursor(s), 0)
	for i := 0; i < 50 && !e.Done(); i++ {
		before := e.i
		e.StepUntil(e.Now())
		if e.i == before {
			t.Fatal("StepUntil(Now()) made no progress")
		}
	}
	if !e.Done() {
		t.Fatal("execution incomplete")
	}
}

func TestExecutionEndPanicsIfUnfinished(t *testing.T) {
	c := newCore(newFake(0))
	s := make(trace.Stream, 1000)
	for i := range s {
		s[i] = trace.Inst{PC: uint64(i), Kind: isa.SIMDALU}
	}
	e := c.Begin(trace.NewCursor(s), clock.Time(clock.Microsecond))
	e.StepUntil(clock.Time(clock.Microsecond)) // one or two instructions
	if e.Done() {
		t.Skip("stream completed in one step")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("End on unfinished execution did not panic")
		}
	}()
	e.End()
}

func TestExecutionEmptyStream(t *testing.T) {
	c := newCore(newFake(0))
	e := c.Begin(trace.NewCursor(nil), 7)
	if !e.Done() {
		t.Fatal("empty execution not done")
	}
	end, st := e.End()
	if end != 7 || st.Instructions != 0 {
		t.Fatalf("empty end=%v st=%+v", end, st)
	}
}
