package gpu

import (
	"testing"

	"heteromem/internal/isa"
	"heteromem/internal/trace"
)

// TestRunAllocBudget pins the GPU replay hot path at zero heap
// allocations per Run, mirroring the CPU core's budget: replay cost must
// stay independent of trace length.
func TestRunAllocBudget(t *testing.T) {
	c := newCore(newFake(100))
	s := make(trace.Stream, 10000)
	for i := range s {
		switch i % 4 {
		case 0:
			s[i] = trace.Inst{PC: uint64(i) * 4, Kind: isa.SIMDLoad, Addr: uint64(i) * 32, Size: 32, Lanes: 8}
		case 1:
			s[i] = trace.Inst{PC: uint64(i) * 4, Kind: isa.SIMDFP, Dep1: 1}
		case 2:
			s[i] = trace.Inst{PC: uint64(i) * 4, Kind: isa.Branch, Taken: true}
		default:
			s[i] = trace.Inst{PC: uint64(i) * 4, Kind: isa.SIMDStore, Addr: uint64(i) * 32, Size: 32, Lanes: 8, Dep1: 2}
		}
	}
	cur := trace.NewCursor(s)
	avg := testing.AllocsPerRun(20, func() {
		cur.Reset()
		c.Run(cur, 0)
	})
	if avg != 0 {
		t.Errorf("gpu.Core.Run allocates %.1f objects per replay, want 0", avg)
	}
}
