package cache

import (
	"math/rand"
	"testing"
)

// aosCache is the pre-SoA array-of-structs implementation, kept verbatim
// as the behavioural oracle for the packed-bitmask layout: every
// operation below mirrors the original Cache method line for line, so a
// divergence in the randomized equivalence test pins the exact operation
// where the data-layout migration changed semantics.
type aosBlock struct {
	tag      uint64
	valid    bool
	dirty    bool
	explicit bool
	lastUse  uint64
}

type aosCache struct {
	cfg       Config
	sets      [][]aosBlock
	setMask   uint64
	lineShift uint
	tick      uint64
	stats     Stats
	maxExpl   int
}

func newAOS(cfg Config) *aosCache {
	numSets := cfg.SizeBytes / (cfg.LineBytes * cfg.Ways)
	c := &aosCache{
		cfg:       cfg,
		sets:      make([][]aosBlock, numSets),
		setMask:   uint64(numSets - 1),
		lineShift: lineShiftOf(cfg.LineBytes),
		maxExpl:   cfg.MaxExplicitWays,
	}
	if c.maxExpl == 0 {
		c.maxExpl = cfg.Ways - 1
	}
	if cfg.Policy == LRU {
		c.maxExpl = cfg.Ways
	}
	blocks := make([]aosBlock, numSets*cfg.Ways)
	for i := range c.sets {
		c.sets[i], blocks = blocks[:cfg.Ways], blocks[cfg.Ways:]
	}
	return c
}

func lineShiftOf(lineBytes int) uint {
	s := uint(0)
	for 1<<s < lineBytes {
		s++
	}
	return s
}

func (c *aosCache) setIndex(addr uint64) uint64 { return (addr >> c.lineShift) & c.setMask }
func (c *aosCache) tagOf(addr uint64) uint64    { return addr >> c.lineShift }

func (c *aosCache) LookupWay(addr uint64, write bool) int {
	c.tick++
	c.stats.Accesses++
	set := c.sets[c.setIndex(addr)]
	tag := c.tagOf(addr)
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			set[i].lastUse = c.tick
			if write {
				set[i].dirty = true
			}
			c.stats.Hits++
			return i
		}
	}
	c.stats.Misses++
	return -1
}

func (c *aosCache) HitWay(addr uint64, way int, write bool) bool {
	set := c.sets[c.setIndex(addr)]
	if uint(way) >= uint(len(set)) {
		return false
	}
	b := &set[way]
	if !b.valid || b.tag != c.tagOf(addr) {
		return false
	}
	c.tick++
	c.stats.Accesses++
	b.lastUse = c.tick
	if write {
		b.dirty = true
	}
	c.stats.Hits++
	return true
}

func (c *aosCache) Probe(addr uint64) bool {
	set := c.sets[c.setIndex(addr)]
	tag := c.tagOf(addr)
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			return true
		}
	}
	return false
}

func (c *aosCache) Fill(addr uint64, explicit, dirty bool) Eviction {
	c.tick++
	set := c.sets[c.setIndex(addr)]
	tag := c.tagOf(addr)
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			set[i].lastUse = c.tick
			set[i].explicit = set[i].explicit || explicit
			set[i].dirty = set[i].dirty || dirty
			return Eviction{}
		}
	}
	victim := c.chooseVictim(set, explicit)
	if victim < 0 {
		c.stats.Bypasses++
		return Eviction{Bypassed: true}
	}
	ev := Eviction{}
	if set[victim].valid {
		ev = Eviction{
			Valid:    true,
			Addr:     set[victim].tag << c.lineShift,
			Dirty:    set[victim].dirty,
			Explicit: set[victim].explicit,
		}
		c.stats.Evictions++
		if ev.Dirty {
			c.stats.Writebacks++
		}
	}
	set[victim] = aosBlock{tag: tag, valid: true, dirty: dirty, explicit: explicit, lastUse: c.tick}
	c.stats.Fills++
	return ev
}

func (c *aosCache) chooseVictim(set []aosBlock, explicitFill bool) int {
	for i := range set {
		if !set[i].valid {
			return i
		}
	}
	if c.cfg.Policy == LRU {
		return aosLRUAmong(set, func(aosBlock) bool { return true })
	}
	if !explicitFill {
		return aosLRUAmong(set, func(b aosBlock) bool { return !b.explicit })
	}
	if c.explicitCount(set) >= c.maxExpl {
		return aosLRUAmong(set, func(b aosBlock) bool { return b.explicit })
	}
	return aosLRUAmong(set, func(aosBlock) bool { return true })
}

func (c *aosCache) explicitCount(set []aosBlock) int {
	n := 0
	for i := range set {
		if set[i].valid && set[i].explicit {
			n++
		}
	}
	return n
}

func aosLRUAmong(set []aosBlock, eligible func(aosBlock) bool) int {
	best := -1
	for i := range set {
		if !eligible(set[i]) {
			continue
		}
		if best < 0 || set[i].lastUse < set[best].lastUse {
			best = i
		}
	}
	return best
}

func (c *aosCache) Invalidate(addr uint64) (present, dirty bool) {
	set := c.sets[c.setIndex(addr)]
	tag := c.tagOf(addr)
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			d := set[i].dirty
			set[i] = aosBlock{}
			return true, d
		}
	}
	return false, false
}

func (c *aosCache) FlushAll() (writebacks int) {
	for s := range c.sets {
		for i := range c.sets[s] {
			if c.sets[s][i].valid && c.sets[s][i].dirty {
				writebacks++
			}
			c.sets[s][i] = aosBlock{}
		}
	}
	c.stats.Writebacks += uint64(writebacks)
	return writebacks
}

func (c *aosCache) Reset() {
	for s := range c.sets {
		for i := range c.sets[s] {
			c.sets[s][i] = aosBlock{}
		}
	}
	c.tick = 0
	c.stats = Stats{}
}

func (c *aosCache) ExplicitBlocks() int {
	n := 0
	for s := range c.sets {
		n += c.explicitCount(c.sets[s])
	}
	return n
}

func (c *aosCache) ValidBlocks() int {
	n := 0
	for s := range c.sets {
		for i := range c.sets[s] {
			if c.sets[s][i].valid {
				n++
			}
		}
	}
	return n
}

// TestSoAMatchesAoSOracle drives the SoA cache and the AoS oracle
// through long random operation sequences — lookups, memoized replays,
// fills (implicit/explicit, clean/dirty), probes, invalidates, flushes
// and resets — over a small cache (so sets conflict constantly) and
// checks every return value, every Eviction field and the full Stats
// after each step, for both policies and several explicit-way caps.
func TestSoAMatchesAoSOracle(t *testing.T) {
	configs := []Config{
		{Name: "lru", SizeBytes: 4 << 10, LineBytes: 64, Ways: 4, Policy: LRU},
		{Name: "la", SizeBytes: 4 << 10, LineBytes: 64, Ways: 4, Policy: LocalityAware},
		{Name: "la-cap1", SizeBytes: 2 << 10, LineBytes: 64, Ways: 8, Policy: LocalityAware, MaxExplicitWays: 1},
		{Name: "la-cap7", SizeBytes: 2 << 10, LineBytes: 64, Ways: 8, Policy: LocalityAware, MaxExplicitWays: 7},
		{Name: "one-way", SizeBytes: 1 << 10, LineBytes: 64, Ways: 1, Policy: LRU},
		{Name: "wide", SizeBytes: 64 << 10, LineBytes: 64, Ways: 32, Policy: LocalityAware},
	}
	for _, cfg := range configs {
		cfg := cfg
		t.Run(cfg.Name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(0x5eed + int64(cfg.Ways)))
			soa := MustNew(cfg)
			aos := newAOS(cfg)
			// Few distinct lines so sets overflow and every victim path runs.
			lines := 4 * cfg.SizeBytes / cfg.LineBytes / cfg.Ways * cfg.Ways
			addr := func() uint64 {
				return uint64(rng.Intn(lines))*uint64(cfg.LineBytes) + uint64(rng.Intn(cfg.LineBytes))
			}
			lastWay := -1
			lastAddr := uint64(0)
			for step := 0; step < 200_000; step++ {
				op := rng.Intn(100)
				switch {
				case op < 45: // lookup
					a, w := addr(), rng.Intn(2) == 0
					gw, ww := soa.LookupWay(a, w), aos.LookupWay(a, w)
					if gw != ww {
						t.Fatalf("step %d: LookupWay(%#x,%v) = %d, oracle %d", step, a, w, gw, ww)
					}
					if gw >= 0 {
						lastWay, lastAddr = gw, a
					}
				case op < 55: // memoized replay, sometimes deliberately stale
					if lastWay < 0 {
						continue
					}
					a := lastAddr
					if rng.Intn(4) == 0 {
						a = addr()
					}
					w := rng.Intn(2) == 0
					way := lastWay
					if rng.Intn(8) == 0 {
						way = rng.Intn(cfg.Ways + 2)
					}
					if g, o := soa.HitWay(a, way, w), aos.HitWay(a, way, w); g != o {
						t.Fatalf("step %d: HitWay(%#x,%d,%v) = %v, oracle %v", step, a, way, w, g, o)
					}
				case op < 85: // fill
					a, ex, dr := addr(), rng.Intn(3) == 0, rng.Intn(3) == 0
					gev, gw := soa.FillWay(a, ex, dr)
					oev := aos.Fill(a, ex, dr)
					if gev != oev {
						t.Fatalf("step %d: Fill(%#x,%v,%v) = %+v, oracle %+v", step, a, ex, dr, gev, oev)
					}
					// FillWay's way report: -1 exactly on bypass, and the
					// reported way must actually hold the line.
					if (gw < 0) != gev.Bypassed {
						t.Fatalf("step %d: FillWay(%#x) way %d with eviction %+v", step, a, gw, gev)
					}
					if gw >= 0 && !soa.Probe(a) {
						t.Fatalf("step %d: FillWay(%#x) reported way %d but line absent", step, a, gw)
					}
				case op < 90: // probe
					a := addr()
					if g, o := soa.Probe(a), aos.Probe(a); g != o {
						t.Fatalf("step %d: Probe(%#x) = %v, oracle %v", step, a, g, o)
					}
				case op < 96: // invalidate
					a := addr()
					gp, gd := soa.Invalidate(a)
					op2, od := aos.Invalidate(a)
					if gp != op2 || gd != od {
						t.Fatalf("step %d: Invalidate(%#x) = (%v,%v), oracle (%v,%v)", step, a, gp, gd, op2, od)
					}
				case op < 99: // flush
					if g, o := soa.FlushAll(), aos.FlushAll(); g != o {
						t.Fatalf("step %d: FlushAll = %d, oracle %d", step, g, o)
					}
					lastWay = -1
				default: // reset
					soa.Reset()
					aos.Reset()
					lastWay = -1
				}
				if soa.Stats() != aos.stats {
					t.Fatalf("step %d: stats diverged: %+v vs oracle %+v", step, soa.Stats(), aos.stats)
				}
				if step%1024 == 0 {
					if g, o := soa.ValidBlocks(), aos.ValidBlocks(); g != o {
						t.Fatalf("step %d: ValidBlocks %d vs %d", step, g, o)
					}
					if g, o := soa.ExplicitBlocks(), aos.ExplicitBlocks(); g != o {
						t.Fatalf("step %d: ExplicitBlocks %d vs %d", step, g, o)
					}
				}
			}
		})
	}
}

// TestWaysLimit pins the packed-state associativity bound: 64 ways is
// the densest legal geometry, 65 must be rejected at validation.
func TestWaysLimit(t *testing.T) {
	ok := Config{Name: "w64", SizeBytes: 64 * 64 * 64, LineBytes: 64, Ways: 64, Policy: LRU}
	c, err := New(ok)
	if err != nil {
		t.Fatalf("64 ways rejected: %v", err)
	}
	// All 64 ways of one set must be usable.
	for i := 0; i < 64; i++ {
		c.Fill(uint64(i)*64*64, false, false)
	}
	if got := c.ValidBlocks(); got != 64 {
		t.Fatalf("filled %d of 64 ways", got)
	}
	if ev := c.Fill(64*64*64, false, false); !ev.Valid {
		t.Fatal("65th fill into a full 64-way set did not evict")
	}
	bad := ok
	bad.Ways = 65
	bad.SizeBytes = 65 * 64 * 64
	if _, err := New(bad); err == nil {
		t.Fatal("65 ways accepted")
	}
}
