package cache

import (
	"testing"

	"heteromem/internal/clock"
)

func TestMSHRMerge(t *testing.T) {
	m := NewMSHR(4)
	ready := m.Allocate(0x1000, 0, 100)
	if ready != 100 {
		t.Fatalf("primary ready = %v, want 100", ready)
	}
	// Secondary miss to the same line while outstanding merges.
	r, ok := m.Outstanding(0x1000, 50)
	if !ok || r != 100 {
		t.Fatalf("Outstanding = (%v,%v), want (100,true)", r, ok)
	}
	if m.Merges() != 1 {
		t.Fatalf("merges = %d, want 1", m.Merges())
	}
	// After the fill completes, the entry expires.
	if _, ok := m.Outstanding(0x1000, 150); ok {
		t.Fatal("expired entry still outstanding")
	}
}

func TestMSHRFullStalls(t *testing.T) {
	m := NewMSHR(2)
	m.Allocate(0x1000, 0, 100)
	m.Allocate(0x2000, 0, 200)
	// Third primary miss at t=0 with a 50-cycle service time: must wait
	// until the earliest entry (100) retires, so it completes at 50+100.
	ready := m.Allocate(0x3000, 0, 50)
	if ready != 150 {
		t.Fatalf("stalled ready = %v, want 150", ready)
	}
	if m.Stalls() != 1 {
		t.Fatalf("stalls = %d, want 1", m.Stalls())
	}
}

func TestMSHRUnlimited(t *testing.T) {
	m := NewMSHR(0)
	for i := 0; i < 100; i++ {
		ready := m.Allocate(uint64(i)*64, 0, clock.Time(100+i))
		if ready != clock.Time(100+i) {
			t.Fatalf("unlimited MSHR delayed allocation %d", i)
		}
	}
	if m.Stalls() != 0 {
		t.Fatal("unlimited MSHR recorded stalls")
	}
}

func TestMSHRInFlight(t *testing.T) {
	m := NewMSHR(8)
	m.Allocate(0x0, 0, 100)
	m.Allocate(0x40, 0, 200)
	if n := m.InFlight(50); n != 2 {
		t.Fatalf("in flight at 50 = %d, want 2", n)
	}
	if n := m.InFlight(150); n != 1 {
		t.Fatalf("in flight at 150 = %d, want 1", n)
	}
	if n := m.InFlight(300); n != 0 {
		t.Fatalf("in flight at 300 = %d, want 0", n)
	}
}
