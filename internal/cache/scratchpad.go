package cache

import "fmt"

// Scratchpad models a software-managed cache (the GPU's 16 KB
// software-managed cache in Table II). Unlike a hardware cache it has no
// tags or replacement: software explicitly places and removes ranges, a
// lookup either finds the data (fixed latency) or it is a program error
// that the core model charges as a miss to the hierarchy.
type Scratchpad struct {
	name     string
	capacity uint64
	used     uint64
	ranges   map[uint64]uint64 // base -> size
	hits     uint64
	misses   uint64
}

// NewScratchpad returns an empty scratchpad with the given capacity in
// bytes.
func NewScratchpad(name string, capacity uint64) *Scratchpad {
	return &Scratchpad{name: name, capacity: capacity, ranges: make(map[uint64]uint64)}
}

// Capacity returns the total capacity in bytes.
func (s *Scratchpad) Capacity() uint64 { return s.capacity }

// Used returns the bytes currently allocated.
func (s *Scratchpad) Used() uint64 { return s.used }

// Place allocates [base, base+size) in the scratchpad. It fails when the
// range would exceed capacity; software (the trace generator) is
// responsible for eviction, mirroring real software-managed caches.
func (s *Scratchpad) Place(base, size uint64) error {
	if old, ok := s.ranges[base]; ok {
		if old >= size {
			return nil // already resident
		}
		s.used -= old
		delete(s.ranges, base)
	}
	if s.used+size > s.capacity {
		return fmt.Errorf("scratchpad %s: placing %d bytes exceeds capacity (%d/%d used)",
			s.name, size, s.used, s.capacity)
	}
	s.ranges[base] = size
	s.used += size
	return nil
}

// Remove frees the range previously placed at base, reporting whether it
// was resident.
func (s *Scratchpad) Remove(base uint64) bool {
	size, ok := s.ranges[base]
	if !ok {
		return false
	}
	s.used -= size
	delete(s.ranges, base)
	return true
}

// Resident reports whether addr falls inside any placed range, and
// records a hit or miss.
func (s *Scratchpad) Resident(addr uint64) bool {
	for base, size := range s.ranges {
		if addr >= base && addr < base+size {
			s.hits++
			return true
		}
	}
	s.misses++
	return false
}

// Hits returns the number of resident lookups.
func (s *Scratchpad) Hits() uint64 { return s.hits }

// Misses returns the number of non-resident lookups.
func (s *Scratchpad) Misses() uint64 { return s.misses }

// Clear frees every range.
func (s *Scratchpad) Clear() {
	s.ranges = make(map[uint64]uint64)
	s.used = 0
}

// Reset returns the scratchpad to its just-constructed state: Clear
// plus zeroed hit/miss counters.
func (s *Scratchpad) Reset() {
	s.Clear()
	s.hits = 0
	s.misses = 0
}
