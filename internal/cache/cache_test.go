package cache

import (
	"strings"
	"testing"
	"testing/quick"
)

func smallCache(t *testing.T, policy Policy) *Cache {
	t.Helper()
	c, err := New(Config{
		Name: "t", SizeBytes: 1024, LineBytes: 64, Ways: 4, Policy: policy,
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{Name: "sz", SizeBytes: 1000, LineBytes: 64, Ways: 4},
		{Name: "ln", SizeBytes: 1024, LineBytes: 48, Ways: 4},
		{Name: "ways", SizeBytes: 1024, LineBytes: 64, Ways: 0},
		{Name: "div", SizeBytes: 1024, LineBytes: 64, Ways: 5},
		{Name: "expl-range", SizeBytes: 1024, LineBytes: 64, Ways: 4, MaxExplicitWays: 5},
		{Name: "expl-full", SizeBytes: 1024, LineBytes: 64, Ways: 4, Policy: LocalityAware, MaxExplicitWays: 4},
	}
	for _, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("config %s accepted, want error", cfg.Name)
		}
	}
	if _, err := New(Config{Name: "ok", SizeBytes: 1024, LineBytes: 64, Ways: 4}); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew with bad config did not panic")
		}
	}()
	MustNew(Config{SizeBytes: 3})
}

func TestGeometry(t *testing.T) {
	c := smallCache(t, LRU)
	if c.Sets() != 4 {
		t.Fatalf("sets = %d, want 4", c.Sets())
	}
	if c.LineFor(0x12345) != 0x12340 {
		t.Fatalf("LineFor(0x12345) = %#x", c.LineFor(0x12345))
	}
}

func TestHitAfterFill(t *testing.T) {
	c := smallCache(t, LRU)
	if c.Lookup(0x1000, false) {
		t.Fatal("cold cache hit")
	}
	c.Fill(0x1000, false, false)
	if !c.Lookup(0x1000, false) {
		t.Fatal("miss after fill")
	}
	if !c.Lookup(0x1008, false) {
		t.Fatal("same-line access missed")
	}
	if c.Lookup(0x1040, false) {
		t.Fatal("next-line access hit without fill")
	}
	st := c.Stats()
	if st.Hits != 2 || st.Misses != 2 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestLRUEviction(t *testing.T) {
	c := smallCache(t, LRU) // 4 sets, 4 ways, 64B lines; set stride = 256B
	// Fill one set (set 0) with 4 distinct lines.
	addrs := []uint64{0x0000, 0x0400, 0x0800, 0x0c00}
	for _, a := range addrs {
		c.Fill(a, false, false)
	}
	// Touch the first three so 0x0c00 is LRU.
	for _, a := range addrs[:3] {
		c.Lookup(a, false)
	}
	ev := c.Fill(0x1000, false, false)
	if !ev.Valid || ev.Addr != 0x0c00 {
		t.Fatalf("evicted %+v, want LRU line 0xc00", ev)
	}
}

func TestWritebackOnDirtyEviction(t *testing.T) {
	c := smallCache(t, LRU)
	c.Fill(0x0000, false, false)
	c.Lookup(0x0000, true) // dirty it
	for _, a := range []uint64{0x0400, 0x0800, 0x0c00, 0x1000} {
		c.Fill(a, false, false)
	}
	st := c.Stats()
	if st.Writebacks != 1 {
		t.Fatalf("writebacks = %d, want 1", st.Writebacks)
	}
}

func TestFillDirtyInstall(t *testing.T) {
	c := smallCache(t, LRU)
	c.Fill(0x0000, false, true) // store miss under write-allocate
	for _, a := range []uint64{0x0400, 0x0800, 0x0c00, 0x1000} {
		c.Fill(a, false, false)
	}
	if c.Stats().Writebacks != 1 {
		t.Fatal("dirty-installed block not written back on eviction")
	}
}

func TestFillExistingUpgrades(t *testing.T) {
	c := smallCache(t, LocalityAware)
	c.Fill(0x0000, false, false)
	ev := c.Fill(0x0000, true, true) // push of already-resident line
	if ev.Valid || ev.Bypassed {
		t.Fatalf("in-place upgrade should not evict: %+v", ev)
	}
	if c.ExplicitBlocks() != 1 {
		t.Fatal("upgrade did not set explicit bit")
	}
	if c.ValidBlocks() != 1 {
		t.Fatal("duplicate block created")
	}
}

func TestLocalityBitProtectsExplicit(t *testing.T) {
	c := smallCache(t, LocalityAware)
	// Three explicit blocks in set 0 (cap is Ways-1 = 3 by default).
	c.Fill(0x0000, true, false)
	c.Fill(0x0400, true, false)
	c.Fill(0x0800, true, false)
	// One implicit block.
	c.Fill(0x0c00, false, false)
	// An implicit fill must evict the implicit block, never an explicit one.
	ev := c.Fill(0x1000, false, false)
	if !ev.Valid || ev.Addr != 0x0c00 || ev.Explicit {
		t.Fatalf("implicit fill evicted %+v, want implicit 0xc00", ev)
	}
	for _, a := range []uint64{0x0000, 0x0400, 0x0800} {
		if !c.Probe(a) {
			t.Fatalf("explicit block %#x lost", a)
		}
	}
}

func TestLocalityBypassWhenSetAllExplicit(t *testing.T) {
	c, err := New(Config{
		Name: "t", SizeBytes: 1024, LineBytes: 64, Ways: 4,
		Policy: LocalityAware, MaxExplicitWays: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	c.Fill(0x0000, true, false)
	c.Fill(0x0400, true, false)
	c.Fill(0x0800, true, false)
	// Set 0 has one invalid way; the first implicit fill takes it.
	if ev := c.Fill(0x0c00, false, false); ev.Bypassed {
		t.Fatal("implicit fill bypassed with an invalid way available")
	}
	// Promote the implicit block away? No — instead make all 4 explicit is
	// forbidden; but the implicit one can be evicted by explicit fill.
	ev := c.Fill(0x1000, true, false) // explicit at cap: evicts LRU explicit
	if !ev.Valid || !ev.Explicit {
		t.Fatalf("explicit fill at cap evicted %+v, want explicit victim", ev)
	}
	if c.ExplicitBlocks() != 3 {
		t.Fatalf("explicit blocks = %d, want cap 3", c.ExplicitBlocks())
	}
}

func TestLocalityBypass(t *testing.T) {
	// Force a set where every valid way is explicit, then check an
	// implicit fill bypasses. Use a direct path: 1 set total.
	c, err := New(Config{
		Name: "t", SizeBytes: 256, LineBytes: 64, Ways: 4,
		Policy: LocalityAware, MaxExplicitWays: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	c.Fill(0x0000, true, false)
	c.Fill(0x0040, true, false)
	c.Fill(0x0080, true, false)
	// Fourth way left invalid: implicit fill uses it.
	c.Fill(0x00c0, false, false)
	// Now every way valid, three explicit. Implicit fill evicts the one
	// implicit way.
	ev := c.Fill(0x0100, false, false)
	if ev.Bypassed || ev.Addr != 0x00c0 {
		t.Fatalf("got %+v, want eviction of 0xc0", ev)
	}
	// Invalidate the implicit line and refill explicit up to cap, then
	// manually construct the all-explicit situation via upgrades.
	c.Fill(0x0100, true, false) // upgrade in place to explicit (now 4 explicit? upgrade bypasses cap check)
	ev = c.Fill(0x0140, false, false)
	if !ev.Bypassed {
		t.Fatalf("implicit fill into all-explicit set not bypassed: %+v", ev)
	}
	if c.Stats().Bypasses != 1 {
		t.Fatalf("bypasses = %d, want 1", c.Stats().Bypasses)
	}
}

func TestInvalidate(t *testing.T) {
	c := smallCache(t, LRU)
	c.Fill(0x1000, false, false)
	c.Lookup(0x1000, true)
	present, dirty := c.Invalidate(0x1000)
	if !present || !dirty {
		t.Fatalf("Invalidate = (%v,%v), want (true,true)", present, dirty)
	}
	if c.Probe(0x1000) {
		t.Fatal("line still present after invalidate")
	}
	present, _ = c.Invalidate(0x9999)
	if present {
		t.Fatal("invalidate of absent line reported present")
	}
}

func TestFlushAll(t *testing.T) {
	c := smallCache(t, LRU)
	c.Fill(0x0000, false, true)
	c.Fill(0x0040, false, false)
	c.Fill(0x0080, false, true)
	if wb := c.FlushAll(); wb != 2 {
		t.Fatalf("FlushAll wrote back %d lines, want 2", wb)
	}
	if c.ValidBlocks() != 0 {
		t.Fatal("blocks remain after flush")
	}
}

func TestProbeDoesNotPerturb(t *testing.T) {
	c := smallCache(t, LRU)
	c.Fill(0x0000, false, false)
	before := c.Stats()
	c.Probe(0x0000)
	c.Probe(0x4000)
	if c.Stats() != before {
		t.Fatal("Probe changed statistics")
	}
}

func TestHitRate(t *testing.T) {
	var s Stats
	if s.HitRate() != 0 {
		t.Fatal("zero-access hit rate should be 0")
	}
	s = Stats{Accesses: 4, Hits: 3}
	if s.HitRate() != 0.75 {
		t.Fatalf("hit rate %v, want 0.75", s.HitRate())
	}
}

func TestPolicyString(t *testing.T) {
	if LRU.String() != "lru" || LocalityAware.String() != "locality-aware" {
		t.Fatal("policy names wrong")
	}
	if !strings.Contains(Policy(9).String(), "9") {
		t.Fatal("unknown policy should print its value")
	}
}

// Property: valid blocks never exceed capacity, and — the central II-B5
// invariant — an implicit fill never evicts an explicitly-managed block,
// for any interleaving of fills, upgrades, lookups and invalidations.
// (The explicit-ways cap applies to fresh explicit fills; in-place
// upgrades of resident lines may exceed it, with bypass as the backstop.)
func TestCapacityInvariantProperty(t *testing.T) {
	f := func(ops []uint16) bool {
		c := MustNew(Config{
			Name: "p", SizeBytes: 2048, LineBytes: 64, Ways: 4,
			Policy: LocalityAware, MaxExplicitWays: 2,
		})
		for _, op := range ops {
			addr := uint64(op&0x0fff) &^ 63
			switch {
			case op&0x8000 != 0:
				explicit := op&0x4000 != 0
				ev := c.Fill(addr, explicit, op&0x2000 != 0)
				if !explicit && ev.Valid && ev.Explicit {
					return false // implicit fill displaced an explicit block
				}
			case op&0x4000 != 0:
				c.Lookup(addr, op&0x2000 != 0)
			default:
				c.Invalidate(addr)
			}
			if c.ValidBlocks() > 32 { // 2048/64
				return false
			}
			if c.ExplicitBlocks() > c.ValidBlocks() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: lookup after fill of the same line always hits, regardless of
// interleaved fills to other sets.
func TestFillThenLookupProperty(t *testing.T) {
	f := func(addr uint32, noise []uint16) bool {
		c := MustNew(Config{Name: "p", SizeBytes: 4096, LineBytes: 64, Ways: 8})
		a := uint64(addr)
		c.Fill(a, false, false)
		for _, n := range noise {
			other := uint64(n)
			if c.LineFor(other) == c.LineFor(a) {
				continue
			}
			// Fills to other sets never disturb a's set; fills to a's set
			// may evict it, so restrict noise to different sets.
			if (other>>6)&uint64(c.Sets()-1) == (a>>6)&uint64(c.Sets()-1) {
				continue
			}
			c.Fill(other, false, false)
		}
		return c.Lookup(a, false)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkLookupHit(b *testing.B) {
	c := MustNew(Config{Name: "b", SizeBytes: 32 << 10, LineBytes: 64, Ways: 8})
	c.Fill(0x1000, false, false)
	for i := 0; i < b.N; i++ {
		c.Lookup(0x1000, false)
	}
}

func BenchmarkFillEvict(b *testing.B) {
	c := MustNew(Config{Name: "b", SizeBytes: 32 << 10, LineBytes: 64, Ways: 8})
	for i := 0; i < b.N; i++ {
		c.Fill(uint64(i)*64, false, false)
	}
}
