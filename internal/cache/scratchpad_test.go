package cache

import "testing"

func TestScratchpadPlaceAndResident(t *testing.T) {
	sp := NewScratchpad("gpu.sw", 16<<10)
	if err := sp.Place(0x1000, 4096); err != nil {
		t.Fatal(err)
	}
	if !sp.Resident(0x1000) || !sp.Resident(0x1fff) {
		t.Fatal("placed range not resident")
	}
	if sp.Resident(0x2000) {
		t.Fatal("address past range reported resident")
	}
	if sp.Hits() != 2 || sp.Misses() != 1 {
		t.Fatalf("hits=%d misses=%d", sp.Hits(), sp.Misses())
	}
}

func TestScratchpadCapacity(t *testing.T) {
	sp := NewScratchpad("gpu.sw", 8192)
	if err := sp.Place(0x0, 8192); err != nil {
		t.Fatal(err)
	}
	if err := sp.Place(0x10000, 1); err == nil {
		t.Fatal("over-capacity place accepted")
	}
	if sp.Used() != 8192 {
		t.Fatalf("used = %d", sp.Used())
	}
	if !sp.Remove(0x0) {
		t.Fatal("remove of placed range failed")
	}
	if sp.Used() != 0 {
		t.Fatalf("used after remove = %d", sp.Used())
	}
	if err := sp.Place(0x10000, 8192); err != nil {
		t.Fatalf("place after remove: %v", err)
	}
}

func TestScratchpadReplaceSameBase(t *testing.T) {
	sp := NewScratchpad("gpu.sw", 8192)
	if err := sp.Place(0x0, 1024); err != nil {
		t.Fatal(err)
	}
	// Growing the same range must not double-count.
	if err := sp.Place(0x0, 2048); err != nil {
		t.Fatal(err)
	}
	if sp.Used() != 2048 {
		t.Fatalf("used = %d, want 2048", sp.Used())
	}
	// Shrinking keeps the larger resident footprint (no-op).
	if err := sp.Place(0x0, 512); err != nil {
		t.Fatal(err)
	}
	if sp.Used() != 2048 {
		t.Fatalf("used after shrink = %d, want 2048", sp.Used())
	}
}

func TestScratchpadRemoveAbsent(t *testing.T) {
	sp := NewScratchpad("gpu.sw", 8192)
	if sp.Remove(0x1234) {
		t.Fatal("remove of absent range succeeded")
	}
}

func TestScratchpadClear(t *testing.T) {
	sp := NewScratchpad("gpu.sw", 8192)
	if err := sp.Place(0x0, 4096); err != nil {
		t.Fatal(err)
	}
	sp.Clear()
	if sp.Used() != 0 || sp.Resident(0x0) {
		t.Fatal("Clear left data resident")
	}
}
