package cache

import (
	"testing"

	"heteromem/internal/obs"
)

func TestLookupWayMatchesLookup(t *testing.T) {
	c := smallCache(t, LRU)
	if way := c.LookupWay(0x40, false); way >= 0 {
		t.Fatalf("cold lookup returned way %d", way)
	}
	c.Fill(0x40, false, false)
	way := c.LookupWay(0x40, false)
	if way < 0 {
		t.Fatal("resident line not found")
	}
	// The way index must be replayable through HitWay.
	if !c.HitWay(0x40, way, false) {
		t.Fatalf("HitWay rejected the way LookupWay returned (%d)", way)
	}
}

func TestHitWayMutatesLikeLookup(t *testing.T) {
	// A HitWay hit must leave exactly the state Lookup's hit path
	// leaves: same stats, same dirty bit, same recency.
	a := smallCache(t, LRU)
	b := smallCache(t, LRU)
	a.Fill(0x80, false, false)
	b.Fill(0x80, false, false)
	way := a.LookupWay(0x80, false) // counts like a Lookup read hit
	if way < 0 {
		t.Fatal("line not resident")
	}
	b.Lookup(0x80, false)
	b.Lookup(0x80, true)
	if !a.HitWay(0x80, way, true) {
		t.Fatal("HitWay missed a resident line")
	}
	if a.Stats() != b.Stats() {
		t.Fatalf("diverged: HitWay %+v, Lookup %+v", a.Stats(), b.Stats())
	}
	// Both writes must have dirtied the line: evicting it writes back.
	if ev := fillUntilEvicted(a, 0x80); !ev.Dirty {
		t.Fatal("HitWay write did not dirty the line")
	}
}

// fillUntilEvicted fills conflicting lines until addr's line is evicted
// and returns that eviction.
func fillUntilEvicted(c *Cache, addr uint64) Eviction {
	stride := uint64(c.Config().SizeBytes) / uint64(c.Config().Ways)
	for k := 1; k <= c.Config().Ways; k++ {
		if ev := c.Fill(addr+uint64(k)*stride, false, false); ev.Valid && c.LineFor(ev.Addr) == c.LineFor(addr) {
			return ev
		}
	}
	return Eviction{}
}

func TestHitWayRejectsStaleWay(t *testing.T) {
	c := smallCache(t, LRU)
	c.Fill(0x40, false, false)
	way := c.LookupWay(0x40, false)
	before := c.Stats()
	// Wrong line in that way, out-of-range way, invalidated block: all
	// must fail without mutating anything.
	if c.HitWay(0x1040, way, false) {
		t.Fatal("HitWay hit a different line")
	}
	if c.HitWay(0x40, c.Config().Ways+3, false) {
		t.Fatal("HitWay accepted an out-of-range way")
	}
	c.Invalidate(0x40)
	if c.HitWay(0x40, way, false) {
		t.Fatal("HitWay hit an invalidated block")
	}
	if after := c.Stats(); after != before {
		t.Fatalf("failed HitWay probes mutated stats: %+v -> %+v", before, after)
	}
}

func TestFlushObsBatchesDeltas(t *testing.T) {
	c := smallCache(t, LRU)
	reg := obs.NewRegistry()
	c.Instrument(reg, "t")
	c.Fill(0x40, false, false)
	c.Lookup(0x40, false) // hit
	c.Lookup(0x80, false) // miss
	if got := reg.CounterValue("t.hits"); got != 0 {
		t.Fatalf("hits visible before flush: %d", got)
	}
	c.FlushObs()
	if h, m := reg.CounterValue("t.hits"), reg.CounterValue("t.misses"); h != 1 || m != 1 {
		t.Fatalf("flushed hits=%d misses=%d, want 1/1", h, m)
	}
	// A second flush with no new events must not double-count.
	c.FlushObs()
	if h := reg.CounterValue("t.hits"); h != 1 {
		t.Fatalf("idempotent flush broke: hits=%d", h)
	}
	// Events before Instrument must not replay into a new registry.
	reg2 := obs.NewRegistry()
	c.Instrument(reg2, "t")
	c.Lookup(0x40, false)
	c.FlushObs()
	if h := reg2.CounterValue("t.hits"); h != 1 {
		t.Fatalf("fresh registry hits=%d, want only the post-Instrument hit", h)
	}
}
