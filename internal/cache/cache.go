// Package cache implements the hardware caches of the simulated memory
// hierarchy: set-associative caches with LRU or locality-aware
// replacement, the GPU's software-managed scratchpad, and miss-status
// holding registers (MSHRs).
//
// The locality-aware policy implements the paper's hybrid second-level
// locality management (Section II-B5): each tag carries one bit that
// records whether the block was placed explicitly (by a push instruction)
// or implicitly (by a hardware fill), and the replacement logic forbids
// an implicitly-managed fill from evicting an explicitly-managed block.
// To keep explicit data from monopolising the array, the explicitly
// managed footprint per set is capped below the full associativity
// (the paper's constraint that "the explicitly managed cache size must be
// smaller than the total size of the physically shared cache").
package cache

import (
	"fmt"
	"math/bits"

	"heteromem/internal/obs"
)

// Policy selects the replacement policy.
type Policy uint8

const (
	// LRU is plain least-recently-used replacement.
	LRU Policy = iota
	// LocalityAware is LRU augmented with the per-block locality bit of
	// Section II-B5: implicit fills may only replace invalid or implicit
	// blocks, and bypass the cache when a set is entirely explicit.
	LocalityAware
)

func (p Policy) String() string {
	switch p {
	case LRU:
		return "lru"
	case LocalityAware:
		return "locality-aware"
	default:
		return fmt.Sprintf("policy(%d)", uint8(p))
	}
}

// Config describes a cache's geometry and behaviour.
type Config struct {
	// Name identifies the cache in statistics (e.g. "cpu.l1d").
	Name string
	// SizeBytes is the total capacity. Must be a power of two.
	SizeBytes int
	// LineBytes is the block size. Must be a power of two.
	LineBytes int
	// Ways is the associativity.
	Ways int
	// Policy selects the replacement policy.
	Policy Policy
	// MaxExplicitWays caps how many ways per set may hold explicit
	// blocks under LocalityAware. Zero means Ways-1, the minimum slack
	// that keeps at least one way available to implicit fills.
	MaxExplicitWays int
}

func (c Config) validate() error {
	switch {
	case c.SizeBytes <= 0 || bits.OnesCount(uint(c.SizeBytes)) != 1:
		return fmt.Errorf("cache %s: size %d is not a positive power of two", c.Name, c.SizeBytes)
	case c.LineBytes <= 0 || bits.OnesCount(uint(c.LineBytes)) != 1:
		return fmt.Errorf("cache %s: line %d is not a positive power of two", c.Name, c.LineBytes)
	case c.Ways <= 0:
		return fmt.Errorf("cache %s: ways %d must be positive", c.Name, c.Ways)
	case c.SizeBytes%(c.LineBytes*c.Ways) != 0:
		return fmt.Errorf("cache %s: size %d not divisible by ways*line %d", c.Name, c.SizeBytes, c.LineBytes*c.Ways)
	case c.MaxExplicitWays < 0 || c.MaxExplicitWays > c.Ways:
		return fmt.Errorf("cache %s: max explicit ways %d out of range", c.Name, c.MaxExplicitWays)
	case c.Policy == LocalityAware && c.MaxExplicitWays == c.Ways:
		return fmt.Errorf("cache %s: explicit ways must be smaller than associativity (paper constraint II-B5)", c.Name)
	}
	return nil
}

type block struct {
	tag      uint64
	valid    bool
	dirty    bool
	explicit bool
	lastUse  uint64
}

// Eviction describes the result of a Fill: which block, if any, was
// displaced, and whether the fill was bypassed entirely.
type Eviction struct {
	// Valid reports that a valid block was evicted.
	Valid bool
	// Addr is the base address of the evicted line.
	Addr uint64
	// Dirty reports the evicted line had been written (needs write-back).
	Dirty bool
	// Explicit reports the evicted line was explicitly managed.
	Explicit bool
	// Bypassed reports the fill was dropped because the locality-aware
	// policy found no replaceable way (the whole set is explicit).
	Bypassed bool
}

// Stats counts cache events.
type Stats struct {
	Accesses   uint64
	Hits       uint64
	Misses     uint64
	Fills      uint64
	Evictions  uint64
	Writebacks uint64
	Bypasses   uint64
}

// HitRate returns hits/accesses, or 0 with no accesses.
func (s Stats) HitRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Accesses)
}

// Cache is a set-associative cache. It models tags and replacement state
// only — the simulator never stores data, it only times accesses.
type Cache struct {
	cfg       Config
	sets      [][]block
	setShift  uint
	setMask   uint64
	lineShift uint
	tick      uint64
	stats     Stats
	obs       cacheObs
	// flushed is the stats snapshot at the last FlushObs: the obs
	// instruments are advanced by the delta, not bumped per event.
	flushed Stats
	maxExpl int
}

// cacheObs holds the cache's observability instruments; nil (the
// default) instruments make every bump a no-op.
type cacheObs struct {
	hits      *obs.Counter
	misses    *obs.Counter
	evictions *obs.Counter
}

// Instrument registers the cache's hit/miss/eviction counters with reg
// under the given prefix (e.g. "mem.cpu.l1d" yields
// "mem.cpu.l1d.hits"). A nil registry detaches the instruments. The
// counters are advanced in batches (FlushObs), starting from the
// cache's state at registration.
func (c *Cache) Instrument(reg *obs.Registry, prefix string) {
	c.obs = cacheObs{
		hits:      reg.Counter(prefix + ".hits"),
		misses:    reg.Counter(prefix + ".misses"),
		evictions: reg.Counter(prefix + ".evictions"),
	}
	c.flushed = c.stats
}

// FlushObs pushes counter growth since the previous flush into the
// registered instruments. Batching keeps the lookup hot path free of
// per-event instrument traffic; totals at flush points are identical
// to per-event bumping.
func (c *Cache) FlushObs() {
	c.obs.hits.Add(c.stats.Hits - c.flushed.Hits)
	c.obs.misses.Add(c.stats.Misses - c.flushed.Misses)
	c.obs.evictions.Add(c.stats.Evictions - c.flushed.Evictions)
	c.flushed = c.stats
}

// New returns a cache with the given configuration.
func New(cfg Config) (*Cache, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	numSets := cfg.SizeBytes / (cfg.LineBytes * cfg.Ways)
	c := &Cache{
		cfg:       cfg,
		sets:      make([][]block, numSets),
		setMask:   uint64(numSets - 1),
		lineShift: uint(bits.TrailingZeros(uint(cfg.LineBytes))),
		maxExpl:   cfg.MaxExplicitWays,
	}
	if c.maxExpl == 0 {
		c.maxExpl = cfg.Ways - 1
	}
	if cfg.Policy == LRU {
		c.maxExpl = cfg.Ways
	}
	blocks := make([]block, numSets*cfg.Ways)
	for i := range c.sets {
		c.sets[i], blocks = blocks[:cfg.Ways], blocks[cfg.Ways:]
	}
	return c, nil
}

// MustNew is New but panics on configuration error, for static configs.
func MustNew(cfg Config) *Cache {
	c, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return c
}

// Config returns the cache's configuration.
func (c *Cache) Config() Config { return c.cfg }

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() Stats { return c.stats }

// Sets returns the number of sets.
func (c *Cache) Sets() int { return len(c.sets) }

// LineFor returns the base address of the line containing addr.
func (c *Cache) LineFor(addr uint64) uint64 {
	return addr &^ (uint64(c.cfg.LineBytes) - 1)
}

func (c *Cache) setIndex(addr uint64) uint64 { return (addr >> c.lineShift) & c.setMask }
func (c *Cache) tagOf(addr uint64) uint64    { return addr >> c.lineShift }

// Lookup accesses the line containing addr, reporting a hit. On a hit the
// block's recency is refreshed and, for writes, the dirty bit set. On a
// miss the caller is expected to fetch the line from the next level and
// call Fill.
func (c *Cache) Lookup(addr uint64, write bool) bool {
	return c.LookupWay(addr, write) >= 0
}

// LookupWay is Lookup, additionally reporting which way served the hit
// (negative on a miss) so callers can memoize the block's location and
// replay later hits through HitWay without the set scan.
func (c *Cache) LookupWay(addr uint64, write bool) int {
	c.tick++
	c.stats.Accesses++
	set := c.sets[c.setIndex(addr)]
	tag := c.tagOf(addr)
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			set[i].lastUse = c.tick
			if write {
				set[i].dirty = true
			}
			c.stats.Hits++
			return i
		}
	}
	c.stats.Misses++
	return -1
}

// HitWay replays an access against a memoized way. If the way still
// holds the line containing addr, the access is applied with exactly
// Lookup's hit bookkeeping (tick, recency refresh, dirty bit, access
// and hit counts) and HitWay reports true. Otherwise the cache is left
// completely untouched and the caller falls back to Lookup. The tag
// verification makes a stale memo safe, never wrong.
func (c *Cache) HitWay(addr uint64, way int, write bool) bool {
	set := c.sets[c.setIndex(addr)]
	if uint(way) >= uint(len(set)) {
		return false
	}
	b := &set[way]
	if !b.valid || b.tag != c.tagOf(addr) {
		return false
	}
	c.tick++
	c.stats.Accesses++
	b.lastUse = c.tick
	if write {
		b.dirty = true
	}
	c.stats.Hits++
	return true
}

// Probe reports whether the line containing addr is present without
// disturbing replacement state or statistics.
func (c *Cache) Probe(addr uint64) bool {
	set := c.sets[c.setIndex(addr)]
	tag := c.tagOf(addr)
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			return true
		}
	}
	return false
}

// Fill inserts the line containing addr. explicit marks the block as
// explicitly managed (placed by push); dirty installs it already modified
// (e.g. a store miss under write-allocate). The returned Eviction
// describes any displaced block or a bypass.
func (c *Cache) Fill(addr uint64, explicit, dirty bool) Eviction {
	c.tick++
	setIdx := c.setIndex(addr)
	set := c.sets[setIdx]
	tag := c.tagOf(addr)

	// Upgrade in place if already present (fill after racing lookups,
	// or a push of resident data).
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			set[i].lastUse = c.tick
			set[i].explicit = set[i].explicit || explicit
			set[i].dirty = set[i].dirty || dirty
			return Eviction{}
		}
	}

	victim := c.chooseVictim(set, explicit)
	if victim < 0 {
		c.stats.Bypasses++
		return Eviction{Bypassed: true}
	}
	ev := Eviction{}
	if set[victim].valid {
		ev = Eviction{
			Valid:    true,
			Addr:     set[victim].tag << c.lineShift,
			Dirty:    set[victim].dirty,
			Explicit: set[victim].explicit,
		}
		c.stats.Evictions++
		if ev.Dirty {
			c.stats.Writebacks++
		}
	}
	set[victim] = block{tag: tag, valid: true, dirty: dirty, explicit: explicit, lastUse: c.tick}
	c.stats.Fills++
	return ev
}

// chooseVictim returns the way to replace, or -1 to bypass. Preference
// order: any invalid way, then LRU among the ways this fill is allowed to
// replace under the policy.
func (c *Cache) chooseVictim(set []block, explicitFill bool) int {
	for i := range set {
		if !set[i].valid {
			return i
		}
	}
	if c.cfg.Policy == LRU {
		return lruAmong(set, func(block) bool { return true })
	}
	if !explicitFill {
		// Implicit fills may not displace explicit blocks (II-B5).
		return lruAmong(set, func(b block) bool { return !b.explicit })
	}
	// Explicit fill: if the set already holds the maximum explicit
	// footprint, replace the LRU explicit block so the cap is preserved;
	// otherwise replace the global LRU.
	if c.explicitCount(set) >= c.maxExpl {
		return lruAmong(set, func(b block) bool { return b.explicit })
	}
	return lruAmong(set, func(block) bool { return true })
}

func (c *Cache) explicitCount(set []block) int {
	n := 0
	for i := range set {
		if set[i].valid && set[i].explicit {
			n++
		}
	}
	return n
}

func lruAmong(set []block, eligible func(block) bool) int {
	best := -1
	for i := range set {
		if !eligible(set[i]) {
			continue
		}
		if best < 0 || set[i].lastUse < set[best].lastUse {
			best = i
		}
	}
	return best
}

// Reset returns the cache to its just-constructed state: every block
// invalid, replacement state and statistics cleared. Instruments stay
// wired. Used when a simulator is recycled between runs.
func (c *Cache) Reset() {
	for s := range c.sets {
		for i := range c.sets[s] {
			c.sets[s][i] = block{}
		}
	}
	c.tick = 0
	c.stats = Stats{}
	c.flushed = Stats{}
}

// Invalidate removes the line containing addr if present, reporting
// whether it was present and whether it was dirty.
func (c *Cache) Invalidate(addr uint64) (present, dirty bool) {
	set := c.sets[c.setIndex(addr)]
	tag := c.tagOf(addr)
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			d := set[i].dirty
			set[i] = block{}
			return true, d
		}
	}
	return false, false
}

// FlushAll invalidates every block and returns the number of dirty lines
// that would be written back.
func (c *Cache) FlushAll() (writebacks int) {
	for s := range c.sets {
		for i := range c.sets[s] {
			if c.sets[s][i].valid && c.sets[s][i].dirty {
				writebacks++
			}
			c.sets[s][i] = block{}
		}
	}
	c.stats.Writebacks += uint64(writebacks)
	return writebacks
}

// ExplicitBlocks returns how many valid blocks are explicitly managed.
func (c *Cache) ExplicitBlocks() int {
	n := 0
	for s := range c.sets {
		n += c.explicitCount(c.sets[s])
	}
	return n
}

// ValidBlocks returns how many blocks are valid.
func (c *Cache) ValidBlocks() int {
	n := 0
	for s := range c.sets {
		for i := range c.sets[s] {
			if c.sets[s][i].valid {
				n++
			}
		}
	}
	return n
}
