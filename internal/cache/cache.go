// Package cache implements the hardware caches of the simulated memory
// hierarchy: set-associative caches with LRU or locality-aware
// replacement, the GPU's software-managed scratchpad, and miss-status
// holding registers (MSHRs).
//
// The locality-aware policy implements the paper's hybrid second-level
// locality management (Section II-B5): each tag carries one bit that
// records whether the block was placed explicitly (by a push instruction)
// or implicitly (by a hardware fill), and the replacement logic forbids
// an implicitly-managed fill from evicting an explicitly-managed block.
// To keep explicit data from monopolising the array, the explicitly
// managed footprint per set is capped below the full associativity
// (the paper's constraint that "the explicitly managed cache size must be
// smaller than the total size of the physically shared cache").
package cache

import (
	"fmt"
	"math/bits"

	"heteromem/internal/arena"
	"heteromem/internal/obs"
)

// Policy selects the replacement policy.
type Policy uint8

const (
	// LRU is plain least-recently-used replacement.
	LRU Policy = iota
	// LocalityAware is LRU augmented with the per-block locality bit of
	// Section II-B5: implicit fills may only replace invalid or implicit
	// blocks, and bypass the cache when a set is entirely explicit.
	LocalityAware
)

func (p Policy) String() string {
	switch p {
	case LRU:
		return "lru"
	case LocalityAware:
		return "locality-aware"
	default:
		return fmt.Sprintf("policy(%d)", uint8(p))
	}
}

// Config describes a cache's geometry and behaviour.
type Config struct {
	// Name identifies the cache in statistics (e.g. "cpu.l1d").
	Name string
	// SizeBytes is the total capacity. Must be a power of two.
	SizeBytes int
	// LineBytes is the block size. Must be a power of two.
	LineBytes int
	// Ways is the associativity. At most 64: per-set block state is kept
	// in packed 64-bit masks.
	Ways int
	// Policy selects the replacement policy.
	Policy Policy
	// MaxExplicitWays caps how many ways per set may hold explicit
	// blocks under LocalityAware. Zero means Ways-1, the minimum slack
	// that keeps at least one way available to implicit fills.
	MaxExplicitWays int
}

func (c Config) validate() error {
	switch {
	case c.SizeBytes <= 0 || bits.OnesCount(uint(c.SizeBytes)) != 1:
		return fmt.Errorf("cache %s: size %d is not a positive power of two", c.Name, c.SizeBytes)
	case c.LineBytes <= 0 || bits.OnesCount(uint(c.LineBytes)) != 1:
		return fmt.Errorf("cache %s: line %d is not a positive power of two", c.Name, c.LineBytes)
	case c.Ways <= 0:
		return fmt.Errorf("cache %s: ways %d must be positive", c.Name, c.Ways)
	case c.Ways > 64:
		return fmt.Errorf("cache %s: ways %d exceeds the packed-state limit of 64", c.Name, c.Ways)
	case c.SizeBytes%(c.LineBytes*c.Ways) != 0:
		return fmt.Errorf("cache %s: size %d not divisible by ways*line %d", c.Name, c.SizeBytes, c.LineBytes*c.Ways)
	case c.MaxExplicitWays < 0 || c.MaxExplicitWays > c.Ways:
		return fmt.Errorf("cache %s: max explicit ways %d out of range", c.Name, c.MaxExplicitWays)
	case c.Policy == LocalityAware && c.MaxExplicitWays == c.Ways:
		return fmt.Errorf("cache %s: explicit ways must be smaller than associativity (paper constraint II-B5)", c.Name)
	}
	return nil
}

// Eviction describes the result of a Fill: which block, if any, was
// displaced, and whether the fill was bypassed entirely.
type Eviction struct {
	// Valid reports that a valid block was evicted.
	Valid bool
	// Addr is the base address of the evicted line.
	Addr uint64
	// Dirty reports the evicted line had been written (needs write-back).
	Dirty bool
	// Explicit reports the evicted line was explicitly managed.
	Explicit bool
	// Bypassed reports the fill was dropped because the locality-aware
	// policy found no replaceable way (the whole set is explicit).
	Bypassed bool
}

// Stats counts cache events.
type Stats struct {
	Accesses   uint64
	Hits       uint64
	Misses     uint64
	Fills      uint64
	Evictions  uint64
	Writebacks uint64
	Bypasses   uint64
}

// HitRate returns hits/accesses, or 0 with no accesses.
func (s Stats) HitRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Accesses)
}

// Cache is a set-associative cache. It models tags and replacement state
// only — the simulator never stores data, it only times accesses.
//
// Block metadata is stored structure-of-arrays: the tag and LRU arrays
// are indexed [set*ways+way] and the single-bit states (valid, dirty,
// explicit) are packed into one 64-bit mask per set. The set probe in
// LookupWay walks only the tag array, way selection over the masks is
// branch-free via bits.TrailingZeros64, and the recency array is touched
// only on the hit it refreshes — a lookup no longer drags every block's
// cold metadata through the host cache.
type Cache struct {
	cfg  Config
	ways int
	// tags and lastUse are indexed [set*ways+way].
	tags    []uint64
	lastUse []uint64
	// valid, dirty and explicit hold one bit per way, one word per set.
	valid    []uint64
	dirty    []uint64
	explicit []uint64
	// waysMask has the low `ways` bits set.
	waysMask  uint64
	setMask   uint64
	lineShift uint
	tick      uint64
	stats     Stats
	obs       cacheObs
	// flushed is the stats snapshot at the last FlushObs: the obs
	// instruments are advanced by the delta, not bumped per event.
	flushed Stats
	maxExpl int
}

// cacheObs holds the cache's observability instruments; nil (the
// default) instruments make every bump a no-op.
type cacheObs struct {
	hits      *obs.Counter
	misses    *obs.Counter
	evictions *obs.Counter
}

// Instrument registers the cache's hit/miss/eviction counters with reg
// under the given prefix (e.g. "mem.cpu.l1d" yields
// "mem.cpu.l1d.hits"). A nil registry detaches the instruments. The
// counters are advanced in batches (FlushObs), starting from the
// cache's state at registration.
func (c *Cache) Instrument(reg *obs.Registry, prefix string) {
	c.obs = cacheObs{
		hits:      reg.Counter(prefix + ".hits"),
		misses:    reg.Counter(prefix + ".misses"),
		evictions: reg.Counter(prefix + ".evictions"),
	}
	c.flushed = c.stats
}

// FlushObs pushes counter growth since the previous flush into the
// registered instruments. Batching keeps the lookup hot path free of
// per-event instrument traffic; totals at flush points are identical
// to per-event bumping.
func (c *Cache) FlushObs() {
	c.obs.hits.Add(c.stats.Hits - c.flushed.Hits)
	c.obs.misses.Add(c.stats.Misses - c.flushed.Misses)
	c.obs.evictions.Add(c.stats.Evictions - c.flushed.Evictions)
	c.flushed = c.stats
}

// New returns a cache with the given configuration.
func New(cfg Config) (*Cache, error) {
	return NewIn(nil, cfg)
}

// NewIn is New with the metadata arrays carved from the arena (nil falls
// back to the ordinary heap). Sweep workers build pooled simulators out
// of one arena so construction batches into a few slab allocations.
func NewIn(a *arena.Arena, cfg Config) (*Cache, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	numSets := cfg.SizeBytes / (cfg.LineBytes * cfg.Ways)
	c := &Cache{
		cfg:       cfg,
		ways:      cfg.Ways,
		tags:      arena.Make[uint64](a, numSets*cfg.Ways),
		lastUse:   arena.Make[uint64](a, numSets*cfg.Ways),
		valid:     arena.Make[uint64](a, numSets),
		dirty:     arena.Make[uint64](a, numSets),
		explicit:  arena.Make[uint64](a, numSets),
		waysMask:  uint64(1)<<uint(cfg.Ways) - 1, // Ways == 64 wraps the shift to 0, so this is all-ones there too
		setMask:   uint64(numSets - 1),
		lineShift: uint(bits.TrailingZeros(uint(cfg.LineBytes))),
		maxExpl:   cfg.MaxExplicitWays,
	}
	if c.maxExpl == 0 {
		c.maxExpl = cfg.Ways - 1
	}
	if cfg.Policy == LRU {
		c.maxExpl = cfg.Ways
	}
	return c, nil
}

// MustNew is New but panics on configuration error, for static configs.
func MustNew(cfg Config) *Cache {
	c, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return c
}

// Config returns the cache's configuration.
func (c *Cache) Config() Config { return c.cfg }

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() Stats { return c.stats }

// Sets returns the number of sets.
func (c *Cache) Sets() int { return len(c.valid) }

// LineFor returns the base address of the line containing addr.
func (c *Cache) LineFor(addr uint64) uint64 {
	return addr &^ (uint64(c.cfg.LineBytes) - 1)
}

func (c *Cache) setIndex(addr uint64) uint64 { return (addr >> c.lineShift) & c.setMask }
func (c *Cache) tagOf(addr uint64) uint64    { return addr >> c.lineShift }

// Lookup accesses the line containing addr, reporting a hit. On a hit the
// block's recency is refreshed and, for writes, the dirty bit set. On a
// miss the caller is expected to fetch the line from the next level and
// call Fill.
func (c *Cache) Lookup(addr uint64, write bool) bool {
	return c.LookupWay(addr, write) >= 0
}

// LookupWay is Lookup, additionally reporting which way served the hit
// (negative on a miss) so callers can memoize the block's location and
// replay later hits through HitWay without the set scan.
func (c *Cache) LookupWay(addr uint64, write bool) int {
	c.tick++
	c.stats.Accesses++
	s := c.setIndex(addr)
	tag := c.tagOf(addr)
	base := int(s) * c.ways
	// Linear tag scan: invalid ways hold tag 0 (zeroed at reset, fill
	// overwrite and invalidation), so a tag match is almost always a
	// hit and the valid bit only breaks the tag-0 tie. The straight
	// walk beats iterating the valid mask bit by bit on warm sets.
	tags := c.tags[base : base+c.ways]
	for w, t := range tags {
		if t == tag && c.valid[s]&(1<<uint(w)) != 0 {
			c.lastUse[base+w] = c.tick
			if write {
				c.dirty[s] |= 1 << uint(w)
			}
			c.stats.Hits++
			return w
		}
	}
	c.stats.Misses++
	return -1
}

// HitWay replays an access against a memoized way. If the way still
// holds the line containing addr, the access is applied with exactly
// Lookup's hit bookkeeping (tick, recency refresh, dirty bit, access
// and hit counts) and HitWay reports true. Otherwise the cache is left
// completely untouched and the caller falls back to Lookup. The tag
// verification makes a stale memo safe, never wrong.
func (c *Cache) HitWay(addr uint64, way int, write bool) bool {
	if uint(way) >= uint(c.ways) {
		return false
	}
	s := c.setIndex(addr)
	idx := int(s)*c.ways + way
	bit := uint64(1) << uint(way)
	if c.valid[s]&bit == 0 || c.tags[idx] != c.tagOf(addr) {
		return false
	}
	c.tick++
	c.stats.Accesses++
	c.lastUse[idx] = c.tick
	if write {
		c.dirty[s] |= bit
	}
	c.stats.Hits++
	return true
}

// Probe reports whether the line containing addr is present without
// disturbing replacement state or statistics.
func (c *Cache) Probe(addr uint64) bool {
	s := c.setIndex(addr)
	tag := c.tagOf(addr)
	base := int(s) * c.ways
	for w, t := range c.tags[base : base+c.ways] {
		if t == tag && c.valid[s]&(1<<uint(w)) != 0 {
			return true
		}
	}
	return false
}

// Fill inserts the line containing addr. explicit marks the block as
// explicitly managed (placed by push); dirty installs it already modified
// (e.g. a store miss under write-allocate). The returned Eviction
// describes any displaced block or a bypass.
func (c *Cache) Fill(addr uint64, explicit, dirty bool) Eviction {
	ev, _ := c.FillWay(addr, explicit, dirty)
	return ev
}

// FillWay is Fill, additionally reporting which way now holds the line
// (-1 on a bypass) so callers can seed way memoizations at install time
// instead of paying a set scan on the next access.
func (c *Cache) FillWay(addr uint64, explicit, dirty bool) (Eviction, int) {
	c.tick++
	s := c.setIndex(addr)
	tag := c.tagOf(addr)
	base := int(s) * c.ways

	// Upgrade in place if already present (fill after racing lookups,
	// or a push of resident data).
	for w, t := range c.tags[base : base+c.ways] {
		if t == tag && c.valid[s]&(1<<uint(w)) != 0 {
			c.lastUse[base+w] = c.tick
			bit := uint64(1) << uint(w)
			if explicit {
				c.explicit[s] |= bit
			}
			if dirty {
				c.dirty[s] |= bit
			}
			return Eviction{}, w
		}
	}

	victim := c.chooseVictim(s, explicit)
	if victim < 0 {
		c.stats.Bypasses++
		return Eviction{Bypassed: true}, -1
	}
	bit := uint64(1) << uint(victim)
	idx := base + victim
	ev := Eviction{}
	if c.valid[s]&bit != 0 {
		ev = Eviction{
			Valid:    true,
			Addr:     c.tags[idx] << c.lineShift,
			Dirty:    c.dirty[s]&bit != 0,
			Explicit: c.explicit[s]&bit != 0,
		}
		c.stats.Evictions++
		if ev.Dirty {
			c.stats.Writebacks++
		}
	}
	c.tags[idx] = tag
	c.lastUse[idx] = c.tick
	c.valid[s] |= bit
	if dirty {
		c.dirty[s] |= bit
	} else {
		c.dirty[s] &^= bit
	}
	if explicit {
		c.explicit[s] |= bit
	} else {
		c.explicit[s] &^= bit
	}
	c.stats.Fills++
	return ev, victim
}

// chooseVictim returns the way to replace in set s, or -1 to bypass.
// Preference order: the lowest invalid way, then LRU among the ways this
// fill is allowed to replace under the policy. Eligibility is a bitmask,
// so the policy cases reduce to mask algebra over the packed state.
func (c *Cache) chooseVictim(s uint64, explicitFill bool) int {
	if free := ^c.valid[s] & c.waysMask; free != 0 {
		return bits.TrailingZeros64(free)
	}
	if c.cfg.Policy == LRU {
		return c.lruAmong(s, c.waysMask)
	}
	if !explicitFill {
		// Implicit fills may not displace explicit blocks (II-B5).
		return c.lruAmong(s, ^c.explicit[s]&c.waysMask)
	}
	// Explicit fill: if the set already holds the maximum explicit
	// footprint, replace the LRU explicit block so the cap is preserved;
	// otherwise replace the global LRU.
	if bits.OnesCount64(c.valid[s]&c.explicit[s]) >= c.maxExpl {
		return c.lruAmong(s, c.explicit[s]&c.waysMask)
	}
	return c.lruAmong(s, c.waysMask)
}

// lruAmong returns the eligible way with the smallest lastUse (earliest
// eligible way wins ties), or -1 when the mask is empty.
func (c *Cache) lruAmong(s uint64, eligible uint64) int {
	base := int(s) * c.ways
	best := -1
	var bestUse uint64
	for m := eligible; m != 0; m &= m - 1 {
		w := bits.TrailingZeros64(m)
		if u := c.lastUse[base+w]; best < 0 || u < bestUse {
			best, bestUse = w, u
		}
	}
	return best
}

// Reset returns the cache to its just-constructed state: every block
// invalid, replacement state and statistics cleared. Instruments stay
// wired. Used when a simulator is recycled between runs.
func (c *Cache) Reset() {
	clear(c.tags)
	clear(c.lastUse)
	clear(c.valid)
	clear(c.dirty)
	clear(c.explicit)
	c.tick = 0
	c.stats = Stats{}
	c.flushed = Stats{}
}

// Invalidate removes the line containing addr if present, reporting
// whether it was present and whether it was dirty.
func (c *Cache) Invalidate(addr uint64) (present, dirty bool) {
	s := c.setIndex(addr)
	tag := c.tagOf(addr)
	base := int(s) * c.ways
	for m := c.valid[s]; m != 0; m &= m - 1 {
		w := bits.TrailingZeros64(m)
		if c.tags[base+w] == tag {
			bit := uint64(1) << uint(w)
			d := c.dirty[s]&bit != 0
			c.valid[s] &^= bit
			c.dirty[s] &^= bit
			c.explicit[s] &^= bit
			c.tags[base+w] = 0
			c.lastUse[base+w] = 0
			return true, d
		}
	}
	return false, false
}

// FlushAll invalidates every block and returns the number of dirty lines
// that would be written back.
func (c *Cache) FlushAll() (writebacks int) {
	for s := range c.valid {
		writebacks += bits.OnesCount64(c.valid[s] & c.dirty[s])
	}
	clear(c.tags)
	clear(c.lastUse)
	clear(c.valid)
	clear(c.dirty)
	clear(c.explicit)
	c.stats.Writebacks += uint64(writebacks)
	return writebacks
}

// ExplicitBlocks returns how many valid blocks are explicitly managed.
func (c *Cache) ExplicitBlocks() int {
	n := 0
	for s := range c.valid {
		n += bits.OnesCount64(c.valid[s] & c.explicit[s])
	}
	return n
}

// ValidBlocks returns how many blocks are valid.
func (c *Cache) ValidBlocks() int {
	n := 0
	for _, v := range c.valid {
		n += bits.OnesCount64(v)
	}
	return n
}
