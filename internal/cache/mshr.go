package cache

import (
	"heteromem/internal/arena"
	"heteromem/internal/clock"
)

// MSHR models a file of miss-status holding registers. Concurrent misses
// to the same line merge onto one outstanding entry (a secondary miss
// completes when the primary's fill arrives); when every register is
// occupied, a new primary miss must wait until the earliest outstanding
// fill returns.
//
// The file is a pair of parallel slices rather than a map: real files
// are a handful of registers (Table II uses 16 per PU), so the linear
// scan beats hashing and, more importantly, expiry is an in-place
// compaction instead of a map iteration — the file sits on the miss
// path of every access.
type MSHR struct {
	capacity int
	lines    []uint64
	readys   []clock.Time // fill-complete time, parallel to lines
	// minReady is the earliest outstanding fill time (zero when the
	// file is empty), so expire only walks the file when an entry can
	// actually retire instead of on every access.
	minReady clock.Time
	merges   uint64
	stalls   uint64
}

// NewMSHR returns an MSHR file with the given number of registers.
// Capacity zero or negative disables the structure (unlimited, no
// merging), useful for idealised configurations.
func NewMSHR(capacity int) *MSHR {
	return NewMSHRIn(nil, capacity)
}

// NewMSHRIn is NewMSHR with the register file's parallel arrays carved
// from the arena (nil falls back to the heap). An uncapped file (capacity
// <= 0) that outgrows its initial registers escapes to the heap via
// append, which is safe — only the batching is lost.
func NewMSHRIn(a *arena.Arena, capacity int) *MSHR {
	n := capacity
	if n <= 0 {
		n = 16
	}
	return &MSHR{
		capacity: capacity,
		lines:    arena.Make[uint64](a, n)[:0],
		readys:   arena.Make[clock.Time](a, n)[:0],
	}
}

// Reset returns the file to its just-constructed state: no outstanding
// entries, merge and stall counts cleared.
func (m *MSHR) Reset() {
	m.lines = m.lines[:0]
	m.readys = m.readys[:0]
	m.minReady = 0
	m.merges = 0
	m.stalls = 0
}

// expire drops entries whose fills have completed by now, compacting in
// place. The walk is skipped entirely unless the earliest outstanding
// fill has retired, which is behaviour-identical: an un-expired stale
// entry can neither satisfy Outstanding (its ready time is not in the
// future) nor exist when minReady is still ahead of now.
func (m *MSHR) expire(now clock.Time) {
	if len(m.lines) == 0 || m.minReady > now {
		return
	}
	min := clock.Time(0)
	k := 0
	for i, ready := range m.readys {
		if ready <= now {
			continue
		}
		m.lines[k], m.readys[k] = m.lines[i], ready
		k++
		if min == 0 || ready < min {
			min = ready
		}
	}
	m.lines, m.readys = m.lines[:k], m.readys[:k]
	m.minReady = min
}

// find returns the index of line in the file, or -1.
func (m *MSHR) find(line uint64) int {
	for i, l := range m.lines {
		if l == line {
			return i
		}
	}
	return -1
}

// Outstanding reports whether a miss to line is already in flight at now,
// and if so when its fill completes. A true return means the new miss
// merges: it finishes at the returned time without issuing a new request.
func (m *MSHR) Outstanding(line uint64, now clock.Time) (clock.Time, bool) {
	m.expire(now)
	if i := m.find(line); i >= 0 && m.readys[i] > now {
		m.merges++
		return m.readys[i], true
	}
	return 0, false
}

// Allocate records a primary miss to line completing at ready. If the
// file is full at now, the allocation is delayed until the earliest
// outstanding entry retires; the returned time is the (possibly pushed
// back) completion time the caller must use.
func (m *MSHR) Allocate(line uint64, now, ready clock.Time) clock.Time {
	m.expire(now)
	if m.capacity > 0 && len(m.lines) >= m.capacity {
		earliest := clock.Time(0)
		first := true
		for _, r := range m.readys {
			if first || r < earliest {
				earliest = r
				first = false
			}
		}
		m.stalls++
		// The request cannot even be registered until a register frees;
		// push the completion back by the wait.
		if earliest > now {
			ready = ready.Add(earliest.Sub(now))
		}
		m.expire(earliest)
	}
	if i := m.find(line); i >= 0 {
		m.readys[i] = ready
	} else {
		m.lines = append(m.lines, line)
		m.readys = append(m.readys, ready)
	}
	if len(m.lines) == 1 || ready < m.minReady {
		m.minReady = ready
	}
	return ready
}

// InFlight returns the number of outstanding entries at now.
func (m *MSHR) InFlight(now clock.Time) int {
	m.expire(now)
	return len(m.lines)
}

// Merges returns how many secondary misses merged onto a primary.
func (m *MSHR) Merges() uint64 { return m.merges }

// Stalls returns how many allocations were delayed by a full file.
func (m *MSHR) Stalls() uint64 { return m.stalls }
