package cache

import (
	"heteromem/internal/clock"
)

// MSHR models a file of miss-status holding registers. Concurrent misses
// to the same line merge onto one outstanding entry (a secondary miss
// completes when the primary's fill arrives); when every register is
// occupied, a new primary miss must wait until the earliest outstanding
// fill returns.
type MSHR struct {
	capacity int
	entries  map[uint64]clock.Time // line -> fill-complete time
	merges   uint64
	stalls   uint64
}

// NewMSHR returns an MSHR file with the given number of registers.
// Capacity zero or negative disables the structure (unlimited, no
// merging), useful for idealised configurations.
func NewMSHR(capacity int) *MSHR {
	return &MSHR{capacity: capacity, entries: make(map[uint64]clock.Time)}
}

// Reset returns the file to its just-constructed state: no outstanding
// entries, merge and stall counts cleared.
func (m *MSHR) Reset() {
	clear(m.entries)
	m.merges = 0
	m.stalls = 0
}

// expire drops entries whose fills have completed by now.
func (m *MSHR) expire(now clock.Time) {
	for line, ready := range m.entries {
		if ready <= now {
			delete(m.entries, line)
		}
	}
}

// Outstanding reports whether a miss to line is already in flight at now,
// and if so when its fill completes. A true return means the new miss
// merges: it finishes at the returned time without issuing a new request.
func (m *MSHR) Outstanding(line uint64, now clock.Time) (clock.Time, bool) {
	m.expire(now)
	ready, ok := m.entries[line]
	if ok && ready > now {
		m.merges++
		return ready, true
	}
	return 0, false
}

// Allocate records a primary miss to line completing at ready. If the
// file is full at now, the allocation is delayed until the earliest
// outstanding entry retires; the returned time is the (possibly pushed
// back) completion time the caller must use.
func (m *MSHR) Allocate(line uint64, now, ready clock.Time) clock.Time {
	m.expire(now)
	if m.capacity > 0 && len(m.entries) >= m.capacity {
		earliest := clock.Time(0)
		first := true
		for _, r := range m.entries {
			if first || r < earliest {
				earliest = r
				first = false
			}
		}
		m.stalls++
		// The request cannot even be registered until a register frees;
		// push the completion back by the wait.
		if earliest > now {
			ready = ready.Add(earliest.Sub(now))
		}
		m.expire(earliest)
	}
	m.entries[line] = ready
	return ready
}

// InFlight returns the number of outstanding entries at now.
func (m *MSHR) InFlight(now clock.Time) int {
	m.expire(now)
	return len(m.entries)
}

// Merges returns how many secondary misses merged onto a primary.
func (m *MSHR) Merges() uint64 { return m.merges }

// Stalls returns how many allocations were delayed by a full file.
func (m *MSHR) Stalls() uint64 { return m.stalls }
