// Package bpred implements the branch predictors used by the simulated
// processing units. The baseline CPU (Table II) uses a gshare predictor;
// the GPU has none and stalls on every branch, which the GPU core model
// handles itself.
package bpred

// Gshare is the classic gshare predictor: a global history register XORed
// with the branch PC indexes a table of 2-bit saturating counters.
type Gshare struct {
	history    uint64
	histBits   uint
	counters   []uint8
	mask       uint64
	lookups    uint64
	mispredict uint64
}

// NewGshare returns a gshare predictor with 2^tableBits counters and a
// history register of historyBits bits. It panics on a non-positive or
// oversized table; predictor geometry is fixed at configuration time.
func NewGshare(tableBits, historyBits uint) *Gshare {
	if tableBits == 0 || tableBits > 28 {
		panic("bpred: table bits out of range")
	}
	if historyBits > 64 {
		panic("bpred: history bits out of range")
	}
	g := &Gshare{
		histBits: historyBits,
		counters: make([]uint8, 1<<tableBits),
		mask:     1<<tableBits - 1,
	}
	// Initialise to weakly taken: real predictors warm up quickly and the
	// weak state avoids a cold-start bias toward not-taken.
	for i := range g.counters {
		g.counters[i] = 2
	}
	return g
}

func (g *Gshare) index(pc uint64) uint64 {
	histMask := uint64(1)<<g.histBits - 1
	return ((pc >> 2) ^ (g.history & histMask)) & g.mask
}

// Predict returns the predicted direction for the branch at pc.
func (g *Gshare) Predict(pc uint64) bool {
	return g.counters[g.index(pc)] >= 2
}

// Update trains the predictor with the actual outcome of the branch at pc
// and returns whether the (pre-update) prediction was correct. The global
// history is speculatively perfect: the trace carries actual outcomes, so
// history updates with the resolved direction as real hardware does after
// recovery.
func (g *Gshare) Update(pc uint64, taken bool) bool {
	idx := g.index(pc)
	predicted := g.counters[idx] >= 2
	if taken && g.counters[idx] < 3 {
		g.counters[idx]++
	}
	if !taken && g.counters[idx] > 0 {
		g.counters[idx]--
	}
	g.history = g.history<<1 | b2u(taken)
	g.lookups++
	correct := predicted == taken
	if !correct {
		g.mispredict++
	}
	return correct
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// Lookups returns the number of Update calls so far.
func (g *Gshare) Lookups() uint64 { return g.lookups }

// Mispredicts returns the number of incorrect predictions so far.
func (g *Gshare) Mispredicts() uint64 { return g.mispredict }

// MispredictRate returns the fraction of branches mispredicted, or zero
// before any branch has been seen.
func (g *Gshare) MispredictRate() float64 {
	if g.lookups == 0 {
		return 0
	}
	return float64(g.mispredict) / float64(g.lookups)
}

// Reset clears the history, counters and statistics.
func (g *Gshare) Reset() {
	g.history = 0
	for i := range g.counters {
		g.counters[i] = 2
	}
	g.lookups = 0
	g.mispredict = 0
}
