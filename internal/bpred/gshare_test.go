package bpred

import (
	"math/rand"
	"testing"
)

func TestAlwaysTakenLearned(t *testing.T) {
	g := NewGshare(12, 8)
	pc := uint64(0x400100)
	// After warm-up, an always-taken branch must predict perfectly.
	for i := 0; i < 4; i++ {
		g.Update(pc, true)
	}
	for i := 0; i < 100; i++ {
		if !g.Predict(pc) {
			t.Fatalf("iteration %d: always-taken branch predicted not-taken", i)
		}
		if !g.Update(pc, true) {
			t.Fatalf("iteration %d: mispredicted steady taken", i)
		}
	}
}

func TestAlwaysNotTakenLearned(t *testing.T) {
	g := NewGshare(12, 8)
	pc := uint64(0x400200)
	for i := 0; i < 4; i++ {
		g.Update(pc, false)
	}
	for i := 0; i < 100; i++ {
		if g.Predict(pc) {
			t.Fatal("always-not-taken branch predicted taken after warm-up")
		}
		g.Update(pc, false)
	}
}

func TestAlternatingPatternUsesHistory(t *testing.T) {
	// A strict T/NT alternation is fully captured by 1 bit of history, so
	// gshare should converge to near-perfect prediction.
	g := NewGshare(14, 12)
	pc := uint64(0x400300)
	taken := false
	for i := 0; i < 200; i++ { // warm-up
		g.Update(pc, taken)
		taken = !taken
	}
	wrong := 0
	for i := 0; i < 1000; i++ {
		if !g.Update(pc, taken) {
			wrong++
		}
		taken = !taken
	}
	if wrong > 10 {
		t.Fatalf("alternating pattern mispredicted %d/1000 times", wrong)
	}
}

func TestRandomBranchesNearChance(t *testing.T) {
	g := NewGshare(12, 8)
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 20000; i++ {
		g.Update(uint64(0x400000+8*(i%64)), rng.Intn(2) == 0)
	}
	rate := g.MispredictRate()
	if rate < 0.3 || rate > 0.7 {
		t.Fatalf("random branches mispredict rate %.2f, expected near 0.5", rate)
	}
}

func TestStats(t *testing.T) {
	g := NewGshare(10, 4)
	if g.MispredictRate() != 0 {
		t.Error("rate before any lookup should be 0")
	}
	g.Update(0, true)
	g.Update(0, true)
	if g.Lookups() != 2 {
		t.Errorf("lookups = %d, want 2", g.Lookups())
	}
	if g.Mispredicts() > 2 {
		t.Errorf("mispredicts = %d > lookups", g.Mispredicts())
	}
}

func TestReset(t *testing.T) {
	g := NewGshare(10, 4)
	for i := 0; i < 50; i++ {
		g.Update(uint64(i), i%3 == 0)
	}
	g.Reset()
	if g.Lookups() != 0 || g.Mispredicts() != 0 {
		t.Fatal("Reset did not clear stats")
	}
	// Counters must be back to weakly taken.
	if !g.Predict(0x1234) {
		t.Fatal("Reset did not restore weakly-taken init")
	}
}

func TestGeometryPanics(t *testing.T) {
	for _, c := range []struct{ table, hist uint }{{0, 8}, {29, 8}, {12, 65}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewGshare(%d,%d) did not panic", c.table, c.hist)
				}
			}()
			NewGshare(c.table, c.hist)
		}()
	}
}

func BenchmarkGshareUpdate(b *testing.B) {
	g := NewGshare(14, 12)
	for i := 0; i < b.N; i++ {
		g.Update(uint64(i%1024)*4, i%7 < 3)
	}
}
